package reorder

import (
	"math/rand"
	"testing"

	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

func BenchmarkRCM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := stencil.Laplace2D(60, 60)
	perm := make([]int32, a.N)
	for i, v := range rng.Perm(a.N) {
		perm[i] = int32(v)
	}
	p, err := NewPermutation(perm)
	if err != nil {
		b.Fatal(err)
	}
	shuffled, err := p.Apply(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RCM(shuffled); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyPermutation(b *testing.B) {
	a := stencil.Laplace2D(80, 80)
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		b.Fatal(err)
	}
	p := ByWavefront(wf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Apply(a); err != nil {
			b.Fatal(err)
		}
	}
}
