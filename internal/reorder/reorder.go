// Package reorder provides matrix reorderings that interact with the
// run-time scheduling system: symmetric permutation of a sparse matrix,
// the wavefront (level-set) permutation that makes the paper's anti-
// diagonal structure explicit, and reverse Cuthill-McKee. The paper's
// Section 3 surveys the closely related work on reordering operations to
// increase the parallelism of sparse triangular solves; this package lets
// the repository demonstrate those interactions directly.
package reorder

import (
	"fmt"
	"sort"

	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// Permutation maps new index -> old index; Perm[k] is the old index placed
// at position k.
type Permutation struct {
	Perm []int32 // new -> old
	Inv  []int32 // old -> new
}

// NewPermutation validates perm (a bijection on 0..n-1 given as new->old)
// and computes its inverse.
func NewPermutation(perm []int32) (*Permutation, error) {
	n := len(perm)
	inv := make([]int32, n)
	seen := make([]bool, n)
	for k, old := range perm {
		if old < 0 || int(old) >= n {
			return nil, fmt.Errorf("reorder: perm[%d] = %d out of range", k, old)
		}
		if seen[old] {
			return nil, fmt.Errorf("reorder: perm repeats %d", old)
		}
		seen[old] = true
		inv[old] = int32(k)
	}
	return &Permutation{Perm: perm, Inv: inv}, nil
}

// Identity returns the identity permutation on n indices.
func Identity(n int) *Permutation {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	p, _ := NewPermutation(perm)
	return p
}

// Apply symmetrically permutes a square matrix: B[i][j] = A[perm[i]][perm[j]].
func (p *Permutation) Apply(a *sparse.CSR) (*sparse.CSR, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("reorder: matrix is %dx%d, want square", a.N, a.M)
	}
	if len(p.Perm) != a.N {
		return nil, fmt.Errorf("reorder: permutation order %d, matrix order %d", len(p.Perm), a.N)
	}
	ts := make([]sparse.Triplet, 0, a.NNZ())
	for newRow := 0; newRow < a.N; newRow++ {
		oldRow := p.Perm[newRow]
		cols, vals := a.Row(int(oldRow))
		for k, c := range cols {
			ts = append(ts, sparse.Triplet{
				Row: newRow, Col: int(p.Inv[c]), Val: vals[k],
			})
		}
	}
	return sparse.Assemble(a.N, a.N, ts)
}

// PermuteVector gathers x into permuted order: out[k] = x[perm[k]].
func (p *Permutation) PermuteVector(out, x []float64) {
	for k, old := range p.Perm {
		out[k] = x[old]
	}
}

// UnpermuteVector scatters a permuted vector back: out[perm[k]] = x[k].
func (p *Permutation) UnpermuteVector(out, x []float64) {
	for k, old := range p.Perm {
		out[old] = x[k]
	}
}

// ByWavefront returns the permutation that sorts indices by (wavefront,
// index) — the global schedule order. Applying it to a lower triangular
// matrix groups each wavefront's rows contiguously, turning the paper's
// implicit anti-diagonal structure into explicit block rows.
func ByWavefront(wf []int32) *Permutation {
	n := len(wf)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool { return wf[perm[a]] < wf[perm[b]] })
	p, _ := NewPermutation(perm)
	return p
}

// RCM computes a reverse Cuthill-McKee ordering of the symmetrized
// adjacency of a, starting each component from a minimum-degree vertex.
// RCM reduces bandwidth, which for triangular factors tends to shorten
// dependence distances and change the wavefront population — the kind of
// ordering effect the paper's related work exploits.
func RCM(a *sparse.CSR) (*Permutation, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("reorder: matrix is %dx%d, want square", a.N, a.M)
	}
	n := a.N
	// Symmetrized adjacency (excluding the diagonal).
	adj := make([][]int32, n)
	addEdge := func(i, j int32) {
		adj[i] = append(adj[i], j)
	}
	t := a.Transpose()
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) != i {
				addEdge(int32(i), c)
			}
		}
		tcols, _ := t.Row(i)
		for _, c := range tcols {
			if int(c) != i {
				addEdge(int32(i), c)
			}
		}
	}
	for i := range adj {
		sort.Slice(adj[i], func(x, y int) bool { return adj[i][x] < adj[i][y] })
		// dedup
		out := adj[i][:0]
		var prev int32 = -1
		for _, v := range adj[i] {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[i] = out
	}
	deg := func(i int32) int { return len(adj[i]) }

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	for len(order) < n {
		// Minimum-degree unvisited start vertex.
		start := int32(-1)
		for i := 0; i < n; i++ {
			if !visited[i] && (start < 0 || deg(int32(i)) < deg(start)) {
				start = int32(i)
			}
		}
		// BFS, neighbours in increasing degree order.
		queue := []int32{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			neigh := append([]int32(nil), adj[v]...)
			sort.SliceStable(neigh, func(x, y int) bool { return deg(neigh[x]) < deg(neigh[y]) })
			for _, w := range neigh {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return NewPermutation(order)
}

// Bandwidth returns the maximum |i-j| over stored entries.
func Bandwidth(a *sparse.CSR) int {
	bw := 0
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			d := i - int(c)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// WavefrontProfile reports the wavefront count of the strictly-lower
// dependence structure of a matrix under its current ordering — the
// quantity orderings change.
func WavefrontProfile(a *sparse.CSR) (phases int, maxWidth int, err error) {
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return 0, 0, err
	}
	h := wavefront.Histogram(wf)
	for _, c := range h {
		if c > maxWidth {
			maxWidth = c
		}
	}
	return len(h), maxWidth, nil
}
