package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/vec"
	"doconsider/internal/wavefront"
)

func TestNewPermutationValidation(t *testing.T) {
	if _, err := NewPermutation([]int32{0, 2}); err == nil {
		t.Error("accepted out-of-range entry")
	}
	if _, err := NewPermutation([]int32{0, 0}); err == nil {
		t.Error("accepted repeated entry")
	}
	p, err := NewPermutation([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Inv[2] != 0 || p.Inv[0] != 1 || p.Inv[1] != 2 {
		t.Errorf("inverse wrong: %v", p.Inv)
	}
}

func TestIdentity(t *testing.T) {
	p := Identity(4)
	a := stencil.Laplace2D(2, 2)
	b, err := p.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Equal(a, b) {
		t.Error("identity permutation changed the matrix")
	}
}

func TestApplySymmetric(t *testing.T) {
	a := stencil.Laplace2D(3, 3)
	perm := []int32{8, 7, 6, 5, 4, 3, 2, 1, 0}
	p, err := NewPermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if b.At(i, j) != a.At(int(perm[i]), int(perm[j])) {
				t.Fatalf("B(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestPermuteVectorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		perm := rng.Perm(n)
		p32 := make([]int32, n)
		for i, v := range perm {
			p32[i] = int32(v)
		}
		p, err := NewPermutation(p32)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		z := make([]float64, n)
		p.PermuteVector(y, x)
		p.UnpermuteVector(z, y)
		return vec.MaxAbsDiff(x, z) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPermutedSolveEquivalence: solving the permuted system and
// unpermuting gives the original solution (for a general matrix via
// matvec check).
func TestPermutedMatVecEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := stencil.FivePoint(6)
	perm := rng.Perm(a.N)
	p32 := make([]int32, a.N)
	for i, v := range perm {
		p32[i] = int32(v)
	}
	p, err := NewPermutation(p32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// y = A x; then (P A P^T)(P x) must equal P y.
	y := make([]float64, a.N)
	if err := a.MatVec(y, x); err != nil {
		t.Fatal(err)
	}
	px := make([]float64, a.N)
	p.PermuteVector(px, x)
	py := make([]float64, a.N)
	if err := b.MatVec(py, px); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.N)
	p.PermuteVector(want, y)
	if d := vec.MaxAbsDiff(py, want); d > 1e-12 {
		t.Errorf("permuted matvec differs by %v", d)
	}
}

func TestByWavefrontGroupsPhases(t *testing.T) {
	a := stencil.Laplace2D(6, 5)
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	p := ByWavefront(wf)
	// The permuted wavefront numbers must be nondecreasing.
	prev := int32(-1)
	for _, old := range p.Perm {
		if wf[old] < prev {
			t.Fatal("wavefront order violated")
		}
		prev = wf[old]
	}
	// Applying the permutation must preserve the wavefront count.
	b, err := p.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	phases, _, err := WavefrontProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	if phases != wavefront.NumWavefronts(wf) {
		t.Errorf("permuted phases = %d, want %d", phases, wavefront.NumWavefronts(wf))
	}
}

func TestRCMReducesBandwidthOnShuffledMesh(t *testing.T) {
	// Shuffle a mesh matrix to destroy its banded structure, then RCM it
	// back: bandwidth must drop substantially.
	rng := rand.New(rand.NewSource(2))
	a := stencil.Laplace2D(12, 12)
	perm := rng.Perm(a.N)
	p32 := make([]int32, a.N)
	for i, v := range perm {
		p32[i] = int32(v)
	}
	shuffle, err := NewPermutation(p32)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := shuffle.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	before := Bandwidth(shuffled)
	rcm, err := RCM(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := rcm.Apply(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(restored)
	if after >= before/2 {
		t.Errorf("RCM bandwidth %d, shuffled %d — expected a big reduction", after, before)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two disconnected 2-chains plus an isolated vertex.
	ts := []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1},
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 2, Val: 1},
		{Row: 3, Col: 3, Val: 1}, {Row: 4, Col: 4, Val: 1},
		{Row: 3, Col: 4, Val: 1}, {Row: 4, Col: 3, Val: 1},
	}
	a := sparse.MustAssemble(5, 5, ts)
	p, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Perm) != 5 {
		t.Errorf("permutation order %d", len(p.Perm))
	}
}

func TestRCMRejectsNonSquare(t *testing.T) {
	a := sparse.MustAssemble(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := RCM(a); err == nil {
		t.Error("RCM accepted non-square matrix")
	}
	p := Identity(3)
	if _, err := p.Apply(a); err == nil {
		t.Error("Apply accepted non-square matrix")
	}
	if _, err := Identity(2).Apply(stencil.Laplace2D(2, 2)); err == nil {
		t.Error("Apply accepted order mismatch")
	}
}

// TestOrderingChangesWavefronts demonstrates the scheduling relevance:
// natural vs RCM ordering of the same mesh factor produce different
// wavefront populations.
func TestOrderingChangesWavefronts(t *testing.T) {
	a := stencil.Laplace2D(10, 10)
	naturalPhases, _, err := WavefrontProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	if naturalPhases != 19 {
		t.Errorf("natural phases = %d, want 19", naturalPhases)
	}
	rcm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rcm.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	rcmPhases, _, err := WavefrontProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	if rcmPhases < 2 {
		t.Errorf("rcm phases = %d", rcmPhases)
	}
}
