package reorder

import (
	"testing"

	"doconsider/internal/sparse"
)

// checkValidPermutation asserts p is a bijection on 0..n-1 with a
// consistent inverse — the contract every RCM caller (the planner's
// within-wavefront ranking) relies on.
func checkValidPermutation(t *testing.T, p *Permutation, n int) {
	t.Helper()
	if len(p.Perm) != n || len(p.Inv) != n {
		t.Fatalf("permutation length %d/%d, want %d", len(p.Perm), len(p.Inv), n)
	}
	seen := make([]bool, n)
	for k, old := range p.Perm {
		if old < 0 || int(old) >= n {
			t.Fatalf("perm[%d] = %d out of range", k, old)
		}
		if seen[old] {
			t.Fatalf("perm repeats %d", old)
		}
		seen[old] = true
		if p.Inv[old] != int32(k) {
			t.Fatalf("inv[%d] = %d, want %d", old, p.Inv[old], k)
		}
	}
}

// TestRCMDisconnected covers a block-diagonal matrix whose adjacency
// graph has several components (including isolated vertices): RCM must
// restart its BFS per component and still emit a valid permutation.
func TestRCMDisconnected(t *testing.T) {
	// Three components: a 3-chain {0,1,2}, an isolated vertex {3}, and a
	// 2-chain {4,5}.
	a := sparse.MustAssemble(6, 6, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 3, Val: 1}, {Row: 4, Col: 4, Val: 1}, {Row: 5, Col: 5, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 5, Col: 4, Val: 1},
	})
	p, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPermutation(t, p, 6)
	// The permutation must actually apply: symmetric application keeps
	// the entry count.
	b, err := p.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != a.NNZ() {
		t.Fatalf("Apply changed nnz %d -> %d", a.NNZ(), b.NNZ())
	}
}

// TestRCMSingleRow covers the order-1 structure: the rank used by the
// planner's schedule ordering must exist and be the identity.
func TestRCMSingleRow(t *testing.T) {
	a := sparse.MustAssemble(1, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 2}})
	p, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPermutation(t, p, 1)
	if p.Perm[0] != 0 {
		t.Fatalf("order-1 RCM = %v, want identity", p.Perm)
	}
}

// TestRCMEmptyAdjacency covers a diagonal-only matrix: every vertex is
// its own component.
func TestRCMEmptyAdjacency(t *testing.T) {
	a := sparse.MustAssemble(5, 5, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 3, Val: 1}, {Row: 4, Col: 4, Val: 1},
	})
	p, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPermutation(t, p, 5)
}

// TestRCMAlreadyBanded covers an input that is already optimally banded
// (a tridiagonal matrix): RCM must return a valid permutation and must
// not make the bandwidth worse.
func TestRCMAlreadyBanded(t *testing.T) {
	n := 40
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2})
		if i > 0 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
			ts = append(ts, sparse.Triplet{Row: i - 1, Col: i, Val: -1})
		}
	}
	a := sparse.MustAssemble(n, n, ts)
	p, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPermutation(t, p, n)
	b, err := p.Apply(a)
	if err != nil {
		t.Fatal(err)
	}
	if bw := Bandwidth(b); bw > Bandwidth(a) {
		t.Fatalf("RCM worsened an already-banded matrix: bandwidth %d -> %d", Bandwidth(a), bw)
	}
}
