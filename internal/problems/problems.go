// Package problems binds the paper's test-problem names (Appendix I and
// the synthetic workloads of Section 5) to generated matrices, and derives
// the artifacts the experiments consume: the ILU(0) lower factor, its
// dependence structure and the per-row floating-point work vector.
package problems

import (
	"fmt"
	"sort"
	"sync"

	"doconsider/internal/ilu"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/synthetic"
	"doconsider/internal/wavefront"
)

// Problem is a named test matrix plus the derived triangular-solve
// workload used throughout the evaluation.
type Problem struct {
	Name string
	A    *sparse.CSR // the full system matrix
	L    *sparse.CSR // unit lower factor from zero-fill factorization
	Deps *wavefront.Deps
	Wf   []int32
	Work []float64 // per-row flop work: one multiply-add per off-diagonal, one divide
}

// Names lists the full-size problems of Table 1 in paper order.
func Names() []string {
	return []string{"SPE1", "SPE2", "SPE3", "SPE4", "SPE5", "5-PT", "9-PT", "7-PT"}
}

// LargeNames lists the enlarged variants reported alongside Table 1.
func LargeNames() []string { return []string{"L5-PT", "L9-PT", "L7-PT"} }

// TriSolveNames lists the problems used in the triangular-solve
// decomposition studies (Tables 2-4).
func TriSolveNames() []string { return []string{"SPE2", "SPE5", "5-PT", "9-PT", "7-PT"} }

// SyntheticNames lists the Table 5 synthetic workloads.
func SyntheticNames() []string { return []string{"65-4-1.5", "65-4-3", "65mesh"} }

var (
	mu    sync.Mutex
	cache = map[string]*Problem{}
)

// Get returns the named problem, generating and caching it on first use.
// Recognized names are those of Names, LargeNames, SyntheticNames, plus
// any "mesh-degree-distance" synthetic label.
func Get(name string) (*Problem, error) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := cache[name]; ok {
		return p, nil
	}
	a, err := matrix(name)
	if err != nil {
		return nil, err
	}
	p, err := build(name, a)
	if err != nil {
		return nil, err
	}
	cache[name] = p
	return p, nil
}

// MustGet is Get but panics on error; for benchmarks and examples over the
// fixed problem names.
func MustGet(name string) *Problem {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

func matrix(name string) (*sparse.CSR, error) {
	switch name {
	case "SPE1":
		return stencil.SPE1(), nil
	case "SPE2":
		return stencil.SPE2(), nil
	case "SPE3":
		return stencil.SPE3(), nil
	case "SPE4":
		return stencil.SPE4(), nil
	case "SPE5":
		return stencil.SPE5(), nil
	case "5-PT":
		return stencil.FivePoint(63), nil
	case "L5-PT":
		return stencil.FivePoint(200), nil
	case "9-PT":
		return stencil.NinePoint(63), nil
	case "L9-PT":
		return stencil.NinePoint(127), nil
	case "7-PT":
		return stencil.SevenPoint(20), nil
	case "L7-PT":
		return stencil.SevenPoint(30), nil
	case "65mesh":
		return stencil.Laplace2D(65, 65), nil
	}
	if cfg, err := synthetic.Parse(name, 1989); err == nil {
		return synthetic.Generate(cfg), nil
	}
	return nil, fmt.Errorf("problems: unknown problem %q", name)
}

func build(name string, a *sparse.CSR) (*Problem, error) {
	pat, err := ilu.Symbolic(a, 0)
	if err != nil {
		return nil, err
	}
	fact, err := ilu.NumericSeq(a, pat)
	if err != nil {
		return nil, err
	}
	l := fact.L()
	deps := wavefront.FromLower(l)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return nil, err
	}
	work := RowWork(l)
	return &Problem{Name: name, A: a, L: l, Deps: deps, Wf: wf, Work: work}, nil
}

// RowWork returns the per-row floating point work of a triangular solve on
// t: one multiply-add pair per off-diagonal entry plus one for the
// diagonal scaling, in units of multiply-add pairs.
func RowWork(t *sparse.CSR) []float64 {
	w := make([]float64, t.N)
	for i := 0; i < t.N; i++ {
		w[i] = float64(t.RowNNZ(i)) // off-diagonals + diagonal op
	}
	return w
}

// TotalWork sums a work vector.
func TotalWork(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

// Phases returns the number of wavefronts of the problem's lower factor.
func (p *Problem) Phases() int { return wavefront.NumWavefronts(p.Wf) }

// Describe returns a one-line structural summary.
func (p *Problem) Describe() string {
	return fmt.Sprintf("%s: n=%d nnz(A)=%d nnz(L)=%d phases=%d",
		p.Name, p.A.N, p.A.NNZ(), p.L.NNZ(), p.Phases())
}

// AllNames returns every built-in problem name, sorted.
func AllNames() []string {
	names := append(append(append([]string{}, Names()...), LargeNames()...), SyntheticNames()...)
	sort.Strings(names)
	return names
}
