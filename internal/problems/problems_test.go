package problems

import (
	"strings"
	"testing"

	"doconsider/internal/wavefront"
)

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-problem"); err == nil {
		t.Error("Get accepted unknown name")
	}
}

func TestGetCaches(t *testing.T) {
	a, err := Get("SPE4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("SPE4")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Get did not cache")
	}
}

func TestProblemInvariants(t *testing.T) {
	// Spot-check a cheap subset; full Table 1 set is exercised by the
	// experiment drivers.
	for _, name := range []string{"SPE1", "SPE4", "5-PT", "65-4-1.5", "65mesh"} {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.A.N != p.L.N || len(p.Wf) != p.L.N || len(p.Work) != p.L.N {
			t.Fatalf("%s: inconsistent sizes", name)
		}
		if err := p.L.CheckWellFormed(); err != nil {
			t.Fatalf("%s: L malformed: %v", name, err)
		}
		// L unit lower triangular.
		for i := 0; i < p.L.N; i++ {
			cols, _ := p.L.Row(i)
			for _, c := range cols {
				if int(c) > i {
					t.Fatalf("%s: L has upper entry", name)
				}
			}
			if p.L.At(i, i) != 1 {
				t.Fatalf("%s: L diagonal not unit", name)
			}
		}
		if err := wavefront.Validate(p.Wf, p.Deps); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Phases() < 2 {
			t.Fatalf("%s: only %d phases", name, p.Phases())
		}
		if !strings.Contains(p.Describe(), name) {
			t.Errorf("%s: Describe missing name", name)
		}
	}
}

func TestRowWork(t *testing.T) {
	p := MustGet("SPE4")
	for i := 0; i < p.L.N; i++ {
		if p.Work[i] != float64(p.L.RowNNZ(i)) {
			t.Fatalf("work[%d] = %v, want %v", i, p.Work[i], float64(p.L.RowNNZ(i)))
		}
	}
	if TotalWork(p.Work) <= float64(p.L.N) {
		t.Error("total work should exceed n (off-diagonals exist)")
	}
}

func TestNameLists(t *testing.T) {
	if len(Names()) != 8 {
		t.Errorf("Names = %v", Names())
	}
	if len(TriSolveNames()) != 5 {
		t.Errorf("TriSolveNames = %v", TriSolveNames())
	}
	if len(SyntheticNames()) != 3 {
		t.Errorf("SyntheticNames = %v", SyntheticNames())
	}
	all := AllNames()
	if len(all) != 8+3+3 {
		t.Errorf("AllNames = %v", all)
	}
}

func TestSyntheticProblemParsesAnyLabel(t *testing.T) {
	p, err := Get("20-3-2")
	if err != nil {
		t.Fatal(err)
	}
	if p.A.N != 400 {
		t.Errorf("N = %d, want 400", p.A.N)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic on unknown name")
		}
	}()
	MustGet("bogus")
}
