package problems

import "testing"

// TestGoldenStructure pins the exact structural fingerprints of the
// generated test problems: any change to the generators, the zero-fill
// factorization or the wavefront computation that alters these numbers
// would silently change every experiment, so it must fail loudly here.
func TestGoldenStructure(t *testing.T) {
	golden := []struct {
		name   string
		n      int
		nnzA   int
		nnzL   int
		phases int
	}{
		{"SPE1", 1000, 6400, 3700, 28},
		{"SPE2", 1080, 38448, 19764, 90},
		{"SPE4", 1104, 6758, 3931, 40},
		{"SPE5", 3312, 60822, 32067, 120},
		{"5-PT", 3969, 19593, 11781, 125},
		{"9-PT", 3969, 34969, 19469, 187},
		{"65mesh", 4225, 20865, 12545, 129},
	}
	for _, g := range golden {
		p := MustGet(g.name)
		if p.A.N != g.n {
			t.Errorf("%s: n = %d, want %d", g.name, p.A.N, g.n)
		}
		if p.A.NNZ() != g.nnzA {
			t.Errorf("%s: nnz(A) = %d, want %d", g.name, p.A.NNZ(), g.nnzA)
		}
		if p.L.NNZ() != g.nnzL {
			t.Errorf("%s: nnz(L) = %d, want %d", g.name, p.L.NNZ(), g.nnzL)
		}
		if p.Phases() != g.phases {
			t.Errorf("%s: phases = %d, want %d", g.name, p.Phases(), g.phases)
		}
	}
}
