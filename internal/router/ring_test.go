package router

import (
	"math/rand"
	"testing"
)

// TestRingDeterminism checks that the ring is a pure function of its
// member set: input order, duplicates, and build path (fresh vs
// with/without) must not change any lookup. Every router instance has
// to agree on the topology or the tier falls apart.
func TestRingDeterminism(t *testing.T) {
	addrs := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000"}
	a := newRing(addrs, 64)
	b := newRing([]string{addrs[2], addrs[0], addrs[3], addrs[1], addrs[0]}, 64)
	c := newRing(addrs[:3], 64).with(addrs[3])

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		key := rng.Uint64()
		if a.lookup(key) != b.lookup(key) || a.lookup(key) != c.lookup(key) {
			t.Fatalf("key %#x: lookups disagree across build paths: %q %q %q",
				key, a.lookup(key), b.lookup(key), c.lookup(key))
		}
	}
	if a.size() != 4 || b.size() != 4 {
		t.Fatalf("size = %d/%d, want 4 (duplicates must collapse)", a.size(), b.size())
	}
}

// TestRingOwners checks the failover sequence: owners(key, max) starts
// at lookup(key), never repeats a backend, and is capped by membership.
func TestRingOwners(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1"}, 64)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		key := rng.Uint64()
		seq := r.owners(key, 3)
		if len(seq) != 3 {
			t.Fatalf("owners returned %d backends, want 3", len(seq))
		}
		if seq[0] != r.lookup(key) {
			t.Fatalf("owners[0] = %q, lookup = %q", seq[0], r.lookup(key))
		}
		if seq[0] == seq[1] || seq[1] == seq[2] || seq[0] == seq[2] {
			t.Fatalf("owners repeats a backend: %v", seq)
		}
	}
	if got := r.owners(1, 10); len(got) != 3 {
		t.Fatalf("owners capped at membership: got %d, want 3", len(got))
	}
	if got := newRing(nil, 64).owners(1, 3); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
}

// TestRingRemapBound is the consistent-hashing contract the warm
// handoff relies on: adding a backend moves keys ONLY onto the joiner,
// removing one moves ONLY the keys it owned, and the moved fraction
// stays near K/N (we allow 2x the ideal share for hash variance at 64
// vnodes — a modulo-hash router would move ~(N-1)/N of all keys and
// fail this by an order of magnitude).
func TestRingRemapBound(t *testing.T) {
	addrs := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000"}
	old := newRing(addrs, 64)
	const keys = 20000

	joiner := "10.0.0.5:9000"
	grown := old.with(joiner)
	rng := rand.New(rand.NewSource(3))
	moved := 0
	for i := 0; i < keys; i++ {
		key := rng.Uint64()
		was, now := old.lookup(key), grown.lookup(key)
		if was != now {
			moved++
			if now != joiner {
				t.Fatalf("key %#x moved %q -> %q on join; keys may only move to the joiner", key, was, now)
			}
		}
	}
	ideal := keys / (len(addrs) + 1)
	if moved > 2*ideal {
		t.Errorf("join moved %d of %d keys; ideal %d, bound %d", moved, keys, ideal, 2*ideal)
	}
	if moved == 0 {
		t.Error("join moved no keys; the joiner owns nothing")
	}

	leaver := addrs[1]
	shrunk := old.without(leaver)
	rng = rand.New(rand.NewSource(3))
	moved = 0
	for i := 0; i < keys; i++ {
		key := rng.Uint64()
		was, now := old.lookup(key), shrunk.lookup(key)
		if was != leaver {
			if now != was {
				t.Fatalf("key %#x owned by %q moved to %q on unrelated leave", key, was, now)
			}
			continue
		}
		moved++
		if now == leaver {
			t.Fatalf("key %#x still maps to departed backend %q", key, leaver)
		}
	}
	ideal = keys / len(addrs)
	if moved > 2*ideal {
		t.Errorf("leave moved %d of %d keys; ideal %d, bound %d", moved, keys, ideal, 2*ideal)
	}
}

// TestRingWithWithoutNoop checks the identity fast paths membership
// changes rely on to detect no-ops.
func TestRingWithWithoutNoop(t *testing.T) {
	r := newRing([]string{"a:1", "b:1"}, 16)
	if r.with("a:1") != r {
		t.Error("with(existing) should return the same ring")
	}
	if r.without("zzz:1") != r {
		t.Error("without(absent) should return the same ring")
	}
	if got := r.without("a:1").members(); len(got) != 1 || got[0] != "b:1" {
		t.Errorf("without(a:1) members = %v, want [b:1]", got)
	}
}
