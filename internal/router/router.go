package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/client"
	"doconsider/internal/server"
)

// Config parameterizes the front door. The zero value plus a backend
// list is serviceable; see withDefaults for the filled-in values.
type Config struct {
	Backends       []string      // replica addresses (host:port), at least one
	VNodes         int           // virtual nodes per backend (default 64)
	HealthInterval time.Duration // backend /healthz probe period (default 500ms)
	Retries        int           // extra attempts after a connection failure (default 2)
	RetryBackoff   time.Duration // base retry backoff, jittered and doubled per attempt (default 20ms)
	AffinityCap    int           // drift-chain affinity entries (default 4096)
	WarmLimit      int           // hot fingerprints handed off per losing replica on rebalance (default 32)
	HTTPClient     *http.Client  // backend transport (default: dedicated pooled client)
}

// Validate rejects nonsensical configurations, naming the offending
// field (the same contract as server.Config.Validate).
func (c Config) Validate() error {
	switch {
	case len(c.Backends) == 0:
		return errors.New("router: Config.Backends must name at least one replica")
	case c.VNodes < 0:
		return fmt.Errorf("router: Config.VNodes must be >= 0, got %d", c.VNodes)
	case c.HealthInterval < 0:
		return fmt.Errorf("router: Config.HealthInterval must be >= 0, got %v", c.HealthInterval)
	case c.Retries < 0:
		return fmt.Errorf("router: Config.Retries must be >= 0, got %d", c.Retries)
	case c.RetryBackoff < 0:
		return fmt.Errorf("router: Config.RetryBackoff must be >= 0, got %v", c.RetryBackoff)
	case c.AffinityCap < 0:
		return fmt.Errorf("router: Config.AffinityCap must be >= 0, got %d", c.AffinityCap)
	case c.WarmLimit < 0:
		return fmt.Errorf("router: Config.WarmLimit must be >= 0, got %d", c.WarmLimit)
	}
	for _, a := range c.Backends {
		if a == "" {
			return errors.New("router: Config.Backends contains an empty address")
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.AffinityCap == 0 {
		c.AffinityCap = 4096
	}
	if c.WarmLimit == 0 {
		c.WarmLimit = 32
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}}
	}
	return c
}

// backend is one replica: its client (shared transport), health bit and
// per-backend counters. Counters live here rather than in the metrics
// registry so a replica can leave and rejoin without duplicating
// registered series.
type backend struct {
	addr    string
	cli     *client.Client
	healthy atomic.Bool
	routed  atomic.Uint64 // responses relayed from this backend
	retried atomic.Uint64 // connection failures that moved the request on
	failed  atomic.Uint64 // requests that exhausted retries here
	stop    chan struct{} // closes the health loop
}

// BackendStats is one replica's row in the router's /v1/stats.
type BackendStats struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Routed  uint64 `json:"routed"`
	Retried uint64 `json:"retried"`
	Failed  uint64 `json:"failed"`
}

// RebalanceEvent records one ring membership change and its warm
// handoff: how many hot fingerprints remapped to the gaining replica
// and how many were successfully pre-warmed before cutover.
type RebalanceEvent struct {
	Kind   string  `json:"kind"` // "join" or "leave"
	Addr   string  `json:"addr"`
	Moved  int     `json:"moved"`
	Warmed int     `json:"warmed"`
	Ms     float64 `json:"ms"`
}

// StatsResponse is the router's GET /v1/stats payload.
type StatsResponse struct {
	Backends     []BackendStats    `json:"backends"`
	VNodes       int               `json:"vnodes"`
	Requests     uint64            `json:"requests"`
	BadRequests  uint64            `json:"bad_requests"`
	NoBackend    uint64            `json:"no_backend"`
	Retries      uint64            `json:"retries"`
	Failures     uint64            `json:"failures"`
	RouteKinds   map[string]uint64 `json:"route_kinds"`
	AffinitySize int               `json:"affinity_size"`
	AffinityHits uint64            `json:"affinity_hits"`
	Rebalances   []RebalanceEvent  `json:"rebalances"`
}

// Router is the stateless front door. Create with New, serve with Start
// (or mount Handler), stop with Shutdown. Membership changes go through
// AddBackend/RemoveBackend, which run the warm handoff protocol before
// cutting the ring over.
type Router struct {
	cfg     Config
	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener
	baseCtx context.Context
	cancel  context.CancelFunc
	reg     *server.Registry

	mu       sync.RWMutex // guards ring + backends membership
	ring     *ring
	backends map[string]*backend

	affinity *affinityMap

	requests     *server.Counter
	badRequests  *server.Counter
	noBackend    *server.Counter
	retries      *server.Counter
	failures     *server.Counter
	affinityHits *server.Counter
	rebalJoin    *server.Counter
	rebalLeave   *server.Counter
	routeKinds   [3]*server.Counter
	latency      *server.Histogram

	rebalMu    sync.Mutex
	rebalances []RebalanceEvent
}

// maxBodyBytes bounds buffered request bodies: the binary wire is
// already bounded by MaxFrameBytes; JSON carries base64/decimal
// overhead on the same content, so it gets headroom.
const maxBodyBytes = 4 * server.MaxFrameBytes

// New builds a router over cfg.Backends. Backends start healthy and are
// probed once Start (or Handler-mounted traffic) begins.
func New(cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := server.NewRegistry()
	rt := &Router{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		cancel:   cancel,
		reg:      reg,
		ring:     newRing(cfg.Backends, cfg.VNodes),
		backends: make(map[string]*backend),
		affinity: newAffinityMap(cfg.AffinityCap),

		requests:     reg.Counter("router_requests_total", "Solve requests received by the front door.", nil),
		badRequests:  reg.Counter("router_bad_requests_total", "Requests rejected before routing (malformed body).", nil),
		noBackend:    reg.Counter("router_no_backend_total", "Requests dropped because no backend was reachable.", nil),
		retries:      reg.Counter("router_retries_total", "Connection failures that moved a request to another attempt.", nil),
		failures:     reg.Counter("router_failures_total", "Requests that exhausted every backend attempt.", nil),
		affinityHits: reg.Counter("router_affinity_hits_total", "Requests routed by drift-chain affinity instead of the ring.", nil),
		rebalJoin:    reg.Counter("router_rebalance_total", "Ring rebalances by kind.", server.Labels{{"kind", "join"}}),
		rebalLeave:   reg.Counter("router_rebalance_total", "Ring rebalances by kind.", server.Labels{{"kind", "leave"}}),
	}
	for k := server.RouteFp; k <= server.RouteInline; k++ {
		rt.routeKinds[k] = reg.Counter("router_route_kind_total",
			"Requests by how they named their factor.", server.Labels{{"kind", k.String()}})
	}
	rt.latency = reg.Histogram("router_request_seconds", "Front-door request latency.",
		nil, server.DefaultLatencyBuckets)
	reg.GaugeFunc("router_backends", "Ring membership size.", nil, func() float64 {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		return float64(rt.ring.size())
	})
	reg.GaugeFunc("router_backends_healthy", "Backends currently passing health checks.", nil, func() float64 {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		n := 0
		for _, b := range rt.backends {
			if b.healthy.Load() {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("router_affinity_entries", "Live drift-chain affinity entries.", nil, func() float64 {
		return float64(rt.affinity.size())
	})

	for _, addr := range rt.ring.members() {
		rt.backends[addr] = rt.newBackend(addr)
	}

	rt.mux.HandleFunc("/v1/trisolve", rt.handleSolve)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/v1/stats", rt.handleStats)
	rt.mux.HandleFunc("/v1/cluster/join", rt.handleJoin)
	rt.mux.HandleFunc("/v1/cluster/leave", rt.handleLeave)
	rt.httpSrv = &http.Server{Handler: rt.mux}
	return rt, nil
}

// newBackend builds the replica handle and starts its health loop.
func (rt *Router) newBackend(addr string) *backend {
	b := &backend{
		addr: addr,
		cli:  client.New("http://"+addr, client.WithHTTPClient(rt.cfg.HTTPClient)),
		stop: make(chan struct{}),
	}
	b.healthy.Store(true) // optimistic: the first probe corrects this quickly
	go rt.healthLoop(b)
	return b
}

// healthLoop probes the backend's /healthz every HealthInterval. A
// draining server answers 503 and is routed around before it refuses
// solves.
func (rt *Router) healthLoop(b *backend) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.baseCtx.Done():
			return
		case <-b.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(rt.baseCtx, rt.cfg.HealthInterval)
			b.healthy.Store(b.cli.Healthy(ctx))
			cancel()
		}
	}
}

// Handler returns the router's HTTP handler for mounting on an external
// server.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *server.Registry { return rt.reg }

// Start listens on addr and serves in a background goroutine, returning
// once the listener is bound (Addr is valid immediately after).
func (rt *Router) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	rt.ln = ln
	go func() {
		if err := rt.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err // listener broke underneath us; observable as failed requests
		}
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (rt *Router) Addr() string {
	if rt.ln == nil {
		return ""
	}
	return rt.ln.Addr().String()
}

// Shutdown stops serving and the health loops. It does not touch the
// backends — they are independent processes.
func (rt *Router) Shutdown(ctx context.Context) error {
	var err error
	if rt.httpSrv != nil {
		err = rt.httpSrv.Shutdown(ctx)
	}
	rt.cancel()
	return err
}

// writeError mirrors the server's JSON error envelope so clients see
// one error shape through the front door.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: msg})
}

// handleSolve is the hot path: extract the routing key, pick the owning
// replica (drift-chain affinity first, ring otherwise), forward the raw
// body, and relay the reply verbatim — status, Retry-After and all.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	t0 := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return
	}
	contentType := r.Header.Get("Content-Type")
	binaryWire := strings.HasPrefix(contentType, server.FrameContentType)
	key, kind, err := server.RouteKey(body, binaryWire)
	if err != nil {
		rt.badRequests.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.requests.Inc()
	rt.routeKinds[kind].Inc()

	candidates := rt.candidatesFor(key)
	if len(candidates) == 0 {
		rt.noBackend.Inc()
		writeError(w, http.StatusServiceUnavailable, "no backends in the ring")
		return
	}
	rt.forward(w, r, candidates, key, kind, contentType, binaryWire, body)
	rt.latency.Observe(time.Since(t0).Seconds())
}

// candidatesFor returns the failover sequence for a key: the affinity
// pin first (a drift-repaired fingerprint lives where its chain
// started, not where the ring would hash it), then distinct ring owners
// clockwise from the key. Healthy backends sort before unhealthy ones,
// which are kept as a last resort — a stale health bit must not turn a
// reachable replica into a dropped request.
func (rt *Router) candidatesFor(key uint64) []*backend {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*backend, 0, 4)
	if addr, ok := rt.affinity.get(key); ok {
		if b := rt.backends[addr]; b != nil {
			rt.affinityHits.Inc()
			out = append(out, b)
		}
	}
	for _, addr := range rt.ring.owners(key, 3) {
		b := rt.backends[addr]
		if b == nil {
			continue
		}
		dup := false
		for _, have := range out {
			if have == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	// Stable partition: healthy first, preserving affinity/ring order
	// within each class.
	sorted := make([]*backend, 0, len(out))
	for _, b := range out {
		if b.healthy.Load() {
			sorted = append(sorted, b)
		}
	}
	for _, b := range out {
		if !b.healthy.Load() {
			sorted = append(sorted, b)
		}
	}
	return sorted
}

// forward tries candidates in order with bounded jittered retries on
// connection failure. Any HTTP response — including a 429/503 shed — is
// relayed to the caller as-is; only transport errors move the request
// to the next attempt.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, candidates []*backend,
	key uint64, kind server.RouteKind, contentType string, binaryWire bool, body []byte) {
	tenant := r.Header.Get(server.TenantHeader)
	attempts := rt.cfg.Retries + 1
	if attempts > len(candidates) {
		attempts = len(candidates)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		b := candidates[i]
		if i > 0 {
			// Jittered backoff before the failover attempt: a thundering
			// herd re-converging on one surviving replica in lockstep is
			// how a brownout becomes an outage.
			backoff := rt.cfg.RetryBackoff << (i - 1)
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-time.After(sleep):
			case <-r.Context().Done():
				writeError(w, http.StatusServiceUnavailable, "client gone during retry backoff")
				return
			}
		}
		resp, err := b.cli.Post(r.Context(), "/v1/trisolve", contentType, tenant, body)
		if err != nil {
			lastErr = err
			b.healthy.Store(false) // fast negative; the health loop restores it
			if i < attempts-1 {
				b.retried.Add(1)
				rt.retries.Inc()
			} else {
				b.failed.Add(1)
			}
			continue
		}
		rt.relay(w, resp, b, key, kind, binaryWire)
		return
	}
	rt.failures.Inc()
	msg := "no backend reachable"
	if lastErr != nil {
		msg = fmt.Sprintf("no backend reachable: %v", lastErr)
	}
	writeError(w, http.StatusBadGateway, msg)
}

// relay copies one backend response to the caller and, for successful
// drift requests, pins the repaired fingerprint to the replica that
// built it — the next by-fp resubmission of the drifted structure then
// lands on the warm plan instead of hashing to an arbitrary shard.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, b *backend,
	key uint64, kind server.RouteKind, binaryWire bool) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		b.failed.Add(1)
		rt.failures.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("reading backend response: %v", err))
		return
	}
	b.routed.Add(1)
	if resp.StatusCode == http.StatusOK && kind == server.RouteDrift {
		if fp, ok := server.ResponseFp(body, binaryWire); ok {
			rt.affinity.put(fp, b.addr)
			rt.affinity.put(key, b.addr) // the base chain stays pinned across rebalances too
		}
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleHealthz reports front-door health: 200 while at least one
// backend is passing checks.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rt.mu.RLock()
	healthy := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			healthy++
		}
	}
	rt.mu.RUnlock()
	if healthy == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy backends")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the router's Prometheus exposition.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = rt.reg.WritePrometheus(w)
}

// Stats snapshots the router's counters and topology.
func (rt *Router) Stats() StatsResponse {
	rt.mu.RLock()
	backends := make([]BackendStats, 0, len(rt.backends))
	for _, addr := range rt.ring.members() {
		b := rt.backends[addr]
		if b == nil {
			continue
		}
		backends = append(backends, BackendStats{
			Addr:    b.addr,
			Healthy: b.healthy.Load(),
			Routed:  b.routed.Load(),
			Retried: b.retried.Load(),
			Failed:  b.failed.Load(),
		})
	}
	vnodes := rt.ring.vnodes
	rt.mu.RUnlock()
	rt.rebalMu.Lock()
	rebal := append([]RebalanceEvent(nil), rt.rebalances...)
	rt.rebalMu.Unlock()
	kinds := make(map[string]uint64, 3)
	for k := server.RouteFp; k <= server.RouteInline; k++ {
		kinds[k.String()] = rt.routeKinds[k].Value()
	}
	return StatsResponse{
		Backends:     backends,
		VNodes:       vnodes,
		Requests:     rt.requests.Value(),
		BadRequests:  rt.badRequests.Value(),
		NoBackend:    rt.noBackend.Value(),
		Retries:      rt.retries.Value(),
		Failures:     rt.failures.Value(),
		RouteKinds:   kinds,
		AffinitySize: rt.affinity.size(),
		AffinityHits: rt.affinityHits.Value(),
		Rebalances:   rebal,
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rt.Stats())
}

// clusterChange is the /v1/cluster/join and /v1/cluster/leave body.
type clusterChange struct {
	Addr string `json:"addr"`
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	rt.handleMembership(w, r, rt.AddBackend)
}

func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	rt.handleMembership(w, r, rt.RemoveBackend)
}

func (rt *Router) handleMembership(w http.ResponseWriter, r *http.Request,
	change func(context.Context, string) (RebalanceEvent, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req clusterChange
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "addr required")
		return
	}
	ev, err := change(r.Context(), req.Addr)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ev)
}

// recordRebalance appends the event to the bounded history (newest
// last, capped at 64).
func (rt *Router) recordRebalance(ev RebalanceEvent) {
	rt.rebalMu.Lock()
	rt.rebalances = append(rt.rebalances, ev)
	if len(rt.rebalances) > 64 {
		rt.rebalances = rt.rebalances[len(rt.rebalances)-64:]
	}
	rt.rebalMu.Unlock()
}

// AddBackend joins a replica to the ring. Before cutover, the router
// asks each losing replica for its hot fingerprints (/v1/shard/plans),
// exports the ones the new ring assigns to the joiner
// (/v1/shard/factor) and replays them into it (/v1/shard/warm) — so the
// joiner's first routed request finds its factor registered and its
// plan built.
func (rt *Router) AddBackend(ctx context.Context, addr string) (RebalanceEvent, error) {
	t0 := time.Now()
	rt.mu.RLock()
	old := rt.ring
	_, exists := rt.backends[addr]
	rt.mu.RUnlock()
	if exists {
		return RebalanceEvent{}, fmt.Errorf("router: backend %s already in the ring", addr)
	}
	next := old.with(addr)
	gain := rt.newBackend(addr)

	moved, warmed := 0, 0
	for _, loser := range old.members() {
		rt.mu.RLock()
		lb := rt.backends[loser]
		rt.mu.RUnlock()
		if lb == nil {
			continue
		}
		plans := rt.shardPlans(ctx, lb)
		for _, p := range plans {
			fp, err := parseHexFp64(p.Fp)
			if err != nil {
				continue
			}
			// Only fingerprints this replica owns today and loses to the
			// joiner move; everything else stays put (the K/N contract).
			if old.lookup(fp) != loser || next.lookup(fp) != addr {
				continue
			}
			moved++
			if rt.warmOne(ctx, lb, gain, p) {
				warmed++
			}
		}
	}

	rt.mu.Lock()
	rt.ring = next
	rt.backends[addr] = gain
	rt.mu.Unlock()
	rt.rebalJoin.Inc()
	ev := RebalanceEvent{Kind: "join", Addr: addr, Moved: moved, Warmed: warmed,
		Ms: float64(time.Since(t0).Nanoseconds()) / 1e6}
	rt.recordRebalance(ev)
	return ev, nil
}

// RemoveBackend removes a replica from the ring. If the replica is
// still reachable its hot fingerprints are handed off to their new
// owners before cutover; a dead replica (crash) just leaves, and its
// keys rebuild cold on their new shards.
func (rt *Router) RemoveBackend(ctx context.Context, addr string) (RebalanceEvent, error) {
	t0 := time.Now()
	rt.mu.RLock()
	old := rt.ring
	lb := rt.backends[addr]
	rt.mu.RUnlock()
	if lb == nil {
		return RebalanceEvent{}, fmt.Errorf("router: backend %s not in the ring", addr)
	}
	if old.size() == 1 {
		return RebalanceEvent{}, errors.New("router: refusing to remove the last backend")
	}
	next := old.without(addr)

	moved, warmed := 0, 0
	for _, p := range rt.shardPlans(ctx, lb) {
		fp, err := parseHexFp64(p.Fp)
		if err != nil {
			continue
		}
		if old.lookup(fp) != addr {
			continue
		}
		moved++
		rt.mu.RLock()
		gain := rt.backends[next.lookup(fp)]
		rt.mu.RUnlock()
		if gain != nil && rt.warmOne(ctx, lb, gain, p) {
			warmed++
		}
	}

	rt.mu.Lock()
	rt.ring = next
	delete(rt.backends, addr)
	rt.mu.Unlock()
	close(lb.stop)
	rt.affinity.dropAddr(addr)
	rt.rebalLeave.Inc()
	ev := RebalanceEvent{Kind: "leave", Addr: addr, Moved: moved, Warmed: warmed,
		Ms: float64(time.Since(t0).Nanoseconds()) / 1e6}
	rt.recordRebalance(ev)
	return ev, nil
}

// shardPlans enumerates a replica's hottest fingerprints, soft-failing
// (a dead replica has nothing to hand off).
func (rt *Router) shardPlans(ctx context.Context, b *backend) []server.ShardPlan {
	var resp server.ShardPlansResponse
	path := fmt.Sprintf("/v1/shard/plans?limit=%d", rt.cfg.WarmLimit)
	if err := b.cli.GetJSON(ctx, path, &resp); err != nil {
		return nil
	}
	return resp.Plans
}

// warmOne moves one factor: export from the loser, replay into the
// gainer. Both legs soft-fail — a missed warm just means a cold first
// request on the new shard, not an outage.
func (rt *Router) warmOne(ctx context.Context, loser, gain *backend, p server.ShardPlan) bool {
	var sf server.ShardFactor
	if err := loser.cli.GetJSON(ctx, "/v1/shard/factor?fp="+p.Fp, &sf); err != nil {
		return false
	}
	return gain.cli.PostJSON(ctx, "/v1/shard/warm", sf, nil) == nil
}

// parseHexFp64 parses a %016x fingerprint.
func parseHexFp64(s string) (uint64, error) {
	var fp uint64
	_, err := fmt.Sscanf(s, "%x", &fp)
	return fp, err
}
