package router

import (
	"context"
	"fmt"
	"sync"

	"doconsider/internal/server"
)

// Cluster is an in-process multi-replica deployment: N trisolve servers
// on loopback ports behind one Router. It exists so the distributed
// tier is exercisable in a single process — `loops cluster`, the
// scaling demo (`loops loadgen -cluster`) and the chaos tests all run
// on it, race detector and all.
type Cluster struct {
	scfg   server.Config
	router *Router

	mu      sync.Mutex
	servers map[string]*server.Server // live replicas by address
}

// NewCluster starts replicas servers (each configured with scfg) and a
// router over them listening on addr ("127.0.0.1:0" for an ephemeral
// port). rcfg.Backends is filled in by the cluster; leave it nil.
func NewCluster(replicas int, scfg server.Config, rcfg Config, addr string) (*Cluster, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("router: cluster needs at least 1 replica, got %d", replicas)
	}
	c := &Cluster{scfg: scfg, servers: make(map[string]*server.Server, replicas)}
	addrs := make([]string, 0, replicas)
	for i := 0; i < replicas; i++ {
		s, addr, err := c.startReplica()
		if err != nil {
			c.stopAll()
			return nil, err
		}
		c.servers[addr] = s
		addrs = append(addrs, addr)
	}
	rcfg.Backends = addrs
	rt, err := New(rcfg)
	if err != nil {
		c.stopAll()
		return nil, err
	}
	if err := rt.Start(addr); err != nil {
		c.stopAll()
		return nil, err
	}
	c.router = rt
	return c, nil
}

func (c *Cluster) startReplica() (*server.Server, string, error) {
	s, err := server.New(c.scfg)
	if err != nil {
		return nil, "", err
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		return nil, "", err
	}
	return s, s.Addr(), nil
}

// URL returns the router's base URL — the cluster's single front door.
func (c *Cluster) URL() string { return "http://" + c.router.Addr() }

// Router returns the front door for direct inspection.
func (c *Cluster) Router() *Router { return c.router }

// Addrs returns the live replica addresses.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.servers))
	for a := range c.servers {
		addrs = append(addrs, a)
	}
	return addrs
}

// Replicas returns the live replica count.
func (c *Cluster) Replicas() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.servers)
}

// Server returns a live replica by address (nil if killed or unknown).
func (c *Cluster) Server(addr string) *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[addr]
}

// Kill hard-stops one replica and removes it from the ring — the crash
// case. The server is shut down FIRST, so the router's warm handoff
// finds nobody home and the departed keys rebuild cold on their new
// shards (exactly what a real crash costs).
func (c *Cluster) Kill(ctx context.Context, addr string) error {
	c.mu.Lock()
	s := c.servers[addr]
	delete(c.servers, addr)
	c.mu.Unlock()
	if s == nil {
		return fmt.Errorf("router: no live replica at %s", addr)
	}
	_ = s.Shutdown(ctx) // drain error is expected noise when killing under load
	_, err := c.router.RemoveBackend(ctx, addr)
	return err
}

// Drain gracefully removes one replica: warm handoff first (the replica
// is still serving /v1/shard/* during the export), then ring cutover,
// then shutdown.
func (c *Cluster) Drain(ctx context.Context, addr string) error {
	c.mu.Lock()
	s := c.servers[addr]
	c.mu.Unlock()
	if s == nil {
		return fmt.Errorf("router: no live replica at %s", addr)
	}
	if _, err := c.router.RemoveBackend(ctx, addr); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.servers, addr)
	c.mu.Unlock()
	return s.Shutdown(ctx)
}

// Rejoin starts a fresh replica and joins it to the ring; the router
// pre-warms it from the losing replicas before cutover. Returns the new
// replica's address.
func (c *Cluster) Rejoin(ctx context.Context) (string, error) {
	s, addr, err := c.startReplica()
	if err != nil {
		return "", err
	}
	if _, err := c.router.AddBackend(ctx, addr); err != nil {
		sctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = s.Shutdown(sctx)
		return "", err
	}
	c.mu.Lock()
	c.servers[addr] = s
	c.mu.Unlock()
	return addr, nil
}

func (c *Cluster) stopAll() {
	c.mu.Lock()
	servers := c.servers
	c.servers = make(map[string]*server.Server)
	c.mu.Unlock()
	for _, s := range servers {
		_ = s.Shutdown(context.Background())
	}
}

// Close shuts the router down, then every live replica.
func (c *Cluster) Close(ctx context.Context) error {
	var err error
	if c.router != nil {
		err = c.router.Shutdown(ctx)
	}
	c.mu.Lock()
	servers := c.servers
	c.servers = make(map[string]*server.Server)
	c.mu.Unlock()
	for _, s := range servers {
		if serr := s.Shutdown(ctx); err == nil {
			err = serr
		}
	}
	return err
}
