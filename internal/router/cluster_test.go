package router

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"doconsider/client"
	"doconsider/internal/server"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
)

// clusterFactor returns a small lower factor with a distinct structure
// per mesh size m.
func clusterFactor(m int) *sparse.CSR {
	return stencil.Laplace2D(m, m).LowerWithDiag()
}

func testBatch(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([][]float64, 2)
	for j := range b {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() + 0.1
		}
		b[j] = v
	}
	return b
}

func newTestCluster(t *testing.T, replicas int, scfg server.Config, rcfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(replicas, scfg, rcfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := c.Close(ctx); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	return c
}

// TestClusterWarmHandoffOnDrain checks the rebalance contract on a
// graceful leave: exactly the fingerprints the drained replica owned
// move (the K/N bound), every one of them is pre-warmed into its new
// owner, and by-fp resubmissions keep resolving with no 404 — the
// cutover lands on warm caches.
func TestClusterWarmHandoffOnDrain(t *testing.T) {
	c := newTestCluster(t, 3, server.Config{Procs: 1}, Config{})
	if c.Server(c.Addrs()[0]) == nil || c.Server("nonsense:0") != nil {
		t.Fatal("Cluster.Server does not index replicas by address")
	}
	ctx := context.Background()
	cli := client.New(c.URL())

	// Register six distinct factors through the front door.
	type reg struct {
		f  *client.Factor
		fp uint64
	}
	var regs []reg
	for m := 4; m < 10; m++ {
		f := client.NewFactor(clusterFactor(m), true)
		if _, err := f.Solve(ctx, cli, testBatch(f.N(), int64(m))); err != nil {
			t.Fatalf("register m=%d: %v", m, err)
		}
		fp, err := parseHexFp64(f.Fp())
		if err != nil {
			t.Fatalf("m=%d returned fingerprint %q: %v", m, f.Fp(), err)
		}
		regs = append(regs, reg{f: f, fp: fp})
	}

	// Count what the departing replica owns under the current ring.
	loser := c.Addrs()[0]
	old := newRing(c.Addrs(), 64)
	owned := 0
	for _, r := range regs {
		if old.lookup(r.fp) == loser {
			owned++
		}
	}

	if err := c.Drain(ctx, loser); err != nil {
		t.Fatalf("drain %s: %v", loser, err)
	}
	st := c.Router().Stats()
	if len(st.Rebalances) != 1 {
		t.Fatalf("rebalance events = %d, want 1", len(st.Rebalances))
	}
	ev := st.Rebalances[0]
	if ev.Kind != "leave" || ev.Addr != loser {
		t.Fatalf("event = %+v, want leave of %s", ev, loser)
	}
	if ev.Moved != owned {
		t.Errorf("moved %d fingerprints, want exactly the %d the leaver owned (K/N contract)", ev.Moved, owned)
	}
	if ev.Warmed != ev.Moved {
		t.Errorf("warmed %d of %d moved fingerprints; a live drain must hand off all of them", ev.Warmed, ev.Moved)
	}

	// Every factor still resolves by fingerprint alone: no fallback
	// possible here because the request names no matrix.
	lower := true
	for i, r := range regs {
		if _, err := cli.Solve(ctx, &client.Request{Fp: r.f.Fp(), Lower: &lower, B: testBatch(r.f.N(), int64(i))}); err != nil {
			t.Errorf("by-fp solve after drain (factor %d, fp %s): %v", i, r.f.Fp(), err)
		}
	}
}

// TestClusterKillRebuildsCold checks the crash path: a killed replica
// hands nothing off (Warmed = 0), and its fingerprints answer 404 until
// resubmitted in full — the honest cost of a crash, never a wrong answer.
func TestClusterKillRebuildsCold(t *testing.T) {
	c := newTestCluster(t, 2, server.Config{Procs: 1}, Config{RetryBackoff: time.Millisecond})
	ctx := context.Background()
	cli := client.New(c.URL())

	var regs []*client.Factor
	for m := 4; m < 10; m++ {
		f := client.NewFactor(clusterFactor(m), true)
		if _, err := f.Solve(ctx, cli, testBatch(f.N(), int64(m))); err != nil {
			t.Fatalf("register m=%d: %v", m, err)
		}
		regs = append(regs, f)
	}
	victim := c.Addrs()[0]
	old := newRing(c.Addrs(), 64)

	if err := c.Kill(ctx, victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	ev := c.Router().Stats().Rebalances[0]
	if ev.Warmed != 0 {
		t.Errorf("killed replica warmed %d fingerprints; a crash has nothing to hand off", ev.Warmed)
	}

	lower := true
	sawCold := false
	for i, f := range regs {
		fp, _ := parseHexFp64(f.Fp())
		_, err := cli.Solve(ctx, &client.Request{Fp: f.Fp(), Lower: &lower, B: testBatch(f.N(), int64(i))})
		if old.lookup(fp) != victim {
			if err != nil {
				t.Errorf("factor %d survived on %s but by-fp solve failed: %v", i, old.lookup(fp), err)
			}
			continue
		}
		// Owned by the victim: the new shard never saw it.
		if client.StatusOf(err) != 404 {
			t.Errorf("factor %d owned by killed replica: by-fp err = %v, want 404", i, err)
			continue
		}
		sawCold = true
		// Factor.Solve absorbs the 404 with a full resubmission.
		if _, err := f.Solve(ctx, cli, testBatch(f.N(), int64(i))); err != nil {
			t.Errorf("factor %d full resubmission after crash: %v", i, err)
		}
	}
	if !sawCold {
		t.Skip("no registered fingerprint was owned by the killed replica; nothing to assert")
	}
}

// TestClusterChaos is the distributed tier's race-matrix test: clients
// hammer the front door while a replica is killed mid-load and a fresh
// one joins. Every request must end in a solution bit-identical to the
// single-server oracle — the tier may slow down under membership churn,
// never answer wrongly or hang.
func TestClusterChaos(t *testing.T) {
	scfg := server.Config{Procs: 2}
	c := newTestCluster(t, 3, scfg, Config{
		HealthInterval: 20 * time.Millisecond,
		RetryBackoff:   time.Millisecond,
	})
	ctx := context.Background()

	// Oracle: one standalone server answering the identical requests.
	oracle, err := server.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = oracle.Shutdown(sctx)
	}()
	ocli := client.New("http://" + oracle.Addr())

	const (
		templates = 4
		seeds     = 3
		clients   = 6
		perClient = 25
	)
	factors := make([]*client.Factor, templates)
	batches := make([][][][]float64, templates)
	expected := make([][][][]float64, templates)
	for ti := 0; ti < templates; ti++ {
		l := clusterFactor(4 + ti)
		factors[ti] = client.NewFactor(l, true)
		of := client.NewFactor(l, true)
		batches[ti] = make([][][]float64, seeds)
		expected[ti] = make([][][]float64, seeds)
		for si := 0; si < seeds; si++ {
			batches[ti][si] = testBatch(l.N, int64(ti*100+si))
			resp, err := of.SolveFull(ctx, ocli, batches[ti][si])
			if err != nil {
				t.Fatalf("oracle solve t=%d s=%d: %v", ti, si, err)
			}
			xs, err := resp.Solutions()
			if err != nil {
				t.Fatalf("oracle solutions t=%d s=%d: %v", ti, si, err)
			}
			expected[ti][si] = xs
		}
	}

	cli := client.New(c.URL(), client.WithRetry(6, 10*time.Millisecond))
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ti := (g + i) % templates
				si := (g * 7 * i) % seeds
				resp, err := factors[ti].Solve(ctx, cli, batches[ti][si])
				if err != nil {
					errs <- fmt.Errorf("client %d req %d (t=%d s=%d): %w", g, i, ti, si, err)
					return
				}
				got, err := resp.Solutions()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d (t=%d s=%d): %w", g, i, ti, si, err)
					return
				}
				want := expected[ti][si]
				for j := range want {
					for k := range want[j] {
						if got[j][k] != want[j][k] {
							errs <- fmt.Errorf("client %d req %d (t=%d s=%d): x[%d][%d] = %v, oracle %v",
								g, i, ti, si, j, k, got[j][k], want[j][k])
							return
						}
					}
				}
			}
		}(g)
	}

	// Membership churn mid-load: crash one replica, then grow back.
	time.Sleep(30 * time.Millisecond)
	victim := c.Addrs()[0]
	if err := c.Kill(ctx, victim); err != nil {
		t.Errorf("kill %s: %v", victim, err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Rejoin(ctx); err != nil {
		t.Errorf("rejoin: %v", err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c.Replicas() != 3 {
		t.Errorf("replicas = %d after kill+rejoin, want 3", c.Replicas())
	}
	st := c.Router().Stats()
	if st.Failures > 0 {
		t.Errorf("router reports %d exhausted requests; churn must be absorbed by retries", st.Failures)
	}
}

// TestClusterScaling measures 1-replica vs 4-replica throughput on the
// same workload. CPU-bound and meaningless on a single-core host, so it
// only runs when DOCONSIDER_PERF=1 (the repo's opt-in for wall-clock
// assertions).
func TestClusterScaling(t *testing.T) {
	if os.Getenv("DOCONSIDER_PERF") != "1" {
		t.Skip("set DOCONSIDER_PERF=1 for wall-clock scaling assertions")
	}
	const (
		clients   = 8
		perClient = 40
	)
	measure := func(replicas int) time.Duration {
		c := newTestCluster(t, replicas, server.Config{Procs: 2}, Config{})
		ctx := context.Background()
		cli := client.New(c.URL(), client.WithRetry(4, 5*time.Millisecond))
		// One factor per client: distinct fingerprints spread the by-fp
		// traffic across shards, which is what the tier scales on.
		fs := make([]*client.Factor, clients)
		for g := range fs {
			fs[g] = client.NewFactor(clusterFactor(20+g), true)
			if _, err := fs[g].Solve(ctx, cli, testBatch(fs[g].N(), 1)); err != nil {
				t.Fatalf("%d replicas: warmup %d: %v", replicas, g, err)
			}
		}
		t0 := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				f := fs[g]
				b := testBatch(f.N(), int64(g))
				for i := 0; i < perClient; i++ {
					if _, err := f.Solve(ctx, cli, b); err != nil {
						t.Errorf("%d replicas: %v", replicas, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return time.Since(t0)
	}
	t1 := measure(1)
	t4 := measure(4)
	speedup := float64(t1) / float64(t4)
	t.Logf("1 replica %v, 4 replicas %v: speedup %.2fx", t1, t4, speedup)
	if speedup < 3 {
		t.Errorf("4-replica speedup %.2fx, want >= 3x", speedup)
	}
}
