package router

import (
	"encoding/json"
	"math/rand"
	"testing"

	"doconsider/internal/server"
)

// BenchmarkRouteKey measures the front door's per-request decode cost:
// extracting the routing fingerprint from a warm by-fp resubmission on
// each wire. The binary path is an exact zero-allocation contract (the
// section table is pooled); the JSON path pays one SolveRequest decode.
func BenchmarkRouteKey(b *testing.B) {
	lower := true
	rhs := make([]float64, 64)
	for i := range rhs {
		rhs[i] = float64(i) + 0.5
	}
	req := &server.SolveRequest{Fp: "00000000deadbeef", Lower: &lower, B: [][]float64{rhs}}
	frame, err := server.EncodeRequestFrame(req)
	if err != nil {
		b.Fatal(err)
	}
	jsonBody, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("fp-binary", func(b *testing.B) {
		// One warm call first: the section-table scratch pool fills on
		// first use, and that one-time allocation must not bill the
		// measured loop at -benchtime 1x.
		if _, _, err := server.RouteKey(frame, true); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := server.RouteKey(frame, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fp-json", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := server.RouteKey(jsonBody, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRingLookup measures the consistent-hash step at production
// topology (8 backends x 64 vnodes). Zero allocations: the sorted point
// list is immutable and lookups are a binary search.
func BenchmarkRingLookup(b *testing.B) {
	addrs := make([]string, 8)
	for i := range addrs {
		addrs[i] = "10.0.0." + string(rune('1'+i)) + ":9000"
	}
	r := newRing(addrs, 64)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.lookup(keys[i&1023])
	}
}
