package router

import "sync"

// affinityMap pins fingerprints to replicas outside the ring's say-so.
// Drift chains create it: a base_fp+edits request is served on the
// shard owning the BASE fingerprint, and the repaired factor registers
// there under a NEW fingerprint that would hash anywhere. Pinning the
// new fingerprint keeps the whole chain — and every later by-fp
// resubmission of it — on the replica that already holds the plans.
//
// The map is bounded: at capacity, the oldest pin is overwritten
// (FIFO). A dropped pin is not a correctness event — the request falls
// back to ring routing and the target replica rebuilds the plan.
type affinityMap struct {
	mu   sync.Mutex
	cap  int
	m    map[uint64]string
	fifo []uint64
	next int
}

func newAffinityMap(cap int) *affinityMap {
	return &affinityMap{
		cap:  cap,
		m:    make(map[uint64]string, cap),
		fifo: make([]uint64, 0, cap),
	}
}

func (a *affinityMap) get(fp uint64) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	addr, ok := a.m[fp]
	return addr, ok
}

func (a *affinityMap) put(fp uint64, addr string) {
	if a.cap == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.m[fp]; exists {
		a.m[fp] = addr
		return
	}
	if len(a.fifo) < a.cap {
		a.fifo = append(a.fifo, fp)
	} else {
		delete(a.m, a.fifo[a.next])
		a.fifo[a.next] = fp
		a.next = (a.next + 1) % a.cap
	}
	a.m[fp] = addr
}

// dropAddr removes every pin pointing at a departed replica.
func (a *affinityMap) dropAddr(addr string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for fp, v := range a.m {
		if v == addr {
			delete(a.m, fp)
		}
	}
}

func (a *affinityMap) size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.m)
}
