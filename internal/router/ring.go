// Package router is the distributed tier's stateless front door: it
// consistent-hashes /v1/trisolve requests across a set of server
// replicas by structural fingerprint, keeps drift chains on the replica
// holding their base plan, and warm-hands-off hot plan skeletons when
// the ring rebalances (replica join or leave) so cutover lands on warm
// caches instead of cold starts.
//
// The router speaks both wire formats (JSON and DCWF frames) without
// decoding request bodies beyond the routing key (server.RouteKey), and
// passes backend replies through honestly — a 429/503 shed reaches the
// caller with its Retry-After and trace ID intact. It exposes its own
// /metrics and /v1/stats (per-backend routed/retried/failed counters,
// ring topology, rebalance events) and /healthz (healthy while at least
// one backend is).
package router

import (
	"sort"

	"doconsider/internal/fphash"
)

// ringPoint is one virtual node: a backend address hashed to a position
// on the 64-bit ring.
type ringPoint struct {
	hash uint64
	addr string
}

// ring is an immutable consistent-hash ring over backend addresses.
// Immutability is the concurrency story: lookups take a snapshot
// pointer and never see a half-built ring; membership changes build a
// new ring (with/without) and swap it in.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	addrs  []string    // sorted member list
}

// vnodeHash positions virtual node i of a backend. The fingerprint hash
// keeps the whole tier on one hash family — deterministic across
// processes, so every router instance agrees on the topology.
func vnodeHash(addr string, i int) uint64 {
	h := uint64(fphash.Offset)
	for j := 0; j < len(addr); j++ {
		h = fphash.Mix(h, uint64(addr[j]))
	}
	h = fphash.Mix(h, uint64(i))
	return fphash.Final(h)
}

// newRing builds a ring with vnodes virtual nodes per backend.
// Duplicate addresses are collapsed.
func newRing(addrs []string, vnodes int) *ring {
	seen := make(map[string]bool, len(addrs))
	members := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a != "" && !seen[a] {
			seen[a] = true
			members = append(members, a)
		}
	}
	sort.Strings(members)
	r := &ring{vnodes: vnodes, addrs: members}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	for _, a := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(a, i), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr // total order for determinism
	})
	return r
}

// members returns the sorted backend list.
func (r *ring) members() []string { return r.addrs }

// size returns the member count.
func (r *ring) size() int { return len(r.addrs) }

// lookup returns the backend owning key: the first virtual node at or
// clockwise of the key's ring position.
func (r *ring) lookup(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].addr
}

// owners returns up to max distinct backends in ring order starting at
// the key's owner — the failover sequence for the key.
func (r *ring) owners(key uint64, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.addrs) {
		max = len(r.addrs)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for n := 0; n < len(r.points) && len(out) < max; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}

// with returns a new ring with addr added (or r itself if present).
func (r *ring) with(addr string) *ring {
	for _, a := range r.addrs {
		if a == addr {
			return r
		}
	}
	return newRing(append(append([]string(nil), r.addrs...), addr), r.vnodes)
}

// without returns a new ring with addr removed (or r itself if absent).
func (r *ring) without(addr string) *ring {
	rest := make([]string, 0, len(r.addrs))
	for _, a := range r.addrs {
		if a != addr {
			rest = append(rest, a)
		}
	}
	if len(rest) == len(r.addrs) {
		return r
	}
	return newRing(rest, r.vnodes)
}
