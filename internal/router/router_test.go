package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"doconsider/internal/server"
)

// fakeBackend is a scripted replica: /healthz answers 200, /v1/trisolve
// runs the provided handler and counts hits.
type fakeBackend struct {
	ts    *httptest.Server
	addr  string
	hits  atomic.Int64
	last  atomic.Value // last tenant header seen on /v1/trisolve
	solve http.HandlerFunc
}

func newFakeBackend(t *testing.T, solve http.HandlerFunc) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{solve: solve}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/trisolve", func(w http.ResponseWriter, r *http.Request) {
		fb.hits.Add(1)
		fb.last.Store(r.Header.Get(server.TenantHeader))
		fb.solve(w, r)
	})
	fb.ts = httptest.NewServer(mux)
	fb.addr = strings.TrimPrefix(fb.ts.URL, "http://")
	t.Cleanup(fb.ts.Close)
	return fb
}

// newTestRouter mounts a router on an httptest server.
func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	return rt, ts
}

func fpBody(fp uint64) []byte {
	return []byte(fmt.Sprintf(`{"fp":"%016x","b":[[1]]}`, fp))
}

func postSolve(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/trisolve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRouterShedPassThrough checks the honest-shedding contract: a
// backend 429 reaches the caller with its status, Retry-After, and body
// (trace ID included) intact, and the tenant header rides through to
// the backend for admission accounting.
func TestRouterShedPassThrough(t *testing.T) {
	const shedBody = `{"error":"shed under load","trace_id":"t-shed-1"}`
	fb := newFakeBackend(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, shedBody)
	})
	_, ts := newTestRouter(t, Config{Backends: []string{fb.addr}})

	resp := postSolve(t, ts.URL, fpBody(42), map[string]string{
		server.TenantHeader: "acme;class=latency",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 passed through", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want %q preserved", got, "3")
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != shedBody {
		t.Errorf("body = %q, want backend shed body verbatim", body)
	}
	if got := fb.last.Load(); got != "acme;class=latency" {
		t.Errorf("backend saw tenant header %q, want %q", got, "acme;class=latency")
	}
}

// TestRouterRetryFailover checks the bounded-retry path: a request
// whose ring owner is unreachable fails over to the next owner, the
// retry is counted, and the dead backend is marked unhealthy so later
// requests skip it.
func TestRouterRetryFailover(t *testing.T) {
	live := newFakeBackend(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"x":[[1]]}`)
	})
	// A dead backend: bind a port, then close it so connections refuse.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	rt, ts := newTestRouter(t, Config{
		Backends: []string{dead, live.addr}, Retries: 2, RetryBackoff: time.Millisecond,
		HealthInterval: time.Hour, // only the request path may flip health bits here
	})

	// A key owned by the dead backend must still resolve via failover.
	r := newRing([]string{dead, live.addr}, 64)
	rng := rand.New(rand.NewSource(7))
	key := rng.Uint64()
	for r.lookup(key) != dead {
		key = rng.Uint64()
	}
	resp := postSolve(t, ts.URL, fpBody(key), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after failover", resp.StatusCode)
	}
	st := rt.Stats()
	if st.Retries == 0 {
		t.Error("no retry counted for a dead ring owner")
	}
	for _, b := range st.Backends {
		if b.Addr == dead && b.Healthy {
			t.Error("dead backend still marked healthy after a connection failure")
		}
	}

	// The second request to the same key goes straight to the healthy
	// backend — no new retries.
	before := rt.Stats().Retries
	resp = postSolve(t, ts.URL, fpBody(key), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status = %d, want 200", resp.StatusCode)
	}
	if after := rt.Stats().Retries; after != before {
		t.Errorf("healthy-first ordering should skip the dead backend without retries (got %d new)", after-before)
	}
}

// TestRouterDriftAffinity checks drift-chain pinning: after a drift
// request is repaired on shard A, a by-fp resubmission of the repaired
// fingerprint routes back to A even when the ring hashes it to shard B.
func TestRouterDriftAffinity(t *testing.T) {
	// Both backends answer drift requests with the same repaired
	// fingerprint; it is chosen below (before any request flows) so the
	// ring maps it to B while the drift chain runs on A.
	var repairedFp atomic.Uint64
	mkBackend := func() *fakeBackend {
		return newFakeBackend(t, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"x":[[1]],"fp":"%016x"}`, repairedFp.Load())
		})
	}
	a, b := mkBackend(), mkBackend()
	r := newRing([]string{a.addr, b.addr}, 64)
	var baseFp uint64
	rng := rand.New(rand.NewSource(7))
	for baseFp == 0 || repairedFp.Load() == 0 {
		k := rng.Uint64()
		if r.lookup(k) == a.addr && baseFp == 0 {
			baseFp = k
		}
		if r.lookup(k) == b.addr && repairedFp.Load() == 0 {
			repairedFp.Store(k)
		}
	}
	rt, ts := newTestRouter(t, Config{Backends: []string{a.addr, b.addr}})

	drift := []byte(fmt.Sprintf(`{"base_fp":"%016x","edits":[{"row":0,"val":[1]}],"b":[[1]]}`, baseFp))
	resp := postSolve(t, ts.URL, drift, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drift status = %d, want 200", resp.StatusCode)
	}
	if a.hits.Load() != 1 || b.hits.Load() != 0 {
		t.Fatalf("drift hit a=%d b=%d, want the base fingerprint's owner (a)", a.hits.Load(), b.hits.Load())
	}

	// The repaired fingerprint hashes to B, but the pin keeps it on A.
	if got := r.lookup(repairedFp.Load()); got != b.addr {
		t.Fatalf("test setup: repaired fp owned by %q, want b=%q", got, b.addr)
	}
	resp = postSolve(t, ts.URL, fpBody(repairedFp.Load()), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("by-fp status = %d, want 200", resp.StatusCode)
	}
	if a.hits.Load() != 2 || b.hits.Load() != 0 {
		t.Errorf("by-fp resubmission hit a=%d b=%d, want affinity to pin it to a", a.hits.Load(), b.hits.Load())
	}
	st := rt.Stats()
	if st.AffinityHits != 1 {
		t.Errorf("AffinityHits = %d, want 1", st.AffinityHits)
	}
	if st.AffinitySize != 2 {
		t.Errorf("AffinitySize = %d, want 2 (repaired fp + base chain)", st.AffinitySize)
	}
}

// TestRouterBadRequests checks the reject-before-routing path.
func TestRouterBadRequests(t *testing.T) {
	fb := newFakeBackend(t, func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{}`)
	})
	rt, ts := newTestRouter(t, Config{Backends: []string{fb.addr}})

	resp, err := http.Get(ts.URL + "/v1/trisolve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	for _, body := range []string{"{not json", `{"b":[[1]]}`, `{"fp":"zz"}`} {
		resp := postSolve(t, ts.URL, []byte(body), nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	if st := rt.Stats(); st.BadRequests != 3 {
		t.Errorf("BadRequests = %d, want 3", st.BadRequests)
	}
	if n := fb.hits.Load(); n != 0 {
		t.Errorf("backend saw %d requests; malformed bodies must not burn a round trip", n)
	}
}

// TestRouterMembershipEndpoints drives join/leave over HTTP and checks
// the guard rails: duplicate join conflicts, removing the last backend
// is refused.
func TestRouterMembershipEndpoints(t *testing.T) {
	a := newFakeBackend(t, func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, `{}`) })
	b := newFakeBackend(t, func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, `{}`) })
	rt, ts := newTestRouter(t, Config{Backends: []string{a.addr}})

	post := func(path, addr string) int {
		body, _ := json.Marshal(clusterChange{Addr: addr})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/cluster/join", b.addr); code != http.StatusOK {
		t.Fatalf("join = %d, want 200", code)
	}
	if code := post("/v1/cluster/join", b.addr); code != http.StatusConflict {
		t.Errorf("duplicate join = %d, want 409", code)
	}
	if got := len(rt.Stats().Backends); got != 2 {
		t.Fatalf("backends = %d after join, want 2", got)
	}
	if code := post("/v1/cluster/leave", b.addr); code != http.StatusOK {
		t.Fatalf("leave = %d, want 200", code)
	}
	if code := post("/v1/cluster/leave", a.addr); code != http.StatusConflict {
		t.Errorf("removing the last backend = %d, want 409", code)
	}
	st := rt.Stats()
	if len(st.Rebalances) != 2 {
		t.Fatalf("rebalance events = %d, want 2", len(st.Rebalances))
	}
	if st.Rebalances[0].Kind != "join" || st.Rebalances[1].Kind != "leave" {
		t.Errorf("rebalance kinds = %s/%s, want join/leave", st.Rebalances[0].Kind, st.Rebalances[1].Kind)
	}
}

func contextWithTimeout(d time.Duration) (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// TestRouterConfigValidate pins the config contract: every nonsensical
// field is rejected by name, mirroring server.Config.Validate.
func TestRouterConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Backends: []string{"a:1"}, VNodes: -1},
		{Backends: []string{"a:1"}, HealthInterval: -time.Second},
		{Backends: []string{"a:1"}, Retries: -1},
		{Backends: []string{"a:1"}, RetryBackoff: -time.Second},
		{Backends: []string{"a:1"}, AffinityCap: -1},
		{Backends: []string{"a:1"}, WarmLimit: -1},
		{Backends: []string{"a:1", ""}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated despite a nonsensical field: %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted invalid config %d", i)
		}
	}
	if err := (Config{Backends: []string{"a:1"}}).Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

// TestRouterObservability covers the front door's own surface: /healthz
// flips with backend health, /metrics carries the router families, and
// /v1/stats is the JSON view of Stats().
func TestRouterObservability(t *testing.T) {
	fb := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"fp":"00000000000000aa","solutions":[[1]]}`)
	})
	rt, ts := newTestRouter(t, Config{Backends: []string{fb.addr}})
	if rt.Registry() == nil {
		t.Fatal("router has no metrics registry")
	}

	resp := postSolve(t, ts.URL, fpBody(0xaa), nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve through router = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with a healthy backend = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"router_requests_total", "router_backends 1", "router_backends_healthy",
		"router_affinity_entries", "router_request_seconds",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("router metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.VNodes != 64 || len(st.Backends) != 1 || !st.Backends[0].Healthy {
		t.Errorf("stats = %+v, want >=1 request over 1 healthy backend at 64 vnodes", st)
	}
}

// TestRouterHealthzAllBackendsDown pins the front door's own liveness
// contract: once every backend fails its checks, /healthz turns 503 so
// an upstream balancer stops sending traffic here.
func TestRouterHealthzAllBackendsDown(t *testing.T) {
	_, ts := newTestRouter(t, Config{
		Backends:       []string{"127.0.0.1:1"},
		HealthInterval: 5 * time.Millisecond,
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz still %d with every backend down", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterMembershipBadRequests pins the join/leave input contract:
// wrong method, malformed body and a missing addr are each rejected
// before the ring is touched.
func TestRouterMembershipBadRequests(t *testing.T) {
	fb := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {})
	rt, ts := newTestRouter(t, Config{Backends: []string{fb.addr}})
	cases := []struct {
		method, body string
		want         int
	}{
		{http.MethodGet, "", http.StatusMethodNotAllowed},
		{http.MethodPost, "{not json", http.StatusBadRequest},
		{http.MethodPost, `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+"/v1/cluster/join", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %q = %d, want %d", tc.method, tc.body, resp.StatusCode, tc.want)
		}
	}
	if got := len(rt.Stats().Backends); got != 1 {
		t.Errorf("ring changed to %d backends on rejected membership requests", got)
	}
}
