// Package vec provides the dense vector kernels used by the preconditioned
// Krylov methods: SAXPY operations, inner products and norms, each with a
// sequential and a block-partitioned parallel implementation.
//
// The parallel versions follow the paper's Appendix II: "For p processors
// and a linear system of order n, the indices from 1 to n are divided into
// p contiguous groups of roughly equal size."
package vec

import (
	"math"
	"sync"
)

// Axpy computes y += alpha*x element-wise. x and y must have equal length.
func Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// AxpyParallel computes y += alpha*x using nproc goroutines over contiguous
// blocks.
func AxpyParallel(alpha float64, x, y []float64, nproc int) {
	parallelBlocks(len(y), nproc, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// DotParallel returns the inner product computed with nproc goroutines over
// contiguous blocks; partial sums are combined in block order so the result
// is deterministic for a fixed nproc.
func DotParallel(x, y []float64, nproc int) float64 {
	n := len(x)
	if nproc < 1 {
		nproc = 1
	}
	if nproc > n {
		nproc = n
	}
	if nproc <= 1 {
		return Dot(x, y)
	}
	partial := make([]float64, nproc)
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		lo, hi := n*p/nproc, n*(p+1)/nproc
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			partial[p] = s
		}(p, lo, hi)
	}
	wg.Wait()
	s := 0.0
	for _, v := range partial {
		s += v
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Norm2Parallel returns the Euclidean norm computed with nproc goroutines.
func Norm2Parallel(x []float64, nproc int) float64 {
	return math.Sqrt(DotParallel(x, x, nproc))
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) { copy(dst, src) }

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sub computes z = x - y element-wise.
func Sub(z, x, y []float64) {
	for i := range z {
		z[i] = x[i] - y[i]
	}
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// x and y; useful for comparing executor outputs against a sequential
// reference.
func MaxAbsDiff(x, y []float64) float64 {
	m := 0.0
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// parallelBlocks runs fn over nproc contiguous [lo,hi) blocks of [0,n).
func parallelBlocks(n, nproc int, fn func(lo, hi int)) {
	if nproc < 1 {
		nproc = 1
	}
	if nproc > n {
		nproc = n
	}
	if nproc <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		lo, hi := n*p/nproc, n*(p+1)/nproc
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
