package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	want := []float64{3, 4, 5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestAxpyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randVec(rng, 1001)
	for _, p := range []int{1, 2, 4, 13, 1001, 5000} {
		y1 := randVec(rng, 1001)
		y2 := append([]float64(nil), y1...)
		Axpy(0.7, x, y1)
		AxpyParallel(0.7, x, y2, p)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("p=%d mismatch at %d", p, i)
			}
		}
	}
}

func TestDotParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 777)
	y := randVec(rng, 777)
	want := Dot(x, y)
	for _, p := range []int{1, 2, 3, 8, 777} {
		got := DotParallel(x, y, p)
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("p=%d: dot = %v, want %v", p, got, want)
		}
	}
}

func TestDotParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, 500)
	y := randVec(rng, 500)
	first := DotParallel(x, y, 7)
	for k := 0; k < 10; k++ {
		if got := DotParallel(x, y, 7); got != first {
			t.Fatalf("DotParallel not deterministic: %v vs %v", got, first)
		}
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2Parallel(x, 2); got != 5 {
		t.Errorf("Norm2Parallel = %v, want 5", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestScaleFillSubCopy(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Errorf("Scale: %v", x)
	}
	Fill(x, -1)
	if x[0] != -1 || x[1] != -1 {
		t.Errorf("Fill: %v", x)
	}
	z := make([]float64, 2)
	Sub(z, []float64{5, 5}, []float64{2, 3})
	if z[0] != 3 || z[1] != 2 {
		t.Errorf("Sub: %v", z)
	}
	dst := make([]float64, 2)
	Copy(dst, z)
	if dst[0] != 3 || dst[1] != 2 {
		t.Errorf("Copy: %v", dst)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 2.5, 3}); got != 0.5 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", got)
	}
	if got := MaxAbsDiff(nil, nil); got != 0 {
		t.Errorf("MaxAbsDiff(nil) = %v, want 0", got)
	}
}

func TestDotSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randVec(rng, 64)
		y := randVec(rng, 64)
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNorm2CauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randVec(rng, 32)
		y := randVec(rng, 32)
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
