package trisolve

import (
	"math/rand"
	"sort"
	"testing"

	"doconsider/internal/executor"

	"doconsider/internal/planner"
	"doconsider/internal/reorder"
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// randomTriangular builds a random n x n triangular factor with a full
// nonzero diagonal and up to extra off-diagonal entries per row, well
// conditioned by construction (diagonal dominance) so solution
// comparisons are numerically meaningful.
func randomTriangular(rng *rand.Rand, n, extra int, lower bool) *sparse.CSR {
	ts := make([]sparse.Triplet, 0, n*(extra+1))
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		seen := map[int]bool{i: true}
		for k := 0; k < extra; k++ {
			var j int
			if lower {
				if i == 0 {
					break
				}
				j = rng.Intn(i)
			} else {
				if i == n-1 {
					break
				}
				j = i + 1 + rng.Intn(n-1-i)
			}
			if seen[j] {
				continue
			}
			seen[j] = true
			ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: rng.Float64() - 0.5})
		}
	}
	m, err := sparse.Assemble(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func randomRHS(rng *rand.Rand, n, k int) [][]float64 {
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = make([]float64, n)
		for i := range bs[j] {
			bs[j][i] = rng.NormFloat64()
		}
	}
	return bs
}

// refSolve runs the sequential reference executor — the same loop body
// as every parallel strategy (including the reciprocal diagonal), in
// index order on one processor. This is the bit-identity oracle: any
// planner-chosen execution must reproduce it exactly, because execution
// order never changes row arithmetic. (ForwardSeq/BackwardSeq divide by
// the diagonal instead of multiplying by its reciprocal, so they agree
// only to rounding; the fuzz body checks them to tolerance separately.)
func refSolve(t *testing.T, l *sparse.CSR, lower bool, b []float64) []float64 {
	t.Helper()
	plan, err := NewPlan(l, lower, WithKind(executor.Sequential))
	if err != nil {
		t.Fatalf("reference plan: %v", err)
	}
	defer plan.Close()
	x := make([]float64, l.N)
	plan.Solve(x, b)
	return x
}

// seqSolve runs the textbook sequential substitution (divide by the
// diagonal) for the tolerance cross-check.
func seqSolve(t *testing.T, l *sparse.CSR, lower bool, b []float64) []float64 {
	t.Helper()
	x := make([]float64, l.N)
	var err error
	if lower {
		err = ForwardSeq(l, x, b)
	} else {
		err = BackwardSeq(l, x, b)
	}
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	return x
}

// assertClose compares to a 1e-9 relative tolerance.
func assertClose(t *testing.T, got, want []float64, what string) {
	t.Helper()
	for i := range want {
		diff := got[i] - want[i]
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if s := want[i]; s > 1 || s < -1 {
			if s < 0 {
				s = -s
			}
			scale = s
		}
		if diff > 1e-9*scale {
			t.Fatalf("%s: index %d differs: got %v want %v", what, i, got[i], want[i])
		}
	}
}

// levelPerm builds a wavefront-respecting permutation of the factor's
// rows with a shuffled order inside each level: topological for the
// factor's dependence DAG, so the permuted matrix is again triangular in
// the same direction. For upper factors levels descend (a row's
// dependences — larger indices — carry smaller row levels and must land
// at larger new indices).
func levelPerm(t *testing.T, l *sparse.CSR, lower bool, rng *rand.Rand) *reorder.Permutation {
	t.Helper()
	var deps *wavefront.Deps
	if lower {
		deps = wavefront.FromLower(l)
	} else {
		deps = wavefront.FromUpper(l)
	}
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	n := l.N
	rowLevel := make([]int32, n)
	for i := 0; i < n; i++ {
		if lower {
			rowLevel[i] = wf[i]
		} else {
			rowLevel[i] = wf[n-1-i] // reflected iteration numbering
		}
	}
	order := make([]int32, n)
	shuffle := rng.Perm(n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := rowLevel[order[a]], rowLevel[order[b]]
		if la != lb {
			if lower {
				return la < lb
			}
			return la > lb
		}
		return shuffle[order[a]] < shuffle[order[b]]
	})
	p, err := reorder.NewPermutation(order)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func assertBitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d differs: got %v want %v", what, i, got[i], want[i])
		}
	}
}

// FuzzAdaptiveSolve is the planner correctness property: for random
// lower/upper triangular factors and right-hand-side batches, the
// planner-chosen execution (adaptive NewPlan, no pinned kind) is
// bit-identical to the sequential reference solve — per solve and per
// batch — and stays so under wavefront-respecting permutation round
// trips built from internal/reorder.
//
// The seeds below are the checked-in deterministic corpus; `go test
// -fuzz=FuzzAdaptiveSolve` explores beyond them in CI's fuzz smoke job.
func FuzzAdaptiveSolve(f *testing.F) {
	f.Add(int64(1), uint16(1), uint8(0), uint8(1), true, uint8(1))
	f.Add(int64(2), uint16(17), uint8(2), uint8(3), true, uint8(4))
	f.Add(int64(3), uint16(64), uint8(5), uint8(2), false, uint8(4))
	f.Add(int64(4), uint16(96), uint8(1), uint8(4), true, uint8(2))
	f.Add(int64(1989), uint16(40), uint8(7), uint8(1), false, uint8(3))
	f.Add(int64(88), uint16(80), uint8(3), uint8(2), true, uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, extra, batch uint8, lower bool, procs uint8) {
		n := int(n16)%96 + 1
		nExtra := int(extra) % 8
		k := int(batch)%4 + 1
		np := int(procs)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		l := randomTriangular(rng, n, nExtra, lower)
		bs := randomRHS(rng, n, k)

		// The machine-independent default model keeps failures
		// reproducible across hosts; every strategy it can pick must
		// produce bit-identical solutions anyway.
		plan, err := NewPlan(l, lower, WithProcs(np), WithModel(planner.Default()))
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		defer plan.Close()
		if plan.Decision == nil {
			t.Fatal("adaptive plan carries no decision")
		}

		want := make([][]float64, k)
		for j := range bs {
			want[j] = refSolve(t, l, lower, bs[j])
			// The executor bodies and the textbook substitution agree to
			// rounding (reciprocal-multiply vs divide).
			assertClose(t, want[j], seqSolve(t, l, lower, bs[j]), "sequential cross-check")
		}
		x := make([]float64, n)
		for j := range bs {
			plan.Solve(x, bs[j])
			assertBitIdentical(t, x, want[j], "Solve")
		}
		xs := randomRHS(rng, n, k) // scratch, overwritten
		if _, err := plan.SolveBatch(xs, bs); err != nil {
			t.Fatalf("SolveBatch: %v", err)
		}
		for j := range xs {
			assertBitIdentical(t, xs[j], want[j], "SolveBatch")
		}

		// The supernodal executor is one of the planner's candidates;
		// whether or not it won above, a forced-fusion plan must stay on
		// the same oracle (fusion changes scheduling units, never row
		// arithmetic).
		fplan, err := NewPlan(l, lower, WithProcs(np), WithModel(planner.Default()), WithFusion(FuseForce))
		if err != nil {
			t.Fatalf("NewPlan(fused): %v", err)
		}
		defer fplan.Close()
		if fplan.Fusion() == nil {
			t.Fatal("forced plan is not fused")
		}
		for j := range bs {
			fplan.Solve(x, bs[j])
			assertBitIdentical(t, x, want[j], "fused Solve")
		}

		// Permutation round trip: permute the system with a random
		// wavefront-respecting (hence triangularity-preserving)
		// permutation, solve the permuted system adaptively, and compare
		// bit-identically against the sequential reference of the
		// permuted system; the unpermuted solution must match the
		// original solve to rounding (row accumulation order changes
		// under column reordering, so exact equality is not required
		// across the permutation itself).
		perm := levelPerm(t, l, lower, rng)
		lp, err := perm.Apply(l)
		if err != nil {
			t.Fatalf("permute factor: %v", err)
		}
		pplan, err := NewPlan(lp, lower, WithProcs(np), WithModel(planner.Default()))
		if err != nil {
			t.Fatalf("NewPlan(permuted): %v", err)
		}
		defer pplan.Close()
		pb := make([]float64, n)
		px := make([]float64, n)
		back := make([]float64, n)
		for j := range bs {
			perm.PermuteVector(pb, bs[j])
			pplan.Solve(px, pb)
			assertBitIdentical(t, px, refSolve(t, lp, lower, pb), "permuted Solve")
			perm.UnpermuteVector(back, px)
			assertClose(t, back, want[j], "permutation round trip")
		}
	})
}

// FuzzFusedSolve is the supernodal correctness property: for random
// triangular factors, forced-fusion plans on every executor kind are
// bit-identical to the sequential row-wise reference — per solve and per
// batch — whatever mix of blocklet, chained and singleton nodes the
// detector finds. The seeds are the checked-in deterministic corpus;
// `go test -fuzz=FuzzFusedSolve` explores beyond them in CI's fuzz
// smoke job.
func FuzzFusedSolve(f *testing.F) {
	f.Add(int64(1), uint16(1), uint8(0), uint8(1), true, uint8(1), uint8(0))
	f.Add(int64(2), uint16(17), uint8(2), uint8(3), true, uint8(4), uint8(1))
	f.Add(int64(3), uint16(64), uint8(5), uint8(2), false, uint8(4), uint8(2))
	f.Add(int64(4), uint16(96), uint8(1), uint8(4), true, uint8(2), uint8(3))
	f.Add(int64(55), uint16(48), uint8(0), uint8(2), false, uint8(2), uint8(4))
	f.Add(int64(88), uint16(80), uint8(3), uint8(2), true, uint8(8), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, extra, batch uint8, lower bool, procs, kindSel uint8) {
		n := int(n16)%96 + 1
		nExtra := int(extra) % 8
		k := int(batch)%4 + 1
		np := int(procs)%8 + 1
		kind := fusedKindsUnderTest[int(kindSel)%len(fusedKindsUnderTest)]
		rng := rand.New(rand.NewSource(seed))
		l := randomTriangular(rng, n, nExtra, lower)
		bs := randomRHS(rng, n, k)

		plan, err := NewPlan(l, lower, WithKind(kind), WithFusion(FuseForce), WithProcs(np))
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		defer plan.Close()
		st := plan.Fusion()
		if st == nil {
			t.Fatal("forced plan is not fused")
		}
		if st.Rows != n || st.FusedRows != n-st.Singletons {
			t.Fatalf("inconsistent partition stats: %+v over %d rows", st, n)
		}

		x := make([]float64, n)
		for j := range bs {
			want := refSolve(t, l, lower, bs[j])
			plan.Solve(x, bs[j])
			assertBitIdentical(t, x, want, "fused Solve")
		}
		xs := randomRHS(rng, n, k) // scratch, overwritten
		if _, err := plan.SolveBatch(xs, bs); err != nil {
			t.Fatalf("SolveBatch: %v", err)
		}
		for j := range xs {
			assertBitIdentical(t, xs[j], refSolve(t, l, lower, bs[j]), "fused SolveBatch")
		}
	})
}
