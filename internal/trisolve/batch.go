package trisolve

import (
	"context"
	"fmt"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
)

// ForwardBatchBody returns the executor loop body for a batched forward
// solve of L*xs[j] = bs[j] for every j: body(i) performs row substitution
// i for all right-hand sides, reading the row's nonzeros once. Batching k
// solves into one scheduled pass pays the dependence busy-waits and the
// executor dispatch once instead of k times, and raises the arithmetic
// per synchronization by a factor of k.
func ForwardBatchBody(l *sparse.CSR, xs, bs [][]float64) executor.Body {
	invDiag := invDiagonal(l)
	return func(i int32) {
		cols, vals := l.Row(int(i))
		vals = vals[:len(cols)] // hoist the bounds check out of the loops
		for j := range xs {
			x, b := xs[j], bs[j]
			s := b[i]
			for k, c := range cols {
				if c != i {
					s -= vals[k] * x[c]
				}
			}
			x[i] = s * invDiag[i]
		}
	}
}

// BackwardBatchBody is the batched counterpart of BackwardBody: iteration
// k performs row substitution n-1-k for every right-hand side.
func BackwardBatchBody(u *sparse.CSR, xs, bs [][]float64) executor.Body {
	invDiag := invDiagonal(u)
	n := u.N
	return func(k int32) {
		i := n - 1 - int(k)
		cols, vals := u.Row(i)
		vals = vals[:len(cols)] // hoist the bounds check out of the loops
		for j := range xs {
			x, b := xs[j], bs[j]
			s := b[i]
			for q, c := range cols {
				if int(c) != i {
					s -= vals[q] * x[c]
				}
			}
			x[i] = s * invDiag[i]
		}
	}
}

// BatchProblem couples one triangular factor with the right-hand sides to
// solve against it and the vectors receiving the solutions. It is the unit
// of cross-request fusion: members of one group share the plan's sparsity
// structure (and therefore its wavefronts and schedule) while carrying
// their own numeric values.
type BatchProblem struct {
	L      *sparse.CSR // same sparsity pattern as the plan's factor
	Xs, Bs [][]float64 // len(Xs) == len(Bs); one solution per RHS
}

// ForwardGroupBody returns the executor loop body for a fused forward
// solve over a group of structurally identical factors: body(i) performs
// row substitution i for every right-hand side of every member, reading
// each member's row once. This is the cross-request analogue of
// ForwardBatchBody — the dependence busy-waits and the executor dispatch
// are paid once for the whole group.
func ForwardGroupBody(group []BatchProblem) executor.Body {
	inv := make([][]float64, len(group))
	for g := range group {
		inv[g] = invDiagonal(group[g].L)
	}
	return func(i int32) {
		for g := range group {
			m := &group[g]
			cols, vals := m.L.Row(int(i))
			vals = vals[:len(cols)] // hoist the bounds check out of the loops
			d := inv[g][i]
			for j := range m.Xs {
				x, b := m.Xs[j], m.Bs[j]
				s := b[i]
				for k, c := range cols {
					if c != i {
						s -= vals[k] * x[c]
					}
				}
				x[i] = s * d
			}
		}
	}
}

// BackwardGroupBody is the fused counterpart of BackwardBatchBody:
// iteration k performs row substitution n-1-k for every member.
func BackwardGroupBody(group []BatchProblem) executor.Body {
	inv := make([][]float64, len(group))
	for g := range group {
		inv[g] = invDiagonal(group[g].L)
	}
	n := 0
	if len(group) > 0 {
		n = group[0].L.N
	}
	return func(k int32) {
		i := n - 1 - int(k)
		for g := range group {
			m := &group[g]
			cols, vals := m.L.Row(i)
			vals = vals[:len(cols)] // hoist the bounds check out of the loops
			d := inv[g][i]
			for j := range m.Xs {
				x, b := m.Xs[j], m.Bs[j]
				s := b[i]
				for q, c := range cols {
					if int(c) != i {
						s -= vals[q] * x[c]
					}
				}
				x[i] = s * d
			}
		}
	}
}

// SolveGroup solves every member's systems in one scheduled pass. Each
// member's factor must have exactly the sparsity pattern of the plan's
// factor (checked via StructureFingerprint) but may carry different
// values: the group shares the inspector output and the executor pass
// while each member solves with its own numbers. Per member the
// arithmetic matches SolveBatch on that member alone (same operations in
// the same order), so results are bit-identical to unfused solves.
func (p *Plan) SolveGroup(group []BatchProblem) (executor.Metrics, error) {
	return p.SolveGroupCtx(context.Background(), group)
}

// SolveGroupCtx is SolveGroup with cancellation support: a cancelled
// context releases every worker and returns ctx.Err().
func (p *Plan) SolveGroupCtx(ctx context.Context, group []BatchProblem) (executor.Metrics, error) {
	if len(group) == 0 {
		return executor.Metrics{}, nil
	}
	n := p.L.N
	fp := p.L.StructureFingerprint()
	for g := range group {
		m := &group[g]
		if m.L.N != n || m.L.StructureFingerprint() != fp {
			return executor.Metrics{}, fmt.Errorf("trisolve: group member %d does not share the plan's sparsity structure", g)
		}
		if len(m.Xs) != len(m.Bs) {
			return executor.Metrics{}, fmt.Errorf("trisolve: group member %d has %d solutions but %d right-hand sides", g, len(m.Xs), len(m.Bs))
		}
		for j := range m.Xs {
			if len(m.Xs[j]) != n || len(m.Bs[j]) != n {
				return executor.Metrics{}, fmt.Errorf("trisolve: group member %d vector %d has length %d/%d, want %d", g, j, len(m.Xs[j]), len(m.Bs[j]), n)
			}
		}
	}
	var body executor.Body
	switch {
	case p.fused != nil && p.Lower:
		body = p.fused.forwardGroupBody(p.L, group)
	case p.fused != nil:
		body = p.fused.backwardGroupBody(p.L, group)
	case p.Lower:
		body = ForwardGroupBody(group)
	default:
		body = BackwardGroupBody(group)
	}
	m, err := p.strat.Execute(ctx, p.Sched, p.Deps, body)
	return p.rowMetrics(m, err), err
}

// SolveBatch solves the planned triangular system for len(xs) right-hand
// sides in one scheduled pass, writing solution j to xs[j]. Each xs[j]
// must not alias its bs[j] or any other vector in the batch. With k = 1
// the arithmetic matches Solve exactly (same operations in the same
// order), so the results are bit-identical.
func (p *Plan) SolveBatch(xs, bs [][]float64) (executor.Metrics, error) {
	return p.SolveBatchCtx(context.Background(), xs, bs)
}

// SolveBatchCtx is SolveBatch with cancellation support: a cancelled
// context releases every worker and returns ctx.Err().
func (p *Plan) SolveBatchCtx(ctx context.Context, xs, bs [][]float64) (executor.Metrics, error) {
	if len(xs) != len(bs) {
		return executor.Metrics{}, fmt.Errorf("trisolve: batch has %d solutions but %d right-hand sides", len(xs), len(bs))
	}
	if len(xs) == 0 {
		return executor.Metrics{}, nil
	}
	n := p.L.N
	for j := range xs {
		if len(xs[j]) != n || len(bs[j]) != n {
			return executor.Metrics{}, fmt.Errorf("trisolve: batch vector %d has length %d/%d, want %d", j, len(xs[j]), len(bs[j]), n)
		}
	}
	var body executor.Body
	switch {
	case p.fused != nil && p.Lower:
		body = p.fused.forwardBatchBody(p.L, xs, bs)
	case p.fused != nil:
		body = p.fused.backwardBatchBody(p.L, xs, bs)
	case p.Lower:
		body = ForwardBatchBody(p.L, xs, bs)
	default:
		body = BackwardBatchBody(p.L, xs, bs)
	}
	m, err := p.strat.Execute(ctx, p.Sched, p.Deps, body)
	return p.rowMetrics(m, err), err
}
