package trisolve

import (
	"context"
	"fmt"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
)

// ForwardBatchBody returns the executor loop body for a batched forward
// solve of L*xs[j] = bs[j] for every j: body(i) performs row substitution
// i for all right-hand sides, reading the row's nonzeros once. Batching k
// solves into one scheduled pass pays the dependence busy-waits and the
// executor dispatch once instead of k times, and raises the arithmetic
// per synchronization by a factor of k.
func ForwardBatchBody(l *sparse.CSR, xs, bs [][]float64) executor.Body {
	invDiag := invDiagonal(l)
	return func(i int32) {
		cols, vals := l.Row(int(i))
		for j := range xs {
			x, b := xs[j], bs[j]
			s := b[i]
			for k, c := range cols {
				if c != i {
					s -= vals[k] * x[c]
				}
			}
			x[i] = s * invDiag[i]
		}
	}
}

// BackwardBatchBody is the batched counterpart of BackwardBody: iteration
// k performs row substitution n-1-k for every right-hand side.
func BackwardBatchBody(u *sparse.CSR, xs, bs [][]float64) executor.Body {
	invDiag := invDiagonal(u)
	n := u.N
	return func(k int32) {
		i := n - 1 - int(k)
		cols, vals := u.Row(i)
		for j := range xs {
			x, b := xs[j], bs[j]
			s := b[i]
			for q, c := range cols {
				if int(c) != i {
					s -= vals[q] * x[c]
				}
			}
			x[i] = s * invDiag[i]
		}
	}
}

// SolveBatch solves the planned triangular system for len(xs) right-hand
// sides in one scheduled pass, writing solution j to xs[j]. Each xs[j]
// must not alias its bs[j] or any other vector in the batch. With k = 1
// the arithmetic matches Solve exactly (same operations in the same
// order), so the results are bit-identical.
func (p *Plan) SolveBatch(xs, bs [][]float64) (executor.Metrics, error) {
	return p.SolveBatchCtx(context.Background(), xs, bs)
}

// SolveBatchCtx is SolveBatch with cancellation support: a cancelled
// context releases every worker and returns ctx.Err().
func (p *Plan) SolveBatchCtx(ctx context.Context, xs, bs [][]float64) (executor.Metrics, error) {
	if len(xs) != len(bs) {
		return executor.Metrics{}, fmt.Errorf("trisolve: batch has %d solutions but %d right-hand sides", len(xs), len(bs))
	}
	if len(xs) == 0 {
		return executor.Metrics{}, nil
	}
	n := p.L.N
	for j := range xs {
		if len(xs[j]) != n || len(bs[j]) != n {
			return executor.Metrics{}, fmt.Errorf("trisolve: batch vector %d has length %d/%d, want %d", j, len(xs[j]), len(bs[j]), n)
		}
	}
	var body executor.Body
	if p.Lower {
		body = ForwardBatchBody(p.L, xs, bs)
	} else {
		body = BackwardBatchBody(p.L, xs, bs)
	}
	return p.strat.Execute(ctx, p.Sched, p.Deps, body)
}
