package trisolve

import (
	"context"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
)

// TestBatchSolverBitIdentical checks a bound solver against
// Plan.SolveBatch for every direction × fusion × kind combination: the
// bodies must perform the same operations in the same order, so the
// results are bit-for-bit equal.
func TestBatchSolverBitIdentical(t *testing.T) {
	const k = 3
	for _, lower := range []bool{true, false} {
		for _, fuse := range []FuseMode{FuseOff, FuseForce} {
			tri := stencil.Laplace2D(25, 25).LowerWithDiag()
			if !lower {
				tri = tri.Transpose()
			}
			n := tri.N
			plan, err := NewPlan(tri, lower, WithProcs(4), WithKind(executor.Pooled), WithFusion(fuse))
			if err != nil {
				t.Fatal(err)
			}
			if fuse == FuseForce && plan.fused == nil {
				t.Fatalf("lower=%v: FuseForce produced a row-wise plan", lower)
			}
			xs := make([][]float64, k)
			bs := make([][]float64, k)
			want := make([][]float64, k)
			for j := 0; j < k; j++ {
				bs[j] = randRHS(n, int64(7*j+1))
				xs[j] = make([]float64, n)
				want[j] = make([]float64, n)
			}
			if _, err := plan.SolveBatch(want, bs); err != nil {
				t.Fatal(err)
			}
			s := plan.Bind()
			m, err := s.Solve(context.Background(), xs, bs)
			if err != nil {
				t.Fatal(err)
			}
			if m.Executed != int64(n) {
				t.Fatalf("lower=%v fuse=%v: executed %d rows, want %d", lower, fuse, m.Executed, n)
			}
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					if xs[j][i] != want[j][i] {
						t.Fatalf("lower=%v fuse=%v rhs %d row %d: solver %x, SolveBatch %x",
							lower, fuse, j, i, xs[j][i], want[j][i])
					}
				}
			}
			// Reuse: a second solve through the same bound body must match a
			// fresh SolveBatch on new right-hand sides.
			for j := 0; j < k; j++ {
				bs[j] = randRHS(n, int64(100+j))
			}
			if _, err := plan.SolveBatch(want, bs); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Solve(context.Background(), xs, bs); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					if xs[j][i] != want[j][i] {
						t.Fatalf("lower=%v fuse=%v reuse rhs %d row %d: solver %x, SolveBatch %x",
							lower, fuse, j, i, xs[j][i], want[j][i])
					}
				}
			}
			plan.Close()
		}
	}
}

func TestBatchSolverShapeErrors(t *testing.T) {
	tri := stencil.Laplace2D(8, 8).LowerWithDiag()
	plan, err := NewPlan(tri, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	s := plan.Bind()
	n := tri.N
	good := make([]float64, n)
	if _, err := s.Solve(context.Background(), [][]float64{good}, nil); err == nil {
		t.Error("mismatched xs/bs lengths accepted")
	}
	if _, err := s.Solve(context.Background(), [][]float64{good}, [][]float64{make([]float64, n-1)}); err == nil {
		t.Error("short right-hand side accepted")
	}
	if m, err := s.Solve(context.Background(), nil, nil); err != nil || m.Executed != 0 {
		t.Errorf("empty batch: metrics=%+v err=%v", m, err)
	}
}

// TestBatchSolverZeroAlloc pins the solver's purpose: a warm pooled
// solve through a bound solver performs zero heap allocations.
func TestBatchSolverZeroAlloc(t *testing.T) {
	tri := stencil.Laplace2D(20, 20).LowerWithDiag()
	plan, err := NewPlan(tri, true, WithProcs(2), WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	s := plan.Bind()
	n := tri.N
	xs := [][]float64{make([]float64, n)}
	bs := [][]float64{randRHS(n, 3)}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.Solve(ctx, xs, bs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("bound solve = %v allocs/op, want 0", allocs)
	}
}
