package trisolve

import (
	"runtime"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/stencil"
)

func BenchmarkForward(b *testing.B) {
	l := stencil.Laplace2D(150, 150).LowerWithDiag()
	rhs := make([]float64, l.N)
	x := make([]float64, l.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ForwardSeq(l, x, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	procs := runtime.GOMAXPROCS(0)
	for _, c := range []struct {
		name  string
		kind  executor.Kind
		sched SchedulerKind
	}{
		{"selfexec-global", executor.SelfExecuting, GlobalSched},
		{"selfexec-local", executor.SelfExecuting, LocalSched},
		{"presched-global", executor.PreScheduled, GlobalSched},
		{"doacross", executor.SelfExecuting, NaturalSched},
	} {
		b.Run(c.name, func(b *testing.B) {
			plan, err := NewPlan(l, true, WithProcs(procs), WithKind(c.kind), WithScheduler(c.sched))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Solve(x, rhs)
			}
		})
	}
}

func BenchmarkInspector(b *testing.B) {
	l := stencil.Laplace2D(150, 150).LowerWithDiag()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(l, true, WithProcs(16)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveBatch is the acceptance experiment for multi-RHS
// batching: one SolveBatch pass over k=8 right-hand sides against 8
// sequential Solve calls on the same pooled plan. The batch reads each
// row's nonzeros once for all RHS and pays one executor dispatch and one
// set of dependence busy-waits instead of 8.
func BenchmarkSolveBatch(b *testing.B) {
	l := stencil.Laplace2D(120, 120).LowerWithDiag()
	n := l.N
	const k = 8
	plan, err := NewPlan(l, true, WithProcs(4), WithKind(executor.Pooled))
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Close()
	xs := make([][]float64, k)
	bs := make([][]float64, k)
	for j := 0; j < k; j++ {
		xs[j] = make([]float64, n)
		bs[j] = make([]float64, n)
		for i := range bs[j] {
			bs[j][i] = float64(i%7) + 1
		}
	}
	plan.Solve(xs[0], bs[0]) // warm up the pool
	b.Run("sequential-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				plan.Solve(xs[j], bs[j])
			}
		}
	})
	b.Run("batch-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.SolveBatch(xs, bs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCacheGet measures a warm PlanCache Get (fingerprint + map
// lookup + lease) against cold NewPlan inspector runs.
func BenchmarkPlanCacheGet(b *testing.B) {
	l := stencil.Laplace2D(120, 120).LowerWithDiag()
	b.Run("cold-newplan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewPlan(l, true, WithProcs(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		pc := NewPlanCache(8)
		defer pc.Close()
		warm, err := pc.Get(l, true, WithProcs(4))
		if err != nil {
			b.Fatal(err)
		}
		defer warm.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := pc.Get(l, true, WithProcs(4))
			if err != nil {
				b.Fatal(err)
			}
			p.Close()
		}
	})
}

// BenchmarkNewPlan gates plan-construction cost in CI: the adaptive
// variant adds DAG feature analysis and strategy selection to the
// inspector, and the allocs/op of both variants are pinned against
// ci/bench_baseline.json so planner overhead cannot creep silently.
// The default cost model keeps the adaptive path off the one-shot host
// calibration (which would dominate the first iteration).
func BenchmarkNewPlan(b *testing.B) {
	l := stencil.Laplace2D(63, 63).LowerWithDiag()
	b.Run("pinned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan, err := NewPlan(l, true, WithProcs(4), WithKind(executor.Pooled))
			if err != nil {
				b.Fatal(err)
			}
			plan.Close()
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		b.ReportAllocs()
		m := planner.Default()
		for i := 0; i < b.N; i++ {
			plan, err := NewPlan(l, true, WithProcs(4), WithModel(m))
			if err != nil {
				b.Fatal(err)
			}
			plan.Close()
		}
	})
}

// BenchmarkSupernodal is the acceptance experiment for row fusion: the
// same mesh factor solved under a forced-fused plan (blocklet kernels on
// a compressed schedule) and under the row-wise plan it replaces, for
// the sequential kernels themselves and for a pooled parallel run where
// level compression also removes barriers. ci/bench_baseline.json gates
// both ns/op and allocs/op of the fused variants.
func BenchmarkSupernodal(b *testing.B) {
	for _, mesh := range []struct {
		name string
		l    int
	}{
		{"mesh60", 60},
		{"mesh150", 150},
	} {
		l := stencil.Laplace2D(mesh.l, mesh.l).LowerWithDiag()
		rhs := make([]float64, l.N)
		x := make([]float64, l.N)
		for i := range rhs {
			rhs[i] = float64(i%7) + 1
		}
		for _, c := range []struct {
			name string
			kind executor.Kind
			fuse FuseMode
			np   int
		}{
			{"rowwise-seq", executor.Sequential, FuseOff, 1},
			{"fused-seq", executor.Sequential, FuseForce, 1},
			{"rowwise-pooled", executor.Pooled, FuseOff, 4},
			{"fused-pooled", executor.Pooled, FuseForce, 4},
		} {
			b.Run(mesh.name+"/"+c.name, func(b *testing.B) {
				plan, err := NewPlan(l, true, WithProcs(c.np), WithKind(c.kind), WithFusion(c.fuse))
				if err != nil {
					b.Fatal(err)
				}
				defer plan.Close()
				plan.Solve(x, rhs) // warm up the pool
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					plan.Solve(x, rhs)
				}
			})
		}
	}
}
