package trisolve

import (
	"runtime"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
)

func BenchmarkForward(b *testing.B) {
	l := stencil.Laplace2D(150, 150).LowerWithDiag()
	rhs := make([]float64, l.N)
	x := make([]float64, l.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ForwardSeq(l, x, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	procs := runtime.GOMAXPROCS(0)
	for _, c := range []struct {
		name  string
		kind  executor.Kind
		sched SchedulerKind
	}{
		{"selfexec-global", executor.SelfExecuting, GlobalSched},
		{"selfexec-local", executor.SelfExecuting, LocalSched},
		{"presched-global", executor.PreScheduled, GlobalSched},
		{"doacross", executor.SelfExecuting, NaturalSched},
	} {
		b.Run(c.name, func(b *testing.B) {
			plan, err := NewPlan(l, true, WithProcs(procs), WithKind(c.kind), WithScheduler(c.sched))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Solve(x, rhs)
			}
		})
	}
}

func BenchmarkInspector(b *testing.B) {
	l := stencil.Laplace2D(150, 150).LowerWithDiag()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(l, true, WithProcs(16)); err != nil {
			b.Fatal(err)
		}
	}
}
