package trisolve

import (
	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

// fusedExec is the supernodal half of a plan: the node partition over the
// iteration space, the compressed unit-level dependence structure, levels
// and schedule, plus the per-row CSR split that lets the fused kernels
// drop the per-nonzero diagonal test of the row-wise bodies.
//
// Bit-identity invariant: every fused kernel performs, for each row, the
// exact accumulation sequence of the row-wise bodies — the row's stored
// entries in CSR order with the diagonal skipped, then one multiply by
// the reciprocal diagonal. Fusion changes which rows share a scheduling
// unit and how the bounds are computed, never the per-row arithmetic, so
// results are bit-identical to the sequential oracle.
type fusedExec struct {
	part  *supernode.Partition
	deps  *wavefront.Deps    // unit-level, compressed
	wf    []int32            // unit-level wavefront numbers
	sched *schedule.Schedule // unit-level wrapped-deal schedule

	// diagPos[r] is the CSR position of row r's diagonal entry, or the
	// row's end offset when the diagonal is absent. The off-diagonal
	// entries of row r are [RowPtr[r], diagPos[r]) ++ (diagPos[r],
	// RowPtr[r+1]) in CSR order, which is exactly the accumulation order
	// of the row-wise bodies for any input — including malformed rows
	// with entries on the wrong side of the diagonal.
	diagPos []int32

	// extLen[u] >= 0 marks node u as a blocklet the unrolled multi-row
	// kernels may execute: every row of u holds exactly extLen
	// off-diagonal entries over one shared column map plus a diagonal in
	// the expected position. -1 = generic node (row-at-a-time sweep).
	extLen []int32

	stats supernode.Stats
}

// newFusedExec builds the fused executor state for a detected partition.
// unitDeps/unitWf may be nil (they are recomputed) or carried over from
// planning to avoid the second compression pass.
func newFusedExec(t *sparse.CSR, lower bool, part *supernode.Partition, deps *wavefront.Deps,
	unitDeps *wavefront.Deps, unitWf []int32, nproc int) (*fusedExec, error) {
	if unitDeps == nil {
		unitDeps = part.Compress(deps)
	}
	if unitWf == nil {
		var err error
		if unitWf, err = wavefront.Compute(unitDeps); err != nil {
			return nil, err
		}
	}
	fx := &fusedExec{
		part:  part,
		deps:  unitDeps,
		wf:    unitWf,
		sched: schedule.Global(unitWf, nproc),
		stats: part.Stats(),
	}
	fx.diagPos = diagPositions(t)
	fx.extLen = blockletExtLens(t, lower, part, fx.diagPos)
	return fx, nil
}

// diagPositions finds each row's diagonal entry position (or the row end
// when absent). Columns within a row are sorted, but a linear scan keeps
// this robust to any input and runs once per plan.
func diagPositions(a *sparse.CSR) []int32 {
	dp := make([]int32, a.N)
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		d := hi
		for k := lo; k < hi; k++ {
			if a.ColIdx[k] == int32(i) {
				d = k
				break
			}
		}
		dp[i] = d
	}
	return dp
}

// blockletExtLens validates each uniform node against the CSR layout the
// unrolled kernels assume: every row stores exactly the shared external
// columns plus its diagonal, with the diagonal last (forward) or first
// (backward). Rows that fail — a missing diagonal, or stray entries the
// dependence extraction ignored — demote the node to the generic sweep,
// which is correct for any input.
func blockletExtLens(t *sparse.CSR, lower bool, part *supernode.Partition, diagPos []int32) []int32 {
	nodes := part.NumNodes()
	n := t.N
	extLen := make([]int32, nodes)
	for u := 0; u < nodes; u++ {
		extLen[u] = -1
		if !part.Uniform[u] {
			continue
		}
		lo, hi := part.Rows(u)
		el := int32(-1)
		ok := true
		for k := lo; k < hi && ok; k++ {
			r := int(k)
			if !lower {
				r = wavefront.ReflectIndex(n, int(k))
			}
			nnz := t.RowPtr[r+1] - t.RowPtr[r]
			if el < 0 {
				el = nnz - 1
			}
			if nnz != el+1 {
				ok = false
				break
			}
			if lower {
				ok = diagPos[r] == t.RowPtr[r+1]-1
			} else {
				ok = diagPos[r] == t.RowPtr[r]
			}
		}
		if ok && el >= 0 {
			extLen[u] = el
		}
	}
	return extLen
}

// fusionFeatures packages a partition's stats and unit-level DAG shape
// for the planner's supernodal candidate.
func fusionFeatures(part *supernode.Partition, unitDeps *wavefront.Deps, unitWf []int32, procs int) *planner.Fusion {
	st := part.Stats()
	fu := &planner.Fusion{
		Nodes:     st.Nodes,
		FusedRows: st.FusedRows,
		MaxWidth:  st.MaxWidth,
		UnitEdges: unitDeps.Edges(),
	}
	if procs < 1 {
		procs = 1
	}
	hist := wavefront.Histogram(unitWf)
	fu.UnitLevels = len(hist)
	for _, w := range hist {
		fu.UnitLevelSum += (w + procs - 1) / procs
	}
	return fu
}

// forwardBody returns the fused executor body for L*x = b: body(u) solves
// every row of supernode u in order. Blocklet nodes run the unrolled
// shared-column kernel; generic nodes sweep row-at-a-time with the
// precomputed diagonal split.
func (fx *fusedExec) forwardBody(l *sparse.CSR, x, b []float64) executor.Body {
	inv := invDiagonal(l)
	rp, ci, vals := l.RowPtr, l.ColIdx, l.Val
	np, dp, el := fx.part.RowPtr, fx.diagPos, fx.extLen
	return func(u int32) {
		lo, hi := np[u], np[u+1]
		if e := el[u]; e >= 0 {
			forwardBlocklet(rp, ci, vals, inv, x, b, lo, hi, e)
			return
		}
		for r := lo; r < hi; r++ {
			s := b[r]
			d := dp[r]
			cols := ci[rp[r]:d]
			vs := vals[rp[r]:d]
			vs = vs[:len(cols)]
			for k, c := range cols {
				s -= vs[k] * x[c]
			}
			if start := d + 1; start < rp[r+1] {
				cols2 := ci[start:rp[r+1]]
				vs2 := vals[start:rp[r+1]]
				vs2 = vs2[:len(cols2)]
				for k, c := range cols2 {
					s -= vs2[k] * x[c]
				}
			}
			x[r] = s * inv[r]
		}
	}
}

// backwardBody is the fused body for U*x = b in the reflected iteration
// numbering of wavefront.FromUpper: unit u covers iterations
// [RowPtr[u], RowPtr[u+1]), iteration k solving row n-1-k.
func (fx *fusedExec) backwardBody(uM *sparse.CSR, x, b []float64) executor.Body {
	inv := invDiagonal(uM)
	n := uM.N
	rp, ci, vals := uM.RowPtr, uM.ColIdx, uM.Val
	np, dp, el := fx.part.RowPtr, fx.diagPos, fx.extLen
	return func(u int32) {
		lo, hi := np[u], np[u+1]
		if e := el[u]; e >= 0 {
			backwardBlocklet(rp, ci, vals, inv, x, b, n, lo, hi, e)
			return
		}
		for k := lo; k < hi; k++ {
			i := int32(n-1) - k
			s := b[i]
			d := dp[i]
			cols := ci[rp[i]:d]
			vs := vals[rp[i]:d]
			vs = vs[:len(cols)]
			for q, c := range cols {
				s -= vs[q] * x[c]
			}
			if start := d + 1; start < rp[i+1] {
				cols2 := ci[start:rp[i+1]]
				vs2 := vals[start:rp[i+1]]
				vs2 = vs2[:len(cols2)]
				for q, c := range cols2 {
					s -= vs2[q] * x[c]
				}
			}
			x[i] = s * inv[i]
		}
	}
}

// forwardBlocklet runs a uniform forward node — rows lo..hi-1, each
// holding exactly e external entries over one shared column map, diagonal
// last — with 4/2/1-row unrolled dot products. The rows of a blocklet
// are mutually independent (identical dependence lists cannot reference
// one another), so the chunked order is the row order and every x[c]
// load is shared across the chunk. Re-slicing vals to the shared column
// map's length hoists the bounds checks out of the inner loop.
func forwardBlocklet(rp, ci []int32, vals, inv, x, b []float64, lo, hi, e int32) {
	ext := ci[rp[lo] : rp[lo]+e]
	r := lo
	for ; r+4 <= hi; r += 4 {
		v0 := vals[rp[r] : rp[r]+e]
		v1 := vals[rp[r+1] : rp[r+1]+e]
		v2 := vals[rp[r+2] : rp[r+2]+e]
		v3 := vals[rp[r+3] : rp[r+3]+e]
		v0, v1, v2, v3 = v0[:len(ext)], v1[:len(ext)], v2[:len(ext)], v3[:len(ext)]
		s0, s1, s2, s3 := b[r], b[r+1], b[r+2], b[r+3]
		for k, c := range ext {
			xc := x[c]
			s0 -= v0[k] * xc
			s1 -= v1[k] * xc
			s2 -= v2[k] * xc
			s3 -= v3[k] * xc
		}
		x[r] = s0 * inv[r]
		x[r+1] = s1 * inv[r+1]
		x[r+2] = s2 * inv[r+2]
		x[r+3] = s3 * inv[r+3]
	}
	for ; r+2 <= hi; r += 2 {
		v0 := vals[rp[r] : rp[r]+e]
		v1 := vals[rp[r+1] : rp[r+1]+e]
		v0, v1 = v0[:len(ext)], v1[:len(ext)]
		s0, s1 := b[r], b[r+1]
		for k, c := range ext {
			xc := x[c]
			s0 -= v0[k] * xc
			s1 -= v1[k] * xc
		}
		x[r] = s0 * inv[r]
		x[r+1] = s1 * inv[r+1]
	}
	for ; r < hi; r++ {
		v := vals[rp[r] : rp[r]+e]
		v = v[:len(ext)]
		s := b[r]
		for k, c := range ext {
			s -= v[k] * x[c]
		}
		x[r] = s * inv[r]
	}
}

// backwardBlocklet is forwardBlocklet for a uniform backward node:
// iterations lo..hi-1 ascending are rows r0 down to rend, each storing
// its diagonal first and the e shared external columns after it.
func backwardBlocklet(rp, ci []int32, vals, inv, x, b []float64, n int, lo, hi, e int32) {
	r0 := int32(n-1) - lo
	rend := int32(n) - hi
	ext := ci[rp[r0]+1 : rp[r0]+1+e]
	r := r0
	for ; r-3 >= rend; r -= 4 {
		v0 := vals[rp[r]+1 : rp[r]+1+e]
		v1 := vals[rp[r-1]+1 : rp[r-1]+1+e]
		v2 := vals[rp[r-2]+1 : rp[r-2]+1+e]
		v3 := vals[rp[r-3]+1 : rp[r-3]+1+e]
		v0, v1, v2, v3 = v0[:len(ext)], v1[:len(ext)], v2[:len(ext)], v3[:len(ext)]
		s0, s1, s2, s3 := b[r], b[r-1], b[r-2], b[r-3]
		for k, c := range ext {
			xc := x[c]
			s0 -= v0[k] * xc
			s1 -= v1[k] * xc
			s2 -= v2[k] * xc
			s3 -= v3[k] * xc
		}
		x[r] = s0 * inv[r]
		x[r-1] = s1 * inv[r-1]
		x[r-2] = s2 * inv[r-2]
		x[r-3] = s3 * inv[r-3]
	}
	for ; r-1 >= rend; r -= 2 {
		v0 := vals[rp[r]+1 : rp[r]+1+e]
		v1 := vals[rp[r-1]+1 : rp[r-1]+1+e]
		v0, v1 = v0[:len(ext)], v1[:len(ext)]
		s0, s1 := b[r], b[r-1]
		for k, c := range ext {
			xc := x[c]
			s0 -= v0[k] * xc
			s1 -= v1[k] * xc
		}
		x[r] = s0 * inv[r]
		x[r-1] = s1 * inv[r-1]
	}
	for ; r >= rend; r-- {
		v := vals[rp[r]+1 : rp[r]+1+e]
		v = v[:len(ext)]
		s := b[r]
		for k, c := range ext {
			s -= v[k] * x[c]
		}
		x[r] = s * inv[r]
	}
}

// forwardBatchBody is the fused counterpart of ForwardBatchBody: unit u
// solves its rows for every right-hand side, reading each row's nonzeros
// once per RHS sweep with the diagonal split precomputed.
func (fx *fusedExec) forwardBatchBody(l *sparse.CSR, xs, bs [][]float64) executor.Body {
	inv := invDiagonal(l)
	rp, ci, vals := l.RowPtr, l.ColIdx, l.Val
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for r := np[u]; r < np[u+1]; r++ {
			d := dp[r]
			cols := ci[rp[r]:d]
			vs := vals[rp[r]:d]
			vs = vs[:len(cols)]
			var cols2 []int32
			var vs2 []float64
			if start := d + 1; start < rp[r+1] {
				cols2 = ci[start:rp[r+1]]
				vs2 = vals[start:rp[r+1]]
				vs2 = vs2[:len(cols2)]
			}
			for j := range xs {
				x, b := xs[j], bs[j]
				s := b[r]
				for k, c := range cols {
					s -= vs[k] * x[c]
				}
				for k, c := range cols2 {
					s -= vs2[k] * x[c]
				}
				x[r] = s * inv[r]
			}
		}
	}
}

// backwardBatchBody is the fused counterpart of BackwardBatchBody.
func (fx *fusedExec) backwardBatchBody(uM *sparse.CSR, xs, bs [][]float64) executor.Body {
	inv := invDiagonal(uM)
	n := uM.N
	rp, ci, vals := uM.RowPtr, uM.ColIdx, uM.Val
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for k := np[u]; k < np[u+1]; k++ {
			i := int32(n-1) - k
			d := dp[i]
			cols := ci[rp[i]:d]
			vs := vals[rp[i]:d]
			vs = vs[:len(cols)]
			var cols2 []int32
			var vs2 []float64
			if start := d + 1; start < rp[i+1] {
				cols2 = ci[start:rp[i+1]]
				vs2 = vals[start:rp[i+1]]
				vs2 = vs2[:len(cols2)]
			}
			for j := range xs {
				x, b := xs[j], bs[j]
				s := b[i]
				for q, c := range cols {
					s -= vs[q] * x[c]
				}
				for q, c := range cols2 {
					s -= vs2[q] * x[c]
				}
				x[i] = s * inv[i]
			}
		}
	}
}

// forwardGroupBody is the fused counterpart of ForwardGroupBody: group
// members share the plan's sparsity pattern, so the column slices and
// the diagonal split are computed once per row and only the value slices
// differ per member.
func (fx *fusedExec) forwardGroupBody(l *sparse.CSR, group []BatchProblem) executor.Body {
	inv := make([][]float64, len(group))
	for g := range group {
		inv[g] = invDiagonal(group[g].L)
	}
	rp, ci := l.RowPtr, l.ColIdx
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for r := np[u]; r < np[u+1]; r++ {
			d := dp[r]
			lo, hi := rp[r], rp[r+1]
			cols := ci[lo:d]
			start := d + 1
			var cols2 []int32
			if start < hi {
				cols2 = ci[start:hi]
			}
			for g := range group {
				m := &group[g]
				vs := m.L.Val[lo:d]
				vs = vs[:len(cols)]
				var vs2 []float64
				if cols2 != nil {
					vs2 = m.L.Val[start:hi]
					vs2 = vs2[:len(cols2)]
				}
				dg := inv[g][r]
				for j := range m.Xs {
					x, b := m.Xs[j], m.Bs[j]
					s := b[r]
					for k, c := range cols {
						s -= vs[k] * x[c]
					}
					for k, c := range cols2 {
						s -= vs2[k] * x[c]
					}
					x[r] = s * dg
				}
			}
		}
	}
}

// backwardGroupBody is the fused counterpart of BackwardGroupBody.
func (fx *fusedExec) backwardGroupBody(uM *sparse.CSR, group []BatchProblem) executor.Body {
	inv := make([][]float64, len(group))
	for g := range group {
		inv[g] = invDiagonal(group[g].L)
	}
	n := uM.N
	rp, ci := uM.RowPtr, uM.ColIdx
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for k := np[u]; k < np[u+1]; k++ {
			i := int32(n-1) - k
			d := dp[i]
			lo, hi := rp[i], rp[i+1]
			cols := ci[lo:d]
			start := d + 1
			var cols2 []int32
			if start < hi {
				cols2 = ci[start:hi]
			}
			for g := range group {
				m := &group[g]
				vs := m.L.Val[lo:d]
				vs = vs[:len(cols)]
				var vs2 []float64
				if cols2 != nil {
					vs2 = m.L.Val[start:hi]
					vs2 = vs2[:len(cols2)]
				}
				dg := inv[g][i]
				for j := range m.Xs {
					x, b := m.Xs[j], m.Bs[j]
					s := b[i]
					for q, c := range cols {
						s -= vs[q] * x[c]
					}
					for q, c := range cols2 {
						s -= vs2[q] * x[c]
					}
					x[i] = s * dg
				}
			}
		}
	}
}
