package trisolve

import (
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

// fusedKindsUnderTest is every executor kind the forced-fusion
// differential tests run: the executors are index-space generic, so all
// of them must execute a unit-level (supernodal) schedule correctly.
var fusedKindsUnderTest = []executor.Kind{
	executor.Sequential,
	executor.PreScheduled,
	executor.SelfExecuting,
	executor.DoAcross,
	executor.Pooled,
}

// fusedTestFactors builds the differential corpus: mesh factors (chain
// fusion, exercising the width cap at grid-row boundaries), random
// factors (mixed blocklet/singleton partitions), and a dense-ish banded
// factor whose identical trailing rows form uniform blocklets.
func fusedTestFactors(t *testing.T, lower bool) map[string]*sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	out := map[string]*sparse.CSR{
		"mesh9x6":  stencil.Laplace2D(9, 6).LowerWithDiag(),
		"mesh12":   stencil.Laplace2D(12, 12).LowerWithDiag(),
		"random80": randomTriangular(rng, 80, 3, true),
		"chain":    randomTriangular(rng, 33, 1, true),
	}
	if !lower {
		for name, l := range out {
			out[name] = l.Transpose()
		}
	}
	return out
}

func TestFusedSolveDifferential(t *testing.T) {
	for _, lower := range []bool{true, false} {
		for name, l := range fusedTestFactors(t, lower) {
			rng := rand.New(rand.NewSource(int64(l.N)))
			bs := randomRHS(rng, l.N, 3)
			want := make([][]float64, len(bs))
			for j := range bs {
				want[j] = refSolve(t, l, lower, bs[j])
			}
			for _, kind := range fusedKindsUnderTest {
				plan, err := NewPlan(l, lower, WithKind(kind), WithFusion(FuseForce), WithProcs(2))
				if err != nil {
					t.Fatalf("%s/%v/%v: NewPlan: %v", name, lower, kind, err)
				}
				if plan.Fusion() == nil {
					t.Fatalf("%s/%v/%v: forced plan is not fused", name, lower, kind)
				}
				x := make([]float64, l.N)
				for j := range bs {
					plan.Solve(x, bs[j])
					assertBitIdentical(t, x, want[j], "fused Solve")
				}
				xs := randomRHS(rng, l.N, len(bs))
				if _, err := plan.SolveBatch(xs, bs); err != nil {
					t.Fatalf("%s/%v/%v: SolveBatch: %v", name, lower, kind, err)
				}
				for j := range xs {
					assertBitIdentical(t, xs[j], want[j], "fused SolveBatch")
				}
				plan.Close()
			}
		}
	}
}

// TestFusedSolveGroupDifferential checks the fused cross-request group
// kernels: members share the plan's sparsity but carry their own values,
// and each member's solutions must match its own sequential oracle.
func TestFusedSolveGroupDifferential(t *testing.T) {
	for _, lower := range []bool{true, false} {
		l := fusedTestFactors(t, lower)["mesh9x6"]
		rng := rand.New(rand.NewSource(11))
		group := make([]BatchProblem, 3)
		want := make([][][]float64, len(group))
		for g := range group {
			m := l.Clone()
			for k := range m.Val {
				m.Val[k] *= 1 + 0.25*float64(g) + rng.Float64()
			}
			bs := randomRHS(rng, l.N, 2)
			group[g] = BatchProblem{L: m, Xs: randomRHS(rng, l.N, 2), Bs: bs}
			want[g] = make([][]float64, len(bs))
			for j := range bs {
				want[g][j] = refSolve(t, m, lower, bs[j])
			}
		}
		plan, err := NewPlan(l, lower, WithKind(executor.Sequential), WithFusion(FuseForce))
		if err != nil {
			t.Fatal(err)
		}
		defer plan.Close()
		if plan.Fusion() == nil {
			t.Fatal("forced plan is not fused")
		}
		if _, err := plan.SolveGroup(group); err != nil {
			t.Fatalf("SolveGroup: %v", err)
		}
		for g := range group {
			for j := range group[g].Xs {
				assertBitIdentical(t, group[g].Xs[j], want[g][j], "fused SolveGroup")
			}
		}
	}
}

// TestFusedAdaptiveMesh checks that the planner's supernodal candidate
// actually wins on the mesh-structured problems the fusion targets: under
// the machine-independent default model on one processor, fused compute
// strictly undercuts row-wise whenever any rows fused.
func TestFusedAdaptiveMesh(t *testing.T) {
	l := stencil.Laplace2D(12, 12).LowerWithDiag()
	plan, err := NewPlan(l, true, WithProcs(1), WithModel(planner.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	d := plan.Decision
	if d == nil || !d.Fused {
		t.Fatalf("mesh plan decision = %+v, want fused", d)
	}
	st := plan.Fusion()
	if st == nil {
		t.Fatal("fused plan has no supernode stats")
	}
	// 12 grid rows of 12 chained columns each, width-capped at 8: two
	// nodes per grid row.
	if st.Nodes != 24 || st.MaxWidth != 8 || st.Rows != 144 {
		t.Fatalf("mesh partition = %+v, want 24 nodes, max width 8 over 144 rows", st)
	}
	if d.PredSupernodal <= 0 || d.PredSupernodal >= d.PredSequential {
		t.Fatalf("pred supernodal %v, want in (0, %v)", d.PredSupernodal, d.PredSequential)
	}
	// The compressed schedule runs fewer phases than the factor has
	// wavefronts, while Phases() keeps reporting the row-level depth.
	if plan.Sched.NumPhases >= plan.Phases() {
		t.Fatalf("compressed phases %d, want < row-level %d", plan.Sched.NumPhases, plan.Phases())
	}
}

// TestFusedOffAndPinned checks the opt-outs: FuseOff plans never fuse,
// and a WithKind-pinned plan under FuseAuto skips detection entirely.
func TestFusedOffAndPinned(t *testing.T) {
	l := stencil.Laplace2D(8, 8).LowerWithDiag()
	off, err := NewPlan(l, true, WithFusion(FuseOff), WithModel(planner.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.Fusion() != nil || (off.Decision != nil && off.Decision.Fused) {
		t.Fatal("FuseOff plan fused")
	}
	pinned, err := NewPlan(l, true, WithKind(executor.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	if pinned.Fusion() != nil {
		t.Fatal("pinned FuseAuto plan fused")
	}
}

// TestFusedPlanCacheIdentity checks that fused and unfused plans for one
// structure never share a cache entry: the fusion mode is part of the
// plan key.
func TestFusedPlanCacheIdentity(t *testing.T) {
	pc := NewPlanCache(0)
	defer pc.Close()
	l := stencil.Laplace2D(8, 8).LowerWithDiag()
	forced, err := pc.Get(l, true, WithKind(executor.Sequential), WithFusion(FuseForce))
	if err != nil {
		t.Fatal(err)
	}
	defer forced.Close()
	plain, err := pc.Get(l, true, WithKind(executor.Sequential), WithFusion(FuseOff))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if forced.Fusion() == nil || plain.Fusion() != nil {
		t.Fatalf("fusion identity leaked across cache entries: forced=%v plain=%v",
			forced.Fusion(), plain.Fusion())
	}
	if pc.Len() != 2 {
		t.Fatalf("cache holds %d skeletons, want 2 (fused and unfused)", pc.Len())
	}
	st := pc.SupernodeStats()
	if st.FusedPlans != 1 || st.Rows != 64 || st.MaxWidth < 2 {
		t.Fatalf("supernode stats = %+v, want one fused plan over 64 rows", st)
	}
	b := make([]float64, l.N)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x1 := make([]float64, l.N)
	x2 := make([]float64, l.N)
	forced.Solve(x1, b)
	plain.Solve(x2, b)
	assertBitIdentical(t, x1, x2, "fused vs plain cache plans")
}

// TestFusedPlanCacheRepair drives the fused near-miss path: a resident
// fused plan, a small structural drift, and the expectation that the
// repaired skeleton stays fused — with a partition identical to fresh
// detection on the drifted structure and solves bit-identical to an
// uncached plan.
func TestFusedPlanCacheRepair(t *testing.T) {
	base := stencil.Laplace2D(10, 10).LowerWithDiag()
	pc := NewPlanCache(8)
	defer pc.Close()

	p1, err := pc.Get(base, true, WithProcs(1), WithModel(planner.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if p1.Fusion() == nil {
		t.Fatal("resident mesh plan is not fused")
	}

	// A late-row pattern edit keeps the releveling cone tiny, so the
	// planner prices repair below rebuild.
	edited, err := base.ApplyRowEdits([]sparse.RowEdit{
		{Row: 97, Insert: []sparse.EditEntry{{Col: 90, Val: -0.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(edited, true, WithProcs(1), WithModel(planner.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if st := pc.DeltaStats(); st.Repairs != 1 {
		t.Fatalf("expected 1 repair, got %+v", st)
	}
	if p2.Fusion() == nil {
		t.Fatal("repaired plan lost fusion")
	}

	// The re-spliced partition matches fresh detection on the drifted
	// structure exactly.
	freshPart := supernode.Detect(wavefront.FromLower(edited), supernode.Config{})
	gotPart := p2.fused.part
	if len(gotPart.RowPtr) != len(freshPart.RowPtr) {
		t.Fatalf("respliced partition has %d nodes, fresh detection %d",
			gotPart.NumNodes(), freshPart.NumNodes())
	}
	for u := range freshPart.RowPtr {
		if gotPart.RowPtr[u] != freshPart.RowPtr[u] {
			t.Fatalf("RowPtr[%d] = %d, want %d", u, gotPart.RowPtr[u], freshPart.RowPtr[u])
		}
	}
	for u := range freshPart.Uniform {
		if gotPart.Uniform[u] != freshPart.Uniform[u] {
			t.Fatalf("Uniform[%d] = %v, want %v", u, gotPart.Uniform[u], freshPart.Uniform[u])
		}
	}

	// Solves over the repaired fused skeleton are bit-identical to an
	// uncached plan of the drifted factor.
	ref, err := NewPlan(edited, true, WithProcs(1), WithModel(planner.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	rng := rand.New(rand.NewSource(23))
	b := make([]float64, edited.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, edited.N)
	got := make([]float64, edited.N)
	ref.Solve(want, b)
	p2.Solve(got, b)
	assertBitIdentical(t, got, want, "repaired fused Solve")
}
