package trisolve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/plancache"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
)

// scaled returns a copy of a with every value multiplied by f — same
// sparsity, different numbers.
func scaled(a *sparse.CSR, f float64) *sparse.CSR {
	out := &sparse.CSR{
		N:      a.N,
		M:      a.M,
		RowPtr: append([]int32(nil), a.RowPtr...),
		ColIdx: append([]int32(nil), a.ColIdx...),
		Val:    make([]float64, len(a.Val)),
	}
	for i, v := range a.Val {
		out.Val[i] = v * f
	}
	return out
}

func TestPlanCacheSharesSkeleton(t *testing.T) {
	pc := NewPlanCache(8)
	defer pc.Close()
	l := stencil.Laplace2D(25, 25).LowerWithDiag()
	p1, err := pc.Get(l, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := pc.Get(l, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p1.Sched != p2.Sched || p1.Deps != p2.Deps {
		t.Fatal("identical structure did not share schedule/deps")
	}
	s := pc.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", s)
	}
	// Different options miss.
	p3, err := pc.Get(l, true, WithProcs(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if p3.Sched == p1.Sched {
		t.Fatal("different procs shared a schedule")
	}
}

// TestPlanCacheBindsCallerValues is the correctness core of the cache
// design: two matrices with identical sparsity but different values share
// one inspector run yet each solves with its own numbers.
func TestPlanCacheBindsCallerValues(t *testing.T) {
	pc := NewPlanCache(8)
	defer pc.Close()
	l1 := stencil.Laplace2D(20, 20).LowerWithDiag()
	l2 := scaled(l1, 2)
	p1, err := pc.Get(l1, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := pc.Get(l2, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if pc.Stats().Misses != 1 {
		t.Fatalf("second structurally-equal matrix re-ran the inspector: %+v", pc.Stats())
	}
	n := l1.N
	b := randRHS(n, 7)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	p1.Solve(x1, b)
	p2.Solve(x2, b)
	want1 := make([]float64, n)
	want2 := make([]float64, n)
	if err := ForwardSeq(l1, want1, b); err != nil {
		t.Fatal(err)
	}
	if err := ForwardSeq(l2, want2, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if x1[i] != want1[i] {
			t.Fatalf("matrix 1 index %d: got %v want %v", i, x1[i], want1[i])
		}
		if x2[i] != want2[i] {
			t.Fatalf("matrix 2 index %d: got %v want %v", i, x2[i], want2[i])
		}
	}
}

// TestPlanCacheConcurrentSolves leases one pooled skeleton from many
// goroutines, solving concurrently while the cache evicts and rebuilds
// other keys — run under -race in CI.
func TestPlanCacheConcurrentSolves(t *testing.T) {
	pc := NewPlanCache(2)
	defer pc.Close()
	tris := []*sparse.CSR{
		stencil.Laplace2D(15, 15).LowerWithDiag(),
		stencil.Laplace2D(16, 16).LowerWithDiag(),
		stencil.Laplace2D(17, 17).LowerWithDiag(),
	}
	wants := make([][]float64, len(tris))
	rhss := make([][]float64, len(tris))
	for i, tri := range tris {
		rhss[i] = randRHS(tri.N, int64(i))
		wants[i] = make([]float64, tri.N)
		if err := ForwardSeq(tri, wants[i], rhss[i]); err != nil {
			t.Fatal(err)
		}
	}
	const clients = 8
	const iters = 20
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				which := (w + it) % len(tris)
				tri := tris[which]
				plan, err := pc.Get(tri, true, WithProcs(2), WithKind(executor.Pooled))
				if err != nil {
					t.Error(err)
					return
				}
				x := make([]float64, tri.N)
				plan.Solve(x, rhss[which])
				for i := range x {
					if x[i] != wants[which][i] {
						t.Errorf("client %d iter %d: wrong solution at %d", w, it, i)
						break
					}
				}
				if err := plan.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Capacity 2 over 3 keys must have evicted; every Get must still have
	// been served.
	s := pc.Stats()
	if s.Evictions == 0 {
		t.Error("expected LRU evictions with capacity 2 over 3 keys")
	}
	if total := s.Hits + s.Coalesced + s.Misses; total != clients*iters {
		t.Errorf("accounted gets = %d, want %d", total, clients*iters)
	}
}

// TestLeasedPlanDoubleCloseKeepsSharedPool: a second Close on a leased
// plan must not fall through to the shared strategy and kill the pool
// other lease holders are using.
func TestLeasedPlanDoubleCloseKeepsSharedPool(t *testing.T) {
	pc := NewPlanCache(4)
	defer pc.Close()
	l := stencil.Laplace2D(12, 12).LowerWithDiag()
	p1, err := pc.Get(l, true, WithProcs(2), WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(l, true, WithProcs(2), WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	x := make([]float64, l.N)
	b := randRHS(l.N, 3)
	if _, err := p2.SolveCtx(context.Background(), x, b); err != nil {
		t.Fatalf("shared pool unusable after peer double-Close: %v", err)
	}
	p2.Close()
}

func TestLeasedPlanCloseReleasesNotCloses(t *testing.T) {
	pc := NewPlanCache(4)
	l := stencil.Laplace2D(12, 12).LowerWithDiag()
	p1, err := pc.Get(l, true, WithProcs(2), WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(l, true, WithProcs(2), WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	// p2 still holds the skeleton: the shared pool must still run.
	x := make([]float64, l.N)
	b := randRHS(l.N, 5)
	p2.Solve(x, b)
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheCloseIdempotent pins the Close contract: a second Close
// (even racing the first) returns nil, Gets after Close fail with
// ErrClosed, and plans leased across the Close stay solvable until their
// own (also idempotent) Close.
func TestPlanCacheCloseIdempotent(t *testing.T) {
	pc := NewPlanCache(4)
	l := stencil.Laplace2D(12, 12).LowerWithDiag()
	plan, err := pc.Get(l, true, WithProcs(2), WithKind(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pc.Close(); err != nil {
				t.Errorf("concurrent Close returned %v", err)
			}
		}()
	}
	wg.Wait()
	if err := pc.Close(); err != nil {
		t.Fatalf("Close after Close returned %v, want nil", err)
	}

	if _, err := pc.Get(l, true, WithProcs(2)); !errors.Is(err, plancache.ErrClosed) {
		t.Fatalf("Get after Close returned %v, want plancache.ErrClosed", err)
	}

	// The leased plan still solves (its skeleton is torn down only at the
	// last lease Close), and double-Closing the lease is a no-op.
	x := make([]float64, l.N)
	plan.Solve(x, randRHS(l.N, 9))
	if err := plan.Close(); err != nil {
		t.Fatal(err)
	}
	if err := plan.Close(); err != nil {
		t.Fatalf("second plan Close returned %v, want nil", err)
	}
}
