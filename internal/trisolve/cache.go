package trisolve

import (
	"io"

	"doconsider/internal/executor"
	"doconsider/internal/plancache"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// PlanCache shares the inspector output of structurally identical
// triangular solves: plans are keyed by the sparsity fingerprint of the
// factor plus the plan configuration, so N callers solving factors with
// the same nonzero pattern — successive Newton steps, the same mesh with
// updated coefficients, many concurrent requests over one model — run the
// wavefront analysis and schedule construction once and, for the Pooled
// kind, share one persistent worker pool.
//
// Get binds the caller's matrix values to the shared structural skeleton,
// so matrices with equal structure but different values each solve with
// their own numbers. Concurrent misses for one key are coalesced into a
// single inspector run.
type PlanCache struct {
	c *plancache.Cache[planKey, *planSkeleton]
}

type planKey struct {
	fp    uint64
	lower bool
	procs int
	kind  int // executor.Kind
	sched SchedulerKind
	part  int // schedule.Partition
}

// planSkeleton is the cached, matrix-value-free part of a Plan: the
// dependence structure, wavefronts, schedule and (possibly stateful)
// execution strategy. All of it is a pure function of the sparsity
// pattern and the plan configuration.
type planSkeleton struct {
	deps  *wavefront.Deps
	wf    []int32
	sched *schedule.Schedule
	kind  executor.Kind
	strat executor.Strategy
}

func (s *planSkeleton) Close() error {
	if c, ok := s.strat.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NewPlanCache returns a plan cache holding at most capacity skeletons;
// capacity <= 0 means unbounded. Evicted skeletons close their strategy
// (releasing pooled workers) after the last leased Plan is Closed.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{c: plancache.New[planKey, *planSkeleton](capacity)}
}

// Get returns a Plan for the factor t, sharing the inspector output and
// execution strategy with every other plan whose factor has the same
// sparsity pattern and whose options match. The returned Plan is leased:
// Close it when done (the shared skeleton persists for other holders).
// Concurrent Solve calls on plans sharing one skeleton are safe; the
// pooled strategy serializes them on its worker pool.
func (pc *PlanCache) Get(t *sparse.CSR, lower bool, opts ...Option) (*Plan, error) {
	cfg := buildPlanConfig(opts)
	key := planKey{
		fp:    t.StructureFingerprint(),
		lower: lower,
		procs: cfg.nproc,
		kind:  int(cfg.kind),
		sched: cfg.scheduler,
		part:  int(cfg.part),
	}
	h, err := pc.c.Get(key, func() (*planSkeleton, error) {
		deps, wf, s, err := inspect(t, lower, cfg)
		if err != nil {
			return nil, err
		}
		strat, err := cfg.kind.NewStrategy()
		if err != nil {
			return nil, err
		}
		return &planSkeleton{deps: deps, wf: wf, sched: s, kind: cfg.kind, strat: strat}, nil
	})
	if err != nil {
		return nil, err
	}
	sk := h.Value()
	return &Plan{
		L:       t,
		Lower:   lower,
		Deps:    sk.deps,
		Wf:      sk.wf,
		Sched:   sk.sched,
		Kind:    sk.kind,
		strat:   sk.strat,
		leased:  true,
		release: h.Release,
	}, nil
}

// Stats returns the cache effectiveness counters.
func (pc *PlanCache) Stats() plancache.Stats { return pc.c.Stats() }

// Len returns the number of resident plan skeletons.
func (pc *PlanCache) Len() int { return pc.c.Len() }

// Close evicts every skeleton and closes the cache; skeletons still
// leased are torn down when their last Plan is Closed.
func (pc *PlanCache) Close() error { return pc.c.Close() }
