package trisolve

import (
	"io"
	"sync"

	"doconsider/internal/executor"
	"doconsider/internal/plancache"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// PlanCache shares the inspector output of structurally identical
// triangular solves: plans are keyed by the sparsity fingerprint of the
// factor plus the plan configuration, so N callers solving factors with
// the same nonzero pattern — successive Newton steps, the same mesh with
// updated coefficients, many concurrent requests over one model — run the
// wavefront analysis and schedule construction once and, for the Pooled
// kind, share one persistent worker pool.
//
// Get binds the caller's matrix values to the shared structural skeleton,
// so matrices with equal structure but different values each solve with
// their own numbers. Concurrent misses for one key are coalesced into a
// single inspector run.
//
// When no kind is pinned (no WithKind), the planner chooses the strategy
// per structure; the cache records each decision (see Decisions and
// DecisionCounts) so serving stats can report what the inspector decided
// and why.
type PlanCache struct {
	c *plancache.Cache[planKey, *planSkeleton]

	mu      sync.Mutex
	records []DecisionRecord
	counts  map[string]uint64
}

// maxDecisionRecords bounds the per-cache decision log; older records
// are dropped FIFO. The counts map is never trimmed.
const maxDecisionRecords = 64

// DecisionRecord is one planner decision made while building a cached
// skeleton, flattened for JSON stats.
type DecisionRecord struct {
	Strategy string `json:"strategy"`
	Reorder  string `json:"reorder"`
	Pinned   bool   `json:"pinned,omitempty"`
	Lower    bool   `json:"lower"`
	Procs    int    `json:"procs"`
	N        int    `json:"n"`
	Edges    int    `json:"edges"`
	Levels   int    `json:"levels"`
	MaxWidth int    `json:"max_width"`
	// Predicted pass times, seconds, for auditing a surprising choice.
	PredSequential float64 `json:"pred_sequential"`
	PredPooled     float64 `json:"pred_pooled"`
	PredDoAcross   float64 `json:"pred_doacross"`
}

type planKey struct {
	fp       uint64
	lower    bool
	procs    int
	kind     int               // executor.Kind; -1 when the planner chooses
	auto     bool              // no pinned kind: decision is a function of (fp, procs, model)
	model    planner.CostModel // compared by value, so fresh-but-equal models share entries
	hasModel bool              // false = host model
	sched    SchedulerKind
	part     int // schedule.Partition
}

// planSkeleton is the cached, matrix-value-free part of a Plan: the
// dependence structure, wavefronts, schedule, planner decision and the
// (possibly stateful) execution strategy. All of it is a pure function
// of the sparsity pattern and the plan configuration.
type planSkeleton struct {
	deps     *wavefront.Deps
	wf       []int32
	sched    *schedule.Schedule
	kind     executor.Kind
	decision *planner.Decision
	strat    executor.Strategy
}

func (s *planSkeleton) Close() error {
	if c, ok := s.strat.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NewPlanCache returns a plan cache holding at most capacity skeletons;
// capacity <= 0 means unbounded. Evicted skeletons close their strategy
// (releasing pooled workers) after the last leased Plan is Closed.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		c:      plancache.New[planKey, *planSkeleton](capacity),
		counts: make(map[string]uint64),
	}
}

// Get returns a Plan for the factor t, sharing the inspector output and
// execution strategy with every other plan whose factor has the same
// sparsity pattern and whose options match. The returned Plan is leased:
// Close it when done (the shared skeleton persists for other holders).
// Concurrent Solve calls on plans sharing one skeleton are safe; the
// pooled strategy serializes them on its worker pool.
func (pc *PlanCache) Get(t *sparse.CSR, lower bool, opts ...Option) (*Plan, error) {
	cfg := buildPlanConfig(opts)
	key := planKey{
		fp:    t.StructureFingerprint(),
		lower: lower,
		procs: cfg.nproc,
		kind:  int(cfg.kind),
		sched: cfg.scheduler,
		part:  int(cfg.part),
	}
	if cfg.adaptive() {
		key.kind, key.auto = -1, true
		if cfg.model != nil {
			key.model, key.hasModel = *cfg.model, true
		}
	}
	h, err := pc.c.Get(key, func() (*planSkeleton, error) {
		deps, wf, s, kind, dec, err := inspect(t, lower, cfg)
		if err != nil {
			return nil, err
		}
		strat, err := kind.NewStrategy()
		if err != nil {
			return nil, err
		}
		sk := &planSkeleton{deps: deps, wf: wf, sched: s, kind: kind, decision: dec, strat: strat}
		pc.record(lower, cfg, sk)
		return sk, nil
	})
	if err != nil {
		return nil, err
	}
	sk := h.Value()
	return &Plan{
		L:        t,
		Lower:    lower,
		Deps:     sk.deps,
		Wf:       sk.wf,
		Sched:    sk.sched,
		Kind:     sk.kind,
		Decision: sk.decision,
		strat:    sk.strat,
		leased:   true,
		release:  h.Release,
	}, nil
}

// record logs the strategy chosen for a freshly built skeleton.
func (pc *PlanCache) record(lower bool, cfg planConfig, sk *planSkeleton) {
	rec := DecisionRecord{
		Strategy: sk.kind.String(),
		Reorder:  planner.ReorderNone.String(),
		Lower:    lower,
		Procs:    cfg.nproc,
	}
	if d := sk.decision; d != nil {
		rec.Reorder = d.Reorder.String()
		rec.Pinned = d.Pinned
		rec.N = d.Features.N
		rec.Edges = d.Features.Edges
		rec.Levels = d.Features.Levels
		rec.MaxWidth = d.Features.MaxWidth
		rec.PredSequential = d.PredSequential
		rec.PredPooled = d.PredPooled
		rec.PredDoAcross = d.PredDoAcross
	} else {
		rec.Pinned = true
		rec.N = sk.deps.N
		rec.Edges = sk.deps.Edges()
		rec.Levels = sk.sched.NumPhases
	}
	pc.mu.Lock()
	pc.counts[rec.Strategy]++
	pc.records = append(pc.records, rec)
	if len(pc.records) > maxDecisionRecords {
		pc.records = pc.records[len(pc.records)-maxDecisionRecords:]
	}
	pc.mu.Unlock()
}

// Decisions returns the most recent planner decisions (newest last,
// bounded FIFO) made while building skeletons for this cache.
func (pc *PlanCache) Decisions() []DecisionRecord {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]DecisionRecord, len(pc.records))
	copy(out, pc.records)
	return out
}

// DecisionCounts returns how many skeleton builds chose each strategy,
// by registry name, since the cache was created (evictions do not
// decrement).
func (pc *PlanCache) DecisionCounts() map[string]uint64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make(map[string]uint64, len(pc.counts))
	for k, v := range pc.counts {
		out[k] = v
	}
	return out
}

// Stats returns the cache effectiveness counters.
func (pc *PlanCache) Stats() plancache.Stats { return pc.c.Stats() }

// Len returns the number of resident plan skeletons.
func (pc *PlanCache) Len() int { return pc.c.Len() }

// Close evicts every skeleton and closes the cache; skeletons still
// leased are torn down when their last Plan is Closed.
func (pc *PlanCache) Close() error { return pc.c.Close() }
