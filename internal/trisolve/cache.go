package trisolve

import (
	"io"
	"sort"
	"sync"
	"time"

	"doconsider/internal/delta"
	"doconsider/internal/executor"
	"doconsider/internal/plancache"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

// PlanCache shares the inspector output of structurally identical
// triangular solves: plans are keyed by the sparsity fingerprint of the
// factor plus the plan configuration, so N callers solving factors with
// the same nonzero pattern — successive Newton steps, the same mesh with
// updated coefficients, many concurrent requests over one model — run the
// wavefront analysis and schedule construction once and, for the Pooled
// kind, share one persistent worker pool.
//
// Get binds the caller's matrix values to the shared structural skeleton,
// so matrices with equal structure but different values each solve with
// their own numbers. Concurrent misses for one key are coalesced into a
// single inspector run.
//
// When no kind is pinned (no WithKind), the planner chooses the strategy
// per structure; the cache records each decision (see Decisions and
// DecisionCounts) so serving stats can report what the inspector decided
// and why.
//
// A fingerprint miss is not necessarily a cold start: the cache keeps a
// similarity index of resident skeletons, and when the new structure is
// a small structural drift of a resident one — a few rows' nonzeros
// appeared or vanished — the nearest ancestor's plan is repaired through
// internal/delta instead of re-inspected from scratch, with the caller's
// values bound as usual. The planner prices repair against rebuild
// (planner.PlanRepair) and the repair aborts to a full build when the
// level-change cone exceeds the break-even bound. WithDriftHint lets a
// caller that knows the edited rows (the server's base_fp+edits request
// form) skip the ancestor scan entirely.
type PlanCache struct {
	c *plancache.Cache[planKey, *planSkeleton]

	mu      sync.Mutex
	records []DecisionRecord
	counts  map[string]uint64
	sim     map[simKey]map[uint64]*simEntry
	delta   DeltaStats
	super   SupernodeStats
}

// maxSimScan bounds how many resident candidates one near-miss lookup
// will diff against; candidates beyond the bound (unusual — drift chains
// keep one or two ancestors per shape) fall back to a cold build.
const maxSimScan = 4

// simKey groups skeletons that could repair one another: everything in
// planKey except the structural fingerprint, plus the order (repair
// never changes N).
type simKey struct {
	n   int
	key planKey // fp zeroed
}

// simEntry is one resident skeleton's entry in the similarity index.
type simEntry struct {
	state    *delta.State
	kind     executor.Kind
	decision *planner.Decision
	// fused is the ancestor's supernodal state; repairs re-splice its
	// partition around the edited rows so a drift chain keeps fused
	// execution without re-detecting from scratch.
	fused *fusedExec
}

// DeltaStats counts the near-miss outcomes of a PlanCache: how many
// misses were served by repairing a resident ancestor, how many
// attempted repairs fell back to a full build (planner declined or the
// cone bound tripped), and the total rows releveled by repairs.
type DeltaStats struct {
	Repairs   uint64 `json:"repairs"`
	Fallbacks uint64 `json:"fallbacks"`
	ConeRows  uint64 `json:"cone_rows"`
}

// maxDecisionRecords bounds the per-cache decision log; older records
// are dropped FIFO. The counts map is never trimmed.
const maxDecisionRecords = 64

// DecisionRecord is one planner decision made while building a cached
// skeleton, flattened for JSON stats.
type DecisionRecord struct {
	Strategy string `json:"strategy"`
	Reorder  string `json:"reorder"`
	Pinned   bool   `json:"pinned,omitempty"`
	// Repaired marks skeletons obtained by delta-repairing a resident
	// ancestor instead of full inspection; the strategy and predictions
	// are inherited from the ancestor's decision.
	Repaired bool `json:"repaired,omitempty"`
	Lower    bool `json:"lower"`
	Procs    int  `json:"procs"`
	N        int  `json:"n"`
	Edges    int  `json:"edges"`
	Levels   int  `json:"levels"`
	MaxWidth int  `json:"max_width"`
	// Predicted pass times, seconds, for auditing a surprising choice.
	PredSequential float64 `json:"pred_sequential"`
	PredPooled     float64 `json:"pred_pooled"`
	PredDoAcross   float64 `json:"pred_doacross"`
	PredSupernodal float64 `json:"pred_supernodal,omitempty"`
	// Supernodal fusion outcome for this skeleton (internal/supernode).
	Fused        bool `json:"fused,omitempty"`
	Nodes        int  `json:"nodes,omitempty"`
	FusedRows    int  `json:"fused_rows,omitempty"`
	NodeMaxWidth int  `json:"node_max_width,omitempty"`
}

// SupernodeStats aggregates the fusion outcomes of a cache's skeleton
// builds (cumulative, like DecisionCounts — evictions do not decrement).
// MeanWidth and FusedFrac are derived over the fused skeletons only.
type SupernodeStats struct {
	FusedPlans uint64  `json:"fused_plans"`
	Nodes      uint64  `json:"nodes"`
	Rows       uint64  `json:"rows"`
	FusedRows  uint64  `json:"fused_rows"`
	MaxWidth   int     `json:"max_width"`
	MeanWidth  float64 `json:"mean_width"`
	FusedFrac  float64 `json:"fused_frac"`
}

type planKey struct {
	fp       uint64
	lower    bool
	procs    int
	kind     int               // executor.Kind; -1 when the planner chooses
	auto     bool              // no pinned kind: decision is a function of (fp, procs, model)
	model    planner.CostModel // compared by value, so fresh-but-equal models share entries
	hasModel bool              // false = host model
	sched    SchedulerKind
	part     int // schedule.Partition
	// fuse is the resolved fusion mode — the plan's fusion identity.
	// Modes differ in executor shape (unit vs row schedules), so fused
	// and unfused skeletons must never share an entry. Under FuseAuto the
	// fused/row-wise choice itself is a deterministic function of the
	// fingerprint and model already in the key.
	fuse FuseMode
}

// planSkeleton is the cached, matrix-value-free part of a Plan: the
// dependence structure, wavefronts, schedule, planner decision and the
// (possibly stateful) execution strategy. All of it is a pure function
// of the sparsity pattern and the plan configuration. deps and wf are
// always row-level (they feed the repair state); for a fused skeleton
// sched is the unit-level schedule the executor runs and fused holds the
// supernodal state, with the row-level structure still backing repairs.
type planSkeleton struct {
	deps     *wavefront.Deps
	wf       []int32
	sched    *schedule.Schedule
	kind     executor.Kind
	decision *planner.Decision
	strat    executor.Strategy
	fused    *fusedExec
	state    *delta.State // repair state; nil for non-global schedules
	cleanup  func()       // removes the skeleton from the similarity index
}

func (s *planSkeleton) Close() error {
	if s.cleanup != nil {
		s.cleanup()
	}
	if c, ok := s.strat.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NewPlanCache returns a plan cache holding at most capacity skeletons;
// capacity <= 0 means unbounded. Evicted skeletons close their strategy
// (releasing pooled workers) after the last leased Plan is Closed.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		c:      plancache.New[planKey, *planSkeleton](capacity),
		counts: make(map[string]uint64),
		sim:    make(map[simKey]map[uint64]*simEntry),
	}
}

// Get returns a Plan for the factor t, sharing the inspector output and
// execution strategy with every other plan whose factor has the same
// sparsity pattern and whose options match. The returned Plan is leased:
// Close it when done (the shared skeleton persists for other holders).
// Concurrent Solve calls on plans sharing one skeleton are safe; the
// pooled strategy serializes them on its worker pool.
func (pc *PlanCache) Get(t *sparse.CSR, lower bool, opts ...Option) (*Plan, error) {
	cfg := buildPlanConfig(opts)
	key := planKey{
		fp:    t.StructureFingerprint(),
		lower: lower,
		procs: cfg.nproc,
		kind:  int(cfg.kind),
		sched: cfg.scheduler,
		part:  int(cfg.part),
		fuse:  cfg.fuseMode(),
	}
	if cfg.adaptive() {
		key.kind, key.auto = -1, true
		if cfg.model != nil {
			key.model, key.hasModel = *cfg.model, true
		}
	}
	h, err := pc.c.Get(key, func() (*planSkeleton, error) {
		// Build-cost attribution: the repair attempt (successful or not)
		// and the inspector run are timed separately so a traced request
		// can tell "waiting on delta repair" from "waiting on a cold
		// inspection". Only the singleflight builder reaches this closure;
		// coalesced peers observe the time as plan-stage waiting.
		t0 := time.Now()
		if sk := pc.tryRepair(t, lower, cfg, key); sk != nil {
			if bs := cfg.buildStats; bs != nil {
				bs.RepairNs += time.Since(t0).Nanoseconds()
				bs.Repaired = true
			}
			return sk, nil
		}
		if bs := cfg.buildStats; bs != nil {
			bs.RepairNs += time.Since(t0).Nanoseconds()
		}
		t1 := time.Now()
		ins, err := inspect(t, lower, cfg)
		if bs := cfg.buildStats; bs != nil {
			bs.InspectNs += time.Since(t1).Nanoseconds()
		}
		if err != nil {
			return nil, err
		}
		strat, err := ins.kind.NewStrategy()
		if err != nil {
			return nil, err
		}
		sk := &planSkeleton{deps: ins.deps, wf: ins.wf, sched: ins.sched,
			kind: ins.kind, decision: ins.dec, strat: strat, fused: ins.fused}
		if cfg.scheduler == GlobalSched {
			// The repair state splices row-level structure, so a fused
			// skeleton backs it with the row-level schedule the executor
			// would have run unfused; the unit schedule is re-derived from
			// the re-spliced partition after each repair.
			rowSched := ins.sched
			if ins.fused != nil {
				rowSched = schedule.Global(ins.wf, cfg.nproc)
			}
			sk.state = delta.NewState(ins.deps, ins.wf, rowSched)
			pc.registerSim(key, t.N, sk)
		}
		pc.record(lower, cfg, sk, nil)
		return sk, nil
	})
	if err != nil {
		return nil, err
	}
	sk := h.Value()
	p := &Plan{
		L:        t,
		Lower:    lower,
		Deps:     sk.deps,
		Wf:       sk.wf,
		Sched:    sk.sched,
		Kind:     sk.kind,
		Decision: sk.decision,
		strat:    sk.strat,
		fused:    sk.fused,
		leased:   true,
		release:  h.Release,
	}
	if sk.fused != nil {
		p.Deps = sk.fused.deps
	}
	return p, nil
}

// tryRepair is the near-miss path: on a fingerprint miss it looks for a
// resident ancestor with the same plan shape whose structure differs
// from t in few enough rows that the planner prices a delta repair below
// a rebuild, and repairs that ancestor's skeleton. It returns nil — full
// inspection proceeds — when no ancestor qualifies.
func (pc *PlanCache) tryRepair(t *sparse.CSR, lower bool, cfg planConfig, key planKey) *planSkeleton {
	if cfg.scheduler != GlobalSched {
		return nil
	}
	sk := simKey{n: t.N, key: key}
	sk.key.fp = 0
	pc.mu.Lock()
	bucket := pc.sim[sk]
	candidates := make([]*simEntry, 0, len(bucket))
	hinted := false
	if cfg.hintRows != nil {
		if e, ok := bucket[cfg.hintFp]; ok {
			candidates = append(candidates, e)
			hinted = true
		}
	}
	if len(candidates) == 0 {
		for _, e := range bucket {
			candidates = append(candidates, e)
			if len(candidates) == maxSimScan {
				break
			}
		}
	}
	pc.mu.Unlock()
	if len(candidates) == 0 {
		return nil
	}

	var best *simEntry
	var bestChanged []int32
	if hinted {
		// The caller names the edited rows (it built t from the ancestor
		// by applying exactly those edits), so the diff scan disappears.
		// Hint rows are matrix rows; translate to iteration space (upper
		// factors are reflected) and normalize for the splice.
		best, bestChanged = candidates[0], normalizeHintRows(cfg.hintRows, t.N, lower)
	} else {
		for _, e := range candidates {
			limit := planner.PlanRepair(t.N, e.state.Deps.Edges(), 1, cfg.model).MaxCone
			if limit <= 0 {
				// Repair can never pay for this shape (the break-even cone
				// is empty); don't spend an O(N) diff to find that out —
				// DiffFactor would read limit<=0 as "unbounded".
				continue
			}
			changed, ok := delta.DiffFactor(e.state.Deps, t, lower, limit)
			if !ok || len(changed) == 0 {
				continue // drifted too far, or a fingerprint collision
			}
			if best == nil || len(changed) < len(bestChanged) {
				best, bestChanged = e, changed
			}
		}
	}
	if best == nil {
		return nil
	}
	dec := planner.PlanRepair(t.N, best.state.Deps.Edges(), len(bestChanged), cfg.model)
	if !dec.Repair {
		pc.countDelta(func(d *DeltaStats) { d.Fallbacks++ })
		return nil
	}
	newDeps := delta.FactorDeps(best.state.Deps, t, lower, bestChanged)
	st, stats, err := best.state.Repair(newDeps, bestChanged, delta.Options{MaxCone: dec.MaxCone})
	if err != nil {
		pc.countDelta(func(d *DeltaStats) { d.Fallbacks++ })
		return nil
	}
	strat, err := best.kind.NewStrategy()
	if err != nil {
		return nil
	}
	out := &planSkeleton{
		deps: st.Deps, wf: st.Wf, sched: st.Sched,
		kind: best.kind, decision: best.decision, strat: strat, state: st,
	}
	if best.fused != nil {
		// Keep the drift chain fused: re-splice the ancestor's partition
		// around the edited rows (detection is local, so untouched nodes
		// carry over) and rebuild the unit schedule and kernel state.
		newPart := supernode.Resplice(best.fused.part, st.Deps, bestChanged)
		fx, ferr := newFusedExec(t, lower, newPart, st.Deps, nil, nil, cfg.nproc)
		if ferr != nil {
			pc.countDelta(func(d *DeltaStats) { d.Fallbacks++ })
			return nil
		}
		out.fused = fx
		out.sched = fx.sched
	}
	pc.registerSim(key, t.N, out)
	pc.countDelta(func(d *DeltaStats) {
		d.Repairs++
		d.ConeRows += uint64(stats.Cone)
	})
	pc.record(lower, cfg, out, &stats)
	return out
}

// normalizeHintRows maps matrix row indices to iteration indices
// (reflected for backward solves, wavefront.ReflectIndex), sorted and
// deduplicated as the splice requires. Out-of-range rows are dropped —
// the repair then treats the structure as if those rows were unedited,
// and the hint contract (rows cover every edited row) stays with the
// caller.
func normalizeHintRows(rows []int32, n int, lower bool) []int32 {
	out := make([]int32, 0, len(rows))
	for _, r := range rows {
		if r < 0 || int(r) >= n {
			continue
		}
		if !lower {
			r = int32(wavefront.ReflectIndex(n, int(r)))
		}
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	uniq := out[:0]
	var prev int32 = -1
	for _, r := range out {
		if r != prev {
			uniq = append(uniq, r)
			prev = r
		}
	}
	return uniq
}

// registerSim adds a freshly built skeleton to the similarity index and
// arranges its removal when the skeleton is torn down.
func (pc *PlanCache) registerSim(key planKey, n int, sk *planSkeleton) {
	sKey := simKey{n: n, key: key}
	sKey.key.fp = 0
	fp := key.fp
	entry := &simEntry{state: sk.state, kind: sk.kind, decision: sk.decision, fused: sk.fused}
	pc.mu.Lock()
	bucket := pc.sim[sKey]
	if bucket == nil {
		bucket = make(map[uint64]*simEntry)
		pc.sim[sKey] = bucket
	}
	bucket[fp] = entry
	pc.mu.Unlock()
	sk.cleanup = func() {
		pc.mu.Lock()
		// Close of an evicted skeleton can run after the same structure
		// was rebuilt and re-registered (plancache defers Close past the
		// last lease): only remove the entry if it is still ours, never a
		// replacement's.
		if b := pc.sim[sKey]; b != nil && b[fp] == entry {
			delete(b, fp)
			if len(b) == 0 {
				delete(pc.sim, sKey)
			}
		}
		pc.mu.Unlock()
	}
}

func (pc *PlanCache) countDelta(f func(*DeltaStats)) {
	pc.mu.Lock()
	f(&pc.delta)
	pc.mu.Unlock()
}

// DeltaStats returns the cache's near-miss repair counters.
func (pc *PlanCache) DeltaStats() DeltaStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.delta
}

// record logs the strategy chosen for a freshly built skeleton.
func (pc *PlanCache) record(lower bool, cfg planConfig, sk *planSkeleton, repair *delta.Stats) {
	rec := DecisionRecord{
		Strategy: sk.kind.String(),
		Reorder:  planner.ReorderNone.String(),
		Repaired: repair != nil,
		Lower:    lower,
		Procs:    cfg.nproc,
	}
	if d := sk.decision; d != nil {
		rec.Reorder = d.Reorder.String()
		rec.Pinned = d.Pinned
		rec.N = d.Features.N
		rec.Edges = d.Features.Edges
		rec.Levels = d.Features.Levels
		rec.MaxWidth = d.Features.MaxWidth
		rec.PredSequential = d.PredSequential
		rec.PredPooled = d.PredPooled
		rec.PredDoAcross = d.PredDoAcross
		rec.PredSupernodal = d.PredSupernodal
	} else {
		rec.Pinned = true
		rec.N = sk.deps.N
		rec.Edges = sk.deps.Edges()
		rec.Levels = sk.sched.NumPhases
	}
	if fx := sk.fused; fx != nil {
		rec.Fused = true
		rec.Strategy += "+fused"
		rec.Nodes = fx.stats.Nodes
		rec.FusedRows = fx.stats.FusedRows
		rec.NodeMaxWidth = fx.stats.MaxWidth
	}
	pc.mu.Lock()
	pc.counts[rec.Strategy]++
	if fx := sk.fused; fx != nil {
		pc.super.FusedPlans++
		pc.super.Nodes += uint64(fx.stats.Nodes)
		pc.super.Rows += uint64(fx.stats.Rows)
		pc.super.FusedRows += uint64(fx.stats.FusedRows)
		if fx.stats.MaxWidth > pc.super.MaxWidth {
			pc.super.MaxWidth = fx.stats.MaxWidth
		}
	}
	pc.records = append(pc.records, rec)
	if len(pc.records) > maxDecisionRecords {
		pc.records = pc.records[len(pc.records)-maxDecisionRecords:]
	}
	pc.mu.Unlock()
}

// SupernodeStats returns the cache's cumulative fusion counters with the
// derived mean node width and fused-row fraction filled in.
func (pc *PlanCache) SupernodeStats() SupernodeStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	s := pc.super
	if s.Nodes > 0 {
		s.MeanWidth = float64(s.Rows) / float64(s.Nodes)
	}
	if s.Rows > 0 {
		s.FusedFrac = float64(s.FusedRows) / float64(s.Rows)
	}
	return s
}

// Decisions returns the most recent planner decisions (newest last,
// bounded FIFO) made while building skeletons for this cache.
func (pc *PlanCache) Decisions() []DecisionRecord {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]DecisionRecord, len(pc.records))
	copy(out, pc.records)
	return out
}

// DecisionCounts returns how many skeleton builds chose each strategy,
// by registry name, since the cache was created (evictions do not
// decrement).
func (pc *PlanCache) DecisionCounts() map[string]uint64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make(map[string]uint64, len(pc.counts))
	for k, v := range pc.counts {
		out[k] = v
	}
	return out
}

// Stats returns the cache effectiveness counters.
func (pc *PlanCache) Stats() plancache.Stats { return pc.c.Stats() }

// NoteHit counts a plan lookup served from a caller-held memo of a
// leased plan — still a lookup the inspector did not run for.
func (pc *PlanCache) NoteHit() { pc.c.NoteHit() }

// Len returns the number of resident plan skeletons.
func (pc *PlanCache) Len() int { return pc.c.Len() }

// Close evicts every skeleton and closes the cache; skeletons still
// leased are torn down when their last Plan is Closed.
func (pc *PlanCache) Close() error { return pc.c.Close() }
