package trisolve

import (
	"context"
	"fmt"
	"sync"

	"doconsider/internal/executor"
)

// BatchSolver binds a plan to pre-resolved solve state — the reciprocal
// diagonal and one executor body closure — so repeated batched solves
// allocate nothing. Plan.SolveBatchCtx builds the reciprocal diagonal
// and a fresh body closure on every call, which is fine per plan
// construction but is heap traffic on a serving warm path; a
// BatchSolver pays both once. This is safe because the factor values
// behind a plan are treated as immutable (the serving tier caches
// factors by content fingerprint), so the reciprocal diagonal cannot go
// stale.
//
// The per-call vectors are installed into solver fields read by the
// bound body under a mutex, which serializes Solve calls on one solver.
// The serving coalescer already executes at most one pass per factor at
// a time, so the serialization costs nothing there; independent callers
// wanting concurrent solves bind one solver each.
//
// Arithmetic is bit-identical to Plan.SolveBatchCtx: the bodies below
// mirror the batch bodies of batch.go and fused.go operation for
// operation, only reading xs/bs through the solver instead of a
// per-call closure.
type BatchSolver struct {
	p       *Plan
	invDiag []float64
	body    executor.Body

	mu sync.Mutex
	xs [][]float64
	bs [][]float64
}

// Bind builds a BatchSolver over the plan. The solver borrows the plan:
// the caller must keep the plan open (not Close it) for as long as the
// solver is in use.
func (p *Plan) Bind() *BatchSolver {
	s := &BatchSolver{p: p, invDiag: invDiagonal(p.L)}
	switch {
	case p.fused != nil && p.Lower:
		s.body = s.fusedForwardBody()
	case p.fused != nil:
		s.body = s.fusedBackwardBody()
	case p.Lower:
		s.body = s.forwardBody()
	default:
		s.body = s.backwardBody()
	}
	return s
}

// Solve runs one batched pass writing solution j to xs[j], exactly as
// Plan.SolveBatchCtx would, with zero allocations on the success path.
func (s *BatchSolver) Solve(ctx context.Context, xs, bs [][]float64) (executor.Metrics, error) {
	if len(xs) != len(bs) {
		return executor.Metrics{}, fmt.Errorf("trisolve: batch has %d solutions but %d right-hand sides", len(xs), len(bs))
	}
	if len(xs) == 0 {
		return executor.Metrics{}, nil
	}
	n := s.p.L.N
	for j := range xs {
		if len(xs[j]) != n || len(bs[j]) != n {
			return executor.Metrics{}, fmt.Errorf("trisolve: batch vector %d has length %d/%d, want %d", j, len(xs[j]), len(bs[j]), n)
		}
	}
	s.mu.Lock()
	s.xs, s.bs = xs, bs
	m, err := s.p.strat.Execute(ctx, s.p.Sched, s.p.Deps, s.body)
	s.xs, s.bs = nil, nil
	s.mu.Unlock()
	return s.p.rowMetrics(m, err), err
}

// forwardBody mirrors ForwardBatchBody with the reciprocal diagonal
// precomputed and the vectors read from the solver.
func (s *BatchSolver) forwardBody() executor.Body {
	l := s.p.L
	inv := s.invDiag
	return func(i int32) {
		cols, vals := l.Row(int(i))
		vals = vals[:len(cols)] // hoist the bounds check out of the loops
		for j := range s.xs {
			x, b := s.xs[j], s.bs[j]
			acc := b[i]
			for k, c := range cols {
				if c != i {
					acc -= vals[k] * x[c]
				}
			}
			x[i] = acc * inv[i]
		}
	}
}

// backwardBody mirrors BackwardBatchBody.
func (s *BatchSolver) backwardBody() executor.Body {
	u := s.p.L
	inv := s.invDiag
	n := u.N
	return func(k int32) {
		i := n - 1 - int(k)
		cols, vals := u.Row(i)
		vals = vals[:len(cols)] // hoist the bounds check out of the loops
		for j := range s.xs {
			x, b := s.xs[j], s.bs[j]
			acc := b[i]
			for q, c := range cols {
				if int(c) != i {
					acc -= vals[q] * x[c]
				}
			}
			x[i] = acc * inv[i]
		}
	}
}

// fusedForwardBody mirrors fusedExec.forwardBatchBody.
func (s *BatchSolver) fusedForwardBody() executor.Body {
	l := s.p.L
	fx := s.p.fused
	inv := s.invDiag
	rp, ci, vals := l.RowPtr, l.ColIdx, l.Val
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for r := np[u]; r < np[u+1]; r++ {
			d := dp[r]
			cols := ci[rp[r]:d]
			vs := vals[rp[r]:d]
			vs = vs[:len(cols)]
			var cols2 []int32
			var vs2 []float64
			if start := d + 1; start < rp[r+1] {
				cols2 = ci[start:rp[r+1]]
				vs2 = vals[start:rp[r+1]]
				vs2 = vs2[:len(cols2)]
			}
			for j := range s.xs {
				x, b := s.xs[j], s.bs[j]
				acc := b[r]
				for k, c := range cols {
					acc -= vs[k] * x[c]
				}
				for k, c := range cols2 {
					acc -= vs2[k] * x[c]
				}
				x[r] = acc * inv[r]
			}
		}
	}
}

// fusedBackwardBody mirrors fusedExec.backwardBatchBody.
func (s *BatchSolver) fusedBackwardBody() executor.Body {
	uM := s.p.L
	fx := s.p.fused
	inv := s.invDiag
	n := uM.N
	rp, ci, vals := uM.RowPtr, uM.ColIdx, uM.Val
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for k := np[u]; k < np[u+1]; k++ {
			i := int32(n-1) - k
			d := dp[i]
			cols := ci[rp[i]:d]
			vs := vals[rp[i]:d]
			vs = vs[:len(cols)]
			var cols2 []int32
			var vs2 []float64
			if start := d + 1; start < rp[i+1] {
				cols2 = ci[start:rp[i+1]]
				vs2 = vals[start:rp[i+1]]
				vs2 = vs2[:len(cols2)]
			}
			for j := range s.xs {
				x, b := s.xs[j], s.bs[j]
				acc := b[i]
				for q, c := range cols {
					acc -= vs[q] * x[c]
				}
				for q, c := range cols2 {
					acc -= vs2[q] * x[c]
				}
				x[i] = acc * inv[i]
			}
		}
	}
}
