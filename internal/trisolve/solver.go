package trisolve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

// BatchSolver binds a plan to pre-resolved solve state — the reciprocal
// diagonal and one executor body closure — so repeated batched solves
// allocate nothing. Plan.SolveBatchCtx builds the reciprocal diagonal
// and a fresh body closure on every call, which is fine per plan
// construction but is heap traffic on a serving warm path; a
// BatchSolver pays both once. This is safe because the factor values
// behind a plan are treated as immutable (the serving tier caches
// factors by content fingerprint), so the reciprocal diagonal cannot go
// stale.
//
// The per-call vectors are installed into solver fields read by the
// bound body under a mutex, which serializes Solve calls on one solver.
// The serving coalescer already executes at most one pass per factor at
// a time, so the serialization costs nothing there; independent callers
// wanting concurrent solves bind one solver each.
//
// Arithmetic is bit-identical to Plan.SolveBatchCtx: the bodies below
// mirror the batch bodies of batch.go and fused.go operation for
// operation, only reading xs/bs through the solver instead of a
// per-call closure.
type BatchSolver struct {
	p       *Plan
	invDiag []float64
	body    executor.Body

	// Timed execution state (SolveTimed): a prebuilt wrapper body that
	// charges each scheduled index's runtime to its wavefront level on
	// the installed clock. Built lazily on the first timed solve — the
	// level map and the wrapper closure are the only allocations, and
	// they happen once per solver — so sampled solves on a warm solver
	// stay allocation-free.
	timed   executor.Body
	levelOf []int32    // scheduled index -> wavefront level
	clock   LevelClock // per-call, installed under mu like xs/bs

	mu sync.Mutex
	xs [][]float64
	bs [][]float64
}

// LevelClock receives per-wavefront-level executor time from a timed
// solve. Implementations must be safe for concurrent Add calls — the
// executor invokes the timed body from its worker goroutines.
// internal/obs.LevelClock is the serving tier's implementation.
type LevelClock interface {
	Add(level int32, ns int64)
}

// Bind builds a BatchSolver over the plan. The solver borrows the plan:
// the caller must keep the plan open (not Close it) for as long as the
// solver is in use.
func (p *Plan) Bind() *BatchSolver {
	s := &BatchSolver{p: p, invDiag: invDiagonal(p.L)}
	switch {
	case p.fused != nil && p.Lower:
		s.body = s.fusedForwardBody()
	case p.fused != nil:
		s.body = s.fusedBackwardBody()
	case p.Lower:
		s.body = s.forwardBody()
	default:
		s.body = s.backwardBody()
	}
	return s
}

// checkBatch validates a batch's shape against the plan.
func (s *BatchSolver) checkBatch(xs, bs [][]float64) error {
	if len(xs) != len(bs) {
		return fmt.Errorf("trisolve: batch has %d solutions but %d right-hand sides", len(xs), len(bs))
	}
	n := s.p.L.N
	for j := range xs {
		if len(xs[j]) != n || len(bs[j]) != n {
			return fmt.Errorf("trisolve: batch vector %d has length %d/%d, want %d", j, len(xs[j]), len(bs[j]), n)
		}
	}
	return nil
}

// Solve runs one batched pass writing solution j to xs[j], exactly as
// Plan.SolveBatchCtx would, with zero allocations on the success path.
func (s *BatchSolver) Solve(ctx context.Context, xs, bs [][]float64) (executor.Metrics, error) {
	if err := s.checkBatch(xs, bs); err != nil {
		return executor.Metrics{}, err
	}
	if len(xs) == 0 {
		return executor.Metrics{}, nil
	}
	s.mu.Lock()
	s.xs, s.bs = xs, bs
	m, err := s.p.strat.Execute(ctx, s.p.Sched, s.p.Deps, s.body)
	s.xs, s.bs = nil, nil
	s.mu.Unlock()
	return s.p.rowMetrics(m, err), err
}

// SolveTimed is Solve with per-wavefront-level timing: each scheduled
// index's runtime (a row for row-wise plans, a fused supernode for
// supernodal ones) is charged to its level on clock. The arithmetic is
// byte-identical to Solve — the timed body wraps the same bound body.
// The first timed solve on a solver builds the level map and wrapper
// (two allocations, once); every later call allocates nothing, so
// level sampling at any rate keeps the serving warm path at 0
// allocs/op.
func (s *BatchSolver) SolveTimed(ctx context.Context, xs, bs [][]float64, clock LevelClock) (executor.Metrics, error) {
	if clock == nil {
		return s.Solve(ctx, xs, bs)
	}
	if err := s.checkBatch(xs, bs); err != nil {
		return executor.Metrics{}, err
	}
	if len(xs) == 0 {
		return executor.Metrics{}, nil
	}
	s.mu.Lock()
	if s.timed == nil {
		// p.Deps is in scheduled-index space for every plan shape (unit
		// deps when fused, iteration deps otherwise), so its wavefront
		// levels index exactly what the executor body receives.
		lv, err := wavefront.Compute(s.p.Deps)
		if err != nil {
			s.mu.Unlock()
			return executor.Metrics{}, err
		}
		s.levelOf = lv
		inner := s.body
		s.timed = func(i int32) {
			t0 := time.Now()
			inner(i)
			s.clock.Add(s.levelOf[i], time.Since(t0).Nanoseconds())
		}
	}
	s.clock = clock
	s.xs, s.bs = xs, bs
	m, err := s.p.strat.Execute(ctx, s.p.Sched, s.p.Deps, s.timed)
	s.xs, s.bs = nil, nil
	s.clock = nil
	s.mu.Unlock()
	return s.p.rowMetrics(m, err), err
}

// forwardBody mirrors ForwardBatchBody with the reciprocal diagonal
// precomputed and the vectors read from the solver.
func (s *BatchSolver) forwardBody() executor.Body {
	l := s.p.L
	inv := s.invDiag
	return func(i int32) {
		cols, vals := l.Row(int(i))
		vals = vals[:len(cols)] // hoist the bounds check out of the loops
		for j := range s.xs {
			x, b := s.xs[j], s.bs[j]
			acc := b[i]
			for k, c := range cols {
				if c != i {
					acc -= vals[k] * x[c]
				}
			}
			x[i] = acc * inv[i]
		}
	}
}

// backwardBody mirrors BackwardBatchBody.
func (s *BatchSolver) backwardBody() executor.Body {
	u := s.p.L
	inv := s.invDiag
	n := u.N
	return func(k int32) {
		i := n - 1 - int(k)
		cols, vals := u.Row(i)
		vals = vals[:len(cols)] // hoist the bounds check out of the loops
		for j := range s.xs {
			x, b := s.xs[j], s.bs[j]
			acc := b[i]
			for q, c := range cols {
				if int(c) != i {
					acc -= vals[q] * x[c]
				}
			}
			x[i] = acc * inv[i]
		}
	}
}

// fusedForwardBody mirrors fusedExec.forwardBatchBody.
func (s *BatchSolver) fusedForwardBody() executor.Body {
	l := s.p.L
	fx := s.p.fused
	inv := s.invDiag
	rp, ci, vals := l.RowPtr, l.ColIdx, l.Val
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for r := np[u]; r < np[u+1]; r++ {
			d := dp[r]
			cols := ci[rp[r]:d]
			vs := vals[rp[r]:d]
			vs = vs[:len(cols)]
			var cols2 []int32
			var vs2 []float64
			if start := d + 1; start < rp[r+1] {
				cols2 = ci[start:rp[r+1]]
				vs2 = vals[start:rp[r+1]]
				vs2 = vs2[:len(cols2)]
			}
			for j := range s.xs {
				x, b := s.xs[j], s.bs[j]
				acc := b[r]
				for k, c := range cols {
					acc -= vs[k] * x[c]
				}
				for k, c := range cols2 {
					acc -= vs2[k] * x[c]
				}
				x[r] = acc * inv[r]
			}
		}
	}
}

// fusedBackwardBody mirrors fusedExec.backwardBatchBody.
func (s *BatchSolver) fusedBackwardBody() executor.Body {
	uM := s.p.L
	fx := s.p.fused
	inv := s.invDiag
	n := uM.N
	rp, ci, vals := uM.RowPtr, uM.ColIdx, uM.Val
	np, dp := fx.part.RowPtr, fx.diagPos
	return func(u int32) {
		for k := np[u]; k < np[u+1]; k++ {
			i := int32(n-1) - k
			d := dp[i]
			cols := ci[rp[i]:d]
			vs := vals[rp[i]:d]
			vs = vs[:len(cols)]
			var cols2 []int32
			var vs2 []float64
			if start := d + 1; start < rp[i+1] {
				cols2 = ci[start:rp[i+1]]
				vs2 = vals[start:rp[i+1]]
				vs2 = vs2[:len(cols2)]
			}
			for j := range s.xs {
				x, b := s.xs[j], s.bs[j]
				acc := b[i]
				for q, c := range cols {
					acc -= vs[q] * x[c]
				}
				for q, c := range cols2 {
					acc -= vs2[q] * x[c]
				}
				x[i] = acc * inv[i]
			}
		}
	}
}
