package trisolve

import (
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
)

func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// TestSolveBatchK1BitIdentical is the acceptance test: a batch of one
// right-hand side must produce bit-for-bit the result of Solve.
func TestSolveBatchK1BitIdentical(t *testing.T) {
	for _, lower := range []bool{true, false} {
		var tri = stencil.Laplace2D(40, 40).LowerWithDiag()
		if !lower {
			tri = tri.Transpose()
		}
		for _, kind := range []executor.Kind{executor.Sequential, executor.SelfExecuting, executor.Pooled} {
			plan, err := NewPlan(tri, lower, WithProcs(4), WithKind(kind))
			if err != nil {
				t.Fatal(err)
			}
			n := tri.N
			b := randRHS(n, 11)
			x1 := make([]float64, n)
			plan.Solve(x1, b)
			x2 := make([]float64, n)
			if _, err := plan.SolveBatch([][]float64{x2}, [][]float64{b}); err != nil {
				t.Fatal(err)
			}
			for i := range x1 {
				if x1[i] != x2[i] {
					t.Fatalf("lower=%v kind=%v: SolveBatch(k=1) differs from Solve at %d: %x vs %x",
						lower, kind, i, x1[i], x2[i])
				}
			}
			plan.Close()
		}
	}
}

// TestSolveBatchMatchesSequentialSolves checks a k=5 batch against five
// independent sequential reference solves, forward and backward.
func TestSolveBatchMatchesSequentialSolves(t *testing.T) {
	const k = 5
	for _, lower := range []bool{true, false} {
		tri := stencil.Laplace2D(30, 30).LowerWithDiag()
		if !lower {
			tri = tri.Transpose()
		}
		n := tri.N
		plan, err := NewPlan(tri, lower, WithProcs(4), WithKind(executor.Pooled))
		if err != nil {
			t.Fatal(err)
		}
		xs := make([][]float64, k)
		bs := make([][]float64, k)
		want := make([][]float64, k)
		for j := 0; j < k; j++ {
			bs[j] = randRHS(n, int64(100+j))
			xs[j] = make([]float64, n)
			want[j] = make([]float64, n)
			if lower {
				err = ForwardSeq(tri, want[j], bs[j])
			} else {
				err = BackwardSeq(tri, want[j], bs[j])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		m, err := plan.SolveBatch(xs, bs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Executed != int64(n) {
			t.Fatalf("lower=%v: batch executed %d indices, want %d (one pass for all RHS)", lower, m.Executed, n)
		}
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				if xs[j][i] != want[j][i] {
					t.Fatalf("lower=%v rhs %d index %d: got %v want %v", lower, j, i, xs[j][i], want[j][i])
				}
			}
		}
		plan.Close()
	}
}

func TestSolveBatchShapeErrors(t *testing.T) {
	tri := stencil.Laplace2D(10, 10).LowerWithDiag()
	plan, err := NewPlan(tri, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	n := tri.N
	good := make([]float64, n)
	if _, err := plan.SolveBatch([][]float64{good}, nil); err == nil {
		t.Fatal("mismatched batch lengths accepted")
	}
	if _, err := plan.SolveBatch([][]float64{make([]float64, n-1)}, [][]float64{good}); err == nil {
		t.Fatal("short solution vector accepted")
	}
	if m, err := plan.SolveBatch(nil, nil); err != nil || m.Executed != 0 {
		t.Fatalf("empty batch: m=%+v err=%v, want no-op", m, err)
	}
}

// scaleValues returns a structural clone of tri with every value
// multiplied by f — same fingerprint, different numbers.
func scaleValues(tri *sparse.CSR, f float64) *sparse.CSR {
	c := tri.Clone()
	for k := range c.Val {
		c.Val[k] *= f
	}
	return c
}

// TestSolveGroupBitIdenticalPerMember checks the fused group pass against
// per-member SolveBatch calls: members share the plan's sparsity pattern
// but carry different values, and every solution must match bit for bit.
func TestSolveGroupBitIdenticalPerMember(t *testing.T) {
	for _, lower := range []bool{true, false} {
		tri := stencil.Laplace2D(25, 25).LowerWithDiag()
		if !lower {
			tri = tri.Transpose()
		}
		n := tri.N
		for _, kind := range []executor.Kind{executor.Sequential, executor.SelfExecuting, executor.Pooled} {
			plan, err := NewPlan(tri, lower, WithProcs(4), WithKind(kind))
			if err != nil {
				t.Fatal(err)
			}
			const members, k = 3, 2
			group := make([]BatchProblem, members)
			want := make([][][]float64, members)
			for g := 0; g < members; g++ {
				l := scaleValues(tri, 1+0.25*float64(g))
				xs := make([][]float64, k)
				bs := make([][]float64, k)
				want[g] = make([][]float64, k)
				for j := 0; j < k; j++ {
					bs[j] = randRHS(n, int64(10*g+j))
					xs[j] = make([]float64, n)
					want[g][j] = make([]float64, n)
				}
				group[g] = BatchProblem{L: l, Xs: xs, Bs: bs}
				// Reference: an unfused batched solve on a plan bound to
				// this member's values.
				ref, err := NewPlan(l, lower, WithProcs(4), WithKind(kind))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ref.SolveBatch(want[g], bs); err != nil {
					t.Fatal(err)
				}
				ref.Close()
			}
			m, err := plan.SolveGroup(group)
			if err != nil {
				t.Fatal(err)
			}
			if m.Executed != int64(n) {
				t.Fatalf("lower=%v kind=%v: group executed %d indices, want %d (one shared pass)",
					lower, kind, m.Executed, n)
			}
			for g := 0; g < members; g++ {
				for j := 0; j < k; j++ {
					for i := 0; i < n; i++ {
						if group[g].Xs[j][i] != want[g][j][i] {
							t.Fatalf("lower=%v kind=%v member %d rhs %d index %d: got %x want %x",
								lower, kind, g, j, i, group[g].Xs[j][i], want[g][j][i])
						}
					}
				}
			}
			plan.Close()
		}
	}
}

func TestSolveGroupRejectsForeignStructure(t *testing.T) {
	tri := stencil.Laplace2D(10, 10).LowerWithDiag()
	other := stencil.Laplace2D(11, 11).LowerWithDiag()
	plan, err := NewPlan(tri, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	n := other.N
	g := []BatchProblem{{L: other, Xs: [][]float64{make([]float64, n)}, Bs: [][]float64{make([]float64, n)}}}
	if _, err := plan.SolveGroup(g); err == nil {
		t.Fatal("group member with a different sparsity structure accepted")
	}
	bad := []BatchProblem{{L: tri, Xs: [][]float64{make([]float64, tri.N)}, Bs: nil}}
	if _, err := plan.SolveGroup(bad); err == nil {
		t.Fatal("mismatched Xs/Bs lengths accepted")
	}
	if m, err := plan.SolveGroup(nil); err != nil || m.Executed != 0 {
		t.Fatalf("empty group: m=%+v err=%v, want no-op", m, err)
	}
}
