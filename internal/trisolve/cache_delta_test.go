package trisolve

import (
	"math/rand"
	"testing"

	"doconsider/internal/sparse"
	"doconsider/internal/synthetic"
	"doconsider/internal/wavefront"
)

// driftTestFactor builds a random lower factor with full diagonal.
func driftTestFactor(rng *rand.Rand, n, deg int) *sparse.CSR {
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		for j := 0; j < rng.Intn(deg+1) && i > 0; j++ {
			ts = append(ts, sparse.Triplet{Row: i, Col: rng.Intn(i), Val: rng.NormFloat64()})
		}
	}
	return sparse.MustAssemble(n, n, ts)
}

// TestPlanCacheNearMissRepair drives the full near-miss path: a resident
// plan, a drifted factor, and the expectation that the drifted lookup is
// served by delta repair — with levels identical to a fresh inspection
// and solves bit-identical to an uncached plan.
func TestPlanCacheNearMissRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := driftTestFactor(rng, 400, 3)
	pc := NewPlanCache(8)
	defer pc.Close()

	p1, err := pc.Get(base, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if st := pc.DeltaStats(); st.Repairs != 0 {
		t.Fatalf("cold build counted as repair: %+v", st)
	}

	// Drift and look up without a hint: the similarity scan must find
	// the resident ancestor.
	edits := synthetic.DriftLower(rng, base, nil, 8, 0.3)
	if len(edits) == 0 {
		t.Fatal("drift generator produced no edits")
	}
	edited, err := base.ApplyRowEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(edited, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if st := pc.DeltaStats(); st.Repairs != 1 {
		t.Fatalf("expected 1 repair, got %+v", st)
	}

	// Repaired levels are identical to a fresh inspection.
	refDeps := wavefront.FromLower(edited)
	refWf, err := wavefront.Compute(refDeps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refWf {
		if p2.Wf[i] != refWf[i] {
			t.Fatalf("wf[%d] = %d, want %d", i, p2.Wf[i], refWf[i])
		}
	}

	// Solves (values bound at Get, as usual) are bit-identical to an
	// uncached plan over the same factor.
	ref, err := NewPlan(edited, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	n := edited.N
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	got := make([]float64, n)
	ref.Solve(want, b)
	p2.Solve(got, b)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("x[%d] = %v, want %v (repair not bit-identical)", i, got[i], want[i])
		}
	}
	// Batch path too.
	bs := [][]float64{b, b}
	xsWant := [][]float64{make([]float64, n), make([]float64, n)}
	xsGot := [][]float64{make([]float64, n), make([]float64, n)}
	if _, err := ref.SolveBatch(xsWant, bs); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.SolveBatch(xsGot, bs); err != nil {
		t.Fatal(err)
	}
	for j := range xsWant {
		for i := range xsWant[j] {
			if xsWant[j][i] != xsGot[j][i] {
				t.Fatalf("batch x[%d][%d] differs", j, i)
			}
		}
	}

	// Hinted drift: the caller names the base fingerprint and edited
	// rows, as the server's base_fp+edits form does.
	edits2 := synthetic.DriftLower(rng, edited, nil, 6, 0.3)
	edited2, err := edited.ApplyRowEdits(edits2)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int32, 0, len(edits2))
	for _, e := range edits2 {
		rows = append(rows, e.Row)
	}
	p3, err := pc.Get(edited2, true, WithProcs(2),
		WithDriftHint(edited.StructureFingerprint(), rows))
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if st := pc.DeltaStats(); st.Repairs != 2 {
		t.Fatalf("expected 2 repairs after hinted lookup, got %+v", st)
	}
	refDeps2 := wavefront.FromLower(edited2)
	refWf2, err := wavefront.Compute(refDeps2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refWf2 {
		if p3.Wf[i] != refWf2[i] {
			t.Fatalf("hinted wf[%d] = %d, want %d", i, p3.Wf[i], refWf2[i])
		}
	}

	// The decision log marks repaired skeletons.
	repaired := 0
	for _, rec := range pc.Decisions() {
		if rec.Repaired {
			repaired++
		}
	}
	if repaired != 2 {
		t.Fatalf("decision log has %d repaired entries, want 2", repaired)
	}

	// A lookup under a different plan shape must not repair across
	// shapes.
	p4, err := pc.Get(edited2, true, WithProcs(3))
	if err != nil {
		t.Fatal(err)
	}
	defer p4.Close()
	if st := pc.DeltaStats(); st.Repairs != 2 {
		t.Fatalf("cross-shape lookup repaired: %+v", st)
	}
}

// TestSimIndexSurvivesDeferredEviction pins the eviction/rebuild race:
// a skeleton evicted while leased runs its Close (and similarity-index
// cleanup) only after the last lease drops — by which time the same
// structure may have been rebuilt and re-registered. The stale cleanup
// must not remove the replacement's index entry, or every later drift
// of that structure silently loses its repair ancestor.
func TestSimIndexSurvivesDeferredEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := driftTestFactor(rng, 300, 3)
	other := driftTestFactor(rng, 200, 3)
	pc := NewPlanCache(1)
	defer pc.Close()

	p1, err := pc.Get(base, true, WithProcs(2)) // skeleton A, leased
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(other, true, WithProcs(2)) // capacity 1: evicts A while leased
	if err != nil {
		t.Fatal(err)
	}
	p2.Close()
	p3, err := pc.Get(base, true, WithProcs(2)) // rebuilds A' and re-registers it
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	p1.Close() // A's deferred Close runs its stale cleanup now

	edits := synthetic.DriftLower(rng, base, nil, 6, 0.3)
	edited, err := base.ApplyRowEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := pc.Get(edited, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p4.Close()
	if st := pc.DeltaStats(); st.Repairs != 1 {
		t.Fatalf("drift after deferred eviction was not repaired: %+v (stale cleanup removed the rebuilt ancestor?)", st)
	}
}

// TestPlanCacheRepairFallback pins the cone-bound fallback: an edit that
// releveles far more rows than the planner's break-even cone must be
// answered by a full rebuild (correct plan, Fallbacks counted).
func TestPlanCacheRepairFallback(t *testing.T) {
	// A chain 0 <- 1 <- ... with row 1 initially independent; inserting
	// 1 -> 0 raises every downstream level.
	n := 600
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2})
		if i >= 2 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
		}
	}
	base := sparse.MustAssemble(n, n, ts)
	pc := NewPlanCache(8)
	defer pc.Close()
	p1, err := pc.Get(base, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()

	edited, err := base.ApplyRowEdits([]sparse.RowEdit{
		{Row: 1, Insert: []sparse.EditEntry{{Col: 0, Val: -1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pc.Get(edited, true, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	st := pc.DeltaStats()
	if st.Repairs != 0 || st.Fallbacks != 1 {
		t.Fatalf("expected a fallback, got %+v", st)
	}
	// The rebuilt plan is still exact.
	refWf, err := wavefront.Compute(wavefront.FromLower(edited))
	if err != nil {
		t.Fatal(err)
	}
	for i := range refWf {
		if p2.Wf[i] != refWf[i] {
			t.Fatalf("wf[%d] = %d, want %d", i, p2.Wf[i], refWf[i])
		}
	}
}
