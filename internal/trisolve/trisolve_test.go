package trisolve

import (
	"math"
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/vec"
)

// randomLower builds a random nonsingular lower triangular matrix.
func randomLower(rng *rand.Rand, n int, extraPerRow int) *sparse.CSR {
	ts := []sparse.Triplet{}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		for k := 0; k < extraPerRow && i > 0; k++ {
			ts = append(ts, sparse.Triplet{Row: i, Col: rng.Intn(i), Val: rng.NormFloat64() * 0.3})
		}
	}
	return sparse.MustAssemble(n, n, ts)
}

func residual(a *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, a.N)
	if err := a.MatVec(r, x); err != nil {
		panic(err)
	}
	m := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := randomLower(rng, 100, 3)
	b := make([]float64, 100)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 100)
	if err := ForwardSeq(l, x, b); err != nil {
		t.Fatal(err)
	}
	if r := residual(l, x, b); r > 1e-10 {
		t.Errorf("residual %v", r)
	}
}

func TestBackwardSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := randomLower(rng, 80, 2).Transpose()
	b := make([]float64, 80)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 80)
	if err := BackwardSeq(u, x, b); err != nil {
		t.Fatal(err)
	}
	if r := residual(u, x, b); r > 1e-10 {
		t.Errorf("residual %v", r)
	}
}

func TestForwardSeqErrors(t *testing.T) {
	// Upper entry in forward solve.
	bad := sparse.MustAssemble(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 1},
	})
	x := make([]float64, 2)
	if err := ForwardSeq(bad, x, []float64{1, 1}); err == nil {
		t.Error("ForwardSeq accepted upper entry")
	}
	// Zero diagonal.
	zd := sparse.MustAssemble(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1},
	})
	if err := ForwardSeq(zd, x, []float64{1, 1}); err == nil {
		t.Error("ForwardSeq accepted missing diagonal")
	}
	if err := ForwardSeq(zd, x, []float64{1}); err != sparse.ErrShape {
		t.Error("ForwardSeq missed shape error")
	}
	if err := BackwardSeq(zd, x, []float64{1, 1}); err == nil {
		t.Error("BackwardSeq accepted lower entry")
	}
}

func TestPlanSolversMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := randomLower(rng, 300, 4)
	b := make([]float64, 300)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, 300)
	if err := ForwardSeq(l, want, b); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []executor.Kind{executor.Sequential, executor.PreScheduled, executor.SelfExecuting, executor.DoAcross} {
		for _, sched := range []SchedulerKind{GlobalSched, LocalSched} {
			for _, p := range []int{1, 3, 8} {
				plan, err := NewPlan(l, true,
					WithProcs(p), WithKind(kind), WithScheduler(sched))
				if err != nil {
					t.Fatal(err)
				}
				x := make([]float64, 300)
				plan.Solve(x, b)
				if d := vec.MaxAbsDiff(x, want); d > 1e-12 {
					t.Errorf("kind=%v sched=%v p=%d: max diff %v", kind, sched, p, d)
				}
			}
		}
	}
}

func TestBackwardPlanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := randomLower(rng, 250, 3).Transpose()
	b := make([]float64, 250)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, 250)
	if err := BackwardSeq(u, want, b); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting} {
		plan, err := NewPlan(u, false, WithProcs(4), WithKind(kind))
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 250)
		plan.Solve(x, b)
		if d := vec.MaxAbsDiff(x, want); d > 1e-12 {
			t.Errorf("kind=%v: max diff %v", kind, d)
		}
	}
}

func TestPlanPhasesMeshModel(t *testing.T) {
	// The zero-fill lower factor of a 5-point m×n mesh has m+n-1 wavefronts.
	a := stencil.Laplace2D(9, 6)
	l := a.LowerWithDiag()
	plan, err := NewPlan(l, true, WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Phases(); got != 9+6-1 {
		t.Errorf("phases = %d, want 14", got)
	}
}

func TestNaturalSchedulerDoAcross(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randomLower(rng, 150, 2)
	b := make([]float64, 150)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := make([]float64, 150)
	if err := ForwardSeq(l, want, b); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(l, true,
		WithProcs(4), WithKind(executor.SelfExecuting), WithScheduler(NaturalSched),
		WithPartition(schedule.Striped))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 150)
	plan.Solve(x, b)
	if d := vec.MaxAbsDiff(x, want); d > 1e-12 {
		t.Errorf("natural-order self-executing diff %v", d)
	}
}

func TestPlanRepeatedSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := randomLower(rng, 100, 2)
	plan, err := NewPlan(l, true, WithProcs(3), WithKind(executor.SelfExecuting))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b := make([]float64, 100)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, 100)
		if err := ForwardSeq(l, want, b); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 100)
		plan.Solve(x, b)
		if d := vec.MaxAbsDiff(x, want); d > 1e-12 {
			t.Fatalf("trial %d: diff %v", trial, d)
		}
	}
}

// TestAdaptiveReorderRCM covers the planner's reordering path, which
// the paper suite never triggers (its meshes are already local): a
// large factor with scattered long-range dependences must come back
// with an RCM-ranked global schedule — structurally valid, and solving
// bit-identically to both the sequential reference and an unranked
// pinned plan, since only the within-wavefront order changes.
func TestAdaptiveReorderRCM(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	l := randomTriangular(rng, 4500, 1, true)
	plan, err := NewPlan(l, true, WithProcs(4), WithModel(planner.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	if plan.Decision == nil {
		t.Fatal("adaptive plan carries no decision")
	}
	if plan.Decision.Reorder != planner.ReorderRCM {
		t.Fatalf("decision %v: scattered structure did not trigger RCM reordering", plan.Decision)
	}
	if err := plan.Sched.Validate(); err != nil {
		t.Fatalf("ranked schedule invalid: %v", err)
	}

	b := randomRHS(rng, l.N, 1)[0]
	x := make([]float64, l.N)
	plan.Solve(x, b)
	assertBitIdentical(t, x, refSolve(t, l, true, b), "RCM-reordered solve")

	pinned, err := NewPlan(l, true, WithProcs(4), WithKind(plan.Kind))
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	xp := make([]float64, l.N)
	pinned.Solve(xp, b)
	assertBitIdentical(t, x, xp, "ranked vs unranked schedule")
}
