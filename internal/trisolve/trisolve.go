// Package trisolve implements sparse triangular solves — the paper's
// central workload (Figure 8). The outer loop of row substitutions is the
// loop being run-time parallelized; the package provides the sequential
// reference and loop bodies for each executor.
package trisolve

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/reorder"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

// ForwardSeq solves L*x = b sequentially where L is lower triangular with
// nonzero diagonal entries stored in the matrix. x and b may alias.
func ForwardSeq(l *sparse.CSR, x, b []float64) error {
	if l.N != l.M || len(x) != l.N || len(b) != l.N {
		return sparse.ErrShape
	}
	for i := 0; i < l.N; i++ {
		cols, vals := l.Row(i)
		s := b[i]
		diag := 0.0
		for k, c := range cols {
			switch {
			case int(c) < i:
				s -= vals[k] * x[c]
			case int(c) == i:
				diag = vals[k]
			default:
				return fmt.Errorf("trisolve: row %d has upper entry %d in forward solve", i, c)
			}
		}
		if diag == 0 {
			return fmt.Errorf("trisolve: zero diagonal at row %d", i)
		}
		x[i] = s / diag
	}
	return nil
}

// BackwardSeq solves U*x = b sequentially where U is upper triangular with
// nonzero diagonal entries. x and b may alias.
func BackwardSeq(u *sparse.CSR, x, b []float64) error {
	if u.N != u.M || len(x) != u.N || len(b) != u.N {
		return sparse.ErrShape
	}
	for i := u.N - 1; i >= 0; i-- {
		cols, vals := u.Row(i)
		s := b[i]
		diag := 0.0
		for k, c := range cols {
			switch {
			case int(c) > i:
				s -= vals[k] * x[c]
			case int(c) == i:
				diag = vals[k]
			default:
				return fmt.Errorf("trisolve: row %d has lower entry %d in backward solve", i, c)
			}
		}
		if diag == 0 {
			return fmt.Errorf("trisolve: zero diagonal at row %d", i)
		}
		x[i] = s / diag
	}
	return nil
}

// ForwardBody returns the executor loop body for a forward solve of
// L*x = b: body(i) performs row substitution i. The body is safe for
// concurrent execution of independent rows because row i writes only x[i].
// Diagonal entries are pre-reciprocated for speed.
func ForwardBody(l *sparse.CSR, x, b []float64) executor.Body {
	invDiag := invDiagonal(l)
	return func(i int32) {
		cols, vals := l.Row(int(i))
		vals = vals[:len(cols)] // hoist the bounds check out of the loop
		s := b[i]
		for k, c := range cols {
			if c != i {
				s -= vals[k] * x[c]
			}
		}
		x[i] = s * invDiag[i]
	}
}

// BackwardBody returns the executor loop body for a backward solve of
// U*x = b using the reflected iteration numbering of wavefront.FromUpper:
// iteration k performs row substitution n-1-k.
func BackwardBody(u *sparse.CSR, x, b []float64) executor.Body {
	invDiag := invDiagonal(u)
	n := u.N
	return func(k int32) {
		i := n - 1 - int(k)
		cols, vals := u.Row(i)
		vals = vals[:len(cols)] // hoist the bounds check out of the loop
		s := b[i]
		for q, c := range cols {
			if int(c) != i {
				s -= vals[q] * x[c]
			}
		}
		x[i] = s * invDiag[i]
	}
}

func invDiagonal(a *sparse.CSR) []float64 {
	inv := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		d := a.At(i, i)
		if d != 0 {
			inv[i] = 1 / d
		}
	}
	return inv
}

// Plan bundles everything needed to repeatedly solve with one triangular
// factor: the dependence structure, wavefront numbers, a schedule and the
// execution strategy instance. Building a Plan is the inspector step;
// Solve is the executor step. With the Pooled kind the strategy keeps a
// persistent worker pool across Solve calls; call Close when done with
// such a plan to release the workers.
//
// For a supernodal plan (Fusion non-nil) Deps and Sched describe the
// compressed unit-level structure the executor actually runs — each
// scheduled index is a supernode covering one or more rows — while Wf
// keeps the row-level wavefront numbers the inspector computed.
type Plan struct {
	L     *sparse.CSR
	Lower bool // forward (true) or backward (false) solve
	Deps  *wavefront.Deps
	Wf    []int32
	Sched *schedule.Schedule
	Kind  executor.Kind
	// Decision records the planner's analysis when the kind was chosen
	// adaptively (no WithKind); nil for pinned plans.
	Decision *planner.Decision
	strat    executor.Strategy
	fused    *fusedExec
	// leased marks plans obtained from a PlanCache: the schedule and
	// strategy are shared, so Close releases the lease (once) instead of
	// closing the strategy.
	leased  bool
	release func() error
}

// Fusion returns the supernode statistics of a fused plan, or nil for a
// row-wise plan.
func (p *Plan) Fusion() *supernode.Stats {
	if p.fused == nil {
		return nil
	}
	st := p.fused.stats
	return &st
}

// Option configures plan construction.
type Option func(*planConfig)

type planConfig struct {
	nproc     int
	kind      executor.Kind
	kindSet   bool // WithKind pins the kind; otherwise the planner chooses
	model     *planner.CostModel
	scheduler SchedulerKind
	part      schedule.Partition
	fuse      FuseMode
	// Drift hint (PlanCache only): the structure is hintRows-many edited
	// rows away from the resident plan fingerprinted hintFp. Advisory —
	// it never enters the cache key — but it lets a near-miss lookup skip
	// the ancestor diff scan.
	hintFp   uint64
	hintRows []int32
	// buildStats, when non-nil, receives the cost breakdown of the plan
	// build this lookup triggered (PlanCache only; advisory, never part
	// of the cache key).
	buildStats *BuildStats
}

// adaptive reports whether the planner should choose the executor.
func (c *planConfig) adaptive() bool { return !c.kindSet }

// fuseMode resolves the effective fusion mode: the DOCONSIDER_FUSE
// environment override trumps the WithFusion option, mirroring how
// DOCONSIDER_STRATEGY trumps adaptive selection.
func (c *planConfig) fuseMode() FuseMode {
	if m, ok := envFuseMode(); ok {
		return m
	}
	return c.fuse
}

// FuseMode controls supernodal row fusion (internal/supernode).
type FuseMode int

const (
	// FuseAuto (the default) detects supernodes on adaptively planned
	// global-schedule plans and lets the planner's cost model decide
	// whether the fused executor wins.
	FuseAuto FuseMode = iota
	// FuseOff disables detection entirely: plans are always row-wise.
	FuseOff
	// FuseForce executes fused whenever the partition is well-formed,
	// bypassing the cost model — for benchmarks and differential tests.
	FuseForce
)

var (
	fuseEnvOnce sync.Once
	fuseEnv     FuseMode
	fuseEnvSet  bool
)

// envFuseMode resolves the DOCONSIDER_FUSE override once per process.
// Unknown values are ignored rather than failing every plan.
func envFuseMode() (FuseMode, bool) {
	fuseEnvOnce.Do(func() {
		switch os.Getenv("DOCONSIDER_FUSE") {
		case "off":
			fuseEnv, fuseEnvSet = FuseOff, true
		case "force":
			fuseEnv, fuseEnvSet = FuseForce, true
		}
	})
	return fuseEnv, fuseEnvSet
}

// SchedulerKind selects global or local index-set scheduling.
type SchedulerKind int

const (
	// GlobalSched sorts the whole index set by wavefront and deals wrapped.
	GlobalSched SchedulerKind = iota
	// LocalSched keeps the initial partition and sorts locally.
	LocalSched
	// NaturalSched keeps the original order (doacross baseline).
	NaturalSched
)

// WithProcs sets the processor count (default 1).
func WithProcs(p int) Option { return func(c *planConfig) { c.nproc = p } }

// WithKind pins the executor kind, bypassing adaptive selection.
func WithKind(k executor.Kind) Option {
	return func(c *planConfig) { c.kind = k; c.kindSet = true }
}

// WithModel supplies the cost model adaptive selection consults; nil
// (the default) uses the once-per-machine calibrated host model. Pass
// planner.Default() for machine-independent, reproducible decisions.
func WithModel(m *planner.CostModel) Option { return func(c *planConfig) { c.model = m } }

// WithScheduler sets the scheduling method (default GlobalSched).
func WithScheduler(s SchedulerKind) Option { return func(c *planConfig) { c.scheduler = s } }

// WithPartition sets the local-scheduling partition (default Striped).
func WithPartition(p schedule.Partition) Option { return func(c *planConfig) { c.part = p } }

// WithFusion sets the supernodal fusion mode (default FuseAuto). The
// DOCONSIDER_FUSE environment variable ("off" or "force") overrides it
// process-wide.
func WithFusion(m FuseMode) Option { return func(c *planConfig) { c.fuse = m } }

// WithDriftHint tells a PlanCache lookup that the factor was produced by
// editing the nonzero pattern of exactly the given rows of the resident
// structure fingerprinted baseFp (sparse.CSR.StructureFingerprint). The
// hint is advisory and trusted: rows must cover every row whose pattern
// differs from the base — the server's base_fp+edits request form
// guarantees that by construction, having built the factor from those
// very edits. Plain NewPlan ignores the hint.
func WithDriftHint(baseFp uint64, rows []int32) Option {
	return func(c *planConfig) { c.hintFp, c.hintRows = baseFp, rows }
}

// BuildStats breaks down where a PlanCache lookup's build time went,
// for request-scoped latency attribution in the serving tier. A cache
// hit leaves it zero; a miss fills RepairNs with the delta-repair
// attempt's cost (successful or fallen back) and InspectNs with the
// full inspector run when one happened.
type BuildStats struct {
	RepairNs  int64 // time inside the near-miss repair attempt
	InspectNs int64 // time inside full inspection (0 when repaired)
	Repaired  bool  // the skeleton was obtained by delta repair
}

// WithBuildStats directs a PlanCache lookup to record its build-cost
// breakdown into bs. Advisory: it never enters the cache key, and only
// the caller whose lookup actually runs the singleflight build sees
// nonzero numbers (peers coalesced onto that build spend their time
// waiting, which their own request clocks capture). Plain NewPlan
// ignores it.
func WithBuildStats(bs *BuildStats) Option {
	return func(c *planConfig) { c.buildStats = bs }
}

// buildPlanConfig resolves options against the defaults shared by NewPlan
// and the plan cache's key computation.
func buildPlanConfig(opts []Option) planConfig {
	cfg := planConfig{nproc: 1, kind: executor.SelfExecuting, scheduler: GlobalSched, part: schedule.Striped}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.nproc < 1 {
		cfg.nproc = 1
	}
	return cfg
}

// inspection is the inspector's output: the row-level dependence
// structure and wavefronts, the schedule the executor will actually run
// (unit-level when fused), the chosen kind and decision, and the fused
// executor state for supernodal plans (nil for row-wise plans).
type inspection struct {
	deps  *wavefront.Deps
	wf    []int32
	sched *schedule.Schedule
	kind  executor.Kind
	dec   *planner.Decision
	fused *fusedExec
}

// inspect runs the inspector half of plan construction: dependence
// extraction, wavefront computation, supernode detection, adaptive
// planning (when no kind is pinned) and schedule construction. The
// output depends only on the sparsity structure of t, never on its
// values — which is what lets a PlanCache share it across matrices. The
// returned kind is cfg.kind for pinned plans and the planner's choice
// otherwise.
func inspect(t *sparse.CSR, lower bool, cfg planConfig) (*inspection, error) {
	var deps *wavefront.Deps
	if lower {
		deps = wavefront.FromLower(t)
	} else {
		deps = wavefront.FromUpper(t)
	}
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return nil, err
	}

	// Supernode detection. Only global-schedule plans can run the
	// compressed unit schedule, and under FuseAuto only adaptive plans
	// detect (the cost model arbitrates; a pinned kind asked for exactly
	// the row-wise executor it named). A partition with nothing fused is
	// discarded — unless fusion is forced, where even an all-singleton
	// partition exercises the fused kernels.
	mode := cfg.fuseMode()
	var part *supernode.Partition
	var unitDeps *wavefront.Deps
	var unitWf []int32
	if cfg.scheduler == GlobalSched && (mode == FuseForce || (mode == FuseAuto && cfg.adaptive())) {
		p := supernode.Detect(deps, supernode.Config{})
		if st := p.Stats(); st.FusedRows > 0 || mode == FuseForce {
			unitDeps = p.Compress(deps)
			if unitWf, err = wavefront.Compute(unitDeps); err != nil {
				return nil, err
			}
			part = p
		}
	}

	kind := cfg.kind
	useFused := mode == FuseForce && part != nil
	var dec *planner.Decision
	var rank []int32
	if cfg.adaptive() {
		f := planner.Analyze(deps, wf, cfg.nproc)
		if part != nil {
			f.Fusion = fusionFeatures(part, unitDeps, unitWf, cfg.nproc)
		}
		d := planner.Select(f, cfg.model)
		if useFused && !d.Fused {
			// Forced fusion overrides the cost model's verdict but keeps
			// its executor kind; fused plans schedule units, so the
			// within-level row reordering has nothing to rank.
			d.Fused, d.Reorder = true, planner.ReorderNone
		}
		dec = &d
		kind = d.Strategy
		useFused = d.Fused
		// Realize an RCM reorder decision as a within-wavefront rank for
		// the global schedule; the wavefronts themselves are untouched
		// (DAG depth is relabeling-invariant) so results stay
		// bit-identical. Other schedulers fix the order themselves.
		if !useFused && d.Reorder == planner.ReorderRCM && cfg.scheduler == GlobalSched {
			if p, rerr := reorder.RCM(t); rerr == nil {
				rank = p.Inv
				if !lower {
					// FromUpper reflects indices (iteration k stands for
					// row n-1-k); reflect the rank to match.
					n := t.N
					rank = make([]int32, n)
					for k := 0; k < n; k++ {
						rank[k] = p.Inv[n-1-k]
					}
				}
			} else {
				d.Reorder = planner.ReorderNone
			}
		} else if d.Reorder != planner.ReorderNone {
			d.Reorder = planner.ReorderNone
		}
	}
	ins := &inspection{deps: deps, wf: wf, kind: kind, dec: dec}
	if useFused {
		fx, ferr := newFusedExec(t, lower, part, deps, unitDeps, unitWf, cfg.nproc)
		if ferr != nil {
			return nil, ferr
		}
		ins.fused = fx
		ins.sched = fx.sched
		return ins, nil
	}
	switch cfg.scheduler {
	case GlobalSched:
		if rank != nil {
			ins.sched = schedule.GlobalRanked(wf, rank, cfg.nproc)
		} else {
			ins.sched = schedule.Global(wf, cfg.nproc)
		}
	case LocalSched:
		ins.sched = schedule.Local(wf, cfg.nproc, cfg.part)
	case NaturalSched:
		ins.sched = schedule.Natural(t.N, cfg.nproc, cfg.part)
	default:
		return nil, fmt.Errorf("trisolve: unknown scheduler %d", cfg.scheduler)
	}
	return ins, nil
}

// NewPlan runs the inspector for a triangular factor: it extracts the
// dependence sets, computes wavefronts, lets the planner pick the
// executor strategy (and a locality reordering or supernodal fusion)
// unless WithKind pinned one, and builds the schedule.
func NewPlan(t *sparse.CSR, lower bool, opts ...Option) (*Plan, error) {
	cfg := buildPlanConfig(opts)
	ins, err := inspect(t, lower, cfg)
	if err != nil {
		return nil, err
	}
	strat, err := ins.kind.NewStrategy()
	if err != nil {
		return nil, err
	}
	p := &Plan{L: t, Lower: lower, Wf: ins.wf, Sched: ins.sched, Kind: ins.kind, Decision: ins.dec, strat: strat, fused: ins.fused}
	if ins.fused != nil {
		p.Deps = ins.fused.deps
	} else {
		p.Deps = ins.deps
	}
	return p, nil
}

// Solve executes the planned triangular solve, writing the solution to x.
// x and b must not alias (the parallel executors read b while writing x).
func (p *Plan) Solve(x, b []float64) executor.Metrics {
	m, err := p.SolveCtx(context.Background(), x, b)
	return executor.MustMetrics(m, err)
}

// SolveCtx is Solve with cancellation support: a cancelled context
// releases every worker and returns ctx.Err().
func (p *Plan) SolveCtx(ctx context.Context, x, b []float64) (executor.Metrics, error) {
	m, err := p.strat.Execute(ctx, p.Sched, p.Deps, p.body(x, b))
	return p.rowMetrics(m, err), err
}

// rowMetrics keeps the Executed counter in row substitutions for fused
// plans: the executor counts scheduled indices, which for a supernodal
// schedule are multi-row units. A complete pass (possibly replicated
// P-fold by rotating-style strategies) translates exactly; an aborted
// pass keeps the raw unit count.
func (p *Plan) rowMetrics(m executor.Metrics, err error) executor.Metrics {
	if p.fused == nil || err != nil {
		return m
	}
	nodes := int64(p.fused.part.NumNodes())
	if nodes > 0 && m.Executed%nodes == 0 {
		m.Executed = m.Executed / nodes * int64(p.L.N)
	}
	return m
}

func (p *Plan) body(x, b []float64) executor.Body {
	if p.fused != nil {
		if p.Lower {
			return p.fused.forwardBody(p.L, x, b)
		}
		return p.fused.backwardBody(p.L, x, b)
	}
	if p.Lower {
		return ForwardBody(p.L, x, b)
	}
	return BackwardBody(p.L, x, b)
}

// Close releases the plan's resources. For a plan leased from a PlanCache
// it releases the lease (the shared schedule and strategy stay available
// to other lease holders); otherwise it closes stateful strategies (the
// pooled executor's workers) and is a no-op for stateless ones. Close is
// idempotent either way — a second Close on a leased plan must never
// fall through to the shared strategy.
func (p *Plan) Close() error {
	if p.leased {
		rel := p.release
		p.release = nil
		if rel == nil {
			return nil
		}
		return rel()
	}
	if c, ok := p.strat.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Phases returns the number of wavefronts of the factor — the paper's
// "Phases" column in Tables 2 and 3. A fused plan's schedule runs fewer
// phases (the compressed unit levels); this reports the factor's own
// level count either way.
func (p *Plan) Phases() int {
	if p.fused == nil {
		return p.Sched.NumPhases
	}
	n := 0
	for _, w := range p.Wf {
		if int(w)+1 > n {
			n = int(w) + 1
		}
	}
	return n
}
