// Package core is the library entry point: the run-time system behind the
// paper's doconsider construct. Given the dependence structure a compiler
// (or the transform package) extracts from a loop, core runs the inspector
// (wavefront analysis), builds a schedule (global or local), and executes
// the loop body with the chosen executor (pre-scheduled, self-executing or
// doacross).
//
// Typical use:
//
//	deps := wavefront.FromIndirection(ia)
//	rt, err := core.New(deps, core.WithProcs(8), core.WithExecutor(executor.SelfExecuting))
//	...
//	rt.Run(func(i int32) { x[i] = x[i] + b[i]*x[ia[i]] })
//
// The inspector cost is paid once in New; Run may be invoked many times,
// which is where the approach pays off (paper §5.1.1: scheduling "was
// amortized over a substantial number of iterations").
package core

import (
	"context"
	"fmt"
	"io"

	"doconsider/internal/delta"
	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Scheduler selects the index-set scheduling strategy.
type Scheduler int

const (
	// GlobalScheduler sorts the whole index set by wavefront and deals the
	// sorted list to processors in a wrapped manner.
	GlobalScheduler Scheduler = iota
	// LocalScheduler keeps a fixed partition and reorders locally.
	LocalScheduler
	// NaturalScheduler keeps the original index order (doacross-style).
	NaturalScheduler
)

// String returns the scheduler name.
func (s Scheduler) String() string {
	switch s {
	case GlobalScheduler:
		return "global"
	case LocalScheduler:
		return "local"
	case NaturalScheduler:
		return "natural"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Config collects the runtime options.
type Config struct {
	Procs             int                // simulated processors (goroutines); default 1
	Executor          executor.Kind      // executor kind; chosen adaptively unless set via WithExecutor
	Strategy          executor.Strategy  // overrides Executor when non-nil (pluggable strategies)
	Scheduler         Scheduler          // default GlobalScheduler
	Partition         schedule.Partition // initial partition for local scheduling
	ParallelInspector bool               // run the wavefront sweep in parallel (§2.3)
	WorkWeights       []float64          // optional per-index costs for work-balanced global dealing
	MergePhases       bool               // coalesce barrier phases when safe (ref [13])
	Model             *planner.CostModel // cost model for adaptive selection; nil = host-calibrated

	// kindSet records that WithExecutor pinned the kind explicitly; with
	// neither a kind nor a strategy pinned, New lets the planner choose.
	kindSet bool
}

// adaptive reports whether New should let the planner pick the strategy.
func (c *Config) adaptive() bool { return c.Strategy == nil && !c.kindSet }

// Option mutates a Config.
type Option func(*Config)

// WithProcs sets the number of processors.
func WithProcs(p int) Option { return func(c *Config) { c.Procs = p } }

// WithExecutor pins the executor kind, bypassing adaptive selection.
func WithExecutor(k executor.Kind) Option {
	return func(c *Config) { c.Executor = k; c.kindSet = true }
}

// WithModel supplies the cost model adaptive selection consults; nil (the
// default) uses the once-per-machine calibrated host model (planner.ForHost).
// Pass planner.Default() for machine-independent, reproducible decisions.
func WithModel(m *planner.CostModel) Option { return func(c *Config) { c.Model = m } }

// WithStrategy sets a custom execution strategy instance, bypassing the
// Kind-named built-ins; use it to plug in strategies registered with
// executor.Register (or constructed directly). The caller keeps ownership:
// Runtime.Close does not close a supplied strategy, so one instance (e.g.
// a shared PooledStrategy) may back several runtimes.
func WithStrategy(s executor.Strategy) Option { return func(c *Config) { c.Strategy = s } }

// WithScheduler sets the scheduling strategy.
func WithScheduler(s Scheduler) Option { return func(c *Config) { c.Scheduler = s } }

// WithPartition sets the initial partition used by local scheduling.
func WithPartition(p schedule.Partition) Option { return func(c *Config) { c.Partition = p } }

// WithParallelInspector runs the topological sort striped across the
// processors with busy-wait synchronization.
func WithParallelInspector() Option { return func(c *Config) { c.ParallelInspector = true } }

// WithWorkWeights supplies per-index costs; the global scheduler then
// balances summed cost per wavefront rather than index counts.
func WithWorkWeights(w []float64) Option { return func(c *Config) { c.WorkWeights = w } }

// WithMergedPhases coalesces consecutive barrier phases whenever no
// dependence inside the merged window crosses processors, reducing the
// global synchronization count of the pre-scheduled executor (the
// rearrangement idea of the paper's reference [13]). It has no effect on
// the self-executing executor, which has no barriers to merge.
func WithMergedPhases() Option { return func(c *Config) { c.MergePhases = true } }

// buildConfig resolves options against the defaults shared by New and the
// plan cache's key computation.
func buildConfig(opts []Option) Config {
	cfg := Config{Procs: 1, Executor: executor.SelfExecuting, Scheduler: GlobalScheduler}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	return cfg
}

// Runtime is a prepared loop: inspector output, an executor schedule, and
// the execution strategy instance that runs it. Stateful strategies (the
// pooled executor's worker pool) live as long as the Runtime; call Close
// to release them.
type Runtime struct {
	cfg       Config
	deps      *wavefront.Deps
	wf        []int32
	sched     *schedule.Schedule
	strat     executor.Strategy
	ownsStrat bool              // Close only closes strategies this runtime constructed
	decision  *planner.Decision // non-nil when the planner chose the strategy
	patch     *delta.State      // incremental-repair state, built on first Patch
}

// New runs the inspector on the dependence structure and builds the
// schedule. It returns an error if the dependences are not executable
// (cycle, out-of-range edge) rather than letting an executor deadlock.
func New(deps *wavefront.Deps, opts ...Option) (*Runtime, error) {
	cfg := buildConfig(opts)
	var wf []int32
	var err error
	if deps.CheckBackward() == nil {
		if cfg.ParallelInspector {
			wf, err = wavefront.ComputeParallel(deps, cfg.Procs)
		} else {
			wf, err = wavefront.Compute(deps)
		}
	} else {
		// General DAG: fall back to Kahn's algorithm, which also rejects
		// cyclic inputs with a useful error.
		wf, err = wavefront.ComputeDAG(deps)
	}
	if err != nil {
		return nil, err
	}
	// Adaptive planning: with neither a kind nor a strategy pinned, the
	// inspector measures the DAG it just leveled and picks the executor
	// itself (sequential for tiny or chain-like structures, pooled for
	// wide ones, doacross when the natural order already parallelizes).
	var dec *planner.Decision
	if cfg.adaptive() {
		d := planner.Select(planner.Analyze(deps, wf, cfg.Procs), cfg.Model)
		dec = &d
		cfg.Executor = d.Strategy
	}
	var s *schedule.Schedule
	switch cfg.Scheduler {
	case GlobalScheduler:
		if cfg.WorkWeights != nil {
			s = schedule.GlobalByWork(wf, cfg.WorkWeights, cfg.Procs)
		} else {
			s = schedule.Global(wf, cfg.Procs)
		}
	case LocalScheduler:
		s = schedule.Local(wf, cfg.Procs, cfg.Partition)
	case NaturalScheduler:
		s = schedule.Natural(deps.N, cfg.Procs, cfg.Partition)
	default:
		return nil, fmt.Errorf("core: unknown scheduler %v", cfg.Scheduler)
	}
	if cfg.MergePhases {
		s = schedule.MergePhases(s, deps)
	}
	strat, owns := cfg.Strategy, false
	if strat == nil {
		strat, err = cfg.Executor.NewStrategy()
		if err != nil {
			return nil, err
		}
		owns = true
	}
	return &Runtime{cfg: cfg, deps: deps, wf: wf, sched: s, strat: strat, ownsStrat: owns, decision: dec}, nil
}

// Decision returns the planner's strategy decision, or nil when the
// caller pinned the executor (WithExecutor or WithStrategy).
func (r *Runtime) Decision() *planner.Decision { return r.decision }

// Run executes the loop body under the configured executor. It may be
// called repeatedly; the schedule — and, for the pooled executor, the
// worker pool — is reused across calls. A body panic propagates to the
// caller; use RunCtx to receive it as an error instead.
func (r *Runtime) Run(body executor.Body) executor.Metrics {
	return executor.MustMetrics(r.strat.Execute(context.Background(), r.sched, r.deps, body))
}

// RunCtx executes the loop body with cancellation support: a cancelled
// context releases every worker (including busy-waiting ones) and returns
// ctx.Err(); a panicking body yields an *executor.PanicError.
func (r *Runtime) RunCtx(ctx context.Context, body executor.Body) (executor.Metrics, error) {
	return r.strat.Execute(ctx, r.sched, r.deps, body)
}

// Strategy exposes the execution strategy instance the runtime dispatches to.
func (r *Runtime) Strategy() executor.Strategy { return r.strat }

// Close releases resources held by stateful strategies (the pooled
// executor's persistent workers). It is a no-op for stateless strategies
// and for strategies supplied by the caller via WithStrategy — a shared
// strategy instance stays usable by other runtimes, and its owner closes
// it directly.
func (r *Runtime) Close() error {
	if !r.ownsStrat {
		return nil
	}
	if c, ok := r.strat.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// NumWavefronts returns the number of wavefronts found by the inspector.
func (r *Runtime) NumWavefronts() int { return wavefront.NumWavefronts(r.wf) }

// Wavefronts returns the per-index wavefront numbers. The slice aliases
// runtime state and must not be modified.
func (r *Runtime) Wavefronts() []int32 { return r.wf }

// Schedule exposes the built schedule (read-only).
func (r *Runtime) Schedule() *schedule.Schedule { return r.sched }

// Deps exposes the dependence structure the runtime was built from.
func (r *Runtime) Deps() *wavefront.Deps { return r.deps }

// Config returns the effective configuration.
func (r *Runtime) Config() Config { return r.cfg }
