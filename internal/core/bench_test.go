package core

import (
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

// BenchmarkPlanCacheHit is the acceptance experiment for the plan cache:
// on the 120x120 mesh a cache hit (fingerprint + map lookup + LRU bump)
// must be at least an order of magnitude cheaper than a cold core.New
// (wavefront sweep + schedule construction over 14400 indices).
func BenchmarkPlanCacheHit(b *testing.B) {
	a := stencil.Laplace2D(120, 120)
	deps := wavefront.FromLower(a)
	b.Run("cold-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt, err := New(deps, WithProcs(4))
			if err != nil {
				b.Fatal(err)
			}
			rt.Close()
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := NewCache(8)
		defer c.Close()
		warm, err := c.Get(deps, WithProcs(4))
		if err != nil {
			b.Fatal(err)
		}
		defer warm.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lease, err := c.Get(deps, WithProcs(4))
			if err != nil {
				b.Fatal(err)
			}
			lease.Release()
		}
	})
}

// BenchmarkCacheContention measures hit throughput under parallel callers
// — the serving scenario the cache exists for.
func BenchmarkCacheContention(b *testing.B) {
	a := stencil.Laplace2D(120, 120)
	deps := wavefront.FromLower(a)
	c := NewCache(8)
	defer c.Close()
	warm, err := c.Get(deps, WithProcs(4))
	if err != nil {
		b.Fatal(err)
	}
	defer warm.Release()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lease, err := c.Get(deps, WithProcs(4))
			if err != nil {
				b.Fatal(err)
			}
			lease.Release()
		}
	})
}

// BenchmarkRunBatch compares k fused recurrence bodies in one scheduled
// pass against k separate Runs on the same pooled runtime.
func BenchmarkRunBatch(b *testing.B) {
	a := stencil.Laplace2D(80, 80)
	deps := wavefront.FromLower(a)
	const k = 8
	rt, err := New(deps, WithProcs(4), WithExecutor(executor.Pooled))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	bodies := make([]executor.Body, k)
	for j := range bodies {
		bodies[j] = func(int32) {}
	}
	rt.Run(bodies[0]) // warm up the pool
	b.Run("sequential-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				rt.Run(bodies[j])
			}
		}
	})
	b.Run("batch-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt.RunBatch(bodies)
		}
	})
}
