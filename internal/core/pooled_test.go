package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

func randomIndirection(rng *rand.Rand, n int) []int32 {
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	return ia
}

// TestPooledRuntimeMatchesSequential runs the paper's simple loop under
// the pooled executor repeatedly and compares every sweep against the
// sequential reference — the amortized Run-many-times usage pattern.
func TestPooledRuntimeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 400
	ia := randomIndirection(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	mk := func(kind executor.Kind) (*SimpleLoop, []float64) {
		loop, err := NewSimpleLoop(ia, WithProcs(4), WithExecutor(kind))
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i % 7)
		}
		return loop, x
	}
	seqLoop, xSeq := mk(executor.Sequential)
	poolLoop, xPool := mk(executor.Pooled)
	defer poolLoop.Runtime().Close()
	for sweep := 0; sweep < 20; sweep++ {
		seqLoop.Run(xSeq, b)
		poolLoop.Run(xPool, b)
		for i := range xPool {
			if xPool[i] != xSeq[i] {
				t.Fatalf("sweep %d: x[%d] = %v, want %v", sweep, i, xPool[i], xSeq[i])
			}
		}
	}
}

// TestPooledRuntimeReusesWorkers checks the pool survives across Run
// calls: after warm-up, repeated runs spawn no goroutines.
func TestPooledRuntimeReusesWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ia := randomIndirection(rng, 300)
	deps := wavefront.FromIndirection(ia)
	rt, err := New(deps, WithProcs(4), WithExecutor(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	body := func(int32) {}
	rt.Run(body) // warm-up spawns the pool
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		rt.Run(body)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew across pooled runs: %d -> %d", before, after)
	}
}

// TestRunCtxCancellation verifies Runtime.RunCtx surfaces a cancellation
// as ctx.Err() with all workers released.
func TestRunCtxCancellation(t *testing.T) {
	// A strict chain guarantees cross-worker waiting.
	n := 64
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	deps := wavefront.FromAdjacency(adj)
	for _, kind := range []executor.Kind{executor.SelfExecuting, executor.Pooled} {
		rt, err := New(deps, WithProcs(4), WithExecutor(kind))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		release := make(chan struct{})
		go func() {
			<-started
			cancel()
			time.Sleep(50 * time.Millisecond)
			close(release)
		}()
		done := make(chan error, 1)
		go func() {
			_, err := rt.RunCtx(ctx, func(i int32) {
				if i == 0 {
					close(started)
					<-release
				}
			})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v: err = %v, want context.Canceled", kind, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: cancelled run deadlocked", kind)
		}
		rt.Close()
	}
}

// TestWithStrategyOverride plugs a custom strategy instance into the
// runtime, bypassing the Kind-named built-ins.
func TestWithStrategyOverride(t *testing.T) {
	ia := randomIndirection(rand.New(rand.NewSource(33)), 100)
	deps := wavefront.FromIndirection(ia)
	ps := &executor.PooledStrategy{}
	defer ps.Close()
	rt, err := New(deps, WithProcs(3), WithStrategy(ps))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Strategy() != executor.Strategy(ps) {
		t.Error("runtime did not adopt the supplied strategy instance")
	}
	m, err := rt.RunCtx(context.Background(), func(int32) {})
	if err != nil {
		t.Fatal(err)
	}
	if m.Executed != int64(deps.N) {
		t.Errorf("executed %d, want %d", m.Executed, deps.N)
	}
	// The caller owns a strategy supplied via WithStrategy: one runtime's
	// Close must not tear it down for the others sharing it.
	rt2, err := New(deps, WithProcs(3), WithStrategy(ps))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.RunCtx(context.Background(), func(int32) {}); err != nil {
		t.Errorf("shared strategy unusable after sibling runtime Close: %v", err)
	}
}
