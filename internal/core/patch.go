package core

import (
	"context"
	"fmt"

	"doconsider/internal/delta"
	"doconsider/internal/planner"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Patch applies a structural edit set to the runtime in place: the
// dependence structure drifts (a few iterations gain or lose
// dependences — an adaptive mesh step, a refactorization with a changed
// drop pattern) and the runtime repairs its wavefront levels and
// schedule through internal/delta instead of paying a full re-inspection
// — falling back to one when the planner prices the repair above a
// rebuild or the level-change cone exceeds the break-even bound
// (stats.Fallback reports which way it went). The execution strategy is
// kept; repair never changes the strategy decision.
//
// Patch must not run concurrently with Run/RunCtx on the same runtime:
// it replaces the structures an executing pass is reading.
func (r *Runtime) Patch(edits delta.EditSet) (delta.Stats, error) {
	return r.PatchCtx(context.Background(), edits)
}

// PatchCtx is Patch with cancellation support; repair itself runs in
// microseconds, so the context is consulted only between stages.
func (r *Runtime) PatchCtx(ctx context.Context, edits delta.EditSet) (delta.Stats, error) {
	if err := ctx.Err(); err != nil {
		return delta.Stats{}, err
	}
	newDeps, changed, err := delta.Apply(r.deps, edits)
	if err != nil {
		return delta.Stats{}, err
	}
	if len(changed) == 0 {
		return delta.Stats{}, nil
	}
	if r.repairable() {
		state := r.patch
		if state == nil {
			state = delta.NewState(r.deps, r.wf, r.sched)
		}
		dec := planner.PlanRepair(r.deps.N, r.deps.Edges(), len(changed), r.cfg.Model)
		if dec.Repair {
			st, stats, rerr := state.Repair(newDeps, changed, delta.Options{MaxCone: dec.MaxCone})
			if rerr == nil {
				r.deps, r.wf, r.sched, r.patch = st.Deps, st.Wf, st.Sched, st
				return stats, nil
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return delta.Stats{}, err
	}
	stats, err := r.reinspect(newDeps)
	stats.Changed = len(changed)
	return stats, err
}

// repairable reports whether this runtime's plan shape admits a local
// repair: a wrapped-deal global schedule (no work weights, no merged
// phases) over backward dependences.
func (r *Runtime) repairable() bool {
	return r.cfg.Scheduler == GlobalScheduler &&
		r.cfg.WorkWeights == nil &&
		!r.cfg.MergePhases &&
		r.deps.CheckBackward() == nil
}

// reinspect is the Patch fallback: full wavefront recomputation and
// schedule construction for the edited structure, exactly as New would
// do, keeping the existing execution strategy.
func (r *Runtime) reinspect(newDeps *wavefront.Deps) (delta.Stats, error) {
	var wf []int32
	var err error
	if newDeps.CheckBackward() == nil {
		if r.cfg.ParallelInspector {
			wf, err = wavefront.ComputeParallel(newDeps, r.cfg.Procs)
		} else {
			wf, err = wavefront.Compute(newDeps)
		}
	} else {
		wf, err = wavefront.ComputeDAG(newDeps)
	}
	if err != nil {
		return delta.Stats{Fallback: true}, err
	}
	var s *schedule.Schedule
	switch r.cfg.Scheduler {
	case GlobalScheduler:
		if r.cfg.WorkWeights != nil {
			s = schedule.GlobalByWork(wf, r.cfg.WorkWeights, r.cfg.Procs)
		} else {
			s = schedule.Global(wf, r.cfg.Procs)
		}
	case LocalScheduler:
		s = schedule.Local(wf, r.cfg.Procs, r.cfg.Partition)
	case NaturalScheduler:
		s = schedule.Natural(newDeps.N, r.cfg.Procs, r.cfg.Partition)
	default:
		return delta.Stats{Fallback: true}, fmt.Errorf("core: unknown scheduler %v", r.cfg.Scheduler)
	}
	if r.cfg.MergePhases {
		s = schedule.MergePhases(s, newDeps)
	}
	r.deps, r.wf, r.sched, r.patch = newDeps, wf, s, nil
	return delta.Stats{Fallback: true}, nil
}
