package core

import (
	"fmt"

	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

// SimpleLoop is a prepared instance of the paper's motivating loop
// (Figures 2–4):
//
//	do i = 1, n
//	    x(i) = x(i) + b(i)*x(ia(i))
//	end do
//
// Iterations with ia(i) >= i read the value of x from before the loop
// (xold), so only backward references ia(i) < i order the iterations —
// exactly the transformed executor of Figure 4.
type SimpleLoop struct {
	rt   *Runtime
	ia   []int32
	xold []float64
}

// NewSimpleLoop inspects the indirection array and prepares the runtime.
func NewSimpleLoop(ia []int32, opts ...Option) (*SimpleLoop, error) {
	n := len(ia)
	for i, t := range ia {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("core: ia[%d] = %d out of range [0,%d)", i, t, n)
		}
	}
	deps := wavefront.FromIndirection(ia)
	rt, err := New(deps, opts...)
	if err != nil {
		return nil, err
	}
	return &SimpleLoop{rt: rt, ia: ia, xold: make([]float64, n)}, nil
}

// Run executes one sweep of the loop over x with coefficients b, updating
// x in place. It may be called repeatedly (the paper's loops "may be
// executed many times during the running of a given program").
func (l *SimpleLoop) Run(x, b []float64) executor.Metrics {
	copy(l.xold, x)
	ia, xold := l.ia, l.xold
	return l.rt.Run(func(i int32) {
		needed := ia[i]
		if needed >= i {
			x[i] = xold[i] + b[i]*xold[needed]
		} else {
			x[i] = xold[i] + b[i]*x[needed]
		}
	})
}

// RunSequential executes the reference sequential semantics of the
// original loop, for verification: iterations in order, reads of x(ia(i))
// see the most recent value when ia(i) < i and the pre-loop value
// otherwise (matching Figure 4's xold convention).
func (l *SimpleLoop) RunSequential(x, b []float64) {
	copy(l.xold, x)
	for i := 0; i < len(l.ia); i++ {
		needed := l.ia[i]
		if int(needed) >= i {
			x[i] = l.xold[i] + b[i]*l.xold[needed]
		} else {
			x[i] = l.xold[i] + b[i]*x[needed]
		}
	}
}

// Runtime exposes the underlying prepared runtime.
func (l *SimpleLoop) Runtime() *Runtime { return l.rt }
