package core

import (
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/schedule"
	"doconsider/internal/vec"
	"doconsider/internal/wavefront"
)

// TestMergedPhasesCorrectness runs the pre-scheduled executor on merged
// schedules and verifies results stay bit-identical to sequential
// execution — the safety property behind the reference-[13] barrier
// reduction.
func TestMergedPhasesCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 200 + rng.Intn(200)
		ia := make([]int32, n)
		for i := range ia {
			ia[i] = int32(rng.Intn(n))
		}
		b := make([]float64, n)
		x0 := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 0.4
			x0[i] = rng.NormFloat64()
		}
		loopPlain, err := NewSimpleLoop(ia, WithProcs(5), WithExecutor(executor.PreScheduled))
		if err != nil {
			t.Fatal(err)
		}
		loopMerged, err := NewSimpleLoop(ia, WithProcs(5), WithExecutor(executor.PreScheduled),
			WithMergedPhases())
		if err != nil {
			t.Fatal(err)
		}
		if loopMerged.Runtime().Schedule().NumPhases > loopPlain.Runtime().Schedule().NumPhases {
			t.Fatal("merging increased phase count")
		}
		want := append([]float64(nil), x0...)
		loopPlain.RunSequential(want, b)
		got := append([]float64(nil), x0...)
		loopMerged.Run(got, b)
		if d := vec.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("trial %d: merged-phase execution differs by %v", trial, d)
		}
	}
}

func TestMergedPhasesReduceBarriers(t *testing.T) {
	// A dependence structure with long same-processor runs: blocked
	// partition keeps chains local, so merging should collapse phases.
	n := 64
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		if i%8 != 0 { // chains of 8 within each block
			adj[i] = []int32{int32(i - 1)}
		}
	}
	deps := wavefront.FromAdjacency(adj)
	unmerged, err := New(deps, WithProcs(8), WithScheduler(LocalScheduler),
		WithExecutor(executor.PreScheduled), WithPartition(schedule.Blocked))
	if err != nil {
		t.Fatal(err)
	}
	if got := unmerged.Schedule().NumPhases; got != 8 {
		t.Fatalf("unmerged phases = %d, want 8 (chain length)", got)
	}
	// With a blocked partition each chain of 8 lives on one processor, so
	// every phase boundary is safe to remove.
	merged, err := New(deps, WithProcs(8), WithScheduler(LocalScheduler),
		WithExecutor(executor.PreScheduled), WithMergedPhases(),
		WithPartition(schedule.Blocked))
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Schedule().NumPhases; got != 1 {
		t.Errorf("blocked chains should merge to 1 phase, got %d", got)
	}
}
