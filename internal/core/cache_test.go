package core

import (
	"errors"
	"sync"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/plancache"
	"doconsider/internal/wavefront"
)

func chainDeps(n int) *wavefront.Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	return wavefront.FromAdjacency(adj)
}

func TestCacheSharesRuntime(t *testing.T) {
	c := NewCache(8)
	defer c.Close()
	deps := chainDeps(64)
	l1, err := c.Get(deps, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Release()
	l2, err := c.Get(deps, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release()
	if l1.Runtime() != l2.Runtime() {
		t.Fatal("same deps and options produced different runtimes")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", s)
	}
	// A different configuration must not share the plan.
	l3, err := c.Get(deps, WithProcs(3))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Release()
	if l3.Runtime() == l1.Runtime() {
		t.Fatal("different procs shared one runtime")
	}
	// A structurally different graph must not share the plan.
	l4, err := c.Get(chainDeps(65), WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Release()
	if l4.Runtime() == l1.Runtime() {
		t.Fatal("different structure shared one runtime")
	}
}

func TestCacheRejectsCustomStrategy(t *testing.T) {
	c := NewCache(2)
	defer c.Close()
	strat, err := executor.NewStrategy(executor.Sequential.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(chainDeps(8), WithStrategy(strat)); !errors.Is(err, ErrUncacheableStrategy) {
		t.Fatalf("err = %v, want ErrUncacheableStrategy", err)
	}
}

// TestCacheConcurrentPooledRuns exercises the advertised contract: many
// goroutines lease one cached pooled Runtime and Run it concurrently.
func TestCacheConcurrentPooledRuns(t *testing.T) {
	c := NewCache(4)
	defer c.Close()
	const n = 256
	deps := chainDeps(n)
	const clients = 6
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lease, err := c.Get(deps, WithProcs(2), WithExecutor(executor.Pooled))
			if err != nil {
				t.Error(err)
				return
			}
			defer lease.Release()
			x := make([]int32, n)
			m := lease.Runtime().Run(func(i int32) {
				if i > 0 {
					x[i] = x[i-1] + 1
				}
			})
			if m.Executed != n {
				t.Errorf("executed %d bodies, want %d", m.Executed, n)
			}
			if x[n-1] != n-1 {
				t.Errorf("chain result %d, want %d", x[n-1], n-1)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (inspector must run once for %d clients)", s.Misses, clients)
	}
}

// TestCacheCloseIdempotent pins the Close contract: a second Close (even
// racing the first) returns nil, Gets after Close fail with ErrClosed,
// and a Runtime leased across the Close stays usable until released.
func TestCacheCloseIdempotent(t *testing.T) {
	c := NewCache(4)
	deps := chainDeps(64)
	lease, err := c.Get(deps, WithProcs(2), WithExecutor(executor.Pooled))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Close(); err != nil {
				t.Errorf("concurrent Close returned %v", err)
			}
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("Close after Close returned %v, want nil", err)
	}

	if _, err := c.Get(deps, WithProcs(2)); !errors.Is(err, plancache.ErrClosed) {
		t.Fatalf("Get after Close returned %v, want plancache.ErrClosed", err)
	}

	// The outstanding lease survives the Close; teardown happens at the
	// final Release, which must also be idempotent.
	if m := lease.Runtime().Run(func(int32) {}); m.Executed != 64 {
		t.Fatalf("leased runtime executed %d bodies after cache Close, want 64", m.Executed)
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if err := lease.Release(); err != nil {
		t.Fatalf("second Release returned %v, want nil", err)
	}
}
