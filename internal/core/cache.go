package core

import (
	"errors"
	"math"

	"doconsider/internal/fphash"
	"doconsider/internal/plancache"
	"doconsider/internal/planner"
	"doconsider/internal/wavefront"
)

// Cache is a concurrency-safe LRU cache of prepared Runtimes keyed by the
// dependence-structure fingerprint plus the plan-shaping configuration
// (procs, scheduler, executor kind, partition, phase merging, work
// weights). Concurrent Gets for an absent key run the inspector once and
// share the resulting Runtime — including, for the Pooled kind, one
// persistent worker pool — so N callers solving structurally identical
// problems pay one wavefront analysis instead of N (§5.1.1 amortization
// across callers, not just across iterations).
//
// A shared Runtime is safe for concurrent Run/RunCtx/RunBatch calls: the
// stateless strategies carry no per-Runtime mutable state, and the pooled
// strategy serializes runs on its internal pool.
type Cache struct {
	c *plancache.Cache[cacheKey, *Runtime]
}

// cacheKey identifies a plan. ParallelInspector is deliberately excluded:
// it changes how wavefronts are computed, not what they are. Adaptive
// plans (no pinned kind) key on auto plus the cost model identity: the
// planner's choice is a pure function of (structure, procs, model), so
// two adaptive Gets under one model always agree, while a Get pinning a
// kind never shares an entry with an adaptive one that happened to pick
// the same kind.
type cacheKey struct {
	fp        uint64
	procs     int
	scheduler Scheduler
	kind      int // executor.Kind; int keeps the key comparable and compact
	auto      bool
	model     planner.CostModel // zero + !hasModel = host model; compared by value
	hasModel  bool              // so fresh-but-equal models (planner.Default() per call) share entries
	partition int               // schedule.Partition
	merge     bool
	weightsFp uint64
}

// NewCache returns a runtime cache holding at most capacity plans;
// capacity <= 0 means unbounded. Evicted Runtimes are Closed after their
// last lease is released.
func NewCache(capacity int) *Cache {
	return &Cache{c: plancache.New[cacheKey, *Runtime](capacity)}
}

// ErrUncacheableStrategy reports a Get with WithStrategy: a caller-supplied
// strategy instance cannot be keyed (two calls passing distinct instances
// must not share one), so cached plans must name their executor via
// WithExecutor instead.
var ErrUncacheableStrategy = errors.New("core: cache cannot key a caller-supplied strategy instance; use WithExecutor")

// Get returns a lease on the Runtime prepared for deps under opts,
// running the inspector and schedule construction only on a miss. Release
// the lease when done; the Runtime stays valid until then even if the
// entry is evicted. Do not Close a cached Runtime directly — the cache
// owns that lifecycle.
func (c *Cache) Get(deps *wavefront.Deps, opts ...Option) (*RuntimeLease, error) {
	cfg := buildConfig(opts)
	if cfg.Strategy != nil {
		return nil, ErrUncacheableStrategy
	}
	key := cacheKey{
		fp:        deps.Fingerprint(),
		procs:     cfg.Procs,
		scheduler: cfg.Scheduler,
		kind:      int(cfg.Executor),
		auto:      cfg.adaptive(),
		partition: int(cfg.Partition),
		merge:     cfg.MergePhases,
		weightsFp: hashWeights(cfg.WorkWeights),
	}
	if key.auto {
		key.kind = -1 // the planner decides; don't fragment on the unused default
		if cfg.Model != nil {
			key.model, key.hasModel = *cfg.Model, true
		}
	}
	h, err := c.c.Get(key, func() (*Runtime, error) { return New(deps, opts...) })
	if err != nil {
		return nil, err
	}
	return &RuntimeLease{h: h}, nil
}

// Stats returns the cache effectiveness counters.
func (c *Cache) Stats() plancache.Stats { return c.c.Stats() }

// Len returns the number of resident plans.
func (c *Cache) Len() int { return c.c.Len() }

// Close evicts every plan and closes the cache; Runtimes still leased are
// Closed when their last lease is released.
func (c *Cache) Close() error { return c.c.Close() }

// RuntimeLease pins one cached Runtime.
type RuntimeLease struct {
	h *plancache.Handle[cacheKey, *Runtime]
}

// Runtime returns the leased Runtime. It must not be used (or Closed)
// after Release.
func (l *RuntimeLease) Runtime() *Runtime { return l.h.Value() }

// Release unpins the Runtime; if its cache entry was evicted and this was
// the last lease, the Runtime is Closed here.
func (l *RuntimeLease) Release() error { return l.h.Release() }

// hashWeights folds the work-weight vector into the cache key; plans built
// with different weights produce different schedules.
func hashWeights(w []float64) uint64 {
	if w == nil {
		return 0
	}
	h := uint64(fphash.Offset)
	for _, x := range w {
		h = fphash.Mix(h, math.Float64bits(x))
	}
	return fphash.Final(h)
}
