package core

import (
	"context"

	"doconsider/internal/executor"
)

// RunBatch executes several loop bodies over the prepared schedule in one
// scheduled pass: at each index i every body runs in turn before i is
// published as complete. All bodies must tolerate the dependence structure
// the Runtime was built for (each body's writes at index i may only be
// read by bodies at indices that depend on i). The point is amortization:
// k independent sweeps — say k right-hand sides of one triangular system —
// cost one executor dispatch, one ready-array pass and one set of
// busy-waits instead of k (the batched counterpart of §5.1.1).
//
// An empty batch performs no dispatch and returns zero Metrics. A body
// panic propagates to the caller; use RunBatchCtx to receive it as an
// error instead.
func (r *Runtime) RunBatch(bodies []executor.Body) executor.Metrics {
	return executor.MustMetrics(r.RunBatchCtx(context.Background(), bodies))
}

// RunBatchCtx is RunBatch with cancellation support: a cancelled context
// releases every worker and returns ctx.Err(); a panicking body yields a
// *executor.PanicError.
func (r *Runtime) RunBatchCtx(ctx context.Context, bodies []executor.Body) (executor.Metrics, error) {
	switch len(bodies) {
	case 0:
		return executor.Metrics{}, nil
	case 1:
		return r.strat.Execute(ctx, r.sched, r.deps, bodies[0])
	}
	fused := func(i int32) {
		for _, b := range bodies {
			b(i)
		}
	}
	return r.strat.Execute(ctx, r.sched, r.deps, fused)
}
