package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"doconsider/internal/executor"
	"doconsider/internal/schedule"
	"doconsider/internal/vec"
	"doconsider/internal/wavefront"
)

func TestNewRejectsCycles(t *testing.T) {
	deps := wavefront.FromAdjacency([][]int32{{1}, {0}})
	if _, err := New(deps); err == nil {
		t.Error("New accepted a cyclic dependence structure")
	}
}

func TestNewGeneralDAGForwardEdges(t *testing.T) {
	// Forward edge: iteration 0 depends on 2. Compute would reject it, but
	// the runtime must fall back to Kahn's algorithm and succeed.
	deps := wavefront.FromAdjacency([][]int32{{2}, {}, {1}})
	rt, err := New(deps, WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	rt.Run(func(i int32) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("executed %d, want 3", count.Load())
	}
}

func TestRuntimeAccessors(t *testing.T) {
	deps := wavefront.FromAdjacency([][]int32{{}, {0}, {1}})
	rt, err := New(deps, WithProcs(3), WithExecutor(executor.PreScheduled),
		WithScheduler(LocalScheduler), WithPartition(schedule.Blocked))
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumWavefronts() != 3 {
		t.Errorf("wavefronts = %d", rt.NumWavefronts())
	}
	if len(rt.Wavefronts()) != 3 || rt.Schedule() == nil || rt.Deps() != deps {
		t.Error("accessors broken")
	}
	cfg := rt.Config()
	if cfg.Procs != 3 || cfg.Executor != executor.PreScheduled || cfg.Scheduler != LocalScheduler {
		t.Errorf("config = %+v", cfg)
	}
}

func TestSchedulerString(t *testing.T) {
	if GlobalScheduler.String() != "global" || LocalScheduler.String() != "local" ||
		NaturalScheduler.String() != "natural" {
		t.Error("scheduler names wrong")
	}
	if Scheduler(9).String() == "" {
		t.Error("unknown scheduler should format")
	}
}

func TestParallelInspectorAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		for k := 0; k < rng.Intn(3); k++ {
			adj[i] = append(adj[i], int32(rng.Intn(i)))
		}
	}
	deps := wavefront.FromAdjacency(adj)
	seq, err := New(deps, WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(deps, WithProcs(4), WithParallelInspector())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if seq.Wavefronts()[i] != par.Wavefronts()[i] {
			t.Fatalf("inspector disagreement at %d", i)
		}
	}
}

func TestWorkWeightedScheduling(t *testing.T) {
	n := 30
	deps := wavefront.FromAdjacency(make([][]int32, n)) // fully parallel
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = 100
	rt, err := New(deps, WithProcs(3), WithWorkWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	// The heavy index should be alone on its processor under LPT dealing.
	s := rt.Schedule()
	for p := 0; p < s.P; p++ {
		for _, idx := range s.Proc(p) {
			if idx == 0 && s.ProcLen(p) != 1 {
				t.Errorf("heavy index shares processor with %d others", s.ProcLen(p)-1)
			}
		}
	}
}

func TestSimpleLoopMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 600
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.5
		x0[i] = rng.NormFloat64()
	}
	for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting, executor.DoAcross} {
		for _, sched := range []Scheduler{GlobalScheduler, LocalScheduler} {
			loop, err := NewSimpleLoop(ia, WithProcs(6), WithExecutor(kind), WithScheduler(sched))
			if err != nil {
				t.Fatal(err)
			}
			want := append([]float64(nil), x0...)
			loop.RunSequential(want, b)
			got := append([]float64(nil), x0...)
			loop.Run(got, b)
			if d := vec.MaxAbsDiff(got, want); d != 0 {
				t.Errorf("kind=%v sched=%v: diff %v", kind, sched, d)
			}
		}
	}
}

func TestSimpleLoopRepeatedSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.1
	}
	loop, err := NewSimpleLoop(ia, WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	xPar := make([]float64, n)
	xSeq := make([]float64, n)
	for i := range xPar {
		xPar[i] = 1
		xSeq[i] = 1
	}
	for sweep := 0; sweep < 5; sweep++ {
		loop.Run(xPar, b)
		loop.RunSequential(xSeq, b)
	}
	if d := vec.MaxAbsDiff(xPar, xSeq); d != 0 {
		t.Errorf("after 5 sweeps diff %v", d)
	}
}

func TestSimpleLoopRejectsBadIndirection(t *testing.T) {
	if _, err := NewSimpleLoop([]int32{0, 5}); err == nil {
		t.Error("accepted out-of-range ia")
	}
	if _, err := NewSimpleLoop([]int32{-1}); err == nil {
		t.Error("accepted negative ia")
	}
}

func TestSimpleLoopRuntime(t *testing.T) {
	loop, err := NewSimpleLoop([]int32{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if loop.Runtime() == nil || loop.Runtime().NumWavefronts() != 3 {
		t.Error("runtime accessor broken")
	}
}

func TestRuntimePropertyAllExecuted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(150)
		adj := make([][]int32, n)
		for i := 1; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				adj[i] = append(adj[i], int32(rng.Intn(i)))
			}
		}
		deps := wavefront.FromAdjacency(adj)
		kinds := []executor.Kind{executor.Sequential, executor.PreScheduled,
			executor.SelfExecuting, executor.DoAcross}
		rt, err := New(deps,
			WithProcs(1+rng.Intn(6)),
			WithExecutor(kinds[rng.Intn(len(kinds))]),
			WithScheduler([]Scheduler{GlobalScheduler, LocalScheduler}[rng.Intn(2)]))
		if err != nil {
			return false
		}
		var count atomic.Int64
		rt.Run(func(i int32) { count.Add(1) })
		return count.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
