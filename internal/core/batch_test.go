package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

// TestRunBatchMatchesSequentialRuns checks that one batched pass over k
// recurrence bodies computes exactly what k separate Runs compute.
func TestRunBatchMatchesSequentialRuns(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(3))
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	deps := wavefront.FromIndirection(ia)
	const k = 4
	mkBody := func(x []float64) executor.Body {
		return func(i int32) {
			if int(ia[i]) < int(i) {
				x[i] += 0.5 * x[ia[i]]
			}
		}
	}
	want := make([][]float64, k)
	for j := range want {
		want[j] = make([]float64, n)
		for i := range want[j] {
			want[j][i] = float64(j + 1)
		}
		executor.RunSequential(n, mkBody(want[j]))
	}
	for _, kind := range []executor.Kind{executor.SelfExecuting, executor.Pooled} {
		rt, err := New(deps, WithProcs(4), WithExecutor(kind))
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]float64, k)
		bodies := make([]executor.Body, k)
		for j := range got {
			got[j] = make([]float64, n)
			for i := range got[j] {
				got[j][i] = float64(j + 1)
			}
			bodies[j] = mkBody(got[j])
		}
		m := rt.RunBatch(bodies)
		if m.Executed != n {
			t.Errorf("%v: executed %d indices, want %d (one pass, not k)", kind, m.Executed, n)
		}
		for j := range got {
			for i := range got[j] {
				if got[j][i] != want[j][i] {
					t.Fatalf("%v: batch body %d index %d = %v, want %v", kind, j, i, got[j][i], want[j][i])
				}
			}
		}
		rt.Close()
	}
}

func TestRunBatchEmptyAndCancelled(t *testing.T) {
	rt, err := New(wavefront.FromIndirection(make([]int32, 32)), WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if m := rt.RunBatch(nil); m.Executed != 0 {
		t.Fatalf("empty batch executed %d bodies", m.Executed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = rt.RunBatchCtx(ctx, []executor.Body{func(int32) {}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
}
