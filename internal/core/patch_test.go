package core

import (
	"context"
	"math/rand"
	"testing"

	"doconsider/internal/delta"
	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

// patchBody is the paper's simple loop over an indirection array:
// x[i] += b[i] * x[ia[i]], the workload a patched runtime keeps running.
func patchBody(x, b []float64, ia []int32) executor.Body {
	return func(i int32) {
		if int(ia[i]) >= 0 {
			x[i] += b[i] * x[ia[i]]
		}
	}
}

func TestPatchMatchesFreshRuntime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	ia := randomIndirection(rng, n) // shared helper in pooled_test.go
	deps := wavefront.FromIndirection(ia)
	rt, err := New(deps, WithProcs(2), WithExecutor(executor.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Drift: a few iterations gain or lose a dependence.
	edits := delta.EditSet{}
	for _, row := range []int32{50, 120, 199} {
		if deps.Count(int(row)) > 0 {
			edits = append(edits, delta.RowEdit{Row: row, Delete: []int32{deps.On(int(row))[0]}})
		} else {
			edits = append(edits, delta.RowEdit{Row: row, Insert: []int32{row / 2}})
		}
	}
	newDeps, _, err := delta.Apply(deps, edits)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.PatchCtx(context.Background(), edits)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed != len(edits) {
		t.Fatalf("changed = %d, want %d", stats.Changed, len(edits))
	}

	// Levels match a fresh inspection of the edited structure.
	fresh, err := New(newDeps, WithProcs(2), WithExecutor(executor.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for i, w := range fresh.Wavefronts() {
		if rt.Wavefronts()[i] != w {
			t.Fatalf("wf[%d] = %d, want %d", i, rt.Wavefronts()[i], w)
		}
	}

	// And running the loop gives bit-identical results. The patched
	// runtime must execute under an edited ia consistent with the new
	// dependence structure; since the body only reads ia, reuse the old
	// one — both runtimes run the same arithmetic in wavefront order.
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	for i := range x1 {
		x1[i] = float64(i)
		x2[i] = float64(i)
	}
	rt.Run(patchBody(x1, b, ia))
	fresh.Run(patchBody(x2, b, ia))
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x1[i], x2[i])
		}
	}
}

func TestPatchChain(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 150
	ia := randomIndirection(rng, n)
	deps := wavefront.FromIndirection(ia)
	rt, err := New(deps, WithProcs(2), WithExecutor(executor.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for step := 0; step < 8; step++ {
		row := int32(rng.Intn(n-1) + 1)
		var e delta.RowEdit
		if rt.Deps().Count(int(row)) > 0 {
			e = delta.RowEdit{Row: row, Delete: []int32{rt.Deps().On(int(row))[0]}}
		} else {
			e = delta.RowEdit{Row: row, Insert: []int32{int32(rng.Intn(int(row)))}}
		}
		if _, err := rt.Patch(delta.EditSet{e}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ref, err := wavefront.Compute(rt.Deps())
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range ref {
			if rt.Wavefronts()[i] != w {
				t.Fatalf("step %d: wf[%d] = %d, want %d", step, i, rt.Wavefronts()[i], w)
			}
		}
	}
}

func TestPatchFallbackPaths(t *testing.T) {
	// A long chain with an independent head: inserting the head edge
	// releveles everything, so the cone bound forces a full rebuild.
	n := 800
	adj := make([][]int32, n)
	for i := 2; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	rt, err := New(wavefront.FromAdjacency(adj), WithProcs(2), WithExecutor(executor.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	stats, err := rt.Patch(delta.EditSet{{Row: 1, Insert: []int32{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback {
		t.Fatalf("expected fallback for a whole-chain relevel, got %+v", stats)
	}
	ref, _ := wavefront.Compute(rt.Deps())
	for i, w := range ref {
		if rt.Wavefronts()[i] != w {
			t.Fatalf("wf[%d] = %d, want %d", i, rt.Wavefronts()[i], w)
		}
	}

	// Non-global schedules repair via full reinspection too.
	rtl, err := New(wavefront.FromAdjacency([][]int32{nil, {0}, {1}}),
		WithProcs(2), WithScheduler(LocalScheduler), WithExecutor(executor.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	defer rtl.Close()
	stats, err = rtl.Patch(delta.EditSet{{Row: 2, Delete: []int32{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback {
		t.Fatalf("local scheduler must take the rebuild path, got %+v", stats)
	}
	if got := rtl.NumWavefronts(); got != 2 {
		t.Fatalf("wavefronts = %d, want 2", got)
	}

	// A cancelled context stops the patch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rtl.PatchCtx(ctx, delta.EditSet{{Row: 2, Insert: []int32{1}}}); err == nil {
		t.Fatal("cancelled PatchCtx returned nil error")
	}

	// Empty edit sets are a no-op.
	if stats, err := rtl.Patch(nil); err != nil || stats.Changed != 0 {
		t.Fatalf("empty patch: %+v, %v", stats, err)
	}
}
