package krylov

import (
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
	"doconsider/internal/vec"
)

func TestBiCGSTABFivePoint(t *testing.T) {
	a := stencil.FivePoint(15)
	b := rhsForOnes(a)
	prec, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	res, err := BiCGSTAB(a, x, b, prec, Options{Tol: 1e-10, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge: %+v", res)
	}
	for i := range x {
		if d := x[i] - 1; d > 1e-5 || d < -1e-5 {
			t.Fatalf("x[%d] = %v, want 1", i, x[i])
		}
	}
}

func TestBiCGSTABMatchesGMRESSolution(t *testing.T) {
	a := stencil.SPE4()
	b := rhsForOnes(a)
	prec, err := NewILUPrec(a, ILUPrecOptions{
		Level: 0, Procs: 4, Kind: executor.SelfExecuting,
	})
	if err != nil {
		t.Fatal(err)
	}
	xB := make([]float64, a.N)
	resB, err := BiCGSTAB(a, xB, b, prec, Options{Tol: 1e-10, MaxIter: 400, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	xG := make([]float64, a.N)
	resG, err := GMRES(a, xG, b, prec, Options{Tol: 1e-10, MaxIter: 400, Restart: 40, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Converged || !resG.Converged {
		t.Fatalf("convergence: bicgstab=%v gmres=%v", resB.Converged, resG.Converged)
	}
	if d := vec.MaxAbsDiff(xB, xG); d > 1e-5 {
		t.Errorf("solutions differ by %v", d)
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	a := stencil.Laplace2D(6, 6)
	x := make([]float64, a.N)
	res, err := BiCGSTAB(a, x, make([]float64, a.N), IdentityPrec{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS should converge immediately")
	}
}

func TestBiCGSTABIterationLimit(t *testing.T) {
	a := stencil.FivePoint(12)
	b := rhsForOnes(a)
	x := make([]float64, a.N)
	if _, err := BiCGSTAB(a, x, b, IdentityPrec{}, Options{Tol: 1e-14, MaxIter: 2}); err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSolveBiCGSTABPath(t *testing.T) {
	a := stencil.SPE1()
	b := rhsForOnes(a)
	x := make([]float64, a.N)
	out, err := Solve(a, x, b, SolverConfig{
		Method: MethodBiCGSTAB,
		Procs:  4,
		Kind:   executor.SelfExecuting,
		Opts:   Options{Tol: 1e-9, MaxIter: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Fatal("Solve/BiCGSTAB did not converge")
	}
	rn := residualNorm(a, x, b)
	if rn > 1e-5*vec.Norm2(b) {
		t.Errorf("residual %v", rn)
	}
}
