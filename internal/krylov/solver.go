package krylov

import (
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/trisolve"
)

// Method selects the Krylov iteration.
type Method int

const (
	// MethodGMRES uses restarted GMRES (the general nonsymmetric choice).
	MethodGMRES Method = iota
	// MethodCG uses preconditioned conjugate gradients (SPD systems).
	MethodCG
	// MethodBiCGSTAB uses the stabilized bi-conjugate gradient method
	// (nonsymmetric, short recurrences, constant memory).
	MethodBiCGSTAB
)

// SolverConfig describes a complete PCGPAK-style solve.
type SolverConfig struct {
	Method         Method
	Level          int // ILU fill level
	Procs          int
	Kind           executor.Kind
	Scheduler      trisolve.SchedulerKind
	FactorParallel bool
	Opts           Options
}

// Timings decomposes where the wall-clock time of a full solve went —
// mirroring the paper's Table 1 columns (solve time plus the separately
// reported topological sort time).
type Timings struct {
	Symbolic time.Duration // symbolic factorization + plan construction (inspector)
	Numeric  time.Duration // numeric factorization
	Iterate  time.Duration // Krylov iteration (matvecs, solves, vector ops)
	Total    time.Duration
}

// SolveOutcome is the full result of Solve.
type SolveOutcome struct {
	Result  Result
	Timings Timings
	Phases  int // wavefronts of the forward factor
}

// Solve runs the configured preconditioned Krylov method on A x = b.
// x holds the initial guess on entry and the solution on exit.
func Solve(a *sparse.CSR, x, b []float64, cfg SolverConfig) (SolveOutcome, error) {
	var out SolveOutcome
	start := time.Now()
	t0 := time.Now()
	prec, err := NewILUPrec(a, ILUPrecOptions{
		Level:          cfg.Level,
		Procs:          cfg.Procs,
		Kind:           cfg.Kind,
		Scheduler:      cfg.Scheduler,
		FactorParallel: cfg.FactorParallel,
	})
	if err != nil {
		return out, err
	}
	setup := time.Since(t0)
	// The numeric factorization happens inside NewILUPrec; attribute the
	// whole setup to Symbolic+Numeric by re-running numeric timing is not
	// worth the complexity, so report it as Symbolic (inspector+factor).
	out.Timings.Symbolic = setup
	out.Phases = prec.Forward.Phases()

	opts := cfg.Opts
	opts.Procs = cfg.Procs
	t0 = time.Now()
	var res Result
	switch cfg.Method {
	case MethodCG:
		res, err = CG(a, x, b, prec, opts)
	case MethodBiCGSTAB:
		res, err = BiCGSTAB(a, x, b, prec, opts)
	default:
		res, err = GMRES(a, x, b, prec, opts)
	}
	out.Timings.Iterate = time.Since(t0)
	out.Timings.Total = time.Since(start)
	out.Result = res
	return out, err
}
