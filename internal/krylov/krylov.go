// Package krylov is the repo's stand-in for PCGPAK, the commercial
// preconditioned Krylov solver the paper parallelized (Appendix I–II):
// conjugate gradients for symmetric positive definite systems and
// restarted GMRES for the nonsymmetric reservoir and convection problems,
// both with incomplete-factorization preconditioning applied through
// run-time-parallelized sparse triangular solves.
package krylov

import (
	"errors"
	"fmt"
	"math"

	"doconsider/internal/sparse"
	"doconsider/internal/vec"
)

// Preconditioner applies z = M^{-1} r.
type Preconditioner interface {
	Apply(z, r []float64)
}

// IdentityPrec is the trivial preconditioner z = r.
type IdentityPrec struct{}

// Apply copies r to z.
func (IdentityPrec) Apply(z, r []float64) { copy(z, r) }

// ErrNoConvergence reports that the iteration hit its limit before the
// residual tolerance was met.
var ErrNoConvergence = errors.New("krylov: iteration limit reached")

// Result reports the outcome of a Krylov solve.
type Result struct {
	Iterations int     // Krylov iterations performed
	Residual   float64 // final preconditioned residual 2-norm
	Converged  bool
}

// Options controls the iteration.
type Options struct {
	Tol     float64 // relative residual tolerance (default 1e-8)
	MaxIter int     // maximum iterations (default 500)
	Restart int     // GMRES restart length m (default 30)
	Procs   int     // processors for vector kernels and matvec (default 1)
	// History, when non-nil, receives the relative residual after each
	// iteration (useful for convergence plots and preconditioner studies).
	History *[]float64
}

func (o *Options) record(res float64) {
	if o.History != nil {
		*o.History = append(*o.History, res)
	}
}

func (o *Options) defaults(n int) {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.Procs <= 0 {
		o.Procs = 1
	}
	if o.Restart > n {
		o.Restart = n
	}
}

// CG solves A x = b with preconditioned conjugate gradients. A must be
// symmetric positive definite. x holds the initial guess on entry and the
// solution on exit.
func CG(a *sparse.CSR, x, b []float64, m Preconditioner, o Options) (Result, error) {
	n := a.N
	o.defaults(n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	if err := a.MatVecParallel(r, x, o.Procs); err != nil {
		return Result{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	m.Apply(z, r)
	copy(p, z)
	rz := vec.DotParallel(r, z, o.Procs)
	bnorm := vec.Norm2Parallel(b, o.Procs)
	if bnorm == 0 {
		bnorm = 1
	}
	res := Result{}
	for k := 0; k < o.MaxIter; k++ {
		if err := a.MatVecParallel(ap, p, o.Procs); err != nil {
			return res, err
		}
		pap := vec.DotParallel(p, ap, o.Procs)
		if pap == 0 {
			return res, fmt.Errorf("krylov: CG breakdown, p'Ap = 0 at iteration %d", k)
		}
		alpha := rz / pap
		vec.AxpyParallel(alpha, p, x, o.Procs)
		vec.AxpyParallel(-alpha, ap, r, o.Procs)
		rnorm := vec.Norm2Parallel(r, o.Procs)
		res.Iterations = k + 1
		res.Residual = rnorm / bnorm
		o.record(res.Residual)
		if res.Residual <= o.Tol {
			res.Converged = true
			return res, nil
		}
		m.Apply(z, r)
		rzNew := vec.DotParallel(r, z, o.Procs)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, ErrNoConvergence
}

// GMRES solves A x = b with restarted, left-preconditioned GMRES(m).
// x holds the initial guess on entry and the solution on exit.
func GMRES(a *sparse.CSR, x, b []float64, mPrec Preconditioner, o Options) (Result, error) {
	n := a.N
	o.defaults(n)
	m := o.Restart

	r := make([]float64, n)
	w := make([]float64, n)
	z := make([]float64, n)
	// Krylov basis, Hessenberg, Givens rotations and RHS of the LS problem.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)

	// beta0: norm of the initial preconditioned residual (for the relative test).
	computeResidual := func() (float64, error) {
		if err := a.MatVecParallel(w, x, o.Procs); err != nil {
			return 0, err
		}
		for i := range w {
			w[i] = b[i] - w[i]
		}
		mPrec.Apply(r, w)
		return vec.Norm2Parallel(r, o.Procs), nil
	}
	beta0, err := computeResidual()
	if err != nil {
		return Result{}, err
	}
	if beta0 == 0 {
		return Result{Converged: true}, nil
	}

	res := Result{}
	total := 0
	for total < o.MaxIter {
		beta, err := computeResidual()
		if err != nil {
			return res, err
		}
		if beta/beta0 <= o.Tol {
			res.Converged = true
			res.Residual = beta / beta0
			return res, nil
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		inv := 1 / beta
		for i := range v[0] {
			v[0][i] = r[i] * inv
		}
		j := 0
		for ; j < m && total < o.MaxIter; j++ {
			total++
			// w = M^{-1} A v_j
			if err := a.MatVecParallel(z, v[j], o.Procs); err != nil {
				return res, err
			}
			mPrec.Apply(w, z)
			// Modified Gram-Schmidt.
			for i := 0; i <= j; i++ {
				h[i][j] = vec.DotParallel(w, v[i], o.Procs)
				vec.AxpyParallel(-h[i][j], v[i], w, o.Procs)
			}
			h[j+1][j] = vec.Norm2Parallel(w, o.Procs)
			arnoldiNorm := h[j+1][j]
			if arnoldiNorm > 0 {
				inv := 1 / arnoldiNorm
				for i := range v[j+1] {
					v[j+1][i] = w[i] * inv
				}
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i][j] + sn[i]*h[i+1][j]
				h[i+1][j] = -sn[i]*h[i][j] + cs[i]*h[i+1][j]
				h[i][j] = t
			}
			// New rotation to annihilate h[j+1][j].
			denom := math.Hypot(h[j][j], h[j+1][j])
			if denom == 0 {
				cs[j], sn[j] = 1, 0
			} else {
				cs[j] = h[j][j] / denom
				sn[j] = h[j+1][j] / denom
			}
			h[j][j] = cs[j]*h[j][j] + sn[j]*h[j+1][j]
			h[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			res.Iterations = total
			res.Residual = math.Abs(g[j+1]) / beta0
			o.record(res.Residual)
			if res.Residual <= o.Tol || arnoldiNorm == 0 {
				// Converged, or lucky breakdown (the Krylov space is
				// invariant and the least-squares solve is exact).
				j++
				break
			}
		}
		// Solve the j×j triangular system and update x.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= h[i][k] * y[k]
			}
			if h[i][i] == 0 {
				return res, fmt.Errorf("krylov: GMRES breakdown, H[%d][%d]=0", i, i)
			}
			y[i] = s / h[i][i]
		}
		for i := 0; i < j; i++ {
			vec.AxpyParallel(y[i], v[i], x, o.Procs)
		}
		if res.Residual <= o.Tol {
			// Confirm with a true residual.
			beta, err := computeResidual()
			if err != nil {
				return res, err
			}
			res.Residual = beta / beta0
			if res.Residual <= o.Tol*10 {
				res.Converged = true
				return res, nil
			}
		}
	}
	return res, ErrNoConvergence
}
