package krylov

import (
	"testing"

	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
)

func TestJacobiPrecBasics(t *testing.T) {
	a := stencil.Laplace2D(4, 4)
	p, err := NewJacobiPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, a.N)
	z := make([]float64, a.N)
	for i := range r {
		r[i] = 8
	}
	p.Apply(z, r)
	for i := range z {
		if z[i] != 2 { // diagonal of the Laplacian is 4
			t.Fatalf("z[%d] = %v, want 2", i, z[i])
		}
	}
}

func TestJacobiPrecZeroDiagonal(t *testing.T) {
	a := sparse.MustAssemble(2, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewJacobiPrec(a); err == nil {
		t.Error("accepted zero diagonal")
	}
}

func TestILUBeatsJacobi(t *testing.T) {
	a := stencil.FivePoint(20)
	b := rhsForOnes(a)
	jac, err := NewJacobiPrec(a)
	if err != nil {
		t.Fatal(err)
	}
	iluPrec, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	xJ := make([]float64, a.N)
	resJ, err := GMRES(a, xJ, b, jac, Options{Tol: 1e-8, MaxIter: 500, Restart: 50})
	if err != nil {
		t.Fatal(err)
	}
	xI := make([]float64, a.N)
	resI, err := GMRES(a, xI, b, iluPrec, Options{Tol: 1e-8, MaxIter: 500, Restart: 50})
	if err != nil {
		t.Fatal(err)
	}
	if resI.Iterations >= resJ.Iterations {
		t.Errorf("ILU(0) took %d iterations, Jacobi %d — ILU should win",
			resI.Iterations, resJ.Iterations)
	}
}
