package krylov

import (
	"fmt"
	"math"

	"doconsider/internal/sparse"
	"doconsider/internal/vec"
)

// BiCGSTAB solves A x = b with the stabilized bi-conjugate gradient
// method, right-preconditioned with M (z = M^{-1} v applied through the
// run-time-parallelized triangular solves). PCGPAK shipped several Krylov
// accelerators besides GMRES; BiCGSTAB provides a short-recurrence
// nonsymmetric alternative with constant memory, unlike restarted GMRES.
// x holds the initial guess on entry and the solution on exit.
func BiCGSTAB(a *sparse.CSR, x, b []float64, m Preconditioner, o Options) (Result, error) {
	n := a.N
	o.defaults(n)

	r := make([]float64, n)
	rhat := make([]float64, n)
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)

	if err := a.MatVecParallel(r, x, o.Procs); err != nil {
		return Result{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	copy(rhat, r)
	bnorm := vec.Norm2Parallel(b, o.Procs)
	if bnorm == 0 {
		bnorm = 1
	}
	res := Result{Residual: vec.Norm2Parallel(r, o.Procs) / bnorm}
	if res.Residual <= o.Tol {
		res.Converged = true
		return res, nil
	}
	var rho, alpha, omega float64 = 1, 1, 1
	for k := 0; k < o.MaxIter; k++ {
		rhoNew := vec.DotParallel(rhat, r, o.Procs)
		if rhoNew == 0 {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown, rho = 0 at iteration %d", k)
		}
		if k == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		m.Apply(phat, p)
		if err := a.MatVecParallel(v, phat, o.Procs); err != nil {
			return res, err
		}
		denom := vec.DotParallel(rhat, v, o.Procs)
		if denom == 0 {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown, rhat'v = 0 at iteration %d", k)
		}
		alpha = rho / denom
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		res.Iterations = k + 1
		if sn := vec.Norm2Parallel(s, o.Procs) / bnorm; sn <= o.Tol {
			vec.AxpyParallel(alpha, phat, x, o.Procs)
			res.Residual = sn
			res.Converged = true
			return res, nil
		}
		m.Apply(shat, s)
		if err := a.MatVecParallel(t, shat, o.Procs); err != nil {
			return res, err
		}
		tt := vec.DotParallel(t, t, o.Procs)
		if tt == 0 {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown, t = 0 at iteration %d", k)
		}
		omega = vec.DotParallel(t, s, o.Procs) / tt
		if omega == 0 {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown, omega = 0 at iteration %d", k)
		}
		vec.AxpyParallel(alpha, phat, x, o.Procs)
		vec.AxpyParallel(omega, shat, x, o.Procs)
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res.Residual = vec.Norm2Parallel(r, o.Procs) / bnorm
		o.record(res.Residual)
		if res.Residual <= o.Tol || math.IsNaN(res.Residual) {
			res.Converged = res.Residual <= o.Tol
			if res.Converged {
				return res, nil
			}
			return res, fmt.Errorf("krylov: BiCGSTAB diverged (NaN residual) at iteration %d", k)
		}
	}
	return res, ErrNoConvergence
}
