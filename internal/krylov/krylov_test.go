package krylov

import (
	"math"
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
)

func residualNorm(a *sparse.CSR, x, b []float64) float64 {
	r := make([]float64, a.N)
	if err := a.MatVec(r, x); err != nil {
		panic(err)
	}
	vec.Sub(r, b, r)
	return vec.Norm2(r)
}

func rhsForOnes(a *sparse.CSR) []float64 {
	ones := make([]float64, a.N)
	vec.Fill(ones, 1)
	b := make([]float64, a.N)
	if err := a.MatVec(b, ones); err != nil {
		panic(err)
	}
	return b
}

func TestCGLaplace(t *testing.T) {
	a := stencil.Laplace2D(20, 20)
	b := rhsForOnes(a)
	x := make([]float64, a.N)
	res, err := CG(a, x, b, IdentityPrec{}, Options{Tol: 1e-10, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CG did not converge")
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 {
			t.Fatalf("x[%d] = %v, want 1", i, x[i])
		}
	}
}

func TestCGWithILUPreconditioner(t *testing.T) {
	a := stencil.Laplace2D(25, 25)
	b := rhsForOnes(a)
	prec, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	res, err := CG(a, x, b, prec, Options{Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	xPlain := make([]float64, a.N)
	resPlain, err := CG(a, xPlain, b, IdentityPrec{}, Options{Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= resPlain.Iterations {
		t.Errorf("ILU(0) CG took %d iters, unpreconditioned %d — preconditioner should help",
			res.Iterations, resPlain.Iterations)
	}
}

func TestGMRESFivePoint(t *testing.T) {
	a := stencil.FivePoint(15) // nonsymmetric (convection)
	b := rhsForOnes(a)
	prec, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	res, err := GMRES(a, x, b, prec, Options{Tol: 1e-9, MaxIter: 300, Restart: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge: %+v", res)
	}
	rn := residualNorm(a, x, b)
	if rn > 1e-5*vec.Norm2(b) {
		t.Errorf("true residual %v too large", rn)
	}
}

func TestGMRESMatchesSolutionParallel(t *testing.T) {
	a := stencil.SPE4()
	b := rhsForOnes(a)
	for _, p := range []int{1, 4} {
		for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting} {
			prec, err := NewILUPrec(a, ILUPrecOptions{
				Level: 0, Procs: p, Kind: kind, Scheduler: trisolve.GlobalSched,
			})
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, a.N)
			res, err := GMRES(a, x, b, prec, Options{Tol: 1e-9, MaxIter: 400, Restart: 40, Procs: p})
			if err != nil {
				t.Fatalf("p=%d kind=%v: %v", p, kind, err)
			}
			if !res.Converged {
				t.Fatalf("p=%d kind=%v: no convergence", p, kind)
			}
			rn := residualNorm(a, x, b)
			if rn > 1e-5*vec.Norm2(b) {
				t.Errorf("p=%d kind=%v: residual %v", p, kind, rn)
			}
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := stencil.Laplace2D(5, 5)
	x := make([]float64, a.N)
	res, err := GMRES(a, x, make([]float64, a.N), IdentityPrec{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Error("zero RHS should leave x at zero")
		}
	}
}

func TestGMRESIterationLimit(t *testing.T) {
	a := stencil.FivePoint(12)
	b := rhsForOnes(a)
	x := make([]float64, a.N)
	_, err := GMRES(a, x, b, IdentityPrec{}, Options{Tol: 1e-14, MaxIter: 3, Restart: 3})
	if err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestCGIterationLimit(t *testing.T) {
	a := stencil.Laplace2D(30, 30)
	b := rhsForOnes(a)
	x := make([]float64, a.N)
	_, err := CG(a, x, b, IdentityPrec{}, Options{Tol: 1e-14, MaxIter: 2})
	if err != ErrNoConvergence {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSolveEndToEnd(t *testing.T) {
	a := stencil.SPE1()
	b := rhsForOnes(a)
	rng := rand.New(rand.NewSource(1))
	_ = rng
	for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting} {
		x := make([]float64, a.N)
		out, err := Solve(a, x, b, SolverConfig{
			Method:    MethodGMRES,
			Level:     0,
			Procs:     4,
			Kind:      kind,
			Scheduler: trisolve.GlobalSched,
			Opts:      Options{Tol: 1e-9, MaxIter: 300, Restart: 30},
		})
		if err != nil {
			t.Fatalf("kind=%v: %v", kind, err)
		}
		if !out.Result.Converged {
			t.Fatalf("kind=%v: did not converge", kind)
		}
		if out.Phases <= 1 {
			t.Errorf("kind=%v: phases = %d, expected many", kind, out.Phases)
		}
		if out.Timings.Total <= 0 {
			t.Error("total time not recorded")
		}
		rn := residualNorm(a, x, b)
		if rn > 1e-5*vec.Norm2(b) {
			t.Errorf("kind=%v: residual %v", kind, rn)
		}
	}
}

func TestSolveCGPath(t *testing.T) {
	a := stencil.Laplace2D(15, 15)
	b := rhsForOnes(a)
	x := make([]float64, a.N)
	out, err := Solve(a, x, b, SolverConfig{
		Method: MethodCG,
		Procs:  2,
		Kind:   executor.SelfExecuting,
		Opts:   Options{Tol: 1e-10, MaxIter: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Result.Converged {
		t.Fatal("CG path did not converge")
	}
}

func TestILUPrecFactorParallel(t *testing.T) {
	a := stencil.SPE4()
	seq, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewILUPrec(a, ILUPrecOptions{
		Level: 0, Procs: 4, Kind: executor.SelfExecuting, FactorParallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(seq.Fact.LU.Val, par.Fact.LU.Val); d > 1e-12 {
		t.Errorf("parallel factorization differs from sequential by %v", d)
	}
}
