package krylov

import (
	"runtime"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
)

func benchSystem(b *testing.B) ([]float64, *ILUPrec, int) {
	b.Helper()
	a := stencil.SPE4()
	ones := make([]float64, a.N)
	vec.Fill(ones, 1)
	rhs := make([]float64, a.N)
	if err := a.MatVec(rhs, ones); err != nil {
		b.Fatal(err)
	}
	procs := runtime.GOMAXPROCS(0)
	prec, err := NewILUPrec(a, ILUPrecOptions{
		Level: 0, Procs: procs, Kind: executor.SelfExecuting,
		Scheduler: trisolve.GlobalSched,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rhs, prec, procs
}

func BenchmarkPreconditionerApply(b *testing.B) {
	rhs, prec, _ := benchSystem(b)
	z := make([]float64, len(rhs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prec.Apply(z, rhs)
	}
}

func BenchmarkGMRESSolve(b *testing.B) {
	a := stencil.SPE4()
	rhs, prec, procs := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.N)
		if _, err := GMRES(a, x, rhs, prec, Options{
			Tol: 1e-8, MaxIter: 200, Restart: 30, Procs: procs,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILUPrecSetup(b *testing.B) {
	a := stencil.SPE4()
	procs := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: procs}); err != nil {
			b.Fatal(err)
		}
	}
}
