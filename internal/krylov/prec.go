package krylov

import (
	"fmt"

	"doconsider/internal/executor"
	"doconsider/internal/ilu"
	"doconsider/internal/sparse"
	"doconsider/internal/trisolve"
)

// ILUPrec applies an incomplete LU preconditioner through a forward and a
// backward sparse triangular solve, each run by a run-time-parallelized
// executor plan built once (the inspector cost is amortized over all
// iterations, as in the paper's Table 1 accounting).
type ILUPrec struct {
	Fact    *ilu.Factor
	Forward *trisolve.Plan
	Back    *trisolve.Plan
	tmp     []float64
	tmps    [][]float64 // lazily grown intermediate vectors for ApplyBatch
}

// ILUPrecOptions configures preconditioner construction.
type ILUPrecOptions struct {
	Level     int                    // fill level (0 = zero fill)
	Procs     int                    // processors for the triangular solves
	Kind      executor.Kind          // executor kind for the solves
	Scheduler trisolve.SchedulerKind // index-set scheduling method
	// FactorParallel selects parallel numeric factorization with the same
	// executor kind; otherwise the numeric factorization is sequential.
	FactorParallel bool
	// Plans, when non-nil, leases the two triangular-solve plans from the
	// cache instead of running the inspector per preconditioner:
	// preconditioners over factors with identical sparsity (the same mesh
	// refactored with new coefficients, or many concurrent solvers on one
	// model) share wavefront analysis, schedules and — for the Pooled kind
	// — worker pools. Close still releases the leases.
	Plans *trisolve.PlanCache
}

// NewILUPrec performs symbolic and numeric incomplete factorization of a
// and builds executor plans for the two triangular solves.
func NewILUPrec(a *sparse.CSR, o ILUPrecOptions) (*ILUPrec, error) {
	if o.Procs <= 0 {
		o.Procs = 1
	}
	pat, err := ilu.Symbolic(a, o.Level)
	if err != nil {
		return nil, err
	}
	var fact *ilu.Factor
	if o.FactorParallel && o.Procs > 1 {
		sched := ilu.GlobalSchedule
		if o.Scheduler == trisolve.LocalSched {
			sched = ilu.LocalSchedule
		}
		fact, _, err = ilu.NumericParallel(a, pat, o.Procs, o.Kind, sched)
	} else {
		fact, err = ilu.NumericSeq(a, pat)
	}
	if err != nil {
		return nil, err
	}
	l := fact.L()
	u := fact.U()
	opts := []trisolve.Option{
		trisolve.WithProcs(o.Procs), trisolve.WithKind(o.Kind), trisolve.WithScheduler(o.Scheduler),
	}
	newPlan := trisolve.NewPlan
	if o.Plans != nil {
		newPlan = o.Plans.Get
	}
	fwd, err := newPlan(l, true, opts...)
	if err != nil {
		return nil, err
	}
	back, err := newPlan(u, false, opts...)
	if err != nil {
		fwd.Close()
		return nil, err
	}
	return &ILUPrec{Fact: fact, Forward: fwd, Back: back, tmp: make([]float64, a.N)}, nil
}

// Apply solves L U z = r: a forward solve followed by a backward solve,
// both through the planned executors.
func (p *ILUPrec) Apply(z, r []float64) {
	p.Forward.Solve(p.tmp, r)
	p.Back.Solve(z, p.tmp)
}

// ApplyBatch applies the preconditioner to len(zs) residuals in two
// batched triangular passes: one forward and one backward scheduled sweep
// regardless of the batch width, instead of two per residual. With a
// batch of one the arithmetic matches Apply exactly. Like Apply, it is
// not safe for concurrent use on one ILUPrec (the intermediate vectors
// are shared).
func (p *ILUPrec) ApplyBatch(zs, rs [][]float64) error {
	if len(zs) != len(rs) {
		return fmt.Errorf("krylov: batch has %d outputs but %d residuals", len(zs), len(rs))
	}
	// Retain scratch only up to a modest width: one unusually wide batch
	// must not pin k*n floats for the preconditioner's lifetime.
	const maxRetainedTmps = 8
	tmps := p.tmps
	for len(tmps) < len(zs) {
		tmps = append(tmps, make([]float64, len(p.tmp)))
	}
	if len(tmps) <= maxRetainedTmps {
		p.tmps = tmps
	} else {
		p.tmps = append([][]float64(nil), tmps[:maxRetainedTmps]...)
	}
	tmps = tmps[:len(zs)]
	if _, err := p.Forward.SolveBatch(tmps, rs); err != nil {
		return err
	}
	_, err := p.Back.SolveBatch(zs, tmps)
	return err
}

// Close releases the two solve plans' strategy resources (the pooled
// executor's persistent workers) or, for cache-leased plans, their
// leases; it is a no-op for stateless kinds.
func (p *ILUPrec) Close() error {
	err := p.Forward.Close()
	if err2 := p.Back.Close(); err == nil {
		err = err2
	}
	return err
}

// JacobiPrec is the diagonal (point Jacobi) preconditioner z = D^{-1} r —
// the trivially parallel baseline against which incomplete-factorization
// preconditioning (and hence the whole run-time parallelization machinery)
// earns its keep.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobiPrec extracts the inverse diagonal of a. Zero diagonal entries
// yield an error.
func NewJacobiPrec(a *sparse.CSR) (*JacobiPrec, error) {
	inv := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		d := a.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		inv[i] = 1 / d
	}
	return &JacobiPrec{invDiag: inv}, nil
}

// Apply computes z = D^{-1} r.
func (p *JacobiPrec) Apply(z, r []float64) {
	for i := range z {
		z[i] = r[i] * p.invDiag[i]
	}
}
