package krylov

import (
	"testing"

	"doconsider/internal/stencil"
)

func TestResidualHistoryRecorded(t *testing.T) {
	a := stencil.Laplace2D(12, 12)
	b := rhsForOnes(a)
	var hist []float64
	x := make([]float64, a.N)
	res, err := CG(a, x, b, IdentityPrec{}, Options{
		Tol: 1e-10, MaxIter: 1000, History: &hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != res.Iterations {
		t.Errorf("history length %d, iterations %d", len(hist), res.Iterations)
	}
	if hist[len(hist)-1] > 1e-10 {
		t.Errorf("final recorded residual %v", hist[len(hist)-1])
	}
	// GMRES records a monotone nonincreasing least-squares residual within
	// each cycle; check overall decrease from first to last.
	var gh []float64
	x2 := make([]float64, a.N)
	if _, err := GMRES(a, x2, b, IdentityPrec{}, Options{
		Tol: 1e-10, MaxIter: 1000, Restart: 30, History: &gh,
	}); err != nil {
		t.Fatal(err)
	}
	if len(gh) == 0 || gh[len(gh)-1] >= gh[0] {
		t.Errorf("GMRES history not decreasing: first %v last %v (n=%d)",
			gh[0], gh[len(gh)-1], len(gh))
	}
	// BiCGSTAB history.
	var bh []float64
	x3 := make([]float64, a.N)
	if _, err := BiCGSTAB(a, x3, b, IdentityPrec{}, Options{
		Tol: 1e-10, MaxIter: 1000, History: &bh,
	}); err != nil {
		t.Fatal(err)
	}
	if len(bh) == 0 {
		t.Error("BiCGSTAB recorded no history")
	}
}

func TestPreconditionerShortensHistory(t *testing.T) {
	a := stencil.FivePoint(20)
	b := rhsForOnes(a)
	prec, err := NewILUPrec(a, ILUPrecOptions{Level: 0, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var plain, preconditioned []float64
	x := make([]float64, a.N)
	if _, err := GMRES(a, x, b, IdentityPrec{}, Options{
		Tol: 1e-8, MaxIter: 500, Restart: 50, History: &plain,
	}); err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, a.N)
	if _, err := GMRES(a, x2, b, prec, Options{
		Tol: 1e-8, MaxIter: 500, Restart: 50, History: &preconditioned,
	}); err != nil {
		t.Fatal(err)
	}
	if len(preconditioned) >= len(plain) {
		t.Errorf("ILU(0) history %d not shorter than unpreconditioned %d",
			len(preconditioned), len(plain))
	}
}
