package krylov

import (
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
)

// TestILUPrecSharedPlanCache builds two preconditioners over matrices
// with identical sparsity through one PlanCache and checks the inspector
// ran once per triangular factor, while each preconditioner applies its
// own values.
func TestILUPrecSharedPlanCache(t *testing.T) {
	pc := trisolve.NewPlanCache(8)
	defer pc.Close()
	a1 := stencil.FivePoint(20)
	a2 := stencil.FivePoint(20) // same structure, same values — and a
	for i := range a2.Val {     // perturbation keeps the values distinct
		a2.Val[i] *= 1.5
	}
	opts := ILUPrecOptions{Procs: 2, Kind: executor.SelfExecuting, Plans: pc}
	p1, err := NewILUPrec(a1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := NewILUPrec(a2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	s := pc.Stats()
	if s.Misses != 2 { // one forward + one backward skeleton
		t.Fatalf("misses = %d, want 2 (forward + backward, shared across preconditioners)", s.Misses)
	}
	if s.Hits != 2 {
		t.Fatalf("hits = %d, want 2", s.Hits)
	}
	// The two preconditioners must produce different outputs (different
	// values) even though they share schedules.
	n := a1.N
	r := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	p1.Apply(z1, r)
	p2.Apply(z2, r)
	same := true
	for i := range z1 {
		if z1[i] != z2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct-valued preconditioners produced identical output — values leaked through the cache")
	}
}

// TestApplyBatchMatchesApply checks the batched preconditioner
// application is bit-identical to per-residual Apply.
func TestApplyBatchMatchesApply(t *testing.T) {
	a := stencil.FivePoint(15)
	p, err := NewILUPrec(a, ILUPrecOptions{Procs: 2, Kind: executor.Pooled})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const k = 4
	n := a.N
	rng := rand.New(rand.NewSource(2))
	rs := make([][]float64, k)
	zsBatch := make([][]float64, k)
	zsOne := make([][]float64, k)
	for j := 0; j < k; j++ {
		rs[j] = make([]float64, n)
		for i := range rs[j] {
			rs[j][i] = rng.NormFloat64()
		}
		zsBatch[j] = make([]float64, n)
		zsOne[j] = make([]float64, n)
		p.Apply(zsOne[j], rs[j])
	}
	if err := p.ApplyBatch(zsBatch, rs); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			if zsBatch[j][i] != zsOne[j][i] {
				t.Fatalf("residual %d index %d: batch %v, apply %v", j, i, zsBatch[j][i], zsOne[j][i])
			}
		}
	}
	if err := p.ApplyBatch(zsBatch, rs[:2]); err == nil {
		t.Fatal("mismatched batch widths accepted")
	}
}
