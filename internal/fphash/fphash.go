// Package fphash is the shared hash behind the structural fingerprints
// that key plan caches (sparse.CSR.StructureFingerprint,
// wavefront.Deps.Fingerprint, core's work-weight hashing): a word-wise
// FNV-1a variant — one multiply per 64-bit word instead of per byte, so
// cold fingerprints of large structures stay cheap — finished with a
// splitmix64 avalanche. Every fingerprint in the module must use this one
// implementation: cache keys from diverging hash copies would silently
// stop (or wrongly start) sharing plans.
package fphash

const (
	// Offset is the FNV-1a 64-bit offset basis; start accumulations here.
	Offset = 0xcbf29ce484222325
	prime  = 0x100000001b3
)

// Mix folds one 64-bit word into the hash state.
func Mix(h, w uint64) uint64 { return (h ^ w) * prime }

// Words folds a length-prefixed int32 slice into the hash state, packing
// two elements per 64-bit mix; the length prefix disambiguates the
// zero-padded odd tail.
func Words(h uint64, xs []int32) uint64 {
	h = Mix(h, uint64(len(xs)))
	i := 0
	for ; i+1 < len(xs); i += 2 {
		h = Mix(h, uint64(uint32(xs[i]))|uint64(uint32(xs[i+1]))<<32)
	}
	if i < len(xs) {
		h = Mix(h, uint64(uint32(xs[i])))
	}
	return h
}

// Final avalanches the accumulated state (splitmix64 finalizer) so that
// inputs differing in few words still differ across the whole hash.
func Final(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
