// Package model implements the analytic performance model of paper
// Section 4: load-balance-optimal efficiencies for pre-scheduled and
// self-executing executions of the model problem (the lower triangular
// system from zero-fill factorization of a five-point m×n mesh), and the
// predicted time ratio between the two executors including synchronization
// overheads (equations 3–7).
package model

import "math"

// PhaseWidth returns the number of mesh points in wavefront j (1-based,
// j = 1..n+m-1) of the m×n model problem: wavefronts are anti-diagonal
// strips of the domain.
func PhaseWidth(m, n, j int) int {
	min := m
	if n < min {
		min = n
	}
	switch {
	case j < 1 || j > n+m-1:
		return 0
	case j < min:
		return j
	case j <= n+m-min:
		return min
	default:
		return n + m - j
	}
}

// MC returns the maximum number of mesh points any processor computes in
// phase j under the wrapped assignment: ceil(PhaseWidth/p).
func MC(m, n, p, j int) int {
	w := PhaseWidth(m, n, j)
	return (w + p - 1) / p
}

// PreScheduledTime returns the pre-scheduled computation time of the model
// problem in units of Tp (per-point time), excluding synchronization:
// Tc/Tp = sum over phases of MC(j) (equation 2's summand).
func PreScheduledTime(m, n, p int) float64 {
	t := 0
	for j := 1; j <= n+m-1; j++ {
		t += MC(m, n, p, j)
	}
	return float64(t)
}

// EoptPreScheduled returns the exact load-balance-limited efficiency of
// the pre-scheduled execution (equation 3): S/(p·Tc) = mn/(p·ΣMC(j)).
func EoptPreScheduled(m, n, p int) float64 {
	return float64(m*n) / (float64(p) * PreScheduledTime(m, n, p))
}

// EoptPreScheduledApprox returns the closed-form approximation of
// equation 4, derived from cumulative processor idle time:
//
//	Eopt ≈ mn / (mn + min(m̂,n̂)(p-1) + (m+n+1-2min(m̂,n̂))·((p - min(m,n) mod p) mod p))
//
// where m̂ and n̂ are the largest multiples of p not exceeding m and n.
func EoptPreScheduledApprox(m, n, p int) float64 {
	mh := (m / p) * p
	nh := (n / p) * p
	minHat := mh
	if nh < minHat {
		minHat = nh
	}
	minMN := m
	if n < minMN {
		minMN = n
	}
	perPhaseLoss := 0
	if minMN%p != 0 {
		perPhaseLoss = p - minMN%p
	}
	den := float64(m*n) +
		float64(minHat*(p-1)) +
		float64((m+n+1-2*minHat)*perPhaseLoss)
	return float64(m*n) / den
}

// EoptSelfExecuting returns the load-balance-limited efficiency of the
// self-executing execution (equation 5): only the first and last p-1
// wavefronts contribute idle time, cumulative idle = p(p-1)·Tp, so
// Eopt = mn/(mn + p(p-1)).
func EoptSelfExecuting(m, n, p int) float64 {
	return float64(m*n) / float64(m*n+p*(p-1))
}

// Ratios holds the paper's normalized synchronization costs:
// Rsynch = Tsynch/Tp, Rinc = Tinc/Tp, Rcheck = Tcheck/Tp.
type Ratios struct {
	Rsynch float64
	Rinc   float64
	Rcheck float64
}

// TimeRatio returns the predicted ratio of pre-scheduled to self-executing
// solve time for the model problem (the expression preceding equation 6):
//
//	      T_pre     S/(p·E_ps) + Tsynch(n+m-1)
//	R = -------- = ------------------------------------
//	      T_self    (S/(p·E_se))·(1 + Rinc + 2·Rcheck)
//
// in units where Tp = 1 (so S = mn).
func TimeRatio(m, n, p int, r Ratios) float64 {
	s := float64(m * n)
	pre := s/(float64(p)*EoptPreScheduled(m, n, p)) + r.Rsynch*float64(n+m-1)
	self := (s / (float64(p) * EoptSelfExecuting(m, n, p))) * (1 + r.Rinc + 2*r.Rcheck)
	return pre / self
}

// TimeRatioLimitNarrow returns the large-n limit of the time ratio for a
// narrow domain m = p+1, exactly as printed in the paper (equation 6):
//
//	R → (2p + Rsynch) / ((p+1)(1 + Rinc + 2·Rcheck))
//
// Slightly under half the processors idle under pre-scheduling, so
// self-execution is predicted to win whenever shared-memory checks are
// cheap.
//
// Note on conventions: equation 6 charges each global synchronization a
// single Tsynch of aggregate processor time. TimeRatio above is an
// elapsed-time ratio, in which every barrier stalls all p processors, so
// its large-n narrow-domain limit is TimeRatioLimitNarrowElapsed; the two
// coincide under the substitution Rsynch → Rsynch/p.
func TimeRatioLimitNarrow(p int, r Ratios) float64 {
	return (2*float64(p) + r.Rsynch) / (float64(p+1) * (1 + r.Rinc + 2*r.Rcheck))
}

// TimeRatioLimitNarrowElapsed is the large-n narrow-domain (m = p+1) limit
// of TimeRatio under the elapsed-time convention:
//
//	R → p(2 + Rsynch) / ((p+1)(1 + Rinc + 2·Rcheck))
func TimeRatioLimitNarrowElapsed(p int, r Ratios) float64 {
	return float64(p) * (2 + r.Rsynch) / (float64(p+1) * (1 + r.Rinc + 2*r.Rcheck))
}

// TimeRatioLimitSquare returns the large-n limit for a square domain m = n
// (equation 7):
//
//	R → 1 / (1 + Rinc + 2·Rcheck)
//
// End effects vanish, global synchronizations grow only as n+m-1 while work
// grows as mn, so pre-scheduling becomes (slightly) preferable.
func TimeRatioLimitSquare(r Ratios) float64 {
	return 1 / (1 + r.Rinc + 2*r.Rcheck)
}

// DenseTriangular returns the load-balance-limited efficiencies of solving
// an n×n dense unit-diagonal triangular system on n-1 processors (§4.2's
// extreme example): self-execution pipelines to time Tsaxpy·(n-1) while
// pre-scheduling obtains no parallelism at all.
func DenseTriangular(n int) (selfExec, preSched float64) {
	// Sequential work: n(n-1)/2 saxpy pairs.
	seq := float64(n*(n-1)) / 2
	selfExec = seq / (float64(n-1) * float64(n-1))
	preSched = seq / (float64(n-1) * seq)
	return selfExec, preSched
}

// ProjectEfficiency scales a measured 16-processor decomposition to a
// larger machine, as in Table 4: the symbolically estimated (load balance)
// efficiency is recomputed for the target processor count by the caller,
// while the non-load-balance losses measured at 16 processors are assumed
// constant. Given bestEff (efficiency with perfect balance, overheads only)
// and symbolic efficiency at the target P, the projected efficiency is
// their product.
func ProjectEfficiency(bestEff, symbolicEff float64) float64 {
	return bestEff * symbolicEff
}

// ApproxEqual reports whether two efficiencies agree within tol.
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
