package model

import (
	"math"
	"testing"

	"doconsider/internal/machine"
	"doconsider/internal/schedule"
	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

func TestPhaseWidth(t *testing.T) {
	// 5×7 mesh (paper Figure 9): widths 1,2,3,4,5,5,5,4,3,2,1.
	want := []int{1, 2, 3, 4, 5, 5, 5, 5, 4, 3, 2, 1}
	// j runs 1..11; min(m,n)=5; widths ramp 1..5, hold, ramp down.
	total := 0
	for j := 1; j <= 11; j++ {
		w := PhaseWidth(5, 7, j)
		total += w
		if w < 1 || w > 5 {
			t.Errorf("width(%d) = %d out of range", j, w)
		}
	}
	if total != 35 {
		t.Errorf("widths sum to %d, want 35", total)
	}
	if PhaseWidth(5, 7, 0) != 0 || PhaseWidth(5, 7, 12) != 0 {
		t.Error("out-of-range phases should have width 0")
	}
	_ = want
}

func TestPhaseWidthMatchesWavefrontHistogram(t *testing.T) {
	for _, mn := range [][2]int{{5, 7}, {8, 8}, {3, 12}, {1, 6}} {
		m, n := mn[0], mn[1]
		a := stencil.Laplace2D(m, n)
		d := wavefront.FromLower(a)
		wf, err := wavefront.Compute(d)
		if err != nil {
			t.Fatal(err)
		}
		h := wavefront.Histogram(wf)
		if len(h) != m+n-1 {
			t.Fatalf("%dx%d: %d wavefronts, want %d", m, n, len(h), m+n-1)
		}
		for j := 1; j <= m+n-1; j++ {
			if h[j-1] != PhaseWidth(m, n, j) {
				t.Errorf("%dx%d phase %d: histogram %d, model %d",
					m, n, j, h[j-1], PhaseWidth(m, n, j))
			}
		}
	}
}

func TestEoptPreScheduledMatchesSimulator(t *testing.T) {
	// Equation 3 must agree exactly with the cost-model simulator on the
	// model problem with uniform work and wrapped global scheduling.
	for _, c := range []struct{ m, n, p int }{
		{5, 7, 2}, {5, 7, 4}, {8, 8, 3}, {16, 16, 4}, {6, 20, 5},
	} {
		a := stencil.Laplace2D(c.m, c.n)
		d := wavefront.FromLower(a)
		wf, err := wavefront.Compute(d)
		if err != nil {
			t.Fatal(err)
		}
		work := make([]float64, d.N)
		for i := range work {
			work[i] = 1
		}
		s := schedule.Global(wf, c.p)
		sim := machine.SimulatePreScheduled(s, work, machine.FlopOnly())
		want := EoptPreScheduled(c.m, c.n, c.p)
		if math.Abs(sim.Efficiency-want) > 1e-12 {
			t.Errorf("m=%d n=%d p=%d: simulator %v, model %v",
				c.m, c.n, c.p, sim.Efficiency, want)
		}
	}
}

func TestEoptSelfExecutingCloseToSimulator(t *testing.T) {
	// Equation 5 is derived for the pipelined steady state; the simulator
	// should agree within a few percent on reasonably large meshes.
	for _, c := range []struct{ m, n, p int }{
		{16, 16, 4}, {12, 30, 4}, {9, 40, 8},
	} {
		a := stencil.Laplace2D(c.m, c.n)
		d := wavefront.FromLower(a)
		wf, err := wavefront.Compute(d)
		if err != nil {
			t.Fatal(err)
		}
		work := make([]float64, d.N)
		for i := range work {
			work[i] = 1
		}
		s := schedule.Global(wf, c.p)
		sim, err := machine.SimulateSelfExecuting(s, d, work, machine.FlopOnly())
		if err != nil {
			t.Fatal(err)
		}
		want := EoptSelfExecuting(c.m, c.n, c.p)
		if math.Abs(sim.Efficiency-want) > 0.06 {
			t.Errorf("m=%d n=%d p=%d: simulator %v, model %v",
				c.m, c.n, c.p, sim.Efficiency, want)
		}
	}
}

func TestEoptApproxTracksExact(t *testing.T) {
	for _, c := range []struct{ m, n, p int }{
		{16, 16, 4}, {17, 23, 4}, {32, 32, 8}, {9, 33, 3},
	} {
		exact := EoptPreScheduled(c.m, c.n, c.p)
		approx := EoptPreScheduledApprox(c.m, c.n, c.p)
		if math.Abs(exact-approx) > 0.08 {
			t.Errorf("m=%d n=%d p=%d: exact %v approx %v", c.m, c.n, c.p, exact, approx)
		}
	}
}

func TestEoptMonotoneInProblemSize(t *testing.T) {
	// Efficiency improves as the square domain grows (end effects shrink).
	prev := 0.0
	for _, n := range []int{8, 16, 32, 64} {
		e := EoptPreScheduled(n, n, 4)
		if e <= prev {
			t.Errorf("Eopt not increasing at n=%d: %v <= %v", n, e, prev)
		}
		prev = e
	}
}

func TestSelfExecutingBeatsPreScheduledNarrow(t *testing.T) {
	// m = p+1 (paper's narrow-domain limit): self-executing Eopt near 1,
	// pre-scheduled near (p+1)/(2p).
	p := 8
	m, n := p+1, 2000
	ePre := EoptPreScheduled(m, n, p)
	eSelf := EoptSelfExecuting(m, n, p)
	if eSelf < 0.99 {
		t.Errorf("self-executing Eopt = %v, want ~1", eSelf)
	}
	wantPre := float64(p+1) / float64(2*p)
	if math.Abs(ePre-wantPre) > 0.02 {
		t.Errorf("pre-scheduled Eopt = %v, want ~%v", ePre, wantPre)
	}
}

func TestTimeRatioLimits(t *testing.T) {
	r := Ratios{Rsynch: 20, Rinc: 0.2, Rcheck: 0.1}
	// Narrow-domain elapsed-time limit: TimeRatio approaches it for large n.
	p := 7
	lim := TimeRatioLimitNarrowElapsed(p, r)
	got := TimeRatio(p+1, 4000, p, r)
	if math.Abs(got-lim) > 0.05*lim {
		t.Errorf("narrow ratio %v, limit %v", got, lim)
	}
	// Both conventions agree self-execution wins on narrow domains.
	if lim <= 1 || TimeRatioLimitNarrow(p, r) <= 1 {
		t.Errorf("narrow limits should exceed 1 (self-exec wins): %v, %v",
			lim, TimeRatioLimitNarrow(p, r))
	}
	// Paper's eq. 6 equals the elapsed-time limit under Rsynch -> Rsynch*p.
	scaled := Ratios{Rsynch: r.Rsynch * float64(p), Rinc: r.Rinc, Rcheck: r.Rcheck}
	if math.Abs(TimeRatioLimitNarrow(p, scaled)-lim) > 1e-12 {
		t.Errorf("convention bridge broken: %v vs %v", TimeRatioLimitNarrow(p, scaled), lim)
	}
	// Square-domain limit (eq. 7): ratio below 1 (pre-scheduling wins) and
	// TimeRatio approaches it as n grows (synch cost vanishes relative to
	// the O(n^2) work).
	sq := TimeRatioLimitSquare(r)
	if sq >= 1 {
		t.Errorf("square limit %v should be below 1", sq)
	}
	got2 := TimeRatio(40000, 40000, p, r)
	if math.Abs(got2-sq) > 0.02 {
		t.Errorf("square ratio %v, limit %v", got2, sq)
	}
}

func TestDenseTriangular(t *testing.T) {
	self, pre := DenseTriangular(100)
	// Self-executing: n/(2(n-1)) ≈ 0.505; pre-scheduled: 1/(n-1).
	if math.Abs(self-100.0/198.0) > 1e-12 {
		t.Errorf("dense self Eopt = %v", self)
	}
	if math.Abs(pre-1.0/99.0) > 1e-12 {
		t.Errorf("dense pre Eopt = %v", pre)
	}
}

func TestProjectEfficiency(t *testing.T) {
	if got := ProjectEfficiency(0.8, 0.5); got != 0.4 {
		t.Errorf("ProjectEfficiency = %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.04, 0.05) || ApproxEqual(1.0, 1.1, 0.05) {
		t.Error("ApproxEqual misbehaves")
	}
}

func TestMCWrappedCeiling(t *testing.T) {
	if MC(5, 7, 2, 5) != 3 { // width 5 over 2 procs -> ceil(5/2)=3
		t.Errorf("MC = %d, want 3", MC(5, 7, 2, 5))
	}
	if MC(5, 7, 5, 5) != 1 {
		t.Errorf("MC = %d, want 1", MC(5, 7, 5, 5))
	}
}
