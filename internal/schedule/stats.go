package schedule

import (
	"fmt"
)

// Stats summarizes the load-balance quality of a schedule.
type Stats struct {
	P              int     // processors
	N              int     // indices
	NumPhases      int     // wavefronts
	MaxIndices     int     // largest per-processor index count
	MinIndices     int     // smallest per-processor index count
	PhaseImbalance float64 // mean over phases of (max-min) per-processor count
	SeqPhases      int     // phases whose work lands entirely on one processor
}

// ComputeStats derives load-balance statistics from a schedule.
func ComputeStats(s *Schedule) Stats {
	st := Stats{P: s.P, N: s.N, NumPhases: s.NumPhases, MinIndices: s.N + 1}
	for p := 0; p < s.P; p++ {
		c := s.ProcLen(p)
		if c > st.MaxIndices {
			st.MaxIndices = c
		}
		if c < st.MinIndices {
			st.MinIndices = c
		}
	}
	if s.NumPhases == 0 {
		st.MinIndices = 0
		return st
	}
	var imbal float64
	for k := 0; k < s.NumPhases; k++ {
		max, min, nonzero := 0, s.N+1, 0
		for p := 0; p < s.P; p++ {
			c := len(s.Phase(p, k))
			if c > max {
				max = c
			}
			if c < min {
				min = c
			}
			if c > 0 {
				nonzero++
			}
		}
		imbal += float64(max - min)
		if nonzero <= 1 && max > 0 {
			st.SeqPhases++
		}
	}
	st.PhaseImbalance = imbal / float64(s.NumPhases)
	return st
}

// Validate checks the structural invariants of a schedule: the processor
// and phase offset arrays partition the flat index buffer, the union of
// the per-processor lists is a permutation of 0..N-1, wavefront numbers
// are nondecreasing along every processor's list, and phase pointers bound
// exactly the indices whose wavefront equals the phase number.
func (s *Schedule) Validate() error {
	if len(s.ProcPtr) != s.P+1 {
		return fmt.Errorf("schedule: %d proc pointers, want %d", len(s.ProcPtr), s.P+1)
	}
	if s.ProcPtr[0] != 0 || int(s.ProcPtr[s.P]) != len(s.Idx) {
		return fmt.Errorf("schedule: proc pointers do not span the index buffer")
	}
	stride := s.NumPhases + 1
	if len(s.PhasePtr) != s.P*stride {
		return fmt.Errorf("schedule: %d phase pointers, want %d", len(s.PhasePtr), s.P*stride)
	}
	seen := make([]bool, s.N)
	total := 0
	for p := 0; p < s.P; p++ {
		if s.ProcPtr[p] > s.ProcPtr[p+1] {
			return fmt.Errorf("schedule: proc pointers not monotone at %d", p)
		}
		idxs := s.Proc(p)
		for k, idx := range idxs {
			if idx < 0 || int(idx) >= s.N {
				return fmt.Errorf("schedule: proc %d has out-of-range index %d", p, idx)
			}
			if seen[idx] {
				return fmt.Errorf("schedule: index %d scheduled twice", idx)
			}
			seen[idx] = true
			if k > 0 && s.Wf[idxs[k-1]] > s.Wf[idx] {
				return fmt.Errorf("schedule: proc %d wavefronts decrease at position %d", p, k)
			}
		}
		total += len(idxs)
		ptr := s.PhasePtr[p*stride : (p+1)*stride]
		if ptr[0] != s.ProcPtr[p] || ptr[s.NumPhases] != s.ProcPtr[p+1] {
			return fmt.Errorf("schedule: proc %d phase pointers do not span the index list", p)
		}
		for k := 0; k < s.NumPhases; k++ {
			if ptr[k] > ptr[k+1] {
				return fmt.Errorf("schedule: proc %d phase pointers not monotone at %d", p, k)
			}
			for _, idx := range s.Idx[ptr[k]:ptr[k+1]] {
				if s.Wf[idx] != int32(k) {
					return fmt.Errorf("schedule: proc %d phase %d contains index %d with wavefront %d",
						p, k, idx, s.Wf[idx])
				}
			}
		}
	}
	if total != s.N {
		return fmt.Errorf("schedule: %d indices scheduled, want %d", total, s.N)
	}
	return nil
}

// FlatOrder returns the concatenation of per-processor schedules
// interleaved phase by phase — the global execution order a pre-scheduled
// run would observe with instantaneous barriers. Useful in tests.
func (s *Schedule) FlatOrder() []int32 {
	out := make([]int32, 0, s.N)
	for k := 0; k < s.NumPhases; k++ {
		for p := 0; p < s.P; p++ {
			out = append(out, s.Phase(p, k)...)
		}
	}
	return out
}
