package schedule

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestScheduleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		wf := randomWavefronts(rng, n, 1+rng.Intn(8))
		p := 1 + rng.Intn(6)
		var s *Schedule
		switch rng.Intn(3) {
		case 0:
			s = Global(wf, p)
		case 1:
			s = Local(wf, p, Striped)
		default:
			s = Local(wf, p, Blocked)
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.P != s.P || got.N != s.N || got.NumPhases != s.NumPhases {
			return false
		}
		if !reflect.DeepEqual(got.Wf, s.Wf) {
			return false
		}
		for q := 0; q < p; q++ {
			if !reflect.DeepEqual(got.Proc(q), s.Proc(q)) {
				return false
			}
		}
		if !reflect.DeepEqual(got.PhasePtr, s.PhasePtr) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2 3",
		"schedule -1 5 2",
		"schedule 2 3 1\nwf 0 0 0\nproc 1 0\nproc 0 3 0 1 2", // out of order
		"schedule 1 2 1\nwf 0 0\nproc 0 5 0 1",               // count too large
		"schedule 1 2 1\nwf 0 0\nproc 0 2 0",                 // truncated indices
		"schedule 1 2 1\nwf 0 0\nproc 0 2 0 0",               // repeated index -> invalid
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read accepted %q", src)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	wf := []int32{0, 0, 1}
	s := Global(wf, 2)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "schedule 2 3 2\n") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "wf 0 0 1") {
		t.Errorf("wf section wrong:\n%s", out)
	}
}
