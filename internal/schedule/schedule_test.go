package schedule

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"doconsider/internal/stencil"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

func meshWavefronts(m, n int) []int32 {
	a := stencil.Laplace2D(m, n)
	d := wavefront.FromLower(a)
	wf, err := wavefront.Compute(d)
	if err != nil {
		panic(err)
	}
	return wf
}

func randomWavefronts(rng *rand.Rand, n, maxWf int) []int32 {
	wf := make([]int32, n)
	// Ensure wavefront numbers are achievable: nondecreasing then shuffled
	// is unnecessary; any assignment is a valid "wavefront vector" for
	// scheduling purposes as long as wavefront 0..max are all present.
	for i := range wf {
		wf[i] = int32(rng.Intn(maxWf))
	}
	wf[0] = 0
	for k := 0; k < maxWf; k++ {
		wf[rng.Intn(n)] = int32(k)
	}
	return wf
}

func TestGlobalWrappedDealing(t *testing.T) {
	// Paper Figures 9-10: 5×7 mesh, sorted list dealt wrapped over p procs.
	wf := meshWavefronts(5, 7)
	s := Global(wf, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases != 11 {
		t.Errorf("phases = %d, want 11", s.NumPhases)
	}
	// Wrapped dealing: processor index counts differ by at most 1.
	st := ComputeStats(s)
	if st.MaxIndices-st.MinIndices > 1 {
		t.Errorf("wrapped dealing imbalance: max=%d min=%d", st.MaxIndices, st.MinIndices)
	}
	// Within each phase counts differ by at most 1.
	if st.PhaseImbalance > 1 {
		t.Errorf("phase imbalance %v > 1", st.PhaseImbalance)
	}
}

func TestGlobalSortedListOrder(t *testing.T) {
	// With one processor the global schedule is exactly the wavefront-sorted
	// index list; on the 5×7 mesh that is the anti-diagonal traversal of
	// paper Figure 9.
	wf := meshWavefronts(5, 7)
	s := Global(wf, 1)
	g := stencil.Grid2D{NX: 5, NY: 7}
	// Expected: for each wavefront w, points with i+j == w in increasing
	// index order.
	var want []int32
	for w := 0; w <= 10; w++ {
		for k := 0; k < g.N(); k++ {
			i, j := g.Coords(k)
			if i+j == w {
				want = append(want, int32(k))
			}
		}
	}
	if !reflect.DeepEqual(s.Proc(0), want) {
		t.Errorf("sorted list mismatch:\n got %v\nwant %v", s.Proc(0), want)
	}
}

func TestLocalPreservesPartition(t *testing.T) {
	wf := meshWavefronts(6, 6)
	s := Local(wf, 3, Striped)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		for _, idx := range s.Proc(p) {
			if int(idx)%3 != p {
				t.Fatalf("striped local schedule moved index %d to proc %d", idx, p)
			}
		}
	}
	sb := Local(wf, 3, Blocked)
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	n := len(wf)
	for p := 0; p < 3; p++ {
		lo, hi := n*p/3, n*(p+1)/3
		for _, idx := range sb.Proc(p) {
			if int(idx) < lo || int(idx) >= hi {
				t.Fatalf("blocked local schedule moved index %d to proc %d", idx, p)
			}
		}
	}
}

func TestLocalStableWithinWavefront(t *testing.T) {
	wf := []int32{0, 1, 0, 1, 0, 1}
	s := Local(wf, 1, Striped)
	want := []int32{0, 2, 4, 1, 3, 5}
	if !reflect.DeepEqual(s.Proc(0), want) {
		t.Errorf("local order = %v, want %v", s.Proc(0), want)
	}
}

func TestNaturalKeepsOrder(t *testing.T) {
	s := Natural(10, 3, Striped)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPhases != 1 {
		t.Errorf("natural phases = %d, want 1", s.NumPhases)
	}
	want := []int32{0, 3, 6, 9}
	if !reflect.DeepEqual(s.Proc(0), want) {
		t.Errorf("proc 0 = %v, want %v", s.Proc(0), want)
	}
	sb := Natural(10, 3, Blocked)
	if got := sb.Proc(0); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("blocked proc 0 = %v", got)
	}
}

func TestGlobalByWorkBalances(t *testing.T) {
	// One wavefront, wildly uneven costs: work-weighted dealing should beat
	// cardinality dealing.
	n := 40
	wf := make([]int32, n)
	cost := make([]float64, n)
	for i := range cost {
		cost[i] = 1
	}
	cost[0] = 50 // one huge index
	p := 4
	byWork := GlobalByWork(wf, cost, p)
	if err := byWork.Validate(); err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, p)
	for q := 0; q < p; q++ {
		for _, idx := range byWork.Proc(q) {
			loads[q] += cost[idx]
		}
	}
	max, min := loads[0], loads[0]
	for _, l := range loads {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	// LPT puts the huge index alone-ish: max load should be near 50, and the
	// others near (39)/3 = 13; cardinality dealing would give ~50+9.
	if max > 51 {
		t.Errorf("work-balanced max load %v too high", max)
	}
}

func TestScheduleValidatePermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		wf := randomWavefronts(rng, n, 1+rng.Intn(10))
		p := 1 + rng.Intn(9)
		for _, s := range []*Schedule{
			Global(wf, p),
			Local(wf, p, Striped),
			Local(wf, p, Blocked),
			Natural(n, p, Striped),
		} {
			if err := s.Validate(); err != nil {
				return false
			}
		}
		cost := make([]float64, n)
		for i := range cost {
			cost[i] = 1 + rng.Float64()
		}
		return GlobalByWork(wf, cost, p).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFlatOrderRespectsPhases(t *testing.T) {
	wf := meshWavefronts(4, 4)
	s := Global(wf, 3)
	flat := s.FlatOrder()
	if len(flat) != 16 {
		t.Fatalf("flat order length %d", len(flat))
	}
	for k := 1; k < len(flat); k++ {
		if wf[flat[k-1]] > wf[flat[k]] {
			t.Fatalf("flat order decreases wavefront at %d", k)
		}
	}
}

func TestComputeStatsSeqPhases(t *testing.T) {
	// Wavefronts striped so that every index of each phase lands on one
	// processor: wf[i] = i means phase i has exactly one index.
	n := 12
	wf := make([]int32, n)
	for i := range wf {
		wf[i] = int32(i)
	}
	s := Local(wf, 4, Striped)
	st := ComputeStats(s)
	if st.SeqPhases != n {
		t.Errorf("SeqPhases = %d, want %d", st.SeqPhases, n)
	}
}

func TestPartitionString(t *testing.T) {
	if Striped.String() != "striped" || Blocked.String() != "blocked" {
		t.Error("partition names wrong")
	}
	if Partition(9).String() == "" {
		t.Error("unknown partition should still format")
	}
}

func TestMoreProcsThanIndices(t *testing.T) {
	wf := []int32{0, 1}
	s := Global(wf, 8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < s.P; p++ {
		total += len(s.Proc(p))
	}
	if total != 2 {
		t.Errorf("scheduled %d indices, want 2", total)
	}
}

// compressedWavefronts builds the unit-level wavefront vector of a
// supernode-compressed mesh factor: far fewer units than rows, with
// levels whose widths collapse unevenly under fusion.
func compressedWavefronts(m, n, maxWidth int) []int32 {
	a := stencil.Laplace2D(m, n)
	deps := wavefront.FromLower(a.LowerWithDiag())
	part := supernode.Detect(deps, supernode.Config{MaxWidth: maxWidth})
	unit := part.Compress(deps)
	wf, err := wavefront.Compute(unit)
	if err != nil {
		panic(err)
	}
	return wf
}

// TestFromOrderCompressedLevels pins FromOrder/Order round trips on the
// level shapes supernodal compression produces: a single unit spanning a
// whole level, alternating singleton/fused runs, and far fewer units
// than the row count that fed them.
func TestFromOrderCompressedLevels(t *testing.T) {
	cases := []struct {
		name string
		wf   []int32
	}{
		{"mesh-compressed", compressedWavefronts(9, 6, 8)},
		{"mesh-tight-cap", compressedWavefronts(12, 12, 2)},
		// One unit alone on its level (a supernode that swallowed the
		// level), between wider levels.
		{"singleton-level", []int32{0, 0, 0, 1, 2, 2}},
		// Alternating singleton/fused-run levels of width 1 and 2.
		{"alternating", []int32{0, 1, 1, 2, 3, 3, 4}},
		// A pure chain after maximal fusion: every level width 1.
		{"chain", []int32{0, 1, 2, 3}},
		// Degenerate orders.
		{"single-unit", []int32{0}},
		{"empty", nil},
	}
	for _, tc := range cases {
		for _, p := range []int{1, 2, 4, 7} {
			s := Global(tc.wf, p)
			if err := s.Validate(); err != nil {
				t.Fatalf("%s/p=%d: %v", tc.name, p, err)
			}
			order := s.Order()
			// Order is wavefront-sorted and FromOrder(Order) reproduces
			// the schedule exactly.
			for k := 1; k < len(order); k++ {
				if tc.wf[order[k-1]] > tc.wf[order[k]] {
					t.Fatalf("%s/p=%d: order positions %d,%d descend levels", tc.name, p, k-1, k)
				}
			}
			s2 := FromOrder(tc.wf, order, p)
			if err := s2.Validate(); err != nil {
				t.Fatalf("%s/p=%d: round trip: %v", tc.name, p, err)
			}
			if !reflect.DeepEqual(s.Idx, s2.Idx) || !reflect.DeepEqual(s.PhasePtr, s2.PhasePtr) || s.NumPhases != s2.NumPhases {
				t.Fatalf("%s/p=%d: FromOrder(Order()) does not reproduce the schedule", tc.name, p)
			}
		}
	}
}

// TestFromOrderEmptyInteriorLevel pins the empty-phase behavior an
// incremental (repaired or re-spliced) wavefront vector can exhibit: a
// level number with no units still yields a structurally valid schedule
// with an empty phase rather than a collapsed or misassigned one.
func TestFromOrderEmptyInteriorLevel(t *testing.T) {
	wf := []int32{0, 0, 2, 2, 2} // level 1 empty after compression
	for _, p := range []int{1, 3} {
		s := Global(wf, p)
		if err := s.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if s.NumPhases != 3 {
			t.Fatalf("p=%d: phases = %d, want 3 (empty interior level kept)", p, s.NumPhases)
		}
		order := s.Order()
		s2 := FromOrder(wf, order, p)
		if !reflect.DeepEqual(s.Idx, s2.Idx) || !reflect.DeepEqual(s.PhasePtr, s2.PhasePtr) {
			t.Fatalf("p=%d: round trip differs with empty interior level", p)
		}
	}
}
