package schedule

import (
	"bufio"
	"fmt"
	"io"
)

// Write serializes the schedule in a line-oriented text format, so an
// inspector-built schedule can be saved and reused across program runs —
// the amortization pattern the paper's successors (PARTI/CHAOS) made
// standard practice. Format:
//
//	schedule <P> <N> <NumPhases>
//	wf <N ints>
//	proc <p> <count> <indices...>   (P lines)
func (s *Schedule) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "schedule %d %d %d\n", s.P, s.N, s.NumPhases); err != nil {
		return err
	}
	if _, err := fmt.Fprint(bw, "wf"); err != nil {
		return err
	}
	for _, v := range s.Wf {
		if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for p := 0; p < s.P; p++ {
		if _, err := fmt.Fprintf(bw, "proc %d %d", p, s.ProcLen(p)); err != nil {
			return err
		}
		for _, idx := range s.Proc(p) {
			if _, err := fmt.Fprintf(bw, " %d", idx); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write, rebuilds the phase pointers
// and validates the result.
func Read(r io.Reader) (*Schedule, error) {
	br := bufio.NewReader(r)
	var tag string
	var p, n, phases int
	if _, err := fmt.Fscan(br, &tag, &p, &n, &phases); err != nil {
		return nil, fmt.Errorf("schedule: reading header: %w", err)
	}
	if tag != "schedule" {
		return nil, fmt.Errorf("schedule: bad header tag %q", tag)
	}
	if p < 1 || n < 0 || phases < 0 {
		return nil, fmt.Errorf("schedule: implausible header %d/%d/%d", p, n, phases)
	}
	s := &Schedule{
		P: p, N: n, NumPhases: phases,
		Wf:      make([]int32, n),
		Idx:     make([]int32, 0, n),
		ProcPtr: make([]int32, p+1),
	}
	if _, err := fmt.Fscan(br, &tag); err != nil || tag != "wf" {
		return nil, fmt.Errorf("schedule: expected wf section (err %v)", err)
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fscan(br, &s.Wf[i]); err != nil {
			return nil, fmt.Errorf("schedule: reading wf[%d]: %w", i, err)
		}
	}
	for q := 0; q < p; q++ {
		var id, count int
		if _, err := fmt.Fscan(br, &tag, &id, &count); err != nil || tag != "proc" {
			return nil, fmt.Errorf("schedule: expected proc section %d (err %v)", q, err)
		}
		if id != q {
			return nil, fmt.Errorf("schedule: proc sections out of order: got %d, want %d", id, q)
		}
		if count < 0 || count > n {
			return nil, fmt.Errorf("schedule: proc %d count %d out of range", q, count)
		}
		for k := 0; k < count; k++ {
			var idx int32
			if _, err := fmt.Fscan(br, &idx); err != nil {
				return nil, fmt.Errorf("schedule: reading proc %d index %d: %w", q, k, err)
			}
			s.Idx = append(s.Idx, idx)
		}
		s.ProcPtr[q+1] = int32(len(s.Idx))
	}
	s.buildPhasePtrs()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: deserialized schedule invalid: %w", err)
	}
	return s, nil
}
