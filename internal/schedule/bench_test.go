package schedule

import (
	"testing"

	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

func benchWf(b *testing.B) ([]int32, *wavefront.Deps) {
	b.Helper()
	a := stencil.Laplace2D(150, 150)
	d := wavefront.FromLower(a)
	wf, err := wavefront.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	return wf, d
}

func BenchmarkGlobal(b *testing.B) {
	wf, _ := benchWf(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Global(wf, 16)
	}
}

func BenchmarkLocalStriped(b *testing.B) {
	wf, _ := benchWf(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local(wf, 16, Striped)
	}
}

func BenchmarkGlobalByWork(b *testing.B) {
	wf, _ := benchWf(b)
	cost := make([]float64, len(wf))
	for i := range cost {
		cost[i] = 1 + float64(i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalByWork(wf, cost, 16)
	}
}

func BenchmarkMergePhases(b *testing.B) {
	wf, d := benchWf(b)
	s := Local(wf, 16, Blocked)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergePhases(s, d)
	}
}
