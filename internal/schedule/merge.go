package schedule

import (
	"doconsider/internal/wavefront"
)

// MergePhases reduces the number of global synchronizations of a schedule
// by greedily coalescing consecutive wavefront phases whenever doing so is
// safe: a window of phases may share one barrier if every dependence whose
// producer and consumer both fall inside the window stays on a single
// processor (each processor's list is wavefront-ordered, so same-processor
// dependences inside a window are satisfied by program order alone).
//
// This implements the spirit of the paper's reference [13] (Nicol & Saltz,
// "Optimal Pre-Scheduling of Problem Remappings"): rearranging the global
// synchronizations to trade between load balance and synchronization
// cost. The returned schedule has the same per-processor index orders but
// fewer, coarser phases; executing it with the pre-scheduled executor is
// equivalent to the original.
func MergePhases(s *Schedule, deps *wavefront.Deps) *Schedule {
	owner := make([]int32, s.N)
	for p := 0; p < s.P; p++ {
		for _, idx := range s.Proc(p) {
			owner[idx] = int32(p)
		}
	}
	// phaseMembers[k] lists the indices of wavefront k.
	phaseMembers := make([][]int32, s.NumPhases)
	for idx := int32(0); int(idx) < s.N; idx++ {
		w := s.Wf[idx]
		phaseMembers[w] = append(phaseMembers[w], idx)
	}
	// Greedy window extension: superWf[idx] = merged phase number.
	superWf := make([]int32, s.N)
	super := int32(0)
	windowStart := 0 // first original phase of the current window
	assign := func(k int, sp int32) {
		for _, idx := range phaseMembers[k] {
			superWf[idx] = sp
		}
	}
	if s.NumPhases > 0 {
		assign(0, 0)
	}
	for k := 1; k < s.NumPhases; k++ {
		safe := true
	check:
		for _, idx := range phaseMembers[k] {
			for _, t := range deps.On(int(idx)) {
				if int(s.Wf[t]) >= windowStart && owner[t] != owner[idx] {
					safe = false
					break check
				}
			}
		}
		if !safe {
			super++
			windowStart = k
		}
		assign(k, super)
	}
	merged := &Schedule{
		P:         s.P,
		N:         s.N,
		NumPhases: int(super) + 1,
		Wf:        superWf,
		Idx:       append([]int32(nil), s.Idx...),
		ProcPtr:   append([]int32(nil), s.ProcPtr...),
	}
	if s.NumPhases == 0 {
		merged.NumPhases = 0
	}
	merged.buildPhasePtrs()
	return merged
}
