// Package schedule turns a wavefront assignment into per-processor
// execution schedules — the "scheduling procedures that reorder and
// repartition index sets of loops" of paper Section 1.
//
// Two families are implemented, matching Section 2.3:
//
//   - Global scheduling sorts the whole index set by wavefront number and
//     deals the sorted list to processors in a wrapped manner, evenly
//     partitioning the work in each wavefront.
//   - Local scheduling starts from a fixed assignment of indices to
//     processors (striped or blocked) and merely reorders each processor's
//     indices by increasing wavefront number.
//
// Schedules are stored flat: one contiguous index buffer with CSR-style
// per-processor and per-phase offset arrays. The flat layout costs one
// allocation per schedule and keeps each processor's execution list
// contiguous in memory, which matters because the executor walks it on
// every Run while the builder runs only once (the paper's amortization
// argument, §5.1.1, applied to the data layout).
package schedule

import (
	"fmt"
	"sort"

	"doconsider/internal/wavefront"
)

// Partition names the initial index→processor assignment used by local
// scheduling (and by the executors' default data distribution).
type Partition int

const (
	// Striped assigns index i to processor i mod P (the paper's "striped
	// manner", §5.1.4).
	Striped Partition = iota
	// Blocked assigns contiguous slabs of roughly n/P indices per processor
	// (the Appendix II distribution for SAXPY/dot/matvec).
	Blocked
)

// String returns the partition name.
func (p Partition) String() string {
	switch p {
	case Striped:
		return "striped"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// Schedule is a complete executor plan: for each of P processors, the
// ordered list of loop indices it executes, partitioned into phases of
// equal wavefront number.
//
// The plan is stored in CSR form: Idx is a single contiguous buffer
// holding every processor's execution list back to back; ProcPtr[p] ..
// ProcPtr[p+1] bounds processor p's slice of it, and PhasePtr (stride
// NumPhases+1 per processor, absolute offsets into Idx) bounds each
// wavefront phase within that slice. Use Proc and Phase to view the
// buffer; the returned slices alias it and must not be modified.
type Schedule struct {
	P         int     // number of processors
	N         int     // number of loop indices
	NumPhases int     // number of wavefronts
	Wf        []int32 // wavefront number per index
	Idx       []int32 // flat execution lists, processor-major
	ProcPtr   []int32 // len P+1: Idx[ProcPtr[p]:ProcPtr[p+1]] = processor p's list
	PhasePtr  []int32 // len P*(NumPhases+1): absolute phase bounds per processor
}

// Proc returns the ordered execution list of processor p. The slice
// aliases the schedule and must not be modified.
func (s *Schedule) Proc(p int) []int32 {
	return s.Idx[s.ProcPtr[p]:s.ProcPtr[p+1]]
}

// ProcLen returns the number of indices assigned to processor p.
func (s *Schedule) ProcLen(p int) int {
	return int(s.ProcPtr[p+1] - s.ProcPtr[p])
}

// Phase returns the indices processor p executes during phase k. The slice
// aliases the schedule and must not be modified.
func (s *Schedule) Phase(p, k int) []int32 {
	base := p * (s.NumPhases + 1)
	return s.Idx[s.PhasePtr[base+k]:s.PhasePtr[base+k+1]]
}

// Global builds a global schedule on nproc processors: indices are sorted
// by (wavefront, index) — for a naturally ordered mesh this reproduces the
// anti-diagonal list of paper Figure 9 — and dealt to processors in a
// wrapped manner (Figure 10).
func Global(wf []int32, nproc int) *Schedule {
	return FromOrder(wf, sortedByWavefront(wf), nproc)
}

// FromOrder builds a global-style schedule from a caller-supplied
// execution order: position k of order is dealt to processor k mod P
// (the wrapped dealing of Figure 10). order must list every index exactly
// once with non-decreasing wavefront numbers — the invariant Global and
// GlobalRanked establish by sorting, and which an incremental schedule
// repair (internal/delta) re-establishes by merging a repaired order
// instead of re-sorting from scratch.
func FromOrder(wf []int32, order []int32, nproc int) *Schedule {
	s := newSchedule(wf, nproc, len(order))
	// Wrapped dealing: position k of the sorted list goes to processor
	// k mod P, so the per-processor counts are exactly those of a striped
	// partition (ceil((n-p)/P) for processor p).
	partitionPtrs(s, Striped)
	pos := fillStart(s)
	for k, idx := range order {
		p := k % s.P
		s.Idx[pos[p]] = idx
		pos[p]++
	}
	s.buildPhasePtrs()
	return s
}

// Order recovers the global dealing order of a wrapped-deal schedule
// (Global, GlobalRanked, FromOrder): position k was dealt to processor
// k mod P at slot k/P. It is the inverse of FromOrder's dealing and lets
// an incremental repair splice a few moved indices into the existing
// order in O(N) instead of re-sorting. The result is unspecified for
// schedules built with a non-wrapped partition (Local, Natural,
// GlobalByWork).
func (s *Schedule) Order() []int32 {
	order := make([]int32, s.N)
	for k := 0; k < s.N; k++ {
		order[k] = s.Idx[int(s.ProcPtr[k%s.P])+k/s.P]
	}
	return order
}

// GlobalRanked is Global with a caller-supplied within-wavefront order:
// indices are sorted by (wavefront, rank[i], index) and dealt wrapped.
// The rank typically comes from a locality-improving ordering such as
// reverse Cuthill-McKee (reorder.RCM's Permutation.Inv), which cannot
// change the wavefronts — DAG depth is invariant under relabeling — but
// places rows that reference each other near each other in the execution
// lists, so the executors' busy-wait reads land on recently produced
// entries. Because only the order within a wavefront changes, every
// executor produces bit-identical results to the plain Global schedule.
func GlobalRanked(wf []int32, rank []int32, nproc int) *Schedule {
	order := sortedByWavefront(wf)
	for lo := 0; lo < len(order); {
		hi := lo
		w := wf[order[lo]]
		for hi < len(order) && wf[order[hi]] == w {
			hi++
		}
		seg := order[lo:hi]
		sort.SliceStable(seg, func(a, b int) bool { return rank[seg[a]] < rank[seg[b]] })
		lo = hi
	}
	return FromOrder(wf, order, nproc)
}

// GlobalByWork is the work-weighted variant of Global: within each
// wavefront, indices are dealt greedily to the least-loaded processor
// (longest-processing-time order), balancing cost rather than cardinality.
// cost[i] is the execution cost of index i.
func GlobalByWork(wf []int32, cost []float64, nproc int) *Schedule {
	n := len(wf)
	order := sortedByWavefront(wf)
	s := newSchedule(wf, nproc, n)
	load := make([]float64, s.P)
	owner := make([]int32, n)
	// Process one wavefront at a time, assigning each index an owner.
	for lo := 0; lo < n; {
		hi := lo
		w := wf[order[lo]]
		for hi < n && wf[order[hi]] == w {
			hi++
		}
		members := append([]int32(nil), order[lo:hi]...)
		sort.SliceStable(members, func(a, b int) bool {
			return cost[members[a]] > cost[members[b]]
		})
		for _, idx := range members {
			p := argmin(load)
			owner[idx] = int32(p)
			s.ProcPtr[p+1]++
			load[p] += cost[idx]
		}
		lo = hi
	}
	for p := 0; p < s.P; p++ {
		s.ProcPtr[p+1] += s.ProcPtr[p]
	}
	// Fill in global (wavefront, index) order so each processor's list is
	// ordered by (wavefront, index) — deterministic regardless of the
	// greedy dealing order within a wavefront.
	pos := fillStart(s)
	for _, idx := range order {
		p := owner[idx]
		s.Idx[pos[p]] = idx
		pos[p]++
	}
	s.buildPhasePtrs()
	return s
}

// Local builds a local schedule: the initial partition fixes which
// processor owns each index, and each processor's list is then ordered by
// increasing wavefront number, preserving the original relative order of
// equal-wavefront indices. The local sort is a stable counting sort, so it
// stays cheap relative to a sequential iteration (the whole point of local
// scheduling, §5.1.5).
func Local(wf []int32, nproc int, part Partition) *Schedule {
	n := len(wf)
	s := newSchedule(wf, nproc, n)
	partitionPtrs(s, part)
	// The original per-processor order is increasing index for both
	// partitions, so filling in global (wavefront, index) order yields each
	// processor's list stably sorted by wavefront.
	pos := fillStart(s)
	for _, idx := range sortedByWavefront(wf) {
		p := partOwner(int(idx), n, s.P, part)
		s.Idx[pos[p]] = idx
		pos[p]++
	}
	s.buildPhasePtrs()
	return s
}

// Natural builds the degenerate schedule that keeps the original index
// order under the given partition with no wavefront reordering; with the
// self-executing synchronization this is exactly a classic doacross loop
// (§5.1.2). Phases are not meaningful for a Natural schedule; each
// processor's whole list forms a single phase.
func Natural(n, nproc int, part Partition) *Schedule {
	wf := make([]int32, n) // all zero: one phase
	s := newSchedule(wf, nproc, n)
	partitionPtrs(s, part)
	pos := fillStart(s)
	for i := 0; i < n; i++ {
		p := partOwner(i, n, s.P, part)
		s.Idx[pos[p]] = int32(i)
		pos[p]++
	}
	s.buildPhasePtrs()
	return s
}

// partOwner returns the processor owning index i under the partition.
func partOwner(i, n, nproc int, part Partition) int {
	switch part {
	case Striped:
		return i % nproc
	case Blocked:
		// Inverse of the lo = n*p/nproc block bounds.
		p := (i*nproc + nproc - 1) / n
		for n*p/nproc > i {
			p--
		}
		for n*(p+1)/nproc <= i {
			p++
		}
		return p
	default:
		panic("schedule: unknown partition")
	}
}

// partitionPtrs fills ProcPtr with the per-processor counts of the given
// partition (striped: near-equal wrapped counts; blocked: slab bounds).
func partitionPtrs(s *Schedule, part Partition) {
	switch part {
	case Striped:
		for p := 0; p < s.P; p++ {
			s.ProcPtr[p+1] = s.ProcPtr[p] + int32((s.N-p+s.P-1)/s.P)
		}
	case Blocked:
		for p := 0; p < s.P; p++ {
			s.ProcPtr[p+1] = int32(s.N * (p + 1) / s.P)
		}
	default:
		panic("schedule: unknown partition")
	}
}

// fillStart returns a scratch copy of the processor start offsets, used as
// running fill cursors during construction.
func fillStart(s *Schedule) []int32 {
	pos := make([]int32, s.P)
	copy(pos, s.ProcPtr[:s.P])
	return pos
}

func newSchedule(wf []int32, nproc, n int) *Schedule {
	if nproc < 1 {
		nproc = 1
	}
	nw := wavefront.NumWavefronts(wf)
	return &Schedule{
		P:         nproc,
		N:         n,
		NumPhases: nw,
		Wf:        wf,
		Idx:       make([]int32, n),
		ProcPtr:   make([]int32, nproc+1),
		PhasePtr:  make([]int32, nproc*(nw+1)),
	}
}

// buildPhasePtrs scans each processor's (wavefront-sorted) index list and
// records phase boundaries for all NumPhases phases, including empty ones —
// the pre-scheduled executor must still participate in the barrier for a
// phase in which it has no work (paper Figure 5). Offsets are absolute
// positions in the flat Idx buffer.
func (s *Schedule) buildPhasePtrs() {
	stride := s.NumPhases + 1
	if len(s.PhasePtr) != s.P*stride {
		s.PhasePtr = make([]int32, s.P*stride)
	}
	for p := 0; p < s.P; p++ {
		idxs := s.Proc(p)
		base := p * stride
		off := s.ProcPtr[p]
		pos := 0
		for k := 0; k < s.NumPhases; k++ {
			s.PhasePtr[base+k] = off + int32(pos)
			for pos < len(idxs) && s.Wf[idxs[pos]] == int32(k) {
				pos++
			}
		}
		s.PhasePtr[base+s.NumPhases] = off + int32(pos)
	}
}

// sortedByWavefront returns all indices sorted by (wavefront, index).
// Counting sort keeps this O(n + #wavefronts), cheaper than the sequential
// solve it is amortized against (paper §2.3).
func sortedByWavefront(wf []int32) []int32 {
	n := len(wf)
	nw := wavefront.NumWavefronts(wf)
	counts := make([]int32, nw+1)
	for _, w := range wf {
		counts[w+1]++
	}
	for k := 0; k < nw; k++ {
		counts[k+1] += counts[k]
	}
	order := make([]int32, n)
	next := counts
	for i := 0; i < n; i++ {
		order[next[wf[i]]] = int32(i)
		next[wf[i]]++
	}
	return order
}

func argmin(x []float64) int {
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}
