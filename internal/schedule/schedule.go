// Package schedule turns a wavefront assignment into per-processor
// execution schedules — the "scheduling procedures that reorder and
// repartition index sets of loops" of paper Section 1.
//
// Two families are implemented, matching Section 2.3:
//
//   - Global scheduling sorts the whole index set by wavefront number and
//     deals the sorted list to processors in a wrapped manner, evenly
//     partitioning the work in each wavefront.
//   - Local scheduling starts from a fixed assignment of indices to
//     processors (striped or blocked) and merely reorders each processor's
//     indices by increasing wavefront number.
package schedule

import (
	"fmt"
	"sort"

	"doconsider/internal/wavefront"
)

// Partition names the initial index→processor assignment used by local
// scheduling (and by the executors' default data distribution).
type Partition int

const (
	// Striped assigns index i to processor i mod P (the paper's "striped
	// manner", §5.1.4).
	Striped Partition = iota
	// Blocked assigns contiguous slabs of roughly n/P indices per processor
	// (the Appendix II distribution for SAXPY/dot/matvec).
	Blocked
)

// String returns the partition name.
func (p Partition) String() string {
	switch p {
	case Striped:
		return "striped"
	case Blocked:
		return "blocked"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// Schedule is a complete executor plan: for each of P processors, the
// ordered list of loop indices it executes, partitioned into phases of
// equal wavefront number.
type Schedule struct {
	P         int       // number of processors
	N         int       // number of loop indices
	NumPhases int       // number of wavefronts
	Wf        []int32   // wavefront number per index
	Indices   [][]int32 // Indices[p] = execution order for processor p
	PhasePtr  [][]int32 // PhasePtr[p][k]..PhasePtr[p][k+1] bounds phase k on p
}

// Phase returns the indices processor p executes during phase k. The slice
// aliases the schedule and must not be modified.
func (s *Schedule) Phase(p, k int) []int32 {
	return s.Indices[p][s.PhasePtr[p][k]:s.PhasePtr[p][k+1]]
}

// Global builds a global schedule on nproc processors: indices are sorted
// by (wavefront, index) — for a naturally ordered mesh this reproduces the
// anti-diagonal list of paper Figure 9 — and dealt to processors in a
// wrapped manner (Figure 10).
func Global(wf []int32, nproc int) *Schedule {
	n := len(wf)
	order := sortedByWavefront(wf)
	s := newSchedule(wf, nproc, n)
	for k, idx := range order {
		p := k % s.P
		s.Indices[p] = append(s.Indices[p], idx)
	}
	s.buildPhasePtrs()
	return s
}

// GlobalByWork is the work-weighted variant of Global: within each
// wavefront, indices are dealt greedily to the least-loaded processor
// (longest-processing-time order), balancing cost rather than cardinality.
// cost[i] is the execution cost of index i.
func GlobalByWork(wf []int32, cost []float64, nproc int) *Schedule {
	n := len(wf)
	order := sortedByWavefront(wf)
	s := newSchedule(wf, nproc, n)
	load := make([]float64, s.P)
	// Process one wavefront at a time.
	for lo := 0; lo < n; {
		hi := lo
		w := wf[order[lo]]
		for hi < n && wf[order[hi]] == w {
			hi++
		}
		members := append([]int32(nil), order[lo:hi]...)
		sort.SliceStable(members, func(a, b int) bool {
			return cost[members[a]] > cost[members[b]]
		})
		for _, idx := range members {
			p := argmin(load)
			s.Indices[p] = append(s.Indices[p], idx)
			load[p] += cost[idx]
		}
		lo = hi
	}
	// Keep each phase internally ordered by index for determinism.
	for p := 0; p < s.P; p++ {
		idxs := s.Indices[p]
		sort.SliceStable(idxs, func(a, b int) bool {
			if wf[idxs[a]] != wf[idxs[b]] {
				return wf[idxs[a]] < wf[idxs[b]]
			}
			return idxs[a] < idxs[b]
		})
	}
	s.buildPhasePtrs()
	return s
}

// Local builds a local schedule: the initial partition fixes which
// processor owns each index, and each processor's list is then stably
// sorted by wavefront number, preserving the original relative order of
// equal-wavefront indices.
func Local(wf []int32, nproc int, part Partition) *Schedule {
	n := len(wf)
	s := newSchedule(wf, nproc, n)
	switch part {
	case Striped:
		for i := 0; i < n; i++ {
			s.Indices[i%s.P] = append(s.Indices[i%s.P], int32(i))
		}
	case Blocked:
		for p := 0; p < s.P; p++ {
			lo, hi := n*p/s.P, n*(p+1)/s.P
			for i := lo; i < hi; i++ {
				s.Indices[p] = append(s.Indices[p], int32(i))
			}
		}
	default:
		panic("schedule: unknown partition")
	}
	// Stable counting sort of each processor's list by wavefront number:
	// the local sort must stay cheap relative to a sequential iteration
	// (the whole point of local scheduling, §5.1.5).
	nw := s.NumPhases
	counts := make([]int32, nw+1)
	for p := 0; p < s.P; p++ {
		idxs := s.Indices[p]
		for k := range counts {
			counts[k] = 0
		}
		for _, idx := range idxs {
			counts[wf[idx]+1]++
		}
		for k := 0; k < nw; k++ {
			counts[k+1] += counts[k]
		}
		sorted := make([]int32, len(idxs))
		for _, idx := range idxs {
			sorted[counts[wf[idx]]] = idx
			counts[wf[idx]]++
		}
		s.Indices[p] = sorted
	}
	s.buildPhasePtrs()
	return s
}

// Natural builds the degenerate schedule that keeps the original index
// order under the given partition with no wavefront reordering; with the
// self-executing synchronization this is exactly a classic doacross loop
// (§5.1.2). Phases are not meaningful for a Natural schedule; each
// processor's whole list forms a single phase.
func Natural(n, nproc int, part Partition) *Schedule {
	wf := make([]int32, n) // all zero: one phase
	s := newSchedule(wf, nproc, n)
	switch part {
	case Striped:
		for i := 0; i < n; i++ {
			s.Indices[i%s.P] = append(s.Indices[i%s.P], int32(i))
		}
	case Blocked:
		for p := 0; p < s.P; p++ {
			lo, hi := n*p/s.P, n*(p+1)/s.P
			for i := lo; i < hi; i++ {
				s.Indices[p] = append(s.Indices[p], int32(i))
			}
		}
	default:
		panic("schedule: unknown partition")
	}
	s.buildPhasePtrs()
	return s
}

func newSchedule(wf []int32, nproc, n int) *Schedule {
	if nproc < 1 {
		nproc = 1
	}
	s := &Schedule{
		P:         nproc,
		N:         n,
		NumPhases: wavefront.NumWavefronts(wf),
		Wf:        wf,
		Indices:   make([][]int32, nproc),
		PhasePtr:  make([][]int32, nproc),
	}
	for p := range s.Indices {
		s.Indices[p] = make([]int32, 0, n/nproc+1)
	}
	return s
}

// buildPhasePtrs scans each processor's (wavefront-sorted) index list and
// records phase boundaries for all NumPhases phases, including empty ones —
// the pre-scheduled executor must still participate in the barrier for a
// phase in which it has no work (paper Figure 5).
func (s *Schedule) buildPhasePtrs() {
	for p := 0; p < s.P; p++ {
		ptr := make([]int32, s.NumPhases+1)
		idxs := s.Indices[p]
		pos := 0
		for k := 0; k < s.NumPhases; k++ {
			ptr[k] = int32(pos)
			for pos < len(idxs) && s.Wf[idxs[pos]] == int32(k) {
				pos++
			}
		}
		ptr[s.NumPhases] = int32(pos)
		s.PhasePtr[p] = ptr
	}
}

// sortedByWavefront returns all indices sorted by (wavefront, index).
// Counting sort keeps this O(n + #wavefronts), cheaper than the sequential
// solve it is amortized against (paper §2.3).
func sortedByWavefront(wf []int32) []int32 {
	n := len(wf)
	nw := wavefront.NumWavefronts(wf)
	counts := make([]int32, nw+1)
	for _, w := range wf {
		counts[w+1]++
	}
	for k := 0; k < nw; k++ {
		counts[k+1] += counts[k]
	}
	order := make([]int32, n)
	next := counts
	for i := 0; i < n; i++ {
		order[next[wf[i]]] = int32(i)
		next[wf[i]]++
	}
	return order
}

func argmin(x []float64) int {
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}
