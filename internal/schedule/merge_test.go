package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doconsider/internal/wavefront"
)

func randomBackwardDeps(rng *rand.Rand, n, maxDeg int) *wavefront.Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		for k := 0; k < rng.Intn(maxDeg+1); k++ {
			adj[i] = append(adj[i], int32(rng.Intn(i)))
		}
	}
	return wavefront.FromAdjacency(adj)
}

func TestMergePhasesChainOnOneProcessor(t *testing.T) {
	// A pure chain on 1 processor: every dependence is same-processor, so
	// all phases merge into one.
	n := 20
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	deps := wavefront.FromAdjacency(adj)
	wf, _ := wavefront.Compute(deps)
	s := Global(wf, 1)
	m := MergePhases(s, deps)
	if m.NumPhases != 1 {
		t.Errorf("merged phases = %d, want 1", m.NumPhases)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePhasesChainWrapped(t *testing.T) {
	// The same chain wrapped over 2 processors alternates owners, so no
	// merging is safe: every consecutive pair crosses processors.
	n := 10
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	deps := wavefront.FromAdjacency(adj)
	wf, _ := wavefront.Compute(deps)
	s := Global(wf, 2) // index i -> proc i%2 (each wavefront has one index)
	m := MergePhases(s, deps)
	if m.NumPhases != n {
		t.Errorf("merged phases = %d, want %d", m.NumPhases, n)
	}
}

func TestMergePhasesNeverIncreassesPhases(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(150)
		deps := randomBackwardDeps(rng, n, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			return false
		}
		p := 1 + rng.Intn(6)
		for _, s := range []*Schedule{Global(wf, p), Local(wf, p, Striped)} {
			m := MergePhases(s, deps)
			if m.NumPhases > s.NumPhases {
				return false
			}
			if err := m.Validate(); err != nil {
				return false
			}
			// Same per-processor orders.
			for q := 0; q < p; q++ {
				if len(m.Proc(q)) != len(s.Proc(q)) {
					return false
				}
				for k := range m.Proc(q) {
					if m.Proc(q)[k] != s.Proc(q)[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMergePhasesSafety verifies the merge invariant directly: within any
// merged phase, every dependence between two indices of that phase stays
// on one processor and respects the per-processor order.
func TestMergePhasesSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		deps := randomBackwardDeps(rng, n, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		p := 1 + rng.Intn(5)
		s := Global(wf, p)
		m := MergePhases(s, deps)
		owner := make([]int, n)
		pos := make([]int, n)
		for q := 0; q < m.P; q++ {
			for k, idx := range m.Proc(q) {
				owner[idx] = q
				pos[idx] = k
			}
		}
		for i := 0; i < n; i++ {
			for _, d := range deps.On(i) {
				if m.Wf[i] == m.Wf[d] {
					if owner[i] != owner[d] {
						t.Fatalf("trial %d: merged phase has cross-processor dep %d->%d", trial, i, d)
					}
					if pos[d] >= pos[i] {
						t.Fatalf("trial %d: same-proc dep %d->%d out of order", trial, i, d)
					}
				}
				if m.Wf[i] < m.Wf[d] {
					t.Fatalf("trial %d: consumer phase before producer", trial)
				}
			}
		}
	}
}

func TestMergePhasesEmptySchedule(t *testing.T) {
	deps := wavefront.FromAdjacency(nil)
	s := Natural(0, 2, Striped)
	m := MergePhases(s, deps)
	if m.N != 0 {
		t.Error("empty merge broken")
	}
}
