// Package obs is the request-scoped observability layer: a
// zero-allocation span recorder stamped as a request flows through the
// serving pipeline (admission → decode → factor resolution → coalescer
// → plan cache → delta repair → executor → encode), a lock-free ring
// the completed traces land in, per-wavefront-level execution clocks
// sampled at a configurable rate, and the pprof/runtime debug handler
// the CLI mounts on a separate listener.
//
// The design constraint is the serving tier's warm binary path: the
// whole record-stamp-publish cycle must perform no heap allocations, so
// a Trace is a fixed-size, pointer-free struct (pooled alongside the
// request arena by the server), the strategy name is an inline byte
// array, and level timings accumulate into a fixed array of atomics.
// Readers copy traces out of the ring by value; only the HTTP rendering
// layer ever turns them into heap-allocated JSON.
package obs

import "time"

// Stage indexes the pipeline segments a trace attributes latency to.
// Every nanosecond between Begin and Finish lands in exactly one stage
// (Lap and AttributeSubmit partition the timeline), so the per-stage
// durations of a finished trace sum to its total by construction —
// /metrics, /v1/stats and /v1/trace can never disagree.
type Stage uint8

const (
	// StageAdmission covers the method/drain/in-flight checks.
	StageAdmission Stage = iota
	// StageDecode covers wire decode and right-hand-side validation.
	StageDecode
	// StageFactor covers factor resolution: hot ring, by-fingerprint
	// cache, inline build+validation, or drift materialization.
	StageFactor
	// StageCoalesce is time spent waiting in (or for) a coalescer
	// window or a sealed pass, excluding the pass's own plan+execute.
	StageCoalesce
	// StagePlan covers the plan-cache lookup and, on a miss, the
	// inspector run and planner pricing (minus any repair time).
	StagePlan
	// StageRepair is the delta-repair portion of a plan-cache miss.
	StageRepair
	// StageExecute is the executor pass itself.
	StageExecute
	// StageEncode covers response framing and serialization.
	StageEncode

	// NumStages is the stage count; Trace.Stages is indexed by Stage.
	NumStages = int(StageEncode) + 1
)

var stageNames = [NumStages]string{
	"admission", "decode", "factor", "coalesce",
	"plan", "repair", "execute", "encode",
}

// String returns the stable metric-label name of the stage.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns the stage names in Stage order (for label
// registration and table rendering).
func StageNames() [NumStages]string { return stageNames }

// Wire identifies the wire format a traced request arrived on.
type Wire uint8

const (
	WireJSON Wire = iota
	WireBinary
)

// String returns the stable metric-label name of the wire.
func (w Wire) String() string {
	if w == WireBinary {
		return "binary"
	}
	return "json"
}

// MaxLevels bounds the per-wavefront-level timing array carried by a
// sampled trace. Levels beyond the bound accumulate into the last
// bucket; NumLevels still reports the true level count.
const MaxLevels = 48

// StrategyLen bounds the inline executor-strategy name (matches the
// binary wire format's strategy reserve).
const StrategyLen = 24

// TenantLen bounds the inline tenant name carried by a trace. Wire
// tenant names may be longer (up to the server's limit); the trace
// keeps a truncated copy — enough to attribute, still pointer-free.
const TenantLen = 24

// Trace is one request's span record. It is fixed-size and
// pointer-free so the server can pool it with the request scratch and
// the ring can copy it by value — no allocation anywhere on the path.
//
// The stamping protocol: Begin resets the trace and starts the lap
// clock; each Lap(stage) charges the time since the previous stamp to
// that stage; AttributeSubmit splits the coalescer round-trip into
// wait/plan/repair/execute using the pass's own measurements; Finish
// charges the final lap and freezes TotalNs. Because every lap charges
// its full duration to some stage, StageSum() == TotalNs for a
// finished trace.
type Trace struct {
	ID      uint64
	Start   time.Time
	TotalNs int64
	Wire    Wire
	Sampled bool // carries per-level timings in LevelNs
	Status  int32
	N       int32 // factor dimension
	Batch   int32 // right-hand sides in this request
	Fused   int32 // requests that shared the executor pass
	Width   int32 // total right-hand sides in the pass

	StratLen int32
	Strat    [StrategyLen]byte

	// Tenant attribution: the requesting tenant's name (inline,
	// truncated at TenantLen) and priority class (0 batch, 1 latency).
	TenLen int32
	Ten    [TenantLen]byte
	Class  uint8

	Stages [NumStages]int64 // nanoseconds per stage

	// NumLevels is the true wavefront level count of a sampled pass;
	// LevelNs holds per-level executor time for the first MaxLevels
	// levels (the tail folds into the last slot).
	NumLevels int32
	LevelNs   [MaxLevels]int64

	mark time.Time // lap clock: time of the previous stamp
}

// Begin resets the trace in place and starts its lap clock at now.
func (t *Trace) Begin(wire Wire, now time.Time) {
	*t = Trace{Wire: wire, Start: now, mark: now}
}

// Active reports whether the trace has been Begun (used by entry points
// that may be called directly, without the HTTP handler's Begin).
func (t *Trace) Active() bool { return !t.Start.IsZero() }

// Lap charges the time since the previous stamp to stage.
func (t *Trace) Lap(s Stage) {
	now := time.Now()
	t.Stages[s] += now.Sub(t.mark).Nanoseconds()
	t.mark = now
}

// AttributeSubmit charges the lap since the previous stamp — the full
// coalescer round-trip — across coalesce-wait, plan, repair and
// execute. planNs and execNs are the pass's own measurements (taken on
// the pass goroutine for fused windows); repairNs is the delta-repair
// share of planNs. The segments are clamped to partition the lap
// exactly, so StageSum still equals TotalNs even when a fused pass's
// timings overlap this request's wait asymmetrically.
func (t *Trace) AttributeSubmit(planNs, repairNs, execNs int64) {
	now := time.Now()
	lap := now.Sub(t.mark).Nanoseconds()
	t.mark = now
	if lap < 0 {
		lap = 0
	}
	if execNs < 0 {
		execNs = 0
	}
	if execNs > lap {
		execNs = lap
	}
	if planNs < 0 {
		planNs = 0
	}
	if planNs > lap-execNs {
		planNs = lap - execNs
	}
	if repairNs < 0 {
		repairNs = 0
	}
	if repairNs > planNs {
		repairNs = planNs
	}
	t.Stages[StageExecute] += execNs
	t.Stages[StagePlan] += planNs - repairNs
	t.Stages[StageRepair] += repairNs
	t.Stages[StageCoalesce] += lap - planNs - execNs
}

// SetInfo records the pass shape without allocating (the strategy name
// is copied into the inline array, truncated at StrategyLen).
func (t *Trace) SetInfo(n, batch, fused, width int, strategy string) {
	t.N = int32(n)
	t.Batch = int32(batch)
	t.Fused = int32(fused)
	t.Width = int32(width)
	t.StratLen = int32(copy(t.Strat[:], strategy))
}

// Strategy returns the recorded strategy name. It allocates; reader
// side only.
func (t *Trace) Strategy() string { return string(t.Strat[:t.StratLen]) }

// SetTenant records the tenant name and class without allocating.
func (t *Trace) SetTenant(name string, class uint8) {
	t.TenLen = int32(copy(t.Ten[:], name))
	t.Class = class
}

// SetTenantBytes is SetTenant for a byte-slice name (the binary wire
// path attributes from a view into the request frame).
func (t *Trace) SetTenantBytes(name []byte, class uint8) {
	t.TenLen = int32(copy(t.Ten[:], name))
	t.Class = class
}

// Tenant returns the recorded tenant name. It allocates; reader side
// only.
func (t *Trace) Tenant() string { return string(t.Ten[:t.TenLen]) }

// Finish charges the final lap to stage and freezes the total and
// status. After Finish, StageSum() == TotalNs.
func (t *Trace) Finish(s Stage, status int) {
	now := time.Now()
	t.Stages[s] += now.Sub(t.mark).Nanoseconds()
	t.mark = now
	t.TotalNs = now.Sub(t.Start).Nanoseconds()
	t.Status = int32(status)
}

// StageSum returns the summed per-stage nanoseconds.
func (t *Trace) StageSum() int64 {
	var sum int64
	for _, ns := range t.Stages {
		sum += ns
	}
	return sum
}
