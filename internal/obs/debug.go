package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/metrics"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime, read
// from runtime/metrics. It backs both the /metrics runtime gauges and
// the debug listener's /debug/runtime endpoint, so the two can never
// disagree about what they measure.
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapBytes      uint64  `json:"heap_bytes"`       // live heap objects
	TotalBytes     uint64  `json:"total_bytes"`      // all runtime-managed memory
	GCCycles       uint64  `json:"gc_cycles"`        // completed GC cycles
	GCPauseSeconds float64 `json:"gc_pause_seconds"` // cumulative stop-the-world pause
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
}

// runtimeSamples is the fixed runtime/metrics sample set ReadRuntime
// reads. The names are stable across Go releases; a name a runtime
// does not know comes back KindBad and reads as zero.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// ReadRuntime samples the runtime. It allocates (scrape path only) —
// callers on hot paths should not use it.
func ReadRuntime() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	out := RuntimeStats{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				out.Goroutines = int(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				out.HeapBytes = s.Value.Uint64()
			}
		case "/memory/classes/total:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				out.TotalBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				out.GCCycles = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				out.GCPauseSeconds = histogramSum(s.Value.Float64Histogram())
			}
		}
	}
	return out
}

// histogramSum estimates the cumulative value of a runtime
// Float64Histogram by weighting each bucket's count with its midpoint
// (runtime pause histograms have finite interior buckets; unbounded
// edge buckets fall back to their finite side).
func histogramSum(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			continue
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		if mid < 0 {
			mid = 0
		}
		sum += mid * float64(count)
	}
	return sum
}

// DebugHandler returns the profiling/debug mux the CLI mounts on its
// -debug-addr listener: the full net/http/pprof suite plus a JSON
// runtime snapshot. It is kept off the serving mux on purpose — pprof
// endpoints can stall the world and must never share a port with
// production traffic or its admission control.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ReadRuntime())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("doconsider debug listener\n\n" +
			"  /debug/pprof/          profile index\n" +
			"  /debug/pprof/profile   CPU profile (?seconds=N)\n" +
			"  /debug/pprof/heap      heap profile\n" +
			"  /debug/pprof/trace     execution trace (?seconds=N)\n" +
			"  /debug/runtime         runtime snapshot (JSON)\n"))
	})
	return mux
}
