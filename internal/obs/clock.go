package obs

import "sync/atomic"

// LevelClock accumulates executor time per wavefront level during one
// sampled pass. It is fixed-size and allocation-free: the executor's
// timed body calls Add from worker goroutines (hence the atomics), and
// the server copies the result into the request's Trace afterwards.
// It implements trisolve.LevelClock.
type LevelClock struct {
	levels [MaxLevels]atomic.Int64
	max    atomic.Int64 // 1 + highest level seen, i.e. the level count
}

// Reset clears the clock for reuse (callers guarantee no pass is
// running).
func (c *LevelClock) Reset() {
	for i := range c.levels {
		c.levels[i].Store(0)
	}
	c.max.Store(0)
}

// Add charges ns of executor time to level. Levels at or beyond
// MaxLevels fold into the last slot; the true level count is still
// tracked. Safe for concurrent use by executor workers.
func (c *LevelClock) Add(level int32, ns int64) {
	if level < 0 {
		return
	}
	n := int64(level) + 1
	for {
		m := c.max.Load()
		if n <= m || c.max.CompareAndSwap(m, n) {
			break
		}
	}
	if level >= MaxLevels {
		level = MaxLevels - 1
	}
	c.levels[level].Add(ns)
}

// Levels returns the observed level count (may exceed MaxLevels; the
// stored timings then fold the tail into the last slot).
func (c *LevelClock) Levels() int { return int(c.max.Load()) }

// FillTrace copies the accumulated level timings into t and marks it
// sampled.
func (c *LevelClock) FillTrace(t *Trace) {
	t.Sampled = true
	t.NumLevels = int32(c.max.Load())
	for i := range c.levels {
		t.LevelNs[i] = c.levels[i].Load()
	}
}

// Sampler decides, lock-free, whether a request gets per-level timing:
// every Nth call samples. A nil Sampler or every <= 0 never samples;
// every == 1 samples every request.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler firing every `every` calls.
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return &Sampler{}
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this call is a sampled one.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}
