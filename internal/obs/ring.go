package obs

import "sync/atomic"

// Ring is a fixed-capacity, lock-free trace buffer. Writers claim a
// slot by advancing an atomic position and take it with a CAS; a slot a
// reader is momentarily copying is skipped for the next one, so Put
// never blocks and never allocates. Readers copy traces out by value
// under the same per-slot CAS, so no torn trace is ever observed and
// the race detector sees a clean happens-before edge on every slot.
//
// Under a full-capacity collision burst (every probed slot busy) a
// trace is dropped — acceptable for telemetry, counted by Dropped.
type Ring struct {
	mask    uint64
	pos     atomic.Uint64
	dropped atomic.Uint64
	slots   []ringSlot
}

type ringSlot struct {
	busy    atomic.Uint32
	written bool // set on first Put, read/written only while busy is held
	tr      Trace
}

// putProbes bounds how many claimed slots one Put will try before
// dropping the trace.
const putProbes = 4

// NewRing returns a ring holding at least size traces (rounded up to a
// power of two, minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n *= 2
	}
	return &Ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Dropped returns how many traces were discarded because every probed
// slot was mid-copy.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }

// Put records a completed trace by value. It never blocks: a slot held
// by a concurrent reader is skipped, and after putProbes contended
// slots the trace is dropped.
func (r *Ring) Put(t *Trace) {
	for i := 0; i < putProbes; i++ {
		s := &r.slots[(r.pos.Add(1)-1)&r.mask]
		if s.busy.CompareAndSwap(0, 1) {
			s.tr = *t
			s.written = true
			s.busy.Store(0)
			return
		}
	}
	r.dropped.Add(1)
}

// Snapshot copies out up to max recorded traces, approximately newest
// first (concurrent writers make the order advisory; sort by Start or
// TotalNs for a stable view). max <= 0 means the whole ring.
func (r *Ring) Snapshot(max int) []Trace {
	n := len(r.slots)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]Trace, 0, max)
	end := r.pos.Load()
	for k := uint64(0); k < uint64(n) && len(out) < max; k++ {
		s := &r.slots[(end-1-k)&r.mask]
		if !s.busy.CompareAndSwap(0, 1) {
			continue // writer mid-copy; its trace is newer than our walk anyway
		}
		if s.written {
			out = append(out, s.tr)
		}
		s.busy.Store(0)
	}
	return out
}
