package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumStages; i++ {
		name := Stage(i).String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has no name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(NumStages).String() != "unknown" {
		t.Fatalf("out-of-range stage should render as unknown")
	}
	if WireJSON.String() != "json" || WireBinary.String() != "binary" {
		t.Fatalf("wire names changed: %q/%q", WireJSON, WireBinary)
	}
}

// The core invariant of the lap protocol: the per-stage durations of a
// finished trace partition the total exactly.
func TestTraceStageSumEqualsTotal(t *testing.T) {
	var tr Trace
	tr.Begin(WireJSON, time.Now())
	tr.Lap(StageAdmission)
	time.Sleep(time.Millisecond)
	tr.Lap(StageDecode)
	tr.Lap(StageFactor)
	tr.AttributeSubmit(100, 40, 200) // tiny; mostly clamps against the real lap
	time.Sleep(time.Millisecond)
	tr.Finish(StageEncode, 200)

	if tr.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d, want > 0", tr.TotalNs)
	}
	if got := tr.StageSum(); got != tr.TotalNs {
		t.Fatalf("StageSum() = %d, TotalNs = %d; laps must partition the total", got, tr.TotalNs)
	}
	if tr.Status != 200 {
		t.Fatalf("Status = %d, want 200", tr.Status)
	}
}

// AttributeSubmit must partition its lap exactly even when the pass
// timings exceed the measured lap (cross-goroutine clocks) or are
// negative garbage.
func TestAttributeSubmitClamps(t *testing.T) {
	cases := []struct{ plan, repair, exec int64 }{
		{0, 0, 0},
		{1 << 60, 0, 1 << 60},
		{-5, -5, -5},
		{1 << 60, 1 << 61, 10},
	}
	for _, c := range cases {
		var tr Trace
		tr.Begin(WireBinary, time.Now())
		time.Sleep(time.Millisecond)
		tr.AttributeSubmit(c.plan, c.repair, c.exec)
		tr.Finish(StageEncode, 200)
		if got := tr.StageSum(); got != tr.TotalNs {
			t.Fatalf("case %+v: StageSum() = %d != TotalNs = %d", c, got, tr.TotalNs)
		}
		for s, ns := range tr.Stages {
			if ns < 0 {
				t.Fatalf("case %+v: stage %s went negative: %d", c, Stage(s), ns)
			}
		}
	}
}

func TestTraceSetInfoTruncatesStrategy(t *testing.T) {
	var tr Trace
	long := "a-strategy-name-much-longer-than-the-inline-reserve"
	tr.SetInfo(100, 2, 3, 6, long)
	if got := tr.Strategy(); got != long[:StrategyLen] {
		t.Fatalf("Strategy() = %q, want %q", got, long[:StrategyLen])
	}
	tr.SetInfo(100, 2, 3, 6, "pooled")
	if got := tr.Strategy(); got != "pooled" {
		t.Fatalf("Strategy() = %q after re-set, want pooled", got)
	}
}

func TestRingPutSnapshot(t *testing.T) {
	r := NewRing(16)
	if r.Cap() != 16 {
		t.Fatalf("Cap() = %d, want 16", r.Cap())
	}
	for i := 0; i < 40; i++ {
		var tr Trace
		tr.Begin(WireJSON, time.Now())
		tr.ID = uint64(i + 1)
		tr.Finish(StageEncode, 200)
		r.Put(&tr)
	}
	got := r.Snapshot(0)
	if len(got) != 16 {
		t.Fatalf("Snapshot returned %d traces, want 16 (ring capacity)", len(got))
	}
	// Only the newest 16 survive, newest first.
	for k, tr := range got {
		want := uint64(40 - k)
		if tr.ID != want {
			t.Fatalf("Snapshot[%d].ID = %d, want %d", k, tr.ID, want)
		}
	}
	if limited := r.Snapshot(4); len(limited) != 4 || limited[0].ID != 40 {
		t.Fatalf("Snapshot(4) = %d traces, first ID %d; want 4 and 40", len(limited), limited[0].ID)
	}
}

func TestRingSizeRounding(t *testing.T) {
	if got := NewRing(0).Cap(); got != 16 {
		t.Fatalf("NewRing(0).Cap() = %d, want 16", got)
	}
	if got := NewRing(100).Cap(); got != 128 {
		t.Fatalf("NewRing(100).Cap() = %d, want 128", got)
	}
}

// Hammer the ring from concurrent writers and readers; run under -race
// this pins the per-slot CAS protocol (no torn reads, no data races).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var tr Trace
				tr.Begin(WireBinary, time.Now())
				tr.ID = uint64(w)<<32 | uint64(i)
				tr.Stages[StageExecute] = int64(i)
				tr.Finish(StageEncode, 200)
				r.Put(&tr)
			}
		}(w)
	}
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Snapshot(0) {
					if tr.Status != 200 {
						panic("torn trace observed")
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(r.Snapshot(0)) == 0 {
		t.Fatal("ring empty after concurrent writes")
	}
}

func TestLevelClock(t *testing.T) {
	var c LevelClock
	c.Add(0, 100)
	c.Add(2, 300)
	c.Add(2, 50)
	c.Add(-1, 999) // ignored
	if c.Levels() != 3 {
		t.Fatalf("Levels() = %d, want 3", c.Levels())
	}
	var tr Trace
	c.FillTrace(&tr)
	if !tr.Sampled || tr.NumLevels != 3 {
		t.Fatalf("FillTrace: sampled=%v levels=%d, want true/3", tr.Sampled, tr.NumLevels)
	}
	if tr.LevelNs[0] != 100 || tr.LevelNs[1] != 0 || tr.LevelNs[2] != 350 {
		t.Fatalf("LevelNs = %v", tr.LevelNs[:3])
	}
	// Overflowing levels fold into the last slot but keep the true count.
	c.Reset()
	c.Add(MaxLevels+5, 70)
	c.Add(MaxLevels-1, 30)
	if c.Levels() != MaxLevels+6 {
		t.Fatalf("Levels() = %d, want %d", c.Levels(), MaxLevels+6)
	}
	c.FillTrace(&tr)
	if tr.LevelNs[MaxLevels-1] != 100 {
		t.Fatalf("overflow bucket = %d, want 100", tr.LevelNs[MaxLevels-1])
	}
}

func TestSampler(t *testing.T) {
	if (*Sampler)(nil).Sample() {
		t.Fatal("nil sampler must never sample")
	}
	if NewSampler(0).Sample() {
		t.Fatal("0-rate sampler must never sample")
	}
	every := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !every.Sample() {
			t.Fatal("1-rate sampler must always sample")
		}
	}
	third := NewSampler(3)
	hits := 0
	for i := 0; i < 30; i++ {
		if third.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("1-in-3 sampler hit %d of 30", hits)
	}
}

func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.Goroutines < 1 {
		t.Fatalf("Goroutines = %d, want >= 1", rs.Goroutines)
	}
	if rs.HeapBytes == 0 || rs.TotalBytes == 0 {
		t.Fatalf("heap=%d total=%d, want > 0", rs.HeapBytes, rs.TotalBytes)
	}
	if rs.GOMAXPROCS < 1 || rs.NumCPU < 1 {
		t.Fatalf("GOMAXPROCS=%d NumCPU=%d", rs.GOMAXPROCS, rs.NumCPU)
	}
}

func TestDebugHandler(t *testing.T) {
	h := DebugHandler()
	for _, path := range []string{"/", "/debug/pprof/", "/debug/runtime"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/runtime", nil))
	var rs RuntimeStats
	if err := json.Unmarshal(rec.Body.Bytes(), &rs); err != nil {
		t.Fatalf("bad /debug/runtime JSON: %v", err)
	}
	if rs.Goroutines < 1 {
		t.Fatalf("debug runtime snapshot empty: %+v", rs)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
}
