package planner_test

import (
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/problems"
	"doconsider/internal/trisolve"
)

// TestPlannerCompetitive is the acceptance harness for adaptive
// planning: over the problem suite, the planner's chosen strategy must
// never be more than 5% slower than the previous fixed default (pooled)
// and must be faster on at least 3 problems, with bit-identical
// solutions. It times real solves, so it is opt-in — run with
//
//	DOCONSIDER_PERF=1 go test ./internal/planner -run TestPlannerCompetitive -v
//
// on an otherwise idle machine; CI machines are too noisy to gate on
// wall-clock ratios.
func TestPlannerCompetitive(t *testing.T) {
	if os.Getenv("DOCONSIDER_PERF") == "" {
		t.Skip("wall-clock comparison; set DOCONSIDER_PERF=1 to run")
	}
	const (
		procs     = 4
		reps      = 7  // timed repetitions; the median is compared
		solvesPer = 20 // solves per repetition
		slack     = 1.05
	)
	// ForHost never calibrates inside a test binary, so measure the host
	// model explicitly — this harness is about real machine behavior.
	model := planner.Calibrate()
	faster := 0
	for _, name := range problems.Names() {
		p := problems.MustGet(name)
		b := make([]float64, p.L.N)
		for i := range b {
			b[i] = 1 + float64(i%7)
		}

		pooled, err := trisolve.NewPlan(p.L, true, trisolve.WithProcs(procs), trisolve.WithKind(executor.Pooled))
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := trisolve.NewPlan(p.L, true, trisolve.WithProcs(procs), trisolve.WithModel(model))
		if err != nil {
			t.Fatal(err)
		}

		xPooled := make([]float64, p.L.N)
		xAdaptive := make([]float64, p.L.N)
		tPooled := medianSolve(pooled, xPooled, b, reps, solvesPer)
		tAdaptive := medianSolve(adaptive, xAdaptive, b, reps, solvesPer)
		pooled.Close()
		adaptive.Close()

		for i := range xPooled {
			if xPooled[i] != xAdaptive[i] {
				t.Fatalf("%s: solution differs at %d: %v vs %v", name, i, xPooled[i], xAdaptive[i])
			}
		}
		ratio := tAdaptive.Seconds() / tPooled.Seconds()
		chosen := adaptive.Kind
		t.Logf("%-8s chosen=%-13v pooled=%-10v adaptive=%-10v ratio=%.3f (%s)",
			name, chosen, tPooled, tAdaptive, ratio, decisionNote(adaptive))
		if ratio > slack {
			t.Errorf("%s: planner choice %v is %.1f%% slower than pooled", name, chosen, 100*(ratio-1))
		}
		if ratio < 1/slack {
			faster++
		}
	}
	if faster < 3 {
		t.Errorf("planner faster than pooled on %d problems, want >= 3", faster)
	}
}

func decisionNote(p *trisolve.Plan) string {
	if p.Decision == nil {
		return "pinned"
	}
	return fmt.Sprintf("seq=%.0fµs pool=%.0fµs doacross=%.0fµs",
		p.Decision.PredSequential*1e6, p.Decision.PredPooled*1e6, p.Decision.PredDoAcross*1e6)
}

// medianSolve times reps repetitions of solvesPer solves and returns
// the median per-solve duration.
func medianSolve(p *trisolve.Plan, x, b []float64, reps, solvesPer int) time.Duration {
	times := make([]time.Duration, 0, reps)
	p.Solve(x, b) // warm: pool spawn, caches
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for s := 0; s < solvesPer; s++ {
			p.Solve(x, b)
		}
		times = append(times, time.Since(t0)/time.Duration(solvesPer))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}
