package planner_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doconsider/internal/planner"
	"doconsider/internal/problems"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/decisions.golden from current planner output")

// goldenProcs fixes the processor count the decision table is computed
// at; 4 matches the serving default.
const goldenProcs = 4

// TestGoldenDecisions pins the planner's (features → strategy/reorder)
// mapping over the full problem suite under the canonical Default cost
// model, so a cost-model change produces a reviewable diff of decision
// flips instead of a silent behavioral change. Regenerate with
//
//	go test ./internal/planner -run TestGoldenDecisions -update
func TestGoldenDecisions(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# planner decisions over the problem suite\n")
	fmt.Fprintf(&sb, "# model=default procs=%d; columns: problem features -> strategy[+fused]/reorder\n", goldenProcs)
	for _, name := range problems.AllNames() {
		p, err := problems.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f := planner.Analyze(p.Deps, p.Wf, goldenProcs)
		// Price the fifth (supernodal) candidate the way trisolve's
		// adaptive path does: detect the partition, compress the DAG,
		// and hand the planner the unit-level shape.
		part := supernode.Detect(p.Deps, supernode.Config{})
		unitDeps := part.Compress(p.Deps)
		unitWf, err := wavefront.Compute(unitDeps)
		if err != nil {
			t.Fatalf("%s: compressed levels: %v", name, err)
		}
		st := part.Stats()
		fu := &planner.Fusion{
			Nodes:     st.Nodes,
			FusedRows: st.FusedRows,
			MaxWidth:  st.MaxWidth,
			UnitEdges: unitDeps.Edges(),
		}
		for _, w := range wavefront.Histogram(unitWf) {
			fu.UnitLevels++
			fu.UnitLevelSum += (w + goldenProcs - 1) / goldenProcs
		}
		f.Fusion = fu
		d := planner.Select(f, planner.Default())
		strat := fmt.Sprint(d.Strategy)
		if d.Fused {
			strat += "+fused"
		}
		fmt.Fprintf(&sb,
			"%-10s n=%-6d edges=%-6d levels=%-4d maxw=%-4d avgw=%-7.1f dist=%-7.1f levelsum=%-6d natsteps=%-6d nodes=%-6d fusedrows=%-6d -> %s/%s\n",
			name, f.N, f.Edges, f.Levels, f.MaxWidth, f.AvgWidth, f.MeanDist, f.LevelSum, f.NatSteps,
			fu.Nodes, fu.FusedRows, strat, d.Reorder)
	}
	got := sb.String()

	path := filepath.Join("testdata", "decisions.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("planner decisions changed; review and regenerate with -update.\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestGoldenDecisionsPinnedByEnv guards the golden table against an
// inherited DOCONSIDER_STRATEGY: the pin is resolved once per process,
// so if it is set the table above is not the planner's own output.
func TestGoldenDecisionsPinnedByEnv(t *testing.T) {
	if os.Getenv("DOCONSIDER_STRATEGY") != "" {
		t.Fatal("DOCONSIDER_STRATEGY is set; the golden decision table would record pinned decisions")
	}
}
