package planner

import (
	"math"
	"path/filepath"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

// chainDeps builds a pure dependence chain: i depends on i-1.
func chainDeps(n int) *wavefront.Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	return wavefront.FromAdjacency(adj)
}

// flatDeps builds an embarrassingly parallel structure: no edges at all.
func flatDeps(n int) *wavefront.Deps {
	return wavefront.FromAdjacency(make([][]int32, n))
}

func analyzed(t *testing.T, d *wavefront.Deps, p int) Features {
	t.Helper()
	wf, err := wavefront.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(d, wf, p)
}

func TestAnalyzeChain(t *testing.T) {
	f := analyzed(t, chainDeps(100), 4)
	if f.N != 100 || f.Edges != 99 || f.Levels != 100 || f.MaxWidth != 1 {
		t.Fatalf("chain features wrong: %+v", f)
	}
	if f.CritFrac != 1.0 {
		t.Fatalf("chain CritFrac = %v, want 1", f.CritFrac)
	}
	if f.LevelSum != 100 {
		t.Fatalf("chain LevelSum = %d, want 100", f.LevelSum)
	}
	if f.NatSteps != 100 {
		t.Fatalf("chain NatSteps = %d, want 100", f.NatSteps)
	}
	if !f.Backward {
		t.Fatal("chain should be backward")
	}
	if f.MeanDist != 1 {
		t.Fatalf("chain MeanDist = %v, want 1", f.MeanDist)
	}
}

func TestAnalyzeFlat(t *testing.T) {
	f := analyzed(t, flatDeps(64), 4)
	if f.Levels != 1 || f.MaxWidth != 64 || f.Edges != 0 {
		t.Fatalf("flat features wrong: %+v", f)
	}
	if f.LevelSum != 16 {
		t.Fatalf("flat LevelSum = %d, want 16", f.LevelSum)
	}
	// Natural striped order of an edge-free structure is 64/4 slots.
	if f.NatSteps != 16 {
		t.Fatalf("flat NatSteps = %d, want 16", f.NatSteps)
	}
}

// TestAnalyzeBounds pins the structural invariants the cost model leans
// on: LevelSum and NatSteps are both at least max(ceil(N/P), Levels) —
// no schedule beats the work bound or the critical path. (NatSteps may
// legitimately undercut LevelSum: the natural-order sweep pipelines
// across wavefronts, while LevelSum accounts level by level.)
func TestAnalyzeBounds(t *testing.T) {
	for _, d := range []*wavefront.Deps{chainDeps(50), flatDeps(50),
		wavefront.FromAdjacency([][]int32{nil, {0}, {0}, {1, 2}, {0}, {3}, {3, 4}, {5}})} {
		for _, p := range []int{1, 2, 4, 7} {
			f := analyzed(t, d, p)
			lower := (f.N + p - 1) / p
			if f.Levels > lower {
				lower = f.Levels
			}
			if f.LevelSum < lower {
				t.Errorf("P=%d LevelSum %d below lower bound %d", p, f.LevelSum, lower)
			}
			if f.NatSteps < lower {
				t.Errorf("P=%d NatSteps %d below lower bound %d", p, f.NatSteps, lower)
			}
		}
	}
}

func TestAnalyzeGeneralDAGNotBackward(t *testing.T) {
	// Edge 0 -> 2 points forward: a general DAG.
	d := wavefront.FromAdjacency([][]int32{{2}, nil, nil})
	wf, err := wavefront.ComputeDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	f := Analyze(d, wf, 4)
	if f.Backward {
		t.Fatal("forward edge not detected")
	}
	if got := Select(f, Default()); got.Strategy == executor.DoAcross {
		t.Fatal("doacross selected for a non-backward DAG")
	}
}

func TestSelectRegimes(t *testing.T) {
	m := Default()
	// Tiny structure: any parallel pass overhead dwarfs the work.
	if d := Select(analyzed(t, flatDeps(16), 4), m); d.Strategy != executor.Sequential {
		t.Errorf("tiny flat: got %v, want sequential (%s)", d.Strategy, d)
	}
	// Deep chain: no parallelism to exploit at any size.
	if d := Select(analyzed(t, chainDeps(20000), 4), m); d.Strategy != executor.Sequential {
		t.Errorf("chain: got %v, want sequential (%s)", d.Strategy, d)
	}
	// Wide flat structure: pooled wins once the work amortizes the pass.
	if d := Select(analyzed(t, flatDeps(1<<17), 4), m); d.Strategy == executor.Sequential {
		t.Errorf("wide flat: got sequential, want a parallel strategy (%s)", d)
	}
	// One processor: parallel candidates are never selected.
	if d := Select(analyzed(t, flatDeps(1<<17), 1), m); d.Strategy != executor.Sequential {
		t.Errorf("P=1: got %v, want sequential", d.Strategy)
	}
}

func TestSelectDeterministic(t *testing.T) {
	f := analyzed(t, flatDeps(1<<15), 4)
	first := Select(f, Default())
	for i := 0; i < 10; i++ {
		if got := Select(f, Default()); got != first {
			t.Fatalf("decision not deterministic: %v vs %v", got, first)
		}
	}
}

func TestPredictFiniteAndPositive(t *testing.T) {
	m := Default()
	for _, d := range []*wavefront.Deps{chainDeps(3), flatDeps(1), flatDeps(1000)} {
		f := analyzed(t, d, 4)
		for _, k := range []executor.Kind{executor.Sequential, executor.PreScheduled,
			executor.SelfExecuting, executor.DoAcross, executor.Pooled} {
			v := m.Predict(f, k)
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Errorf("Predict(%v) = %v, want finite > 0", k, v)
			}
		}
	}
	if !math.IsInf(m.Predict(Features{N: 1, P: 1}, executor.Kind(99)), 1) {
		t.Error("unknown kind should predict +Inf")
	}
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := Default()
	bad.TRow = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero TRow accepted")
	}
	bad = Default()
	bad.TPass = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN TPass accepted")
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "calibration.json")
	m := Default()
	m.TRow = 42e-9
	m.Calibrated = true
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading an absent file succeeded")
	}
}

func TestCalibrateProducesValidModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration microbenchmarks in -short mode")
	}
	m := Calibrate()
	if err := m.Validate(); err != nil {
		t.Fatalf("calibrated model invalid: %v", err)
	}
	if !m.Calibrated && *m != *Default() {
		t.Fatal("fallback model is neither calibrated nor the default")
	}
}
