package planner

import (
	"fmt"
	"math"

	"doconsider/internal/executor"
)

// CostModel holds the per-operation costs, in seconds, that turn DAG
// features into predicted executor pass times. The shape of the model is
// the paper's own §5.1.2 accounting — per-row work, shared-array checks,
// busy-wait losses, per-pass overhead — with constants measured on the
// host (Calibrate) instead of on the Encore Multimax.
//
// Only ratios matter for strategy selection, but the constants are kept
// in absolute seconds so predictions can be sanity-checked against real
// pass timings.
type CostModel struct {
	TRow   float64 `json:"t_row"`   // fixed per-row cost: loop body dispatch, row header
	TDep   float64 `json:"t_dep"`   // per-dependence cost: one multiply-add + column load
	TCheck float64 `json:"t_check"` // one shared ready-array check (atomic load)
	TSpin  float64 `json:"t_spin"`  // one not-ready busy-wait round (check + Gosched)
	TPass  float64 `json:"t_pass"`  // fixed parallel pass overhead: waking and retiring workers

	// TRowFused is the per-row fixed cost of a row executed inside a
	// supernode beyond the node's first: the fused kernels pay one body
	// dispatch and one set of dependence checks per node, so trailing
	// rows cost only their loop header and bounds setup. Policy-grade
	// like the repair constants — Calibrate leaves it at its default.
	TRowFused float64 `json:"t_row_fused"`

	// Parallelism is the hardware parallelism the host can actually
	// deliver (GOMAXPROCS at calibration time); 0 — the canonical
	// default — trusts the plan's processor count. A plan configured for
	// more workers than the host has cores gets no compute speedup from
	// the excess, only coordination overhead, so Predict floors the
	// parallel step counts at N/Parallelism. This is what routes small
	// and medium structures to the sequential executor on a one-core
	// container even when the caller asked for four workers.
	Parallelism int `json:"parallelism"`

	// Scatter inflates the parallel compute term to account for the
	// wavefront sort destroying the natural row-access locality: the
	// pooled executor walks rows in (level, index) order, so consecutive
	// bodies touch non-adjacent rows of the factor and of x. It is
	// dimensionless (a fraction of the compute term).
	Scatter float64 `json:"scatter"`

	// ReorderMinN and ReorderDistFrac gate the RCM within-level
	// reordering: structures smaller than ReorderMinN rows don't leave
	// cache anyway, and structures whose mean dependence distance is
	// under ReorderDistFrac of the order are already local.
	ReorderMinN     int     `json:"reorder_min_n"`
	ReorderDistFrac float64 `json:"reorder_dist_frac"`

	// Repair pricing (internal/delta): full inspection costs per row and
	// per dependence edge (extraction + leveling + analysis + schedule
	// construction), against the per-row splice cost and the per-cone-row
	// releveling cost of an incremental repair. These are policy-grade
	// constants like the reorder thresholds — Calibrate leaves them at
	// their defaults.
	TInspectRow float64 `json:"t_inspect_row"` // full inspection, per row
	TInspectDep float64 `json:"t_inspect_dep"` // full inspection, per dependence edge
	TRepairRow  float64 `json:"t_repair_row"`  // repair splice/merge, per row
	TConeRow    float64 `json:"t_cone_row"`    // repair releveling, per cone row

	// Calibrated marks models produced by Calibrate (as opposed to the
	// canonical defaults), so stats can say which one decided.
	Calibrated bool `json:"calibrated"`
}

// Default returns the canonical cost model: constants representative of
// a current commodity core, fixed so decisions (and the golden decision
// table in this package's tests) are machine-independent. Calibrate
// replaces the timing constants with host measurements; the reorder
// thresholds are policy, not timing, and are never calibrated.
func Default() *CostModel {
	return &CostModel{
		TRow:            25e-9,
		TRowFused:       10e-9,
		TDep:            6e-9,
		TCheck:          4e-9,
		TSpin:           120e-9,
		TPass:           15e-6,
		Scatter:         0.05,
		ReorderMinN:     4096,
		ReorderDistFrac: 0.05,
		TInspectRow:     20e-9,
		TInspectDep:     8e-9,
		TRepairRow:      15e-9,
		TConeRow:        250e-9,
	}
}

// PredictInspect estimates the cost, in seconds, of a full cold
// inspection of a structure with n rows and edges dependence edges:
// dependence extraction, the wavefront sweep, feature analysis and
// schedule construction, each of which walks every row and edge.
func (m *CostModel) PredictInspect(n, edges int) float64 {
	return float64(n)*m.TInspectRow + float64(edges)*m.TInspectDep
}

// PredictRepair estimates the cost, in seconds, of an incremental repair
// (internal/delta) whose level propagation re-examines cone rows: a few
// memcpy-class O(N) splices plus the cone itself.
func (m *CostModel) PredictRepair(n, cone int) float64 {
	return float64(n)*m.TRepairRow + float64(cone)*m.TConeRow
}

// RepairDecision is the planner's fourth decision — after strategy,
// reordering and schedule shape — made when a structure misses the plan
// cache but a near-identical ancestor is resident: repair the ancestor's
// plan or re-inspect from scratch.
type RepairDecision struct {
	Repair bool // attempt repair (bounded by MaxCone) instead of rebuilding
	// MaxCone is the break-even propagation cone: past this many
	// re-examined rows a repair costs more than the rebuild it replaces,
	// so delta.Repair aborts there and the caller falls back.
	MaxCone     int
	PredRepair  float64 // optimistic repair cost, seconds (cone = edited rows)
	PredRebuild float64 // full re-inspection cost, seconds
}

// PlanRepair prices repair against rebuild for a structure with n rows
// and edges dependence edges of which editedRows rows changed. The
// repair estimate is optimistic — the true cone is only discovered while
// propagating — so the decision is paired with the MaxCone abort bound
// that caps how wrong the optimism can get.
func PlanRepair(n, edges, editedRows int, m *CostModel) RepairDecision {
	if m == nil {
		m = ForHost()
	}
	d := RepairDecision{
		PredRepair:  m.PredictRepair(n, editedRows),
		PredRebuild: m.PredictInspect(n, edges),
	}
	if m.TConeRow > 0 {
		d.MaxCone = int((d.PredRebuild - float64(n)*m.TRepairRow) / m.TConeRow)
	}
	d.Repair = editedRows > 0 && d.MaxCone >= editedRows && d.PredRepair < d.PredRebuild
	return d
}

// Predict estimates the wall time, in seconds, of one executor pass over
// a structure with features f under strategy kind. Unknown kinds predict
// +Inf so Select can iterate candidates without special cases.
func (m *CostModel) Predict(f Features, kind executor.Kind) float64 {
	n := float64(f.N)
	edges := float64(f.Edges)
	p := float64(f.P)
	if p < 1 {
		p = 1
	}
	// Effective parallelism: excess workers beyond the host's cores add
	// coordination, not speedup, so parallel step counts are floored at
	// the work bound N/eff.
	eff := p
	if m.Parallelism > 0 && float64(m.Parallelism) < eff {
		eff = float64(m.Parallelism)
	}
	steps := func(ideal int) float64 {
		s := float64(ideal)
		if w := n / eff; w > s {
			s = w
		}
		return s
	}
	row := m.TRow + m.TDep*f.AvgDeps
	switch kind {
	case executor.Sequential:
		return n * row
	case executor.Pooled, executor.SelfExecuting:
		// Ideal wavefront-dealt makespan, inflated by the sort's locality
		// scatter, plus the per-edge ready checks one worker performs and
		// the fixed cost of waking the pool.
		t := steps(f.LevelSum)*row*(1+m.Scatter) + edges/p*m.TCheck + m.TPass
		if kind == executor.SelfExecuting {
			// Spawn-per-run: goroutine creation ~ the pass overhead again.
			t += m.TPass
		}
		return t
	case executor.DoAcross:
		// Natural striped makespan (no sort, so no scatter), per-edge
		// checks, and a spin penalty for every edge short enough that the
		// producer shares the consumer's time slot.
		return steps(f.NatSteps)*row + edges/p*m.TCheck + float64(f.LateEdges)/p*m.TSpin + m.TPass
	case executor.PreScheduled:
		// Like pooled but paying a synchronization per level instead of
		// ready checks; the barrier is modeled as a spin round per worker.
		return steps(f.LevelSum)*row*(1+m.Scatter) + float64(f.Levels)*p*m.TSpin + m.TPass
	default:
		return math.Inf(1)
	}
}

// PredictFused estimates the wall time, in seconds, of one supernodal
// executor pass: rows run inside fused units, so only the first row of
// each node pays the full per-unit cost (dispatch, ready checks) while
// trailing rows pay TRowFused, and the parallel makespan is measured in
// units over the compressed level structure. Features without fusion
// data — or kinds the fused kernels don't target — predict +Inf so
// Select can iterate candidates without special cases.
func (m *CostModel) PredictFused(f Features, kind executor.Kind) float64 {
	fu := f.Fusion
	if fu == nil || fu.Nodes <= 0 {
		return math.Inf(1)
	}
	nodes := float64(fu.Nodes)
	n := float64(f.N)
	edges := float64(f.Edges)
	p := float64(f.P)
	if p < 1 {
		p = 1
	}
	eff := p
	if m.Parallelism > 0 && float64(m.Parallelism) < eff {
		eff = float64(m.Parallelism)
	}
	// Per-pass compute: one full row cost per node, the discounted cost
	// for every fused trailing row, and the unchanged per-dependence
	// arithmetic (fusion removes checks and dispatch, not flops).
	compute := nodes*m.TRow + (n-nodes)*m.TRowFused + edges*m.TDep
	switch kind {
	case executor.Sequential:
		return compute
	case executor.Pooled:
		steps := float64(fu.UnitLevelSum)
		if w := nodes / eff; w > steps {
			steps = w
		}
		unit := compute / nodes
		return steps*unit*(1+m.Scatter) + float64(fu.UnitEdges)/p*m.TCheck + m.TPass
	default:
		return math.Inf(1)
	}
}

// Validate rejects models whose constants are non-positive or non-finite
// — a corrupt calibration file must fall back to defaults, not produce
// NaN predictions that compare false against everything.
func (m *CostModel) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"t_row", m.TRow}, {"t_dep", m.TDep}, {"t_check", m.TCheck},
		{"t_spin", m.TSpin}, {"t_pass", m.TPass},
		{"t_inspect_row", m.TInspectRow}, {"t_inspect_dep", m.TInspectDep},
		{"t_repair_row", m.TRepairRow}, {"t_cone_row", m.TConeRow},
		{"t_row_fused", m.TRowFused},
	} {
		if !(c.v > 0) || math.IsInf(c.v, 0) {
			return fmt.Errorf("planner: cost model %s = %v, want finite > 0", c.name, c.v)
		}
	}
	if m.Scatter < 0 || m.Scatter > 10 || math.IsNaN(m.Scatter) {
		return fmt.Errorf("planner: cost model scatter = %v out of range", m.Scatter)
	}
	if m.ReorderMinN < 0 || m.ReorderDistFrac < 0 || math.IsNaN(m.ReorderDistFrac) {
		return fmt.Errorf("planner: cost model reorder thresholds out of range")
	}
	if m.Parallelism < 0 {
		return fmt.Errorf("planner: cost model parallelism = %d, want >= 0", m.Parallelism)
	}
	return nil
}
