package planner

import (
	"fmt"
	"math"

	"doconsider/internal/executor"
)

// CostModel holds the per-operation costs, in seconds, that turn DAG
// features into predicted executor pass times. The shape of the model is
// the paper's own §5.1.2 accounting — per-row work, shared-array checks,
// busy-wait losses, per-pass overhead — with constants measured on the
// host (Calibrate) instead of on the Encore Multimax.
//
// Only ratios matter for strategy selection, but the constants are kept
// in absolute seconds so predictions can be sanity-checked against real
// pass timings.
type CostModel struct {
	TRow   float64 `json:"t_row"`   // fixed per-row cost: loop body dispatch, row header
	TDep   float64 `json:"t_dep"`   // per-dependence cost: one multiply-add + column load
	TCheck float64 `json:"t_check"` // one shared ready-array check (atomic load)
	TSpin  float64 `json:"t_spin"`  // one not-ready busy-wait round (check + Gosched)
	TPass  float64 `json:"t_pass"`  // fixed parallel pass overhead: waking and retiring workers

	// Parallelism is the hardware parallelism the host can actually
	// deliver (GOMAXPROCS at calibration time); 0 — the canonical
	// default — trusts the plan's processor count. A plan configured for
	// more workers than the host has cores gets no compute speedup from
	// the excess, only coordination overhead, so Predict floors the
	// parallel step counts at N/Parallelism. This is what routes small
	// and medium structures to the sequential executor on a one-core
	// container even when the caller asked for four workers.
	Parallelism int `json:"parallelism"`

	// Scatter inflates the parallel compute term to account for the
	// wavefront sort destroying the natural row-access locality: the
	// pooled executor walks rows in (level, index) order, so consecutive
	// bodies touch non-adjacent rows of the factor and of x. It is
	// dimensionless (a fraction of the compute term).
	Scatter float64 `json:"scatter"`

	// ReorderMinN and ReorderDistFrac gate the RCM within-level
	// reordering: structures smaller than ReorderMinN rows don't leave
	// cache anyway, and structures whose mean dependence distance is
	// under ReorderDistFrac of the order are already local.
	ReorderMinN     int     `json:"reorder_min_n"`
	ReorderDistFrac float64 `json:"reorder_dist_frac"`

	// Calibrated marks models produced by Calibrate (as opposed to the
	// canonical defaults), so stats can say which one decided.
	Calibrated bool `json:"calibrated"`
}

// Default returns the canonical cost model: constants representative of
// a current commodity core, fixed so decisions (and the golden decision
// table in this package's tests) are machine-independent. Calibrate
// replaces the timing constants with host measurements; the reorder
// thresholds are policy, not timing, and are never calibrated.
func Default() *CostModel {
	return &CostModel{
		TRow:            25e-9,
		TDep:            6e-9,
		TCheck:          4e-9,
		TSpin:           120e-9,
		TPass:           15e-6,
		Scatter:         0.05,
		ReorderMinN:     4096,
		ReorderDistFrac: 0.05,
	}
}

// Predict estimates the wall time, in seconds, of one executor pass over
// a structure with features f under strategy kind. Unknown kinds predict
// +Inf so Select can iterate candidates without special cases.
func (m *CostModel) Predict(f Features, kind executor.Kind) float64 {
	n := float64(f.N)
	edges := float64(f.Edges)
	p := float64(f.P)
	if p < 1 {
		p = 1
	}
	// Effective parallelism: excess workers beyond the host's cores add
	// coordination, not speedup, so parallel step counts are floored at
	// the work bound N/eff.
	eff := p
	if m.Parallelism > 0 && float64(m.Parallelism) < eff {
		eff = float64(m.Parallelism)
	}
	steps := func(ideal int) float64 {
		s := float64(ideal)
		if w := n / eff; w > s {
			s = w
		}
		return s
	}
	row := m.TRow + m.TDep*f.AvgDeps
	switch kind {
	case executor.Sequential:
		return n * row
	case executor.Pooled, executor.SelfExecuting:
		// Ideal wavefront-dealt makespan, inflated by the sort's locality
		// scatter, plus the per-edge ready checks one worker performs and
		// the fixed cost of waking the pool.
		t := steps(f.LevelSum)*row*(1+m.Scatter) + edges/p*m.TCheck + m.TPass
		if kind == executor.SelfExecuting {
			// Spawn-per-run: goroutine creation ~ the pass overhead again.
			t += m.TPass
		}
		return t
	case executor.DoAcross:
		// Natural striped makespan (no sort, so no scatter), per-edge
		// checks, and a spin penalty for every edge short enough that the
		// producer shares the consumer's time slot.
		return steps(f.NatSteps)*row + edges/p*m.TCheck + float64(f.LateEdges)/p*m.TSpin + m.TPass
	case executor.PreScheduled:
		// Like pooled but paying a synchronization per level instead of
		// ready checks; the barrier is modeled as a spin round per worker.
		return steps(f.LevelSum)*row*(1+m.Scatter) + float64(f.Levels)*p*m.TSpin + m.TPass
	default:
		return math.Inf(1)
	}
}

// Validate rejects models whose constants are non-positive or non-finite
// — a corrupt calibration file must fall back to defaults, not produce
// NaN predictions that compare false against everything.
func (m *CostModel) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"t_row", m.TRow}, {"t_dep", m.TDep}, {"t_check", m.TCheck},
		{"t_spin", m.TSpin}, {"t_pass", m.TPass},
	} {
		if !(c.v > 0) || math.IsInf(c.v, 0) {
			return fmt.Errorf("planner: cost model %s = %v, want finite > 0", c.name, c.v)
		}
	}
	if m.Scatter < 0 || m.Scatter > 10 || math.IsNaN(m.Scatter) {
		return fmt.Errorf("planner: cost model scatter = %v out of range", m.Scatter)
	}
	if m.ReorderMinN < 0 || m.ReorderDistFrac < 0 || math.IsNaN(m.ReorderDistFrac) {
		return fmt.Errorf("planner: cost model reorder thresholds out of range")
	}
	if m.Parallelism < 0 {
		return fmt.Errorf("planner: cost model parallelism = %d, want >= 0", m.Parallelism)
	}
	return nil
}
