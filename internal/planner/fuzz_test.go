package planner_test

import (
	"math"
	"math/rand"
	"testing"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/planner"
	"doconsider/internal/wavefront"
)

// FuzzSelect is the planner robustness-and-correctness property over
// random backward dependence structures (the paper's Figure-2
// indirection loops): Analyze must produce sane features, Select must
// return a registered candidate with finite positive predictions, and an
// adaptive core.Runtime executing the loop must be bit-identical to the
// plain sequential sweep regardless of which strategy was chosen.
//
// The seeds below are the checked-in deterministic corpus; the CI fuzz
// smoke job explores beyond them.
func FuzzSelect(f *testing.F) {
	f.Add(int64(1), uint16(1), uint8(1))
	f.Add(int64(7), uint16(100), uint8(4))
	f.Add(int64(42), uint16(500), uint8(2))
	f.Add(int64(1989), uint16(64), uint8(8))
	f.Add(int64(-5), uint16(257), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, procs uint8) {
		n := int(n16)%512 + 1
		np := int(procs)%8 + 1
		rng := rand.New(rand.NewSource(seed))

		// Random backward indirection: ia[i] < i orders iteration i after
		// ia[i]; ia[i] >= i imposes no ordering (old-value semantics).
		ia := make([]int32, n)
		for i := range ia {
			ia[i] = int32(rng.Intn(n))
		}
		deps := wavefront.FromIndirection(ia)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatalf("Compute: %v", err)
		}

		feats := planner.Analyze(deps, wf, np)
		if feats.N != n || feats.Levels < 1 || feats.Levels > n {
			t.Fatalf("implausible features: %+v", feats)
		}
		lower := (n + np - 1) / np
		if feats.Levels > lower {
			lower = feats.Levels
		}
		if feats.LevelSum < lower || feats.NatSteps < lower {
			t.Fatalf("step counts below lower bound %d: %+v", lower, feats)
		}
		if !feats.Backward {
			t.Fatalf("FromIndirection produced non-backward deps: %+v", feats)
		}

		d := planner.Select(feats, planner.Default())
		switch d.Strategy {
		case executor.Sequential, executor.Pooled, executor.DoAcross:
		default:
			t.Fatalf("selected non-candidate strategy %v", d.Strategy)
		}
		for _, pred := range []float64{d.PredSequential, d.PredPooled, d.PredDoAcross} {
			if !(pred > 0) || math.IsInf(pred, 0) || math.IsNaN(pred) {
				t.Fatalf("non-finite prediction in %v", d)
			}
		}
		if np == 1 && d.Strategy != executor.Sequential {
			t.Fatalf("parallel strategy %v chosen for one processor", d.Strategy)
		}

		// Execute the simple loop x(i) += b(i)*x(ia(i)) under the chosen
		// strategy and against the sequential sweep. The loop body uses
		// old-value semantics for forward references, which is exactly
		// what core.SimpleLoop implements.
		b := make([]float64, n)
		x0 := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			x0[i] = rng.NormFloat64()
		}
		loop, err := core.NewSimpleLoop(ia,
			core.WithProcs(np), core.WithModel(planner.Default()))
		if err != nil {
			t.Fatalf("NewSimpleLoop: %v", err)
		}
		defer loop.Runtime().Close()
		if loop.Runtime().Decision() == nil {
			t.Fatal("adaptive runtime carries no decision")
		}
		got := append([]float64(nil), x0...)
		loop.Run(got, b)

		want := append([]float64(nil), x0...)
		loop.RunSequential(want, b)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strategy %v: x[%d] = %v, want %v", d.Strategy, i, got[i], want[i])
			}
		}
	})
}
