// Package planner is the adaptive half of the inspector: given the
// dependence structure a plan was built from, it measures the DAG
// (level count, width distribution, critical-path fraction, dependence
// distances), consults a calibrated cost model, and decides which
// execution strategy to run — and whether a locality-improving
// reordering from internal/reorder pays for itself — instead of making
// the caller guess.
//
// The paper's inspector exists because the best execution of a
// runtime-dependent loop varies with the dependence structure; the
// runtime-scheduling follow-ups to BaxterMS89 moved from fixed to
// adaptive schedules on exactly that observation. This package makes the
// repository's inspector adaptive: core.New and trisolve.NewPlan call
// Select by default (an explicit executor kind is still honored), so a
// tiny or chain-like DAG runs sequentially, a wide shallow DAG runs on
// the pooled executor, and structures whose natural order already
// respects the wavefronts run doacross.
//
// Decisions are deterministic for a fixed cost model. The host model is
// calibrated once per machine by microbenchmark and persisted (see
// Calibrate and ForHost); set DOCONSIDER_CALIBRATION=off to use the
// canonical default constants, DOCONSIDER_CALIBRATION=<path> to relocate
// the persisted file, and DOCONSIDER_STRATEGY=<kind> to pin the strategy
// globally without touching call sites.
package planner

import (
	"fmt"
	"os"
	"sync"

	"doconsider/internal/executor"
)

// Reorder names a reordering the planner may apply to improve a plan.
type Reorder int

const (
	// ReorderNone keeps the global schedule's (wavefront, index) order.
	ReorderNone Reorder = iota
	// ReorderRCM orders indices within each wavefront by their reverse
	// Cuthill-McKee rank. A symmetric permutation can never shorten the
	// dependence DAG (depth is invariant under relabeling), but RCM's
	// bandwidth reduction shortens dependence distances, so the busy-wait
	// reads of the self-executing executors land on recently produced —
	// still cache-resident — entries. Because only the within-level order
	// of the schedule changes, each row's arithmetic is untouched and
	// results stay bit-identical.
	ReorderRCM
)

// String returns the reorder name as recorded in decision stats.
func (r Reorder) String() string {
	switch r {
	case ReorderNone:
		return "none"
	case ReorderRCM:
		return "rcm"
	default:
		return fmt.Sprintf("Reorder(%d)", int(r))
	}
}

// Decision is the planner's output for one dependence structure: the
// strategy to execute with, the reordering to apply (advisory — callers
// without a matrix to rank, like core.New over a bare Deps, ignore it),
// the features the choice was based on, and the predicted cost of each
// candidate so a surprising choice can be audited after the fact.
type Decision struct {
	Strategy executor.Kind
	Reorder  Reorder
	Features Features
	// Predicted wall time per executor pass, seconds, by candidate.
	PredSequential float64
	PredPooled     float64
	PredDoAcross   float64
	// PredSupernodal is the best fused-execution prediction (sequential
	// or pooled over supernode units); 0 when the caller supplied no
	// fusion data and the candidate was not priced.
	PredSupernodal float64
	// Fused reports that the supernodal candidate won: the caller should
	// execute fused units (Strategy names the executor kind the units run
	// on). Like Reorder it is advisory — callers without fused kernels
	// never set Features.Fusion and never see it.
	Fused bool
	// Pinned reports that DOCONSIDER_STRATEGY forced the strategy and the
	// predictions were not consulted.
	Pinned bool
}

// String renders the decision for logs and CLI output.
func (d Decision) String() string {
	pin := ""
	if d.Pinned {
		pin = " (pinned)"
	}
	fused := ""
	if d.Fused {
		fused = "+fused"
	}
	super := ""
	if d.Features.Fusion != nil {
		super = fmt.Sprintf(" super=%.1fµs", d.PredSupernodal*1e6)
	}
	return fmt.Sprintf("%s%s/%s%s [n=%d edges=%d levels=%d maxw=%d; seq=%.1fµs pool=%.1fµs doacross=%.1fµs%s]",
		d.Strategy, fused, d.Reorder, pin,
		d.Features.N, d.Features.Edges, d.Features.Levels, d.Features.MaxWidth,
		d.PredSequential*1e6, d.PredPooled*1e6, d.PredDoAcross*1e6, super)
}

// Select picks the execution strategy and reordering for a dependence
// structure with features f under cost model m (nil means the
// host-calibrated model, see ForHost). The candidates are the trio the
// serving paths register by default — sequential (tiny or chain-like
// DAGs, where any coordination costs more than the work), pooled
// (persistent workers over the wavefront-sorted schedule — the general
// parallel case), and doacross (busy-wait execution in natural order,
// which wins when the original order already respects the wavefronts
// and the wavefront sort would only scatter locality) — plus, when the
// caller supplied fusion data (Features.Fusion), the supernodal executor:
// fused units on the sequential or pooled kind over the compressed level
// structure.
func Select(f Features, m *CostModel) Decision {
	if m == nil {
		m = ForHost()
	}
	d := Decision{
		Features:       f,
		PredSequential: m.Predict(f, executor.Sequential),
		PredPooled:     m.Predict(f, executor.Pooled),
		PredDoAcross:   m.Predict(f, executor.DoAcross),
	}
	fusedKind := executor.Sequential
	if f.Fusion != nil {
		d.PredSupernodal = m.PredictFused(f, executor.Sequential)
		if f.P > 1 {
			if fp := m.PredictFused(f, executor.Pooled); fp < d.PredSupernodal {
				d.PredSupernodal, fusedKind = fp, executor.Pooled
			}
		}
	}
	if k, ok := pinnedKind(); ok {
		d.Strategy = k
		d.Pinned = true
	} else {
		d.Strategy = executor.Sequential
		best := d.PredSequential
		if f.P > 1 {
			// Deterministic tie-break: a parallel strategy must strictly
			// beat the sequential prediction, and doacross must strictly
			// beat pooled, so equal-cost structures always resolve the
			// same way on every host.
			if d.PredPooled < best {
				d.Strategy, best = executor.Pooled, d.PredPooled
			}
			// Doacross executes the natural index order, which only makes
			// progress when every dependence points backward; on a general
			// DAG the candidate is structurally invalid, whatever its
			// predicted cost.
			if f.Backward && d.PredDoAcross < best {
				d.Strategy, best = executor.DoAcross, d.PredDoAcross
			}
		}
		// The supernodal candidate must strictly beat every row-wise
		// candidate, keeping the tie-break deterministic.
		if f.Fusion != nil && d.PredSupernodal < best {
			d.Strategy, d.Fused = fusedKind, true
		}
	}
	// Reordering is worth a plan-time RCM pass only when the structure is
	// scattered (long mean dependence distance relative to the matrix
	// order), big enough for cache effects to matter, and actually going
	// to run in parallel. It is advisory: only callers holding the matrix
	// (trisolve) can rank rows. Fused plans schedule units, not rows, so
	// a within-level row rank has nothing to rank and fusion skips it.
	if d.Strategy != executor.Sequential && !d.Fused && f.N >= m.ReorderMinN && f.DistFrac > m.ReorderDistFrac {
		d.Reorder = ReorderRCM
	}
	return d
}

var (
	pinOnce sync.Once
	pin     executor.Kind
	pinSet  bool
)

// pinnedKind resolves the DOCONSIDER_STRATEGY override once per process.
// An unknown name is ignored (the planner decides) rather than failing
// every plan construction.
func pinnedKind() (executor.Kind, bool) {
	pinOnce.Do(func() {
		name := os.Getenv("DOCONSIDER_STRATEGY")
		if name == "" {
			return
		}
		if k, err := executor.KindByName(name); err == nil {
			pin, pinSet = k, true
		}
	})
	return pin, pinSet
}
