package planner

import (
	"doconsider/internal/wavefront"
)

// Features are cheap structural measurements of one dependence DAG at a
// fixed processor count — everything the cost model needs, computable in
// one O(N + E) sweep at plan-construction time (the inspector already
// paid O(N + E) for the wavefront numbers, so analysis does not change
// the asymptotic cost of planning).
type Features struct {
	N     int `json:"n"`     // loop indices (rows)
	Edges int `json:"edges"` // dependence edges (off-diagonals of a factor)
	P     int `json:"p"`     // processors the plan will run on

	Levels   int     `json:"levels"`    // wavefront count — the DAG depth
	MaxWidth int     `json:"max_width"` // widest wavefront
	AvgWidth float64 `json:"avg_width"` // N / Levels
	CritFrac float64 `json:"crit_frac"` // Levels / N: 1 = pure chain, →0 = flat

	AvgDeps float64 `json:"avg_deps"` // Edges / N
	MaxDeps int     `json:"max_deps"` // densest row
	DepSkew float64 `json:"dep_skew"` // MaxDeps / AvgDeps (1 = uniform rows)

	MeanDist float64 `json:"mean_dist"` // mean dependence distance |i - t|
	DistFrac float64 `json:"dist_frac"` // MeanDist / N — bandwidth scatter

	// LevelSum is Σ_l ceil(width_l / P): the step count of a perfectly
	// dealt wavefront schedule where every index costs one step. It lower-
	// bounds to max(ceil(N/P), Levels) and is the pooled executor's
	// idealized makespan in row units.
	LevelSum int `json:"level_sum"`
	// NatSteps is the unit-work makespan of the natural striped order —
	// the doacross executor's idealized makespan in row units, from an
	// exact earliest-finish sweep over the DAG with index i pinned to
	// worker i mod P.
	NatSteps int `json:"nat_steps"`
	// LateEdges counts dependence edges shorter than the stripe width P.
	// Under the natural striped order the producer of such an edge runs
	// in the consumer's own time slot (or later), so each is a likely
	// busy-wait for the doacross executor.
	LateEdges int `json:"late_edges"`
	// Backward reports that every dependence points to a smaller index —
	// the precondition for executing the natural order at all. A general
	// DAG (forward edges) rules the doacross executor out entirely: its
	// striped natural order would busy-wait on indices later in the same
	// worker's own list.
	Backward bool `json:"backward"`

	// Fusion, when non-nil, describes the supernode partition the caller
	// detected over this structure (internal/supernode) and makes the
	// supernodal executor a candidate. Callers that cannot execute fused
	// units — core.New over a bare Deps, pinned-kind plans — leave it nil
	// and the planner never chooses fusion, mirroring how the advisory
	// Reorder field is ignored by callers without a matrix to rank.
	Fusion *Fusion `json:"fusion,omitempty"`
}

// Fusion summarizes a supernode partition for cost-model pricing: the
// unit-level structure after fusing runs of rows into single scheduling
// units. The per-row arithmetic is unchanged by fusion — only the
// scheduling-unit count, dependence-check count and barrier count shrink.
type Fusion struct {
	Nodes     int `json:"nodes"`      // scheduling units after fusion
	FusedRows int `json:"fused_rows"` // rows inside nodes of width >= 2
	MaxWidth  int `json:"max_width"`  // widest node
	// Unit-level DAG shape, measured like the row-level LevelSum/Levels
	// but over the compressed dependence structure.
	UnitEdges    int `json:"unit_edges"`
	UnitLevels   int `json:"unit_levels"`
	UnitLevelSum int `json:"unit_level_sum"` // Σ_l ceil(unit_width_l / P)
}

// Analyze measures deps (with wavefront numbers wf, as computed by the
// inspector) for execution on procs processors.
func Analyze(deps *wavefront.Deps, wf []int32, procs int) Features {
	if procs < 1 {
		procs = 1
	}
	f := Features{N: deps.N, Edges: deps.Edges(), P: procs}
	if deps.N == 0 {
		return f
	}

	hist := wavefront.Histogram(wf)
	f.Levels = len(hist)
	for _, w := range hist {
		if w > f.MaxWidth {
			f.MaxWidth = w
		}
		f.LevelSum += (w + procs - 1) / procs
	}
	f.AvgWidth = float64(f.N) / float64(f.Levels)
	f.CritFrac = float64(f.Levels) / float64(f.N)
	f.AvgDeps = float64(f.Edges) / float64(f.N)

	// Earliest-finish sweep of the natural striped order: index i runs on
	// worker i mod P after the worker's previous index and after every
	// dependence. finish is in unit row-steps. The sweep is exact only
	// for backward dependences; a forward edge marks the DAG general and
	// the doacross candidate invalid (see Backward).
	finish := make([]int32, f.N)
	var distSum float64
	natMax := int32(0)
	f.Backward = true
	for i := 0; i < f.N; i++ {
		on := deps.On(i)
		if len(on) > f.MaxDeps {
			f.MaxDeps = len(on)
		}
		start := int32(0)
		if i >= procs {
			start = finish[i-procs]
		}
		for _, t := range on {
			if int(t) >= i {
				f.Backward = false
			}
			d := i - int(t)
			if d < 0 {
				d = -d
			}
			distSum += float64(d)
			if d < procs {
				f.LateEdges++
			}
			if finish[t] > start {
				start = finish[t]
			}
		}
		finish[i] = start + 1
		if finish[i] > natMax {
			natMax = finish[i]
		}
	}
	f.NatSteps = int(natMax)
	if f.Edges > 0 {
		f.MeanDist = distSum / float64(f.Edges)
		f.DistFrac = f.MeanDist / float64(f.N)
	}
	if f.AvgDeps > 0 {
		f.DepSkew = float64(f.MaxDeps) / f.AvgDeps
	}
	return f
}
