package planner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// calibFileVersion guards the persisted calibration schema: bumping it
// invalidates stale files so a model change recalibrates instead of
// misreading old constants (version 2 added Parallelism; version 3 added
// the repair-vs-rebuild pricing constants; version 4 added the fused
// per-row discount TRowFused).
const calibFileVersion = 4

// calibFile is the on-disk calibration record.
type calibFile struct {
	Version    int       `json:"version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Model      CostModel `json:"model"`
}

// Calibrate measures the host's planner cost constants with one-shot
// microbenchmarks: the dependent multiply-add chain (TDep), indirect
// loop-body dispatch (TRow), shared ready-array checks (TCheck),
// yield-and-recheck spin rounds (TSpin), and the fixed cost of waking a
// pooled worker set for an empty pass (TPass). The whole run is bounded
// to a few tens of milliseconds; it is meant to run once per machine and
// be persisted (see ForHost).
//
// Measurements on a loaded machine wobble, so consumers should rely on
// coarse ordering only; the selection thresholds the constants feed are
// order-of-magnitude decisions.
func Calibrate() *CostModel {
	m := Default()
	m.Calibrated = true
	m.Parallelism = runtime.GOMAXPROCS(0)
	const iters = 1 << 16

	// TDep: dependent multiply-add chain, one flop pair per iteration.
	x := 1.0
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		x = x*0.999999 + 1e-9
	}
	if d := time.Since(t0).Seconds() / iters; d > 0 {
		m.TDep = d
	}
	sink = x

	// TRow: indirect call through a stored closure — the per-index body
	// dispatch every executor pays.
	body := bodySink
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		body(int32(i))
	}
	if d := time.Since(t0).Seconds() / iters; d > 0 {
		m.TRow = d
	}

	// TCheck: shared ready-array check (atomic load + compare).
	var flag int32 = 1
	acc := int32(0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if atomic.LoadInt32(&flag) == 1 {
			acc++
		}
	}
	if d := time.Since(t0).Seconds() / iters; d > 0 {
		m.TCheck = d
	}
	sinkI = acc

	// TSpin: one not-ready round — check plus a scheduler yield.
	const spinIters = 1 << 12
	t0 = time.Now()
	for i := 0; i < spinIters; i++ {
		if atomic.LoadInt32(&flag) != 0 {
			runtime.Gosched()
		}
	}
	if d := time.Since(t0).Seconds() / spinIters; d > 0 {
		m.TSpin = d
	}

	// TPass: wake-and-retire cost of a pooled pass with next to no work.
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 2
	}
	wf := make([]int32, procs)
	s := schedule.Global(wf, procs)
	deps := wavefront.FromAdjacency(make([][]int32, procs))
	strat := &executor.PooledStrategy{}
	noop := func(int32) {}
	if _, err := strat.Execute(context.Background(), s, deps, noop); err == nil {
		const passes = 64
		t0 = time.Now()
		for i := 0; i < passes; i++ {
			_, _ = strat.Execute(context.Background(), s, deps, noop)
		}
		if d := time.Since(t0).Seconds() / passes; d > 0 {
			m.TPass = d
		}
	}
	_ = strat.Close()

	if err := m.Validate(); err != nil {
		// Timer too coarse or the host too hostile: fall back whole-hog
		// rather than mixing measured and default constants arbitrarily.
		return Default()
	}
	return m
}

// sinks keep the calibration loops from being optimized away.
var (
	sink     float64
	sinkI    int32
	bodySink = func(i int32) { sinkI += i }
)

// Save persists the model to path (creating parent directories).
func Save(path string, m *CostModel) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(calibFile{
		Version:    calibFileVersion,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Model:      *m,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a persisted model, rejecting version mismatches and
// constants that fail Validate.
func Load(path string) (*CostModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cf calibFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("planner: %s: %w", path, err)
	}
	if cf.Version != calibFileVersion {
		return nil, fmt.Errorf("planner: %s has calibration version %d, want %d", path, cf.Version, calibFileVersion)
	}
	m := cf.Model
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// DefaultPath returns where ForHost persists the host calibration: the
// user cache directory when available, the system temp directory
// otherwise.
func DefaultPath() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "doconsider", "calibration.json")
}

var (
	hostOnce  sync.Once
	hostModel *CostModel
)

// ForHost returns the process-wide host cost model, resolving it once:
//
//   - Inside a test binary the canonical Default constants are used and
//     nothing touches the filesystem: microbenchmarks run under `go
//     test -race` are skewed several-fold by instrumentation, and
//     persisting those constants would poison the machine's real
//     calibration for every later production run. Tests that want a
//     measured model call Calibrate directly.
//   - DOCONSIDER_CALIBRATION=off (or "default") skips calibration and
//     uses the canonical Default constants — the right setting for
//     reproducible CI runs.
//   - DOCONSIDER_CALIBRATION=<path> relocates the persisted file.
//   - Otherwise the model is loaded from DefaultPath, or measured once
//     with Calibrate and persisted there (best-effort: an unwritable
//     cache directory costs recalibration next process, not an error).
func ForHost() *CostModel {
	hostOnce.Do(func() {
		if testing.Testing() {
			hostModel = Default()
			return
		}
		path := os.Getenv("DOCONSIDER_CALIBRATION")
		switch path {
		case "off", "default":
			hostModel = Default()
			return
		case "":
			path = DefaultPath()
		}
		if m, err := Load(path); err == nil {
			hostModel = m
			return
		}
		hostModel = Calibrate()
		_ = Save(path, hostModel)
	})
	return hostModel
}
