package planner_test

import (
	"testing"

	"doconsider/internal/planner"
	"doconsider/internal/problems"
)

// BenchmarkAnalyze measures the per-plan cost of DAG feature extraction
// — the planner's only O(N + E) addition to the inspector.
func BenchmarkAnalyze(b *testing.B) {
	p := problems.MustGet("5-PT")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = planner.Analyze(p.Deps, p.Wf, 4)
	}
}

// BenchmarkSelect measures the decision itself (feature comparison under
// the cost model; no graph traversal).
func BenchmarkSelect(b *testing.B) {
	p := problems.MustGet("5-PT")
	f := planner.Analyze(p.Deps, p.Wf, 4)
	m := planner.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = planner.Select(f, m)
	}
}
