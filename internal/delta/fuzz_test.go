package delta

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"doconsider/internal/executor"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/supernode"
	"doconsider/internal/wavefront"
)

// FuzzRepair pins the repair ≡ full-re-inspection equivalence the delta
// subsystem promises: over random triangular factors (both directions)
// and random structural edit sets,
//
//   - the repaired wavefront assignment is identical to what
//     wavefront.Compute returns for the edited structure,
//   - the repaired schedule is a valid wrapped-deal schedule, and
//   - triangular solves executed under the repaired schedule are
//     bit-identical to solves under a from-scratch schedule, for a
//     single right-hand side and for a batch,
//
// including along drift chains (repairing an already-repaired state) and
// under cone bounds (which must abort with ErrConeTooLarge, never return
// a wrong plan).
func FuzzRepair(f *testing.F) {
	f.Add(int64(1), uint8(24), uint8(3), uint8(3), true)
	f.Add(int64(2), uint8(40), uint8(2), uint8(6), false)
	f.Add(int64(1989), uint8(90), uint8(4), uint8(1), true)
	f.Add(int64(7), uint8(6), uint8(1), uint8(9), false)
	f.Add(int64(42), uint8(255), uint8(5), uint8(12), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, degRaw, editRaw uint8, lower bool) {
		n := int(nRaw)%96 + 2
		deg := int(degRaw)%5 + 1
		editCount := int(editRaw)%10 + 1
		rng := rand.New(rand.NewSource(seed))

		factor := randomFactor(rng, n, deg, lower)
		deps := factorDepsFull(factor, lower)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		st := NewState(deps, wf, schedule.Global(wf, 4))
		part := supernode.Detect(deps, supernode.Config{})

		// Drift chain: repair twice from successive states.
		for step := 0; step < 2; step++ {
			edited := toggleFactor(rng, factor, editCount, lower)
			changed, ok := DiffFactor(st.Deps, edited, lower, 0)
			if !ok {
				t.Fatal("unbounded DiffFactor reported not ok")
			}
			newDeps := FactorDeps(st.Deps, edited, lower, changed)

			next, stats, err := st.Repair(newDeps, changed, Options{})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}

			// Level identity against the paper's Figure 7 sweep.
			ref, err := wavefront.Compute(newDeps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if next.Wf[i] != ref[i] {
					t.Fatalf("step %d: wf[%d] = %d, want %d", step, i, next.Wf[i], ref[i])
				}
			}
			if err := wavefront.Validate(next.Wf, newDeps); err != nil {
				t.Fatal(err)
			}
			checkSchedule(t, next.Sched, next.Wf)

			// Supernodal invariant: re-splicing the previous partition
			// around the edited rows lands exactly on fresh detection over
			// the repaired structure — the identity trisolve's plan cache
			// relies on to keep drift chains fused.
			part = supernode.Resplice(part, newDeps, changed)
			freshPart := supernode.Detect(newDeps, supernode.Config{})
			if len(part.RowPtr) != len(freshPart.RowPtr) {
				t.Fatalf("step %d: respliced partition has %d nodes, fresh detection %d",
					step, part.NumNodes(), freshPart.NumNodes())
			}
			for u := range freshPart.RowPtr {
				if part.RowPtr[u] != freshPart.RowPtr[u] {
					t.Fatalf("step %d: RowPtr[%d] = %d, want %d", step, u, part.RowPtr[u], freshPart.RowPtr[u])
				}
			}
			for u := range freshPart.Uniform {
				if part.Uniform[u] != freshPart.Uniform[u] {
					t.Fatalf("step %d: Uniform[%d] = %v, want %v", step, u, part.Uniform[u], freshPart.Uniform[u])
				}
			}
			unitDeps := part.Compress(newDeps)
			unitWf, err := wavefront.Compute(unitDeps)
			if err != nil {
				t.Fatalf("step %d: compressed levels: %v", step, err)
			}
			unitSched := schedule.Global(unitWf, 4)

			// Bit-identical solves: one RHS and a batch of three — the
			// repaired schedule and the compressed (supernodal) schedule
			// against a from-scratch row schedule.
			fresh := schedule.Global(ref, 4)
			for _, k := range []int{1, 3} {
				bs := make([][]float64, k)
				for j := range bs {
					bs[j] = make([]float64, n)
					for i := range bs[j] {
						bs[j][i] = rng.NormFloat64()
					}
				}
				want := solveAll(t, fresh, newDeps, edited, lower, bs)
				got := solveAll(t, next.Sched, newDeps, edited, lower, bs)
				fusedGot := solveAllFused(t, unitSched, unitDeps, part, edited, lower, bs)
				for j := range want {
					for i := range want[j] {
						if want[j][i] != got[j][i] {
							t.Fatalf("step %d k=%d: x[%d][%d] = %v, want %v (not bit-identical)",
								step, k, j, i, got[j][i], want[j][i])
						}
						if want[j][i] != fusedGot[j][i] {
							t.Fatalf("step %d k=%d: fused x[%d][%d] = %v, want %v (not bit-identical)",
								step, k, j, i, fusedGot[j][i], want[j][i])
						}
					}
				}
			}

			// A cone bound below the observed cone must abort, never
			// mis-repair.
			if stats.Cone > 1 {
				if _, _, err := st.Repair(newDeps, changed, Options{MaxCone: stats.Cone - 1}); !errors.Is(err, ErrConeTooLarge) {
					t.Fatalf("step %d: cone bound %d: err = %v, want ErrConeTooLarge", step, stats.Cone-1, err)
				}
			}

			factor, st = edited, next
		}
	})
}

// solveAll runs a sequential triangular solve for each right-hand side
// under the given schedule, using the same per-row arithmetic as
// trisolve's executor bodies.
func solveAll(t *testing.T, s *schedule.Schedule, deps *wavefront.Deps, factor *sparse.CSR, lower bool, bs [][]float64) [][]float64 {
	t.Helper()
	n := factor.N
	inv := make([]float64, n)
	for i := 0; i < n; i++ {
		d := factor.At(i, i)
		if d == 0 {
			t.Fatal("zero diagonal in generated factor")
		}
		inv[i] = 1 / d
	}
	strat, err := executor.Sequential.NewStrategy()
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, len(bs))
	for j, b := range bs {
		x := make([]float64, n)
		var body executor.Body
		if lower {
			body = func(i int32) {
				cols, vals := factor.Row(int(i))
				sum := b[i]
				for k, c := range cols {
					if c != i {
						sum -= vals[k] * x[c]
					}
				}
				x[i] = sum * inv[i]
			}
		} else {
			body = func(k int32) {
				i := n - 1 - int(k)
				cols, vals := factor.Row(i)
				sum := b[i]
				for q, c := range cols {
					if int(c) != i {
						sum -= vals[q] * x[c]
					}
				}
				x[i] = sum * inv[i]
			}
		}
		if _, err := strat.Execute(context.Background(), s, deps, body); err != nil {
			t.Fatal(err)
		}
		xs[j] = x
	}
	return xs
}

// solveAllFused is solveAll over a compressed supernodal schedule: each
// scheduled index is a partition node whose rows run in order with the
// same per-row arithmetic, so results must be bit-identical to the
// row-wise schedules.
func solveAllFused(t *testing.T, s *schedule.Schedule, unitDeps *wavefront.Deps, part *supernode.Partition, factor *sparse.CSR, lower bool, bs [][]float64) [][]float64 {
	t.Helper()
	n := factor.N
	inv := make([]float64, n)
	for i := 0; i < n; i++ {
		d := factor.At(i, i)
		if d == 0 {
			t.Fatal("zero diagonal in generated factor")
		}
		inv[i] = 1 / d
	}
	strat, err := executor.Sequential.NewStrategy()
	if err != nil {
		t.Fatal(err)
	}
	row := func(x, b []float64, i int) {
		cols, vals := factor.Row(i)
		sum := b[i]
		for k, c := range cols {
			if int(c) != i {
				sum -= vals[k] * x[c]
			}
		}
		x[i] = sum * inv[i]
	}
	xs := make([][]float64, len(bs))
	for j, b := range bs {
		x := make([]float64, n)
		body := func(u int32) {
			lo, hi := part.Rows(int(u))
			for k := lo; k < hi; k++ {
				i := int(k)
				if !lower {
					i = n - 1 - i
				}
				row(x, b, i)
			}
		}
		if _, err := strat.Execute(context.Background(), s, unitDeps, body); err != nil {
			t.Fatal(err)
		}
		xs[j] = x
	}
	return xs
}
