// Package delta implements incremental re-inspection: given the
// inspector output for one dependence structure (wavefront levels plus a
// CSR schedule) and a structural edit set — per-row dependence
// insertions and deletions, the footprint of an adaptive mesh step or a
// refactorization with a modified drop pattern — it repairs the levels
// and the schedule locally instead of re-running the full O(N+E)
// inspection.
//
// The paper's economics are inspector-cost amortization: inspection is
// paid once and the schedule reused across executions. A plan cache
// (internal/plancache) extends that across structurally identical
// solves; this package extends it across structurally *similar* ones.
// Level changes propagate only through the cone of iterations reachable
// from the edited rows, so a small edit touches a small cone and repair
// costs a few cheap O(N) splices plus the cone — typically several times
// cheaper than cold inspection. When the cone grows past the planner's
// break-even bound (planner.PlanRepair), Repair aborts with
// ErrConeTooLarge and the caller falls back to a full rebuild.
//
// A repaired plan is exactly equivalent to a from-scratch inspection of
// the edited structure: the level assignment is identical (pinned by
// FuzzRepair against wavefront.Compute), and because a row's arithmetic
// is fixed by the row itself, every executor produces bit-identical
// results under the repaired schedule.
package delta

import (
	"fmt"
	"sort"

	"doconsider/internal/wavefront"
)

// RowEdit describes the structural change to one iteration's dependence
// set: targets added and targets removed. Insertions must be absent from
// the row and deletions present in it — a drifted structure is an exact
// object, not a hint, and a mismatched edit means the caller's picture
// of the base structure is stale.
type RowEdit struct {
	Row    int32
	Insert []int32 // dependence targets added; must not already be present
	Delete []int32 // dependence targets removed; must be present
}

// EditSet is a collection of row edits, at most one per row.
type EditSet []RowEdit

// Apply produces the dependence structure that results from applying
// edits to d, along with the sorted list of edited rows. d is not
// modified; unchanged row spans are block-copied, so the cost is a
// memcpy of the index arrays plus the edited rows themselves.
func Apply(d *wavefront.Deps, edits EditSet) (*wavefront.Deps, []int32, error) {
	if len(edits) == 0 {
		return d, nil, nil
	}
	rows := make(map[int32][]int32, len(edits))
	changed := make([]int32, 0, len(edits))
	for _, e := range edits {
		if e.Row < 0 || int(e.Row) >= d.N {
			return nil, nil, fmt.Errorf("delta: edit row %d outside [0,%d)", e.Row, d.N)
		}
		if _, dup := rows[e.Row]; dup {
			return nil, nil, fmt.Errorf("delta: row %d edited twice", e.Row)
		}
		nr, err := editRow(d.On(int(e.Row)), e.Insert, e.Delete, e.Row, int32(d.N))
		if err != nil {
			return nil, nil, err
		}
		rows[e.Row] = nr
		changed = append(changed, e.Row)
	}
	sort.Slice(changed, func(a, b int) bool { return changed[a] < changed[b] })
	return spliceRows(d, changed, rows), changed, nil
}

// editRow returns the sorted dependence set (old ∖ del) ∪ ins, validating
// the edit against the current row content.
func editRow(old, ins, del []int32, row, n int32) ([]int32, error) {
	os := sortedCopy(old)
	is := sortedCopy(ins)
	ds := sortedCopy(del)
	for k, t := range is {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("delta: row %d inserts out-of-range dependence %d", row, t)
		}
		if t == row {
			return nil, fmt.Errorf("delta: row %d inserts a self-dependence", row)
		}
		if k > 0 && is[k-1] == t {
			return nil, fmt.Errorf("delta: row %d inserts dependence %d twice", row, t)
		}
		if contains(os, t) {
			return nil, fmt.Errorf("delta: row %d inserts dependence %d, already present", row, t)
		}
		if contains(ds, t) {
			return nil, fmt.Errorf("delta: row %d both inserts and deletes dependence %d", row, t)
		}
	}
	for k, t := range ds {
		if k > 0 && ds[k-1] == t {
			return nil, fmt.Errorf("delta: row %d deletes dependence %d twice", row, t)
		}
		if !contains(os, t) {
			return nil, fmt.Errorf("delta: row %d deletes dependence %d, not present", row, t)
		}
	}
	kept := make([]int32, 0, len(os)-len(ds)+len(is))
	di := 0
	for _, t := range os {
		if di < len(ds) && ds[di] == t {
			di++
			continue
		}
		kept = append(kept, t)
	}
	return mergeSorted(kept, is), nil
}

// spliceRows builds a new Deps replacing the given (sorted) rows with the
// supplied content; all other rows are block-copied from d.
func spliceRows(d *wavefront.Deps, changed []int32, rows map[int32][]int32) *wavefront.Deps {
	n := d.N
	size := len(d.Idx)
	for _, r := range changed {
		size += len(rows[r]) - d.Count(int(r))
	}
	idx := make([]int32, 0, size)
	prev := 0
	for _, r := range changed {
		idx = append(idx, d.Idx[d.Ptr[prev]:d.Ptr[r]]...)
		idx = append(idx, rows[r]...)
		prev = int(r) + 1
	}
	idx = append(idx, d.Idx[d.Ptr[prev]:]...)

	ptr := make([]int32, n+1)
	off, ci := int32(0), 0
	for i := 0; i < n; i++ {
		if ci < len(changed) && changed[ci] == int32(i) {
			off += int32(len(rows[int32(i)])) - (d.Ptr[i+1] - d.Ptr[i])
			ci++
		}
		ptr[i+1] = d.Ptr[i+1] + off
	}
	return &wavefront.Deps{N: n, Ptr: ptr, Idx: idx}
}

// DiffRows returns the sorted list of rows whose dependence sets differ
// between a and b. Rows are compared as sets: the order in which two
// constructors list a row's dependences never affects inspection output,
// so it must not produce phantom diffs either (repaired structures store
// edited rows sorted while wavefront.FromUpper lists them reflected).
func DiffRows(a, b *wavefront.Deps) ([]int32, error) {
	if a.N != b.N {
		return nil, fmt.Errorf("delta: structures have %d and %d iterations", a.N, b.N)
	}
	var changed []int32
	for i := 0; i < a.N; i++ {
		ra, rb := a.On(i), b.On(i)
		if len(ra) != len(rb) {
			changed = append(changed, int32(i))
			continue
		}
		same := true
		for k := range ra {
			if ra[k] != rb[k] {
				same = false
				break
			}
		}
		if same {
			continue
		}
		// Order mismatch is not a structural difference; compare as sets.
		if !equalAsSets(ra, rb) {
			changed = append(changed, int32(i))
		}
	}
	return changed, nil
}

func sortedCopy(x []int32) []int32 {
	c := append([]int32(nil), x...)
	sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
	return c
}

// contains reports whether sorted slice s holds t.
func contains(s []int32, t int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == t
}

func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func equalAsSets(a, b []int32) bool {
	sa, sb := sortedCopy(a), sortedCopy(b)
	for k := range sa {
		if sa[k] != sb[k] {
			return false
		}
	}
	return true
}
