package delta

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"doconsider/internal/planner"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// driftedSuiteProblem is one problem-suite factor with a small drift
// applied: about 1% of rows edited (well under the ≤5% the repair path
// targets), the base state warm (reverse adjacency built — the steady
// state of a drift chain).
type driftedSuiteProblem struct {
	name    string
	base    *State
	edited  *sparse.CSR
	changed []int32 // the edited rows, as a drift-aware caller knows them
}

func driftedSuite(tb testing.TB, editFrac float64) []driftedSuiteProblem {
	var out []driftedSuiteProblem
	for _, name := range problems.TriSolveNames() {
		p, err := problems.Get(name)
		if err != nil {
			tb.Fatal(err)
		}
		st := NewState(p.Deps, p.Wf, schedule.Global(p.Wf, 4))
		st.Reverse()
		rng := rand.New(rand.NewSource(1989))
		edits := int(float64(p.L.N)*editFrac) + 1
		edited := localToggleFactor(rng, p.L, p.Wf, edits)
		changed, ok := DiffFactor(p.Deps, edited, true, 0)
		if !ok || len(changed) == 0 {
			tb.Fatalf("%s: drift produced no diff", name)
		}
		out = append(out, driftedSuiteProblem{name: name, base: st, edited: edited, changed: changed})
	}
	return out
}

// BenchmarkRepairVsRebuild compares the ways a near-miss plan lookup can
// obtain inspector output for a drifted factor:
//
//   - rebuild: full cold re-inspection (dependence extraction, wavefront
//     sweep, planner analysis, schedule construction — what a plain
//     cache miss pays);
//   - repair-scan: the delta repair path when only the matrix is known —
//     bounded row diff against the resident ancestor, spliced structure,
//     cone-local releveling;
//   - repair-hinted: the same repair when the caller names the edited
//     rows, as the serving path's base_fp+edits request form does — the
//     diff scan disappears and only the edit footprint is touched.
//
// The repair sub-benchmarks are alloc-gated in ci/bench_baseline.json;
// the ≥5× repair-hinted target is enforced by TestRepairCompetitive.
func BenchmarkRepairVsRebuild(b *testing.B) {
	for _, sp := range driftedSuite(b, 0.01) {
		n, edges := sp.base.Deps.N, sp.base.Deps.Edges()
		b.Run(sp.name+"/rebuild", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				deps := wavefront.FromLower(sp.edited)
				wf, err := wavefront.Compute(deps)
				if err != nil {
					b.Fatal(err)
				}
				planner.Select(planner.Analyze(deps, wf, 4), planner.Default())
				schedule.Global(wf, 4)
			}
		})
		b.Run(sp.name+"/repair-scan", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				changed, ok := DiffFactor(sp.base.Deps, sp.edited, true, n/2)
				if !ok {
					b.Fatal("drift unexpectedly large")
				}
				repairOnce(b, sp.base, sp.edited, changed, n, edges)
			}
		})
		b.Run(sp.name+"/repair-hinted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				repairOnce(b, sp.base, sp.edited, sp.changed, n, edges)
			}
		})
	}
}

func repairOnce(b *testing.B, base *State, edited *sparse.CSR, changed []int32, n, edges int) {
	newDeps := FactorDeps(base.Deps, edited, true, changed)
	dec := planner.PlanRepair(n, edges, len(changed), planner.Default())
	if !dec.Repair {
		b.Fatal("planner declined repair for a 1% edit")
	}
	if _, _, err := base.Repair(newDeps, changed, Options{MaxCone: dec.MaxCone}); err != nil {
		b.Fatal(err)
	}
}

// TestRepairCompetitive is the opt-in acceptance harness for the ≥5×
// repair-vs-rebuild target at ≤5% edited rows: run with
// DOCONSIDER_PERF=1 on a quiet machine. It takes best-of timings of the
// same paths BenchmarkRepairVsRebuild times and requires, on every problem of
// the suite, hinted repair (the serving path, edited rows known from the
// wire) to be ≥5× cheaper than a rebuild and the scan path (edited rows
// discovered by diffing) to never be slower.
func TestRepairCompetitive(t *testing.T) {
	if os.Getenv("DOCONSIDER_PERF") == "" {
		t.Skip("perf acceptance harness; set DOCONSIDER_PERF=1 to run")
	}
	const reps = 25
	for _, sp := range driftedSuite(t, 0.01) {
		n, edges := sp.base.Deps.N, sp.base.Deps.Edges()
		rebuild := bestOf(reps, func() {
			deps := wavefront.FromLower(sp.edited)
			wf, _ := wavefront.Compute(deps)
			planner.Select(planner.Analyze(deps, wf, 4), planner.Default())
			schedule.Global(wf, 4)
		})
		repair := func(scan bool) time.Duration {
			return bestOf(reps, func() {
				changed := sp.changed
				if scan {
					changed, _ = DiffFactor(sp.base.Deps, sp.edited, true, 0)
				}
				newDeps := FactorDeps(sp.base.Deps, sp.edited, true, changed)
				dec := planner.PlanRepair(n, edges, len(changed), planner.Default())
				if _, _, err := sp.base.Repair(newDeps, changed, Options{MaxCone: dec.MaxCone}); err != nil {
					t.Fatal(err)
				}
			})
		}
		scan, hinted := repair(true), repair(false)
		t.Logf("%s: rebuild %v, repair-scan %v (%.1fx), repair-hinted %v (%.1fx)",
			sp.name, rebuild, scan, float64(rebuild)/float64(scan),
			hinted, float64(rebuild)/float64(hinted))
		if float64(rebuild)/float64(hinted) < 5 {
			t.Errorf("%s: hinted repair only %.1fx over rebuild, want >= 5x",
				sp.name, float64(rebuild)/float64(hinted))
		}
		if scan > rebuild {
			t.Errorf("%s: scan repair slower than rebuild (%v > %v)", sp.name, scan, rebuild)
		}
	}
}

// localToggleFactor applies level-compatible fill drift to count rows:
// each edited row gains a fill entry adjacent to an existing one whose
// wavefront level sits below the row's — the signature of an ILU
// refactorization whose drop tolerance admits a neighbor it previously
// dropped. Such fill cannot raise any level (new dependences point below
// the row's level), so the repair cone stays within the edit footprint;
// level-breaking edits — deleting a critical stencil coupling, fill that
// jumps levels — relevel whole downstream regions and are correctly
// routed to a rebuild by the cone bound (exercised by FuzzRepair and
// TestRepairConeBound, not benchmarked as "repair"). It is the
// test-local twin of synthetic.DriftLower.
func localToggleFactor(rng *rand.Rand, a *sparse.CSR, wf []int32, count int) *sparse.CSR {
	n := a.N
	low := make([][]int32, n) // strictly-lower columns per row, sorted
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) < i {
				low[i] = append(low[i], c)
			}
		}
	}
	for done, tries := 0, 0; done < count && tries < count*50; tries++ {
		i := rng.Intn(n-1) + 1
		if len(low[i]) == 0 {
			continue
		}
		t := low[i][rng.Intn(len(low[i]))]
		// Insert the nearest absent level-compatible column below the
		// picked entry.
		ins := int32(-1)
		for c := t - 1; c >= 0 && c >= t-16; c-- {
			if wf[c] < wf[i] && !containsInt32(low[i], c) {
				ins = c
				break
			}
		}
		if ins < 0 {
			continue
		}
		low[i] = insertSorted(low[i], ins)
		done++
	}
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for q, c := range cols {
			if int(c) >= i {
				ts = append(ts, sparse.Triplet{Row: i, Col: int(c), Val: vals[q]})
			}
		}
		for _, c := range low[i] {
			ts = append(ts, sparse.Triplet{Row: i, Col: int(c), Val: a.At(i, int(c))})
		}
	}
	out := sparse.MustAssemble(n, n, ts)
	// Freshly inserted entries get a deterministic nonzero value.
	for i := 0; i < n; i++ {
		cols, vals := out.Row(i)
		for q, c := range cols {
			if vals[q] == 0 {
				vals[q] = 0.01 * float64((int(c)+i)%7+1)
			}
		}
	}
	return out
}

func containsInt32(s []int32, t int32) bool {
	for _, v := range s {
		if v == t {
			return true
		}
	}
	return false
}

func insertSorted(s []int32, v int32) []int32 {
	s = append(s, v)
	i := len(s) - 1
	for i > 0 && s[i-1] > s[i] {
		s[i-1], s[i] = s[i], s[i-1]
		i--
	}
	return s
}

// bestOf returns the fastest of reps timed runs — the robust estimator
// of a deterministic path's cost floor on a machine with background
// noise (the same convention cmd/ci's allocs gate uses via minMetric).
func bestOf(reps int, f func()) time.Duration {
	f() // warm caches and the allocator before timing
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
