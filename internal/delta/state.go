package delta

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// ErrConeTooLarge reports that the level-repair propagation cone
// exceeded Options.MaxCone: the edit perturbed too much of the DAG for
// repair to beat a rebuild, and the caller should re-inspect from
// scratch (the fall-back the planner's break-even bound exists for).
var ErrConeTooLarge = errors.New("delta: edit cone exceeded the repair bound")

// ErrNotBackward reports a repair attempt on a structure with forward
// dependences. The single-pass cone propagation relies on every
// dependence pointing to a smaller iteration number (the paper's
// start-time schedulable precondition); general DAGs must rebuild.
var ErrNotBackward = errors.New("delta: repair requires backward (start-time schedulable) dependences")

// ErrNotGlobal reports a repair attempt against a schedule that was not
// built by wrapped dealing (Global/GlobalRanked/FromOrder); only those
// schedules can be spliced locally.
var ErrNotGlobal = errors.New("delta: schedule repair requires a wrapped-deal global schedule")

// Options bounds one repair.
type Options struct {
	// MaxCone aborts the level propagation once more than this many rows
	// have been re-examined (0 = unbounded). Callers set it to the
	// planner's repair-vs-rebuild break-even cone (planner.PlanRepair).
	MaxCone int
}

// Stats describes what one repair did.
type Stats struct {
	Changed int  // rows whose dependence set differs from the base
	Cone    int  // rows re-examined by the level propagation
	Moved   int  // rows whose wavefront level actually changed
	Reused  bool // no level moved: the base schedule was shared as-is
	// Fallback is set by callers (core.Runtime.Patch, the plan cache)
	// when the planner declined repair or the cone bound tripped and the
	// structure was re-inspected from scratch instead.
	Fallback bool
}

// State bundles one structure's inspector output — dependences, levels,
// schedule — plus the lazily built consumer adjacency that makes
// repeated repairs incremental. States are immutable once built; Repair
// returns a fresh State and hands the consumer adjacency forward, so a
// drift chain pays the O(N+E) reverse construction once.
//
// The handed-forward adjacency is allowed to go stale: a repair does not
// splice the reverse structure, it records the edited rows in revDirty
// instead, and every later repair re-seeds those rows into its
// propagation cone. That is sound because the stale adjacency differs
// from the true one only at consumers whose own dependence row was
// edited since the adjacency was built — exactly the rows revDirty
// holds, so they are re-examined regardless of whether an edge into
// them is missing from the stale picture. Extra stale edges merely cause
// a harmless re-examination. Once revDirty outgrows revRebuildFrac of
// the structure, the adjacency is dropped and rebuilt fresh on next use.
type State struct {
	Deps  *wavefront.Deps
	Wf    []int32
	Sched *schedule.Schedule

	backward bool
	revOnce  sync.Once
	rev      *wavefront.Deps
	revDirty []int32 // rows edited since rev was built (sorted, unique)
}

// revRebuildFrac bounds the staleness debt: when more than 1/8 of the
// rows have been edited since the reverse adjacency was built, carrying
// them as extra seeds costs more than rebuilding the adjacency.
const revRebuildFrac = 8

// NewState wraps freshly inspected output. The wavefront assignment must
// be the one wavefront.Compute produced for deps, and the schedule must
// be a wrapped-deal global schedule over wf (schedule.Global,
// GlobalRanked or FromOrder).
func NewState(deps *wavefront.Deps, wf []int32, sched *schedule.Schedule) *State {
	return &State{Deps: deps, Wf: wf, Sched: sched, backward: deps.CheckBackward() == nil}
}

// Reverse returns the consumer adjacency of the state's structure,
// building it on first use.
func (s *State) Reverse() *wavefront.Deps {
	s.revOnce.Do(func() {
		if s.rev == nil {
			s.rev = s.Deps.Reverse()
		}
	})
	return s.rev
}

// Repair produces the inspector output for newDeps — a structure that
// differs from s.Deps exactly in the given rows (as computed by DiffRows
// or returned by Apply) — by propagating level changes through the
// affected cone and splicing the schedule, instead of re-inspecting from
// scratch. The repaired levels are identical to what wavefront.Compute
// would return for newDeps, and the repaired schedule is a valid
// wrapped-deal global schedule over them.
func (s *State) Repair(newDeps *wavefront.Deps, changed []int32, o Options) (*State, Stats, error) {
	st := Stats{Changed: len(changed)}
	if !s.backward {
		return nil, st, ErrNotBackward
	}
	if newDeps.N != s.Deps.N {
		return nil, st, fmt.Errorf("delta: structure has %d iterations, base has %d", newDeps.N, s.Deps.N)
	}
	if s.Sched.N != s.Deps.N || s.Sched.P < 1 {
		return nil, st, ErrNotGlobal
	}
	for _, r := range changed {
		if r < 0 || int(r) >= newDeps.N {
			return nil, st, fmt.Errorf("delta: changed row %d outside [0,%d)", r, newDeps.N)
		}
		for _, t := range newDeps.On(int(r)) {
			if t < 0 || t >= r {
				return nil, st, ErrNotBackward
			}
		}
	}
	if len(changed) == 0 {
		st.Reused = true
		return &State{Deps: newDeps, Wf: s.Wf, Sched: s.Sched, backward: true}, st, nil
	}
	sorted := append([]int32(nil), changed...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })

	// The stale-reverse invariant (see State): propagate over the base
	// adjacency, seeding both the fresh edits and every row edited since
	// that adjacency was built.
	seeds := sorted
	if len(s.revDirty) > 0 {
		seeds = mergeUnique(s.revDirty, sorted)
	}
	wf, cone, moved, err := relevel(newDeps, s.Reverse(), s.Wf, seeds, o.MaxCone)
	st.Cone = cone
	if err != nil {
		return nil, st, err
	}
	st.Moved = len(moved)
	var sched *schedule.Schedule
	if len(moved) == 0 {
		// Dependences changed but no level did: the base schedule is still
		// a valid wavefront ordering of the new structure. Share it.
		sched = s.Sched
		wf = s.Wf
		st.Reused = true
	} else {
		sched = repairSchedule(s.Sched, wf, moved)
	}
	next := &State{Deps: newDeps, Wf: wf, Sched: sched, backward: true}
	// seeds is exactly the staleness debt the child inherits: the rows
	// edited since s.rev was built, plus this repair's edits.
	if len(seeds)*revRebuildFrac <= newDeps.N {
		next.rev = s.Reverse()
		next.revDirty = seeds
	}
	return next, st, nil
}

// mergeUnique merges two sorted int32 slices, dropping duplicates.
func mergeUnique(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int32
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			v = a[i]
			i++
		case i >= len(a) || b[j] < a[i]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		out = append(out, v)
	}
	return out
}

// relevel recomputes wavefront numbers for the dirty cone: seeds are the
// edited rows; a row whose level changes dirties its consumers. Because
// every dependence points backward and the dirty set is processed in
// increasing row order, each row is examined at most once and sees only
// final levels of its dependences — the incremental counterpart of the
// paper's Figure 7 sweep. moved lists the rows whose level changed.
func relevel(deps, rev *wavefront.Deps, oldWf []int32, seeds []int32, maxCone int) (wf []int32, cone int, moved []int32, err error) {
	wf = append([]int32(nil), oldWf...)
	h := rowHeap{inQ: make([]bool, deps.N)}
	for _, r := range seeds {
		h.push(r)
	}
	for h.len() > 0 {
		i := h.pop()
		cone++
		if maxCone > 0 && cone > maxCone {
			return nil, cone, nil, ErrConeTooLarge
		}
		lvl := int32(0)
		for _, t := range deps.On(int(i)) {
			if wf[t]+1 > lvl {
				lvl = wf[t] + 1
			}
		}
		if lvl == wf[i] {
			continue
		}
		wf[i] = lvl
		moved = append(moved, i)
		for _, c := range rev.On(int(i)) {
			h.push(c)
		}
	}
	return wf, cone, moved, nil
}

// repairSchedule splices the moved rows into the base schedule's dealing
// order: unmoved rows keep their relative order, moved rows are appended
// to their new wavefront segment in index order, and the merged order is
// re-dealt wrapped. Cost is O(N + #levels + moved·log moved) with
// memcpy-class constants — no per-edge work and no sort of the full
// index set.
func repairSchedule(old *schedule.Schedule, newWf []int32, moved []int32) *schedule.Schedule {
	n := old.N
	nw := 0
	for _, w := range newWf {
		if int(w)+1 > nw {
			nw = int(w) + 1
		}
	}
	movedSet := make([]bool, n)
	for _, r := range moved {
		movedSet[r] = true
	}
	// Per-wavefront fill offsets for the merged order.
	offsets := make([]int32, nw+1)
	for _, w := range newWf {
		offsets[w+1]++
	}
	for k := 0; k < nw; k++ {
		offsets[k+1] += offsets[k]
	}
	pos := offsets[:nw]
	newOrder := make([]int32, n)
	// Walk the base dealing order in place (position k of a wrapped deal
	// sits at processor k mod P, slot k/P) instead of materializing
	// old.Order(): unmoved rows keep their relative order.
	p := old.P
	for k := 0; k < n; k++ {
		idx := old.Idx[int(old.ProcPtr[k%p])+k/p]
		if movedSet[idx] {
			continue
		}
		w := newWf[idx]
		newOrder[pos[w]] = idx
		pos[w]++
	}
	ms := append([]int32(nil), moved...)
	sort.Slice(ms, func(a, b int) bool {
		if newWf[ms[a]] != newWf[ms[b]] {
			return newWf[ms[a]] < newWf[ms[b]]
		}
		return ms[a] < ms[b]
	})
	for _, idx := range ms {
		w := newWf[idx]
		newOrder[pos[w]] = idx
		pos[w]++
	}
	return schedule.FromOrder(newWf, newOrder, old.P)
}

// rowHeap is a deduplicating binary min-heap of row indices — the dirty
// queue of the cone propagation.
type rowHeap struct {
	rows []int32
	inQ  []bool
}

func (h *rowHeap) len() int { return len(h.rows) }

func (h *rowHeap) push(r int32) {
	if h.inQ[r] {
		return
	}
	h.inQ[r] = true
	h.rows = append(h.rows, r)
	i := len(h.rows) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.rows[p] <= h.rows[i] {
			break
		}
		h.rows[p], h.rows[i] = h.rows[i], h.rows[p]
		i = p
	}
}

func (h *rowHeap) pop() int32 {
	r := h.rows[0]
	h.inQ[r] = false
	last := len(h.rows) - 1
	h.rows[0] = h.rows[last]
	h.rows = h.rows[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		min := i
		if l < last && h.rows[l] < h.rows[min] {
			min = l
		}
		if rt < last && h.rows[rt] < h.rows[min] {
			min = rt
		}
		if min == i {
			break
		}
		h.rows[i], h.rows[min] = h.rows[min], h.rows[i]
		i = min
	}
	return r
}
