package delta

import (
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// This file is the bridge between drifted triangular factors and the
// generic repair machinery: it diffs a factor's dependence pattern
// against a base structure row by row — without materializing the
// factor's full dependence structure first — and splices only the
// changed rows, so a near-miss plan cache lookup pays memcpy-class cost
// for the 99% of the structure that did not drift.

// DiffFactor returns the rows whose dependence set in the factor l
// (lower=true: forward-solve dependences, wavefront.FromLower; false:
// reflected backward-solve dependences, wavefront.FromUpper) differs
// from base. The scan early-exits once more than limit rows differ
// (limit <= 0 means unbounded), reporting ok=false — the signal that l
// has drifted too far from this base for repair to be worth pricing.
func DiffFactor(base *wavefront.Deps, l *sparse.CSR, lower bool, limit int) (changed []int32, ok bool) {
	if base.N != l.N || l.N != l.M {
		return nil, false
	}
	n := l.N
	for k := 0; k < n; k++ {
		if factorRowEqual(base.On(k), l, lower, k) {
			continue
		}
		changed = append(changed, int32(k))
		if limit > 0 && len(changed) > limit {
			return changed, false
		}
	}
	return changed, true
}

// factorRowEqual reports whether iteration k's dependence list in the
// factor equals on. It exploits the CSR column ordering: the dependences
// of a lower factor are the strictly-lower prefix of the row, those of
// an upper factor the reflected strictly-upper suffix, so a hypothesized
// length (len(on)) is verified with one boundary check and a sequential
// compare — no search.
func factorRowEqual(on []int32, l *sparse.CSR, lower bool, k int) bool {
	m := len(on)
	if lower {
		cols, _ := l.Row(k)
		if m > len(cols) {
			return false
		}
		for q := 0; q < m; q++ {
			if cols[q] != on[q] {
				return false
			}
		}
		// on lists only targets < k (FromLower's invariant), so matching
		// the prefix is enough iff no further strictly-lower entry follows.
		return m == len(cols) || int(cols[m]) >= k
	}
	n := l.N
	i := n - 1 - k // actual row under the reflected numbering
	cols, _ := l.Row(i)
	if m > len(cols) {
		return false
	}
	s := len(cols) - m
	if s > 0 && int(cols[s-1]) > i {
		return false // an extra strictly-upper entry precedes the suffix
	}
	for q := 0; q < m; q++ {
		if on[q] != int32(n-1-int(cols[s+q])) {
			return false
		}
	}
	return true
}

// FactorDeps builds the dependence structure of the factor l by splicing
// the given changed rows (from DiffFactor) into base. The result equals
// wavefront.FromLower(l) (or FromUpper) including within-row ordering,
// at the cost of a block copy plus the changed rows.
func FactorDeps(base *wavefront.Deps, l *sparse.CSR, lower bool, changed []int32) *wavefront.Deps {
	if len(changed) == 0 {
		return base
	}
	rows := make(map[int32][]int32, len(changed))
	var buf []int32
	for _, r := range changed {
		row := factorRow(l, lower, int(r), &buf)
		rows[r] = append([]int32(nil), row...)
		buf = buf[:0]
	}
	return spliceRows(base, changed, rows)
}

// factorRow returns iteration k's dependence list in the factor,
// matching the conventions of wavefront.FromLower/FromUpper. For lower
// factors the list aliases the matrix row (the strictly-lower prefix);
// for upper factors the reflected indices are materialized into *buf.
func factorRow(l *sparse.CSR, lower bool, k int, buf *[]int32) []int32 {
	if lower {
		cols, _ := l.Row(k)
		// Columns are sorted ascending, so the strictly-lower entries are
		// a prefix; binary search the first c >= k.
		lo, hi := 0, len(cols)
		for lo < hi {
			mid := (lo + hi) / 2
			if int(cols[mid]) < k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return cols[:lo]
	}
	n := l.N
	i := n - 1 - k // actual row under the reflected numbering
	cols, _ := l.Row(i)
	// The strictly-upper entries are a suffix; binary search the first
	// c > i, then reflect in FromUpper's order (ascending c, so the
	// reflected indices come out descending).
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(cols[mid]) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	out := (*buf)[:0]
	for q := lo; q < len(cols); q++ {
		out = append(out, int32(n-1-int(cols[q])))
	}
	*buf = out
	return out
}
