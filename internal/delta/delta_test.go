package delta

import (
	"errors"
	"math/rand"
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// chainDeps builds the dependence chain 0 <- 1 <- 2 <- ... <- n-1.
func chainDeps(n int) *wavefront.Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	return wavefront.FromAdjacency(adj)
}

func TestApplyInsertDelete(t *testing.T) {
	d := wavefront.FromAdjacency([][]int32{nil, {0}, {0, 1}, {2}})
	nd, changed, err := Apply(d, EditSet{
		{Row: 2, Delete: []int32{1}},
		{Row: 3, Insert: []int32{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 || changed[0] != 2 || changed[1] != 3 {
		t.Fatalf("changed = %v, want [2 3]", changed)
	}
	want := [][]int32{nil, {0}, {0}, {0, 2}}
	for i := range want {
		got := nd.On(i)
		if len(got) != len(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, got, want[i])
		}
		for k := range got {
			if got[k] != want[i][k] {
				t.Fatalf("row %d = %v, want %v", i, got, want[i])
			}
		}
	}
	// The original is untouched.
	if d.Count(2) != 2 || d.Count(3) != 1 {
		t.Fatal("Apply mutated its input")
	}
}

func TestApplyErrors(t *testing.T) {
	d := wavefront.FromAdjacency([][]int32{nil, {0}, {1}})
	cases := []struct {
		name  string
		edits EditSet
	}{
		{"row out of range", EditSet{{Row: 9}}},
		{"negative row", EditSet{{Row: -1}}},
		{"row edited twice", EditSet{{Row: 1, Delete: []int32{0}}, {Row: 1, Insert: []int32{0}}}},
		{"insert present", EditSet{{Row: 1, Insert: []int32{0}}}},
		{"insert out of range", EditSet{{Row: 1, Insert: []int32{7}}}},
		{"insert self", EditSet{{Row: 1, Insert: []int32{1}}}},
		{"insert twice", EditSet{{Row: 2, Insert: []int32{0, 0}}}},
		{"delete missing", EditSet{{Row: 2, Delete: []int32{0}}}},
		{"delete twice", EditSet{{Row: 1, Delete: []int32{0, 0}}}},
		{"insert and delete", EditSet{{Row: 1, Insert: []int32{0}, Delete: []int32{0}}}},
	}
	for _, c := range cases {
		if _, _, err := Apply(d, c.edits); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestDiffRowsOrderInsensitive(t *testing.T) {
	a := wavefront.FromAdjacency([][]int32{nil, nil, {0, 1}})
	b := wavefront.FromAdjacency([][]int32{nil, nil, {1, 0}})
	changed, err := DiffRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("order-only difference reported as structural: %v", changed)
	}
	c := wavefront.FromAdjacency([][]int32{nil, {0}, {1, 0}})
	changed, err = DiffRows(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != 1 {
		t.Fatalf("changed = %v, want [1]", changed)
	}
}

func TestRepairMatchesCompute(t *testing.T) {
	// 0 <- 1 <- 2 <- 3 <- 4, then cut 2's dependence: levels collapse
	// for the whole suffix.
	d := chainDeps(5)
	wf, err := wavefront.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(d, wf, schedule.Global(wf, 2))
	nd, changed, err := Apply(d, EditSet{{Row: 2, Delete: []int32{1}}})
	if err != nil {
		t.Fatal(err)
	}
	st2, stats, err := st.Repair(nd, changed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := wavefront.Compute(nd)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if st2.Wf[i] != ref[i] {
			t.Fatalf("wf[%d] = %d, want %d (repair diverged from Compute)", i, st2.Wf[i], ref[i])
		}
	}
	if stats.Moved != 3 { // rows 2, 3, 4 drop a level
		t.Fatalf("moved = %d, want 3", stats.Moved)
	}
	if err := wavefront.Validate(st2.Wf, nd); err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, st2.Sched, st2.Wf)
}

func TestRepairReusesScheduleWhenNoLevelMoves(t *testing.T) {
	// 3 depends on 0 and 2; deleting the 0-edge cannot change 3's level.
	d := wavefront.FromAdjacency([][]int32{nil, {0}, {1}, {0, 2}})
	wf, _ := wavefront.Compute(d)
	st := NewState(d, wf, schedule.Global(wf, 2))
	nd, changed, err := Apply(d, EditSet{{Row: 3, Delete: []int32{0}}})
	if err != nil {
		t.Fatal(err)
	}
	st2, stats, err := st.Repair(nd, changed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Reused {
		t.Fatal("expected the base schedule to be reused")
	}
	if st2.Sched != st.Sched {
		t.Fatal("schedule not shared")
	}
	if st2.Deps != nd {
		t.Fatal("repaired state must carry the new structure")
	}
}

func TestRepairConeBound(t *testing.T) {
	// Inserting a dependence at the head of a long chain releveles the
	// whole suffix; a small cone bound must abort with ErrConeTooLarge.
	n := 64
	adj := make([][]int32, n)
	for i := 2; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	d := wavefront.FromAdjacency(adj) // 1 is independent
	wf, _ := wavefront.Compute(d)
	st := NewState(d, wf, schedule.Global(wf, 2))
	nd, changed, err := Apply(d, EditSet{{Row: 1, Insert: []int32{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Repair(nd, changed, Options{MaxCone: 4}); !errors.Is(err, ErrConeTooLarge) {
		t.Fatalf("err = %v, want ErrConeTooLarge", err)
	}
	// Unbounded succeeds and matches Compute.
	st2, stats, err := st.Repair(nd, changed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cone < n-2 {
		t.Fatalf("cone = %d, want the whole chain", stats.Cone)
	}
	ref, _ := wavefront.Compute(nd)
	for i := range ref {
		if st2.Wf[i] != ref[i] {
			t.Fatalf("wf[%d] = %d, want %d", i, st2.Wf[i], ref[i])
		}
	}
}

func TestRepairRejectsForwardDeps(t *testing.T) {
	d := wavefront.FromAdjacency([][]int32{{1}, nil}) // forward edge
	wf, err := wavefront.ComputeDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(d, wf, schedule.Global(wf, 2))
	if _, _, err := st.Repair(d, nil, Options{}); !errors.Is(err, ErrNotBackward) {
		t.Fatalf("err = %v, want ErrNotBackward", err)
	}
}

func TestRepairChain(t *testing.T) {
	// A drift chain: repair from a repaired state stays exact.
	rng := rand.New(rand.NewSource(7))
	d := randomBackwardDeps(rng, 80, 3)
	wf, err := wavefront.Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(d, wf, schedule.Global(wf, 4))
	for step := 0; step < 12; step++ {
		edits := randomEdits(rng, st.Deps, 3)
		nd, changed, err := Apply(st.Deps, edits)
		if err != nil {
			t.Fatal(err)
		}
		next, _, err := st.Repair(nd, changed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := wavefront.Compute(nd)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if next.Wf[i] != ref[i] {
				t.Fatalf("step %d: wf[%d] = %d, want %d", step, i, next.Wf[i], ref[i])
			}
		}
		checkSchedule(t, next.Sched, next.Wf)
		st = next
	}
}

func TestDiffFactorAndFactorDeps(t *testing.T) {
	for _, lower := range []bool{true, false} {
		rng := rand.New(rand.NewSource(11))
		a := randomFactor(rng, 40, 3, lower)
		base := factorDepsFull(a, lower)
		edited := toggleFactor(rng, a, 5, lower)
		ref := factorDepsFull(edited, lower)

		changed, ok := DiffFactor(base, edited, lower, 0)
		if !ok {
			t.Fatalf("lower=%v: unbounded DiffFactor reported not ok", lower)
		}
		refChanged, err := DiffRows(base, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(changed) != len(refChanged) {
			t.Fatalf("lower=%v: DiffFactor found %v, DiffRows %v", lower, changed, refChanged)
		}
		for k := range changed {
			if changed[k] != refChanged[k] {
				t.Fatalf("lower=%v: DiffFactor found %v, DiffRows %v", lower, changed, refChanged)
			}
		}
		got := FactorDeps(base, edited, lower, changed)
		d2, err := DiffRows(got, ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(d2) != 0 {
			t.Fatalf("lower=%v: FactorDeps differs from full extraction at rows %v", lower, d2)
		}
		// The early-exit contract: with a limit below the real diff count
		// the scan reports not-ok.
		if len(changed) > 1 {
			if _, ok := DiffFactor(base, edited, lower, len(changed)-1); ok {
				t.Fatalf("lower=%v: limit %d did not trip", lower, len(changed)-1)
			}
		}
	}
}

// checkSchedule asserts s is a valid wrapped-deal schedule over wf:
// every index appears exactly once, each processor's list has
// non-decreasing wavefront numbers, and every phase holds exactly the
// indices of its wavefront.
func checkSchedule(t *testing.T, s *schedule.Schedule, wf []int32) {
	t.Helper()
	seen := make([]bool, s.N)
	for p := 0; p < s.P; p++ {
		list := s.Proc(p)
		for k, idx := range list {
			if seen[idx] {
				t.Fatalf("index %d scheduled twice", idx)
			}
			seen[idx] = true
			if k > 0 && wf[list[k-1]] > wf[idx] {
				t.Fatalf("processor %d not wavefront-monotone at %d", p, k)
			}
		}
		for k := 0; k < s.NumPhases; k++ {
			for _, idx := range s.Phase(p, k) {
				if wf[idx] != int32(k) {
					t.Fatalf("phase %d holds index %d of wavefront %d", k, idx, wf[idx])
				}
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d missing from schedule", i)
		}
	}
}

// randomBackwardDeps builds a random backward dependence structure with
// about deg dependences per row.
func randomBackwardDeps(rng *rand.Rand, n, deg int) *wavefront.Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		k := rng.Intn(deg + 1)
		seen := map[int32]bool{}
		for j := 0; j < k; j++ {
			t := int32(rng.Intn(i))
			if !seen[t] {
				seen[t] = true
				adj[i] = append(adj[i], t)
			}
		}
	}
	return wavefront.FromAdjacency(adj)
}

// randomEdits toggles count random backward edges of d.
func randomEdits(rng *rand.Rand, d *wavefront.Deps, count int) EditSet {
	type rowEdit struct{ ins, del map[int32]bool }
	rows := map[int32]*rowEdit{}
	for tries := 0; tries < count*4 && count > 0; tries++ {
		i := int32(rng.Intn(d.N-1) + 1)
		t := int32(rng.Intn(int(i)))
		re := rows[i]
		if re == nil {
			re = &rowEdit{ins: map[int32]bool{}, del: map[int32]bool{}}
			rows[i] = re
		}
		if re.ins[t] || re.del[t] {
			continue
		}
		if contains(sortedCopy(d.On(int(i))), t) {
			re.del[t] = true
		} else {
			re.ins[t] = true
		}
		count--
	}
	var out EditSet
	for r, re := range rows {
		e := RowEdit{Row: r}
		for t := range re.ins {
			e.Insert = append(e.Insert, t)
		}
		for t := range re.del {
			e.Delete = append(e.Delete, t)
		}
		out = append(out, e)
	}
	return out
}

// randomFactor builds a random triangular factor with unit-plus diagonal
// and about deg strictly off-diagonal entries per row.
func randomFactor(rng *rand.Rand, n, deg int, lower bool) *sparse.CSR {
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		k := rng.Intn(deg + 1)
		for j := 0; j < k; j++ {
			var c int
			if lower {
				if i == 0 {
					continue
				}
				c = rng.Intn(i)
			} else {
				if i == n-1 {
					continue
				}
				c = i + 1 + rng.Intn(n-1-i)
			}
			ts = append(ts, sparse.Triplet{Row: i, Col: c, Val: rng.NormFloat64()})
		}
	}
	return sparse.MustAssemble(n, n, ts)
}

// toggleFactor flips count random strictly-triangular entries of a.
func toggleFactor(rng *rand.Rand, a *sparse.CSR, count int, lower bool) *sparse.CSR {
	n := a.N
	entries := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			entries[[2]int{i, int(c)}] = vals[k]
		}
	}
	for done := 0; done < count; {
		i := rng.Intn(n)
		var c int
		if lower {
			if i == 0 {
				continue
			}
			c = rng.Intn(i)
		} else {
			if i == n-1 {
				continue
			}
			c = i + 1 + rng.Intn(n-1-i)
		}
		key := [2]int{i, c}
		if _, ok := entries[key]; ok {
			delete(entries, key)
		} else {
			entries[key] = rng.NormFloat64()
		}
		done++
	}
	var ts []sparse.Triplet
	for key, v := range entries {
		ts = append(ts, sparse.Triplet{Row: key[0], Col: key[1], Val: v})
	}
	return sparse.MustAssemble(n, n, ts)
}

// factorDepsFull extracts the factor's dependence structure from scratch.
func factorDepsFull(a *sparse.CSR, lower bool) *wavefront.Deps {
	if lower {
		return wavefront.FromLower(a)
	}
	return wavefront.FromUpper(a)
}
