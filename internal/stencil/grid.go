// Package stencil generates the paper's evaluation matrices: variable
// coefficient 5-point, 9-point box and 7-point finite-difference operators
// on 2-D and 3-D grids, and the block seven-point reservoir-simulation
// operators standing in for the proprietary SPE test problems.
//
// The matrices are assembled with natural (lexicographic) ordering of grid
// points, which is what gives the lower triangular factors their
// anti-diagonal wavefront structure analyzed in Section 4 of the paper.
package stencil

// Grid2D describes an nx-by-ny rectangular grid with natural ordering:
// point (i, j) has index j*nx + i, i varying fastest.
type Grid2D struct {
	NX, NY int
}

// N returns the number of grid points.
func (g Grid2D) N() int { return g.NX * g.NY }

// Index returns the natural-order index of point (i, j).
func (g Grid2D) Index(i, j int) int { return j*g.NX + i }

// Coords returns the (i, j) coordinates of index k.
func (g Grid2D) Coords(k int) (i, j int) { return k % g.NX, k / g.NX }

// In reports whether (i, j) is inside the grid.
func (g Grid2D) In(i, j int) bool { return i >= 0 && i < g.NX && j >= 0 && j < g.NY }

// Grid3D describes an nx-by-ny-by-nz grid with natural ordering:
// point (i, j, k) has index (k*ny+j)*nx + i.
type Grid3D struct {
	NX, NY, NZ int
}

// N returns the number of grid points.
func (g Grid3D) N() int { return g.NX * g.NY * g.NZ }

// Index returns the natural-order index of point (i, j, k).
func (g Grid3D) Index(i, j, k int) int { return (k*g.NY+j)*g.NX + i }

// Coords returns the (i, j, k) coordinates of index m.
func (g Grid3D) Coords(m int) (i, j, k int) {
	i = m % g.NX
	m /= g.NX
	j = m % g.NY
	k = m / g.NY
	return
}

// In reports whether (i, j, k) is inside the grid.
func (g Grid3D) In(i, j, k int) bool {
	return i >= 0 && i < g.NX && j >= 0 && j < g.NY && k >= 0 && k < g.NZ
}
