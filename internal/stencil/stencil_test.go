package stencil

import (
	"testing"
)

func TestGrid2D(t *testing.T) {
	g := Grid2D{NX: 5, NY: 7}
	if g.N() != 35 {
		t.Fatalf("N = %d, want 35", g.N())
	}
	for k := 0; k < g.N(); k++ {
		i, j := g.Coords(k)
		if g.Index(i, j) != k {
			t.Fatalf("round trip failed at %d", k)
		}
		if !g.In(i, j) {
			t.Fatalf("In(%d,%d) false", i, j)
		}
	}
	if g.In(-1, 0) || g.In(5, 0) || g.In(0, 7) {
		t.Error("In accepts out-of-grid points")
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D{NX: 3, NY: 4, NZ: 5}
	if g.N() != 60 {
		t.Fatalf("N = %d, want 60", g.N())
	}
	for m := 0; m < g.N(); m++ {
		i, j, k := g.Coords(m)
		if g.Index(i, j, k) != m {
			t.Fatalf("round trip failed at %d", m)
		}
	}
	if g.In(3, 0, 0) || g.In(0, 0, -1) {
		t.Error("In accepts out-of-grid points")
	}
}

func TestFivePointStructure(t *testing.T) {
	a := FivePoint(4)
	if a.N != 16 {
		t.Fatalf("N = %d, want 16", a.N)
	}
	if err := a.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	// Interior point (1,1) = index 5 has 5 entries; corner (0,0) has 3.
	if got := a.RowNNZ(5); got != 5 {
		t.Errorf("interior row nnz = %d, want 5", got)
	}
	if got := a.RowNNZ(0); got != 3 {
		t.Errorf("corner row nnz = %d, want 3", got)
	}
	// Paper sizes: 63x63 -> 3969 unknowns.
	if FivePoint(63).N != 3969 {
		t.Error("5-PT should have 3969 unknowns")
	}
}

func TestFivePointDiagonalDominanceish(t *testing.T) {
	a := FivePoint(8)
	for i := 0; i < a.N; i++ {
		if a.At(i, i) <= 0 {
			t.Fatalf("non-positive diagonal at %d", i)
		}
	}
}

func TestNinePointStructure(t *testing.T) {
	a := NinePoint(4)
	if err := a.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if got := a.RowNNZ(5); got != 9 { // interior point has all 8 neighbours
		t.Errorf("interior row nnz = %d, want 9", got)
	}
	if got := a.RowNNZ(0); got != 4 { // corner: self + E + N + NE
		t.Errorf("corner row nnz = %d, want 4", got)
	}
	if NinePoint(63).N != 3969 {
		t.Error("9-PT should have 3969 unknowns")
	}
}

func TestSevenPointStructure(t *testing.T) {
	a := SevenPoint(4)
	if a.N != 64 {
		t.Fatalf("N = %d, want 64", a.N)
	}
	if err := a.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	g := Grid3D{4, 4, 4}
	interior := g.Index(1, 1, 1)
	if got := a.RowNNZ(interior); got != 7 {
		t.Errorf("interior row nnz = %d, want 7", got)
	}
	if got := a.RowNNZ(0); got != 4 {
		t.Errorf("corner row nnz = %d, want 4", got)
	}
}

func TestSevenPointPaperSize(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid in -short mode")
	}
	if SevenPoint(20).N != 8000 {
		t.Error("7-PT should have 8000 unknowns")
	}
}

func TestLaplace2D(t *testing.T) {
	a := Laplace2D(3, 3)
	if err := a.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if a.At(4, 4) != 4 {
		t.Errorf("center diagonal = %v, want 4", a.At(4, 4))
	}
	if a.At(4, 1) != -1 || a.At(4, 3) != -1 || a.At(4, 5) != -1 || a.At(4, 7) != -1 {
		t.Error("center neighbours wrong")
	}
	// Symmetric.
	tr := a.Transpose()
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if a.At(i, j) != tr.At(i, j) {
				t.Fatalf("Laplace2D not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSPESizes(t *testing.T) {
	cases := []struct {
		name string
		n    int
		a    func() int
	}{
		{"SPE1", 1000, func() int { return SPE1().N }},
		{"SPE2", 1080, func() int { return SPE2().N }},
		{"SPE4", 1104, func() int { return SPE4().N }},
		{"SPE5", 3312, func() int { return SPE5().N }},
	}
	for _, c := range cases {
		if got := c.a(); got != c.n {
			t.Errorf("%s: N = %d, want %d", c.name, got, c.n)
		}
	}
}

func TestSPE3Size(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid in -short mode")
	}
	if SPE3().N != 5005 {
		t.Error("SPE3 should have 5005 unknowns")
	}
}

func TestBlockSevenPointDeterministic(t *testing.T) {
	a := BlockSevenPoint(Grid3D{3, 3, 2}, 2, 5)
	b := BlockSevenPoint(Grid3D{3, 3, 2}, 2, 5)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different structure")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("same seed produced different values")
		}
	}
	c := BlockSevenPoint(Grid3D{3, 3, 2}, 2, 6)
	same := a.NNZ() == c.NNZ()
	if same {
		for k := range a.Val {
			if a.Val[k] != c.Val[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestBlockSevenPointDiagonallyDominant(t *testing.T) {
	a := BlockSevenPoint(Grid3D{4, 3, 2}, 3, 11)
	if err := a.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var off, diag float64
		for k, c := range cols {
			if int(c) == i {
				diag = vals[k]
			} else if vals[k] < 0 {
				off -= vals[k]
			} else {
				off += vals[k]
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: diag=%v off=%v", i, diag, off)
		}
	}
}

func TestBlockSevenPointBlockStructure(t *testing.T) {
	g := Grid3D{2, 2, 1}
	b := 2
	a := BlockSevenPoint(g, b, 3)
	if a.N != g.N()*b {
		t.Fatalf("N = %d, want %d", a.N, g.N()*b)
	}
	// Point 0 couples to points 1 (x+1) and 2 (y+1): rows 0..1 touch
	// columns in blocks {0,1,2} only.
	for r := 0; r < b; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			blk := int(c) / b
			if blk != 0 && blk != 1 && blk != 2 {
				t.Errorf("row %d couples to unexpected block %d", r, blk)
			}
		}
	}
}
