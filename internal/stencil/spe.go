package stencil

import (
	"math/rand"

	"doconsider/internal/sparse"
)

// BlockSevenPoint builds a block seven-point operator on the given 3-D grid
// with b unknowns per grid point, the structure of the paper's SPE
// reservoir-simulation matrices (Appendix I). Each grid point contributes a
// dense b×b diagonal block coupled to its six axial neighbours through dense
// b×b off-diagonal blocks.
//
// The paper's SPE matrices are proprietary black-oil simulation outputs; we
// substitute seeded-random coefficients made strongly diagonally dominant so
// that zero-fill incomplete factorization is well defined. The dependence
// structure — which is all the run-time scheduling machinery observes — is
// fixed entirely by the grid, the stencil and the block size.
func BlockSevenPoint(g Grid3D, b int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := g.N() * b
	ts := make([]sparse.Triplet, 0, 7*b*b*g.N())
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				pt := g.Index(i, j, k)
				neigh := [][3]int{
					{i - 1, j, k}, {i + 1, j, k},
					{i, j - 1, k}, {i, j + 1, k},
					{i, j, k - 1}, {i, j, k + 1},
				}
				// Accumulate row sums to enforce diagonal dominance.
				rowAbs := make([]float64, b)
				for _, nb := range neigh {
					if !g.In(nb[0], nb[1], nb[2]) {
						continue
					}
					q := g.Index(nb[0], nb[1], nb[2])
					for r := 0; r < b; r++ {
						for c := 0; c < b; c++ {
							v := -(0.2 + 0.8*rng.Float64())
							ts = append(ts, sparse.Triplet{
								Row: pt*b + r, Col: q*b + c, Val: v,
							})
							rowAbs[r] += -v
						}
					}
				}
				// Dense diagonal block: off-diagonals within the block plus
				// a dominant diagonal.
				for r := 0; r < b; r++ {
					for c := 0; c < b; c++ {
						if r == c {
							continue
						}
						v := 0.1 * (rng.Float64() - 0.5)
						ts = append(ts, sparse.Triplet{Row: pt*b + r, Col: pt*b + c, Val: v})
						if v < 0 {
							rowAbs[r] -= v
						} else {
							rowAbs[r] += v
						}
					}
					ts = append(ts, sparse.Triplet{
						Row: pt*b + r, Col: pt*b + r, Val: rowAbs[r] + 1 + rng.Float64(),
					})
				}
			}
		}
	}
	return sparse.MustAssemble(n, n, ts)
}

// SPE1 models the pressure equation of a black-oil simulation: a scalar
// seven-point operator on a 10×10×10 grid (1000 unknowns).
func SPE1() *sparse.CSR { return BlockSevenPoint(Grid3D{10, 10, 10}, 1, 101) }

// SPE2 models a thermal steam-injection simulation: a block seven-point
// operator with 6×6 blocks on a 6×6×5 grid (1080 unknowns).
func SPE2() *sparse.CSR { return BlockSevenPoint(Grid3D{6, 6, 5}, 6, 102) }

// SPE3 models an IMPES black-oil simulation: a scalar seven-point operator
// on a 35×11×13 grid (5005 unknowns).
func SPE3() *sparse.CSR { return BlockSevenPoint(Grid3D{35, 11, 13}, 1, 103) }

// SPE4 models an IMPES black-oil simulation: a scalar seven-point operator
// on a 16×23×3 grid (1104 unknowns).
func SPE4() *sparse.CSR { return BlockSevenPoint(Grid3D{16, 23, 3}, 1, 104) }

// SPE5 models a fully-implicit black-oil simulation: a block seven-point
// operator with 3×3 blocks on a 16×23×3 grid (3312 unknowns).
func SPE5() *sparse.CSR { return BlockSevenPoint(Grid3D{16, 23, 3}, 3, 105) }
