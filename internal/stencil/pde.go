package stencil

import (
	"math"

	"doconsider/internal/sparse"
)

// FivePoint returns the five-point central difference discretization of the
// paper's Problem 6 on an n-by-n interior grid of the unit square:
//
//	-(e^{xy} u_x)_x - (e^{-xy} u_y)_y + 2(x+y)(u_x + u_y) + u/(1+x+y) = f
//
// with Dirichlet boundary conditions. The 63×63 grid yields the paper's
// 5-PT problem (3969 unknowns); 200×200 yields L5-PT.
func FivePoint(n int) *sparse.CSR {
	g := Grid2D{NX: n, NY: n}
	h := 1.0 / float64(n+1)
	ts := make([]sparse.Triplet, 0, 5*g.N())
	ax := func(x, y float64) float64 { return math.Exp(x * y) }
	ay := func(x, y float64) float64 { return math.Exp(-x * y) }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			x := float64(i+1) * h
			y := float64(j+1) * h
			row := g.Index(i, j)
			// Diffusion: harmonic-midpoint coefficients.
			aw := ax(x-h/2, y) / (h * h)
			ae := ax(x+h/2, y) / (h * h)
			as := ay(x, y-h/2) / (h * h)
			an := ay(x, y+h/2) / (h * h)
			// Convection (central): 2(x+y) u_x -> ±(x+y)/h off-diagonals.
			c := (x + y) / h
			center := aw + ae + as + an + 1.0/(1.0+x+y)
			add := func(ii, jj int, v float64) {
				if g.In(ii, jj) {
					ts = append(ts, sparse.Triplet{Row: row, Col: g.Index(ii, jj), Val: v})
				}
			}
			add(i-1, j, -aw-c)
			add(i+1, j, -ae+c)
			add(i, j-1, -as-c)
			add(i, j+1, -an+c)
			ts = append(ts, sparse.Triplet{Row: row, Col: row, Val: center})
		}
	}
	return sparse.MustAssemble(g.N(), g.N(), ts)
}

// NinePoint returns a nine-point box scheme discretization of the paper's
// Problem 7 on an n-by-n interior grid of the unit square:
//
//	-(u_xx + u_yy) + 2 u_x + 2 u_y = f
//
// The box scheme couples each point to all eight neighbours. The 63×63 grid
// yields the paper's 9-PT problem; 127×127 yields L9-PT.
func NinePoint(n int) *sparse.CSR {
	g := Grid2D{NX: n, NY: n}
	h := 1.0 / float64(n+1)
	ts := make([]sparse.Triplet, 0, 9*g.N())
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			row := g.Index(i, j)
			// Nine-point Laplacian (Mehrstellen weights 4/1 over 6h^2)
			// plus central convection on the axial neighbours.
			c := 2.0 * h / 2.0 // = h; scaled below with 1/h^2 factors
			add := func(ii, jj int, v float64) {
				if g.In(ii, jj) {
					ts = append(ts, sparse.Triplet{Row: row, Col: g.Index(ii, jj), Val: v})
				}
			}
			inv6h2 := 1.0 / (6 * h * h)
			add(i-1, j, (-4-6*c)*inv6h2)
			add(i+1, j, (-4+6*c)*inv6h2)
			add(i, j-1, (-4-6*c)*inv6h2)
			add(i, j+1, (-4+6*c)*inv6h2)
			add(i-1, j-1, -1*inv6h2)
			add(i+1, j-1, -1*inv6h2)
			add(i-1, j+1, -1*inv6h2)
			add(i+1, j+1, -1*inv6h2)
			ts = append(ts, sparse.Triplet{Row: row, Col: row, Val: 20 * inv6h2})
		}
	}
	return sparse.MustAssemble(g.N(), g.N(), ts)
}

// SevenPoint returns the seven-point central difference discretization of
// the paper's Problem 8 on an n³ interior grid of the unit cube:
//
//	-(e^{xy} u_x)_x - (e^{xy} u_y)_y - (e^{xy} u_z)_z
//	  + 80(x+y+z) u_x + (40 + 1/(1+x+y+z)) u = f
//
// The 20×20×20 grid yields the paper's 7-PT problem (8000 unknowns);
// 30×30×30 yields L7-PT.
func SevenPoint(n int) *sparse.CSR {
	g := Grid3D{NX: n, NY: n, NZ: n}
	h := 1.0 / float64(n+1)
	ts := make([]sparse.Triplet, 0, 7*g.N())
	a := func(x, y float64) float64 { return math.Exp(x * y) }
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := float64(i+1) * h
				y := float64(j+1) * h
				z := float64(k+1) * h
				row := g.Index(i, j, k)
				aw := a(x-h/2, y) / (h * h)
				ae := a(x+h/2, y) / (h * h)
				as := a(x, y-h/2) / (h * h)
				an := a(x, y+h/2) / (h * h)
				ad := a(x, y) / (h * h) // z-direction midpoints share e^{xy}
				au := a(x, y) / (h * h)
				c := 40 * (x + y + z) / h // 80(x+y+z)/(2h)
				center := aw + ae + as + an + ad + au + 40 + 1/(1+x+y+z)
				add := func(ii, jj, kk int, v float64) {
					if g.In(ii, jj, kk) {
						ts = append(ts, sparse.Triplet{Row: row, Col: g.Index(ii, jj, kk), Val: v})
					}
				}
				add(i-1, j, k, -aw-c)
				add(i+1, j, k, -ae+c)
				add(i, j-1, k, -as)
				add(i, j+1, k, -an)
				add(i, j, k-1, -ad)
				add(i, j, k+1, -au)
				ts = append(ts, sparse.Triplet{Row: row, Col: row, Val: center})
			}
		}
	}
	return sparse.MustAssemble(g.N(), g.N(), ts)
}

// Laplace2D returns the constant-coefficient five-point Laplacian on an
// m-by-n grid (natural ordering). This is the Section 4 model problem
// operator and the "65mesh" workload of Table 5.
func Laplace2D(m, n int) *sparse.CSR {
	g := Grid2D{NX: m, NY: n}
	ts := make([]sparse.Triplet, 0, 5*g.N())
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			row := g.Index(i, j)
			add := func(ii, jj int, v float64) {
				if g.In(ii, jj) {
					ts = append(ts, sparse.Triplet{Row: row, Col: g.Index(ii, jj), Val: v})
				}
			}
			add(i-1, j, -1)
			add(i+1, j, -1)
			add(i, j-1, -1)
			add(i, j+1, -1)
			ts = append(ts, sparse.Triplet{Row: row, Col: row, Val: 4})
		}
	}
	return sparse.MustAssemble(g.N(), g.N(), ts)
}
