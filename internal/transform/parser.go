package transform

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokOp     // + - * /
	tokLParen // (
	tokRParen // )
	tokComma
	tokAssign // =
	tokNewline
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src), line: 1} }

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.pos++
			lx.line++
			return token{tokNewline, "\n", lx.line - 1}, nil
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '!': // comment to end of line
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case unicode.IsLetter(c) || c == '_':
			start := lx.pos
			for lx.pos < len(lx.src) && (unicode.IsLetter(lx.src[lx.pos]) ||
				unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
				lx.pos++
			}
			return token{tokIdent, strings.ToLower(string(lx.src[start:lx.pos])), lx.line}, nil
		case unicode.IsDigit(c):
			start := lx.pos
			for lx.pos < len(lx.src) && (unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
				lx.pos++
			}
			return token{tokNum, string(lx.src[start:lx.pos]), lx.line}, nil
		case c == '+' || c == '-' || c == '*' || c == '/':
			lx.pos++
			return token{tokOp, string(c), lx.line}, nil
		case c == '(':
			lx.pos++
			return token{tokLParen, "(", lx.line}, nil
		case c == ')':
			lx.pos++
			return token{tokRParen, ")", lx.line}, nil
		case c == ',':
			lx.pos++
			return token{tokComma, ",", lx.line}, nil
		case c == '=':
			lx.pos++
			return token{tokAssign, "=", lx.line}, nil
		default:
			return token{}, fmt.Errorf("transform: line %d: unexpected character %q", lx.line, c)
		}
	}
	return token{tokEOF, "", lx.line}, nil
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a doconsider loop from source text.
func Parse(src string) (*Loop, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	p.skipNewlines()
	loop, err := p.parseDoconsider()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("transform: line %d: trailing input %q", p.peek().line, p.peek().text)
	}
	return loop, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.advance()
	}
}

func (p *parser) expectIdent(name string) error {
	t := p.advance()
	if t.kind != tokIdent || t.text != name {
		return fmt.Errorf("transform: line %d: expected %q, got %q", t.line, name, t.text)
	}
	return nil
}

func (p *parser) parseDoconsider() (*Loop, error) {
	// The paper proposes both doconsider and forconsider annotations,
	// "depending upon the language being extended" (§2.2); accept either.
	t := p.advance()
	if t.kind != tokIdent || (t.text != "doconsider" && t.text != "forconsider") {
		return nil, fmt.Errorf("transform: line %d: expected doconsider/forconsider, got %q",
			t.line, t.text)
	}
	v, lo, hi, err := p.parseLoopHead()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	return &Loop{Var: v, Lo: lo, Hi: hi, Body: body}, nil
}

func (p *parser) parseLoopHead() (string, Expr, Expr, error) {
	vt := p.advance()
	if vt.kind != tokIdent {
		return "", nil, nil, fmt.Errorf("transform: line %d: expected loop variable", vt.line)
	}
	if t := p.advance(); t.kind != tokAssign {
		return "", nil, nil, fmt.Errorf("transform: line %d: expected '=' in loop header", t.line)
	}
	lo, err := p.parseExpr()
	if err != nil {
		return "", nil, nil, err
	}
	if t := p.advance(); t.kind != tokComma {
		return "", nil, nil, fmt.Errorf("transform: line %d: expected ',' in loop header", t.line)
	}
	hi, err := p.parseExpr()
	if err != nil {
		return "", nil, nil, err
	}
	if t := p.advance(); t.kind != tokNewline && t.kind != tokEOF {
		return "", nil, nil, fmt.Errorf("transform: line %d: junk after loop header: %q", t.line, t.text)
	}
	return vt.text, lo, hi, nil
}

// parseBody parses statements until the matching enddo.
func (p *parser) parseBody() ([]Stmt, error) {
	var body []Stmt
	for {
		p.skipNewlines()
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return nil, fmt.Errorf("transform: line %d: missing enddo", t.line)
		case t.kind == tokIdent && (t.text == "enddo" || t.text == "end"):
			p.advance()
			if t.text == "end" { // allow "end do"
				if n := p.peek(); n.kind == tokIdent && n.text == "do" {
					p.advance()
				}
			}
			return body, nil
		case t.kind == tokIdent && t.text == "do":
			p.advance()
			v, lo, hi, err := p.parseLoopHead()
			if err != nil {
				return nil, err
			}
			inner, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			body = append(body, InnerLoop{Var: v, Lo: lo, Hi: hi, Body: inner})
		default:
			st, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			body = append(body, st)
		}
	}
}

func (p *parser) parseAssign() (Stmt, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("transform: line %d: expected assignment, got %q", t.line, t.text)
	}
	name := t.text
	var sub Expr
	if p.peek().kind == tokLParen {
		p.advance()
		var err error
		sub, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if q := p.advance(); q.kind != tokRParen {
			return nil, fmt.Errorf("transform: line %d: expected ')'", q.line)
		}
	}
	if q := p.advance(); q.kind != tokAssign {
		return nil, fmt.Errorf("transform: line %d: expected '=' in assignment", q.line)
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if q := p.advance(); q.kind != tokNewline && q.kind != tokEOF {
		return nil, fmt.Errorf("transform: line %d: junk after statement: %q", q.line, q.text)
	}
	if sub != nil {
		return Assign{Array: name, Sub: sub, RHS: rhs}, nil
	}
	return Assign{Scalar: name, RHS: rhs}, nil
}

// Expression grammar: expr := term (('+'|'-') term)*; term := factor
// (('*'|'/') factor)*; factor := num | ident | ref | '(' expr ')' | '-' factor.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.advance().text[0]
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.advance().text[0]
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.advance()
	switch t.kind {
	case tokNum:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("transform: line %d: bad number %q", t.line, t.text)
		}
		return Num{Val: v}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.advance()
			sub, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if q := p.advance(); q.kind != tokRParen {
				return nil, fmt.Errorf("transform: line %d: expected ')'", q.line)
			}
			return Ref{Name: t.text, Sub: sub}, nil
		}
		return Ident{Name: t.text}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if q := p.advance(); q.kind != tokRParen {
			return nil, fmt.Errorf("transform: line %d: expected ')'", q.line)
		}
		return e, nil
	case tokOp:
		if t.text == "-" {
			x, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			return Neg{X: x}, nil
		}
	}
	return nil, fmt.Errorf("transform: line %d: unexpected token %q", t.line, t.text)
}
