package transform

import (
	"testing"
)

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(trisolveSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInspect(b *testing.B) {
	loop, err := Parse(simpleLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		b.Fatal(err)
	}
	env := buildSimpleEnv(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inspect(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretedExecutorBody(b *testing.B) {
	loop, err := Parse(simpleLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		b.Fatal(err)
	}
	env := buildSimpleEnv(10000, 2)
	body, err := a.ExecutorBody(env, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body(int32(i % 10000))
	}
}

func BenchmarkGenerateGo(b *testing.B) {
	loop, err := Parse(trisolveSrc)
	if err != nil {
		b.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateGo(a, "Bench")
	}
}
