package transform

import "testing"

func TestForconsiderAlias(t *testing.T) {
	src := `
forconsider i = 0, n-1
  x(i) = x(i) + b(i)*x(ia(i))
enddo
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	if a.Written != "x" || a.IndirectReads != 1 {
		t.Errorf("forconsider analysis wrong: %+v", a)
	}
}

func TestRejectsPlainDoAtTopLevel(t *testing.T) {
	if _, err := Parse("do i = 0, n-1\n x(i) = 1\nenddo"); err == nil {
		t.Error("plain do accepted as doconsider loop")
	}
}
