package transform

import (
	"testing"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/vec"
)

const twoLoopProgram = `
doconsider i = 0, n-1
  x(i) = x(i) + b(i)*x(ia(i))
enddo

forconsider i = 0, n-1
  y(i) = y(i) + x(i)*y(ib(i))
enddo
`

func TestParseProgram(t *testing.T) {
	prog, err := ParseProgram(twoLoopProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(prog.Loops))
	}
	analyses, err := prog.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	if analyses[0].Written != "x" || analyses[1].Written != "y" {
		t.Errorf("written arrays: %q %q", analyses[0].Written, analyses[1].Written)
	}
}

func TestParseProgramErrors(t *testing.T) {
	if _, err := ParseProgram(""); err == nil {
		t.Error("accepted empty program")
	}
	if _, err := ParseProgram("doconsider i = 0, n\n x(i) = 1\nenddo\ngarbage"); err == nil {
		t.Error("accepted trailing garbage")
	}
}

// TestProgramParallelMatchesSequential transforms and runs both loops of a
// program, each with its own inspector and runtime, against the shared
// sequential interpretation.
func TestProgramParallelMatchesSequential(t *testing.T) {
	prog, err := ParseProgram(twoLoopProgram)
	if err != nil {
		t.Fatal(err)
	}
	n := 300
	mkEnv := func() *Env {
		env := buildSimpleEnv(n, 9)
		// Second loop's arrays.
		y := make([]float64, n)
		ib := make([]int32, n)
		for i := 0; i < n; i++ {
			y[i] = float64(i%7) - 3
			ib[i] = int32((i * 13) % n)
		}
		env.Float["y"] = y
		env.Int["ib"] = ib
		return env
	}
	seq := mkEnv()
	if err := prog.RunSequentialAll(seq); err != nil {
		t.Fatal(err)
	}
	par := mkEnv()
	analyses, err := prog.AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range analyses {
		deps, err := a.Inspect(par)
		if err != nil {
			t.Fatalf("loop %d: %v", i+1, err)
		}
		rt, err := core.New(deps, core.WithProcs(5), core.WithExecutor(executor.SelfExecuting))
		if err != nil {
			t.Fatal(err)
		}
		body, err := a.ExecutorBody(par, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt.Run(body)
	}
	for _, name := range []string{"x", "y"} {
		if d := vec.MaxAbsDiff(seq.Float[name], par.Float[name]); d != 0 {
			t.Errorf("%s differs by %v", name, d)
		}
	}
}
