package transform

import (
	"math/rand"
	"strings"
	"testing"

	"doconsider/internal/core"
	"doconsider/internal/executor"
	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
	"doconsider/internal/trisolve"
	"doconsider/internal/vec"
	"doconsider/internal/wavefront"
)

const simpleLoopSrc = `
doconsider i = 0, n-1
  x(i) = x(i) + b(i)*x(ia(i))
enddo
`

const trisolveSrc = `
doconsider i = 0, n-1
  y(i) = rhs(i)
  do j = ija(i), ija(i+1)-1
    y(i) = y(i) - a(j)*y(ja(j))
  enddo
enddo
`

func TestParseSimpleLoop(t *testing.T) {
	loop, err := Parse(simpleLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if loop.Var != "i" {
		t.Errorf("loop var %q", loop.Var)
	}
	if len(loop.Body) != 1 {
		t.Fatalf("body has %d statements", len(loop.Body))
	}
	if loop.String() == "" {
		t.Error("empty loop string")
	}
}

func TestParseNestedLoop(t *testing.T) {
	loop, err := Parse(trisolveSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(loop.Body) != 2 {
		t.Fatalf("body has %d statements", len(loop.Body))
	}
	if _, ok := loop.Body[1].(InnerLoop); !ok {
		t.Fatal("second statement should be the inner loop")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"do i = 0, n\nenddo",                       // not doconsider
		"doconsider i = 0, n\n x(i) = 1",           // missing enddo
		"doconsider i = 0 n\n x(i)=1\nenddo",       // missing comma
		"doconsider i = 0, n\n x(i = 1\nenddo",     // bad paren
		"doconsider i = 0, n\n x(i) = $\nenddo",    // bad char
		"doconsider i = 0, n\n x(i) = 1\nenddo\nz", // trailing junk
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "doconsider i = 0, n-1 ! outer\n x(i) = x(i) + 1 ! bump\nend do\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeSimpleLoop(t *testing.T) {
	loop, err := Parse(simpleLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	if a.Written != "x" {
		t.Errorf("written = %q", a.Written)
	}
	if a.SelfReads != 1 || a.IndirectReads != 1 {
		t.Errorf("reads: self=%d indirect=%d", a.SelfReads, a.IndirectReads)
	}
	found := false
	for _, n := range a.IntArrays {
		if n == "ia" {
			found = true
		}
	}
	if !found {
		t.Errorf("IntArrays = %v, want ia", a.IntArrays)
	}
}

func TestAnalyzeRejectsNonLoopVarWrite(t *testing.T) {
	loop, err := Parse("doconsider i = 0, n-1\n x(ia(i)) = 1\nenddo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(loop); err == nil {
		t.Error("Analyze accepted write through indirection")
	}
}

func TestAnalyzeRejectsTwoWrittenArrays(t *testing.T) {
	loop, err := Parse("doconsider i = 0, n-1\n x(i) = 1\n y(i) = 2\nenddo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(loop); err == nil {
		t.Error("Analyze accepted two written arrays")
	}
}

func TestAnalyzeRejectsNoWrite(t *testing.T) {
	loop, err := Parse("doconsider i = 0, n-1\n t = 1\nenddo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(loop); err == nil {
		t.Error("Analyze accepted loop with no array write")
	}
}

// buildSimpleEnv binds the simple loop's arrays.
func buildSimpleEnv(n int, seed int64) *Env {
	rng := rand.New(rand.NewSource(seed))
	env := NewEnv()
	x := make([]float64, n)
	b := make([]float64, n)
	ia := make([]int32, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() * 0.5
		ia[i] = int32(rng.Intn(n))
	}
	env.Float["x"] = x
	env.Float["b"] = b
	env.Int["ia"] = ia
	env.Scalars["n"] = n
	return env
}

func TestInspectMatchesFromIndirection(t *testing.T) {
	loop, _ := Parse(simpleLoopSrc)
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	env := buildSimpleEnv(300, 1)
	deps, err := a.Inspect(env)
	if err != nil {
		t.Fatal(err)
	}
	want := wavefront.FromIndirection(env.Int["ia"])
	if deps.N != want.N || deps.Edges() != want.Edges() {
		t.Fatalf("deps %d/%d edges, want %d/%d", deps.N, deps.Edges(), want.N, want.Edges())
	}
	for i := 0; i < deps.N; i++ {
		got := deps.On(i)
		exp := want.On(i)
		if len(got) != len(exp) {
			t.Fatalf("iteration %d: %v vs %v", i, got, exp)
		}
		for k := range got {
			if got[k] != exp[k] {
				t.Fatalf("iteration %d: %v vs %v", i, got, exp)
			}
		}
	}
}

func TestTransformedSimpleLoopMatchesSequential(t *testing.T) {
	loop, _ := Parse(simpleLoopSrc)
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []executor.Kind{executor.PreScheduled, executor.SelfExecuting} {
		envSeq := buildSimpleEnv(400, 2)
		envPar := buildSimpleEnv(400, 2)
		if err := a.RunSequential(envSeq); err != nil {
			t.Fatal(err)
		}
		deps, err := a.Inspect(envPar)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.New(deps, core.WithProcs(6), core.WithExecutor(kind))
		if err != nil {
			t.Fatal(err)
		}
		body, err := a.ExecutorBody(envPar, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt.Run(body)
		if d := vec.MaxAbsDiff(envSeq.Float["x"], envPar.Float["x"]); d != 0 {
			t.Errorf("kind=%v: transformed loop differs by %v", kind, d)
		}
	}
}

// TestTransformedTriangularSolve runs the Figure 8 loop through the full
// transform pipeline on a real mesh factor and compares with trisolve.
func TestTransformedTriangularSolve(t *testing.T) {
	mesh := stencil.Laplace2D(12, 9)
	l := mesh.LowerWithDiag()
	n := l.N
	// Unit diagonal version: scale rows so the solve needs no division.
	lUnit := sparse.New(n, n, l.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := l.Row(i)
		d := l.At(i, i)
		for k, c := range cols {
			if int(c) != i {
				lUnit.ColIdx = append(lUnit.ColIdx, c)
				lUnit.Val = append(lUnit.Val, vals[k]/d)
			}
		}
		lUnit.RowPtr[i+1] = int32(len(lUnit.ColIdx))
	}
	// DSL arrays: strictly-lower entries only; y(i) = rhs(i) - sum a(j)*y(ja(j)).
	loop, err := Parse(trisolveSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	env := NewEnv()
	env.Float["y"] = make([]float64, n)
	env.Float["rhs"] = rhs
	env.Float["a"] = lUnit.Val
	env.Int["ja"] = lUnit.ColIdx
	ija := make([]int32, n+1)
	copy(ija, lUnit.RowPtr)
	env.Int["ija"] = ija
	env.Scalars["n"] = n

	deps, err := a.Inspect(env)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(deps, core.WithProcs(5), core.WithExecutor(executor.SelfExecuting))
	if err != nil {
		t.Fatal(err)
	}
	body, err := a.ExecutorBody(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(body)

	// Reference: trisolve on the unit-diagonal factor (diagonal implicit 1).
	withDiag := lUnit.Clone()
	ts := []sparse.Triplet{}
	for i := 0; i < n; i++ {
		cols, vals := withDiag.Row(i)
		for k := range cols {
			ts = append(ts, sparse.Triplet{Row: i, Col: int(cols[k]), Val: vals[k]})
		}
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 1})
	}
	full := sparse.MustAssemble(n, n, ts)
	want := make([]float64, n)
	if err := trisolve.ForwardSeq(full, want, rhs); err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(env.Float["y"], want); d > 1e-12 {
		t.Errorf("transformed triangular solve differs by %v", d)
	}
}

func TestGenerateGo(t *testing.T) {
	loop, _ := Parse(simpleLoopSrc)
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateGo(a, "RunSimple")
	for _, want := range []string{
		"func RunSimple(x []float64, b []float64, ia []int32",
		"core.New(deps",
		"wavefront.FromAdjacency(adj)",
		"xold := append([]float64(nil), x...)",
		"rt.Run(func(i int32) {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateGoNested(t *testing.T) {
	loop, _ := Parse(trisolveSrc)
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateGo(a, "RunTriSolve")
	if !strings.Contains(src, "for j :=") {
		t.Errorf("generated code missing inner loop:\n%s", src)
	}
}

func TestEnvEvalErrors(t *testing.T) {
	env := NewEnv()
	if _, err := env.eval(Ident{Name: "missing"}, locals{}, false); err == nil {
		t.Error("eval accepted unbound scalar")
	}
	if _, err := env.eval(Ref{Name: "arr", Sub: Num{Val: 0}}, locals{}, false); err == nil {
		t.Error("eval accepted unbound array")
	}
	env.Float["a"] = []float64{1}
	if _, err := env.eval(Ref{Name: "a", Sub: Num{Val: 5}}, locals{}, false); err == nil {
		t.Error("eval accepted out-of-range subscript")
	}
	if _, err := env.eval(Bin{Op: '/', L: Num{Val: 1}, R: Num{Val: 0}}, locals{}, false); err == nil {
		t.Error("eval accepted division by zero")
	}
}

func TestScalarTemporaries(t *testing.T) {
	// Figure 6 shape: temp = f(i); y(i) = y(i) + temp*y(g(i)).
	src := `
doconsider i = 0, n-1
  temp = f(i)
  y(i) = y(i) + temp*y(g(i))
enddo
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scalars) != 1 || a.Scalars[0] != "temp" {
		t.Errorf("Scalars = %v", a.Scalars)
	}
	n := 200
	rng := rand.New(rand.NewSource(4))
	mkEnv := func() *Env {
		rng := rand.New(rand.NewSource(5))
		env := NewEnv()
		y := make([]float64, n)
		f := make([]float64, n)
		g := make([]int32, n)
		for i := 0; i < n; i++ {
			y[i] = rng.NormFloat64()
			f[i] = rng.NormFloat64() * 0.3
			g[i] = int32(rng.Intn(n))
		}
		env.Float["y"] = y
		env.Float["f"] = f
		env.Int["g"] = g
		env.Scalars["n"] = n
		return env
	}
	_ = rng
	seq := mkEnv()
	if err := a.RunSequential(seq); err != nil {
		t.Fatal(err)
	}
	par := mkEnv()
	deps, err := a.Inspect(par)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(deps, core.WithProcs(4))
	if err != nil {
		t.Fatal(err)
	}
	body, err := a.ExecutorBody(par, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run(body)
	if d := vec.MaxAbsDiff(seq.Float["y"], par.Float["y"]); d != 0 {
		t.Errorf("scalar-temp loop differs by %v", d)
	}
}
