// Package transform implements the paper's Section 2.2: the rules by which
// an automated symbolic manipulator performs source-to-source
// transformation of a sequential loop annotated with doconsider into its
// run-time parallelized form.
//
// The input language is a small Fortran-flavoured loop DSL:
//
//	doconsider i = 0, n-1
//	  x(i) = x(i) + b(i)*x(ia(i))
//	enddo
//
// or, with an inner loop over a sparse-row pointer structure (the paper's
// Figure 6 / Figure 8 triangular solve):
//
//	doconsider i = 0, n-1
//	  y(i) = rhs(i)
//	  do j = ija(i), ija(i+1)-1
//	    y(i) = y(i) - a(j)*y(ija(j))
//	  enddo
//	enddo
//
// From the parsed loop the package derives an inspector (which enumerates,
// for each outer iteration, the iterations it depends on, by evaluating the
// subscript expressions of reads of the written array against the run-time
// data), an executor body (a tree-walking evaluator safe for concurrent
// iterations), and generated Go source with the structure of the paper's
// Figures 4, 5 and 7.
package transform

import "fmt"

// Expr is an expression node.
type Expr interface{ exprString() string }

// Num is a numeric literal (integer-valued; the DSL's subscript arithmetic
// is integral and its data arithmetic promotes to float64).
type Num struct{ Val float64 }

// Ident is a scalar variable reference (loop variables and locals).
type Ident struct{ Name string }

// Ref is an array reference name(sub).
type Ref struct {
	Name string
	Sub  Expr
}

// Bin is a binary operation.
type Bin struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// Neg is unary minus.
type Neg struct{ X Expr }

func (n Num) exprString() string   { return fmt.Sprintf("%g", n.Val) }
func (i Ident) exprString() string { return i.Name }
func (r Ref) exprString() string   { return r.Name + "(" + r.Sub.exprString() + ")" }
func (b Bin) exprString() string {
	return "(" + b.L.exprString() + string(b.Op) + b.R.exprString() + ")"
}
func (n Neg) exprString() string { return "(-" + n.X.exprString() + ")" }

// String renders an expression.
func ExprString(e Expr) string { return e.exprString() }

// Stmt is a statement in the loop body.
type Stmt interface{ stmtString() string }

// Assign is "target = expr" where target is an array ref or a scalar.
type Assign struct {
	Array  string // empty for scalar assignment
	Sub    Expr   // nil for scalar assignment
	Scalar string // set for scalar assignment
	RHS    Expr
}

func (a Assign) stmtString() string {
	if a.Array != "" {
		return a.Array + "(" + a.Sub.exprString() + ") = " + a.RHS.exprString()
	}
	return a.Scalar + " = " + a.RHS.exprString()
}

// InnerLoop is a nested sequential "do" loop with inclusive bounds.
type InnerLoop struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
}

func (l InnerLoop) stmtString() string {
	return "do " + l.Var + " = " + l.Lo.exprString() + ", " + l.Hi.exprString()
}

// Loop is a parsed doconsider loop with inclusive bounds.
type Loop struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
}

// String renders the loop header.
func (l *Loop) String() string {
	return "doconsider " + l.Var + " = " + l.Lo.exprString() + ", " + l.Hi.exprString()
}
