package transform

import (
	"strings"
	"testing"
)

func TestGeneratePreScheduledGo(t *testing.T) {
	loop, err := Parse(simpleLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	src := GeneratePreScheduledGo(a, "RunPre")
	for _, want := range []string{
		"func RunPre(x []float64, b []float64, ia []int32, nproc int) error {",
		"executor.PreScheduled",
		"Figure 5",
		"xold := append([]float64(nil), x...)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
}

func TestGenerateInspectorGo(t *testing.T) {
	loop, err := Parse(trisolveSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateInspectorGo(a, "Wavefronts")
	for _, want := range []string{
		"func Wavefronts(n int, ija []int32, ja []int32) []int32 {",
		"maxwf := make([]int32, n)",
		"maxwf[i] = mywf + 1",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated inspector missing %q:\n%s", want, src)
		}
	}
}
