package transform

import (
	"fmt"
)

// Analysis is the compile-time result of examining a doconsider loop: the
// array the loop writes (carrying the cross-iteration dependences) and the
// reads of that array whose subscripts must be evaluated at run time.
type Analysis struct {
	Loop    *Loop
	Written string // the array written at subscript <loop var>
	// SelfReads counts reads of the written array whose subscript is
	// syntactically the loop variable (no ordering constraint).
	SelfReads int
	// IndirectReads counts reads of the written array with any other
	// subscript; these are the references the inspector must resolve.
	IndirectReads int
	// IntArrays lists arrays used inside subscripts or inner-loop bounds —
	// the data structures that carry the dependence information (the
	// paper's ia / ija).
	IntArrays []string
	// FloatArrays lists all other arrays referenced.
	FloatArrays []string
	// Scalars lists loop-local scalar temporaries (paper Figure 6's temp).
	Scalars []string
}

// Analyze performs the compile-time half of the transformation: it
// determines the written array, classifies the reads of that array, and
// verifies the loop fits the start-time-schedulable form the paper's
// system handles (a single written array, subscripted by the loop
// variable).
func Analyze(loop *Loop) (*Analysis, error) {
	a := &Analysis{Loop: loop}
	seenInt := map[string]bool{}
	seenFloat := map[string]bool{}
	seenScalar := map[string]bool{}

	// Collect integer-context arrays from an expression tree.
	var intCtx func(e Expr)
	intCtx = func(e Expr) {
		switch v := e.(type) {
		case Ref:
			if !seenInt[v.Name] {
				seenInt[v.Name] = true
				a.IntArrays = append(a.IntArrays, v.Name)
			}
			intCtx(v.Sub)
		case Bin:
			intCtx(v.L)
			intCtx(v.R)
		case Neg:
			intCtx(v.X)
		}
	}
	var valueCtx func(e Expr)
	valueCtx = func(e Expr) {
		switch v := e.(type) {
		case Ref:
			if !seenFloat[v.Name] {
				seenFloat[v.Name] = true
				a.FloatArrays = append(a.FloatArrays, v.Name)
			}
			intCtx(v.Sub) // subscripts are integer context
		case Bin:
			valueCtx(v.L)
			valueCtx(v.R)
		case Neg:
			valueCtx(v.X)
		}
	}

	var walk func(stmts []Stmt) error
	walk = func(stmts []Stmt) error {
		for _, st := range stmts {
			switch s := st.(type) {
			case Assign:
				if s.Array != "" {
					iv, ok := s.Sub.(Ident)
					if !ok || iv.Name != loop.Var {
						return fmt.Errorf("transform: write to %s(%s) not subscripted by loop variable %s",
							s.Array, ExprString(s.Sub), loop.Var)
					}
					if a.Written != "" && a.Written != s.Array {
						return fmt.Errorf("transform: loop writes both %s and %s; one written array supported",
							a.Written, s.Array)
					}
					a.Written = s.Array
				} else if !seenScalar[s.Scalar] {
					seenScalar[s.Scalar] = true
					a.Scalars = append(a.Scalars, s.Scalar)
				}
				valueCtx(s.RHS)
			case InnerLoop:
				intCtx(s.Lo)
				intCtx(s.Hi)
				if err := walk(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(loop.Body); err != nil {
		return nil, err
	}
	if a.Written == "" {
		return nil, fmt.Errorf("transform: loop writes no array; nothing to parallelize")
	}
	// Classify reads of the written array.
	var classify func(e Expr)
	classify = func(e Expr) {
		switch v := e.(type) {
		case Ref:
			if v.Name == a.Written {
				if iv, ok := v.Sub.(Ident); ok && iv.Name == loop.Var {
					a.SelfReads++
				} else {
					a.IndirectReads++
				}
			}
			classify(v.Sub)
		case Bin:
			classify(v.L)
			classify(v.R)
		case Neg:
			classify(v.X)
		}
	}
	var classifyStmts func(stmts []Stmt)
	classifyStmts = func(stmts []Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case Assign:
				classify(s.RHS)
			case InnerLoop:
				classifyStmts(s.Body)
			}
		}
	}
	classifyStmts(loop.Body)
	// Drop the written array from FloatArrays bookkeeping duplicates: it is
	// reported separately.
	out := a.FloatArrays[:0]
	for _, n := range a.FloatArrays {
		if n != a.Written {
			out = append(out, n)
		}
	}
	a.FloatArrays = out
	return a, nil
}
