package transform

import (
	"reflect"
	"strings"
	"testing"
)

func TestRenderRoundTrip(t *testing.T) {
	for _, src := range []string{simpleLoopSrc, trisolveSrc} {
		loop, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		rendered := loop.Render()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered source failed: %v\n%s", err, rendered)
		}
		// ASTs must match after one render/parse cycle (the second render
		// normalizes parenthesization, so compare re-rendered forms).
		if loop.Render() != again.Render() {
			t.Errorf("render round trip unstable:\n%s\nvs\n%s", loop.Render(), again.Render())
		}
	}
}

func TestRenderContainsStructure(t *testing.T) {
	loop, err := Parse(trisolveSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := loop.Render()
	for _, want := range []string{"doconsider i =", "do j =", "enddo"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered source missing %q:\n%s", want, out)
		}
	}
}

func TestDeepNesting(t *testing.T) {
	src := `
doconsider i = 0, n-1
  do j = 0, 2
    do k = 0, 1
      x(i) = x(i) + w(j)*v(k)
    enddo
  enddo
enddo
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	if a.Written != "x" {
		t.Errorf("written = %q", a.Written)
	}
	env := NewEnv()
	n := 10
	env.Float["x"] = make([]float64, n)
	env.Float["w"] = []float64{1, 2, 3}
	env.Float["v"] = []float64{4, 5}
	env.Scalars["n"] = n
	if err := a.RunSequential(env); err != nil {
		t.Fatal(err)
	}
	// Each x(i) accumulates sum_j sum_k w(j)*v(k) = (1+2+3)*(4+5) = 54.
	for i := 0; i < n; i++ {
		if env.Float["x"][i] != 54 {
			t.Fatalf("x[%d] = %v, want 54", i, env.Float["x"][i])
		}
	}
	want := loop.Render()
	again, err := Parse(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loop.Var, again.Var) {
		t.Error("deep nest round trip broke the loop variable")
	}
}

func TestUnaryMinusAndDivision(t *testing.T) {
	src := `
doconsider i = 0, n-1
  x(i) = -x(i)/2 + 1
enddo
`
	loop, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(loop)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Float["x"] = []float64{2, 4, 6}
	env.Scalars["n"] = 3
	if err := a.RunSequential(env); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, -1, -2}
	for i, v := range env.Float["x"] {
		if v != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, v, want[i])
		}
	}
}
