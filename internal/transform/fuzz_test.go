package transform

import "testing"

// FuzzParse ensures the DSL parser never panics on arbitrary input; it may
// only return errors. Run with `go test -fuzz=FuzzParse ./internal/transform`
// for continuous fuzzing; the seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		simpleLoopSrc,
		trisolveSrc,
		"doconsider i = 0, n-1\nenddo",
		"forconsider j = 1, m\n y(j) = y(j)/2\nend do",
		"doconsider i = 0, n\n x(i) = -x(i) + (a(i)*b(i))/c(i) ! comment\nenddo",
		"doconsider i = 0, n\n do j = p(i), p(i+1)-1\n  x(i) = x(i) - v(j)*x(idx(j))\n enddo\nenddo",
		"",
		"(((((",
		"doconsider",
		"doconsider i = , \n",
		"doconsider i = 0, n\n x(i) = 1",
		"doconsider i = 0, n\n 5 = x\nenddo",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		loop, err := Parse(src)
		if err != nil {
			return
		}
		// Anything that parses must also analyze or error cleanly, and the
		// loop must render.
		_ = loop.String()
		if an, err := Analyze(loop); err == nil {
			_ = GenerateGo(an, "Fuzzed")
			_ = GeneratePreScheduledGo(an, "FuzzedPre")
			_ = GenerateInspectorGo(an, "FuzzedInsp")
		}
	})
}
