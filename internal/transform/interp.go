package transform

import (
	"fmt"

	"doconsider/internal/executor"
	"doconsider/internal/wavefront"
)

// Env binds the arrays and scalars a loop references. Float arrays hold
// the numeric data; Int arrays hold subscript/indirection data (the
// paper's ia and ija structures); Scalars hold loop-invariant bounds such
// as n.
type Env struct {
	Float   map[string][]float64
	Int     map[string][]int32
	Scalars map[string]int
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		Float:   map[string][]float64{},
		Int:     map[string][]int32{},
		Scalars: map[string]int{},
	}
}

// locals are per-iteration scalar bindings (loop variables, temporaries).
type locals map[string]float64

// evalInt evaluates an expression in integer context (subscripts, bounds).
func (env *Env) evalInt(e Expr, loc locals) (int, error) {
	v, err := env.eval(e, loc, true)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// eval evaluates an expression. intCtx selects Int arrays before Float
// arrays for Ref lookups, matching Fortran integer/real array semantics.
func (env *Env) eval(e Expr, loc locals, intCtx bool) (float64, error) {
	switch v := e.(type) {
	case Num:
		return v.Val, nil
	case Ident:
		if x, ok := loc[v.Name]; ok {
			return x, nil
		}
		if x, ok := env.Scalars[v.Name]; ok {
			return float64(x), nil
		}
		return 0, fmt.Errorf("transform: unbound scalar %q", v.Name)
	case Ref:
		sub, err := env.evalInt(v.Sub, loc)
		if err != nil {
			return 0, err
		}
		if intCtx {
			if arr, ok := env.Int[v.Name]; ok {
				if sub < 0 || sub >= len(arr) {
					return 0, fmt.Errorf("transform: %s(%d) out of range", v.Name, sub)
				}
				return float64(arr[sub]), nil
			}
		}
		if arr, ok := env.Float[v.Name]; ok {
			if sub < 0 || sub >= len(arr) {
				return 0, fmt.Errorf("transform: %s(%d) out of range", v.Name, sub)
			}
			return arr[sub], nil
		}
		if arr, ok := env.Int[v.Name]; ok {
			if sub < 0 || sub >= len(arr) {
				return 0, fmt.Errorf("transform: %s(%d) out of range", v.Name, sub)
			}
			return float64(arr[sub]), nil
		}
		return 0, fmt.Errorf("transform: unbound array %q", v.Name)
	case Bin:
		l, err := env.eval(v.L, loc, intCtx)
		if err != nil {
			return 0, err
		}
		r, err := env.eval(v.R, loc, intCtx)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("transform: division by zero")
			}
			return l / r, nil
		}
		return 0, fmt.Errorf("transform: unknown operator %q", v.Op)
	case Neg:
		x, err := env.eval(v.X, loc, intCtx)
		return -x, err
	}
	return 0, fmt.Errorf("transform: unknown expression %T", e)
}

// Bounds evaluates the outer loop's inclusive bounds.
func (a *Analysis) Bounds(env *Env) (lo, hi int, err error) {
	lo, err = env.evalInt(a.Loop.Lo, locals{})
	if err != nil {
		return 0, 0, err
	}
	hi, err = env.evalInt(a.Loop.Hi, locals{})
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// Inspect is the run-time inspector (the scheduling procedure of paper
// Section 1): for each outer iteration it walks the loop body, evaluating
// the subscripts of every read of the written array, and records a
// dependence on the producing iteration whenever the subscript refers to
// an earlier iteration. References to the current or later iterations
// read old values (Figure 4's xold) and impose no ordering.
func (a *Analysis) Inspect(env *Env) (*wavefront.Deps, error) {
	lo, hi, err := a.Bounds(env)
	if err != nil {
		return nil, err
	}
	n := hi - lo + 1
	if n < 0 {
		n = 0
	}
	adj := make([][]int32, n)
	for i := lo; i <= hi; i++ {
		loc := locals{a.Loop.Var: float64(i)}
		var deps []int32
		collect := func(sub int) {
			if sub >= lo && sub < i {
				deps = append(deps, int32(sub-lo))
			}
		}
		if err := a.inspectStmts(env, a.Loop.Body, loc, collect); err != nil {
			return nil, fmt.Errorf("iteration %d: %w", i, err)
		}
		adj[i-lo] = deps
	}
	return wavefront.FromAdjacency(adj), nil
}

func (a *Analysis) inspectStmts(env *Env, stmts []Stmt, loc locals, collect func(int)) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case Assign:
			if err := a.inspectExpr(env, s.RHS, loc, collect); err != nil {
				return err
			}
			// Scalar assignments may feed later subscripts; evaluate them so
			// the inspector sees the same locals the executor will.
			if s.Scalar != "" {
				v, err := env.eval(s.RHS, loc, false)
				if err != nil {
					return err
				}
				loc[s.Scalar] = v
			}
		case InnerLoop:
			jlo, err := env.evalInt(s.Lo, loc)
			if err != nil {
				return err
			}
			jhi, err := env.evalInt(s.Hi, loc)
			if err != nil {
				return err
			}
			for j := jlo; j <= jhi; j++ {
				loc[s.Var] = float64(j)
				if err := a.inspectStmts(env, s.Body, loc, collect); err != nil {
					return err
				}
			}
			delete(loc, s.Var)
		}
	}
	return nil
}

func (a *Analysis) inspectExpr(env *Env, e Expr, loc locals, collect func(int)) error {
	switch v := e.(type) {
	case Ref:
		if v.Name == a.Written {
			sub, err := env.evalInt(v.Sub, loc)
			if err != nil {
				return err
			}
			collect(sub)
		}
		return a.inspectExpr(env, v.Sub, loc, collect)
	case Bin:
		if err := a.inspectExpr(env, v.L, loc, collect); err != nil {
			return err
		}
		return a.inspectExpr(env, v.R, loc, collect)
	case Neg:
		return a.inspectExpr(env, v.X, loc, collect)
	}
	return nil
}

// ExecutorBody returns an executor loop body that interprets the original
// loop body for one outer iteration. Reads of the written array at later
// iterations are served from xold (captured at Body creation); reads of
// the current and earlier iterations come from the live array — the
// semantics of the transformed loop in paper Figure 4.
//
// The returned body allocates its scalar locals per invocation, so
// concurrent iterations do not share temporaries.
func (a *Analysis) ExecutorBody(env *Env, lo int) (executor.Body, error) {
	x, ok := env.Float[a.Written]
	if !ok {
		return nil, fmt.Errorf("transform: written array %q not bound", a.Written)
	}
	xold := append([]float64(nil), x...)
	run := func(i int32) {
		iter := lo + int(i)
		loc := locals{a.Loop.Var: float64(iter)}
		// Errors inside the body indicate a mismatch between inspector and
		// executor and are programming errors; they panic.
		if err := a.execStmts(env, a.Loop.Body, loc, iter, xold); err != nil {
			panic(err)
		}
	}
	return run, nil
}

func (a *Analysis) execStmts(env *Env, stmts []Stmt, loc locals, iter int, xold []float64) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case Assign:
			v, err := a.execExpr(env, s.RHS, loc, iter, xold)
			if err != nil {
				return err
			}
			if s.Array != "" {
				sub, err := env.evalInt(s.Sub, loc)
				if err != nil {
					return err
				}
				env.Float[s.Array][sub] = v
			} else {
				loc[s.Scalar] = v
			}
		case InnerLoop:
			jlo, err := env.evalInt(s.Lo, loc)
			if err != nil {
				return err
			}
			jhi, err := env.evalInt(s.Hi, loc)
			if err != nil {
				return err
			}
			for j := jlo; j <= jhi; j++ {
				loc[s.Var] = float64(j)
				if err := a.execStmts(env, s.Body, loc, iter, xold); err != nil {
					return err
				}
			}
			delete(loc, s.Var)
		}
	}
	return nil
}

// execExpr evaluates a value expression with the Figure 4 read rule for
// the written array.
func (a *Analysis) execExpr(env *Env, e Expr, loc locals, iter int, xold []float64) (float64, error) {
	switch v := e.(type) {
	case Ref:
		if v.Name == a.Written {
			sub, err := env.evalInt(v.Sub, loc)
			if err != nil {
				return 0, err
			}
			if sub < 0 || sub >= len(xold) {
				return 0, fmt.Errorf("transform: %s(%d) out of range", v.Name, sub)
			}
			// Figure 4 read rule: strictly-later iterations are served from
			// xold (they impose no ordering); the current iteration reads
			// its own live value (it may have partially updated it, as in
			// the Figure 8 triangular solve); earlier iterations read the
			// live array, which the executor has synchronized.
			if sub > iter {
				return xold[sub], nil
			}
			return env.Float[a.Written][sub], nil
		}
		return env.eval(v, loc, false)
	case Bin:
		l, err := a.execExpr(env, v.L, loc, iter, xold)
		if err != nil {
			return 0, err
		}
		r, err := a.execExpr(env, v.R, loc, iter, xold)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("transform: division by zero")
			}
			return l / r, nil
		}
		return 0, fmt.Errorf("transform: unknown operator %q", v.Op)
	case Neg:
		x, err := a.execExpr(env, v.X, loc, iter, xold)
		return -x, err
	default:
		return env.eval(e, loc, false)
	}
}

// RunSequential interprets the loop with the original sequential
// semantics, for verification of the transformed execution. (The Figure 4
// xold convention is semantics-preserving for the sequential order, since
// reads at subscripts >= the current iteration see values not yet written
// in that sweep.)
func (a *Analysis) RunSequential(env *Env) error {
	lo, hi, err := a.Bounds(env)
	if err != nil {
		return err
	}
	x := env.Float[a.Written]
	xold := append([]float64(nil), x...)
	for i := lo; i <= hi; i++ {
		loc := locals{a.Loop.Var: float64(i)}
		if err := a.execStmts(env, a.Loop.Body, loc, i, xold); err != nil {
			return err
		}
	}
	return nil
}
