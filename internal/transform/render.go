package transform

import (
	"fmt"
	"strings"
)

// Render pretty-prints the whole loop back to DSL source — the annotated
// user code of paper Figure 3. Parse(Render(loop)) reproduces the same
// AST (modulo parenthesization), which the tests verify.
func (l *Loop) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "doconsider %s = %s, %s\n", l.Var, ExprString(l.Lo), ExprString(l.Hi))
	renderStmts(&b, l.Body, 1)
	b.WriteString("enddo\n")
	return b.String()
}

func renderStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, st := range stmts {
		switch s := st.(type) {
		case Assign:
			fmt.Fprintf(b, "%s%s\n", ind, s.stmtString())
		case InnerLoop:
			fmt.Fprintf(b, "%sdo %s = %s, %s\n", ind, s.Var, ExprString(s.Lo), ExprString(s.Hi))
			renderStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%senddo\n", ind)
		}
	}
}
