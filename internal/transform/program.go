package transform

import "fmt"

// Program is a sequence of annotated loops, the shape of a realistic
// compiler input: a user code with several doconsider/forconsider loops,
// each transformed independently (the paper's automated system "can and
// will" handle codes "much more complex in structure" than one loop).
type Program struct {
	Loops []*Loop
}

// ParseProgram parses any number of consecutive doconsider/forconsider
// loops from source text.
func ParseProgram(src string) (*Program, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			break
		}
		loop, err := p.parseDoconsider()
		if err != nil {
			return nil, fmt.Errorf("loop %d: %w", len(prog.Loops)+1, err)
		}
		prog.Loops = append(prog.Loops, loop)
	}
	if len(prog.Loops) == 0 {
		return nil, fmt.Errorf("transform: program contains no loops")
	}
	return prog, nil
}

// AnalyzeAll analyzes every loop of the program.
func (p *Program) AnalyzeAll() ([]*Analysis, error) {
	out := make([]*Analysis, 0, len(p.Loops))
	for i, loop := range p.Loops {
		a, err := Analyze(loop)
		if err != nil {
			return nil, fmt.Errorf("loop %d: %w", i+1, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunSequentialAll interprets the loops of the program in order against a
// shared environment — the reference semantics for the whole user code.
func (p *Program) RunSequentialAll(env *Env) error {
	analyses, err := p.AnalyzeAll()
	if err != nil {
		return err
	}
	for i, a := range analyses {
		if err := a.RunSequential(env); err != nil {
			return fmt.Errorf("loop %d: %w", i+1, err)
		}
	}
	return nil
}
