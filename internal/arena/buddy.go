package arena

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// buddy is a classic binary buddy allocator over one contiguous byte
// region: blocks are powers of two between minOrder and maxOrder, an
// allocation splits the smallest sufficient free block down to fit, and
// a free merges the block with its buddy (offset ^ size) repeatedly
// while the buddy is also free. It is the slab source behind the arena
// pool — the split/merge free-list shape keeps the region from
// fragmenting under mixed request sizes, while the arenas on top give
// the warm path pure pointer-bump allocation.
//
// buddy is not safe for concurrent use; Pool serializes access.
type buddy struct {
	region   []byte
	minOrder uint
	maxOrder uint
	// free[o-minOrder] holds the start offsets of free blocks of order o.
	free [][]int
	// orderAt tracks the order of every live block (free or allocated) by
	// start offset; freeAt marks which of those are free. Together they
	// answer the two questions split/merge needs: "how big is the block
	// at this offset" and "is my buddy free at my order".
	orderAt map[int]uint
	freeAt  map[int]bool
}

// newBuddyRegion allocates an 8-byte-aligned backing region. Go slice
// allocations of []uint64 are guaranteed 8-aligned, which the typed
// views over arena memory rely on.
func newBuddyRegion(size int) []byte {
	words := make([]uint64, size/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
}

// newBuddy builds an allocator over a region of regionBytes (rounded up
// to a power of two) with minBlock granularity (also a power of two).
func newBuddy(regionBytes, minBlock int) *buddy {
	if minBlock < 64 {
		minBlock = 64
	}
	minBlock = 1 << uint(bits.Len(uint(minBlock-1)))
	if regionBytes < minBlock {
		regionBytes = minBlock
	}
	regionBytes = 1 << uint(bits.Len(uint(regionBytes-1)))
	b := &buddy{
		region:   newBuddyRegion(regionBytes),
		minOrder: uint(bits.TrailingZeros(uint(minBlock))),
		maxOrder: uint(bits.TrailingZeros(uint(regionBytes))),
		orderAt:  make(map[int]uint),
		freeAt:   make(map[int]bool),
	}
	b.free = make([][]int, b.maxOrder-b.minOrder+1)
	b.orderAt[0] = b.maxOrder
	b.freeAt[0] = true
	b.free[b.maxOrder-b.minOrder] = append(b.free[b.maxOrder-b.minOrder], 0)
	return b
}

// orderFor returns the smallest order whose block holds n bytes.
func (b *buddy) orderFor(n int) uint {
	o := uint(bits.Len(uint(n - 1)))
	if n <= 1 {
		o = 0
	}
	if o < b.minOrder {
		o = b.minOrder
	}
	return o
}

// alloc returns a block of at least n bytes and its region offset, or
// ok=false when no free block is large enough (the caller falls back to
// the heap and counts an overflow).
func (b *buddy) alloc(n int) (block []byte, off int, ok bool) {
	want := b.orderFor(n)
	if want > b.maxOrder {
		return nil, 0, false
	}
	// Find the smallest free order that fits, splitting halves back onto
	// the free lists on the way down.
	o := want
	for o <= b.maxOrder && len(b.free[o-b.minOrder]) == 0 {
		o++
	}
	if o > b.maxOrder {
		return nil, 0, false
	}
	list := b.free[o-b.minOrder]
	off = list[len(list)-1]
	b.free[o-b.minOrder] = list[:len(list)-1]
	delete(b.freeAt, off)
	for o > want {
		o--
		half := off + (1 << o)
		b.orderAt[half] = o
		b.freeAt[half] = true
		b.free[o-b.minOrder] = append(b.free[o-b.minOrder], half)
	}
	b.orderAt[off] = want
	return b.region[off : off+(1<<want) : off+(1<<want)], off, true
}

// freeBlock returns the block starting at off to the free lists, merging
// with its buddy as long as the buddy is free at the same order.
func (b *buddy) freeBlock(off int) {
	o, ok := b.orderAt[off]
	if !ok || b.freeAt[off] {
		panic(fmt.Sprintf("arena: freeing unallocated buddy block at offset %d", off))
	}
	for o < b.maxOrder {
		bud := off ^ (1 << o)
		if !b.freeAt[bud] || b.orderAt[bud] != o {
			break
		}
		// Merge: remove the buddy from its free list and coalesce.
		b.removeFree(bud, o)
		delete(b.orderAt, bud)
		delete(b.orderAt, off)
		if bud < off {
			off = bud
		}
		o++
		b.orderAt[off] = o
	}
	b.freeAt[off] = true
	b.free[o-b.minOrder] = append(b.free[o-b.minOrder], off)
}

// removeFree drops offset off from the order-o free list.
func (b *buddy) removeFree(off int, o uint) {
	list := b.free[o-b.minOrder]
	for i, v := range list {
		if v == off {
			list[i] = list[len(list)-1]
			b.free[o-b.minOrder] = list[:len(list)-1]
			delete(b.freeAt, off)
			return
		}
	}
	panic(fmt.Sprintf("arena: buddy free list corrupt at order %d offset %d", o, off))
}

// freeBytes sums the bytes on the free lists.
func (b *buddy) freeBytes() int {
	total := 0
	for i, list := range b.free {
		total += len(list) << (b.minOrder + uint(i))
	}
	return total
}
