package arena

import (
	"sync"
	"testing"
	"time"
)

func TestPoolReuseZeroAlloc(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 20, SlabBytes: 1 << 16})
	// Warm the pool so the steady state is a pure idle-list pop.
	a := p.Get()
	a.Release()

	allocs := testing.AllocsPerRun(100, func() {
		a := p.Get()
		_ = a.Float64s(512)
		_ = a.Int32s(128)
		rows := a.Rows(4)
		for i := range rows {
			rows[i] = nil
		}
		a.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm Get/alloc/Release = %v allocs/op, want 0", allocs)
	}
}

func TestArenaDoubleRelease(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 18, SlabBytes: 1 << 14})
	a := p.Get()
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	a.Release()
}

func TestArenaUseAfterRelease(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 18, SlabBytes: 1 << 14})
	a := p.Get()
	a.Release()
	t.Run("bytes", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Bytes after Release did not panic")
			}
		}()
		_ = a.Bytes(8)
	})
	t.Run("rows", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Rows after Release did not panic")
			}
		}()
		_ = a.Rows(1)
	})
	t.Run("retain", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Retain after Release did not panic")
			}
		}()
		a.Retain()
	})
}

// TestArenaRetainDefersRecycle checks a retained arena survives the
// first Release (the detached-solve-pass lifetime) and only returns to
// the pool on the final one.
func TestArenaRetainDefersRecycle(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 18, SlabBytes: 1 << 14})
	a := p.Get()
	xs := a.Float64s(16)
	a.Retain()
	a.Release() // handler's release; pass still holds a ref
	xs[0] = 42  // pass writes after the handler is gone
	if s := p.Stats(); s.Outstanding != 1 || s.Idle != 0 {
		t.Fatalf("after first Release: outstanding=%d idle=%d, want 1/0", s.Outstanding, s.Idle)
	}
	a.Release()
	if s := p.Stats(); s.Outstanding != 0 || s.Idle != 1 {
		t.Fatalf("after final Release: outstanding=%d idle=%d, want 0/1", s.Outstanding, s.Idle)
	}
}

// TestArenaGrowAndOverflow exercises mid-request growth past the slab
// (buddy-backed) and past the whole region (heap fallback), and checks
// the blocks return to the buddy on Release.
func TestArenaGrowAndOverflow(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 16, SlabBytes: 1 << 12})
	a := p.Get()
	free0 := p.Stats().FreeBytes

	// Larger than the slab: takes a buddy block.
	big := a.Bytes(1 << 13)
	if len(big) != 1<<13 {
		t.Fatalf("grow alloc len = %d", len(big))
	}
	s := p.Stats()
	if s.Grows != 1 {
		t.Fatalf("grows = %d, want 1", s.Grows)
	}
	if s.FreeBytes >= free0 {
		t.Fatalf("free bytes did not drop on grow: %d -> %d", free0, s.FreeBytes)
	}

	// Larger than the region: heap fallback, counted as overflow.
	huge := a.Bytes(1 << 17)
	if len(huge) != 1<<17 || !Aligned8(huge) {
		t.Fatalf("overflow alloc len=%d aligned=%v", len(huge), Aligned8(huge))
	}
	if got := p.Stats().Overflows; got != 1 {
		t.Fatalf("overflows = %d, want 1", got)
	}

	a.Release()
	if got := p.Stats().FreeBytes; got != free0 {
		t.Fatalf("free bytes after Release = %d, want %d (buddy blocks not returned)", got, free0)
	}
}

// TestPoolTrim returns idle slabs to the buddy region and verifies full
// coalescing when everything is trimmed.
func TestPoolTrim(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 16, SlabBytes: 1 << 12})
	var arenas []*Arena
	for i := 0; i < 4; i++ {
		arenas = append(arenas, p.Get())
	}
	for _, a := range arenas {
		a.Release()
	}
	if s := p.Stats(); s.Idle != 4 {
		t.Fatalf("idle = %d, want 4", s.Idle)
	}
	if n := p.Trim(-1); n != 4 {
		t.Fatalf("trimmed %d, want 4", n)
	}
	if got := p.Stats().FreeBytes; got != 1<<16 {
		t.Fatalf("free bytes after full trim = %d, want %d", got, 1<<16)
	}
}

// TestPoolConcurrent hammers Get/alloc/Retain/Release from many
// goroutines; run under -race this is the concurrency regression test,
// and the final stats assert no arena leaked.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool(Config{RegionBytes: 1 << 20, SlabBytes: 1 << 13})
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := p.Get()
				xs := a.Float64s(64 + (seed+i)%256)
				for j := range xs {
					xs[j] = float64(j)
				}
				if i%3 == 0 {
					// Simulate a detached pass holding the arena briefly.
					a.Retain()
					go func() {
						_ = a.Int32s(16)
						a.Release()
					}()
				}
				a.Release()
			}
		}(w)
	}
	wg.Wait()
	// Detached releases may still be in flight; drain them.
	for i := 0; i < 200 && p.Stats().Outstanding > 0; i++ {
		time.Sleep(time.Millisecond)
	}
	s := p.Stats()
	if s.Outstanding != 0 {
		t.Fatalf("leak: %d arenas still outstanding", s.Outstanding)
	}
	if s.Gets != workers*iters {
		t.Fatalf("gets = %d, want %d", s.Gets, workers*iters)
	}
	if s.Gets != s.Releases {
		t.Fatalf("gets=%d releases=%d, want equal", s.Gets, s.Releases)
	}
}

func TestViews(t *testing.T) {
	p := NewPool(Config{})
	a := p.Get()
	defer a.Release()

	f := a.Float64s(8)
	for i := range f {
		f[i] = float64(i) * 1.5
	}
	// The float view and the raw bytes share memory.
	b := a.Bytes(32)
	i32 := ViewInt32s(b)
	if len(i32) != 8 {
		t.Fatalf("int32 view len = %d", len(i32))
	}
	i32[7] = -5
	if got := ViewInt32s(b)[7]; got != -5 {
		t.Fatalf("view not aliased: %d", got)
	}
	u := ViewUint64s(a.Bytes(16))
	if len(u) != 2 {
		t.Fatalf("uint64 view len = %d", len(u))
	}
}

func TestViewMisalignedPanics(t *testing.T) {
	raw := newBuddyRegion(64)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned view did not panic")
		}
	}()
	_ = ViewFloat64s(raw[4:20])
}

// TestRowsGrowth checks the reusable header array grows and is reused
// without retaining stale data ownership semantics the callers rely on.
func TestRowsGrowth(t *testing.T) {
	p := NewPool(Config{})
	a := p.Get()
	r1 := a.Rows(100)
	if len(r1) != 100 {
		t.Fatalf("rows len = %d", len(r1))
	}
	r2 := a.Rows(3)
	r2[0] = []float64{1}
	a.Release()

	// After recycle the header storage is reused from the start.
	a2 := p.Get()
	r3 := a2.Rows(2)
	if len(r3) != 2 {
		t.Fatalf("rows len after recycle = %d", len(r3))
	}
	a2.Release()
}
