package arena

import "testing"

// TestBuddySplitMerge allocates down through the orders and frees back
// up, asserting the region coalesces to a single max-order block.
func TestBuddySplitMerge(t *testing.T) {
	b := newBuddy(1<<16, 1<<10)
	if got := b.freeBytes(); got != 1<<16 {
		t.Fatalf("fresh region free bytes = %d, want %d", got, 1<<16)
	}

	// A min-order allocation splits the root block all the way down:
	// one free block remains at every intermediate order.
	_, off0, ok := b.alloc(1 << 10)
	if !ok {
		t.Fatal("alloc failed on fresh region")
	}
	if got, want := b.freeBytes(), 1<<16-1<<10; got != want {
		t.Fatalf("free bytes after split = %d, want %d", got, want)
	}

	// A second small allocation should take the buddy produced by the
	// split, not split a fresh large block.
	_, off1, ok := b.alloc(1 << 10)
	if !ok {
		t.Fatal("second alloc failed")
	}
	if off0^(1<<10) != off1 {
		t.Fatalf("second alloc at %d, want buddy of %d", off1, off0)
	}

	// Freeing both merges back to the full region.
	b.freeBlock(off0)
	b.freeBlock(off1)
	if got := b.freeBytes(); got != 1<<16 {
		t.Fatalf("free bytes after merge = %d, want %d", got, 1<<16)
	}
	if len(b.free[b.maxOrder-b.minOrder]) != 1 {
		t.Fatalf("region did not coalesce to a single max-order block")
	}
}

// TestBuddyExhaustion fills the region with min-order blocks, verifies
// further allocation fails cleanly, then frees everything and checks
// full coalescing.
func TestBuddyExhaustion(t *testing.T) {
	b := newBuddy(1<<14, 1<<10)
	var offs []int
	for {
		_, off, ok := b.alloc(1 << 10)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) != 16 {
		t.Fatalf("allocated %d min blocks, want 16", len(offs))
	}
	if _, _, ok := b.alloc(1); ok {
		t.Fatal("alloc succeeded on exhausted region")
	}
	// Free in an interleaved order to exercise merges at several levels.
	for _, i := range []int{0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15} {
		b.freeBlock(offs[i])
	}
	if got := b.freeBytes(); got != 1<<14 {
		t.Fatalf("free bytes after freeing all = %d, want %d", got, 1<<14)
	}
	if len(b.free[b.maxOrder-b.minOrder]) != 1 {
		t.Fatal("region did not coalesce after full free")
	}
}

// TestBuddyOversize asks for more than the region and expects a clean
// failure, plus success for an exact-region-size request.
func TestBuddyOversize(t *testing.T) {
	b := newBuddy(1<<14, 1<<10)
	if _, _, ok := b.alloc(1<<14 + 1); ok {
		t.Fatal("oversize alloc succeeded")
	}
	blk, off, ok := b.alloc(1 << 14)
	if !ok || len(blk) != 1<<14 {
		t.Fatalf("whole-region alloc: ok=%v len=%d", ok, len(blk))
	}
	b.freeBlock(off)
	if got := b.freeBytes(); got != 1<<14 {
		t.Fatalf("free bytes = %d, want %d", got, 1<<14)
	}
}

// TestBuddyDoubleFree pins the panic on freeing a block twice.
func TestBuddyDoubleFree(t *testing.T) {
	b := newBuddy(1<<14, 1<<10)
	_, off, ok := b.alloc(1 << 10)
	if !ok {
		t.Fatal("alloc failed")
	}
	b.freeBlock(off)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.freeBlock(off)
}

// TestBuddyAlignment checks every handed-out block is 8-aligned, which
// the typed views require.
func TestBuddyAlignment(t *testing.T) {
	b := newBuddy(1<<14, 1<<10)
	for {
		blk, _, ok := b.alloc(1 << 10)
		if !ok {
			break
		}
		if !Aligned8(blk) {
			t.Fatal("buddy block not 8-aligned")
		}
	}
}
