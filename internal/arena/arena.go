// Package arena provides size-classed, pooled request arenas backed by
// a buddy-allocated slab region. A server request path that would
// otherwise allocate per request — decode buffers, RHS batches, factor
// values, response frames — instead Gets an Arena, bump-allocates
// everything it needs from the arena's resident slab, and Releases the
// arena back to the pool when the request completes. On the warm path
// (arena reused from the idle list, slab large enough) a request
// performs zero heap allocations.
//
// Lifetime: Pool.Get hands out an Arena with reference count 1. Work
// that outlives the requesting goroutine (a coalesced solve pass
// writing solutions after the submitting handler timed out) Retains the
// arena and Releases it when done; the arena returns to the pool when
// the count reaches zero. Releasing past zero panics, as does
// allocating from a released arena — both are programming errors the
// lifecycle tests pin.
//
// Memory returned by the allocation methods is uninitialized (it is
// recycled bump space) and is only valid until the arena's final
// Release; callers must not retain views across Release. The typed
// views (Float64s, Int32s) rely on the slab region's 8-byte alignment,
// which the buddy region and the bump pointer both maintain.
package arena

import (
	"sync"
	"sync/atomic"
)

// Config sizes a Pool. Zero values select the defaults.
type Config struct {
	// RegionBytes is the total buddy region backing all slabs (rounded up
	// to a power of two). Default 32 MiB.
	RegionBytes int
	// SlabBytes is the resident slab each arena keeps across reuse
	// (rounded up to a power of two). Default 1 MiB.
	SlabBytes int
	// MinBlock is the buddy split granularity (rounded up to a power of
	// two). Default 4 KiB.
	MinBlock int
}

func (c Config) withDefaults() Config {
	if c.RegionBytes <= 0 {
		c.RegionBytes = 32 << 20
	}
	if c.SlabBytes <= 0 {
		c.SlabBytes = 1 << 20
	}
	if c.MinBlock <= 0 {
		c.MinBlock = 4 << 10
	}
	if c.SlabBytes > c.RegionBytes {
		c.SlabBytes = c.RegionBytes
	}
	return c
}

// Stats is a point-in-time snapshot of pool activity, exposed by the
// server's /v1/stats endpoint and asserted by the leak check after the
// drain integration test (Outstanding must return to zero).
type Stats struct {
	Outstanding int    `json:"outstanding"` // arenas held by callers
	Idle        int    `json:"idle"`        // arenas parked in the pool
	Gets        uint64 `json:"gets"`
	Releases    uint64 `json:"releases"`   // final releases (arena returned)
	Grows       uint64 `json:"grows"`      // extra buddy blocks taken mid-request
	Overflows   uint64 `json:"overflows"`  // heap fallbacks (buddy exhausted or oversize)
	FreeBytes   int    `json:"free_bytes"` // buddy region bytes currently free
}

// Pool hands out request arenas. Safe for concurrent use.
type Pool struct {
	cfg Config

	mu          sync.Mutex
	buddy       *buddy
	idle        []*Arena
	outstanding int
	gets        uint64
	releases    uint64
	grows       uint64
	overflows   uint64
}

// NewPool builds a pool over a fresh buddy region.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	return &Pool{
		cfg:   cfg,
		buddy: newBuddy(cfg.RegionBytes, cfg.MinBlock),
	}
}

// Get returns an arena with reference count 1. The arena comes off the
// idle list when one is parked (the warm path — no allocation), or is
// built fresh with a slab carved from the buddy region.
func (p *Pool) Get() *Arena {
	p.mu.Lock()
	p.gets++
	p.outstanding++
	if n := len(p.idle); n > 0 {
		a := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		a.refs.Store(1)
		return a
	}
	slab, off, ok := p.buddy.alloc(p.cfg.SlabBytes)
	if !ok {
		// Region exhausted: a heap slab keeps the server serving; the
		// overflow counter makes the misconfiguration visible in stats.
		p.overflows++
		slab, off = newBuddyRegion(p.cfg.SlabBytes), -1
	}
	p.mu.Unlock()
	a := &Arena{pool: p, slab: slab, slabOff: off, cur: slab}
	a.refs.Store(1)
	return a
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Outstanding: p.outstanding,
		Idle:        len(p.idle),
		Gets:        p.gets,
		Releases:    p.releases,
		Grows:       p.grows,
		Overflows:   p.overflows,
		FreeBytes:   p.buddy.freeBytes(),
	}
}

// Trim releases the slabs of up to n idle arenas back to the buddy
// region (all idle arenas when n < 0). Reused by tests to exercise the
// buddy merge path; a server would call it on memory pressure.
func (p *Pool) Trim(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	trimmed := 0
	for (n < 0 || trimmed < n) && len(p.idle) > 0 {
		a := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		if a.slabOff >= 0 {
			p.buddy.freeBlock(a.slabOff)
		}
		trimmed++
	}
	return trimmed
}

// Arena is a bump allocator over pooled slab memory. Not safe for
// concurrent allocation; Retain/Release are safe from any goroutine.
type Arena struct {
	pool *Pool
	refs atomic.Int64

	// slab is the resident block kept across reuse; cur is the block the
	// bump pointer currently walks (the slab, or the latest overflow
	// block). off is 8-aligned at all times.
	slab    []byte
	slabOff int
	cur     []byte
	off     int

	// extra holds blocks acquired mid-request beyond the slab; buddy
	// blocks carry their region offset, heap fallbacks carry -1. All are
	// returned or dropped on final Release.
	extra     [][]byte
	extraOffs []int

	// rows is a reusable header array for [][]float64 batch views, so
	// building a k-vector batch doesn't allocate header storage per
	// request. Grown on demand, retained across reuse.
	rows     [][]float64
	rowsUsed int
}

// Retain increments the reference count for work that outlives the
// goroutine that called Get.
func (a *Arena) Retain() {
	if a.refs.Add(1) <= 1 {
		panic("arena: Retain after final Release")
	}
}

// Release decrements the reference count; at zero the arena's extra
// blocks return to the buddy region and the arena parks on the pool's
// idle list. Releasing more times than Get+Retain panics.
func (a *Arena) Release() {
	n := a.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("arena: double Release")
	}
	p := a.pool
	p.mu.Lock()
	for i, off := range a.extraOffs {
		if off >= 0 {
			p.buddy.freeBlock(off)
		}
		a.extra[i] = nil
	}
	a.extra = a.extra[:0]
	a.extraOffs = a.extraOffs[:0]
	a.cur = a.slab
	a.off = 0
	a.rowsUsed = 0
	p.outstanding--
	p.releases++
	p.idle = append(p.idle, a)
	p.mu.Unlock()
}

// Bytes returns an 8-aligned, uninitialized slice of n bytes valid
// until the arena's final Release.
func (a *Arena) Bytes(n int) []byte {
	if a.refs.Load() <= 0 {
		panic("arena: allocation from released arena")
	}
	need := (n + 7) &^ 7
	if a.off+need > len(a.cur) {
		a.grow(need)
	}
	b := a.cur[a.off : a.off+n : a.off+n]
	a.off += need
	return b
}

// grow acquires a fresh block of at least need bytes (at least a slab)
// and makes it the current bump block. The remainder of the previous
// block is abandoned until Release — bump allocators trade that slack
// for never scanning a free list on the hot path.
func (a *Arena) grow(need int) {
	size := a.pool.cfg.SlabBytes
	for size < need {
		size *= 2
	}
	p := a.pool
	p.mu.Lock()
	block, off, ok := p.buddy.alloc(size)
	if ok {
		p.grows++
	} else {
		p.overflows++
		block, off = newBuddyRegion(size), -1
	}
	p.mu.Unlock()
	a.extra = append(a.extra, block)
	a.extraOffs = append(a.extraOffs, off)
	a.cur = block
	a.off = 0
}

// Float64s returns an uninitialized []float64 of length n backed by
// arena memory.
func (a *Arena) Float64s(n int) []float64 {
	return viewFloat64s(a.Bytes(n * 8))
}

// Int32s returns an uninitialized []int32 of length n backed by arena
// memory.
func (a *Arena) Int32s(n int) []int32 {
	return viewInt32s(a.Bytes(n * 4))
}

// Rows returns a [][]float64 header array of length k from the arena's
// reusable header storage. The headers are stale from previous use;
// callers assign every element. Headers live in ordinary Go memory (not
// the byte slab) so the garbage collector sees the row pointers.
func (a *Arena) Rows(k int) [][]float64 {
	if a.refs.Load() <= 0 {
		panic("arena: allocation from released arena")
	}
	if a.rowsUsed+k > len(a.rows) {
		grown := make([][]float64, a.rowsUsed+k+16)
		copy(grown, a.rows[:a.rowsUsed])
		a.rows = grown
	}
	r := a.rows[a.rowsUsed : a.rowsUsed+k : a.rowsUsed+k]
	a.rowsUsed += k
	return r
}
