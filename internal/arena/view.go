package arena

import (
	"fmt"
	"unsafe"
)

// hostLittleEndian is computed once at init. The zero-copy typed views
// reinterpret little-endian wire bytes in place, which is only correct
// on a little-endian host; big-endian hosts take the element-wise
// decode fallback in the frame codec.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostLittleEndian reports whether in-place typed views over
// little-endian wire bytes are valid on this host.
func HostLittleEndian() bool { return hostLittleEndian }

// Aligned8 reports whether the slice's backing array starts on an
// 8-byte boundary (vacuously true when empty).
func Aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// viewFloat64s reinterprets an 8-aligned byte slice as float64s without
// copying. len(b) must be a multiple of 8.
func viewFloat64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	checkView(b, 8)
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// viewInt32s reinterprets a 4-aligned byte slice as int32s without
// copying. len(b) must be a multiple of 4.
func viewInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	checkView(b, 4)
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// viewUint64s reinterprets an 8-aligned byte slice as uint64s without
// copying. len(b) must be a multiple of 8.
func viewUint64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	checkView(b, 8)
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// ViewFloat64s is the exported zero-copy float64 view, used by the
// frame codec over validated frame sections. Callers must have checked
// alignment and host endianness; misuse panics rather than corrupting.
func ViewFloat64s(b []byte) []float64 { return viewFloat64s(b) }

// ViewInt32s is the exported zero-copy int32 view.
func ViewInt32s(b []byte) []int32 { return viewInt32s(b) }

// ViewUint64s is the exported zero-copy uint64 view.
func ViewUint64s(b []byte) []uint64 { return viewUint64s(b) }

func checkView(b []byte, elem int) {
	p := uintptr(unsafe.Pointer(&b[0]))
	if p%uintptr(elem) != 0 || len(b)%elem != 0 {
		panic(fmt.Sprintf("arena: misaligned %d-byte view (addr %%%d=%d, len %d)",
			elem, elem, p%uintptr(elem), len(b)))
	}
}
