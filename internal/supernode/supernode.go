// Package supernode detects runs of consecutive loop iterations whose
// dependence patterns are identical, nested, or chained, and fuses each
// run into a single scheduling unit — a supernode. Fusion attacks the
// per-iteration overhead the paper's cost accounting (§5.1.2) charges to
// every scheduled unit: body dispatch, dependence checks, and a share of
// each wavefront barrier. Merging w rows into one node divides that
// overhead by w and compresses the level structure (a chain of w rows
// that spanned w wavefronts becomes one unit in one), so the executor
// pays fewer, coarser synchronization steps.
//
// Detection runs in iteration space over the inspector's dependence
// structure (wavefront.Deps), so it is direction-agnostic: forward solves
// use row numbers directly and backward solves use the reflected
// numbering of wavefront.FromUpper. Three patterns fuse row i+1 into the
// node ending at row i:
//
//   - identical: i+1's dependence list equals the node's first row's —
//     the rows form a dense blocklet sharing one packed column map, which
//     the executor can run with an unrolled multi-row kernel;
//   - chained: i+1 depends on i itself, so the pair is sequential no
//     matter how it is scheduled and fusing it costs no parallelism that
//     existed (this is the level-compression case: mesh ILU factors are
//     long chains of such rows);
//   - nested: i+1's external dependences (those reaching before the node)
//     are a subset or superset of the node's own, so the fused unit's
//     dependence set stays small and the rows likely share cache lines.
//
// A Partition is a pure function of the dependence structure and the
// width cap, never of numeric values, which lets plan caches share it and
// lets Resplice repair it under structural drift by re-detecting only
// around the edited rows.
package supernode

import (
	"sort"

	"doconsider/internal/wavefront"
)

// DefaultMaxWidth caps supernode width when Config.MaxWidth is zero.
// Eight rows is wide enough to amortize dispatch and compress mesh-factor
// chains substantially, while keeping the serialization a node imposes on
// its rows below the scale the planner's level-sum pricing works at.
const DefaultMaxWidth = 8

// Config bounds detection.
type Config struct {
	// MaxWidth caps the number of rows fused into one node; 0 means
	// DefaultMaxWidth.
	MaxWidth int
}

func (c Config) maxWidth() int {
	if c.MaxWidth > 0 {
		return c.MaxWidth
	}
	return DefaultMaxWidth
}

// Partition is a supernode decomposition of an iteration space: node u
// covers iterations RowPtr[u] .. RowPtr[u+1]-1. Nodes cover the space
// exactly, in order, so the partition is fully described by its
// boundaries. A Partition is immutable once built.
type Partition struct {
	N        int // iterations covered (RowPtr[len(RowPtr)-1])
	MaxWidth int // the width cap detection ran with; Resplice reuses it
	RowPtr   []int32
	// Uniform marks nodes of width >= 2 whose rows all carry identical
	// dependence lists — the blocklet case a multi-row unrolled kernel
	// can execute over one shared column map.
	Uniform []bool
}

// NumNodes returns the number of supernodes.
func (p *Partition) NumNodes() int { return len(p.RowPtr) - 1 }

// Rows returns the half-open iteration range [lo, hi) of node u.
func (p *Partition) Rows(u int) (lo, hi int32) { return p.RowPtr[u], p.RowPtr[u+1] }

// Width returns the number of rows fused into node u.
func (p *Partition) Width(u int) int { return int(p.RowPtr[u+1] - p.RowPtr[u]) }

// NodeOf returns the iteration→node map.
func (p *Partition) NodeOf() []int32 {
	nodeOf := make([]int32, p.N)
	for u := 0; u < p.NumNodes(); u++ {
		for r := p.RowPtr[u]; r < p.RowPtr[u+1]; r++ {
			nodeOf[r] = int32(u)
		}
	}
	return nodeOf
}

// Stats summarizes a partition for planner pricing and serving stats.
type Stats struct {
	Rows       int     `json:"rows"`
	Nodes      int     `json:"nodes"`
	Singletons int     `json:"singletons"` // width-1 nodes
	Blocklets  int     `json:"blocklets"`  // uniform nodes (width >= 2)
	FusedRows  int     `json:"fused_rows"` // rows inside nodes of width >= 2
	MaxWidth   int     `json:"max_width"`
	MeanWidth  float64 `json:"mean_width"` // Rows / Nodes
	FusedFrac  float64 `json:"fused_frac"` // FusedRows / Rows
}

// Stats measures the partition.
func (p *Partition) Stats() Stats {
	s := Stats{Rows: p.N, Nodes: p.NumNodes()}
	for u := 0; u < s.Nodes; u++ {
		w := p.Width(u)
		if w > s.MaxWidth {
			s.MaxWidth = w
		}
		if w == 1 {
			s.Singletons++
			continue
		}
		s.FusedRows += w
		if p.Uniform[u] {
			s.Blocklets++
		}
	}
	if s.Nodes > 0 {
		s.MeanWidth = float64(s.Rows) / float64(s.Nodes)
	}
	if s.Rows > 0 {
		s.FusedFrac = float64(s.FusedRows) / float64(s.Rows)
	}
	return s
}

// Detect scans the iteration space of deps in order and fuses runs of
// consecutive iterations under the package's three rules, bounded by the
// width cap. The result depends only on (deps, cfg) — detection is
// deterministic, which Resplice relies on to splice a drifted partition
// instead of rescanning it.
func Detect(deps *wavefront.Deps, cfg Config) *Partition {
	max := cfg.maxWidth()
	p := &Partition{N: deps.N, MaxWidth: max}
	if deps.N == 0 {
		p.RowPtr = []int32{0}
		p.Uniform = []bool{}
		return p
	}
	s := newScanner(deps, max)
	s.open(0)
	for i := int32(1); i < int32(deps.N); i++ {
		if !s.step(i) {
			s.flush()
			s.open(i)
		}
	}
	s.flush()
	p.RowPtr, p.Uniform = s.rowPtr, s.uniform
	return p
}

// Compress builds the unit-level dependence structure of a partition:
// node u depends on node v when any row of u depends on a row of v.
// Intra-node dependences vanish — they are honored by the kernel's
// in-order row sweep inside the node — and duplicate edges are removed.
// Because nodes cover ascending iteration ranges and every row dependence
// points backward, every unit dependence points backward too, so the
// result feeds wavefront.Compute directly for the compressed levels.
func (p *Partition) Compress(deps *wavefront.Deps) *wavefront.Deps {
	nodes := p.NumNodes()
	nodeOf := p.NodeOf()
	out := &wavefront.Deps{N: nodes, Ptr: make([]int32, nodes+1)}
	seen := make([]int32, nodes)
	for i := range seen {
		seen[i] = -1
	}
	idx := make([]int32, 0, deps.Edges())
	for u := 0; u < nodes; u++ {
		for r := p.RowPtr[u]; r < p.RowPtr[u+1]; r++ {
			for _, t := range deps.On(int(r)) {
				v := nodeOf[t]
				if int(v) != u && seen[v] != int32(u) {
					seen[v] = int32(u)
					idx = append(idx, v)
				}
			}
		}
		out.Ptr[u+1] = int32(len(idx))
	}
	out.Idx = idx
	return out
}

// Resplice repairs a partition after structural drift: deps is the new
// dependence structure and changed lists (sorted ascending, iteration
// space) every iteration whose dependence list differs from the structure
// old was detected on. Nodes away from the edits are kept; around each
// edited cluster, detection re-runs from the enclosing node's start until
// a produced boundary coincides with an old boundary again, at which
// point the remaining old nodes replay verbatim. Because detection
// decisions are local to a node — they depend only on the node's start
// and its rows' dependence lists, never on the wavefront numbers — the
// result is identical to Detect(deps, Config{MaxWidth: old.MaxWidth}).
func Resplice(old *Partition, deps *wavefront.Deps, changed []int32) *Partition {
	cfg := Config{MaxWidth: old.MaxWidth}
	if deps.N != old.N {
		// Drift that changes the order is outside the splice contract.
		return Detect(deps, cfg)
	}
	changed = normalizeChanged(changed, old.N)
	if len(changed) == 0 || deps.N == 0 {
		return old
	}
	max := cfg.maxWidth()
	s := newScanner(deps, max)
	nodes := old.NumNodes()
	ci := 0
	ou := 0
	for ou < nodes {
		lo, hi := old.RowPtr[ou], old.RowPtr[ou+1]
		for ci < len(changed) && changed[ci] < lo {
			ci++
		}
		if ci == len(changed) || changed[ci] > hi {
			// Node untouched by the remaining edits — including the row at
			// its end boundary, whose (unchanged) pattern is what decided
			// the flush: replay it.
			s.copyNode(hi, old.Uniform[ou])
			ou++
			continue
		}
		// Edited row inside this node: re-detect from its start until a
		// fresh boundary lands on an old one past the consumed edits.
		s.open(lo)
		pos := lo + 1
		resynced := false
		for pos < int32(old.N) {
			if s.step(pos) {
				pos++
				continue
			}
			s.flush()
			for ci < len(changed) && changed[ci] < pos {
				ci++
			}
			for ou < nodes && old.RowPtr[ou+1] <= pos {
				ou++
			}
			if ou < nodes && old.RowPtr[ou] == pos {
				resynced = true
				break
			}
			s.open(pos)
			pos++
		}
		if !resynced {
			s.flush()
			ou = nodes
		}
	}
	return &Partition{N: old.N, MaxWidth: max, RowPtr: s.rowPtr, Uniform: s.uniform}
}

// normalizeChanged sorts (when needed), deduplicates and bounds the
// changed-iteration list without modifying the caller's slice.
func normalizeChanged(changed []int32, n int) []int32 {
	sorted := true
	for i := 1; i < len(changed); i++ {
		if changed[i] < changed[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		cp := make([]int32, len(changed))
		copy(cp, changed)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		changed = cp
	}
	out := changed[:0:0]
	var prev int32 = -1
	for _, r := range changed {
		if r < 0 || int(r) >= n || r == prev {
			continue
		}
		out = append(out, r)
		prev = r
	}
	return out
}

// scanner is the incremental detector shared by Detect and Resplice. A
// node is grown one row at a time; flush records its boundary and
// blocklet flag.
type scanner struct {
	deps *wavefront.Deps
	max  int

	rowPtr  []int32
	uniform []bool

	start int32 // current node's first iteration
	width int
	uni   bool    // all rows so far share the first row's dependence list
	ext   []int32 // ascending union of the node rows' external deps (< start)

	scratch []int32 // candidate's external deps, ascending
	mergeTo []int32 // spare buffer swapped with ext on union merges
}

func newScanner(deps *wavefront.Deps, max int) *scanner {
	return &scanner{deps: deps, max: max, rowPtr: make([]int32, 1, 16)}
}

// open starts a new node at iteration i; the previous node must have been
// flushed.
func (s *scanner) open(i int32) {
	s.start, s.width, s.uni = i, 1, true
	s.ext = extAscending(s.deps.On(int(i)), i, s.ext[:0])
}

// flush records the current node's end boundary and blocklet flag.
func (s *scanner) flush() {
	s.rowPtr = append(s.rowPtr, s.start+int32(s.width))
	s.uniform = append(s.uniform, s.uni && s.width > 1)
}

// copyNode replays a node ending at boundary end with a known flag; used
// by Resplice for stretches untouched by drift.
func (s *scanner) copyNode(end int32, uniform bool) {
	s.rowPtr = append(s.rowPtr, end)
	s.uniform = append(s.uniform, uniform)
}

// step examines iteration i (which must be start+width) and reports
// whether it was absorbed into the current node; false means the caller
// must flush and open a new node at i.
func (s *scanner) step(i int32) bool {
	if s.width >= s.max {
		return false
	}
	cand := s.deps.On(int(i))
	// identical: the blocklet rule. The first row's dependences all
	// precede the node, so list equality implies the candidate has no
	// intra-node dependence either.
	if s.uni && equalLists(cand, s.deps.On(int(s.start))) {
		s.width++
		return true
	}
	ce := extAscending(cand, s.start, s.scratch[:0])
	s.scratch = ce
	// chained: i depends on i-1. i-1 is the largest value a backward
	// dependence of i can take, so if present it sits at whichever end of
	// the (value-ordered) list holds the maximum.
	chained := len(cand) > 0 && (cand[0] == i-1 || cand[len(cand)-1] == i-1)
	if !chained {
		// nested: the candidate must genuinely share structure with the
		// node — reference an in-node row, or carry external deps that
		// nest with the node's. An independent row fuses only with
		// identical rows (handled above), never by the vacuous
		// empty-subset reading of "nested".
		hasIntra := len(cand) != len(ce)
		nested := (subsetAsc(ce, s.ext) && (hasIntra || len(ce) > 0)) ||
			(len(s.ext) > 0 && subsetAsc(s.ext, ce))
		if !nested {
			return false
		}
	}
	s.uni = false
	s.width++
	s.mergeExt(ce)
	return true
}

// mergeExt unions the candidate's external deps into the node's, keeping
// the ascending order. Buffers are swapped, not reallocated, so a long
// scan settles into two reused slices.
func (s *scanner) mergeExt(ce []int32) {
	if len(ce) == 0 {
		return
	}
	buf := s.mergeTo[:0]
	i, j := 0, 0
	for i < len(s.ext) && j < len(ce) {
		a, b := s.ext[i], ce[j]
		switch {
		case a < b:
			buf = append(buf, a)
			i++
		case a > b:
			buf = append(buf, b)
			j++
		default:
			buf = append(buf, a)
			i++
			j++
		}
	}
	buf = append(buf, s.ext[i:]...)
	buf = append(buf, ce[j:]...)
	s.mergeTo = s.ext
	s.ext = buf
}

// extAscending appends the entries of cand smaller than start to out in
// ascending order. Dependence lists are value-ordered by construction
// (FromLower ascending, FromUpper descending), so a reversed walk covers
// the descending case without sorting.
func extAscending(cand []int32, start int32, out []int32) []int32 {
	if len(cand) >= 2 && cand[0] > cand[len(cand)-1] {
		for j := len(cand) - 1; j >= 0; j-- {
			if cand[j] < start {
				out = append(out, cand[j])
			}
		}
		return out
	}
	for _, t := range cand {
		if t < start {
			out = append(out, t)
		}
	}
	return out
}

// equalLists reports element-wise equality. Within one dependence
// structure the list order is a pure function of the value set, so this
// is set equality for lists from the same Deps.
func equalLists(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// subsetAsc reports whether ascending list a is a subset of ascending
// list b.
func subsetAsc(a, b []int32) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}
