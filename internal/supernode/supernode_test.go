package supernode

import (
	"math/rand"
	"testing"

	"doconsider/internal/wavefront"
)

// adj builds a Deps whose lists are ascending, matching the value-ordered
// invariant of the real constructors (FromLower/FromUpper).
func adj(lists ...[]int32) *wavefront.Deps {
	return wavefront.FromAdjacency(lists)
}

func widths(p *Partition) []int {
	out := make([]int, p.NumNodes())
	for u := range out {
		out[u] = p.Width(u)
	}
	return out
}

func TestDetectTable(t *testing.T) {
	cases := []struct {
		name    string
		deps    *wavefront.Deps
		cfg     Config
		widths  []int
		uniform []bool
	}{
		{
			name: "identical-blocklet",
			// Rows 3..5 all depend on exactly {0, 1}: a uniform blocklet.
			// Row 2 (independent) separates them from the {0,1} chain node,
			// and row 3 opens a fresh node because its external deps
			// conflict with nothing yet nest with nothing either.
			deps: adj(nil, []int32{0}, nil,
				[]int32{0, 1}, []int32{0, 1}, []int32{0, 1}),
			widths:  []int{2, 1, 3},
			uniform: []bool{false, false, true},
		},
		{
			name: "chain",
			// Pure chain: each row depends on its predecessor; everything
			// fuses up to the width cap.
			deps:    adj(nil, []int32{0}, []int32{1}, []int32{2}, []int32{3}),
			widths:  []int{5},
			uniform: []bool{false},
		},
		{
			name: "chain-width-cap",
			deps: adj(nil, []int32{0}, []int32{1}, []int32{2}, []int32{3},
				[]int32{4}, []int32{5}),
			cfg:     Config{MaxWidth: 3},
			widths:  []int{3, 3, 1},
			uniform: []bool{false, false, false},
		},
		{
			name: "nested",
			// Node opens at row 3 with external deps {0, 1}; row 4's {0}
			// is a subset and row 5's {0, 1, 2} a superset — both fuse
			// without a chain edge.
			deps: adj(nil, []int32{0}, nil,
				[]int32{0, 1}, []int32{0}, []int32{0, 1, 2}),
			widths:  []int{2, 1, 3},
			uniform: []bool{false, false, false},
		},
		{
			name: "non-fusable",
			// Rows 3 and 4 carry disjoint external deps and no chain:
			// they must stay separate nodes. Row 2's independence also
			// separates it from the chain node before it.
			deps:    adj(nil, []int32{0}, nil, []int32{0}, []int32{1}),
			widths:  []int{2, 1, 1, 1},
			uniform: []bool{false, false, false, false},
		},
		{
			name: "identical-then-divergent",
			// A blocklet ends when a row's pattern diverges beyond
			// nesting: row 5 references {2}, disjoint from {0, 1}.
			deps: adj(nil, []int32{0}, nil,
				[]int32{0, 1}, []int32{0, 1}, []int32{2}),
			widths:  []int{2, 1, 2, 1},
			uniform: []bool{false, false, true, false},
		},
		{
			name:    "empty",
			deps:    adj(),
			widths:  []int{},
			uniform: []bool{},
		},
		{
			name:    "singleton",
			deps:    adj([]int32(nil)),
			widths:  []int{1},
			uniform: []bool{false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Detect(tc.deps, tc.cfg)
			if p.N != tc.deps.N {
				t.Fatalf("N = %d, want %d", p.N, tc.deps.N)
			}
			got := widths(p)
			if len(got) != len(tc.widths) {
				t.Fatalf("widths = %v, want %v", got, tc.widths)
			}
			for u := range got {
				if got[u] != tc.widths[u] {
					t.Fatalf("widths = %v, want %v", got, tc.widths)
				}
				if p.Uniform[u] != tc.uniform[u] {
					t.Fatalf("uniform = %v, want %v", p.Uniform, tc.uniform)
				}
			}
		})
	}
}

func TestPartitionInvariants(t *testing.T) {
	deps := randomDeps(rand.New(rand.NewSource(7)), 400, 3)
	p := Detect(deps, Config{})
	if p.RowPtr[0] != 0 || int(p.RowPtr[p.NumNodes()]) != deps.N {
		t.Fatalf("partition does not cover the space: %v", p.RowPtr[:2])
	}
	for u := 0; u < p.NumNodes(); u++ {
		if p.Width(u) < 1 || p.Width(u) > p.MaxWidth {
			t.Fatalf("node %d has width %d (cap %d)", u, p.Width(u), p.MaxWidth)
		}
		if p.Uniform[u] && p.Width(u) < 2 {
			t.Fatalf("singleton node %d marked uniform", u)
		}
	}
	st := p.Stats()
	if st.Rows != deps.N || st.Nodes != p.NumNodes() {
		t.Fatalf("stats rows/nodes = %d/%d, want %d/%d", st.Rows, st.Nodes, deps.N, p.NumNodes())
	}
	if st.FusedRows != st.Rows-st.Singletons {
		t.Fatalf("stats fused accounting inconsistent: %+v", st)
	}
}

func TestCompress(t *testing.T) {
	// Nodes: A = {0,1} (chain), B = {2} (independent), C = {3,4}
	// (identical blocklet over {0,1}).
	deps := adj(nil, []int32{0}, nil, []int32{0, 1}, []int32{0, 1})
	p := Detect(deps, Config{})
	if got := widths(p); len(got) != 3 || got[0] != 2 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("widths = %v, want [2 1 2]", got)
	}
	unit := p.Compress(deps)
	if unit.N != 3 {
		t.Fatalf("unit N = %d, want 3", unit.N)
	}
	if err := unit.CheckBackward(); err != nil {
		t.Fatal(err)
	}
	if got := unit.On(0); len(got) != 0 {
		t.Fatalf("unit 0 deps = %v, want none", got)
	}
	if got := unit.On(1); len(got) != 0 {
		t.Fatalf("unit 1 deps = %v, want none", got)
	}
	// C references rows 0 and 1 from both its rows: one deduplicated
	// unit edge to A.
	if got := unit.On(2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("unit 2 deps = %v, want [0]", got)
	}
	if unit.Edges() != 1 {
		t.Fatalf("unit edges = %d, want 1 (deduplicated)", unit.Edges())
	}
	// Compressed levels: rows span 3 levels (0, 1, 2), units span 2.
	uwf, err := wavefront.Compute(unit)
	if err != nil {
		t.Fatal(err)
	}
	if nw := wavefront.NumWavefronts(uwf); nw != 2 {
		t.Fatalf("unit levels = %d, want 2", nw)
	}
}

// randomDeps builds a backward dependence structure with ascending lists,
// mixing chains, repeated patterns and scattered references so detection
// exercises every rule.
func randomDeps(rng *rand.Rand, n, maxDeps int) *wavefront.Deps {
	lists := make([][]int32, n)
	for i := 1; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // chain
			lists[i] = []int32{int32(i - 1)}
		case 1: // copy the previous row's pattern when possible
			if len(lists[i-1]) > 0 && lists[i-1][len(lists[i-1])-1] < int32(i-1) {
				lists[i] = append([]int32(nil), lists[i-1]...)
			}
		case 2: // scattered backward references
			k := rng.Intn(maxDeps + 1)
			seen := map[int32]bool{}
			for j := 0; j < k; j++ {
				t := int32(rng.Intn(i))
				if !seen[t] {
					seen[t] = true
					lists[i] = append(lists[i], t)
				}
			}
			sortAsc(lists[i])
		default: // independent
		}
	}
	return wavefront.FromAdjacency(lists)
}

func sortAsc(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestRespliceMatchesDetect pins the splice contract: repairing around
// edited rows yields exactly the partition a fresh detection would.
func TestRespliceMatchesDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 20 + rng.Intn(180)
		old := randomDeps(rng, n, 3)
		oldPart := Detect(old, Config{})

		// Drift: rewrite a few rows' dependence lists.
		lists := make([][]int32, n)
		for i := 0; i < n; i++ {
			lists[i] = append([]int32(nil), old.On(i)...)
		}
		edits := 1 + rng.Intn(4)
		changed := make([]int32, 0, edits)
		for e := 0; e < edits; e++ {
			i := 1 + rng.Intn(n-1)
			k := rng.Intn(3)
			nl := []int32(nil)
			seen := map[int32]bool{}
			for j := 0; j < k; j++ {
				tgt := int32(rng.Intn(i))
				if !seen[tgt] {
					seen[tgt] = true
					nl = append(nl, tgt)
				}
			}
			sortAsc(nl)
			if !equalLists(nl, lists[i]) {
				lists[i] = nl
				changed = append(changed, int32(i))
			}
		}
		if len(changed) == 0 {
			continue
		}
		newDeps := wavefront.FromAdjacency(lists)
		want := Detect(newDeps, Config{})
		got := Resplice(oldPart, newDeps, changed)
		if !equalLists(got.RowPtr, want.RowPtr) {
			t.Fatalf("trial %d: resplice boundaries %v != detect %v (changed %v)",
				trial, got.RowPtr, want.RowPtr, changed)
		}
		for u := range want.Uniform {
			if got.Uniform[u] != want.Uniform[u] {
				t.Fatalf("trial %d: resplice uniform flags differ at node %d", trial, u)
			}
		}
	}
}

// TestRespliceNoChange returns the original partition untouched.
func TestRespliceNoChange(t *testing.T) {
	deps := adj(nil, []int32{0}, []int32{1})
	p := Detect(deps, Config{})
	if got := Resplice(p, deps, nil); got != p {
		t.Fatal("resplice with no edits should return the partition unchanged")
	}
}
