package executor

import (
	"math/rand"
	"testing"
	"time"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

func TestRunSelfExecutingTimed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	deps := randomDAG(rng, 500, 3)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 4)
	body, check := depChecker(t, deps)
	m, bd := RunSelfExecutingTimed(s, deps, body)
	check()
	if m.Executed != 500 {
		t.Errorf("executed %d", m.Executed)
	}
	if bd.P != 4 || len(bd.Busy) != 4 || len(bd.Waiting) != 4 {
		t.Fatalf("breakdown shape wrong: %+v", bd)
	}
	if bd.Total <= 0 {
		t.Error("total time not recorded")
	}
	for p := 0; p < 4; p++ {
		if bd.Busy[p] < 0 || bd.Waiting[p] < 0 {
			t.Errorf("negative time on proc %d", p)
		}
		if bd.Busy[p]+bd.Waiting[p] > 50*bd.Total {
			t.Errorf("proc %d accounting implausible", p)
		}
	}
	if w := bd.MaxWaiting(); w < 0 || w > 1 {
		t.Errorf("MaxWaiting = %v", w)
	}
}

func TestRunPreScheduledTimed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	deps := randomDAG(rng, 400, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 3)
	body, check := depChecker(t, deps)
	m, bd := RunPreScheduledTimed(s, body)
	check()
	if m.Phases != s.NumPhases {
		t.Errorf("phases %d, want %d", m.Phases, s.NumPhases)
	}
	if bd.Total <= 0 {
		t.Error("total time not recorded")
	}
	// Every processor passes every barrier, so waiting time is nonzero
	// whenever there is more than one phase.
	for p := 0; p < 3; p++ {
		if bd.Waiting[p] < 0 {
			t.Errorf("negative waiting on proc %d", p)
		}
	}
}

func TestMaxWaitingEmpty(t *testing.T) {
	empty := TimeBreakdown{P: 2,
		Busy:    make([]time.Duration, 2),
		Waiting: make([]time.Duration, 2),
	}
	if got := empty.MaxWaiting(); got != 0 {
		t.Errorf("MaxWaiting on zero times = %v", got)
	}
}
