//go:build race

package executor

// raceEnabled reports whether the race detector is active; allocation
// accounting tests are skipped under -race because the detector itself
// allocates.
const raceEnabled = true
