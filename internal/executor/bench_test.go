package executor

import (
	"context"
	"runtime"
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

func benchSetup(b *testing.B) (*wavefront.Deps, []int32) {
	b.Helper()
	a := stencil.Laplace2D(120, 120)
	d := wavefront.FromLower(a)
	wf, err := wavefront.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	return d, wf
}

func BenchmarkExecutors(b *testing.B) {
	d, wf := benchSetup(b)
	procs := runtime.GOMAXPROCS(0)
	work := func(i int32) {} // pure synchronization cost
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunSequential(d.N, work)
		}
	})
	b.Run("prescheduled", func(b *testing.B) {
		s := schedule.Global(wf, procs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RunPreScheduled(s, work)
		}
	})
	b.Run("selfexecuting", func(b *testing.B) {
		s := schedule.Global(wf, procs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RunSelfExecuting(s, d, work)
		}
	})
	b.Run("doacross", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunDoAcross(d.N, procs, d, work)
		}
	})
	b.Run("selfscheduled-chunk16", func(b *testing.B) {
		order := SortedOrder(wf)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RunSelfScheduled(order, d, procs, 16, work)
		}
	})
	b.Run("guided", func(b *testing.B) {
		order := SortedOrder(wf)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RunGuidedSelfScheduled(order, d, procs, 4, work)
		}
	})
	b.Run("onthefly", func(b *testing.B) {
		depsOf := func(i int32) []int32 { return d.On(int(i)) }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RunOnTheFly(d.N, procs, depsOf, work)
		}
	})
}

// BenchmarkRepeatedRun is the amortization experiment behind the pooled
// executor: the same prepared schedule is executed many times (the
// paper's "executed many times during the running of a given program"),
// comparing spawn-per-run self-execution against the persistent pool.
// The pooled variant must report 0 allocs/op. The processor count is
// fixed at 4 (not GOMAXPROCS) so the parallel paths are exercised even on
// single-CPU hosts, where GOMAXPROCS(0) == 1 would collapse both sides to
// the sequential fast path.
func BenchmarkRepeatedRun(b *testing.B) {
	d, wf := benchSetup(b)
	const procs = 4
	work := func(i int32) {}
	s := schedule.Global(wf, procs)
	b.Run("spawn-per-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RunSelfExecuting(s, d, work)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := NewPool(procs)
		defer pool.Close()
		ctx := context.Background()
		if _, err := pool.Run(ctx, s, d, work); err != nil { // warm-up
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Run(ctx, s, d, work); err != nil {
				b.Fatal(err)
			}
		}
	})
}
