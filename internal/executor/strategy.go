package executor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"doconsider/internal/barrier"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Strategy is a pluggable execution strategy: given a prepared schedule and
// the dependence structure, it runs the loop body once per index. New
// strategies (chunked, guided, work-stealing, hardware-offloaded, ...) plug
// in through Register without touching the dispatch in core.
//
// Execute returns ctx.Err() if the run was cancelled and a *PanicError if a
// loop body panicked; in both cases every worker has been released (no
// busy-waiting peer is left spinning) before Execute returns.
type Strategy interface {
	// Name returns the registry name of the strategy.
	Name() string
	// Execute runs body under the strategy. deps may be nil for strategies
	// that do not synchronize on dependences (sequential, pre-scheduled).
	Execute(ctx context.Context, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error)
}

// PanicError wraps a panic raised by a loop body during a parallel run. The
// first panic wins; the run is aborted and all workers released.
type PanicError struct{ Value any }

// Error describes the wrapped panic.
func (e *PanicError) Error() string { return fmt.Sprintf("executor: loop body panicked: %v", e.Value) }

// ErrWorkerExited reports that a loop body terminated its worker goroutine
// outright (runtime.Goexit — e.g. t.FailNow inside a test body). The run
// is aborted like a panic, surfacing as a *PanicError wrapping this value,
// and no peer is left waiting on the vanished worker.
var ErrWorkerExited = errors.New("executor: loop body terminated its worker goroutine (runtime.Goexit)")

// exitGuard arms a worker against runtime.Goexit from a loop body: defer
// check() before the work and call disarm() after it. Panics are recovered
// inside the per-worker run functions, so if check fires without disarm the
// goroutine is being killed by Goexit — the run aborts with ErrWorkerExited
// so no peer spins forever on the vanished worker's unpublished indices.
func exitGuard(rc *runControl) (check, disarm func()) {
	completed := false
	return func() {
			if !completed {
				rc.recordPanic(ErrWorkerExited)
			}
		}, func() {
			completed = true
		}
}

// barrierGuard is the pre-scheduled executors' exitGuard: a worker killed
// by runtime.Goexit mid-phase must still arrive at every remaining phase
// barrier, or its peers block there forever. The worker bumps attended
// after each barrier it passes and sets completed before returning; the
// deferred check attends the rest on its behalf.
type barrierGuard struct {
	rc        *runControl
	bar       barrier.Barrier
	phases    int
	attended  int
	completed bool
}

func (g *barrierGuard) check() {
	if g.completed {
		return
	}
	g.rc.recordPanic(ErrWorkerExited)
	for ; g.attended < g.phases; g.attended++ {
		g.bar.Wait()
	}
}

var (
	regMu    sync.RWMutex
	registry = map[string]func() Strategy{}
)

// Register makes a strategy constructor available under name. Registering a
// name twice panics; strategies are process-global, like database/sql
// drivers.
func Register(name string, factory func() Strategy) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("executor: Register called twice for " + name)
	}
	if factory == nil {
		panic("executor: Register with nil factory for " + name)
	}
	registry[name] = factory
}

// NewStrategy returns a fresh instance of the named strategy. Stateful
// strategies (e.g. pooled) own per-instance resources, so each call returns
// an independent instance.
func NewStrategy(name string) (Strategy, error) {
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("executor: unknown strategy %q (have %v)", name, Strategies())
	}
	return factory(), nil
}

// Strategies returns the sorted names of all registered strategies.
func Strategies() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(Sequential.String(), func() Strategy { return sequentialStrategy{} })
	Register(PreScheduled.String(), func() Strategy { return preScheduledStrategy{} })
	Register(SelfExecuting.String(), func() Strategy { return selfExecutingStrategy{} })
	Register(DoAcross.String(), func() Strategy { return &doAcrossStrategy{} })
	Register(Pooled.String(), func() Strategy { return &PooledStrategy{} })
}

// runControl coordinates abort across the workers of one run: a body panic
// or a context cancellation raises the abort flag, which every spin loop
// and per-index step observes, so no worker is left busy-waiting on a
// producer that will never publish.
type runControl struct {
	done     <-chan struct{} // ctx.Done(); nil when the context cannot be cancelled
	aborted  atomic.Uint32
	panicked atomic.Uint32
	panicVal any // written by the CAS winner in recordPanic, read after all workers exit
}

func (rc *runControl) reset(ctx context.Context) {
	rc.done = ctx.Done()
	rc.aborted.Store(0)
	rc.panicked.Store(0)
	rc.panicVal = nil
}

func (rc *runControl) isAborted() bool { return rc.aborted.Load() != 0 }

// stop reports whether the run should terminate, promoting a context
// cancellation into the shared abort flag so peers see it cheaply.
func (rc *runControl) stop() bool {
	if rc.aborted.Load() != 0 {
		return true
	}
	if rc.done == nil {
		return false
	}
	select {
	case <-rc.done:
		rc.aborted.Store(1)
		return true
	default:
		return false
	}
}

func (rc *runControl) recordPanic(v any) {
	if rc.panicked.CompareAndSwap(0, 1) {
		rc.panicVal = v
	}
	rc.aborted.Store(1)
}

// err resolves the run outcome after every worker has exited: a body panic
// takes precedence over a cancellation.
func (rc *runControl) err(ctx context.Context) error {
	if rc.panicked.Load() != 0 {
		return &PanicError{Value: rc.panicVal}
	}
	return ctx.Err()
}

// --- sequential -----------------------------------------------------------

type sequentialStrategy struct{}

func (sequentialStrategy) Name() string { return Sequential.String() }

func (sequentialStrategy) Execute(ctx context.Context, s *schedule.Schedule, _ *wavefront.Deps, body Body) (Metrics, error) {
	return runSequentialCtx(ctx, s.N, body)
}

// runSequentialCtx runs body for i = 0..n-1 with cancellation checks
// and panic capture. Like runSequentialOrder it loops directly rather
// than over an iter.Seq, which would heap-allocate the loop-body
// closure on every call.
func runSequentialCtx(ctx context.Context, n int, body Body) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	done := ctx.Done()
	executed := int64(0)
	for i := int32(0); int(i) < n; i++ {
		if done != nil {
			select {
			case <-done:
				return Metrics{P: 1, Executed: executed}, ctx.Err()
			default:
			}
		}
		body(i)
		executed++
	}
	return Metrics{P: 1, Executed: executed}, nil
}

// --- pre-scheduled --------------------------------------------------------

type preScheduledStrategy struct{}

func (preScheduledStrategy) Name() string { return PreScheduled.String() }

func (preScheduledStrategy) Execute(ctx context.Context, s *schedule.Schedule, _ *wavefront.Deps, body Body) (Metrics, error) {
	return runPreScheduledCtx(ctx, s, body)
}

// --- self-executing -------------------------------------------------------

type selfExecutingStrategy struct{}

func (selfExecutingStrategy) Name() string { return SelfExecuting.String() }

func (selfExecutingStrategy) Execute(ctx context.Context, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error) {
	return runSelfExecutingCtx(ctx, s, deps, body)
}

// --- doacross -------------------------------------------------------------

// doAcrossStrategy ignores the supplied schedule's order and executes the
// natural (unsorted) index order. The natural schedule is cached across
// Execute calls so a Runtime running many sweeps builds it once.
type doAcrossStrategy struct {
	mu  sync.Mutex
	nat *schedule.Schedule
}

func (d *doAcrossStrategy) Name() string { return DoAcross.String() }

func (d *doAcrossStrategy) Execute(ctx context.Context, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error) {
	d.mu.Lock()
	if d.nat == nil || d.nat.N != s.N || d.nat.P != s.P {
		d.nat = schedule.Natural(s.N, s.P, schedule.Striped)
	}
	nat := d.nat
	d.mu.Unlock()
	return runSelfExecutingCtx(ctx, nat, deps, body)
}
