package executor

import (
	"context"
	"sync"
	"sync/atomic"
)

// RunOnTheFly executes a loop whose dependences cannot be inspected before
// execution begins — the "not start-time schedulable" class the paper
// defers to its dodynamic companion work (reference [11]). Iterations are
// claimed in natural order from a shared counter; each iteration's
// dependences are discovered by calling depsOf(i) at execution time, and
// busy waits ensure producers complete first.
//
// depsOf must return iteration numbers strictly smaller than i (backward
// dependences), which guarantees progress under the natural claim order.
// The returned slice is only read and may alias storage reused across
// calls on the same processor.
func RunOnTheFly(n, nproc int, depsOf func(i int32) []int32, body Body) Metrics {
	return MustMetrics(RunOnTheFlyCtx(context.Background(), n, nproc, depsOf, body))
}

// RunOnTheFlyCtx is RunOnTheFly with cancellation support and panic
// capture: an abort releases every busy-waiting worker.
func RunOnTheFlyCtx(ctx context.Context, n, nproc int, depsOf func(i int32) []int32, body Body) (Metrics, error) {
	if nproc < 1 {
		nproc = 1
	}
	var rc runControl
	rc.reset(ctx)
	ready := make([]int32, n)
	var cursor atomic.Int64
	var executed, spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			check, disarm := exitGuard(&rc)
			defer check()
			ran, checks, waits := onTheFlyWorker(&rc, n, depsOf, ready, &cursor, body)
			executed.Add(ran)
			spinChecks.Add(checks)
			spinWaits.Add(waits)
			disarm()
		}()
	}
	wg.Wait()
	m := Metrics{
		P:          nproc,
		Executed:   executed.Load(),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
	return m, rc.err(ctx)
}

// onTheFlyWorker claims iterations in natural order and discovers each
// iteration's dependences at execution time.
func onTheFlyWorker(rc *runControl, n int, depsOf func(i int32) []int32, ready []int32, cursor *atomic.Int64, body Body) (ran, checks, waits int64) {
	defer func() {
		if r := recover(); r != nil {
			rc.recordPanic(r)
		}
	}()
	for {
		if rc.stop() {
			return
		}
		i := int32(cursor.Add(1)) - 1
		if int(i) >= n {
			return
		}
		for _, t := range depsOf(i) {
			checks++
			if atomic.LoadInt32(&ready[t]) == 1 {
				continue
			}
			waits++
			if !spinUntilReady(rc, &ready[t]) {
				return
			}
		}
		body(i)
		ran++
		atomic.StoreInt32(&ready[i], 1)
	}
}
