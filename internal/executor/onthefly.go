package executor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunOnTheFly executes a loop whose dependences cannot be inspected before
// execution begins — the "not start-time schedulable" class the paper
// defers to its dodynamic companion work (reference [11]). Iterations are
// claimed in natural order from a shared counter; each iteration's
// dependences are discovered by calling depsOf(i) at execution time, and
// busy waits ensure producers complete first.
//
// depsOf must return iteration numbers strictly smaller than i (backward
// dependences), which guarantees progress under the natural claim order.
// The returned slice is only read and may alias storage reused across
// calls on the same processor.
func RunOnTheFly(n, nproc int, depsOf func(i int32) []int32, body Body) Metrics {
	if nproc < 1 {
		nproc = 1
	}
	ready := make([]int32, n)
	var cursor atomic.Int64
	var spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var checks, waits int64
			for {
				i := int32(cursor.Add(1)) - 1
				if int(i) >= n {
					break
				}
				for _, t := range depsOf(i) {
					checks++
					if atomic.LoadInt32(&ready[t]) == 1 {
						continue
					}
					waits++
					for atomic.LoadInt32(&ready[t]) != 1 {
						runtime.Gosched()
					}
				}
				body(i)
				atomic.StoreInt32(&ready[i], 1)
			}
			spinChecks.Add(checks)
			spinWaits.Add(waits)
		}()
	}
	wg.Wait()
	return Metrics{
		P:          nproc,
		Executed:   int64(n),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
}
