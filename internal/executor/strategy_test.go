package executor

import (
	"context"
	"math/rand"
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

func TestRegistryHasBuiltins(t *testing.T) {
	names := Strategies()
	want := map[string]bool{
		"sequential": false, "pre-scheduled": false, "self-executing": false,
		"doacross": false, "pooled": false,
	}
	for _, name := range names {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("built-in strategy %q not registered (have %v)", name, names)
		}
	}
}

func TestNewStrategyUnknown(t *testing.T) {
	if _, err := NewStrategy("no-such-strategy"); err == nil {
		t.Error("unknown strategy name did not error")
	}
}

func TestKindNewStrategyRoundTrip(t *testing.T) {
	for _, k := range []Kind{Sequential, PreScheduled, SelfExecuting, DoAcross, Pooled} {
		strat, err := k.NewStrategy()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if strat.Name() != k.String() {
			t.Errorf("strategy name %q != kind name %q", strat.Name(), k.String())
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Sequential.String(), func() Strategy { return sequentialStrategy{} })
}

// TestAllStrategiesRespectDeps executes every registered built-in through
// the Strategy interface and checks dependence order.
func TestAllStrategiesRespectDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	deps := randomDAG(rng, 300, 3)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{Sequential, PreScheduled, SelfExecuting, DoAcross, Pooled} {
		strat, err := k.NewStrategy()
		if err != nil {
			t.Fatal(err)
		}
		s := schedule.Global(wf, 4)
		body, check := depChecker(t, deps)
		m, err := strat.Execute(context.Background(), s, deps, body)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		check()
		if m.Executed != int64(deps.N) {
			t.Errorf("%v executed %d of %d", k, m.Executed, deps.N)
		}
		if c, ok := strat.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil {
				t.Errorf("%v close: %v", k, err)
			}
		}
	}
}

// TestPooledStrategyReusesPool verifies the strategy keeps one pool across
// Execute calls and rebuilds it when the processor count changes.
func TestPooledStrategyReusesPool(t *testing.T) {
	deps := randomDAG(rand.New(rand.NewSource(22)), 100, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	ps := &PooledStrategy{}
	defer ps.Close()
	for _, p := range []int{2, 2, 4, 2} {
		s := schedule.Global(wf, p)
		body, check := depChecker(t, deps)
		if _, err := ps.Execute(context.Background(), s, deps, body); err != nil {
			t.Fatal(err)
		}
		check()
	}
	// After Close the strategy must refuse to resurrect a pool.
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Execute(context.Background(), schedule.Global(wf, 2), deps, func(int32) {}); err != ErrPoolClosed {
		t.Errorf("Execute after Close: err = %v, want ErrPoolClosed", err)
	}
}
