//go:build !race

package executor

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
