package executor

import (
	"runtime"
	"sync"
	"sync/atomic"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// RunSelfScheduled executes the wavefront-sorted index list with dynamic
// self-scheduling: instead of a static index-to-processor assignment,
// workers claim chunks of the sorted list from a shared counter, in the
// style of the guided self-scheduling work the paper compares against
// (Polychronopoulos & Kuck; Tang & Yew). Dependences are still enforced
// with the self-executing busy-wait mechanism, so the executor is correct
// for any chunk size; chunk >= 1.
//
// This is an extension beyond the paper's executors, included as the
// natural hybrid of its two synchronization mechanisms with the related
// work's dynamic load balancing; see the ablation benchmarks.
func RunSelfScheduled(order []int32, deps *wavefront.Deps, nproc, chunk int, body Body) Metrics {
	n := len(order)
	if nproc < 1 {
		nproc = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	ready := make([]int32, deps.N)
	var cursor atomic.Int64
	var spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var checks, waits int64
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for _, i := range order[lo:hi] {
					for _, t := range deps.On(int(i)) {
						checks++
						if atomic.LoadInt32(&ready[t]) == 1 {
							continue
						}
						waits++
						for atomic.LoadInt32(&ready[t]) != 1 {
							runtime.Gosched()
						}
					}
					body(i)
					atomic.StoreInt32(&ready[i], 1)
				}
			}
			spinChecks.Add(checks)
			spinWaits.Add(waits)
		}()
	}
	wg.Wait()
	return Metrics{
		P:          nproc,
		Executed:   int64(n),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
}

// SortedOrder returns the wavefront-sorted index list of a schedule built
// on one processor — the canonical claim order for RunSelfScheduled.
func SortedOrder(wf []int32) []int32 {
	s := schedule.Global(wf, 1)
	return s.Indices[0]
}

// RunGuidedSelfScheduled executes the sorted index list with guided
// self-scheduling (Polychronopoulos & Kuck, the paper's reference [16]):
// each free worker claims ceil(remaining/P) indices, so chunks shrink as
// the loop drains — large chunks amortize claiming overhead early, small
// chunks balance the tail. Dependences are enforced with busy waits as in
// RunSelfScheduled; minChunk bounds the final chunk size (>= 1).
func RunGuidedSelfScheduled(order []int32, deps *wavefront.Deps, nproc, minChunk int, body Body) Metrics {
	n := len(order)
	if nproc < 1 {
		nproc = 1
	}
	if minChunk < 1 {
		minChunk = 1
	}
	ready := make([]int32, deps.N)
	var cursor atomic.Int64
	var spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var checks, waits int64
			for {
				// Claim ceil(remaining/P) with a CAS loop.
				var lo, hi int
				for {
					cur := cursor.Load()
					if int(cur) >= n {
						spinChecks.Add(checks)
						spinWaits.Add(waits)
						return
					}
					chunk := (n - int(cur) + nproc - 1) / nproc
					if chunk < minChunk {
						chunk = minChunk
					}
					lo = int(cur)
					hi = lo + chunk
					if hi > n {
						hi = n
					}
					if cursor.CompareAndSwap(cur, int64(hi)) {
						break
					}
				}
				for _, i := range order[lo:hi] {
					for _, t := range deps.On(int(i)) {
						checks++
						if atomic.LoadInt32(&ready[t]) == 1 {
							continue
						}
						waits++
						for atomic.LoadInt32(&ready[t]) != 1 {
							runtime.Gosched()
						}
					}
					body(i)
					atomic.StoreInt32(&ready[i], 1)
				}
			}
		}()
	}
	wg.Wait()
	return Metrics{
		P:          nproc,
		Executed:   int64(n),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
}
