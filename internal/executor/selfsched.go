package executor

import (
	"context"
	"sync"
	"sync/atomic"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// RunSelfScheduled executes the wavefront-sorted index list with dynamic
// self-scheduling: instead of a static index-to-processor assignment,
// workers claim chunks of the sorted list from a shared counter, in the
// style of the guided self-scheduling work the paper compares against
// (Polychronopoulos & Kuck; Tang & Yew). Dependences are still enforced
// with the self-executing busy-wait mechanism, so the executor is correct
// for any chunk size; chunk >= 1.
//
// This is an extension beyond the paper's executors, included as the
// natural hybrid of its two synchronization mechanisms with the related
// work's dynamic load balancing; see the ablation benchmarks.
func RunSelfScheduled(order []int32, deps *wavefront.Deps, nproc, chunk int, body Body) Metrics {
	return MustMetrics(RunSelfScheduledCtx(context.Background(), order, deps, nproc, chunk, body))
}

// RunSelfScheduledCtx is RunSelfScheduled with cancellation support and
// panic capture: an abort releases every busy-waiting worker.
func RunSelfScheduledCtx(ctx context.Context, order []int32, deps *wavefront.Deps, nproc, chunk int, body Body) (Metrics, error) {
	if nproc < 1 {
		nproc = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	var rc runControl
	rc.reset(ctx)
	ready := make([]int32, deps.N)
	var cursor atomic.Int64
	n := len(order)
	// Fixed chunks claim with a single wait-free fetch-add — the claim
	// primitive itself is part of what the chunk-size ablations measure.
	claim := func() (lo, hi int, ok bool) {
		lo = int(cursor.Add(int64(chunk))) - chunk
		if lo >= n {
			return 0, 0, false
		}
		hi = min(lo+chunk, n)
		return lo, hi, true
	}
	return runSelfScheduled(ctx, &rc, order, deps, ready, nproc, claim, body)
}

// runSelfScheduled fans out nproc workers that claim [lo, hi) slices of
// the order list via claim and execute them under busy-wait dependence
// synchronization.
func runSelfScheduled(ctx context.Context, rc *runControl, order []int32, deps *wavefront.Deps, ready []int32, nproc int, claim func() (int, int, bool), body Body) (Metrics, error) {
	var executed, spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			check, disarm := exitGuard(rc)
			defer check()
			ran, checks, waits := selfSchedWorker(rc, order, deps, ready, claim, body)
			executed.Add(ran)
			spinChecks.Add(checks)
			spinWaits.Add(waits)
			disarm()
		}()
	}
	wg.Wait()
	m := Metrics{
		P:          nproc,
		Executed:   executed.Load(),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
	return m, rc.err(ctx)
}

// selfSchedWorker claims chunks of the order list via claim and executes
// them under busy-wait dependence synchronization.
func selfSchedWorker(rc *runControl, order []int32, deps *wavefront.Deps, ready []int32, claim func() (int, int, bool), body Body) (ran, checks, waits int64) {
	defer func() {
		if r := recover(); r != nil {
			rc.recordPanic(r)
		}
	}()
	for {
		if rc.stop() {
			return
		}
		lo, hi, ok := claim()
		if !ok {
			return
		}
		for _, i := range order[lo:hi] {
			if rc.stop() {
				return
			}
			for _, t := range deps.On(int(i)) {
				checks++
				if atomic.LoadInt32(&ready[t]) == 1 {
					continue
				}
				waits++
				if !spinUntilReady(rc, &ready[t]) {
					return
				}
			}
			body(i)
			ran++
			atomic.StoreInt32(&ready[i], 1)
		}
	}
}

// SortedOrder returns the wavefront-sorted index list of a schedule built
// on one processor — the canonical claim order for RunSelfScheduled.
func SortedOrder(wf []int32) []int32 {
	s := schedule.Global(wf, 1)
	return s.Proc(0)
}

// RunGuidedSelfScheduled executes the sorted index list with guided
// self-scheduling (Polychronopoulos & Kuck, the paper's reference [16]):
// each free worker claims ceil(remaining/P) indices, so chunks shrink as
// the loop drains — large chunks amortize claiming overhead early, small
// chunks balance the tail. Dependences are enforced with busy waits as in
// RunSelfScheduled; minChunk bounds the final chunk size (>= 1).
func RunGuidedSelfScheduled(order []int32, deps *wavefront.Deps, nproc, minChunk int, body Body) Metrics {
	return MustMetrics(RunGuidedSelfScheduledCtx(context.Background(), order, deps, nproc, minChunk, body))
}

// RunGuidedSelfScheduledCtx is RunGuidedSelfScheduled with cancellation
// support and panic capture.
func RunGuidedSelfScheduledCtx(ctx context.Context, order []int32, deps *wavefront.Deps, nproc, minChunk int, body Body) (Metrics, error) {
	if nproc < 1 {
		nproc = 1
	}
	if minChunk < 1 {
		minChunk = 1
	}
	var rc runControl
	rc.reset(ctx)
	ready := make([]int32, deps.N)
	var cursor atomic.Int64
	n := len(order)
	// Guided chunks depend on the remaining count, so claiming needs a CAS
	// loop: ceil(remaining/P), floored at minChunk.
	claim := func() (lo, hi int, ok bool) {
		for {
			cur := cursor.Load()
			if int(cur) >= n {
				return 0, 0, false
			}
			chunk := (n - int(cur) + nproc - 1) / nproc
			if chunk < minChunk {
				chunk = minChunk
			}
			lo = int(cur)
			hi = min(lo+chunk, n)
			if cursor.CompareAndSwap(cur, int64(hi)) {
				return lo, hi, true
			}
			if rc.stop() {
				return 0, 0, false
			}
		}
	}
	return runSelfScheduled(ctx, &rc, order, deps, ready, nproc, claim, body)
}
