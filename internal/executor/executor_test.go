package executor

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// randomDAG builds random backward dependences over n iterations.
func randomDAG(rng *rand.Rand, n, maxDeg int) *wavefront.Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		deg := rng.Intn(maxDeg + 1)
		for d := 0; d < deg; d++ {
			adj[i] = append(adj[i], int32(rng.Intn(i)))
		}
	}
	return wavefront.FromAdjacency(adj)
}

// orderRecorder returns a body that records completion order and a checker
// verifying every dependence completed before its consumer started.
func depChecker(t *testing.T, deps *wavefront.Deps) (Body, func()) {
	t.Helper()
	n := deps.N
	done := make([]atomic.Bool, n)
	violation := atomic.Bool{}
	body := func(i int32) {
		for _, d := range deps.On(int(i)) {
			if !done[d].Load() {
				violation.Store(true)
			}
		}
		done[i].Store(true)
	}
	check := func() {
		if violation.Load() {
			t.Fatal("a dependence was violated")
		}
		for i := range done {
			if !done[i].Load() {
				t.Fatalf("index %d never executed", i)
			}
		}
	}
	return body, check
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Sequential: "sequential", PreScheduled: "pre-scheduled",
		SelfExecuting: "self-executing", DoAcross: "doacross",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestRunSequential(t *testing.T) {
	var order []int32
	m := RunSequential(5, func(i int32) { order = append(order, i) })
	if m.Executed != 5 || m.P != 1 {
		t.Errorf("metrics = %+v", m)
	}
	for i, v := range order {
		if int32(i) != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPreScheduledRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		deps := randomDAG(rng, 400, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 9} {
			s := schedule.Global(wf, p)
			body, check := depChecker(t, deps)
			m := RunPreScheduled(s, body)
			check()
			if m.Executed != 400 {
				t.Errorf("executed %d", m.Executed)
			}
			if m.Phases != s.NumPhases {
				t.Errorf("phases %d != %d", m.Phases, s.NumPhases)
			}
		}
	}
}

func TestSelfExecutingRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		deps := randomDAG(rng, 400, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 9} {
			for _, s := range []*schedule.Schedule{
				schedule.Global(wf, p),
				schedule.Local(wf, p, schedule.Striped),
				schedule.Local(wf, p, schedule.Blocked),
				schedule.Natural(deps.N, p, schedule.Striped),
			} {
				body, check := depChecker(t, deps)
				m := RunSelfExecuting(s, deps, body)
				check()
				if m.Executed != 400 {
					t.Errorf("executed %d", m.Executed)
				}
			}
		}
	}
}

func TestDoAcrossRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	deps := randomDAG(rng, 300, 2)
	body, check := depChecker(t, deps)
	m := RunDoAcross(300, 7, deps, body)
	check()
	if m.Executed != 300 {
		t.Errorf("executed %d", m.Executed)
	}
}

func TestRunDispatch(t *testing.T) {
	deps := wavefront.FromAdjacency([][]int32{{}, {0}, {1}})
	wf, _ := wavefront.Compute(deps)
	s := schedule.Global(wf, 2)
	for _, k := range []Kind{Sequential, PreScheduled, SelfExecuting, DoAcross} {
		body, check := depChecker(t, deps)
		Run(k, s, deps, body)
		check()
	}
}

func TestRunUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with unknown kind did not panic")
		}
	}()
	s := schedule.Natural(1, 1, schedule.Striped)
	Run(Kind(42), s, nil, func(int32) {})
}

// TestSelfExecutingComputesCorrectValues runs the paper's simple loop
// x(i) = x(i) + b(i)*x(ia(i)) and compares against sequential execution.
func TestSelfExecutingComputesCorrectValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	deps := wavefront.FromIndirection(ia)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
		x0[i] = rng.NormFloat64()
	}
	mkBody := func(x, xold []float64) Body {
		return func(i int32) {
			needed := ia[i]
			if needed >= i {
				x[i] = xold[i] + b[i]*xold[needed]
			} else {
				x[i] = xold[i] + b[i]*x[needed]
			}
		}
	}
	// Sequential reference.
	xSeq := append([]float64(nil), x0...)
	xold := append([]float64(nil), x0...)
	RunSequential(n, mkBody(xSeq, xold))
	for _, p := range []int{2, 4, 8} {
		for _, kind := range []Kind{PreScheduled, SelfExecuting, DoAcross} {
			x := append([]float64(nil), x0...)
			s := schedule.Global(wf, p)
			Run(kind, s, deps, mkBody(x, xold))
			for i := range x {
				if x[i] != xSeq[i] {
					t.Fatalf("kind=%v p=%d: x[%d] = %v, want %v", kind, p, i, x[i], xSeq[i])
				}
			}
		}
	}
}

func TestSelfExecutingSpinAccounting(t *testing.T) {
	// A pure chain forces waits when split across processors.
	n := 64
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	deps := wavefront.FromAdjacency(adj)
	wf, _ := wavefront.Compute(deps)
	s := schedule.Global(wf, 4)
	m := RunSelfExecuting(s, deps, func(int32) {})
	if m.SpinChecks < int64(n-1) {
		t.Errorf("SpinChecks = %d, want >= %d", m.SpinChecks, n-1)
	}
}

func TestExecutorsProduceSamePermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		deps := randomDAG(rng, n, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			return false
		}
		p := 1 + rng.Intn(8)
		s := schedule.Local(wf, p, schedule.Striped)
		var count atomic.Int64
		RunSelfExecuting(s, deps, func(int32) { count.Add(1) })
		return count.Load() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
