package executor

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// ErrPoolClosed reports a Run attempted on a closed pool.
var ErrPoolClosed = errors.New("executor: pool is closed")

// Pool is a persistent worker pool executing prepared schedules with the
// self-executing (busy-wait) synchronization of paper Figure 4. The P
// workers are spawned once in NewPool and reused for every Run, and the
// shared ready array is epoch-stamped instead of cleared, so on the hot
// path a Run performs zero goroutine spawns and zero heap allocations —
// the executor-side counterpart of amortizing the inspector (§5.1.1).
//
// A Pool is bound to its processor count: Run requires a schedule built
// for exactly Procs processors. Close releases the workers; a Pool must
// not be used after Close.
type Pool struct {
	procs int

	runMu sync.Mutex // serializes Run/Close; workers never take it

	mu     sync.Mutex // guards seq/closed and the per-run fields below
	cond   *sync.Cond
	seq    uint64
	closed bool

	// Per-run state, written under mu before the seq bump that publishes
	// it to the workers.
	sched *schedule.Schedule
	deps  *wavefront.Deps
	body  Body
	epoch uint32

	// done[i] == epoch marks index i complete in the current run; stale
	// epochs from previous runs read as not-ready, so the array never
	// needs clearing (except on the ~never epoch wraparound).
	done []uint32

	ctl      runControl
	wg       sync.WaitGroup
	executed atomic.Int64
	checks   atomic.Int64
	waits    atomic.Int64
}

// NewPool spawns a pool of procs persistent workers (procs >= 1).
func NewPool(procs int) *Pool {
	if procs < 1 {
		procs = 1
	}
	p := &Pool{procs: procs}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < procs; w++ {
		go p.worker(w, 0)
	}
	return p
}

// Procs returns the number of persistent workers.
func (p *Pool) Procs() int { return p.procs }

// worker is the persistent loop of one pool worker: sleep until a run
// newer than last is published, execute this worker's processor list,
// signal completion, repeat until the pool closes.
func (p *Pool) worker(id int, last uint64) {
	for {
		p.mu.Lock()
		for p.seq == last && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		last = p.seq
		s, deps, body, epoch := p.sched, p.deps, p.body, p.epoch
		p.mu.Unlock()
		p.runGuarded(id, last, s, deps, body, epoch)
	}
}

// runGuarded wraps one worker's share of one run with the cleanup that
// must happen no matter how the body returns control: a panic is recorded
// as the run's abort cause, and a body that kills the goroutine outright
// (runtime.Goexit, e.g. t.FailNow in a test body) is recorded as
// ErrWorkerExited, a replacement worker is spawned for future runs, and
// the WaitGroup is still released — so neither this Run nor the next one
// deadlocks.
func (p *Pool) runGuarded(id int, seq uint64, s *schedule.Schedule, deps *wavefront.Deps, body Body, epoch uint32) {
	defer p.wg.Done()
	completed := false
	defer func() {
		if r := recover(); r != nil {
			p.ctl.recordPanic(r)
			return
		}
		if !completed {
			// runtime.Goexit is terminating this goroutine: release the
			// peers and replace the dying worker. The replacement starts
			// at this run's seq so it does not re-execute it.
			p.ctl.recordPanic(ErrWorkerExited)
			go p.worker(id, seq)
		}
	}()
	p.runProc(id, s, deps, body, epoch)
	completed = true
}

// runProc executes processor id's schedule slice with epoch-stamped
// busy-wait synchronization.
func (p *Pool) runProc(id int, s *schedule.Schedule, deps *wavefront.Deps, body Body, epoch uint32) {
	done := p.done
	var ran, checks, waits int64
	defer func() {
		p.executed.Add(ran)
		p.checks.Add(checks)
		p.waits.Add(waits)
	}()
	for _, i := range s.Proc(id) {
		if p.ctl.stop() {
			return
		}
		for _, t := range deps.On(int(i)) {
			checks++
			if atomic.LoadUint32(&done[t]) == epoch {
				continue
			}
			waits++
			if !p.spinUntilEpoch(&done[t], epoch) {
				return
			}
		}
		body(i)
		ran++
		atomic.StoreUint32(&done[i], epoch)
	}
}

// spinUntilEpoch busy-waits for an index to reach the current epoch; it
// returns false if the run aborted while waiting.
func (p *Pool) spinUntilEpoch(flag *uint32, epoch uint32) bool {
	for atomic.LoadUint32(flag) != epoch {
		if p.ctl.stop() {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// Run executes body under the pool's workers. The schedule must be built
// for exactly Procs processors and its per-processor lists must be
// dependence-consistent (wavefront-sorted or natural order). Run blocks
// until all workers finish; concurrent Run calls are serialized. On a
// cancelled context every busy-waiting worker is released and ctx.Err()
// is returned; on a body panic a *PanicError is returned. After a warm-up
// call, Run allocates nothing and spawns no goroutines.
func (p *Pool) Run(ctx context.Context, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error) {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if s.P != p.procs {
		return Metrics{}, fmt.Errorf("executor: pool has %d workers, schedule wants %d", p.procs, s.P)
	}
	if len(p.done) < s.N {
		p.done = make([]uint32, s.N)
	}
	p.ctl.reset(ctx)
	p.executed.Store(0)
	p.checks.Store(0)
	p.waits.Store(0)
	p.wg.Add(p.procs)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Add(-p.procs)
		return Metrics{}, ErrPoolClosed
	}
	p.epoch++
	if p.epoch == 0 { // wraparound: stale stamps could alias, so clear
		clear(p.done)
		p.epoch = 1
	}
	p.sched, p.deps, p.body = s, deps, body
	p.seq++
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	m := Metrics{
		P:          p.procs,
		Executed:   p.executed.Load(),
		SpinChecks: p.checks.Load(),
		SpinWaits:  p.waits.Load(),
	}
	return m, p.ctl.err(ctx)
}

// Close releases the pool's workers. It waits for no one: any in-flight
// Run (serialized by runMu) has already completed or holds runMu. Close
// is idempotent.
func (p *Pool) Close() error {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.mu.Lock()
	p.closed = true
	p.sched, p.deps, p.body = nil, nil, nil
	p.mu.Unlock()
	p.cond.Broadcast()
	return nil
}

// PooledStrategy adapts a Pool to the Strategy interface, creating the
// pool lazily from the first schedule's processor count and recreating it
// if a later schedule needs a different count. Close releases the workers;
// core.Runtime.Close calls it via the io.Closer check.
type PooledStrategy struct {
	mu     sync.Mutex
	pool   *Pool
	closed bool
}

// Name returns the registry name.
func (ps *PooledStrategy) Name() string { return Pooled.String() }

// Execute runs body on the (lazily created) persistent pool. The strategy
// mutex is held for the whole run — runs on one pool serialize anyway, and
// this keeps a concurrent Execute with a different processor count from
// closing the pool out from under an in-flight run. After Close, Execute
// returns ErrPoolClosed (matching the Pool contract) rather than silently
// spawning workers nothing would ever release.
func (ps *PooledStrategy) Execute(ctx context.Context, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return Metrics{}, ErrPoolClosed
	}
	if ps.pool == nil || ps.pool.Procs() != s.P {
		if ps.pool != nil {
			ps.pool.Close()
		}
		ps.pool = NewPool(s.P)
	}
	return ps.pool.Run(ctx, s, deps, body)
}

// Close releases the underlying pool's workers; subsequent Execute calls
// return ErrPoolClosed. Close is idempotent.
func (ps *PooledStrategy) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.closed = true
	if ps.pool != nil {
		err := ps.pool.Close()
		ps.pool = nil
		return err
	}
	return nil
}
