package executor

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"doconsider/internal/wavefront"
)

func TestRunGuidedSelfScheduledRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		deps := randomDAG(rng, 300, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		order := SortedOrder(wf)
		for _, p := range []int{1, 2, 4, 8} {
			for _, minChunk := range []int{1, 8} {
				body, check := depChecker(t, deps)
				m := RunGuidedSelfScheduled(order, deps, p, minChunk, body)
				check()
				if m.Executed != 300 {
					t.Errorf("executed %d", m.Executed)
				}
			}
		}
	}
}

func TestRunGuidedChunksShrink(t *testing.T) {
	// With one worker, the first claim is the whole remainder: every index
	// executes; with many workers the claims interleave but coverage must
	// be exact (no index executed twice).
	n := 1000
	deps := wavefront.FromAdjacency(make([][]int32, n))
	wf, _ := wavefront.Compute(deps)
	order := SortedOrder(wf)
	counts := make([]atomic.Int32, n)
	RunGuidedSelfScheduled(order, deps, 6, 1, func(i int32) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d executed %d times", i, got)
		}
	}
}

func TestRunGuidedDegenerate(t *testing.T) {
	deps := wavefront.FromAdjacency(make([][]int32, 5))
	wf, _ := wavefront.Compute(deps)
	var count atomic.Int32
	m := RunGuidedSelfScheduled(SortedOrder(wf), deps, 0, 0, func(int32) { count.Add(1) })
	if m.Executed != 5 || count.Load() != 5 {
		t.Error("degenerate params misbehaved")
	}
}
