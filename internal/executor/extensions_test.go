package executor

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

func TestRunRotatingExecutesEverythingPTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	deps := randomDAG(rng, 200, 3)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	s := schedule.Global(wf, p)
	counts := make([]atomic.Int32, 200)
	m := RunRotating(s, func(proc int) Body {
		return func(i int32) { counts[i].Add(1) }
	})
	if m.Executed != int64(200*p) {
		t.Errorf("Executed = %d, want %d", m.Executed, 200*p)
	}
	for i := range counts {
		if got := counts[i].Load(); got != int32(p) {
			t.Fatalf("index %d executed %d times, want %d", i, got, p)
		}
	}
}

func TestRunRotatingPrivateBodies(t *testing.T) {
	// Each processor's body closes over a private accumulator; results must
	// be identical across processors (they all do all the work).
	deps := wavefront.FromAdjacency(make([][]int32, 50))
	wf, _ := wavefront.Compute(deps)
	s := schedule.Global(wf, 3)
	sums := make([]int64, 3)
	RunRotating(s, func(proc int) Body {
		return func(i int32) { sums[proc] += int64(i) }
	})
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Errorf("rotating sums differ: %v", sums)
	}
	if sums[0] != 50*49/2 {
		t.Errorf("sum = %d, want %d", sums[0], 50*49/2)
	}
}

func TestRunSelfScheduledRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		deps := randomDAG(rng, 300, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		order := SortedOrder(wf)
		for _, p := range []int{1, 2, 4, 8} {
			for _, chunk := range []int{1, 4, 16} {
				body, check := depChecker(t, deps)
				m := RunSelfScheduled(order, deps, p, chunk, body)
				check()
				if m.Executed != 300 {
					t.Errorf("executed %d", m.Executed)
				}
			}
		}
	}
}

func TestRunSelfScheduledComputesCorrectValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	deps := wavefront.FromIndirection(ia)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64() * 0.5
		x0[i] = rng.NormFloat64()
	}
	xold := append([]float64(nil), x0...)
	mkBody := func(x []float64) Body {
		return func(i int32) {
			needed := ia[i]
			if needed >= i {
				x[i] = xold[i] + b[i]*xold[needed]
			} else {
				x[i] = xold[i] + b[i]*x[needed]
			}
		}
	}
	want := append([]float64(nil), x0...)
	RunSequential(n, mkBody(want))
	got := append([]float64(nil), x0...)
	RunSelfScheduled(SortedOrder(wf), deps, 6, 8, mkBody(got))
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSelfScheduledChunkBounds(t *testing.T) {
	deps := wavefront.FromAdjacency(make([][]int32, 10))
	wf, _ := wavefront.Compute(deps)
	var count atomic.Int32
	// chunk larger than n, nproc larger than n, degenerate values
	RunSelfScheduled(SortedOrder(wf), deps, 50, 100, func(int32) { count.Add(1) })
	if count.Load() != 10 {
		t.Errorf("executed %d, want 10", count.Load())
	}
	count.Store(0)
	RunSelfScheduled(SortedOrder(wf), deps, 0, 0, func(int32) { count.Add(1) })
	if count.Load() != 10 {
		t.Errorf("executed %d with degenerate params, want 10", count.Load())
	}
}
