package executor

import (
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/barrier"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// TimeBreakdown reports where the wall-clock time of a real (goroutine)
// parallel execution went, per simulated processor — the host-machine
// counterpart of the paper's §5.1.2 accounting.
type TimeBreakdown struct {
	P       int
	Total   time.Duration   // wall time of the whole run
	Busy    []time.Duration // per-processor time inside loop bodies
	Waiting []time.Duration // per-processor time spinning (deps) or in barriers
}

// RunSelfExecutingTimed is RunSelfExecuting with per-processor busy/wait
// wall-time accounting. The instrumentation adds two clock reads per index
// plus one per stalled dependence, so absolute numbers carry measurement
// overhead; use them for proportions, as the paper does. A body panic
// aborts the run (releasing all spinning peers) and re-raises on the
// caller's goroutine.
func RunSelfExecutingTimed(s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, TimeBreakdown) {
	bd := TimeBreakdown{
		P:       s.P,
		Busy:    make([]time.Duration, s.P),
		Waiting: make([]time.Duration, s.P),
	}
	var rc runControl
	ready := make([]int32, s.N)
	var spinChecks, spinWaits atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			check, disarm := exitGuard(&rc)
			defer check()
			busy, waiting, checks, waits := timedSelfProc(&rc, s.Proc(p), deps, ready, body)
			bd.Busy[p] = busy
			bd.Waiting[p] = waiting
			spinChecks.Add(checks)
			spinWaits.Add(waits)
			disarm()
		}(p)
	}
	wg.Wait()
	bd.Total = time.Since(start)
	if rc.panicked.Load() != 0 {
		panic(rc.panicVal)
	}
	m := Metrics{
		P:          s.P,
		Executed:   int64(s.N),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
	return m, bd
}

// timedSelfProc is runSelfProc with per-index busy/wait clock accounting.
func timedSelfProc(rc *runControl, idxs []int32, deps *wavefront.Deps, ready []int32, body Body) (busy, waiting time.Duration, checks, waits int64) {
	defer func() {
		if r := recover(); r != nil {
			rc.recordPanic(r)
		}
	}()
	for _, i := range idxs {
		if rc.isAborted() {
			return
		}
		for _, t := range deps.On(int(i)) {
			checks++
			if atomic.LoadInt32(&ready[t]) == 1 {
				continue
			}
			waits++
			w0 := time.Now()
			if !spinUntilReady(rc, &ready[t]) {
				waiting += time.Since(w0)
				return
			}
			waiting += time.Since(w0)
		}
		b0 := time.Now()
		body(i)
		busy += time.Since(b0)
		atomic.StoreInt32(&ready[i], 1)
	}
	return
}

// RunPreScheduledTimed is RunPreScheduled with per-processor busy/barrier
// wall-time accounting. A body panic aborts the run (remaining phases are
// skipped, barriers still observed) and re-raises on the caller's
// goroutine.
func RunPreScheduledTimed(s *schedule.Schedule, body Body) (Metrics, TimeBreakdown) {
	bd := TimeBreakdown{
		P:       s.P,
		Busy:    make([]time.Duration, s.P),
		Waiting: make([]time.Duration, s.P),
	}
	var rc runControl
	bar := barrier.NewSenseReversing(s.P)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			g := barrierGuard{rc: &rc, bar: bar, phases: s.NumPhases}
			defer g.check()
			var busy, waiting time.Duration
			for k := 0; k < s.NumPhases; k++ {
				if !rc.isAborted() {
					b0 := time.Now()
					runPhase(&rc, s.Phase(p, k), body)
					busy += time.Since(b0)
				}
				w0 := time.Now()
				bar.Wait()
				waiting += time.Since(w0)
				g.attended++
			}
			bd.Busy[p] = busy
			bd.Waiting[p] = waiting
			g.completed = true
		}(p)
	}
	wg.Wait()
	bd.Total = time.Since(start)
	if rc.panicked.Load() != 0 {
		panic(rc.panicVal)
	}
	return Metrics{P: s.P, Phases: s.NumPhases, Executed: int64(s.N)}, bd
}

// MaxWaiting returns the largest per-processor waiting share (waiting /
// (busy+waiting)), a load-imbalance indicator.
func (bd TimeBreakdown) MaxWaiting() float64 {
	worst := 0.0
	for p := 0; p < bd.P; p++ {
		tot := bd.Busy[p] + bd.Waiting[p]
		if tot == 0 {
			continue
		}
		if share := float64(bd.Waiting[p]) / float64(tot); share > worst {
			worst = share
		}
	}
	return worst
}
