package executor

import (
	"sync"

	"doconsider/internal/schedule"
)

// RunRotating reproduces the paper's rotating-processor experiment
// (§5.1.2): a perfectly load balanced run used to measure memory and
// communication access costs without synchronization waiting. "When
// executed on P processors, this program executes the schedules a total of
// P times. Each processor ends up executing the schedules assigned to all
// processors ... with control being shifted in a rotating fashion."
//
// Because every processor executes every index, each goroutine must work
// on private data: mkBody is called once per processor to build that
// processor's loop body (typically closing over a private copy of the
// solution vector). No synchronization occurs between iterations; shared
// ready-array traffic, if desired, must be simulated inside the body. A
// body (or mkBody) panic aborts the remaining rotations and re-raises on
// the caller's goroutine.
func RunRotating(s *schedule.Schedule, mkBody func(proc int) Body) Metrics {
	var rc runControl
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rc.recordPanic(r)
				}
			}()
			body := mkBody(p)
			// Rotate through all processors' schedules, starting at own.
			for r := 0; r < s.P; r++ {
				q := (p + r) % s.P
				for _, i := range s.Proc(q) {
					if rc.isAborted() {
						return
					}
					body(i)
				}
			}
		}(p)
	}
	wg.Wait()
	if rc.panicked.Load() != 0 {
		panic(rc.panicVal)
	}
	return Metrics{P: s.P, Executed: int64(s.N) * int64(s.P)}
}
