package executor

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"doconsider/internal/wavefront"
)

func TestRunOnTheFlyRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		deps := randomDAG(rng, 300, 3)
		depsOf := func(i int32) []int32 { return deps.On(int(i)) }
		for _, p := range []int{1, 2, 4, 9} {
			body, check := depChecker(t, deps)
			m := RunOnTheFly(300, p, depsOf, body)
			check()
			if m.Executed != 300 {
				t.Errorf("executed %d", m.Executed)
			}
		}
	}
}

func TestRunOnTheFlyDynamicDeps(t *testing.T) {
	// Dependences computed from values produced during execution: iteration
	// i depends on the iteration whose number is the value computed by
	// iteration i-1 (mod i). No inspector could know this in advance.
	n := 200
	vals := make([]int64, n)
	var computed [1]int64 // running checksum, updated atomically
	depsOf := func(i int32) []int32 {
		if i == 0 {
			return nil
		}
		return []int32{i - 1} // conservative: genuine dep chain
	}
	m := RunOnTheFly(n, 7, depsOf, func(i int32) {
		if i == 0 {
			vals[0] = 1
		} else {
			vals[i] = vals[i-1] + int64(i)
		}
		atomic.AddInt64(&computed[0], vals[i])
	})
	if m.Executed != int64(n) {
		t.Errorf("executed %d", m.Executed)
	}
	// The chain forces sequential values: vals[i] = 1 + sum(1..i).
	want := int64(1)
	for i := 1; i < n; i++ {
		want += int64(i)
		if vals[i] != want {
			t.Fatalf("vals[%d] = %d, want %d", i, vals[i], want)
		}
	}
}

func TestRunOnTheFlySpinAccounting(t *testing.T) {
	n := 64
	deps := make([][]int32, n)
	for i := 1; i < n; i++ {
		deps[i] = []int32{int32(i - 1)}
	}
	d := wavefront.FromAdjacency(deps)
	m := RunOnTheFly(n, 4, func(i int32) []int32 { return d.On(int(i)) }, func(int32) {})
	if m.SpinChecks < int64(n-1) {
		t.Errorf("SpinChecks = %d, want >= %d", m.SpinChecks, n-1)
	}
}

func TestRunOnTheFlyDegenerate(t *testing.T) {
	var count atomic.Int32
	m := RunOnTheFly(0, 4, func(int32) []int32 { return nil }, func(int32) { count.Add(1) })
	if m.Executed != 0 || count.Load() != 0 {
		t.Error("empty loop misbehaved")
	}
	m = RunOnTheFly(5, 0, func(int32) []int32 { return nil }, func(int32) { count.Add(1) })
	if m.Executed != 5 || count.Load() != 5 {
		t.Error("nproc=0 misbehaved")
	}
}
