// Package executor implements the paper's transformed loop structures: the
// pre-scheduled executor, which separates consecutive wavefronts with
// global synchronizations (Figure 5), and the self-executing executor,
// which replaces barriers with busy waits on a shared ready array
// (Figure 4). A doacross baseline — the self-executing mechanism over the
// original, unsorted index order — and a sequential reference are also
// provided.
//
// An executor runs a user loop body once per loop index. The body receives
// the index to execute; any data (solution vectors, matrices, indirection
// arrays) is captured in the closure. Bodies for distinct indices in the
// same wavefront run concurrently, so they must only write state owned by
// their own index.
package executor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"doconsider/internal/barrier"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Body is a loop body: it performs the work of loop index i.
type Body func(i int32)

// Kind names an execution strategy.
type Kind int

const (
	// Sequential executes indices 0..n-1 in order on one processor.
	Sequential Kind = iota
	// PreScheduled executes wavefront phases separated by barriers.
	PreScheduled
	// SelfExecuting busy-waits on a shared ready array instead of barriers.
	SelfExecuting
	// DoAcross is SelfExecuting over the natural (unsorted) index order.
	DoAcross
)

// String returns the executor name as used in the paper.
func (k Kind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case PreScheduled:
		return "pre-scheduled"
	case SelfExecuting:
		return "self-executing"
	case DoAcross:
		return "doacross"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Metrics reports per-run execution accounting, the experimental raw
// material of §5.1.2 ("Where Does the Time Go").
type Metrics struct {
	P          int   // processors
	Phases     int   // barrier phases executed (pre-scheduled only)
	Executed   int64 // loop bodies run
	SpinChecks int64 // shared-array reads while busy-waiting (self-exec)
	SpinWaits  int64 // dependences that were not ready on first check
}

// RunSequential executes body for i = 0..n-1 in order.
func RunSequential(n int, body Body) Metrics {
	for i := int32(0); int(i) < n; i++ {
		body(i)
	}
	return Metrics{P: 1, Executed: int64(n)}
}

// RunPreScheduled executes the schedule with one goroutine per processor
// and a global synchronization between consecutive phases (paper Figure 5:
// the NEWPHASE flag becomes a phase loop around a reusable barrier).
func RunPreScheduled(s *schedule.Schedule, body Body) Metrics {
	if s.P == 1 {
		for _, i := range s.Indices[0] {
			body(i)
		}
		return Metrics{P: 1, Phases: s.NumPhases, Executed: int64(s.N)}
	}
	bar := barrier.NewSenseReversing(s.P)
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < s.NumPhases; k++ {
				for _, i := range s.Phase(p, k) {
					body(i)
				}
				bar.Wait()
			}
		}(p)
	}
	wg.Wait()
	return Metrics{P: s.P, Phases: s.NumPhases, Executed: int64(s.N)}
}

// RunSelfExecuting executes the schedule with one goroutine per processor.
// A shared ready array indicates whether each index has been computed;
// before running index i the executor busy-waits until every dependence of
// i is marked complete (paper Figure 4, lines 3a-3c).
//
// The schedule may be any of global, local or natural order; deps must be
// acyclic (for backward-only dependences this is automatic). Progress is
// guaranteed for any schedule in which each processor's list is ordered
// consistently with some topological order of deps restricted to that
// processor — wavefront-sorted and natural orders both qualify.
func RunSelfExecuting(s *schedule.Schedule, deps *wavefront.Deps, body Body) Metrics {
	ready := make([]int32, s.N)
	if s.P == 1 {
		// Degenerate case: the local order itself must be executable.
		for _, i := range s.Indices[0] {
			body(i)
			ready[i] = 1
		}
		return Metrics{P: 1, Executed: int64(s.N)}
	}
	var spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var checks, waits int64
			for _, i := range s.Indices[p] {
				for _, t := range deps.On(int(i)) {
					checks++
					if atomic.LoadInt32(&ready[t]) == 1 {
						continue
					}
					waits++
					for atomic.LoadInt32(&ready[t]) != 1 {
						runtime.Gosched()
					}
				}
				body(i)
				atomic.StoreInt32(&ready[i], 1)
			}
			spinChecks.Add(checks)
			spinWaits.Add(waits)
		}(p)
	}
	wg.Wait()
	return Metrics{
		P:          s.P,
		Executed:   int64(s.N),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
}

// RunDoAcross executes indices in their original order striped across
// nproc processors with busy-wait synchronization — the paper's doacross
// comparison loop (§5.1.2): "the self-executing loop is a doacross loop
// with a reordered index set".
func RunDoAcross(n, nproc int, deps *wavefront.Deps, body Body) Metrics {
	s := schedule.Natural(n, nproc, schedule.Striped)
	return RunSelfExecuting(s, deps, body)
}

// Run dispatches on kind. For Sequential and DoAcross the schedule supplies
// only N and P.
func Run(kind Kind, s *schedule.Schedule, deps *wavefront.Deps, body Body) Metrics {
	switch kind {
	case Sequential:
		return RunSequential(s.N, body)
	case PreScheduled:
		return RunPreScheduled(s, body)
	case SelfExecuting:
		return RunSelfExecuting(s, deps, body)
	case DoAcross:
		return RunDoAcross(s.N, s.P, deps, body)
	default:
		panic("executor: unknown kind")
	}
}
