// Package executor implements the paper's transformed loop structures: the
// pre-scheduled executor, which separates consecutive wavefronts with
// global synchronizations (Figure 5), and the self-executing executor,
// which replaces barriers with busy waits on a shared ready array
// (Figure 4). A doacross baseline — the self-executing mechanism over the
// original, unsorted index order — a sequential reference, and a pooled
// executor that keeps a persistent set of workers across runs are also
// provided.
//
// An executor runs a user loop body once per loop index. The body receives
// the index to execute; any data (solution vectors, matrices, indirection
// arrays) is captured in the closure. Bodies for distinct indices in the
// same wavefront run concurrently, so they must only write state owned by
// their own index.
//
// Execution strategies are pluggable: each is a Strategy registered by
// name (see Register), and the Kind constants name the built-in ones. The
// context-aware entry points (RunCtx, Strategy.Execute) guarantee that a
// cancelled context or a panicking loop body releases every busy-waiting
// worker instead of deadlocking the run.
package executor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"doconsider/internal/barrier"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Body is a loop body: it performs the work of loop index i.
type Body func(i int32)

// Kind names a built-in execution strategy.
type Kind int

const (
	// Sequential executes indices 0..n-1 in order on one processor.
	Sequential Kind = iota
	// PreScheduled executes wavefront phases separated by barriers.
	PreScheduled
	// SelfExecuting busy-waits on a shared ready array instead of barriers.
	SelfExecuting
	// DoAcross is SelfExecuting over the natural (unsorted) index order.
	DoAcross
	// Pooled is SelfExecuting on a persistent worker pool: goroutines are
	// spawned once and reused, so repeated runs of a prepared schedule pay
	// no spawn or allocation cost (the paper's amortization argument,
	// §5.1.1, applied to the runtime itself).
	Pooled
)

// String returns the executor name as used in the paper (and in the
// strategy registry).
func (k Kind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case PreScheduled:
		return "pre-scheduled"
	case SelfExecuting:
		return "self-executing"
	case DoAcross:
		return "doacross"
	case Pooled:
		return "pooled"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NewStrategy returns a fresh instance of the strategy this kind names.
func (k Kind) NewStrategy() (Strategy, error) { return NewStrategy(k.String()) }

// KindByName resolves a built-in kind from its registry name — the
// inverse of Kind.String for the five built-ins. (Strategies registered
// by callers have no Kind; instantiate those with NewStrategy.)
func KindByName(name string) (Kind, error) {
	for _, k := range []Kind{Sequential, PreScheduled, SelfExecuting, DoAcross, Pooled} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("executor: unknown kind %q", name)
}

// Metrics reports per-run execution accounting, the experimental raw
// material of §5.1.2 ("Where Does the Time Go").
type Metrics struct {
	P          int   // processors
	Phases     int   // barrier phases executed (pre-scheduled only)
	Executed   int64 // loop bodies run
	SpinChecks int64 // shared-array reads while busy-waiting (self-exec)
	SpinWaits  int64 // dependences that were not ready on first check
}

// MustMetrics unwraps an Execute result for non-context entry points:
// with an uncancellable context the only possible error is a body panic,
// which is re-raised on the caller's goroutine; any other error (a
// cancelled context, a misconfigured pool) also panics.
func MustMetrics(m Metrics, err error) Metrics {
	if err == nil {
		return m
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe.Value)
	}
	panic(err)
}

// RunSequential executes body for i = 0..n-1 in order.
func RunSequential(n int, body Body) Metrics {
	for i := int32(0); int(i) < n; i++ {
		body(i)
	}
	return Metrics{P: 1, Executed: int64(n)}
}

// RunPreScheduled executes the schedule with one goroutine per processor
// and a global synchronization between consecutive phases (paper Figure 5:
// the NEWPHASE flag becomes a phase loop around a reusable barrier).
func RunPreScheduled(s *schedule.Schedule, body Body) Metrics {
	return MustMetrics(runPreScheduledCtx(context.Background(), s, body))
}

// runPreScheduledCtx is the context-aware pre-scheduled executor. Workers
// that observe an abort (body panic or cancellation) stop executing bodies
// but keep arriving at every remaining barrier, so the phase structure
// unwinds without deadlock.
func runPreScheduledCtx(ctx context.Context, s *schedule.Schedule, body Body) (Metrics, error) {
	if s.P == 1 {
		m, err := runSequentialOrder(ctx, s.Proc(0), body)
		m.Phases = s.NumPhases
		return m, err
	}
	var rc runControl
	rc.reset(ctx)
	bar := barrier.NewSenseReversing(s.P)
	var executed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			g := barrierGuard{rc: &rc, bar: bar, phases: s.NumPhases}
			defer g.check()
			var ran int64
			for k := 0; k < s.NumPhases; k++ {
				if !rc.isAborted() {
					ran += runPhase(&rc, s.Phase(p, k), body)
				}
				bar.Wait()
				g.attended++
			}
			executed.Add(ran)
			g.completed = true
		}(p)
	}
	wg.Wait()
	m := Metrics{P: s.P, Phases: s.NumPhases, Executed: executed.Load()}
	return m, rc.err(ctx)
}

// runPhase executes one processor's share of one phase, converting a body
// panic into a run abort. It returns the number of bodies executed.
func runPhase(rc *runControl, idxs []int32, body Body) (ran int64) {
	defer func() {
		if r := recover(); r != nil {
			rc.recordPanic(r)
		}
	}()
	for _, i := range idxs {
		if rc.stop() {
			return ran
		}
		body(i)
		ran++
	}
	return ran
}

// runSequentialOrder executes an explicit index order on one processor
// with cancellation checks and panic capture. The loop is written
// directly (not over an iter.Seq): a range-over-func loop body is a
// closure over the function's locals, which heap-allocates on every
// call — garbage the serving warm path is gated against.
func runSequentialOrder(ctx context.Context, order []int32, body Body) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	done := ctx.Done()
	executed := int64(0)
	for _, i := range order {
		if done != nil {
			select {
			case <-done:
				return Metrics{P: 1, Executed: executed}, ctx.Err()
			default:
			}
		}
		body(i)
		executed++
	}
	return Metrics{P: 1, Executed: executed}, nil
}

// RunSelfExecuting executes the schedule with one goroutine per processor.
// A shared ready array indicates whether each index has been computed;
// before running index i the executor busy-waits until every dependence of
// i is marked complete (paper Figure 4, lines 3a-3c).
//
// The schedule may be any of global, local or natural order; deps must be
// acyclic (for backward-only dependences this is automatic). Progress is
// guaranteed for any schedule in which each processor's list is ordered
// consistently with some topological order of deps restricted to that
// processor — wavefront-sorted and natural orders both qualify.
func RunSelfExecuting(s *schedule.Schedule, deps *wavefront.Deps, body Body) Metrics {
	return MustMetrics(runSelfExecutingCtx(context.Background(), s, deps, body))
}

// runSelfExecutingCtx is the context-aware self-executing executor. The
// shared abort flag is checked in every busy-wait spin, so a panicking or
// cancelled run releases all spinning peers.
func runSelfExecutingCtx(ctx context.Context, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error) {
	if s.P == 1 {
		// Degenerate case: the local order itself must be executable.
		return runSequentialOrder(ctx, s.Proc(0), body)
	}
	var rc runControl
	rc.reset(ctx)
	ready := make([]int32, s.N)
	var executed, spinChecks, spinWaits atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < s.P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			check, disarm := exitGuard(&rc)
			defer check()
			ran, checks, waits := runSelfProc(&rc, s.Proc(p), deps, ready, body)
			executed.Add(ran)
			spinChecks.Add(checks)
			spinWaits.Add(waits)
			disarm()
		}(p)
	}
	wg.Wait()
	m := Metrics{
		P:          s.P,
		Executed:   executed.Load(),
		SpinChecks: spinChecks.Load(),
		SpinWaits:  spinWaits.Load(),
	}
	return m, rc.err(ctx)
}

// runSelfProc executes one processor's list under busy-wait dependence
// synchronization, publishing completions in ready (1 = done).
func runSelfProc(rc *runControl, idxs []int32, deps *wavefront.Deps, ready []int32, body Body) (ran, checks, waits int64) {
	defer func() {
		if r := recover(); r != nil {
			rc.recordPanic(r)
		}
	}()
	for _, i := range idxs {
		if rc.stop() {
			return
		}
		for _, t := range deps.On(int(i)) {
			checks++
			if atomic.LoadInt32(&ready[t]) == 1 {
				continue
			}
			waits++
			if !spinUntilReady(rc, &ready[t]) {
				return
			}
		}
		body(i)
		ran++
		atomic.StoreInt32(&ready[i], 1)
	}
	return
}

// spinUntilReady busy-waits for a ready flag, yielding between checks; it
// returns false if the run aborted while waiting.
func spinUntilReady(rc *runControl, flag *int32) bool {
	for atomic.LoadInt32(flag) != 1 {
		if rc.stop() {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// RunDoAcross executes indices in their original order striped across
// nproc processors with busy-wait synchronization — the paper's doacross
// comparison loop (§5.1.2): "the self-executing loop is a doacross loop
// with a reordered index set".
func RunDoAcross(n, nproc int, deps *wavefront.Deps, body Body) Metrics {
	s := schedule.Natural(n, nproc, schedule.Striped)
	return RunSelfExecuting(s, deps, body)
}

// Run dispatches on kind. For Sequential and DoAcross the schedule supplies
// only N and P. A body panic propagates to the caller.
func Run(kind Kind, s *schedule.Schedule, deps *wavefront.Deps, body Body) Metrics {
	return MustMetrics(RunCtx(context.Background(), kind, s, deps, body))
}

// RunCtx dispatches on kind through the strategy registry, with
// cancellation support: if ctx is cancelled mid-run, every worker
// (including busy-waiting ones) is released and ctx.Err() is returned; if
// the body panics, a *PanicError is returned.
//
// Stateful strategies (Pooled) are created and torn down around the call;
// to amortize the pool across runs, hold a PooledStrategy (or use
// core.Runtime with the Pooled kind).
func RunCtx(ctx context.Context, kind Kind, s *schedule.Schedule, deps *wavefront.Deps, body Body) (Metrics, error) {
	strat, err := kind.NewStrategy()
	if err != nil {
		return Metrics{}, err
	}
	if c, ok := strat.(io.Closer); ok {
		defer c.Close()
	}
	return strat.Execute(ctx, s, deps, body)
}
