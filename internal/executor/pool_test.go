package executor

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

func TestPooledRespectsDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		deps := randomDAG(rng, 400, 3)
		wf, err := wavefront.Compute(deps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 9} {
			pool := NewPool(p)
			for _, s := range []*schedule.Schedule{
				schedule.Global(wf, p),
				schedule.Local(wf, p, schedule.Striped),
				schedule.Natural(deps.N, p, schedule.Striped),
			} {
				body, check := depChecker(t, deps)
				m, err := pool.Run(context.Background(), s, deps, body)
				if err != nil {
					t.Fatal(err)
				}
				check()
				if m.Executed != 400 {
					t.Errorf("executed %d", m.Executed)
				}
			}
			pool.Close()
		}
	}
}

func TestPooledComputesCorrectValuesAcrossRuns(t *testing.T) {
	// The epoch-stamped ready array must not leak completions between
	// runs: repeat the paper's simple loop many times on one pool and
	// compare each sweep against the sequential reference.
	rng := rand.New(rand.NewSource(12))
	n := 300
	ia := make([]int32, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(n))
	}
	deps := wavefront.FromIndirection(ia)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	s := schedule.Global(wf, 4)
	pool := NewPool(4)
	defer pool.Close()
	xSeq := make([]float64, n)
	xPar := make([]float64, n)
	xold := make([]float64, n)
	for i := range xSeq {
		xSeq[i] = rng.NormFloat64()
		xPar[i] = xSeq[i]
	}
	mkBody := func(x, xold []float64) Body {
		return func(i int32) {
			needed := ia[i]
			if needed >= i {
				x[i] = xold[i] + b[i]*xold[needed]
			} else {
				x[i] = xold[i] + b[i]*x[needed]
			}
		}
	}
	for sweep := 0; sweep < 25; sweep++ {
		copy(xold, xSeq)
		RunSequential(n, mkBody(xSeq, xold))
		copy(xold, xPar)
		if _, err := pool.Run(context.Background(), s, deps, mkBody(xPar, xold)); err != nil {
			t.Fatal(err)
		}
		for i := range xPar {
			if xPar[i] != xSeq[i] {
				t.Fatalf("sweep %d: x[%d] = %v, want %v", sweep, i, xPar[i], xSeq[i])
			}
		}
	}
}

func TestPoolSpawnsNoGoroutinesPerRun(t *testing.T) {
	deps := randomDAG(rand.New(rand.NewSource(13)), 200, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 4)
	pool := NewPool(4)
	defer pool.Close()
	body := func(int32) {}
	if _, err := pool.Run(context.Background(), s, deps, body); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if _, err := pool.Run(context.Background(), s, deps, body); err != nil {
			t.Fatal(err)
		}
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutine count grew across pooled runs: %d -> %d", before, after)
	}
}

func TestPoolZeroAllocsPerRun(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	deps := randomDAG(rand.New(rand.NewSource(14)), 256, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 4)
	pool := NewPool(4)
	defer pool.Close()
	body := func(int32) {}
	ctx := context.Background()
	// Warm up: sizes the epoch array.
	if _, err := pool.Run(ctx, s, deps, body); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := pool.Run(ctx, s, deps, body); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled Run allocates %v objects per call, want 0", allocs)
	}
}

func TestPoolCancellationReleasesSpinners(t *testing.T) {
	// A two-index chain split across two workers: worker 1 busy-waits on
	// index 0, whose body blocks until the test cancels the context. The
	// spinner must be released by the cancellation, not by completion.
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 2)
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	started := make(chan struct{})
	var ranDependent atomic.Bool
	body := func(i int32) {
		if i == 0 {
			close(started)
			<-release
			return
		}
		ranDependent.Store(true)
	}
	go func() {
		<-started
		cancel()
		// Give the spinner time to observe the abort while index 0 is
		// still blocked, then let index 0's body return.
		time.Sleep(200 * time.Millisecond)
		close(release)
	}()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = pool.Run(ctx, s, deps, body)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled pooled run deadlocked")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", runErr)
	}
	if ranDependent.Load() {
		t.Error("dependent index executed after cancellation")
	}
	// The pool must remain usable after a cancelled run.
	if _, err := pool.Run(context.Background(), s, deps, func(int32) {}); err != nil {
		t.Errorf("pool unusable after cancellation: %v", err)
	}
}

func TestPoolBodyPanicReleasesPeers(t *testing.T) {
	// Index 0 panics; the worker spinning on it must be released and the
	// panic surfaced as a *PanicError.
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 2)
	pool := NewPool(2)
	defer pool.Close()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = pool.Run(context.Background(), s, deps, func(i int32) {
			if i == 0 {
				panic("boom")
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("panicking pooled run deadlocked")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) || pe.Value != "boom" {
		t.Errorf("err = %v, want PanicError(boom)", runErr)
	}
	// The pool must remain usable after a panicking run.
	if _, err := pool.Run(context.Background(), s, deps, func(int32) {}); err != nil {
		t.Errorf("pool unusable after body panic: %v", err)
	}
}

func TestPoolBodyGoexitDoesNotDeadlock(t *testing.T) {
	// runtime.Goexit kills the worker without a recoverable panic (the
	// t.FailNow failure mode): the run must abort with ErrWorkerExited and
	// a replacement worker must keep the pool usable.
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 2)
	pool := NewPool(2)
	defer pool.Close()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = pool.Run(context.Background(), s, deps, func(i int32) {
			if i == 0 {
				runtime.Goexit()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Goexit in body deadlocked the pooled run")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) || pe.Value != ErrWorkerExited {
		t.Errorf("err = %v, want PanicError(ErrWorkerExited)", runErr)
	}
	if _, err := pool.Run(context.Background(), s, deps, func(int32) {}); err != nil {
		t.Errorf("pool unusable after body Goexit: %v", err)
	}
}

func TestPreScheduledBodyGoexitDoesNotDeadlock(t *testing.T) {
	// A Goexit mid-phase must not strand peers at the phase barrier.
	deps := randomDAG(rand.New(rand.NewSource(17)), 100, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 4)
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = RunCtx(context.Background(), PreScheduled, s, deps, func(i int32) {
			if i == 30 {
				runtime.Goexit()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Goexit in body deadlocked the pre-scheduled run at a barrier")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) || pe.Value != ErrWorkerExited {
		t.Errorf("err = %v, want PanicError(ErrWorkerExited)", runErr)
	}
}

func TestSelfExecutingBodyGoexitDoesNotDeadlock(t *testing.T) {
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 2)
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = RunCtx(context.Background(), SelfExecuting, s, deps, func(i int32) {
			if i == 0 {
				runtime.Goexit()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Goexit in body deadlocked the self-executing run")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) || pe.Value != ErrWorkerExited {
		t.Errorf("err = %v, want PanicError(ErrWorkerExited)", runErr)
	}
}

func TestPoolConcurrentRunsSerialize(t *testing.T) {
	// Concurrent Run calls on one pool must serialize, not interleave:
	// hammer the pool from several goroutines under the race detector.
	deps := randomDAG(rand.New(rand.NewSource(15)), 200, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 3)
	pool := NewPool(3)
	defer pool.Close()
	var inRun atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				count := atomic.Int64{}
				m, err := pool.Run(context.Background(), s, deps, func(int32) {
					// At most P bodies of ONE run may be in flight; if two
					// runs interleaved, the count could exceed the pool size.
					if v := inRun.Add(1); v > int32(s.P) {
						t.Errorf("%d bodies in flight, pool has %d workers", v, s.P)
					}
					count.Add(1)
					inRun.Add(-1)
				})
				if err != nil {
					t.Error(err)
					return
				}
				if m.Executed != int64(deps.N) || count.Load() != int64(deps.N) {
					t.Errorf("run executed %d bodies, metrics say %d, want %d",
						count.Load(), m.Executed, deps.N)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolRejectsMismatchedSchedule(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	s := schedule.Natural(10, 3, schedule.Striped)
	if _, err := pool.Run(context.Background(), s, wavefront.FromAdjacency(make([][]int32, 10)), func(int32) {}); err == nil {
		t.Error("pool accepted schedule with wrong processor count")
	}
}

func TestPoolClosedRun(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // idempotent
	s := schedule.Natural(4, 2, schedule.Striped)
	deps := wavefront.FromAdjacency(make([][]int32, 4))
	if _, err := pool.Run(context.Background(), s, deps, func(int32) {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("err = %v, want ErrPoolClosed", err)
	}
}

func TestSelfExecutingCancellationReleasesSpinners(t *testing.T) {
	// Same regression as the pooled test, for the spawn-per-run
	// self-executing executor.
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 2)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	started := make(chan struct{})
	body := func(i int32) {
		if i == 0 {
			close(started)
			<-release
		}
	}
	go func() {
		<-started
		cancel()
		time.Sleep(200 * time.Millisecond)
		close(release)
	}()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = RunCtx(ctx, SelfExecuting, s, deps, body)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled self-executing run deadlocked")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", runErr)
	}
}

func TestSelfExecutingPanicReleasesPeers(t *testing.T) {
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 2)
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = RunCtx(context.Background(), SelfExecuting, s, deps, func(i int32) {
			if i == 0 {
				panic("chain head failed")
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("panicking self-executing run deadlocked")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) {
		t.Errorf("err = %v, want *PanicError", runErr)
	}
}

func TestPreScheduledPanicUnwindsBarriers(t *testing.T) {
	// A panic in one phase must not strand peers at the phase barrier.
	deps := randomDAG(rand.New(rand.NewSource(16)), 100, 2)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.Global(wf, 4)
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = RunCtx(context.Background(), PreScheduled, s, deps, func(i int32) {
			if i == 50 {
				panic("mid-phase failure")
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("panicking pre-scheduled run deadlocked at a barrier")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) {
		t.Errorf("err = %v, want *PanicError", runErr)
	}
}

func TestLegacyRunRethrowsBodyPanic(t *testing.T) {
	deps := wavefront.FromAdjacency([][]int32{{}, {0}})
	wf, _ := wavefront.Compute(deps)
	s := schedule.Global(wf, 2)
	defer func() {
		if r := recover(); r != "legacy boom" {
			t.Errorf("recovered %v, want legacy boom", r)
		}
	}()
	RunSelfExecuting(s, deps, func(i int32) {
		if i == 0 {
			panic("legacy boom")
		}
	})
}
