package sparse

import (
	"fmt"
	"io"
)

// Spy writes an ASCII density plot of the matrix, at most maxDim
// characters wide/tall; each cell aggregates a block of the matrix and
// prints a darkness ramp by stored-entry density. Handy for inspecting
// the structure the workload generator and reorderings produce.
func (a *CSR) Spy(w io.Writer, maxDim int) error {
	if maxDim < 1 {
		maxDim = 1
	}
	rows, cols := a.N, a.M
	rdim, cdim := rows, cols
	if rdim > maxDim {
		rdim = maxDim
	}
	if cdim > maxDim {
		cdim = maxDim
	}
	if rdim == 0 || cdim == 0 {
		_, err := fmt.Fprintln(w, "(empty matrix)")
		return err
	}
	counts := make([][]int, rdim)
	for i := range counts {
		counts[i] = make([]int, cdim)
	}
	for i := 0; i < rows; i++ {
		cs, _ := a.Row(i)
		bi := i * rdim / rows
		for _, c := range cs {
			counts[bi][int(c)*cdim/cols]++
		}
	}
	// Block area for density normalization.
	blockArea := float64(rows) / float64(rdim) * float64(cols) / float64(cdim)
	ramp := []byte(" .:+*#@")
	if _, err := fmt.Fprintf(w, "%d x %d, %d entries\n", rows, cols, a.NNZ()); err != nil {
		return err
	}
	line := make([]byte, cdim)
	for i := 0; i < rdim; i++ {
		for j := 0; j < cdim; j++ {
			d := float64(counts[i][j]) / blockArea
			k := int(d * float64(len(ramp)-1) * 4) // saturate early: sparse blocks visible
			if counts[i][j] > 0 && k == 0 {
				k = 1
			}
			if k >= len(ramp) {
				k = len(ramp) - 1
			}
			line[j] = ramp[k]
		}
		if _, err := fmt.Fprintf(w, "|%s|\n", line); err != nil {
			return err
		}
	}
	return nil
}
