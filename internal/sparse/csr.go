// Package sparse provides compressed sparse row (CSR) matrices and the
// small set of sparse kernels the run-time loop parallelization system is
// built on: triplet assembly, matrix-vector products, triangular splits and
// structural queries.
//
// The package is deliberately minimal: it implements exactly the matrix
// substrate used by the paper's evaluation (sparse triangular systems from
// incomplete factorizations, and the synthetic dependence matrices from the
// workload generator), with both sequential and parallel kernels.
package sparse

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]].
// Column indices within a row are kept sorted in increasing order; Assemble
// and all constructors in this package establish that invariant. The
// sparsity pattern (RowPtr, ColIdx) is treated as immutable once built —
// StructureFingerprint memoizes a hash of it — while Val entries may be
// updated in place.
type CSR struct {
	N      int       // number of rows
	M      int       // number of columns
	RowPtr []int32   // length N+1
	ColIdx []int32   // length nnz
	Val    []float64 // length nnz

	structFp atomic.Uint64 // memoized StructureFingerprint; 0 = not yet computed
}

// Triplet is a single (row, col, value) entry used during assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// ErrShape reports a dimension mismatch between a matrix and an operand.
var ErrShape = errors.New("sparse: dimension mismatch")

// New returns an empty N×M matrix with capacity reserved for nnz entries.
func New(n, m, nnz int) *CSR {
	return &CSR{
		N:      n,
		M:      m,
		RowPtr: make([]int32, n+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// View returns an n×n matrix over the given slices without copying.
//
// The matrix borrows the slices: it stays valid exactly as long as the
// backing memory does, and the caller owns that lifetime. The binary
// wire path points views straight into a pooled request buffer, so a
// viewed matrix must not be retained past the request — anything that
// outlives the buffer (a cache, a plan, a response) must hold a Clone.
// The usual CSR invariants (sorted columns, immutable pattern) are the
// caller's to guarantee; CheckWellFormed verifies the structural ones.
func View(n int, rowPtr, colIdx []int32, val []float64) *CSR {
	return &CSR{N: n, M: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

// Assemble builds a CSR matrix from triplets. Duplicate (row, col) entries
// are summed, matching the usual finite-difference assembly convention.
// Entries outside the n×m bounds yield an error.
func Assemble(n, m int, ts []Triplet) (*CSR, error) {
	counts := make([]int32, n+1)
	for _, t := range ts {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= m {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) outside %dx%d", t.Row, t.Col, n, m)
		}
		counts[t.Row+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int32, len(ts))
	val := make([]float64, len(ts))
	next := make([]int32, n)
	copy(next, counts[:n])
	for _, t := range ts {
		p := next[t.Row]
		colIdx[p] = int32(t.Col)
		val[p] = t.Val
		next[t.Row]++
	}
	a := &CSR{N: n, M: m, RowPtr: counts, ColIdx: colIdx, Val: val}
	a.sortRows()
	a.sumDuplicates()
	return a, nil
}

// MustAssemble is Assemble but panics on error; it is intended for
// generators whose triplets are in-bounds by construction.
func MustAssemble(n, m int, ts []Triplet) *CSR {
	a, err := Assemble(n, m, ts)
	if err != nil {
		panic(err)
	}
	return a
}

// sortRows sorts the column indices (and values) within each row.
func (a *CSR) sortRows() {
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		row := rowView{cols: a.ColIdx[lo:hi], vals: a.Val[lo:hi]}
		sort.Sort(row)
	}
}

type rowView struct {
	cols []int32
	vals []float64
}

func (r rowView) Len() int           { return len(r.cols) }
func (r rowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// sumDuplicates merges equal-column entries within each (sorted) row.
func (a *CSR) sumDuplicates() {
	out := int32(0)
	newPtr := make([]int32, a.N+1)
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		newPtr[i] = out
		for p := lo; p < hi; {
			c := a.ColIdx[p]
			v := a.Val[p]
			p++
			for p < hi && a.ColIdx[p] == c {
				v += a.Val[p]
				p++
			}
			a.ColIdx[out] = c
			a.Val[out] = v
			out++
		}
	}
	newPtr[a.N] = out
	a.RowPtr = newPtr
	a.ColIdx = a.ColIdx[:out]
	a.Val = a.Val[:out]
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return int(a.RowPtr[i+1] - a.RowPtr[i]) }

// Row returns views of the column indices and values of row i.
// The views alias the matrix storage and must not be modified.
func (a *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// At returns the value at (i, j), or 0 if no entry is stored there.
// It performs a binary search within row i.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(cols[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && int(cols[lo]) == j {
		return vals[lo]
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		N:      a.N,
		M:      a.M,
		RowPtr: append([]int32(nil), a.RowPtr...),
		ColIdx: append([]int32(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// Dense expands the matrix to a dense row-major representation.
// Intended for tests on small matrices.
func (a *CSR) Dense() [][]float64 {
	d := make([][]float64, a.N)
	for i := range d {
		d[i] = make([]float64, a.M)
		cols, vals := a.Row(i)
		for k, c := range cols {
			d[i][c] += vals[k]
		}
	}
	return d
}

// Transpose returns the transpose in CSR form.
func (a *CSR) Transpose() *CSR {
	counts := make([]int32, a.M+1)
	for _, c := range a.ColIdx {
		counts[c+1]++
	}
	for j := 0; j < a.M; j++ {
		counts[j+1] += counts[j]
	}
	t := &CSR{
		N:      a.M,
		M:      a.N,
		RowPtr: counts,
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	next := make([]int32, a.M)
	copy(next, counts[:a.M])
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			p := next[c]
			t.ColIdx[p] = int32(i)
			t.Val[p] = vals[k]
			next[c]++
		}
	}
	return t
}

// StrictLower returns the strictly lower triangular part of a square matrix.
func (a *CSR) StrictLower() *CSR { return a.triangle(func(i, j int) bool { return j < i }) }

// StrictUpper returns the strictly upper triangular part of a square matrix.
func (a *CSR) StrictUpper() *CSR { return a.triangle(func(i, j int) bool { return j > i }) }

// LowerWithDiag returns the lower triangle including the diagonal.
func (a *CSR) LowerWithDiag() *CSR { return a.triangle(func(i, j int) bool { return j <= i }) }

// UpperWithDiag returns the upper triangle including the diagonal.
func (a *CSR) UpperWithDiag() *CSR { return a.triangle(func(i, j int) bool { return j >= i }) }

func (a *CSR) triangle(keep func(i, j int) bool) *CSR {
	t := New(a.N, a.M, a.NNZ())
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if keep(i, int(c)) {
				t.ColIdx = append(t.ColIdx, c)
				t.Val = append(t.Val, vals[k])
			}
		}
		t.RowPtr[i+1] = int32(len(t.ColIdx))
	}
	return t
}

// Diag returns a copy of the diagonal of a square matrix; absent diagonal
// entries are reported as zero.
func (a *CSR) Diag() []float64 {
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// HasFullDiag reports whether every diagonal entry is stored and non-zero.
func (a *CSR) HasFullDiag() bool {
	for i := 0; i < a.N; i++ {
		if a.At(i, i) == 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two matrices have identical structure and values.
func Equal(a, b *CSR) bool {
	if a.N != b.N || a.M != b.M || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// CheckWellFormed validates the CSR invariants: monotone row pointers,
// in-range sorted column indices. It returns a descriptive error on the
// first violation found.
func (a *CSR) CheckWellFormed() error {
	if len(a.RowPtr) != a.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.N+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	if int(a.RowPtr[a.N]) != len(a.ColIdx) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent nnz: RowPtr[N]=%d ColIdx=%d Val=%d",
			a.RowPtr[a.N], len(a.ColIdx), len(a.Val))
	}
	for i := 0; i < a.N; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		if a.RowPtr[i] < 0 || int(a.RowPtr[i+1]) > len(a.ColIdx) {
			return fmt.Errorf("sparse: RowPtr out of range at row %d", i)
		}
		cols, _ := a.Row(i)
		for k, c := range cols {
			if c < 0 || int(c) >= a.M {
				return fmt.Errorf("sparse: row %d has out-of-range column %d", i, c)
			}
			if k > 0 && cols[k-1] >= c {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, k)
			}
		}
	}
	return nil
}
