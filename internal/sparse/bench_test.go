package sparse

import (
	"math/rand"
	"testing"
)

func benchMatrix(n, nnzPerRow int) *CSR {
	rng := rand.New(rand.NewSource(1))
	ts := make([]Triplet, 0, n*nnzPerRow)
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{Row: i, Col: i, Val: 4})
		for k := 1; k < nnzPerRow; k++ {
			ts = append(ts, Triplet{Row: i, Col: rng.Intn(n), Val: -1})
		}
	}
	a, err := Assemble(n, n, ts)
	if err != nil {
		panic(err)
	}
	return a
}

func BenchmarkAssemble(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ts := make([]Triplet, 50000)
	for k := range ts {
		ts[k] = Triplet{Row: rng.Intn(10000), Col: rng.Intn(10000), Val: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(10000, 10000, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatVecCSR(b *testing.B) {
	a := benchMatrix(20000, 5)
	x := make([]float64, a.M)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.MatVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranspose(b *testing.B) {
	a := benchMatrix(10000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Transpose()
	}
}

func BenchmarkAt(b *testing.B) {
	a := benchMatrix(5000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.At(i%a.N, (i*7)%a.M)
	}
}
