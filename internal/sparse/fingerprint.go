package sparse

import (
	"math"

	"doconsider/internal/fphash"
)

// StructureFingerprint returns a 64-bit hash of the sparsity pattern:
// dimensions, row pointers and column indices. Values are excluded
// deliberately — inspector output (dependences, wavefronts, schedules)
// depends only on where the nonzeros sit, so two matrices with equal
// structure fingerprints can share one cached plan while supplying their
// own values at solve time.
//
// The hash is memoized on first call: the sparsity pattern of a CSR is
// immutable by this package's conventions (Val entries may change,
// RowPtr/ColIdx must not). Callers that edit the pattern in place must
// not use StructureFingerprint.
func (a *CSR) StructureFingerprint() uint64 {
	if fp := a.structFp.Load(); fp != 0 {
		return fp
	}
	h := uint64(fphash.Offset)
	h = fphash.Mix(h, uint64(a.N))
	h = fphash.Mix(h, uint64(a.M))
	h = fphash.Words(h, a.RowPtr)
	h = fphash.Words(h, a.ColIdx)
	h = fphash.Final(h)
	if h == 0 {
		h = 1 // reserve 0 as the "not yet computed" sentinel
	}
	a.structFp.Store(h)
	return h
}

// ContentFingerprint returns a 64-bit hash of the full matrix content:
// the sparsity pattern plus the stored values. Unlike
// StructureFingerprint it is not memoized — Val entries may legally
// change in place — and it identifies the matrix itself rather than its
// plan-sharing equivalence class. The serving layer uses it to let
// clients resubmit a recurring factor by reference instead of
// re-shipping (and re-parsing) the whole matrix.
func (a *CSR) ContentFingerprint() uint64 {
	h := a.StructureFingerprint()
	h = fphash.Mix(h, uint64(len(a.Val)))
	for _, v := range a.Val {
		h = fphash.Mix(h, math.Float64bits(v))
	}
	return fphash.Final(h)
}
