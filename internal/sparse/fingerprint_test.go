package sparse

import "testing"

func TestStructureFingerprint(t *testing.T) {
	ts := []Triplet{{0, 0, 1}, {1, 0, 2}, {1, 1, 3}}
	a1, err := Assemble(2, 2, ts)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assemble(2, 2, ts)
	if err != nil {
		t.Fatal(err)
	}
	if a1.StructureFingerprint() != a2.StructureFingerprint() {
		t.Fatal("identical patterns fingerprint differently")
	}
	// Values must not enter the hash — including after the memo is set.
	for i := range a2.Val {
		a2.Val[i] *= 7
	}
	a3, err := Assemble(2, 2, []Triplet{{0, 0, 9}, {1, 0, 9}, {1, 1, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if a3.StructureFingerprint() != a1.StructureFingerprint() {
		t.Fatal("value changes altered the structural fingerprint")
	}
	// A different pattern must differ.
	a4, err := Assemble(2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a4.StructureFingerprint() == a1.StructureFingerprint() {
		t.Fatal("different patterns share a fingerprint")
	}
	if a1.StructureFingerprint() == 0 {
		t.Fatal("fingerprint used the uncomputed sentinel")
	}
}

func TestContentFingerprint(t *testing.T) {
	a := MustAssemble(2, 2, []Triplet{{0, 0, 1}, {1, 0, 2}, {1, 1, 3}})
	b := MustAssemble(2, 2, []Triplet{{0, 0, 1}, {1, 0, 2}, {1, 1, 3}})
	if a.ContentFingerprint() != b.ContentFingerprint() {
		t.Fatal("equal matrices have different content fingerprints")
	}
	c := a.Clone()
	c.Val[1] = 99
	if a.StructureFingerprint() != c.StructureFingerprint() {
		t.Fatal("value edit changed the structure fingerprint")
	}
	if a.ContentFingerprint() == c.ContentFingerprint() {
		t.Fatal("value edit did not change the content fingerprint")
	}
	// Not memoized: an in-place value update must be reflected.
	before := c.ContentFingerprint()
	c.Val[0]++
	if c.ContentFingerprint() == before {
		t.Fatal("in-place value update not reflected in content fingerprint")
	}
}
