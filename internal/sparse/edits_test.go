package sparse

import "testing"

func editTestMatrix() *CSR {
	return MustAssemble(4, 4, []Triplet{
		{0, 0, 1}, {1, 0, -1}, {1, 1, 2}, {2, 1, -2}, {2, 2, 3}, {3, 3, 4},
	})
}

func TestApplyRowEditsInsertDeleteUpsert(t *testing.T) {
	a := editTestMatrix()
	b, err := a.ApplyRowEdits([]RowEdit{
		{Row: 3, Insert: []EditEntry{{Col: 0, Val: 5}, {Col: 2, Val: 6}}},
		{Row: 2, Delete: []int32{1}},
		{Row: 1, Insert: []EditEntry{{Col: 0, Val: 9}}}, // upsert existing
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	want := MustAssemble(4, 4, []Triplet{
		{0, 0, 1}, {1, 0, 9}, {1, 1, 2}, {2, 2, 3},
		{3, 0, 5}, {3, 2, 6}, {3, 3, 4},
	})
	if !Equal(b, want) {
		t.Fatalf("edited matrix = %v, want %v", b.Dense(), want.Dense())
	}
	// The base is untouched (its pattern may back cached plans).
	if !Equal(a, editTestMatrix()) {
		t.Fatal("ApplyRowEdits mutated its receiver")
	}
}

func TestApplyRowEditsEmpty(t *testing.T) {
	a := editTestMatrix()
	b, err := a.ApplyRowEdits(nil)
	if err != nil || b != a {
		t.Fatalf("empty edit must return the receiver, got %v, %v", b, err)
	}
}

func TestApplyRowEditsErrors(t *testing.T) {
	a := editTestMatrix()
	cases := []struct {
		name  string
		edits []RowEdit
	}{
		{"row out of range", []RowEdit{{Row: 4}}},
		{"negative row", []RowEdit{{Row: -1}}},
		{"row twice", []RowEdit{{Row: 1, Delete: []int32{0}}, {Row: 1, Delete: []int32{1}}}},
		{"insert out of range", []RowEdit{{Row: 0, Insert: []EditEntry{{Col: 9, Val: 1}}}}},
		{"insert twice", []RowEdit{{Row: 0, Insert: []EditEntry{{Col: 2, Val: 1}, {Col: 2, Val: 2}}}}},
		{"delete missing", []RowEdit{{Row: 0, Delete: []int32{3}}}},
		{"delete twice", []RowEdit{{Row: 1, Delete: []int32{0, 0}}}},
		{"insert and delete", []RowEdit{{Row: 1, Insert: []EditEntry{{Col: 0, Val: 1}}, Delete: []int32{0}}}},
	}
	for _, c := range cases {
		if _, err := a.ApplyRowEdits(c.edits); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
