package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpySmall(t *testing.T) {
	a := mustAssembleT(t, 3, 3, []Triplet{
		{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {2, 0, 1},
	})
	var buf bytes.Buffer
	if err := a.Spy(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 x 3, 4 entries") {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Errorf("got %d lines", len(lines))
	}
	// Diagonal cells must be non-blank, (0,2) blank.
	if lines[1][1] == ' ' || lines[2][2] == ' ' || lines[3][3] == ' ' {
		t.Errorf("diagonal not marked:\n%s", out)
	}
	if lines[1][3] != ' ' {
		t.Errorf("(0,2) should be blank:\n%s", out)
	}
}

func TestSpyDownsamples(t *testing.T) {
	n := 100
	ts := make([]Triplet, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{Row: i, Col: i, Val: 1})
	}
	a := mustAssembleT(t, n, n, ts)
	var buf bytes.Buffer
	if err := a.Spy(&buf, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 21 {
		t.Errorf("expected 20 plot rows + header, got %d lines", len(lines))
	}
}

func TestSpyDegenerate(t *testing.T) {
	a := New(0, 0, 0)
	var buf bytes.Buffer
	if err := a.Spy(&buf, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty matrix not reported")
	}
	b := mustAssembleT(t, 2, 2, []Triplet{{0, 0, 1}})
	if err := b.Spy(&buf, 0); err != nil {
		t.Fatal(err)
	}
}
