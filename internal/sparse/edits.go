package sparse

import (
	"fmt"
	"sort"
)

// EditEntry is one nonzero inserted (or updated) by a row edit.
type EditEntry struct {
	Col int32   `json:"col"`
	Val float64 `json:"val"`
}

// RowEdit describes the change to one row's nonzeros: entries to insert
// or update, and columns to delete. It is the wire form of structural
// drift — the server's base_fp+edits request body carries a list of
// these — and the input to ApplyRowEdits.
type RowEdit struct {
	Row    int32       `json:"row"`
	Insert []EditEntry `json:"insert,omitempty"` // upsert: new entry, or new value for an existing one
	Delete []int32     `json:"delete,omitempty"` // columns removed; must be present
}

// ApplyRowEdits returns a new matrix with the edits applied; a is not
// modified (its pattern may back cached plans). Each row may appear at
// most once; inserts upsert (an existing column gets the new value),
// deletes require the column to be present, and a column may not be both
// inserted and deleted in one edit. Unedited rows are block-copied.
func (a *CSR) ApplyRowEdits(edits []RowEdit) (*CSR, error) {
	if len(edits) == 0 {
		return a, nil
	}
	type newRow struct {
		cols []int32
		vals []float64
	}
	rows := make(map[int32]newRow, len(edits))
	changed := make([]int32, 0, len(edits))
	for _, e := range edits {
		if e.Row < 0 || int(e.Row) >= a.N {
			return nil, fmt.Errorf("sparse: edit row %d outside [0,%d)", e.Row, a.N)
		}
		if _, dup := rows[e.Row]; dup {
			return nil, fmt.Errorf("sparse: row %d edited twice", e.Row)
		}
		cols, vals, err := a.editedRow(e)
		if err != nil {
			return nil, err
		}
		rows[e.Row] = newRow{cols, vals}
		changed = append(changed, e.Row)
	}
	sort.Slice(changed, func(x, y int) bool { return changed[x] < changed[y] })

	size := a.NNZ()
	for _, r := range changed {
		size += len(rows[r].cols) - a.RowNNZ(int(r))
	}
	out := &CSR{
		N:      a.N,
		M:      a.M,
		RowPtr: make([]int32, a.N+1),
		ColIdx: make([]int32, 0, size),
		Val:    make([]float64, 0, size),
	}
	prev := 0
	for _, r := range changed {
		out.ColIdx = append(out.ColIdx, a.ColIdx[a.RowPtr[prev]:a.RowPtr[r]]...)
		out.Val = append(out.Val, a.Val[a.RowPtr[prev]:a.RowPtr[r]]...)
		out.ColIdx = append(out.ColIdx, rows[r].cols...)
		out.Val = append(out.Val, rows[r].vals...)
		prev = int(r) + 1
	}
	out.ColIdx = append(out.ColIdx, a.ColIdx[a.RowPtr[prev]:]...)
	out.Val = append(out.Val, a.Val[a.RowPtr[prev]:]...)

	off, ci := int32(0), 0
	for i := 0; i < a.N; i++ {
		if ci < len(changed) && changed[ci] == int32(i) {
			off += int32(len(rows[int32(i)].cols)) - (a.RowPtr[i+1] - a.RowPtr[i])
			ci++
		}
		out.RowPtr[i+1] = a.RowPtr[i+1] + off
	}
	return out, nil
}

// editedRow materializes one edited row, sorted by column.
func (a *CSR) editedRow(e RowEdit) ([]int32, []float64, error) {
	oldCols, oldVals := a.Row(int(e.Row))
	ins := append([]EditEntry(nil), e.Insert...)
	sort.Slice(ins, func(x, y int) bool { return ins[x].Col < ins[y].Col })
	del := append([]int32(nil), e.Delete...)
	sort.Slice(del, func(x, y int) bool { return del[x] < del[y] })
	for k, en := range ins {
		if en.Col < 0 || int(en.Col) >= a.M {
			return nil, nil, fmt.Errorf("sparse: row %d inserts out-of-range column %d", e.Row, en.Col)
		}
		if k > 0 && ins[k-1].Col == en.Col {
			return nil, nil, fmt.Errorf("sparse: row %d inserts column %d twice", e.Row, en.Col)
		}
		if hasSorted(del, en.Col) {
			return nil, nil, fmt.Errorf("sparse: row %d both inserts and deletes column %d", e.Row, en.Col)
		}
	}
	for k, c := range del {
		if k > 0 && del[k-1] == c {
			return nil, nil, fmt.Errorf("sparse: row %d deletes column %d twice", e.Row, c)
		}
		if !hasSorted(oldCols, c) {
			return nil, nil, fmt.Errorf("sparse: row %d deletes column %d, not present", e.Row, c)
		}
	}
	cols := make([]int32, 0, len(oldCols)+len(ins))
	vals := make([]float64, 0, len(oldCols)+len(ins))
	oi, ii, di := 0, 0, 0
	for oi < len(oldCols) || ii < len(ins) {
		switch {
		case ii >= len(ins) || (oi < len(oldCols) && oldCols[oi] < ins[ii].Col):
			c := oldCols[oi]
			if di < len(del) && del[di] == c {
				di++
			} else {
				cols = append(cols, c)
				vals = append(vals, oldVals[oi])
			}
			oi++
		case oi >= len(oldCols) || ins[ii].Col < oldCols[oi]:
			cols = append(cols, ins[ii].Col)
			vals = append(vals, ins[ii].Val)
			ii++
		default: // upsert of an existing column
			cols = append(cols, ins[ii].Col)
			vals = append(vals, ins[ii].Val)
			oi++
			ii++
		}
	}
	return cols, vals, nil
}

// hasSorted reports whether sorted slice s holds t.
func hasSorted(s []int32, t int32) bool {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= t })
	return i < len(s) && s[i] == t
}
