package sparse

import (
	"bufio"
	"fmt"
	"io"
)

// WriteText writes the matrix in a simple triplet text format:
// a header line "n m nnz" followed by one "row col value" line per entry.
// Rows and columns are written 0-based.
func (a *CSR) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.N, a.M, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i, c, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText.
func ReadText(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var n, m, nnz int
	if _, err := fmt.Fscan(br, &n, &m, &nnz); err != nil {
		return nil, fmt.Errorf("sparse: reading header: %w", err)
	}
	ts := make([]Triplet, 0, nnz)
	for k := 0; k < nnz; k++ {
		var t Triplet
		if _, err := fmt.Fscan(br, &t.Row, &t.Col, &t.Val); err != nil {
			return nil, fmt.Errorf("sparse: reading entry %d: %w", k, err)
		}
		ts = append(ts, t)
	}
	return Assemble(n, m, ts)
}
