package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustAssembleT(t *testing.T, n, m int, ts []Triplet) *CSR {
	t.Helper()
	a, err := Assemble(n, m, ts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return a
}

func TestAssembleBasic(t *testing.T) {
	a := mustAssembleT(t, 3, 3, []Triplet{
		{0, 0, 1}, {1, 0, 2}, {1, 1, 3}, {2, 2, 4}, {2, 0, 5},
	})
	if a.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", a.NNZ())
	}
	if got := a.At(1, 0); got != 2 {
		t.Errorf("At(1,0) = %v, want 2", got)
	}
	if got := a.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
	if err := a.CheckWellFormed(); err != nil {
		t.Errorf("CheckWellFormed: %v", err)
	}
}

func TestAssembleSumsDuplicates(t *testing.T) {
	a := mustAssembleT(t, 2, 2, []Triplet{
		{0, 0, 1}, {0, 0, 2.5}, {1, 1, -1}, {1, 1, 1},
	})
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	if got := a.At(0, 0); got != 3.5 {
		t.Errorf("At(0,0) = %v, want 3.5", got)
	}
	if got := a.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0 (cancelled)", got)
	}
}

func TestAssembleOutOfBounds(t *testing.T) {
	if _, err := Assemble(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("Assemble accepted out-of-range row")
	}
	if _, err := Assemble(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("Assemble accepted negative column")
	}
}

func TestRowsSorted(t *testing.T) {
	a := mustAssembleT(t, 1, 5, []Triplet{
		{0, 4, 4}, {0, 1, 1}, {0, 3, 3}, {0, 0, 0},
	})
	cols, _ := a.Row(0)
	want := []int32{0, 1, 3, 4}
	if !reflect.DeepEqual(cols, want) {
		t.Errorf("row cols = %v, want %v", cols, want)
	}
}

func TestTranspose(t *testing.T) {
	a := mustAssembleT(t, 2, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3},
	})
	tr := a.Transpose()
	if tr.N != 3 || tr.M != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tr.N, tr.M)
	}
	if tr.At(0, 0) != 1 || tr.At(2, 0) != 2 || tr.At(1, 1) != 3 {
		t.Errorf("transpose values wrong: %v", tr.Dense())
	}
	if err := tr.CheckWellFormed(); err != nil {
		t.Errorf("transpose not well formed: %v", err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		a := randomCSR(rand.New(rand.NewSource(seed)), 15, 10, 40)
		return Equal(a, a.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSplit(t *testing.T) {
	a := mustAssembleT(t, 3, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 0, 3}, {1, 1, 4}, {2, 1, 5}, {2, 2, 6},
	})
	l := a.StrictLower()
	u := a.StrictUpper()
	ld := a.LowerWithDiag()
	ud := a.UpperWithDiag()
	if l.NNZ() != 2 || u.NNZ() != 1 || ld.NNZ() != 5 || ud.NNZ() != 4 {
		t.Errorf("split sizes: L=%d U=%d LD=%d UD=%d", l.NNZ(), u.NNZ(), ld.NNZ(), ud.NNZ())
	}
	// L + D + U == A entrywise.
	d := a.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sum := l.At(i, j) + u.At(i, j)
			if i == j {
				sum += a.At(i, i)
			}
			if sum != d[i][j] {
				t.Errorf("split mismatch at (%d,%d): %v vs %v", i, j, sum, d[i][j])
			}
		}
	}
}

func TestDiag(t *testing.T) {
	a := mustAssembleT(t, 3, 3, []Triplet{{0, 0, 7}, {1, 0, 1}, {2, 2, 9}})
	want := []float64{7, 0, 9}
	if got := a.Diag(); !reflect.DeepEqual(got, want) {
		t.Errorf("Diag = %v, want %v", got, want)
	}
	if a.HasFullDiag() {
		t.Error("HasFullDiag true with missing diagonal")
	}
}

func TestClone(t *testing.T) {
	a := mustAssembleT(t, 2, 2, []Triplet{{0, 0, 1}, {1, 1, 2}})
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Error("Clone shares value storage")
	}
	if !Equal(a, a) || Equal(a, b) {
		t.Error("Equal misbehaves")
	}
}

func TestMatVec(t *testing.T) {
	a := mustAssembleT(t, 2, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3},
	})
	x := []float64{1, 2, 3}
	y := make([]float64, 2)
	if err := a.MatVec(y, x); err != nil {
		t.Fatal(err)
	}
	if y[0] != 7 || y[1] != 6 {
		t.Errorf("y = %v, want [7 6]", y)
	}
	if err := a.MatVec(y, []float64{1}); err != ErrShape {
		t.Errorf("MatVec shape error = %v, want ErrShape", err)
	}
}

func TestMatVecParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomCSR(rng, 200, 200, 1500)
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ySeq := make([]float64, 200)
	if err := a.MatVec(ySeq, x); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7, 16, 200, 500} {
		yPar := make([]float64, 200)
		if err := a.MatVecParallel(yPar, x, p); err != nil {
			t.Fatal(err)
		}
		for i := range ySeq {
			if ySeq[i] != yPar[i] {
				t.Fatalf("p=%d: yPar[%d]=%v, want %v", p, i, yPar[i], ySeq[i])
			}
		}
	}
}

func TestMatVecAdd(t *testing.T) {
	a := mustAssembleT(t, 2, 2, []Triplet{{0, 0, 1}, {1, 1, 2}})
	y := []float64{10, 10}
	if err := a.MatVecAdd(y, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if y[0] != 11 || y[1] != 12 {
		t.Errorf("y = %v, want [11 12]", y)
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 20, 17, 80)
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Error("text round trip changed the matrix")
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(bytes.NewBufferString("not a header")); err == nil {
		t.Error("ReadText accepted garbage header")
	}
	if _, err := ReadText(bytes.NewBufferString("2 2 1\n0 0")); err == nil {
		t.Error("ReadText accepted truncated entry")
	}
}

func TestCheckWellFormedDetectsCorruption(t *testing.T) {
	a := mustAssembleT(t, 2, 2, []Triplet{{0, 0, 1}, {1, 1, 2}})
	a.ColIdx[0] = 5
	if err := a.CheckWellFormed(); err == nil {
		t.Error("CheckWellFormed missed out-of-range column")
	}
	a.ColIdx[0] = 0
	a.RowPtr[1] = 99
	if err := a.CheckWellFormed(); err == nil {
		t.Error("CheckWellFormed missed bad row pointer")
	}
}

// randomCSR builds a random well-formed matrix for property tests.
func randomCSR(rng *rand.Rand, n, m, nnz int) *CSR {
	ts := make([]Triplet, 0, nnz)
	for k := 0; k < nnz; k++ {
		ts = append(ts, Triplet{
			Row: rng.Intn(n), Col: rng.Intn(m), Val: rng.NormFloat64(),
		})
	}
	a, err := Assemble(n, m, ts)
	if err != nil {
		panic(err)
	}
	return a
}

func TestDenseMatchesAt(t *testing.T) {
	f := func(seed int64) bool {
		a := randomCSR(rand.New(rand.NewSource(seed)), 8, 8, 20)
		d := a.Dense()
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if d[i][j] != a.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
