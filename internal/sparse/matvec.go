package sparse

import "sync"

// MatVec computes y = A*x sequentially. y and x must not alias.
func (a *CSR) MatVec(y, x []float64) error {
	if len(x) != a.M || len(y) != a.N {
		return ErrShape
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		s := 0.0
		for p := lo; p < hi; p++ {
			s += a.Val[p] * x[a.ColIdx[p]]
		}
		y[i] = s
	}
	return nil
}

// MatVecParallel computes y = A*x with the rows divided into nproc
// contiguous blocks of roughly equal size, one goroutine per block.
// This mirrors the paper's Appendix II parallelization of the sparse
// matrix-vector product: "the indices from 1 to n are divided into p
// contiguous groups of roughly equal size".
func (a *CSR) MatVecParallel(y, x []float64, nproc int) error {
	if len(x) != a.M || len(y) != a.N {
		return ErrShape
	}
	if nproc < 1 {
		nproc = 1
	}
	if nproc > a.N {
		nproc = a.N
	}
	if nproc <= 1 {
		return a.MatVec(y, x)
	}
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		lo := a.N * p / nproc
		hi := a.N * (p + 1) / nproc
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s := 0.0
				for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
					s += a.Val[q] * x[a.ColIdx[q]]
				}
				y[i] = s
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// MatVecAdd computes y += A*x sequentially.
func (a *CSR) MatVecAdd(y, x []float64) error {
	if len(x) != a.M || len(y) != a.N {
		return ErrShape
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		s := 0.0
		for p := lo; p < hi; p++ {
			s += a.Val[p] * x[a.ColIdx[p]]
		}
		y[i] += s
	}
	return nil
}
