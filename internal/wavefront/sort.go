package wavefront

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Compute performs the sequential wavefront sweep of paper Figure 7.
// The wavefront number of each index is one plus the maximum of the
// wavefront numbers of the indices on which it depends; indices with no
// dependences form wavefront 0. All dependences must point backward
// (CheckBackward); otherwise an error is returned.
func Compute(d *Deps) ([]int32, error) {
	if err := d.CheckBackward(); err != nil {
		return nil, err
	}
	wf := make([]int32, d.N)
	for i := 0; i < d.N; i++ {
		mywf := int32(-1)
		for _, t := range d.On(i) {
			if wf[t] > mywf {
				mywf = wf[t]
			}
		}
		wf[i] = mywf + 1
	}
	return wf, nil
}

// ComputeParallel is the parallelized topological sort of Section 2.3:
// consecutive indices are striped across nproc workers, and busy waits
// assure that a dependence's wavefront number has been produced before it
// is used. Dependences must point backward, which guarantees progress.
func ComputeParallel(d *Deps, nproc int) ([]int32, error) {
	if err := d.CheckBackward(); err != nil {
		return nil, err
	}
	if nproc < 1 {
		nproc = 1
	}
	if nproc > d.N {
		nproc = d.N
	}
	if nproc <= 1 {
		return Compute(d)
	}
	wf := make([]int32, d.N)
	for i := range wf {
		wf[i] = -1 // not yet computed
	}
	var wg sync.WaitGroup
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < d.N; i += nproc {
				mywf := int32(-1)
				for _, t := range d.On(i) {
					v := atomic.LoadInt32(&wf[t])
					for v < 0 {
						runtime.Gosched()
						v = atomic.LoadInt32(&wf[t])
					}
					if v > mywf {
						mywf = v
					}
				}
				atomic.StoreInt32(&wf[i], mywf+1)
			}
		}(p)
	}
	wg.Wait()
	return wf, nil
}

// ComputeDAG computes wavefront numbers for a general dependence DAG whose
// edges may point in either index direction, using Kahn's algorithm with
// longest-path levels. It returns an error naming a member of a dependence
// cycle if the graph is not acyclic — the failure mode a malformed
// doconsider annotation would otherwise turn into an executor deadlock.
func ComputeDAG(d *Deps) ([]int32, error) {
	indeg := make([]int32, d.N)
	for i := 0; i < d.N; i++ {
		for _, t := range d.On(i) {
			if t < 0 || int(t) >= d.N {
				return nil, fmt.Errorf("wavefront: iteration %d has out-of-range dependence %d", i, t)
			}
		}
		indeg[i] = int32(d.Count(i))
	}
	rev := d.Reverse()
	wf := make([]int32, d.N)
	queue := make([]int32, 0, d.N)
	for i := 0; i < d.N; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		done++
		for _, c := range rev.On(int(i)) {
			if wf[i]+1 > wf[c] {
				wf[c] = wf[i] + 1
			}
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if done != d.N {
		for i := 0; i < d.N; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("wavefront: dependence cycle involving iteration %d", i)
			}
		}
	}
	return wf, nil
}

// NumWavefronts returns the number of distinct wavefronts (phases), i.e.
// one plus the maximum wavefront number, or 0 for an empty index set.
func NumWavefronts(wf []int32) int {
	max := int32(-1)
	for _, v := range wf {
		if v > max {
			max = v
		}
	}
	return int(max + 1)
}

// Histogram returns the number of indices in each wavefront.
func Histogram(wf []int32) []int {
	h := make([]int, NumWavefronts(wf))
	for _, v := range wf {
		h[v]++
	}
	return h
}

// Validate checks that wf is a valid wavefront assignment for d: every
// index has a strictly larger wavefront number than each of its
// dependences.
func Validate(wf []int32, d *Deps) error {
	if len(wf) != d.N {
		return fmt.Errorf("wavefront: assignment length %d, want %d", len(wf), d.N)
	}
	for i := 0; i < d.N; i++ {
		for _, t := range d.On(i) {
			if wf[i] <= wf[t] {
				return fmt.Errorf("wavefront: wf[%d]=%d not after dependence wf[%d]=%d",
					i, wf[i], t, wf[t])
			}
		}
	}
	return nil
}

// CriticalPathWork returns, for a per-index cost vector, the total cost
// along the heaviest dependence chain — a lower bound on any executor's
// completion time with unbounded processors.
func CriticalPathWork(d *Deps, cost []float64) (float64, error) {
	if err := d.CheckBackward(); err != nil {
		return 0, err
	}
	finish := make([]float64, d.N)
	maxFinish := 0.0
	for i := 0; i < d.N; i++ {
		start := 0.0
		for _, t := range d.On(i) {
			if finish[t] > start {
				start = finish[t]
			}
		}
		finish[i] = start + cost[i]
		if finish[i] > maxFinish {
			maxFinish = finish[i]
		}
	}
	return maxFinish, nil
}
