package wavefront

import (
	"testing"

	"doconsider/internal/stencil"
)

func benchDeps() *Deps {
	return FromLower(stencil.Laplace2D(200, 200))
}

func BenchmarkComputeSequential(b *testing.B) {
	d := benchDeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeParallel(b *testing.B) {
	d := benchDeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeParallel(d, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeDAG(b *testing.B) {
	d := benchDeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeDAG(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromLower(b *testing.B) {
	a := stencil.Laplace2D(200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromLower(a)
	}
}

func BenchmarkReverse(b *testing.B) {
	d := benchDeps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reverse()
	}
}
