// Package wavefront implements the inspector half of the paper's
// inspector/executor system: it extracts iteration-level dependence sets
// from run-time data structures (indirection arrays, sparse matrix rows)
// and topologically sorts the iteration space into wavefronts — disjoint
// sets of loop indices whose work may be carried out in parallel
// (Section 2.2–2.3 of the paper).
package wavefront

import (
	"fmt"
	"sync/atomic"

	"doconsider/internal/sparse"
)

// Deps is a compressed adjacency structure recording, for each loop index i,
// the set of indices whose results i consumes. Index i's dependences occupy
// Idx[Ptr[i]:Ptr[i+1]]. A Deps is immutable once built; Fingerprint relies
// on that to memoize its structural hash.
type Deps struct {
	N   int
	Ptr []int32
	Idx []int32

	fp atomic.Uint64 // memoized Fingerprint; 0 = not yet computed
}

// On returns the indices that iteration i depends on. The returned slice
// aliases the Deps storage and must not be modified.
func (d *Deps) On(i int) []int32 { return d.Idx[d.Ptr[i]:d.Ptr[i+1]] }

// Count returns the number of dependences of iteration i.
func (d *Deps) Count(i int) int { return int(d.Ptr[i+1] - d.Ptr[i]) }

// Edges returns the total number of dependence edges.
func (d *Deps) Edges() int { return len(d.Idx) }

// FromAdjacency builds a Deps from a slice-of-slices adjacency list, where
// adj[i] lists the indices i depends on. Intended for tests and small
// hand-built graphs.
func FromAdjacency(adj [][]int32) *Deps {
	n := len(adj)
	d := &Deps{N: n, Ptr: make([]int32, n+1)}
	total := 0
	for _, a := range adj {
		total += len(a)
	}
	d.Idx = make([]int32, 0, total)
	for i, a := range adj {
		d.Idx = append(d.Idx, a...)
		d.Ptr[i+1] = int32(len(d.Idx))
	}
	return d
}

// FromLower extracts the dependence structure of a lower triangular solve
// (paper Figure 8): row substitution i depends on every column j < i with a
// stored entry in row i. Diagonal and upper entries are ignored, so the
// function may be handed either a full matrix or its lower triangle.
func FromLower(a *sparse.CSR) *Deps {
	d := &Deps{N: a.N, Ptr: make([]int32, a.N+1)}
	count := 0
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) < i {
				count++
			}
		}
	}
	d.Idx = make([]int32, 0, count)
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) < i {
				d.Idx = append(d.Idx, c)
			}
		}
		d.Ptr[i+1] = int32(len(d.Idx))
	}
	return d
}

// FromUpper extracts the dependence structure of an upper triangular
// (backward) solve: row i depends on every column j > i. The iteration
// order of the executor runs from n-1 down to 0; to keep all machinery
// uniform the indices are reflected (iteration k stands for row n-1-k), so
// the resulting Deps again has all dependences pointing to lower iteration
// numbers. Use ReflectIndex to translate.
func FromUpper(a *sparse.CSR) *Deps {
	n := a.N
	d := &Deps{N: n, Ptr: make([]int32, n+1)}
	count := 0
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) > i {
				count++
			}
		}
	}
	d.Idx = make([]int32, 0, count)
	for k := 0; k < n; k++ {
		i := n - 1 - k // actual row
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) > i {
				d.Idx = append(d.Idx, int32(n-1-int(c)))
			}
		}
		d.Ptr[k+1] = int32(len(d.Idx))
	}
	return d
}

// ReflectIndex translates between iteration number and row number for the
// reflected indexing used by FromUpper.
func ReflectIndex(n, k int) int { return n - 1 - k }

// FromIndirection builds the dependence structure of the paper's simple
// loop (Figure 2): x(i) = x(i) + b(i)*x(ia(i)). Iteration i depends on
// iteration ia[i] only when ia[i] < i; references with ia[i] >= i read the
// old value of x (Figure 4, line 2a-2b) and impose no ordering.
func FromIndirection(ia []int32) *Deps {
	n := len(ia)
	d := &Deps{N: n, Ptr: make([]int32, n+1)}
	count := 0
	for i, t := range ia {
		if int(t) < i {
			count++
		}
	}
	d.Idx = make([]int32, 0, count)
	for i, t := range ia {
		if int(t) < i && t >= 0 {
			d.Idx = append(d.Idx, t)
		}
		d.Ptr[i+1] = int32(len(d.Idx))
	}
	return d
}

// CheckBackward verifies that every dependence points to a strictly smaller
// iteration number — the "start-time schedulable" precondition under which
// the sequential wavefront sweep of Figure 7 is valid.
func (d *Deps) CheckBackward() error {
	for i := 0; i < d.N; i++ {
		for _, t := range d.On(i) {
			if int(t) >= i {
				return fmt.Errorf("wavefront: iteration %d depends on %d (not backward)", i, t)
			}
			if t < 0 {
				return fmt.Errorf("wavefront: iteration %d has negative dependence %d", i, t)
			}
		}
	}
	return nil
}

// Reverse returns the consumer adjacency: out[i] lists the iterations that
// depend on i. Used by the machine simulator and by Kahn's algorithm.
func (d *Deps) Reverse() *Deps {
	counts := make([]int32, d.N+1)
	for _, t := range d.Idx {
		counts[t+1]++
	}
	for i := 0; i < d.N; i++ {
		counts[i+1] += counts[i]
	}
	r := &Deps{N: d.N, Ptr: counts, Idx: make([]int32, len(d.Idx))}
	next := make([]int32, d.N)
	copy(next, counts[:d.N])
	for i := 0; i < d.N; i++ {
		for _, t := range d.On(i) {
			r.Idx[next[t]] = int32(i)
			next[t]++
		}
	}
	return r
}
