package wavefront

import "doconsider/internal/fphash"

// Fingerprint returns a 64-bit hash of the dependence structure: the
// iteration count and the exact CSR adjacency (Ptr and Idx). Two Deps
// with equal fingerprints describe (up to hash collision) the same
// dependence DAG, so they admit the same wavefronts and schedules — the
// property plan caches key on. Values flowing through the loop bodies do
// not enter the hash; plans are structural.
//
// The hash is computed once and memoized: a Deps is immutable after
// construction, so repeated cache lookups with the same object pay only
// an atomic load. Callers that mutate Ptr/Idx by hand (nothing in this
// module does) must not use Fingerprint.
func (d *Deps) Fingerprint() uint64 {
	if fp := d.fp.Load(); fp != 0 {
		return fp
	}
	h := uint64(fphash.Offset)
	h = fphash.Mix(h, uint64(d.N))
	h = fphash.Words(h, d.Ptr)
	h = fphash.Words(h, d.Idx)
	h = fphash.Final(h)
	if h == 0 {
		h = 1 // reserve 0 as the "not yet computed" sentinel
	}
	d.fp.Store(h)
	return h
}
