package wavefront

import "testing"

func TestFingerprint(t *testing.T) {
	d1 := FromAdjacency([][]int32{nil, {0}, {1}})
	d2 := FromAdjacency([][]int32{nil, {0}, {1}})
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatal("identical structures fingerprint differently")
	}
	if got := d1.Fingerprint(); got != d2.Fingerprint() {
		t.Fatalf("memoized fingerprint changed: %x", got)
	}
	d3 := FromAdjacency([][]int32{nil, {0}, {0}})
	if d3.Fingerprint() == d1.Fingerprint() {
		t.Fatal("different structures share a fingerprint")
	}
	// Same edges, different iteration count.
	d4 := FromAdjacency([][]int32{nil, {0}, {1}, nil})
	if d4.Fingerprint() == d1.Fingerprint() {
		t.Fatal("different N shares a fingerprint")
	}
	if d1.Fingerprint() == 0 {
		t.Fatal("fingerprint used the uncomputed sentinel")
	}
}
