package wavefront

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
)

// randomBackwardDeps builds a random DAG whose edges all point backward.
func randomBackwardDeps(rng *rand.Rand, n, maxDeg int) *Deps {
	adj := make([][]int32, n)
	for i := 1; i < n; i++ {
		deg := rng.Intn(maxDeg + 1)
		seen := map[int32]bool{}
		for d := 0; d < deg; d++ {
			t := int32(rng.Intn(i))
			if !seen[t] {
				seen[t] = true
				adj[i] = append(adj[i], t)
			}
		}
	}
	return FromAdjacency(adj)
}

func TestComputeChain(t *testing.T) {
	// 0 <- 1 <- 2 <- 3: wavefronts 0,1,2,3.
	d := FromAdjacency([][]int32{{}, {0}, {1}, {2}})
	wf, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3}
	if !reflect.DeepEqual(wf, want) {
		t.Errorf("wf = %v, want %v", wf, want)
	}
	if NumWavefronts(wf) != 4 {
		t.Errorf("NumWavefronts = %d", NumWavefronts(wf))
	}
}

func TestComputeDiamond(t *testing.T) {
	// 1,2 depend on 0; 3 depends on 1 and 2.
	d := FromAdjacency([][]int32{{}, {0}, {0}, {1, 2}})
	wf, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 1, 2}
	if !reflect.DeepEqual(wf, want) {
		t.Errorf("wf = %v, want %v", wf, want)
	}
	if got := Histogram(wf); !reflect.DeepEqual(got, []int{1, 2, 1}) {
		t.Errorf("Histogram = %v", got)
	}
}

func TestComputeRejectsForwardDeps(t *testing.T) {
	d := FromAdjacency([][]int32{{1}, {}})
	if _, err := Compute(d); err == nil {
		t.Error("Compute accepted forward dependence")
	}
	if _, err := ComputeParallel(d, 2); err == nil {
		t.Error("ComputeParallel accepted forward dependence")
	}
}

func TestComputeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d := randomBackwardDeps(rng, 300, 4)
		seq, err := Compute(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 8, 17} {
			par, err := ComputeParallel(d, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("trial %d p=%d: parallel sweep disagrees", trial, p)
			}
		}
	}
}

func TestComputeDAGMatchesSequentialOnBackwardDeps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomBackwardDeps(rng, 120, 3)
		seq, err1 := Compute(d)
		dag, err2 := ComputeDAG(d)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(seq, dag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComputeDAGForwardEdges(t *testing.T) {
	// 0 depends on 3 (a forward edge): still a DAG.
	d := FromAdjacency([][]int32{{3}, {}, {1}, {}})
	wf, err := ComputeDAG(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(wf, d); err != nil {
		t.Error(err)
	}
}

func TestComputeDAGDetectsCycle(t *testing.T) {
	d := FromAdjacency([][]int32{{1}, {0}})
	if _, err := ComputeDAG(d); err == nil {
		t.Error("ComputeDAG accepted a 2-cycle")
	}
	d = FromAdjacency([][]int32{{2}, {0}, {1}})
	if _, err := ComputeDAG(d); err == nil {
		t.Error("ComputeDAG accepted a 3-cycle")
	}
}

func TestComputeDAGRejectsOutOfRange(t *testing.T) {
	d := &Deps{N: 2, Ptr: []int32{0, 1, 1}, Idx: []int32{5}}
	if _, err := ComputeDAG(d); err == nil {
		t.Error("ComputeDAG accepted out-of-range edge")
	}
}

func TestValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomBackwardDeps(rng, 200, 5)
		wf, err := Compute(d)
		if err != nil {
			return false
		}
		return Validate(wf, d) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadAssignment(t *testing.T) {
	d := FromAdjacency([][]int32{{}, {0}})
	if err := Validate([]int32{0, 0}, d); err == nil {
		t.Error("Validate accepted equal wavefronts across a dependence")
	}
	if err := Validate([]int32{0}, d); err == nil {
		t.Error("Validate accepted wrong length")
	}
}

func TestFromLowerMeshWavefronts(t *testing.T) {
	// On a naturally ordered 5-point m×n mesh, the strictly lower triangle
	// couples each point to its west and south neighbours; wavefronts are
	// anti-diagonals: wf(i,j) = i+j, giving m+n-1 wavefronts (paper Fig. 9).
	m, n := 5, 7
	a := stencil.Laplace2D(m, n)
	d := FromLower(a)
	wf, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	g := stencil.Grid2D{NX: m, NY: n}
	for k := 0; k < g.N(); k++ {
		i, j := g.Coords(k)
		if wf[k] != int32(i+j) {
			t.Fatalf("wf[%d] = %d, want %d", k, wf[k], i+j)
		}
	}
	if NumWavefronts(wf) != m+n-1 {
		t.Errorf("wavefronts = %d, want %d", NumWavefronts(wf), m+n-1)
	}
}

func TestFromUpperReflection(t *testing.T) {
	// Upper bidiagonal: row i depends on i+1.
	n := 5
	ts := []sparse.Triplet{}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 1})
		if i+1 < n {
			ts = append(ts, sparse.Triplet{Row: i, Col: i + 1, Val: -1})
		}
	}
	u := sparse.MustAssemble(n, n, ts)
	d := FromUpper(u)
	if err := d.CheckBackward(); err != nil {
		t.Fatal(err)
	}
	wf, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	// Iteration k handles row n-1-k; the chain gives wf[k] = k.
	for k := 0; k < n; k++ {
		if wf[k] != int32(k) {
			t.Errorf("wf[%d] = %d, want %d", k, wf[k], k)
		}
		if ReflectIndex(n, k) != n-1-k {
			t.Errorf("ReflectIndex(%d,%d) = %d", n, k, ReflectIndex(n, k))
		}
	}
}

func TestFromIndirection(t *testing.T) {
	// ia = [0 0 5 1 3]: iteration 1 depends on 0, 3 on 1, 4 on 3;
	// iterations 0 (self) and 2 (forward) have no dependences.
	ia := []int32{0, 0, 5, 1, 3}
	d := FromIndirection(ia)
	if d.Count(0) != 0 || d.Count(2) != 0 {
		t.Error("self/forward references should impose no dependence")
	}
	if d.Count(1) != 1 || d.On(1)[0] != 0 {
		t.Error("iteration 1 should depend on 0")
	}
	wf, err := Compute(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 0, 2, 3}
	if !reflect.DeepEqual(wf, want) {
		t.Errorf("wf = %v, want %v", wf, want)
	}
}

func TestReverse(t *testing.T) {
	d := FromAdjacency([][]int32{{}, {0}, {0, 1}})
	r := d.Reverse()
	if r.Count(0) != 2 || r.Count(1) != 1 || r.Count(2) != 0 {
		t.Errorf("reverse counts wrong: %v %v %v", r.On(0), r.On(1), r.On(2))
	}
	// Reversing twice restores edge multiset.
	rr := r.Reverse()
	if rr.Edges() != d.Edges() {
		t.Error("double reverse changed edge count")
	}
}

func TestCriticalPathWork(t *testing.T) {
	d := FromAdjacency([][]int32{{}, {0}, {1}, {}})
	cost := []float64{1, 2, 3, 10}
	got, err := CriticalPathWork(d, cost)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 { // max(1+2+3, 10)
		t.Errorf("critical path = %v, want 10", got)
	}
}

func TestHistogramSumsToN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomBackwardDeps(rng, 150, 4)
		wf, err := Compute(d)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range Histogram(wf) {
			sum += c
		}
		return sum == 150
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
