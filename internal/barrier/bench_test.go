package barrier

import (
	"runtime"
	"sync"
	"testing"
)

// benchBarrier measures rounds/sec of repeated barrier crossings — the
// paper's Tsynch, and the ablation between spin and blocking barriers.
func benchBarrier(b *testing.B, mk func(n int) Barrier) {
	parties := runtime.GOMAXPROCS(0)
	if parties < 2 {
		parties = 2
	}
	bar := mk(parties)
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				bar.Wait()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkSenseReversing(b *testing.B) {
	benchBarrier(b, func(n int) Barrier { return NewSenseReversing(n) })
}

func BenchmarkCond(b *testing.B) {
	benchBarrier(b, func(n int) Barrier { return NewCond(n) })
}
