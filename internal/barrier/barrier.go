// Package barrier provides reusable synchronization barriers for the
// pre-scheduled executor, which separates consecutive wavefront phases with
// a global synchronization (paper Figure 5, line 1d).
//
// Two implementations are provided: a channel-free sense-reversing barrier
// built on atomics (the default; spin+yield arrival matching the paper's
// shared-memory machine model) and a simpler condition-variable barrier.
// Both are reusable across an arbitrary number of phases.
package barrier

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Barrier is a reusable synchronization barrier: Wait blocks until all
// parties have called Wait, then all are released and the barrier resets.
type Barrier interface {
	// Wait blocks the caller until all parties have arrived.
	Wait()
	// Parties returns the number of participants the barrier coordinates.
	Parties() int
}

// SenseReversing is a classic two-phase sense-reversing centralized barrier.
// Arrivals decrement a shared counter; the last arrival flips the global
// sense, releasing the spinners. Spinning yields to the Go scheduler so the
// executor remains live even with more simulated processors than OS threads.
type SenseReversing struct {
	parties int
	count   atomic.Int32
	sense   atomic.Uint32
}

// NewSenseReversing returns a sense-reversing barrier for n parties (n >= 1).
func NewSenseReversing(n int) *SenseReversing {
	if n < 1 {
		panic("barrier: parties must be >= 1")
	}
	b := &SenseReversing{parties: n}
	b.count.Store(int32(n))
	return b
}

// Parties returns the number of participants.
func (b *SenseReversing) Parties() int { return b.parties }

// Wait blocks until all parties arrive.
func (b *SenseReversing) Wait() {
	local := b.sense.Load()
	if b.count.Add(-1) == 0 {
		b.count.Store(int32(b.parties))
		b.sense.Store(local ^ 1)
		return
	}
	for b.sense.Load() == local {
		runtime.Gosched()
	}
}

// Cond is a condition-variable barrier; it blocks threads instead of
// spinning, trading latency for zero busy-wait cost. Useful as a baseline
// when benchmarking barrier overhead (the paper's Tsynch).
type Cond struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

// NewCond returns a condition-variable barrier for n parties (n >= 1).
func NewCond(n int) *Cond {
	if n < 1 {
		panic("barrier: parties must be >= 1")
	}
	b := &Cond{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties returns the number of participants.
func (b *Cond) Parties() int { return b.parties }

// Wait blocks until all parties arrive.
func (b *Cond) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
