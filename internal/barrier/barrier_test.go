package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
)

// checkBarrier verifies phase separation: within each of rounds phases all
// parties increment a counter; after the barrier every party must observe
// the full count for the phase.
func checkBarrier(t *testing.T, mk func(n int) Barrier, parties, rounds int) {
	t.Helper()
	b := mk(parties)
	if b.Parties() != parties {
		t.Fatalf("Parties = %d, want %d", b.Parties(), parties)
	}
	counts := make([]atomic.Int64, rounds)
	var wg sync.WaitGroup
	errs := make(chan string, parties*rounds)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				counts[r].Add(1)
				b.Wait()
				if got := counts[r].Load(); got != int64(parties) {
					errs <- "phase leak"
				}
				b.Wait() // second barrier so nobody races into round r+1
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestSenseReversing(t *testing.T) {
	for _, parties := range []int{1, 2, 3, 8, 16} {
		checkBarrier(t, func(n int) Barrier { return NewSenseReversing(n) }, parties, 50)
	}
}

func TestCond(t *testing.T) {
	for _, parties := range []int{1, 2, 3, 8, 16} {
		checkBarrier(t, func(n int) Barrier { return NewCond(n) }, parties, 50)
	}
}

func TestSenseReversingManyMoreGoroutinesThanCPUs(t *testing.T) {
	checkBarrier(t, func(n int) Barrier { return NewSenseReversing(n) }, 64, 20)
}

func TestBadParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSenseReversing(0) did not panic")
		}
	}()
	NewSenseReversing(0)
}

func TestCondBadParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCond(0) did not panic")
		}
	}()
	NewCond(0)
}

func TestSingleParty(t *testing.T) {
	b := NewSenseReversing(1)
	for i := 0; i < 100; i++ {
		b.Wait() // must never block
	}
	c := NewCond(1)
	for i := 0; i < 100; i++ {
		c.Wait()
	}
}
