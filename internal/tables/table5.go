package tables

import (
	"fmt"
	"io"
	"time"

	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
	"doconsider/internal/trisolve"
	"doconsider/internal/wavefront"
)

// Table5Row compares local and global index-set scheduling: the measured
// inspector costs (wall clock on the host) and the resulting run times
// (cost-model simulation at nproc processors).
type Table5Row struct {
	Problem      string
	SeqSolveWall time.Duration // one sequential triangular solve (measured)
	SeqSortWall  time.Duration // sequential wavefront sweep (measured)
	ParSortWall  time.Duration // parallel striped wavefront sweep (measured)
	GlobalWall   time.Duration // global schedule construction, incl. rearrangement (measured)
	LocalWall    time.Duration // local schedule construction (measured)
	GlobalRun    float64       // simulated 16-processor self-executing run, global schedule
	LocalRun     float64       // simulated 16-processor self-executing run, local schedule
}

// Table5 reproduces Table 5 for the given problems.
func Table5(names []string, nproc int) ([]Table5Row, error) {
	costs := machine.MultimaxCosts()
	rows := make([]Table5Row, 0, len(names))
	for _, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		n := p.L.N
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		t0 := time.Now()
		if err := trisolve.ForwardSeq(p.L, x, b); err != nil {
			return nil, err
		}
		seqSolve := time.Since(t0)

		t0 = time.Now()
		wf, err := wavefront.Compute(p.Deps)
		if err != nil {
			return nil, err
		}
		seqSort := time.Since(t0)

		t0 = time.Now()
		if _, err := wavefront.ComputeParallel(p.Deps, nproc); err != nil {
			return nil, err
		}
		parSort := time.Since(t0)

		t0 = time.Now()
		gs := schedule.Global(wf, nproc)
		globalWall := time.Since(t0)

		t0 = time.Now()
		ls := schedule.Local(wf, nproc, schedule.Striped)
		localWall := time.Since(t0)

		gRun, err := machine.SimulateSelfExecuting(gs, p.Deps, p.Work, costs)
		if err != nil {
			return nil, err
		}
		lRun, err := machine.SimulateSelfExecuting(ls, p.Deps, p.Work, costs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Problem:      name,
			SeqSolveWall: seqSolve,
			SeqSortWall:  seqSort,
			ParSortWall:  parSort,
			GlobalWall:   globalWall,
			LocalWall:    localWall,
			GlobalRun:    gRun.Makespan,
			LocalRun:     lRun.Makespan,
		})
	}
	return rows, nil
}

// FprintTable5 renders Table 5 rows.
func FprintTable5(w io.Writer, rows []Table5Row, nproc int) {
	fmt.Fprintf(w, "Table 5: Local vs Global Index-Set Scheduling (%d processors)\n", nproc)
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %10s %10s %10s\n",
		"Problem", "SeqSolve", "SeqSort", "ParSort", "GlobalSch", "LocalSch", "GlobRun", "LocRun")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %10s %10.0f %10.0f\n",
			r.Problem,
			r.SeqSolveWall.Round(time.Microsecond),
			r.SeqSortWall.Round(time.Microsecond),
			r.ParSortWall.Round(time.Microsecond),
			r.GlobalWall.Round(time.Microsecond),
			r.LocalWall.Round(time.Microsecond),
			r.GlobalRun, r.LocalRun)
	}
}
