package tables

import (
	"fmt"
	"io"
	"strings"

	"doconsider/internal/machine"
	"doconsider/internal/model"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

// Fig12Point is one point of Figure 12: estimated efficiency of the same
// striped partition and local (wavefront-sorted) schedule under barrier
// synchronization vs self-executing synchronization.
type Fig12Point struct {
	Procs     int
	BarrierE  float64
	SelfExecE float64
}

// Figure12 sweeps processor counts on the 65×65 five-point mesh, indices
// assigned striped (i mod P), schedules produced by a topological sort with
// indices in each phase in increasing order — paper §5.1.4. The barrier
// efficiencies fluctuate wildly because whole wavefronts can land on a
// single processor; self-execution pipelines through.
func Figure12(maxProcs int) ([]Fig12Point, error) {
	p, err := problems.Get("65mesh")
	if err != nil {
		return nil, err
	}
	pts := make([]Fig12Point, 0, maxProcs)
	for np := 1; np <= maxProcs; np++ {
		ls := schedule.Local(p.Wf, np, schedule.Striped)
		barrier, err := machine.SymbolicEfficiency(machine.PreScheduledSim, ls, p.Deps, p.Work)
		if err != nil {
			return nil, err
		}
		self, err := machine.SymbolicEfficiency(machine.SelfExecutingSim, ls, p.Deps, p.Work)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig12Point{Procs: np, BarrierE: barrier, SelfExecE: self})
	}
	return pts, nil
}

// FprintFigure12 renders the sweep as aligned series plus an ASCII chart.
func FprintFigure12(w io.Writer, pts []Fig12Point) {
	fmt.Fprintln(w, "Figure 12: Effect of local ordering (65x65 mesh, striped partition)")
	fmt.Fprintf(w, "%6s %10s %12s\n", "Procs", "Barrier", "SelfExec")
	for _, pt := range pts {
		fmt.Fprintf(w, "%6d %10.3f %12.3f  |%s\n", pt.Procs, pt.BarrierE, pt.SelfExecE,
			bar(pt.BarrierE, 'b')+"\n"+strings.Repeat(" ", 32)+"|"+bar(pt.SelfExecE, 's'))
	}
}

func bar(e float64, c byte) string {
	n := int(e*40 + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat(string(c), n)
}

// Fig13Point is one point of the Figure 13 study: self-executing
// efficiency on the model problem versus processor count, with the
// equation-5 model prediction.
type Fig13Point struct {
	Procs      int
	SimulatedE float64
	ModelE     float64
}

// Figure13 runs the model problem (m×n five-point mesh, uniform work,
// global scheduling, self-execution) across processor counts and compares
// against the analytic E_opt of equation 5.
func Figure13(m, n, maxProcs int) ([]Fig13Point, error) {
	a := stencil.Laplace2D(m, n)
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return nil, err
	}
	work := make([]float64, deps.N)
	for i := range work {
		work[i] = 1
	}
	pts := make([]Fig13Point, 0, maxProcs)
	for np := 1; np <= maxProcs && np <= m && np <= n; np++ {
		gs := schedule.Global(wf, np)
		r, err := machine.SimulateSelfExecuting(gs, deps, work, machine.FlopOnly())
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig13Point{
			Procs:      np,
			SimulatedE: r.Efficiency,
			ModelE:     model.EoptSelfExecuting(m, n, np),
		})
	}
	return pts, nil
}

// FprintFigure13 renders the model-problem sweep.
func FprintFigure13(w io.Writer, pts []Fig13Point, m, n int) {
	fmt.Fprintf(w, "Figure 13: Self-executing pipelining on the %dx%d model problem\n", m, n)
	fmt.Fprintf(w, "%6s %10s %10s\n", "Procs", "Simulated", "Eq.5")
	for _, pt := range pts {
		fmt.Fprintf(w, "%6d %10.3f %10.3f\n", pt.Procs, pt.SimulatedE, pt.ModelE)
	}
}

// FprintFigure9 draws the paper's Figure 9/10 illustration: the wavefront
// number and the wrapped processor assignment of every point of an m×n
// five-point mesh.
func FprintFigure9(w io.Writer, m, n, nproc int) error {
	a := stencil.Laplace2D(m, n)
	deps := wavefront.FromLower(a)
	wf, err := wavefront.Compute(deps)
	if err != nil {
		return err
	}
	gs := schedule.Global(wf, nproc)
	owner := make([]int, len(wf))
	for p := 0; p < gs.P; p++ {
		for _, idx := range gs.Proc(p) {
			owner[idx] = p
		}
	}
	g := stencil.Grid2D{NX: m, NY: n}
	fmt.Fprintf(w, "Figure 9: wavefront number per mesh point (%dx%d, natural order)\n", m, n)
	for j := n - 1; j >= 0; j-- {
		for i := 0; i < m; i++ {
			fmt.Fprintf(w, "%3d", wf[g.Index(i, j)])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFigure 10: wrapped processor assignment (%d processors)\n", nproc)
	for j := n - 1; j >= 0; j-- {
		for i := 0; i < m; i++ {
			fmt.Fprintf(w, "%3d", owner[g.Index(i, j)])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// FprintSummary renders the Figure 1 quadrant of conclusions.
func FprintSummary(w io.Writer) {
	fmt.Fprint(w, `Figure 1: Performance of Scheduling and Sorting Strategies

             Pre-Scheduled                    Self-Executing
          +--------------------------------+---------------------------------+
  Local   | Performance can degrade        | Recommended: performance        |
  sort    | catastrophically               | reasonably robust, low          |
          |                                | overhead for setup              |
          +--------------------------------+---------------------------------+
  Global  | Performance robust but         | Most robust alternative,        |
  sort    | prescheduling limits           | relatively high setup time      |
          | exploitable concurrency        |                                 |
          +--------------------------------+---------------------------------+
`)
}
