package tables

import (
	"fmt"
	"io"

	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
)

// SolveRow decomposes the time of one parallel triangular solve the way
// Tables 2 and 3 do: the measured (here: simulated) parallel time, the
// rotating-processor estimate, the single-processor parallel-code estimate
// and the pure sequential estimate, all divided by P×(symbolic efficiency)
// where applicable.
type SolveRow struct {
	Problem          string
	Phases           int
	SymbolicEff      float64
	ParallelTime     float64 // full-cost simulation
	RotatingEstimate float64 // rotating time / (P * symbolic eff), plus barrier for pre-scheduled
	OnePEParallel    float64 // 1-PE parallel time / (P * symbolic eff)
	OnePESeq         float64 // sequential time / (P * symbolic eff)
	DoacrossTime     float64 // Table 2 only: natural-order busy-wait loop
}

// TriSolveDecomposition reproduces Table 2 (self-executing) or Table 3
// (pre-scheduled) for the given problems on nproc processors.
func TriSolveDecomposition(names []string, nproc int, kind machine.Executor) ([]SolveRow, error) {
	costs := machine.MultimaxCosts()
	rows := make([]SolveRow, 0, len(names))
	for _, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		gs := schedule.Global(p.Wf, nproc)
		symEff, err := machine.SymbolicEfficiency(kind, gs, p.Deps, p.Work)
		if err != nil {
			return nil, err
		}
		seq := problems.TotalWork(p.Work) * costs.Tflop
		denom := float64(nproc) * symEff

		var parallel float64
		switch kind {
		case machine.SelfExecutingSim:
			r, err := machine.SimulateSelfExecuting(gs, p.Deps, p.Work, costs)
			if err != nil {
				return nil, err
			}
			parallel = r.Makespan
		case machine.PreScheduledSim:
			parallel = machine.SimulatePreScheduled(gs, p.Work, costs).Makespan
		}

		onePEPar := machine.OneProcessorParallelTime(kind, p.Deps, p.Work, costs)
		rotating := machine.OneProcessorParallelTime(kind, p.Deps, p.Work, costs) / denom
		if kind == machine.PreScheduledSim {
			rotating += float64(gs.NumPhases) * costs.Tsynch
		}

		row := SolveRow{
			Problem:          name,
			Phases:           gs.NumPhases,
			SymbolicEff:      symEff,
			ParallelTime:     parallel,
			RotatingEstimate: rotating,
			OnePEParallel:    onePEPar / denom,
			OnePESeq:         seq / denom,
		}
		if kind == machine.SelfExecutingSim {
			// Doacross comparison (Table 2 text): natural order, busy waits.
			nat := schedule.Natural(p.L.N, nproc, schedule.Striped)
			r, err := machine.SimulateSelfExecuting(nat, p.Deps, p.Work, costs)
			if err != nil {
				return nil, err
			}
			row.DoacrossTime = r.Makespan
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintSolveRows renders Table 2/3 rows.
func FprintSolveRows(w io.Writer, rows []SolveRow, kind machine.Executor, nproc int) {
	which := "Table 3: Pre-Scheduled Triangular Solves"
	if kind == machine.SelfExecutingSim {
		which = "Table 2: Self-Executing Triangular Solves"
	}
	fmt.Fprintf(w, "%s (%d processors, work units)\n", which, nproc)
	fmt.Fprintf(w, "%-9s %7s %9s %10s %10s %8s %8s",
		"Problem", "Phases", "SymbEff", "Parallel", "Rotating", "1PE-Par", "1PE-Seq")
	if kind == machine.SelfExecutingSim {
		fmt.Fprintf(w, " %10s", "Doacross")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %7d %9.2f %10.0f %10.0f %8.0f %8.0f",
			r.Problem, r.Phases, r.SymbolicEff, r.ParallelTime,
			r.RotatingEstimate, r.OnePEParallel, r.OnePESeq)
		if kind == machine.SelfExecutingSim {
			fmt.Fprintf(w, " %10.0f", r.DoacrossTime)
		}
		fmt.Fprintln(w)
	}
}
