package tables

import (
	"bytes"
	"strings"
	"testing"

	"doconsider/internal/machine"
)

// Smaller problem sets keep the test suite fast; the full paper sets run
// from cmd/loops and the benchmarks.
var quickSet = []string{"SPE4", "5-PT"}

func TestTable1ShapesAndFormat(t *testing.T) {
	rows, err := Table1([]string{"SPE2", "SPE4", "5-PT"}, 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SelfTime <= 0 || r.PreTime <= 0 {
			t.Errorf("%s: nonpositive times", r.Problem)
		}
		if r.SelfEff <= 0 || r.SelfEff > 1 || r.PreEff <= 0 || r.PreEff > 1 {
			t.Errorf("%s: efficiencies out of range: %+v", r.Problem, r)
		}
		// Headline result: self-execution beats pre-scheduling on the
		// narrow many-phase problems (SPE and 5-PT all qualify at 16 procs).
		if r.SelfTime >= r.PreTime {
			t.Errorf("%s: self-executing (%v) did not beat pre-scheduled (%v)",
				r.Problem, r.SelfTime, r.PreTime)
		}
	}
	var buf bytes.Buffer
	FprintTable1(&buf, rows, 16)
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "SPE4") {
		t.Error("Table 1 formatting broken")
	}
}

func TestTriSolveDecomposition(t *testing.T) {
	for _, kind := range []machine.Executor{machine.SelfExecutingSim, machine.PreScheduledSim} {
		rows, err := TriSolveDecomposition(quickSet, 16, kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Phases < 2 {
				t.Errorf("%s: phases = %d", r.Problem, r.Phases)
			}
			if r.SymbolicEff <= 0 || r.SymbolicEff > 1 {
				t.Errorf("%s: symbolic eff %v", r.Problem, r.SymbolicEff)
			}
			// The decomposition chain must be ordered as in the paper:
			// 1PE-Seq <= 1PE-Par <= Rotating (pre adds barrier) and the
			// parallel time is at least the 1PE-Seq estimate.
			if r.OnePESeq > r.OnePEParallel+1e-9 {
				t.Errorf("%s: 1PE-Seq %v > 1PE-Par %v", r.Problem, r.OnePESeq, r.OnePEParallel)
			}
			if r.RotatingEstimate < r.OnePEParallel-1e-9 {
				t.Errorf("%s: rotating %v < 1PE-Par %v", r.Problem, r.RotatingEstimate, r.OnePEParallel)
			}
			if r.ParallelTime < r.OnePESeq-1e-9 {
				t.Errorf("%s: parallel %v < 1PE-Seq %v", r.Problem, r.ParallelTime, r.OnePESeq)
			}
		}
		if kind == machine.SelfExecutingSim {
			for _, r := range rows {
				// Doacross is consistently worse than the reordered loop.
				if r.DoacrossTime < r.ParallelTime {
					t.Errorf("%s: doacross %v beat self-executing %v",
						r.Problem, r.DoacrossTime, r.ParallelTime)
				}
			}
		}
		var buf bytes.Buffer
		FprintSolveRows(&buf, rows, kind, 16)
		if !strings.Contains(buf.String(), "Phases") {
			t.Error("solve rows formatting broken")
		}
	}
}

func TestTable2BeatsTable3(t *testing.T) {
	self, err := TriSolveDecomposition(quickSet, 16, machine.SelfExecutingSim)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := TriSolveDecomposition(quickSet, 16, machine.PreScheduledSim)
	if err != nil {
		t.Fatal(err)
	}
	for k := range self {
		if self[k].SymbolicEff < pre[k].SymbolicEff {
			t.Errorf("%s: self symbolic eff %v < pre %v",
				self[k].Problem, self[k].SymbolicEff, pre[k].SymbolicEff)
		}
	}
}

func TestTable4Projections(t *testing.T) {
	rows, err := Table4(quickSet, []int{16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.SelfEff) != 3 || len(r.PreEff) != 3 {
			t.Fatalf("%s: wrong series lengths", r.Problem)
		}
		// The paper's projection: pre-scheduled efficiency deteriorates
		// faster with processor count than self-executing, in relative
		// terms (it is already much lower at 16 processors).
		decaySelf := r.SelfEff[2] / r.SelfEff[0]
		decayPre := r.PreEff[2] / r.PreEff[0]
		if decayPre > decaySelf {
			t.Errorf("%s: pre-scheduled retained %v of its efficiency, self %v — wrong ordering",
				r.Problem, decayPre, decaySelf)
		}
		// Both series decline with processor count.
		for k := 1; k < 3; k++ {
			if r.SelfEff[k] > r.SelfEff[k-1]+1e-9 || r.PreEff[k] > r.PreEff[k-1]+1e-9 {
				t.Errorf("%s: efficiency not declining with P: %+v", r.Problem, r)
			}
		}
		for k := range r.SelfEff {
			if r.SelfEff[k] < r.PreEff[k] {
				t.Errorf("%s: projected SE %v < PS %v at index %d",
					r.Problem, r.SelfEff[k], r.PreEff[k], k)
			}
		}
	}
	var buf bytes.Buffer
	FprintTable4(&buf, rows, []int{16, 32, 64})
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("Table 4 formatting broken")
	}
}

func TestTable5(t *testing.T) {
	rows, err := Table5([]string{"SPE4", "20-3-2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GlobalRun <= 0 || r.LocalRun <= 0 {
			t.Errorf("%s: nonpositive run times", r.Problem)
		}
		// Local scheduling must be cheaper to construct than global.
		if r.LocalWall > r.GlobalWall*10 {
			t.Errorf("%s: local schedule wall %v suspiciously above global %v",
				r.Problem, r.LocalWall, r.GlobalWall)
		}
		// Local and global run times are comparable under self-execution
		// (the paper's conclusion): within a factor of two either way.
		ratio := r.LocalRun / r.GlobalRun
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s: local/global run ratio %v outside comparable band", r.Problem, ratio)
		}
	}
	var buf bytes.Buffer
	FprintTable5(&buf, rows, 16)
	if !strings.Contains(buf.String(), "Table 5") {
		t.Error("Table 5 formatting broken")
	}
}

func TestFigure12Shape(t *testing.T) {
	pts, err := Figure12(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("points = %d", len(pts))
	}
	// Self-executing efficiency stays high and smooth; barrier efficiency
	// collapses at power-of-two processor counts on the 65×65 mesh
	// (64j ≡ 0 mod P puts whole wavefronts on one processor).
	for _, pt := range pts {
		if pt.SelfExecE < pt.BarrierE-1e-9 {
			t.Errorf("P=%d: self %v below barrier %v", pt.Procs, pt.SelfExecE, pt.BarrierE)
		}
	}
	collapse := pts[15].BarrierE // P=16
	if collapse > 0.2 {
		t.Errorf("barrier efficiency at P=16 should collapse, got %v", collapse)
	}
	if pts[15].SelfExecE < 0.5 {
		t.Errorf("self-executing efficiency at P=16 should stay high, got %v", pts[15].SelfExecE)
	}
	// Wild fluctuation: the swing across P=13..16 exceeds what self-exec shows.
	var barMin, barMax = 1.0, 0.0
	var selfMin, selfMax = 1.0, 0.0
	for _, pt := range pts[12:] {
		barMin = min(barMin, pt.BarrierE)
		barMax = max(barMax, pt.BarrierE)
		selfMin = min(selfMin, pt.SelfExecE)
		selfMax = max(selfMax, pt.SelfExecE)
	}
	if barMax-barMin < 2*(selfMax-selfMin) {
		t.Errorf("barrier swing %v not dominating self swing %v", barMax-barMin, selfMax-selfMin)
	}
	var buf bytes.Buffer
	FprintFigure12(&buf, pts)
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Error("Figure 12 formatting broken")
	}
}

func TestFigure13MatchesModel(t *testing.T) {
	pts, err := Figure13(16, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if diff := pt.SimulatedE - pt.ModelE; diff > 0.05 || diff < -0.05 {
			t.Errorf("P=%d: simulated %v vs model %v", pt.Procs, pt.SimulatedE, pt.ModelE)
		}
	}
	var buf bytes.Buffer
	FprintFigure13(&buf, pts, 16, 64)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Error("Figure 13 formatting broken")
	}
}

func TestFigure9Rendering(t *testing.T) {
	var buf bytes.Buffer
	if err := FprintFigure9(&buf, 5, 7, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "Figure 10") {
		t.Error("Figure 9/10 rendering broken")
	}
	// The top-right point of a 5×7 mesh is in wavefront 10.
	if !strings.Contains(out, "10") {
		t.Error("expected wavefront 10 in output")
	}
}

func TestSummary(t *testing.T) {
	var buf bytes.Buffer
	FprintSummary(&buf)
	if !strings.Contains(buf.String(), "Recommended") {
		t.Error("summary missing recommendation quadrant")
	}
}
