package tables

import (
	"fmt"
	"io"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
	"doconsider/internal/trisolve"
)

// TimeGoRow is one row of the §5.1.2 accounting, with both the simulated
// decomposition (deterministic, Multimax-calibrated) and a measured
// goroutine run on the host.
type TimeGoRow struct {
	Executor     string
	SimBusyFrac  float64       // simulated mean busy fraction across processors
	SimIdleFrac  float64       // simulated mean idle fraction
	SimMakespan  float64       // simulated makespan, work units
	HostTotal    time.Duration // measured wall time of the goroutine run
	HostMaxWait  float64       // worst per-processor waiting share (measured)
	HostSpinHits int64         // dependences not ready on first check (self-exec)
}

// WhereDoesTheTimeGo decomposes one triangular solve on the named problem
// into busy and waiting time, per executor, reproducing the §5.1.2
// analysis with both the cost model and real goroutines.
func WhereDoesTheTimeGo(name string, nproc int) ([]TimeGoRow, error) {
	p, err := problems.Get(name)
	if err != nil {
		return nil, err
	}
	costs := machine.MultimaxCosts()
	gs := schedule.Global(p.Wf, nproc)

	rhs := make([]float64, p.L.N)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, p.L.N)

	var rows []TimeGoRow

	// Self-executing.
	simSelf, err := machine.SimulateSelfExecuting(gs, p.Deps, p.Work, costs)
	if err != nil {
		return nil, err
	}
	body := trisolve.ForwardBody(p.L, x, rhs)
	mSelf, bdSelf := executor.RunSelfExecutingTimed(gs, p.Deps, body)
	rows = append(rows, TimeGoRow{
		Executor:     "self-executing",
		SimBusyFrac:  meanFrac(simSelf.Busy, simSelf.Makespan),
		SimIdleFrac:  meanFrac(simSelf.Idle, simSelf.Makespan),
		SimMakespan:  simSelf.Makespan,
		HostTotal:    bdSelf.Total,
		HostMaxWait:  bdSelf.MaxWaiting(),
		HostSpinHits: mSelf.SpinWaits,
	})

	// Pre-scheduled.
	simPre := machine.SimulatePreScheduled(gs, p.Work, costs)
	_, bdPre := executor.RunPreScheduledTimed(gs, body)
	rows = append(rows, TimeGoRow{
		Executor:    "pre-scheduled",
		SimBusyFrac: meanFrac(simPre.Busy, simPre.Makespan),
		SimIdleFrac: meanFrac(simPre.Idle, simPre.Makespan),
		SimMakespan: simPre.Makespan,
		HostTotal:   bdPre.Total,
		HostMaxWait: bdPre.MaxWaiting(),
	})
	return rows, nil
}

func meanFrac(parts []float64, total float64) float64 {
	if total == 0 || len(parts) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range parts {
		s += v
	}
	return s / (float64(len(parts)) * total)
}

// FprintTimeGo renders the §5.1.2 decomposition.
func FprintTimeGo(w io.Writer, name string, nproc int, rows []TimeGoRow) {
	fmt.Fprintf(w, "Where does the time go: %s, %d processors\n", name, nproc)
	fmt.Fprintf(w, "%-16s %10s %10s %12s %12s %10s %10s\n",
		"Executor", "SimBusy", "SimIdle", "SimMakespan", "HostWall", "MaxWait", "SpinHits")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9.1f%% %9.1f%% %12.0f %12s %9.1f%% %10d\n",
			r.Executor, 100*r.SimBusyFrac, 100*r.SimIdleFrac, r.SimMakespan,
			r.HostTotal.Round(time.Microsecond), 100*r.HostMaxWait, r.HostSpinHits)
	}
}
