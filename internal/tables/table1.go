// Package tables contains one driver per table and figure of the paper's
// evaluation section. Each driver returns structured rows and has a
// formatter that prints them in the paper's layout, so `loops tableN`
// regenerates the corresponding artifact.
//
// Times from the cost-model simulator are reported in work units (one unit
// = one multiply-add pair at Tflop=1); the paper's milliseconds on the
// Encore Multimax/320 are a fixed multiple of these, so ratios, winners
// and crossovers — the properties the reproduction targets — carry over.
package tables

import (
	"fmt"
	"io"
	"time"

	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// DefaultProcs is the paper's machine size.
const DefaultProcs = 16

// Table1Row compares full PCGPAK-style solves under self-execution and
// pre-scheduling on one test problem.
type Table1Row struct {
	Problem    string
	Iterations int           // Krylov iterations of the simulated solve
	SelfTime   float64       // total solve time, self-executing (work units)
	SelfEff    float64       // parallel efficiency, self-executing
	PreTime    float64       // total solve time, pre-scheduled (work units)
	PreEff     float64       // parallel efficiency, pre-scheduled
	SortTime   time.Duration // measured wall time of the global topological sort + schedule
}

// solveCostModel estimates the cost of one preconditioned Krylov iteration:
// a sparse matvec (perfectly parallel over contiguous rows), the forward
// and backward triangular solves (scheduled executors), and five vector
// operations (SAXPYs and inner products, perfectly parallel). Costs are in
// multiply-add work units.
type solveCostModel struct {
	matvec  float64 // flops of A*x
	vecops  float64 // flops of the per-iteration vector work
	fwdSeq  float64 // sequential flops of the forward solve
	backSeq float64 // sequential flops of the backward solve
}

func iterationModel(p *problems.Problem) solveCostModel {
	n := float64(p.A.N)
	return solveCostModel{
		matvec:  float64(p.A.NNZ()),
		vecops:  5 * n,
		fwdSeq:  problems.TotalWork(p.Work),
		backSeq: problems.TotalWork(p.Work), // U has the mirrored structure
	}
}

// Table1 reproduces Table 1: PCGPAK with self-executing vs pre-scheduled
// triangular solves on nproc processors. Iteration counts are fixed per
// problem by a deterministic convergence model (iterations scale with the
// problem's phase count is not physical; we use a fixed 50-iteration solve,
// matching the paper's observation that scheduling is amortized over "a
// substantial number of iterations").
func Table1(names []string, nproc int, iters int) ([]Table1Row, error) {
	costs := machine.MultimaxCosts()
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		cm := iterationModel(p)

		// Inspector cost: measured wall time of the wavefront sweep +
		// schedule construction (the paper's "topological sort" column).
		// Following §5.1.1, the outer-loop index set is partitioned in a
		// wrapped (striped) manner and each processor's indices are sorted
		// by wavefront — i.e. local scheduling for both executors.
		t0 := time.Now()
		wf, err := wavefront.Compute(p.Deps)
		if err != nil {
			return nil, err
		}
		gs := schedule.Local(wf, nproc, schedule.Striped)
		sortTime := time.Since(t0)

		// Backward solve: reflected dependence structure of U = L^T.
		u := p.L.Transpose()
		depsU := wavefront.FromUpper(u)
		wfU, err := wavefront.Compute(depsU)
		if err != nil {
			return nil, err
		}
		gsU := schedule.Local(wfU, nproc, schedule.Striped)
		workU := make([]float64, u.N)
		for i := 0; i < u.N; i++ {
			workU[i] = float64(u.RowNNZ(u.N - 1 - i)) // iteration k handles row n-1-k
		}

		seqIter := cm.matvec + cm.vecops + cm.fwdSeq + cm.backSeq
		easy := (cm.matvec + cm.vecops) / float64(nproc)

		fwdSelf, err := machine.SimulateSelfExecuting(gs, p.Deps, p.Work, costs)
		if err != nil {
			return nil, err
		}
		backSelf, err := machine.SimulateSelfExecuting(gsU, depsU, workU, costs)
		if err != nil {
			return nil, err
		}
		fwdPre := machine.SimulatePreScheduled(gs, p.Work, costs)
		backPre := machine.SimulatePreScheduled(gsU, workU, costs)

		selfIter := easy + fwdSelf.Makespan + backSelf.Makespan
		preIter := easy + fwdPre.Makespan + backPre.Makespan

		it := float64(iters)
		rows = append(rows, Table1Row{
			Problem:    name,
			Iterations: iters,
			SelfTime:   selfIter * it,
			SelfEff:    seqIter * it / (float64(nproc) * selfIter * it),
			PreTime:    preIter * it,
			PreEff:     seqIter * it / (float64(nproc) * preIter * it),
			SortTime:   sortTime,
		})
	}
	return rows, nil
}

// FprintTable1 renders Table 1 rows in the paper's layout.
func FprintTable1(w io.Writer, rows []Table1Row, nproc int) {
	fmt.Fprintf(w, "Table 1: Self-Execution vs Pre-Scheduling for PCGPAK, %d processors\n", nproc)
	fmt.Fprintf(w, "%-10s %12s %8s %12s %8s %12s %10s\n",
		"Problem", "SelfTime", "SelfEff", "PreTime", "PreEff", "Pre/Self", "SortWall")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.0f %8.3f %12.0f %8.3f %12.3f %10s\n",
			r.Problem, r.SelfTime, r.SelfEff, r.PreTime, r.PreEff,
			r.PreTime/r.SelfTime, r.SortTime.Round(10*time.Microsecond))
	}
}
