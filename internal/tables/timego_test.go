package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestWhereDoesTheTimeGo(t *testing.T) {
	rows, err := WhereDoesTheTimeGo("SPE4", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SimBusyFrac <= 0 || r.SimBusyFrac > 1 {
			t.Errorf("%s: busy frac %v", r.Executor, r.SimBusyFrac)
		}
		if r.SimBusyFrac+r.SimIdleFrac > 1.001 {
			t.Errorf("%s: busy+idle = %v > 1", r.Executor, r.SimBusyFrac+r.SimIdleFrac)
		}
		if r.SimMakespan <= 0 || r.HostTotal <= 0 {
			t.Errorf("%s: missing times: %+v", r.Executor, r)
		}
	}
	// Self-executing busy fraction should beat pre-scheduled (less idling).
	if rows[0].SimBusyFrac < rows[1].SimBusyFrac {
		t.Errorf("self busy %v < pre busy %v", rows[0].SimBusyFrac, rows[1].SimBusyFrac)
	}
	var buf bytes.Buffer
	FprintTimeGo(&buf, "SPE4", 8, rows)
	if !strings.Contains(buf.String(), "Where does the time go") {
		t.Error("formatting broken")
	}
}

func TestWhereDoesTheTimeGoUnknown(t *testing.T) {
	if _, err := WhereDoesTheTimeGo("nope", 4); err == nil {
		t.Error("accepted unknown problem")
	}
}
