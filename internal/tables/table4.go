package tables

import (
	"fmt"
	"io"

	"doconsider/internal/machine"
	"doconsider/internal/problems"
	"doconsider/internal/schedule"
)

// Table4Row projects parallel efficiencies to larger machines, as the paper
// does from its 16-processor measurements: non-load-balance losses (the
// "Best" efficiency) are assumed to stay constant, while the symbolically
// estimated (load balance) efficiency is recomputed per processor count.
type Table4Row struct {
	Problem  string
	BestSelf float64   // efficiency with perfect balance, self-executing overheads
	BestPre  float64   // efficiency with perfect balance, pre-scheduled overheads
	SelfEff  []float64 // projected self-executing efficiency per processor count
	PreEff   []float64 // projected pre-scheduled efficiency per processor count
}

// Table4 computes projections for the given processor counts (the paper
// uses 16, 32, 64).
func Table4(names []string, procCounts []int) ([]Table4Row, error) {
	costs := machine.MultimaxCosts()
	rows := make([]Table4Row, 0, len(names))
	for _, name := range names {
		p, err := problems.Get(name)
		if err != nil {
			return nil, err
		}
		seq := problems.TotalWork(p.Work) * costs.Tflop
		row := Table4Row{Problem: name}
		for k, nproc := range procCounts {
			gs := schedule.Global(p.Wf, nproc)
			symSelf, err := machine.SymbolicEfficiency(machine.SelfExecutingSim, gs, p.Deps, p.Work)
			if err != nil {
				return nil, err
			}
			symPre, err := machine.SymbolicEfficiency(machine.PreScheduledSim, gs, p.Deps, p.Work)
			if err != nil {
				return nil, err
			}
			// Best: perfect balance, only per-operation overheads (and
			// barriers for pre-scheduling) remain.
			rotSelf := machine.RotatingEstimate(machine.SelfExecutingSim, gs, p.Deps, p.Work, costs)
			rotPre := machine.RotatingEstimate(machine.PreScheduledSim, gs, p.Deps, p.Work, costs)
			bestSelf := seq / (float64(nproc) * rotSelf)
			bestPre := seq / (float64(nproc) * rotPre)
			if k == 0 {
				row.BestSelf = bestSelf
				row.BestPre = bestPre
			}
			row.SelfEff = append(row.SelfEff, bestSelf*symSelf)
			row.PreEff = append(row.PreEff, bestPre*symPre)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTable4 renders Table 4 rows.
func FprintTable4(w io.Writer, rows []Table4Row, procCounts []int) {
	fmt.Fprintf(w, "Table 4: Projected efficiencies (Best at %d processors)\n", procCounts[0])
	fmt.Fprintf(w, "%-9s %10s %10s", "Problem", "BestS.E.", "BestP.S.")
	for _, p := range procCounts {
		fmt.Fprintf(w, " %7s %7s", fmt.Sprintf("SE@%d", p), fmt.Sprintf("PS@%d", p))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %10.2f %10.2f", r.Problem, r.BestSelf, r.BestPre)
		for k := range r.SelfEff {
			fmt.Fprintf(w, " %7.2f %7.2f", r.SelfEff[k], r.PreEff[k])
		}
		fmt.Fprintln(w)
	}
}
