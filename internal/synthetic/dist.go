// Package synthetic implements the paper's parameterized workload generator
// (Section 4.1): dependence matrices over a 2-D mesh whose out-degree
// follows a Poisson distribution and whose link distances follow a
// geometric distribution under the Manhattan metric.
//
// A workload named "65-4-3" is a 65×65 mesh with an average of 4 dependency
// links per index (Poisson) at an average link distance of 3 (geometric),
// matching the naming used in Section 5.
package synthetic

import (
	"math"
	"math/rand"
)

// Poisson samples a Poisson random variable with mean lambda using Knuth's
// product-of-uniforms method, which is exact and fast for the small means
// used by the workload generator.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric samples a geometric random variable on {1, 2, ...} with the
// given mean (mean must be >= 1). The paper assigns link distances from
// this distribution: Pr[X = i] = (1-p) p^(i-1) with mean 1/(1-p).
func Geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 - 1/mean // success parameter; Pr[X=i] = (1-p)p^{i-1}
	u := rng.Float64()
	// Inversion: smallest i with 1 - p^i >= u.
	d := 1 + int(math.Floor(math.Log(1-u)/math.Log(p)))
	if d < 1 {
		d = 1
	}
	return d
}
