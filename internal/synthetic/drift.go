package synthetic

import (
	"math/rand"
	"sort"

	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

// driftRow accumulates the pending edits to one row while a drift set is
// generated.
type driftRow struct {
	ins []sparse.EditEntry
	del []int32
}

// pending reports whether column c is already touched by this row's
// accumulated edits.
func (rs *driftRow) pending(c int32) bool {
	if rs == nil {
		return false
	}
	for _, e := range rs.ins {
		if e.Col == c {
			return true
		}
	}
	for _, d := range rs.del {
		if d == c {
			return true
		}
	}
	return false
}

// DriftLower generates structural drift for a lower triangular factor:
// count row edits that insert level-compatible fill next to the existing
// pattern, plus (with probability delFrac per edit) deletions of
// non-critical entries. This models the drift of real recurring
// workloads — adaptive mesh steps, ILU refactorizations whose drop
// tolerance admits or drops a neighbor — where nonzeros appear and
// vanish adjacent to entries that are already there, below the row's
// wavefront level, rather than at random long range. Level-compatible
// edits keep the repair cone within the edit footprint, which is what
// makes the drifting-workload scenario repairable at all; arbitrary
// level-breaking edits are legal too but route to a full rebuild.
//
// wf must be the wavefront assignment of the factor's forward-solve
// dependence structure (wavefront.Compute of wavefront.FromLower; pass
// nil to have it computed here). The returned edits apply to a via
// sparse.CSR.ApplyRowEdits; nil when the factor admits no such drift
// (e.g. order 1).
func DriftLower(rng *rand.Rand, a *sparse.CSR, wf []int32, count int, delFrac float64) []sparse.RowEdit {
	n := a.N
	if n < 2 || count < 1 {
		return nil
	}
	if wf == nil {
		var err error
		if wf, err = wavefront.Compute(wavefront.FromLower(a)); err != nil {
			return nil
		}
	}
	rows := map[int32]*driftRow{}
	for done, tries := 0, 0; done < count && tries < count*60; tries++ {
		i := rng.Intn(n-1) + 1
		cols, _ := a.Row(i)
		var anchors []int32 // existing strictly-lower entries
		for _, c := range cols {
			if int(c) < i {
				anchors = append(anchors, c)
			}
		}
		if len(anchors) == 0 {
			continue
		}
		rs := rows[int32(i)]
		if rng.Float64() < delFrac {
			// Delete a non-critical entry: one whose level sits more than
			// a step below the row's, so it cannot be the dependence that
			// defines the row's level and removing it moves nothing.
			var dels []int32
			for _, c := range anchors {
				if wf[c]+1 < wf[i] && !rs.pending(c) {
					dels = append(dels, c)
				}
			}
			if len(dels) > 0 {
				if rs == nil {
					rs = &driftRow{}
					rows[int32(i)] = rs
				}
				rs.del = append(rs.del, dels[rng.Intn(len(dels))])
				done++
				continue
			}
		}
		// Insert the nearest absent level-compatible column below a
		// random anchor.
		t := anchors[rng.Intn(len(anchors))]
		ins := int32(-1)
		for c := t - 1; c >= 0 && c >= t-16; c-- {
			if wf[c] < wf[i] && a.At(i, int(c)) == 0 && !rs.pending(c) {
				ins = c
				break
			}
		}
		if ins < 0 {
			continue
		}
		if rs == nil {
			rs = &driftRow{}
			rows[int32(i)] = rs
		}
		rs.ins = append(rs.ins, sparse.EditEntry{Col: ins, Val: 0.01 * float64(rng.Intn(7)+1)})
		done++
	}
	out := make([]sparse.RowEdit, 0, len(rows))
	for r, rs := range rows {
		if len(rs.ins) == 0 && len(rs.del) == 0 {
			continue
		}
		out = append(out, sparse.RowEdit{Row: r, Insert: rs.ins, Delete: rs.del})
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Row < out[y].Row })
	return out
}
