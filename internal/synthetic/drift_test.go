package synthetic

import (
	"math/rand"
	"testing"

	"doconsider/internal/sparse"
	"doconsider/internal/wavefront"
)

func TestDriftLowerLevelCompatible(t *testing.T) {
	a := Generate(Config{Mesh: 20, Degree: 3, Distance: 2, Seed: 9})
	wf, err := wavefront.Compute(wavefront.FromLower(a))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	edits := DriftLower(rng, a, wf, 12, 0.3)
	if len(edits) == 0 {
		t.Fatal("no edits generated")
	}
	b, err := a.ApplyRowEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	// Level-compatible drift must leave the wavefront assignment intact —
	// that is the property that keeps the repair cone inside the edit
	// footprint.
	wf2, err := wavefront.Compute(wavefront.FromLower(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wf {
		if wf[i] != wf2[i] {
			t.Fatalf("wf[%d] moved %d -> %d; drift not level-compatible", i, wf[i], wf2[i])
		}
	}
	// Deterministic for a fixed seed.
	again := DriftLower(rand.New(rand.NewSource(5)), a, wf, 12, 0.3)
	if len(again) != len(edits) {
		t.Fatalf("drift not deterministic: %d vs %d row edits", len(again), len(edits))
	}
	for k := range edits {
		if edits[k].Row != again[k].Row || len(edits[k].Insert) != len(again[k].Insert) ||
			len(edits[k].Delete) != len(again[k].Delete) {
			t.Fatalf("drift not deterministic at row edit %d", k)
		}
	}
}

func TestDriftLowerDegenerate(t *testing.T) {
	one := sparse.MustAssemble(1, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if edits := DriftLower(rand.New(rand.NewSource(1)), one, nil, 4, 0.5); edits != nil {
		t.Fatalf("order-1 factor drifted: %v", edits)
	}
}
