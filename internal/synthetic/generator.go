package synthetic

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"doconsider/internal/sparse"
	"doconsider/internal/stencil"
)

// Config parameterizes the workload generator.
type Config struct {
	Mesh     int     // the mesh is Mesh×Mesh points, naturally ordered
	Degree   float64 // mean number of dependency links per index (Poisson)
	Distance float64 // mean Manhattan link distance (geometric)
	Seed     int64   // RNG seed; equal seeds give identical workloads
}

// Name returns the paper's "mesh-degree-distance" label, e.g. "65-4-3".
func (c Config) Name() string {
	deg := strconv.FormatFloat(c.Degree, 'g', -1, 64)
	dist := strconv.FormatFloat(c.Distance, 'g', -1, 64)
	return fmt.Sprintf("%d-%s-%s", c.Mesh, deg, dist)
}

// Parse decodes a "mesh-degree-distance" label into a Config with the given
// seed, e.g. Parse("65-4-1.5", 7).
func Parse(name string, seed int64) (Config, error) {
	parts := strings.Split(name, "-")
	if len(parts) != 3 {
		return Config{}, fmt.Errorf("synthetic: bad workload name %q", name)
	}
	mesh, err := strconv.Atoi(parts[0])
	if err != nil {
		return Config{}, fmt.Errorf("synthetic: bad mesh in %q: %w", name, err)
	}
	deg, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Config{}, fmt.Errorf("synthetic: bad degree in %q: %w", name, err)
	}
	dist, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return Config{}, fmt.Errorf("synthetic: bad distance in %q: %w", name, err)
	}
	return Config{Mesh: mesh, Degree: deg, Distance: dist, Seed: seed}, nil
}

// Generate produces the dependence matrix of the synthetic workload: a unit
// lower triangular matrix whose off-diagonal entries encode the dependency
// links. For each mesh point, the number of links is Poisson(Degree) and
// each link connects the point to a uniformly chosen partner at geometric
// Manhattan distance; the link is oriented so that the higher index depends
// on the lower, which makes the matrix a valid triangular-solve workload.
func Generate(c Config) *sparse.CSR {
	rng := rand.New(rand.NewSource(c.Seed))
	g := stencil.Grid2D{NX: c.Mesh, NY: c.Mesh}
	n := g.N()
	ts := make([]sparse.Triplet, 0, n*(1+int(c.Degree)))
	// candidate buffer for ring enumeration
	var ring [][2]int
	for k := 0; k < n; k++ {
		ki, kj := g.Coords(k)
		links := Poisson(rng, c.Degree)
		for l := 0; l < links; l++ {
			d := Geometric(rng, c.Distance)
			ring = ring[:0]
			// All in-grid points at Manhattan distance exactly d from (ki,kj).
			for a := 0; a <= d; a++ {
				b := d - a
				var cand [][2]int
				switch {
				case a == 0:
					cand = [][2]int{{ki, kj + b}, {ki, kj - b}}
				case b == 0:
					cand = [][2]int{{ki + a, kj}, {ki - a, kj}}
				default:
					cand = [][2]int{
						{ki + a, kj + b}, {ki + a, kj - b},
						{ki - a, kj + b}, {ki - a, kj - b},
					}
				}
				for _, p := range cand {
					if g.In(p[0], p[1]) {
						ring = append(ring, p)
					}
				}
			}
			if len(ring) == 0 {
				continue
			}
			p := ring[rng.Intn(len(ring))]
			q := g.Index(p[0], p[1])
			if q == k {
				continue
			}
			row, col := k, q
			if row < col {
				row, col = col, row
			}
			ts = append(ts, sparse.Triplet{Row: row, Col: col, Val: -(0.1 + 0.4*rng.Float64())})
		}
	}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 1})
	}
	a := sparse.MustAssemble(n, n, ts)
	// Duplicate links were summed by Assemble; renormalize the diagonal so
	// the system stays comfortably nonsingular for solve-based tests.
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var off float64
		diag := -1
		for k, c := range cols {
			if int(c) == i {
				diag = k
			} else {
				if vals[k] < 0 {
					off -= vals[k]
				} else {
					off += vals[k]
				}
			}
		}
		vals[diag] = 1 + off
	}
	return a
}

// Stats summarizes the structure of a generated workload.
type Stats struct {
	N          int     // number of indices
	Links      int     // number of distinct dependence links (off-diagonals)
	AvgDegree  float64 // mean off-diagonal count per row
	MaxRowNNZ  int     // densest row (including diagonal)
	EmptyRows  int     // rows with no dependences (wavefront 0 members)
	AvgRowBand float64 // mean distance between row index and its farthest dependence
}

// Summarize computes structural statistics for a workload matrix.
func Summarize(a *sparse.CSR) Stats {
	s := Stats{N: a.N}
	var bandSum float64
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		off := 0
		far := 0
		for _, c := range cols {
			if int(c) != i {
				off++
				if d := i - int(c); d > far {
					far = d
				}
			}
		}
		s.Links += off
		if off == 0 {
			s.EmptyRows++
		}
		if len(cols) > s.MaxRowNNZ {
			s.MaxRowNNZ = len(cols)
		}
		bandSum += float64(far)
	}
	s.AvgDegree = float64(s.Links) / float64(a.N)
	s.AvgRowBand = bandSum / float64(a.N)
	return s
}
