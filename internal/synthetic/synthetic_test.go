package synthetic

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 2, 4, 8} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.05 {
			t.Errorf("Poisson(%v) sample mean %v", lambda, mean)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("Poisson with nonpositive mean should be 0")
	}
}

func TestGeometricMeanAndSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, mean := range []float64{1.5, 3, 6} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			d := Geometric(rng, mean)
			if d < 1 {
				t.Fatalf("Geometric returned %d < 1", d)
			}
			sum += d
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.1*mean {
			t.Errorf("Geometric(%v) sample mean %v", mean, got)
		}
	}
	if Geometric(rng, 1) != 1 || Geometric(rng, 0.5) != 1 {
		t.Error("Geometric with mean <= 1 should return 1")
	}
}

func TestConfigNameRoundTrip(t *testing.T) {
	c := Config{Mesh: 65, Degree: 4, Distance: 1.5}
	if got := c.Name(); got != "65-4-1.5" {
		t.Fatalf("Name = %q, want 65-4-1.5", got)
	}
	parsed, err := Parse("65-4-1.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Mesh != 65 || parsed.Degree != 4 || parsed.Distance != 1.5 || parsed.Seed != 9 {
		t.Errorf("Parse = %+v", parsed)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"65-4", "x-4-3", "65-y-3", "65-4-z", ""} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	c := Config{Mesh: 20, Degree: 4, Distance: 3, Seed: 7}
	a := Generate(c)
	if a.N != 400 {
		t.Fatalf("N = %d, want 400", a.N)
	}
	if err := a.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	// Strictly lower triangular off-diagonals with a full diagonal.
	for i := 0; i < a.N; i++ {
		cols, _ := a.Row(i)
		hasDiag := false
		for _, col := range cols {
			if int(col) > i {
				t.Fatalf("row %d has upper entry %d", i, col)
			}
			if int(col) == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			t.Fatalf("row %d missing diagonal", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := Config{Mesh: 15, Degree: 3, Distance: 2, Seed: 5}
	a := Generate(c)
	b := Generate(c)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same config produced different structure")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("same config produced different values")
		}
	}
}

func TestGenerateDegreeScales(t *testing.T) {
	lo := Summarize(Generate(Config{Mesh: 30, Degree: 2, Distance: 2, Seed: 1}))
	hi := Summarize(Generate(Config{Mesh: 30, Degree: 6, Distance: 2, Seed: 1}))
	if hi.AvgDegree <= lo.AvgDegree {
		t.Errorf("degree did not scale: lo=%v hi=%v", lo.AvgDegree, hi.AvgDegree)
	}
}

func TestGenerateDistanceScalesBand(t *testing.T) {
	near := Summarize(Generate(Config{Mesh: 30, Degree: 4, Distance: 1.2, Seed: 2}))
	far := Summarize(Generate(Config{Mesh: 30, Degree: 4, Distance: 6, Seed: 2}))
	if far.AvgRowBand <= near.AvgRowBand {
		t.Errorf("distance did not widen band: near=%v far=%v", near.AvgRowBand, far.AvgRowBand)
	}
}

func TestGenerateDiagonallyDominant(t *testing.T) {
	a := Generate(Config{Mesh: 12, Degree: 5, Distance: 2, Seed: 3})
	for i := 0; i < a.N; i++ {
		cols, vals := a.Row(i)
		var off, diag float64
		for k, c := range cols {
			if int(c) == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag < off+0.5 {
			t.Fatalf("row %d weakly dominant: diag=%v off=%v", i, diag, off)
		}
	}
}

func TestSummarize(t *testing.T) {
	a := Generate(Config{Mesh: 10, Degree: 3, Distance: 2, Seed: 4})
	s := Summarize(a)
	if s.N != 100 {
		t.Errorf("N = %d", s.N)
	}
	if s.Links != a.NNZ()-a.N {
		t.Errorf("Links = %d, want %d", s.Links, a.NNZ()-a.N)
	}
	if s.EmptyRows < 1 {
		t.Error("expected at least the first row to be dependence-free")
	}
	if s.MaxRowNNZ < 1 || s.AvgDegree < 0 {
		t.Error("nonsensical stats")
	}
}
