package machine

import (
	"fmt"

	"doconsider/internal/wavefront"
)

// ChunkPolicy determines the number of indices a worker claims, given the
// number of unclaimed indices and the processor count.
type ChunkPolicy func(remaining, nproc int) int

// FixedChunk returns a policy claiming exactly k indices (k >= 1).
func FixedChunk(k int) ChunkPolicy {
	if k < 1 {
		k = 1
	}
	return func(remaining, nproc int) int { return k }
}

// GuidedChunk returns the guided self-scheduling policy of the paper's
// reference [16]: claim ceil(remaining/P), bounded below by minChunk.
func GuidedChunk(minChunk int) ChunkPolicy {
	if minChunk < 1 {
		minChunk = 1
	}
	return func(remaining, nproc int) int {
		c := (remaining + nproc - 1) / nproc
		if c < minChunk {
			c = minChunk
		}
		return c
	}
}

// SimulateSelfScheduled simulates dynamic self-scheduling over a sorted
// (topological) index list in the cost model: a free worker claims the
// next chunk of the list at the instant it finishes its previous chunk,
// then executes the chunk's indices in order with busy-wait dependence
// stalls. Each claim costs claimCost (the shared-counter fetch-and-add the
// paper notes is missing on the Multimax, §2.3). Determinism: simultaneous
// claims are ordered by worker id.
//
// This lets chunk-size and guided-scheduling studies run at any simulated
// processor count, independent of host CPUs.
func SimulateSelfScheduled(order []int32, deps *wavefront.Deps, work []float64, nproc int, policy ChunkPolicy, claimCost float64, c Costs) (Result, error) {
	n := len(order)
	if nproc < 1 {
		nproc = 1
	}
	res := Result{
		Busy: make([]float64, nproc),
		Idle: make([]float64, nproc),
	}
	done := make([]float64, deps.N)
	computed := make([]bool, deps.N)
	clock := make([]float64, nproc)
	// Per-worker current chunk [lo,hi) and position.
	lo := make([]int, nproc)
	hi := make([]int, nproc)
	pos := make([]int, nproc)
	cursor := 0
	remaining := n

	claim := func(w int) {
		if cursor >= n {
			lo[w], hi[w], pos[w] = n, n, n
			return
		}
		k := policy(n-cursor, nproc)
		if k < 1 {
			k = 1
		}
		lo[w] = cursor
		hi[w] = cursor + k
		if hi[w] > n {
			hi[w] = n
		}
		pos[w] = lo[w]
		cursor = hi[w]
		clock[w] += claimCost
		res.Busy[w] += claimCost
	}

	// Initial claims in worker order (all clocks zero).
	for w := 0; w < nproc; w++ {
		claim(w)
	}
	for remaining > 0 {
		progressed := false
		for w := 0; w < nproc; w++ {
			for {
				if pos[w] >= hi[w] {
					if cursor >= n {
						break
					}
					// Worker finished its chunk: claim the next one. Claim
					// ordering among workers follows the outer sweep, which
					// revisits workers until quiescent; because execution
					// times only ever increase clocks, the fixed ordering
					// keeps the simulation deterministic.
					claim(w)
					progressed = true
					continue
				}
				i := order[pos[w]]
				start := clock[w]
				ok := true
				for _, t := range deps.On(int(i)) {
					if !computed[t] {
						ok = false
						break
					}
					if done[t] > start {
						start = done[t]
					}
				}
				if !ok {
					break
				}
				exec := float64(deps.Count(int(i)))*c.Tcheck + work[i]*c.Tflop + c.Tinc + c.Overhead
				res.Idle[w] += start - clock[w]
				res.Busy[w] += exec
				done[i] = start + exec
				computed[i] = true
				clock[w] = done[i]
				pos[w]++
				remaining--
				progressed = true
			}
		}
		if !progressed && remaining > 0 {
			return res, fmt.Errorf("%w: dynamic schedule stalled with %d indices left", ErrStuck, remaining)
		}
	}
	for w := 0; w < nproc; w++ {
		if clock[w] > res.Makespan {
			res.Makespan = clock[w]
		}
	}
	for w := 0; w < nproc; w++ {
		res.Idle[w] += res.Makespan - clock[w]
	}
	res.SeqTime = seqTime(work, c)
	if res.Makespan > 0 {
		res.Efficiency = res.SeqTime / (float64(nproc) * res.Makespan)
	}
	return res, nil
}
