package machine

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Span records the simulated execution of one loop index.
type Span struct {
	Index  int32
	Proc   int32
	Start  float64
	Finish float64
}

// Trace is the full simulated timeline of a run.
type Trace struct {
	P        int
	Makespan float64
	Spans    []Span // sorted by start time
}

// TraceSelfExecuting runs the self-executing simulation and records every
// index's (processor, start, finish) span — the raw material for Gantt
// inspection of pipelining behaviour.
func TraceSelfExecuting(s *schedule.Schedule, deps *wavefront.Deps, work []float64, c Costs) (*Trace, error) {
	tr := &Trace{P: s.P, Spans: make([]Span, 0, s.N)}
	done := make([]float64, s.N)
	computed := make([]bool, s.N)
	pos := make([]int, s.P)
	clock := make([]float64, s.P)
	remaining := s.N
	for remaining > 0 {
		progressed := false
		for p := 0; p < s.P; p++ {
			for pos[p] < s.ProcLen(p) {
				i := s.Proc(p)[pos[p]]
				start := clock[p]
				ok := true
				for _, t := range deps.On(int(i)) {
					if !computed[t] {
						ok = false
						break
					}
					if done[t] > start {
						start = done[t]
					}
				}
				if !ok {
					break
				}
				exec := float64(deps.Count(int(i)))*c.Tcheck + work[i]*c.Tflop + c.Tinc + c.Overhead
				done[i] = start + exec
				computed[i] = true
				clock[p] = done[i]
				tr.Spans = append(tr.Spans, Span{Index: i, Proc: int32(p), Start: start, Finish: done[i]})
				pos[p]++
				remaining--
				progressed = true
			}
		}
		if !progressed && remaining > 0 {
			return nil, ErrStuck
		}
	}
	for p := 0; p < s.P; p++ {
		if clock[p] > tr.Makespan {
			tr.Makespan = clock[p]
		}
	}
	sort.Slice(tr.Spans, func(a, b int) bool { return tr.Spans[a].Start < tr.Spans[b].Start })
	return tr, nil
}

// TracePreScheduled records the timeline of the pre-scheduled executor:
// within each phase a processor runs its indices back to back, then stalls
// at the barrier until the slowest processor (plus Tsynch) releases it.
func TracePreScheduled(s *schedule.Schedule, work []float64, c Costs) *Trace {
	tr := &Trace{P: s.P, Spans: make([]Span, 0, s.N)}
	clock := make([]float64, s.P)
	t := 0.0
	for k := 0; k < s.NumPhases; k++ {
		phaseEnd := t
		for p := 0; p < s.P; p++ {
			clock[p] = t
			for _, i := range s.Phase(p, k) {
				exec := work[i]*c.Tflop + c.Overhead
				tr.Spans = append(tr.Spans, Span{
					Index: i, Proc: int32(p), Start: clock[p], Finish: clock[p] + exec,
				})
				clock[p] += exec
			}
			if clock[p] > phaseEnd {
				phaseEnd = clock[p]
			}
		}
		t = phaseEnd + c.Tsynch
	}
	tr.Makespan = t
	sort.Slice(tr.Spans, func(a, b int) bool { return tr.Spans[a].Start < tr.Spans[b].Start })
	return tr
}

// WriteCSV emits the trace as "index,proc,start,finish" rows.
func (tr *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "index,proc,start,finish"); err != nil {
		return err
	}
	for _, sp := range tr.Spans {
		if _, err := fmt.Fprintf(w, "%d,%d,%.6g,%.6g\n", sp.Index, sp.Proc, sp.Start, sp.Finish); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders an ASCII timeline, one row per processor, width columns
// wide. Busy cells show '#', idle '.', so the pre-scheduled end-of-phase
// stalls and the self-executing pipeline are visible at a glance.
func (tr *Trace) Gantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	if tr.Makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	rows := make([][]byte, tr.P)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / tr.Makespan
	for _, sp := range tr.Spans {
		lo := int(sp.Start * scale)
		hi := int(sp.Finish * scale)
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			rows[sp.Proc][c] = '#'
		}
	}
	for p, row := range rows {
		if _, err := fmt.Fprintf(w, "P%02d |%s|\n", p, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      0%*s%.0f (work units)\n", width-len(fmt.Sprintf("%.0f", tr.Makespan)), "", tr.Makespan)
	return err
}

// Utilization returns the busy fraction of each processor in the trace.
func (tr *Trace) Utilization() []float64 {
	busy := make([]float64, tr.P)
	for _, sp := range tr.Spans {
		busy[sp.Proc] += sp.Finish - sp.Start
	}
	if tr.Makespan > 0 {
		for p := range busy {
			busy[p] /= tr.Makespan
		}
	}
	return busy
}
