package machine

import (
	"math/rand"
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

func sortedOrder(wf []int32) []int32 {
	return schedule.Global(wf, 1).Proc(0)
}

func TestSimulateSelfScheduledBasics(t *testing.T) {
	d, wf, work := meshProblem(10, 10)
	order := sortedOrder(wf)
	for _, pol := range []ChunkPolicy{FixedChunk(1), FixedChunk(8), GuidedChunk(1)} {
		r, err := SimulateSelfScheduled(order, d, work, 4, pol, 0.5, FlopOnly())
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan <= 0 {
			t.Fatal("no makespan")
		}
		// Lower bound: total work / P.
		if r.Makespan < r.SeqTime/4 {
			t.Errorf("makespan %v below work bound %v", r.Makespan, r.SeqTime/4)
		}
		// Busy + idle accounting.
		for w := 0; w < 4; w++ {
			if got := r.Busy[w] + r.Idle[w]; got < r.Makespan-1e-9 || got > r.Makespan+1e-9 {
				t.Errorf("worker %d busy+idle = %v, makespan %v", w, got, r.Makespan)
			}
		}
	}
}

func TestSimulateSelfScheduledRespectsCriticalPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 50 + rng.Intn(150)
		adj := make([][]int32, n)
		for i := 1; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				adj[i] = append(adj[i], int32(rng.Intn(i)))
			}
		}
		d := wavefront.FromAdjacency(adj)
		wf, err := wavefront.Compute(d)
		if err != nil {
			t.Fatal(err)
		}
		work := make([]float64, n)
		for i := range work {
			work[i] = 0.5 + rng.Float64()
		}
		cp, err := wavefront.CriticalPathWork(d, work)
		if err != nil {
			t.Fatal(err)
		}
		r, err := SimulateSelfScheduled(sortedOrder(wf), d, work, 1+rng.Intn(6),
			GuidedChunk(1), 0.2, FlopOnly())
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < cp-1e-9 {
			t.Fatalf("trial %d: makespan %v below critical path %v", trial, r.Makespan, cp)
		}
	}
}

func TestSimulateSelfScheduledClaimCost(t *testing.T) {
	// Smaller chunks mean more claims; with a nonzero claim cost the
	// makespan must not improve when chunk size shrinks to 1 on an
	// embarrassingly parallel workload.
	n := 256
	d := wavefront.FromAdjacency(make([][]int32, n))
	wf, _ := wavefront.Compute(d)
	work := make([]float64, n)
	for i := range work {
		work[i] = 1
	}
	order := sortedOrder(wf)
	fine, err := SimulateSelfScheduled(order, d, work, 8, FixedChunk(1), 2.0, FlopOnly())
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := SimulateSelfScheduled(order, d, work, 8, FixedChunk(32), 2.0, FlopOnly())
	if err != nil {
		t.Fatal(err)
	}
	if fine.Makespan <= coarse.Makespan {
		t.Errorf("chunk=1 makespan %v should exceed chunk=32 %v under claim cost",
			fine.Makespan, coarse.Makespan)
	}
}

func TestSimulateSelfScheduledDeterministic(t *testing.T) {
	d, wf, work := meshProblem(12, 12)
	order := sortedOrder(wf)
	first, err := SimulateSelfScheduled(order, d, work, 5, GuidedChunk(2), 0.3, MultimaxCosts())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		again, err := SimulateSelfScheduled(order, d, work, 5, GuidedChunk(2), 0.3, MultimaxCosts())
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan {
			t.Fatal("dynamic simulation not deterministic")
		}
	}
}

func TestChunkPolicies(t *testing.T) {
	if FixedChunk(0)(100, 4) != 1 {
		t.Error("FixedChunk(0) should clamp to 1")
	}
	if got := GuidedChunk(1)(100, 4); got != 25 {
		t.Errorf("GuidedChunk = %d, want 25", got)
	}
	if got := GuidedChunk(10)(8, 4); got != 10 {
		t.Errorf("GuidedChunk floor = %d, want 10", got)
	}
}
