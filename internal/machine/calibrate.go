package machine

import (
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/barrier"
)

// Calibrate measures the host's per-operation costs with microbenchmarks
// and returns them normalized so Tflop = 1 (the cost of one dependent
// multiply-add): shared-array check (atomic load), increment (atomic
// store), and a global synchronization across nproc goroutines. Use the
// result in place of MultimaxCosts to simulate "this host, if it had
// nproc real processors".
//
// The measurement is best-effort: on a loaded machine the constants
// wobble, so tests should only rely on positivity and coarse ordering.
func Calibrate(nproc int) Costs {
	if nproc < 2 {
		nproc = 2
	}
	const iters = 1 << 16

	// Dependent multiply-add chain: one flop-pair per iteration.
	x := 1.0
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		x = x*0.999999 + 1e-9
	}
	tflop := time.Since(t0).Seconds() / iters
	sink = x

	// Shared-array check: atomic load + compare.
	var flag int32 = 1
	acc := int32(0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if atomic.LoadInt32(&flag) == 1 {
			acc++
		}
	}
	tcheck := time.Since(t0).Seconds() / iters
	sinkI = acc

	// Shared-array increment: atomic store.
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		atomic.StoreInt32(&flag, int32(i))
	}
	tinc := time.Since(t0).Seconds() / iters

	// Global synchronization: barrier rounds across nproc goroutines.
	const rounds = 256
	bar := barrier.NewSenseReversing(nproc)
	var wg sync.WaitGroup
	t0 = time.Now()
	for p := 0; p < nproc; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				bar.Wait()
			}
		}()
	}
	wg.Wait()
	tsynch := time.Since(t0).Seconds() / rounds

	if tflop <= 0 {
		return MultimaxCosts() // timer too coarse; fall back
	}
	return Costs{
		Tflop:    1,
		Tsynch:   tsynch / tflop,
		Tcheck:   tcheck / tflop,
		Tinc:     tinc / tflop,
		Overhead: 0.5, // schedule-array access; keep the Multimax default
	}
}

// sinks prevent the calibration loops from being optimized away.
var (
	sink  float64
	sinkI int32
)
