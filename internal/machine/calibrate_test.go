package machine

import (
	"testing"

	"doconsider/internal/schedule"
)

func TestCalibrateSanity(t *testing.T) {
	c := Calibrate(4)
	if c.Tflop != 1 {
		t.Errorf("Tflop = %v, want 1 (normalized)", c.Tflop)
	}
	if c.Tsynch <= 0 || c.Tcheck <= 0 || c.Tinc <= 0 {
		t.Errorf("nonpositive calibrated costs: %+v", c)
	}
	// A 4-party barrier must cost more than a single atomic load.
	if c.Tsynch < c.Tcheck {
		t.Errorf("Tsynch %v < Tcheck %v", c.Tsynch, c.Tcheck)
	}
}

func TestCalibrateUsableInSimulation(t *testing.T) {
	d, wf, work := meshProblem(8, 8)
	c := Calibrate(4)
	// Simulating with host-calibrated costs must work end to end.
	r, err := SimulateSelfExecuting(schedule.Global(wf, 4), d, work, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan <= 0 || r.Efficiency <= 0 || r.Efficiency > 1 {
		t.Errorf("implausible calibrated simulation: %+v", r)
	}
}
