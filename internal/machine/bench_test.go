package machine

import (
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

func benchSim(b *testing.B) (*schedule.Schedule, *wavefront.Deps, []float64) {
	b.Helper()
	a := stencil.Laplace2D(100, 100)
	d := wavefront.FromLower(a)
	wf, err := wavefront.Compute(d)
	if err != nil {
		b.Fatal(err)
	}
	work := make([]float64, d.N)
	for i := range work {
		work[i] = 1
	}
	return schedule.Global(wf, 16), d, work
}

func BenchmarkSimulatePreScheduled(b *testing.B) {
	s, _, work := benchSim(b)
	c := MultimaxCosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulatePreScheduled(s, work, c)
	}
}

func BenchmarkSimulateSelfExecuting(b *testing.B) {
	s, d, work := benchSim(b)
	c := MultimaxCosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateSelfExecuting(s, d, work, c); err != nil {
			b.Fatal(err)
		}
	}
}
