package machine

import (
	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// NUMACosts extends Costs with distinct local and remote shared-array
// access costs, modelling the distributed-memory and hierarchical
// shared-memory machines the paper's §5.1.3 defers to its reference [12]:
// "It is clearly easier to assure performance characteristics that scale
// ... if one designs machines with distributed memory or a hierarchical
// shared memory. We are currently extending such projections to those
// types of machines."
//
// A dependence check is local (cheap) when the producing index is owned by
// the same processor as the consumer, remote (expensive) otherwise; the
// ready-array increment is always local to the producer. Barrier cost
// grows logarithmically with the processor count, as a tree barrier on a
// scalable network would.
type NUMACosts struct {
	Tflop        float64 // per unit of work
	TcheckLocal  float64 // check a ready flag this processor produced
	TcheckRemote float64 // check a ready flag another processor produced
	Tinc         float64 // publish own ready flag
	Overhead     float64 // fixed per-index overhead
	TsynchBase   float64 // barrier cost per log2(P) stage
}

// DefaultNUMACosts returns constants shaped like a late-80s
// distributed-shared-memory design: remote checks an order of magnitude
// more expensive than local ones.
func DefaultNUMACosts() NUMACosts {
	return NUMACosts{
		Tflop:        1.0,
		TcheckLocal:  0.25,
		TcheckRemote: 2.5,
		Tinc:         0.35,
		Overhead:     0.5,
		TsynchBase:   1.0,
	}
}

// barrierCost returns the tree-barrier cost for p processors.
func (c NUMACosts) barrierCost(p int) float64 {
	stages := 0
	for n := 1; n < p; n *= 2 {
		stages++
	}
	if stages == 0 {
		stages = 1
	}
	return c.TsynchBase * float64(stages)
}

// SimulateSelfExecutingNUMA is SimulateSelfExecuting under the NUMA cost
// model: check costs depend on whether the producer of each dependence is
// local to the consuming processor.
func SimulateSelfExecutingNUMA(s *schedule.Schedule, deps *wavefront.Deps, work []float64, c NUMACosts) (Result, error) {
	owner := make([]int32, s.N)
	for p := 0; p < s.P; p++ {
		for _, idx := range s.Proc(p) {
			owner[idx] = int32(p)
		}
	}
	res := Result{
		Busy: make([]float64, s.P),
		Idle: make([]float64, s.P),
	}
	done := make([]float64, s.N)
	computed := make([]bool, s.N)
	pos := make([]int, s.P)
	clock := make([]float64, s.P)
	remaining := s.N
	for remaining > 0 {
		progressed := false
		for p := 0; p < s.P; p++ {
			for pos[p] < s.ProcLen(p) {
				i := s.Proc(p)[pos[p]]
				startFloor := clock[p]
				ok := true
				checkCost := 0.0
				for _, t := range deps.On(int(i)) {
					if !computed[t] {
						ok = false
						break
					}
					if done[t] > startFloor {
						startFloor = done[t]
					}
					if owner[t] == int32(p) {
						checkCost += c.TcheckLocal
					} else {
						checkCost += c.TcheckRemote
					}
				}
				if !ok {
					break
				}
				exec := checkCost + work[i]*c.Tflop + c.Tinc + c.Overhead
				res.Idle[p] += startFloor - clock[p]
				res.Busy[p] += exec
				done[i] = startFloor + exec
				computed[i] = true
				clock[p] = done[i]
				pos[p]++
				remaining--
				progressed = true
			}
		}
		if !progressed && remaining > 0 {
			return res, ErrStuck
		}
	}
	for p := 0; p < s.P; p++ {
		if clock[p] > res.Makespan {
			res.Makespan = clock[p]
		}
	}
	for p := 0; p < s.P; p++ {
		res.Idle[p] += res.Makespan - clock[p]
	}
	for _, w := range work {
		res.SeqTime += w * c.Tflop
	}
	if res.Makespan > 0 {
		res.Efficiency = res.SeqTime / (float64(s.P) * res.Makespan)
	}
	return res, nil
}

// SimulatePreScheduledNUMA is SimulatePreScheduled with the tree-barrier
// cost of the NUMA model (per-index costs do not depend on ownership for
// the barrier executor, which never reads remote ready flags).
func SimulatePreScheduledNUMA(s *schedule.Schedule, work []float64, c NUMACosts) Result {
	flat := Costs{
		Tflop:    c.Tflop,
		Tsynch:   c.barrierCost(s.P),
		Overhead: c.Overhead,
	}
	return SimulatePreScheduled(s, work, flat)
}

// RemoteFraction reports the fraction of dependence checks that cross
// processors under a schedule — the locality metric that determines how
// hard the NUMA model punishes self-execution.
func RemoteFraction(s *schedule.Schedule, deps *wavefront.Deps) float64 {
	owner := make([]int32, s.N)
	for p := 0; p < s.P; p++ {
		for _, idx := range s.Proc(p) {
			owner[idx] = int32(p)
		}
	}
	total, remote := 0, 0
	for i := 0; i < s.N; i++ {
		for _, t := range deps.On(i) {
			total++
			if owner[t] != owner[i] {
				remote++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(remote) / float64(total)
}
