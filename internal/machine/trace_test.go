package machine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

func TestTraceSelfExecutingConsistency(t *testing.T) {
	d, wf, work := meshProblem(8, 8)
	s := schedule.Global(wf, 4)
	c := MultimaxCosts()
	tr, err := TraceSelfExecuting(s, d, work, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 64 {
		t.Fatalf("spans = %d, want 64", len(tr.Spans))
	}
	// Trace makespan must agree with the plain simulation.
	r, err := SimulateSelfExecuting(s, d, work, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Makespan-r.Makespan) > 1e-9 {
		t.Errorf("trace makespan %v, simulation %v", tr.Makespan, r.Makespan)
	}
	// Spans on the same processor must not overlap; dependences must be
	// honoured.
	finish := make(map[int32]float64)
	procEnd := make([]float64, tr.P)
	for _, sp := range tr.Spans {
		if sp.Start < procEnd[sp.Proc]-1e-9 {
			t.Fatalf("processor %d spans overlap", sp.Proc)
		}
		procEnd[sp.Proc] = sp.Finish
		finish[sp.Index] = sp.Finish
	}
	for i := 0; i < d.N; i++ {
		for _, dep := range d.On(i) {
			// Start of i must be at or after finish of dep; find i's span.
			var si Span
			for _, sp := range tr.Spans {
				if sp.Index == int32(i) {
					si = sp
					break
				}
			}
			if si.Start < finish[dep]-1e-9 {
				t.Fatalf("index %d started before dependence %d finished", i, dep)
			}
		}
	}
}

func TestTraceOutputs(t *testing.T) {
	d, wf, work := meshProblem(5, 5)
	s := schedule.Global(wf, 3)
	tr, err := TraceSelfExecuting(s, d, work, FlopOnly())
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 26 { // header + 25
		t.Errorf("csv lines = %d, want 26", lines)
	}
	var gantt bytes.Buffer
	if err := tr.Gantt(&gantt, 40); err != nil {
		t.Fatal(err)
	}
	out := gantt.String()
	if !strings.Contains(out, "P00 |") || !strings.Contains(out, "#") {
		t.Errorf("gantt malformed:\n%s", out)
	}
	util := tr.Utilization()
	for p, u := range util {
		if u <= 0 || u > 1 {
			t.Errorf("proc %d utilization %v", p, u)
		}
	}
}

func TestTracePreScheduledConsistency(t *testing.T) {
	_, wf, work := meshProblem(7, 7)
	s := schedule.Global(wf, 3)
	c := MultimaxCosts()
	tr := TracePreScheduled(s, work, c)
	if len(tr.Spans) != 49 {
		t.Fatalf("spans = %d, want 49", len(tr.Spans))
	}
	// Makespan must match the plain pre-scheduled simulation.
	r := SimulatePreScheduled(s, work, c)
	if math.Abs(tr.Makespan-r.Makespan) > 1e-9 {
		t.Errorf("trace makespan %v, simulation %v", tr.Makespan, r.Makespan)
	}
	// Spans of phase k+1 must start at or after every span of phase k ends
	// plus the barrier.
	endOfPhase := make(map[int32]float64)
	for _, sp := range tr.Spans {
		w := wf[sp.Index]
		if sp.Finish > endOfPhase[w] {
			endOfPhase[w] = sp.Finish
		}
	}
	for _, sp := range tr.Spans {
		w := wf[sp.Index]
		if w > 0 && sp.Start < endOfPhase[w-1]+c.Tsynch-1e-9 {
			t.Fatalf("index %d (phase %d) started before barrier release", sp.Index, w)
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	s := schedule.Natural(0, 2, schedule.Striped)
	d := wavefront.FromAdjacency(nil)
	tr, err := TraceSelfExecuting(s, d, nil, FlopOnly())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Gantt(&buf, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not reported")
	}
}
