package machine

import (
	"math"
	"testing"

	"doconsider/internal/schedule"
)

func TestNUMARemoteChecksCostMore(t *testing.T) {
	d, wf, work := meshProblem(8, 30)
	c := DefaultNUMACosts()
	// Striped local schedule: mesh west-neighbour deps are same-wavefront-
	// offset and mostly cross processors; blocked keeps columns local.
	striped := schedule.Local(wf, 4, schedule.Striped)
	blocked := schedule.Local(wf, 4, schedule.Blocked)
	fStriped := RemoteFraction(striped, d)
	fBlocked := RemoteFraction(blocked, d)
	if fBlocked >= fStriped {
		t.Fatalf("blocked remote fraction %v should be below striped %v", fBlocked, fStriped)
	}
	rStriped, err := SimulateSelfExecutingNUMA(striped, d, work, c)
	if err != nil {
		t.Fatal(err)
	}
	rBlocked, err := SimulateSelfExecutingNUMA(blocked, d, work, c)
	if err != nil {
		t.Fatal(err)
	}
	// More remote checks must increase the busy (communication) volume.
	busyStriped, busyBlocked := 0.0, 0.0
	for p := range rStriped.Busy {
		busyStriped += rStriped.Busy[p]
		busyBlocked += rBlocked.Busy[p]
	}
	if busyStriped <= busyBlocked {
		t.Errorf("striped busy %v should exceed blocked %v (remote check cost)",
			busyStriped, busyBlocked)
	}
}

func TestNUMAReducesToUniformWhenCostsEqual(t *testing.T) {
	d, wf, work := meshProblem(6, 6)
	s := schedule.Global(wf, 3)
	uniform := Costs{Tflop: 1, Tcheck: 0.4, Tinc: 0.3, Overhead: 0.2}
	numa := NUMACosts{Tflop: 1, TcheckLocal: 0.4, TcheckRemote: 0.4, Tinc: 0.3, Overhead: 0.2}
	want, err := SimulateSelfExecuting(s, d, work, uniform)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateSelfExecutingNUMA(s, d, work, numa)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.Makespan-got.Makespan) > 1e-9 {
		t.Errorf("NUMA with equal costs gives %v, uniform gives %v", got.Makespan, want.Makespan)
	}
}

func TestNUMABarrierScalesLogarithmically(t *testing.T) {
	c := DefaultNUMACosts()
	if c.barrierCost(2) >= c.barrierCost(16) {
		t.Error("barrier cost should grow with P")
	}
	if got := c.barrierCost(16); got != 4*c.TsynchBase {
		t.Errorf("barrier(16) = %v, want %v", got, 4*c.TsynchBase)
	}
	if got := c.barrierCost(1); got != c.TsynchBase {
		t.Errorf("barrier(1) = %v, want one stage", got)
	}
}

func TestSimulatePreScheduledNUMA(t *testing.T) {
	_, wf, work := meshProblem(6, 6)
	s := schedule.Global(wf, 4)
	r := SimulatePreScheduledNUMA(s, work, DefaultNUMACosts())
	if r.Makespan <= 0 || r.Efficiency <= 0 || r.Efficiency > 1 {
		t.Errorf("implausible NUMA pre-scheduled result: %+v", r)
	}
}

func TestRemoteFractionBounds(t *testing.T) {
	d, wf, _ := meshProblem(5, 5)
	one := schedule.Global(wf, 1)
	if f := RemoteFraction(one, d); f != 0 {
		t.Errorf("single processor remote fraction = %v, want 0", f)
	}
	many := schedule.Global(wf, 8)
	if f := RemoteFraction(many, d); f < 0 || f > 1 {
		t.Errorf("remote fraction out of range: %v", f)
	}
}
