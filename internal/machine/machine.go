// Package machine is a deterministic cost-model simulator of a
// shared-memory multiprocessor executing a scheduled loop. It substitutes
// for the paper's 16-processor Encore Multimax/320: given a schedule, the
// dependence structure, a per-index work vector and per-operation costs, it
// computes the makespan of pre-scheduled and self-executing runs.
//
// The model is exactly the accounting the paper itself validates in
// §5.1.2 ("Where Does the Time Go"): observed multiprocessor time is
// explained by the floating-point work distribution plus a fixed overhead
// per operation, barrier costs for pre-scheduled loops, and shared-array
// check/increment costs for self-executing loops. Because the paper shows
// this model predicts Multimax timings "rather accurately", reproducing
// the model reproduces the machine for scheduling purposes.
package machine

import (
	"errors"
	"fmt"

	"doconsider/internal/schedule"
	"doconsider/internal/wavefront"
)

// Costs holds the per-operation costs in arbitrary consistent time units.
// The paper's ratios are Rsynch = Tsynch/Tp, Rinc = Tinc/Tp and
// Rcheck = Tcheck/Tp where Tp is the per-index computation time.
type Costs struct {
	Tflop    float64 // time per unit of per-index work (e.g. one multiply-add)
	Tsynch   float64 // time per global synchronization (barrier)
	Tcheck   float64 // time to check one shared ready-array element
	Tinc     float64 // time to increment one shared ready-array element
	Overhead float64 // fixed extra time per index in the parallel code
}

// MultimaxCosts returns calibration constants shaped to the Encore
// Multimax/320 behaviour reported in the paper: shared-memory check and
// increment costs are small fractions of a multiply-add, and a
// 16-processor global synchronization costs about two multiply-adds.
// (The APC/02's floating point was slow enough that a barrier amounts to
// only a couple of flop-times; in the paper's Table 3 the barrier term is
// under ten percent of the pre-scheduled solve time.) Absolute units are
// arbitrary; only the ratios matter, and these reproduce the paper's
// executor crossovers: barrier losses stay small on few-phase balanced
// problems (7-PT) while check/increment overheads stay small relative to
// row work everywhere.
func MultimaxCosts() Costs {
	return Costs{
		Tflop:    1.0,
		Tsynch:   2.0,
		Tcheck:   0.25,
		Tinc:     0.35,
		Overhead: 0.5,
	}
}

// FlopOnly zeroes every overhead, leaving only the work distribution —
// simulating with FlopOnly costs yields the paper's "symbolically
// estimated efficiency".
func FlopOnly() Costs { return Costs{Tflop: 1} }

// Result reports a simulated run.
type Result struct {
	Makespan   float64   // completion time of the last processor
	Busy       []float64 // per-processor busy time (work + overheads)
	Idle       []float64 // per-processor idle time (waits + barrier slack)
	SeqTime    float64   // total work on one processor, no overheads
	Efficiency float64   // SeqTime / (P * Makespan)
}

// ErrStuck reports that the simulated self-executing run cannot make
// progress — the schedule orders some processor's indices inconsistently
// with the dependence structure (or the dependences are cyclic).
var ErrStuck = errors.New("machine: self-executing simulation deadlocked")

func seqTime(work []float64, c Costs) float64 {
	s := 0.0
	for _, w := range work {
		s += w * c.Tflop
	}
	return s
}

// SimulatePreScheduled computes the makespan of the pre-scheduled executor:
// each phase costs the maximum per-processor work in that phase, and every
// phase boundary costs one global synchronization.
func SimulatePreScheduled(s *schedule.Schedule, work []float64, c Costs) Result {
	res := Result{
		Busy: make([]float64, s.P),
		Idle: make([]float64, s.P),
	}
	total := 0.0
	for k := 0; k < s.NumPhases; k++ {
		var phaseMax float64
		phaseWork := make([]float64, s.P)
		for p := 0; p < s.P; p++ {
			var t float64
			for _, i := range s.Phase(p, k) {
				t += work[i]*c.Tflop + c.Overhead
			}
			phaseWork[p] = t
			if t > phaseMax {
				phaseMax = t
			}
		}
		for p := 0; p < s.P; p++ {
			res.Busy[p] += phaseWork[p]
			res.Idle[p] += phaseMax - phaseWork[p]
		}
		total += phaseMax + c.Tsynch
	}
	res.Makespan = total
	res.SeqTime = seqTime(work, c)
	if total > 0 {
		res.Efficiency = res.SeqTime / (float64(s.P) * total)
	}
	return res
}

// SimulateSelfExecuting computes the makespan of the self-executing
// executor by discrete-event simulation: each processor runs its schedule
// in order; an index starts when its processor is free and all its
// dependences have completed; each dependence costs a shared-array check
// and each completion costs a shared-array increment.
func SimulateSelfExecuting(s *schedule.Schedule, deps *wavefront.Deps, work []float64, c Costs) (Result, error) {
	res := Result{
		Busy: make([]float64, s.P),
		Idle: make([]float64, s.P),
	}
	done := make([]float64, s.N)
	computed := make([]bool, s.N)
	pos := make([]int, s.P)
	clock := make([]float64, s.P)
	remaining := s.N
	for remaining > 0 {
		progressed := false
		for p := 0; p < s.P; p++ {
			for pos[p] < s.ProcLen(p) {
				i := s.Proc(p)[pos[p]]
				startFloor := clock[p]
				ok := true
				for _, t := range deps.On(int(i)) {
					if !computed[t] {
						ok = false
						break
					}
					if done[t] > startFloor {
						startFloor = done[t]
					}
				}
				if !ok {
					break
				}
				exec := float64(deps.Count(int(i)))*c.Tcheck + work[i]*c.Tflop + c.Tinc + c.Overhead
				res.Idle[p] += startFloor - clock[p]
				res.Busy[p] += exec
				done[i] = startFloor + exec
				computed[i] = true
				clock[p] = done[i]
				pos[p]++
				remaining--
				progressed = true
			}
		}
		if !progressed && remaining > 0 {
			return res, fmt.Errorf("%w: %d indices unexecuted", ErrStuck, remaining)
		}
	}
	for p := 0; p < s.P; p++ {
		if clock[p] > res.Makespan {
			res.Makespan = clock[p]
		}
	}
	for p := 0; p < s.P; p++ {
		res.Idle[p] += res.Makespan - clock[p]
	}
	res.SeqTime = seqTime(work, c)
	if res.Makespan > 0 {
		res.Efficiency = res.SeqTime / (float64(s.P) * res.Makespan)
	}
	return res, nil
}

// SymbolicEfficiency is the paper's operation-count based efficiency
// estimate: the efficiency of the given executor with all overheads zeroed,
// so that only the distribution and scheduling of the floating point
// operations matters.
func SymbolicEfficiency(kind Executor, s *schedule.Schedule, deps *wavefront.Deps, work []float64) (float64, error) {
	c := FlopOnly()
	switch kind {
	case PreScheduledSim:
		return SimulatePreScheduled(s, work, c).Efficiency, nil
	case SelfExecutingSim:
		r, err := SimulateSelfExecuting(s, deps, work, c)
		return r.Efficiency, err
	default:
		return 0, fmt.Errorf("machine: unknown executor %d", kind)
	}
}

// Executor names the simulated execution mechanism.
type Executor int

const (
	// PreScheduledSim simulates barriers between phases.
	PreScheduledSim Executor = iota
	// SelfExecutingSim simulates busy-wait synchronization.
	SelfExecutingSim
)

// String returns the executor name.
func (e Executor) String() string {
	switch e {
	case PreScheduledSim:
		return "pre-scheduled"
	case SelfExecutingSim:
		return "self-executing"
	default:
		return fmt.Sprintf("Executor(%d)", int(e))
	}
}

// RotatingEstimate reproduces the paper's rotating-processor experiment in
// the cost model: perfect load balance with all per-operation overheads but
// no waiting. It returns the estimated parallel time
// (total work + overheads)/P, plus the barrier term for pre-scheduled runs.
func RotatingEstimate(kind Executor, s *schedule.Schedule, deps *wavefront.Deps, work []float64, c Costs) float64 {
	total := 0.0
	for i := 0; i < s.N; i++ {
		total += work[i]*c.Tflop + c.Overhead
		if kind == SelfExecutingSim {
			total += float64(deps.Count(i))*c.Tcheck + c.Tinc
		}
	}
	t := total / float64(s.P)
	if kind == PreScheduledSim {
		t += float64(s.NumPhases) * c.Tsynch
	}
	return t
}

// OneProcessorParallelTime is the single-processor execution time of the
// parallel code: all work plus per-index overheads (and check/increment
// costs for the self-executing version), with no waiting and no barriers.
// This is the paper's "1 PE Par." estimate input.
func OneProcessorParallelTime(kind Executor, deps *wavefront.Deps, work []float64, c Costs) float64 {
	total := 0.0
	for i := range work {
		total += work[i]*c.Tflop + c.Overhead
		if kind == SelfExecutingSim {
			total += float64(deps.Count(i))*c.Tcheck + c.Tinc
		}
	}
	return total
}
