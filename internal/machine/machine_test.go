package machine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"doconsider/internal/schedule"
	"doconsider/internal/stencil"
	"doconsider/internal/wavefront"
)

func meshProblem(m, n int) (*wavefront.Deps, []int32, []float64) {
	a := stencil.Laplace2D(m, n)
	d := wavefront.FromLower(a)
	wf, err := wavefront.Compute(d)
	if err != nil {
		panic(err)
	}
	work := make([]float64, d.N)
	for i := range work {
		work[i] = 1
	}
	return d, wf, work
}

func uniformWork(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestPreScheduledSingleProcessor(t *testing.T) {
	d, wf, work := meshProblem(4, 4)
	s := schedule.Global(wf, 1)
	c := Costs{Tflop: 1}
	r := SimulatePreScheduled(s, work, c)
	if r.Makespan != 16 {
		t.Errorf("makespan = %v, want 16", r.Makespan)
	}
	if math.Abs(r.Efficiency-1) > 1e-12 {
		t.Errorf("efficiency = %v, want 1", r.Efficiency)
	}
	_ = d
}

func TestPreScheduledBarrierCost(t *testing.T) {
	_, wf, work := meshProblem(4, 4)
	s := schedule.Global(wf, 2)
	noSync := SimulatePreScheduled(s, work, Costs{Tflop: 1})
	withSync := SimulatePreScheduled(s, work, Costs{Tflop: 1, Tsynch: 5})
	wantDelta := 5.0 * float64(s.NumPhases)
	if math.Abs((withSync.Makespan-noSync.Makespan)-wantDelta) > 1e-9 {
		t.Errorf("barrier cost delta = %v, want %v", withSync.Makespan-noSync.Makespan, wantDelta)
	}
}

func TestSelfExecutingRespectsDependences(t *testing.T) {
	// Chain of 5: makespan must be the full chain regardless of P.
	adj := make([][]int32, 5)
	for i := 1; i < 5; i++ {
		adj[i] = []int32{int32(i - 1)}
	}
	d := wavefront.FromAdjacency(adj)
	wf, _ := wavefront.Compute(d)
	s := schedule.Global(wf, 4)
	r, err := SimulateSelfExecuting(s, d, uniformWork(5), Costs{Tflop: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 5 {
		t.Errorf("chain makespan = %v, want 5", r.Makespan)
	}
}

func TestSelfExecutingPipelinesAcrossPhases(t *testing.T) {
	// The model problem pipelines under self-execution: with p processors
	// the self-executing makespan must beat the pre-scheduled one on a
	// narrow mesh (m=p+1), paper §4.2.
	p := 4
	d, wf, work := meshProblem(p+1, 60)
	s := schedule.Global(wf, p)
	pre := SimulatePreScheduled(s, work, FlopOnly())
	self, err := SimulateSelfExecuting(s, d, work, FlopOnly())
	if err != nil {
		t.Fatal(err)
	}
	if self.Makespan >= pre.Makespan {
		t.Errorf("self-executing (%v) should beat pre-scheduled (%v) on narrow mesh",
			self.Makespan, pre.Makespan)
	}
	if self.Efficiency < 0.9 {
		t.Errorf("self-executing efficiency %v unexpectedly low", self.Efficiency)
	}
}

func TestSelfExecutingDeadlockDetection(t *testing.T) {
	// Schedule proc 0's list in anti-topological order: index 0 depends on 1
	// is impossible (backward deps), so build a malformed schedule by hand:
	// both indices on one proc, consumer first.
	adj := [][]int32{{}, {0}}
	d := wavefront.FromAdjacency(adj)
	s := &schedule.Schedule{
		P: 2, N: 2, NumPhases: 1,
		Wf:       []int32{0, 0},
		Idx:      []int32{1, 0},
		ProcPtr:  []int32{0, 1, 2},
		PhasePtr: []int32{0, 1, 1, 2},
	}
	// Proc 0 waits for index 0 which proc 1 will run: fine, no deadlock.
	if _, err := SimulateSelfExecuting(s, d, uniformWork(2), FlopOnly()); err != nil {
		t.Errorf("valid cross-processor wait flagged as deadlock: %v", err)
	}
	// Now both on the same processor in the wrong order: true deadlock.
	s2 := &schedule.Schedule{
		P: 1, N: 2, NumPhases: 1,
		Wf:       []int32{0, 0},
		Idx:      []int32{1, 0},
		ProcPtr:  []int32{0, 2},
		PhasePtr: []int32{0, 2},
	}
	if _, err := SimulateSelfExecuting(s2, d, uniformWork(2), FlopOnly()); err == nil {
		t.Error("deadlocked schedule not detected")
	}
}

func TestSymbolicEfficiencyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		adj := make([][]int32, n)
		for i := 1; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				adj[i] = append(adj[i], int32(rng.Intn(i)))
			}
		}
		d := wavefront.FromAdjacency(adj)
		wf, err := wavefront.Compute(d)
		if err != nil {
			return false
		}
		p := 1 + rng.Intn(8)
		s := schedule.Global(wf, p)
		work := make([]float64, n)
		for i := range work {
			work[i] = 0.5 + rng.Float64()
		}
		effPre, err := SymbolicEfficiency(PreScheduledSim, s, d, work)
		if err != nil {
			return false
		}
		effSelf, err := SymbolicEfficiency(SelfExecutingSim, s, d, work)
		if err != nil {
			return false
		}
		// Efficiencies are in (0, 1]; self-executing at least as parallel as
		// pre-scheduled on the same schedule (barriers only remove overlap).
		return effPre > 0 && effPre <= 1+1e-12 &&
			effSelf > 0 && effSelf <= 1+1e-12 &&
			effSelf >= effPre-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSelfExecutingMakespanNoLessThanCriticalPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		adj := make([][]int32, n)
		for i := 1; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				adj[i] = append(adj[i], int32(rng.Intn(i)))
			}
		}
		d := wavefront.FromAdjacency(adj)
		wf, err := wavefront.Compute(d)
		if err != nil {
			return false
		}
		work := make([]float64, n)
		for i := range work {
			work[i] = 0.5 + rng.Float64()
		}
		cp, err := wavefront.CriticalPathWork(d, work)
		if err != nil {
			return false
		}
		s := schedule.Global(wf, 1+rng.Intn(6))
		r, err := SimulateSelfExecuting(s, d, work, FlopOnly())
		if err != nil {
			return false
		}
		return r.Makespan >= cp-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRotatingEstimate(t *testing.T) {
	d, wf, work := meshProblem(5, 5)
	s := schedule.Global(wf, 4)
	c := Costs{Tflop: 1, Tsynch: 10, Tcheck: 0.5, Tinc: 0.5, Overhead: 0.1}
	pre := RotatingEstimate(PreScheduledSim, s, d, work, c)
	self := RotatingEstimate(SelfExecutingSim, s, d, work, c)
	// Pre-scheduled pays barriers; self-executing pays checks/incs.
	wantPre := (25.0+25*0.1)/4.0 + float64(s.NumPhases)*10
	if math.Abs(pre-wantPre) > 1e-9 {
		t.Errorf("rotating pre = %v, want %v", pre, wantPre)
	}
	nchecks := float64(d.Edges())
	wantSelf := (25.0 + 25*0.1 + nchecks*0.5 + 25*0.5) / 4.0
	if math.Abs(self-wantSelf) > 1e-9 {
		t.Errorf("rotating self = %v, want %v", self, wantSelf)
	}
}

func TestOneProcessorParallelTime(t *testing.T) {
	d, _, work := meshProblem(4, 4)
	c := Costs{Tflop: 1, Tcheck: 0.5, Tinc: 0.25, Overhead: 0.5}
	pre := OneProcessorParallelTime(PreScheduledSim, d, work, c)
	self := OneProcessorParallelTime(SelfExecutingSim, d, work, c)
	if pre != 16+16*0.5 {
		t.Errorf("pre 1PE = %v", pre)
	}
	wantSelf := pre + float64(d.Edges())*0.5 + 16*0.25
	if math.Abs(self-wantSelf) > 1e-9 {
		t.Errorf("self 1PE = %v, want %v", self, wantSelf)
	}
}

func TestBusyIdleAccounting(t *testing.T) {
	d, wf, work := meshProblem(6, 6)
	s := schedule.Global(wf, 3)
	r, err := SimulateSelfExecuting(s, d, work, MultimaxCosts())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if got := r.Busy[p] + r.Idle[p]; math.Abs(got-r.Makespan) > 1e-9 {
			t.Errorf("proc %d busy+idle = %v, want makespan %v", p, got, r.Makespan)
		}
	}
	rp := SimulatePreScheduled(s, work, MultimaxCosts())
	if rp.Makespan <= 0 || rp.Efficiency <= 0 || rp.Efficiency > 1 {
		t.Errorf("pre-scheduled result out of range: %+v", rp)
	}
}

func TestExecutorString(t *testing.T) {
	if PreScheduledSim.String() != "pre-scheduled" || SelfExecutingSim.String() != "self-executing" {
		t.Error("executor names wrong")
	}
	if Executor(7).String() == "" {
		t.Error("unknown executor should format")
	}
}
