package server

import (
	"strings"
	"testing"
)

func TestParseTenantHeader(t *testing.T) {
	cases := []struct {
		header string
		name   string
		class  Class
		wantOK bool
	}{
		{"", DefaultTenant, ClassBatch, true},
		{"alice", "alice", ClassBatch, true},
		{"alice;class=batch", "alice", ClassBatch, true},
		{"alice;class=latency", "alice", ClassLatency, true},
		{"alice; class=latency", "alice", ClassLatency, true},
		{"team.a_b-c;class=latency", "team.a_b-c", ClassLatency, true},
		{"alice;priority=high", "", 0, false}, // unknown parameter
		{"alice;class=urgent", "", 0, false},  // unknown class
		{"has space", "", 0, false},           // invalid byte
		{";class=latency", "", 0, false},      // empty name
		{strings.Repeat("a", 65), "", 0, false},
		{strings.Repeat("a", 64), strings.Repeat("a", 64), ClassBatch, true},
	}
	for _, c := range cases {
		name, class, err := parseTenantHeader(c.header)
		if c.wantOK {
			if err != nil {
				t.Fatalf("header %q: unexpected error %v", c.header, err)
			}
			if name != c.name || class != c.class {
				t.Fatalf("header %q = (%q, %v), want (%q, %v)", c.header, name, class, c.name, c.class)
			}
		} else if err == nil {
			t.Fatalf("header %q: expected an error, got (%q, %v)", c.header, name, class)
		}
	}
}

func TestValidateTenantNameBytes(t *testing.T) {
	for _, bad := range []string{"", "a b", "a/b", "a\x00b", strings.Repeat("x", 65)} {
		if err := validateTenantNameBytes([]byte(bad)); err == nil {
			t.Fatalf("name %q: expected rejection", bad)
		}
	}
	for _, good := range []string{"a", "A-Z_0.9", strings.Repeat("x", 64)} {
		if err := validateTenantNameBytes([]byte(good)); err != nil {
			t.Fatalf("name %q: unexpected rejection: %v", good, err)
		}
	}
}

// TestTenantRegistryCardinalityCap checks tenants beyond TenantMax are
// pooled into the shared overflow tenant instead of growing the metric
// space, and that resolve is stable per name.
func TestTenantRegistryCardinalityCap(t *testing.T) {
	reg := newTenantRegistry(NewRegistry(), Config{Tenant: TenantConfig{Max: 2}})
	// The default tenant occupies one of the two slots.
	a := reg.resolve("a")
	if a.name != "a" {
		t.Fatalf("first tenant resolved to %q", a.name)
	}
	if again := reg.resolve("a"); again != a {
		t.Fatal("resolve is not stable for a known tenant")
	}
	if got := reg.resolveBytes([]byte("a")); got != a {
		t.Fatal("resolveBytes disagrees with resolve")
	}
	b := reg.resolve("b")
	if b.name != OverflowTenant {
		t.Fatalf("over-cap tenant resolved to %q, want %q", b.name, OverflowTenant)
	}
	if c := reg.resolve("c"); c != b {
		t.Fatal("overflow tenant is not shared")
	}
	names := make([]string, 0, 3)
	for _, ts := range reg.snapshot() {
		names = append(names, ts.name)
	}
	if len(names) != 3 { // default, a, other
		t.Fatalf("snapshot has %d tenants (%v), want 3", len(names), names)
	}
}

// TestTenantWeightsAndQuotas checks the per-tenant weight and quota
// configuration: explicit entries win, weights clamp to >= 1, and the
// default quota applies to unlisted tenants.
func TestTenantWeightsAndQuotas(t *testing.T) {
	reg := newTenantRegistry(NewRegistry(), Config{
		Tenant: TenantConfig{
			Max:     8,
			Weights: map[string]int{"gold": 5, "zero": 0},
			Quotas:  map[string]int{"gold": 7, "neg": -3},
			Quota:   2,
		},
	})
	if got := reg.resolve("gold"); got.weight != 5 || got.quota != 7 {
		t.Fatalf("gold = weight %d quota %d, want 5/7", got.weight, got.quota)
	}
	if got := reg.resolve("zero"); got.weight != 1 {
		t.Fatalf("zero-weight tenant clamped to %d, want 1", got.weight)
	}
	if got := reg.resolve("plain"); got.weight != 1 || got.quota != 2 {
		t.Fatalf("plain = weight %d quota %d, want 1/2 (default quota)", got.weight, got.quota)
	}
	if got := reg.resolve("neg"); got.quota != 0 {
		t.Fatalf("negative quota = %d, want 0 (unbounded)", got.quota)
	}
}
