package server

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"doconsider/internal/obs"
)

// Request tracing. Every solve request carries an obs.Trace stamped as
// it crosses the pipeline stages (admission, decode, factor, coalesce,
// plan, repair, execute, encode); finished traces land in a lock-free
// ring served by GET /v1/trace, and the same stamps feed the
// doconsider_stage_seconds histograms — one clock, so /metrics and the
// traces cannot disagree. The binary path's trace lives in the pooled
// reqState and publishing is ring-slot copies plus histogram atomics,
// so the warm 0 allocs/op boundary holds with tracing on.

// tracer owns the server's trace machinery: the completed-trace ring,
// the level-timing sampler, the trace-ID sequence and the per-stage
// latency histograms derived from the stamps.
type tracer struct {
	ring    *obs.Ring
	sampler *obs.Sampler
	idSeq   atomic.Uint64
	stageH  [obs.NumStages]*Histogram
}

func newTracer(reg *Registry, cfg Config) *tracer {
	size := cfg.TraceRing
	if size <= 0 {
		size = 4 * cfg.Admission.MaxInFlight
		if size < 256 {
			size = 256
		}
	}
	t := &tracer{ring: obs.NewRing(size)}
	if cfg.TraceSampleEvery > 0 {
		t.sampler = obs.NewSampler(cfg.TraceSampleEvery)
	}
	for i := 0; i < obs.NumStages; i++ {
		t.stageH[i] = reg.Histogram("doconsider_stage_seconds", "solve request latency by pipeline stage",
			Labels{{"stage", obs.Stage(i).String()}}, DefaultLatencyBuckets)
	}
	return t
}

// nextID mints a server-assigned trace ID (clients may supply their own
// instead, propagated through both wire formats).
func (t *tracer) nextID() uint64 { return t.idSeq.Add(1) }

// publish finishes tr — charging the time since its last stamp to
// final — and lands it in the ring and the per-stage histograms.
// Allocation-free: the histograms observe fixed-array values and
// Ring.Put copies the trace into its slot.
func (t *tracer) publish(tr *obs.Trace, final obs.Stage, status int) {
	if !tr.Active() {
		return
	}
	tr.Finish(final, status)
	for i := 0; i < obs.NumStages; i++ {
		t.stageH[i].Observe(float64(tr.Stages[i]) / 1e9)
	}
	t.ring.Put(tr)
}

// TraceJSON is one completed request trace as served by /v1/trace.
// Stage and level durations are milliseconds; the stage values sum to
// total_ms exactly (the lap protocol partitions the total).
type TraceJSON struct {
	TraceID  string             `json:"trace_id"`
	Start    time.Time          `json:"start"`
	Wire     string             `json:"wire"`
	Tenant   string             `json:"tenant,omitempty"`
	Class    string             `json:"class,omitempty"`
	Status   int                `json:"status"`
	N        int                `json:"n,omitempty"`
	Batch    int                `json:"batch,omitempty"`
	Fused    int                `json:"fused,omitempty"`
	Width    int                `json:"width,omitempty"`
	Strategy string             `json:"strategy,omitempty"`
	TotalMs  float64            `json:"total_ms"`
	Stages   map[string]float64 `json:"stages_ms"`
	// Levels carries per-wavefront-level executor milliseconds when this
	// request was chosen for level sampling.
	Levels []float64 `json:"levels_ms,omitempty"`
}

func traceJSON(tr *obs.Trace) TraceJSON {
	out := TraceJSON{
		TraceID:  fmt.Sprintf("%016x", tr.ID),
		Start:    tr.Start,
		Wire:     tr.Wire.String(),
		Tenant:   tr.Tenant(),
		Status:   int(tr.Status),
		N:        int(tr.N),
		Batch:    int(tr.Batch),
		Fused:    int(tr.Fused),
		Width:    int(tr.Width),
		Strategy: tr.Strategy(),
		TotalMs:  float64(tr.TotalNs) / 1e6,
		Stages:   make(map[string]float64, obs.NumStages),
	}
	if out.Tenant != "" {
		out.Class = Class(tr.Class).String()
	}
	for i := 0; i < obs.NumStages; i++ {
		out.Stages[obs.Stage(i).String()] = float64(tr.Stages[i]) / 1e6
	}
	if tr.Sampled && tr.NumLevels > 0 {
		n := int(tr.NumLevels)
		if n > obs.MaxLevels {
			n = obs.MaxLevels
		}
		out.Levels = make([]float64, n)
		for i := 0; i < n; i++ {
			out.Levels[i] = float64(tr.LevelNs[i]) / 1e6
		}
	}
	return out
}

// TraceListResponse is the GET /v1/trace (and /v1/trace/slowest) reply.
type TraceListResponse struct {
	Traces  []TraceJSON `json:"traces"`
	Dropped uint64      `json:"dropped"` // traces lost to ring contention
}

// handleTrace serves the most recent completed traces, newest first.
// ?limit=N bounds the reply (default 32, capped at the ring size).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := queryInt(r, "limit", 32)
	traces := s.tracer.ring.Snapshot(limit)
	sort.Slice(traces, func(i, j int) bool { return traces[i].Start.After(traces[j].Start) })
	writeJSON(w, http.StatusOK, traceListResponse(traces, s.tracer.ring.Dropped()))
}

// handleTraceSlowest serves the top-K traces by total duration from the
// ring's current window, slowest first. ?k=N picks K (default 10).
func (s *Server) handleTraceSlowest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k := queryInt(r, "k", 10)
	traces := s.tracer.ring.Snapshot(0)
	sort.Slice(traces, func(i, j int) bool { return traces[i].TotalNs > traces[j].TotalNs })
	if k > 0 && len(traces) > k {
		traces = traces[:k]
	}
	writeJSON(w, http.StatusOK, traceListResponse(traces, s.tracer.ring.Dropped()))
}

func traceListResponse(traces []obs.Trace, dropped uint64) TraceListResponse {
	resp := TraceListResponse{Traces: make([]TraceJSON, len(traces)), Dropped: dropped}
	for i := range traces {
		resp.Traces[i] = traceJSON(&traces[i])
	}
	return resp
}

// queryInt parses an integer query parameter, falling back to def on
// absence or garbage.
func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// StageStat summarizes one pipeline stage's latency distribution for
// /v1/stats, derived from the same doconsider_stage_seconds histograms
// the exposition serves.
type StageStat struct {
	Stage        string  `json:"stage"`
	Count        uint64  `json:"count"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	TotalSeconds float64 `json:"total_seconds"`
}

func (t *tracer) stageStats() []StageStat {
	out := make([]StageStat, obs.NumStages)
	for i := 0; i < obs.NumStages; i++ {
		h := t.stageH[i]
		out[i] = StageStat{
			Stage:        obs.Stage(i).String(),
			Count:        h.Count(),
			P50Ms:        h.Quantile(0.5) * 1e3,
			P99Ms:        h.Quantile(0.99) * 1e3,
			TotalSeconds: h.Sum(),
		}
	}
	return out
}

// registerBuildMetrics exposes build identity, process uptime and Go
// runtime health on the registry: doconsider_build_info (value always
// 1, metadata in labels), doconsider_process_uptime_seconds, and
// doconsider_go_* gauges read from runtime/metrics at scrape time.
func registerBuildMetrics(reg *Registry, start time.Time) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.GaugeFunc("doconsider_build_info", "build metadata; value is always 1",
		Labels{{"version", version}, {"go_version", runtime.Version()}},
		func() float64 { return 1 })
	reg.GaugeFunc("doconsider_process_uptime_seconds", "seconds since the server was constructed", nil,
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("doconsider_go_goroutines", "live goroutines", nil,
		func() float64 { return float64(obs.ReadRuntime().Goroutines) })
	reg.GaugeFunc("doconsider_go_heap_bytes", "bytes in live heap objects", nil,
		func() float64 { return float64(obs.ReadRuntime().HeapBytes) })
	reg.GaugeFunc("doconsider_go_gc_cycles_total", "completed GC cycles", nil,
		func() float64 { return float64(obs.ReadRuntime().GCCycles) })
	reg.GaugeFunc("doconsider_go_gc_pause_seconds_total", "cumulative GC stop-the-world pause time", nil,
		func() float64 { return obs.ReadRuntime().GCPauseSeconds })
}
