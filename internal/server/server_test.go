package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/sparse"
)

// solveBody marshals a SolveRequest for a factor and RHS batch.
func solveBody(t *testing.T, l *sparse.CSR, lower bool, bs [][]float64) []byte {
	t.Helper()
	req := SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val, Lower: &lower, B: bs}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postSolve(t *testing.T, url string, body []byte) (*http.Response, SolveResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/trisolve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sr
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func TestServerSolveEndToEnd(t *testing.T) {
	for _, lower := range []bool{true, false} {
		s, ts := newTestServer(t, Config{Procs: 2})
		l := testFactor(12)
		if !lower {
			l = l.Transpose()
		}
		bs := [][]float64{randVec(l.N, 3), randVec(l.N, 4)}
		resp, sr := postSolve(t, ts.URL, solveBody(t, l, lower, bs))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lower=%v: status %d", lower, resp.StatusCode)
		}
		if len(sr.X) != 2 || sr.Fused != 1 || sr.Width != 2 || sr.Executed != int64(l.N) {
			t.Fatalf("lower=%v: response = fused %d width %d executed %d (%d solutions)",
				lower, sr.Fused, sr.Width, sr.Executed, len(sr.X))
		}
		// The server must reproduce the in-process plan solve bit for bit
		// (JSON round-trips float64 exactly via %g shortest form).
		c := newTestCoalescer(t, 0, 64)
		for j, b := range bs {
			want, _, err := c.Submit(context.Background(), l, lower, [][]float64{b}, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, sr.X[j], want[0], "server solve")
		}
		if st := s.Stats(); st.Accepted != 1 || st.PlanCache.Misses != 1 {
			t.Fatalf("lower=%v: stats = %+v, want one accepted request, one cache miss", lower, st)
		}
	}
}

func TestServerPlanCacheSharedAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2})
	l := testFactor(10)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	for i := 0; i < 3; i++ {
		if resp, _ := postSolve(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 2 {
		t.Fatalf("plan cache stats = %+v, want 1 miss + 2 hits across requests", st.PlanCache)
	}
	if st.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v, want > 0", st.CacheHitRate)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1, MaxBatch: 2})
	l := testFactor(6)
	n := l.N
	good := [][]float64{randVec(n, 1)}

	noDiag := l.StrictLower() // missing diagonal entirely
	zeroDiag := l.Clone()
	for i := 0; i < n; i++ {
		cols, _ := zeroDiag.Row(i)
		for k, c := range cols {
			if int(c) == i {
				zeroDiag.Val[int(zeroDiag.RowPtr[i])+k] = 0
			}
		}
	}
	upper := l.Transpose()

	cases := []struct {
		name string
		body []byte
	}{
		{"bad json", []byte("{nope")},
		{"n zero", mustJSON(t, SolveRequest{N: 0, B: good})},
		{"malformed csr", mustJSON(t, SolveRequest{N: n, RowPtr: l.RowPtr[:n], ColIdx: l.ColIdx, Val: l.Val, B: good})},
		{"upper entries in forward solve", solveBody(t, upper, true, good)},
		{"missing diagonal", solveBody(t, noDiag, true, good)},
		{"zero diagonal", solveBody(t, zeroDiag, true, good)},
		{"no rhs", solveBody(t, l, true, nil)},
		{"short rhs", solveBody(t, l, true, [][]float64{make([]float64, n-1)})},
		{"batch over limit", solveBody(t, l, true, [][]float64{good[0], good[0], good[0]})},
	}
	for _, tc := range cases {
		resp, _ := postSolve(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerKindConfig: the executor kind is resolved by registry name,
// so an explicit "sequential" (Kind value 0) is honored rather than
// falling through to the pooled default, and unknown names fail fast.
func TestServerKindConfig(t *testing.T) {
	s, err := New(Config{Kind: "sequential", Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if got := s.co.kind; got != executor.Sequential.String() {
		t.Fatalf("coalescer kind = %v, want sequential", got)
	}
	l := testFactor(8)
	b := randVec(l.N, 1)
	xs, _, err := s.co.Submit(context.Background(), l, true, [][]float64{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, xs[0], refSolve(t, l, b), "sequential-kind solve")

	if _, err := New(Config{Kind: "bogus"}); err == nil {
		t.Fatal("accepted an unknown executor kind name")
	}
}

func TestServerMethodChecks(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trisolve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/trisolve: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: status %d, want 405", resp.StatusCode)
	}
}

// stallRequest opens a solve request whose body stalls mid-upload,
// pinning it in flight (admitted, blocked in decode) until finish is
// called with the rest of the body — the deterministic way to hold
// server capacity from a test.
func stallRequest(t *testing.T, url string, body []byte) (done <-chan int, finish func()) {
	t.Helper()
	pr, pw := io.Pipe()
	ch := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/trisolve", "application/json", pr)
		if err != nil {
			ch <- -1
			return
		}
		resp.Body.Close()
		ch <- resp.StatusCode
	}()
	half := len(body) / 2
	if _, err := pw.Write(body[:half]); err != nil {
		t.Fatal(err)
	}
	rest := body[half:]
	return ch, func() {
		pw.Write(rest)
		pw.Close()
	}
}

// TestServerAdmissionControl pins one request in flight and verifies the
// next is shed with 429 + Retry-After, that a request accepted before
// the drain began still completes, and that post-drain traffic is
// refused.
func TestServerAdmissionControl(t *testing.T) {
	// TenantQueue: -1 restores the pre-tenant immediate-shed behavior this
	// test pins (with queueing on, the second request would park instead).
	s, ts := newTestServer(t, Config{Procs: 1, Admission: AdmissionConfig{MaxInFlight: 1, Queue: -1}})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})

	first, finish := stallRequest(t, ts.URL, body)
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inFlight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.adm.inFlight() < 1 {
		t.Fatal("first request never went in flight")
	}

	resp, err := http.Post(ts.URL+"/v1/trisolve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.shed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.shed.Value())
	}

	// Begin the drain while the first request is still uploading: it was
	// accepted, so it must complete even though the server is draining.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	finish()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("accepted request finished with %d during drain, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	// Post-drain requests are refused, and health reflects it.
	resp, err = http.Post(ts.URL+"/v1/trisolve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain solve: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: status %d, want 503", resp.StatusCode)
	}
}

// TestServerRequestDeadline parks a deadline-carrying request in a long
// window while another admitted request keeps the coalescer from sealing
// early (quiescence needs every in-flight request parked): the deadline,
// not the window, must decide when the request comes back.
func TestServerRequestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1, Coalesce: CoalesceConfig{Window: 10 * time.Second, Width: 64}})
	l := testFactor(8)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	_, finish := stallRequest(t, ts.URL, body)
	defer finish()

	req := SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		B: [][]float64{randVec(l.N, 1)}, TimeoutMs: 20}
	start := time.Now()
	resp, _ := postSolve(t, ts.URL, mustJSON(t, req))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not cut the coalescing wait short")
	}
}

// TestServerQuiescentSealNoWindowStall: a lone request in an otherwise
// idle server must not wait out a long coalescing window — the coalescer
// seals as soon as every admitted request is parked.
func TestServerQuiescentSealNoWindowStall(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1, Coalesce: CoalesceConfig{Window: 10 * time.Second, Width: 64}})
	l := testFactor(8)
	start := time.Now()
	resp, sr := postSolve(t, ts.URL, solveBody(t, l, true, [][]float64{randVec(l.N, 1)}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone request took %v — stalled on the coalescing window", elapsed)
	}
	if sr.Fused != 1 {
		t.Fatalf("fused = %d, want 1", sr.Fused)
	}
}

// TestServerFingerprintResubmission: a full submission returns a content
// fingerprint; a by-fingerprint request with fresh RHS then solves the
// same factor without re-shipping it, bit-identically. Unknown
// fingerprints 404 so clients know to fall back.
func TestServerFingerprintResubmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Procs: 2})
	l := testFactor(10)
	lower := true
	b := randVec(l.N, 5)

	resp, sr := postSolve(t, ts.URL, solveBody(t, l, true, [][]float64{randVec(l.N, 4)}))
	if resp.StatusCode != http.StatusOK || sr.Fp == "" {
		t.Fatalf("full submission: status %d fp %q", resp.StatusCode, sr.Fp)
	}

	byFp := mustJSON(t, SolveRequest{Fp: sr.Fp, Lower: &lower, B: [][]float64{b}})
	resp2, sr2 := postSolve(t, ts.URL, byFp)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("by-fingerprint request: status %d", resp2.StatusCode)
	}
	assertBitIdentical(t, sr2.X[0], refSolve(t, l, b), "by-fingerprint solve")
	if st := s.Stats(); st.FactorCache.Hits != 1 {
		t.Fatalf("factor cache stats = %+v, want one hit", st.FactorCache)
	}

	bogus := mustJSON(t, SolveRequest{Fp: "00000000deadbeef", Lower: &lower, B: [][]float64{b}})
	resp3, _ := postSolve(t, ts.URL, bogus)
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d, want 404", resp3.StatusCode)
	}

	both := mustJSON(t, SolveRequest{Fp: sr.Fp, N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B: [][]float64{b}})
	resp4, _ := postSolve(t, ts.URL, both)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("factor+fingerprint request: status %d, want 400", resp4.StatusCode)
	}
}

// TestServerPackedRHS: b_b64 requests round-trip bit-identically and get
// x_b64 responses; mixing b and b_b64 is rejected.
func TestServerPackedRHS(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2})
	l := testFactor(10)
	lower := true
	b := randVec(l.N, 6)

	packed := mustJSON(t, SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B64: [][]byte{PackFloats(b)}})
	resp, sr := postSolve(t, ts.URL, packed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("packed request: status %d", resp.StatusCode)
	}
	if len(sr.X) != 0 || len(sr.X64) != 1 {
		t.Fatalf("packed request got %d plain + %d packed solutions, want 0 + 1", len(sr.X), len(sr.X64))
	}
	xs, err := sr.Solutions()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, xs[0], refSolve(t, l, b), "packed round-trip")

	mixed := mustJSON(t, SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B: [][]float64{b}, B64: [][]byte{PackFloats(b)}})
	if resp, _ := postSolve(t, ts.URL, mixed); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed encodings: status %d, want 400", resp.StatusCode)
	}
	odd := mustJSON(t, SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B64: [][]byte{{1, 2, 3}}})
	if resp, _ := postSolve(t, ts.URL, odd); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("odd-length packed RHS: status %d, want 400", resp.StatusCode)
	}
}

func TestPackUnpackFloats(t *testing.T) {
	v := randVec(17, 3)
	got, err := UnpackFloats(PackFloats(v))
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, v, "pack/unpack")
	if _, err := UnpackFloats(make([]byte, 9)); err == nil {
		t.Fatal("accepted a 9-byte packed array")
	}
}

func TestServerHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	l := testFactor(8)
	if resp, _ := postSolve(t, ts.URL, solveBody(t, l, true, [][]float64{randVec(l.N, 1)})); resp.StatusCode != 200 {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`loops_plan_cache{event="hits"}`,
		"loops_plan_cache_hit_rate",
		"loops_http_in_flight",
		`loops_http_requests_total{endpoint="trisolve",wire="json",code="200"} 1`,
		`loops_http_request_seconds_bucket{endpoint="trisolve",wire="json",le="+Inf"} 1`,
		`loops_http_request_seconds_count{endpoint="trisolve",wire="json"} 1`,
		`loops_http_request_seconds_count{endpoint="trisolve",wire="binary"} 0`,
		"loops_coalesce_passes_total 1",
		"loops_admission_accepted_total 1",
		"# TYPE loops_http_request_seconds histogram",
		`doconsider_stage_seconds_count{stage="execute"} 1`,
		"doconsider_build_info{",
		"doconsider_process_uptime_seconds",
		"doconsider_go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
