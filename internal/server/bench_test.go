package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"doconsider/internal/executor"
	"doconsider/internal/trisolve"
)

// BenchmarkServerTrisolveRequest measures the full request path — JSON
// decode, validation, plan-cache lookup, solo executor pass, JSON encode
// — on a 16x16 mesh factor. CI gates its allocs/op: a regression here
// means per-request garbage crept into the serving hot path.
func BenchmarkServerTrisolveRequest(b *testing.B) {
	s, err := New(Config{Procs: 2, Coalesce: CoalesceConfig{Window: 0}})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	l := testFactor(16)
	lower := true
	body, err := json.Marshal(SolveRequest{
		N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val, Lower: &lower,
		B: [][]float64{randVec(l.N, 1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	// Warm up: the first request pays the inspector and plan build; the
	// gate watches the steady-state (cache-hit) request path.
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest("POST", "/v1/trisolve", bytes.NewReader(body)))
	if warm.Code != 200 {
		b.Fatalf("warmup status %d: %s", warm.Code, warm.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/trisolve", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkCoalescer compares 8 concurrent structurally identical
// requests with fusion (one shared executor pass) against the same load
// solved as 8 solo passes — the server-side amortization the subsystem
// exists to provide.
func BenchmarkCoalescer(b *testing.B) {
	const clients = 8
	l := testFactor(16)
	run := func(b *testing.B, window time.Duration) {
		reg := NewRegistry()
		cache := trisolve.NewPlanCache(4)
		defer cache.Close()
		c := NewCoalescer(context.Background(), cache, reg, window, window, clients, 2, executor.Pooled.String(), nil)
		defer c.Drain()
		bs := make([][]float64, clients)
		for i := range bs {
			bs[i] = randVec(l.N, int64(i))
		}
		// Warm up the plan cache directly so iterations measure executor
		// passes, not the one-time inspector run (a warmup Submit would
		// park alone in the fused leg's window until the timer fired).
		warm, err := cache.Get(l, true, trisolve.WithProcs(2), trisolve.WithKind(executor.Pooled))
		if err != nil {
			b.Fatal(err)
		}
		warm.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					if _, _, err := c.Submit(context.Background(), l, true, [][]float64{bs[cl]}, nil); err != nil {
						b.Error(err)
					}
				}(cl)
			}
			wg.Wait()
		}
	}
	b.Run("fused-8", func(b *testing.B) { run(b, 10*time.Second) })
	b.Run("solo-8", func(b *testing.B) { run(b, 0) })
}
