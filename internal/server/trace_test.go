package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// getTraces fetches a trace endpoint and decodes the reply.
func getTraces(t *testing.T, url string) TraceListResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var out TraceListResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// metricValue scrapes /metrics and returns the value of the series with
// the given exposition prefix (name + label set).
func metricValue(t *testing.T, url, prefix string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(prefix):]), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric series %q not in exposition", prefix)
	return 0
}

// TestTraceEndToEnd is the tracing acceptance test: a traced JSON
// request's per-stage durations must sum to its total exactly, the
// total must sit within the endpoint-observed latency, the client's
// trace ID must round-trip, and level sampling must attach
// per-wavefront-level executor time.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2, TraceSampleEvery: 1})
	l := testFactor(12)
	lower := true
	req := SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx, Val: l.Val,
		Lower: &lower, B: [][]float64{randVec(l.N, 3)}, TraceID: "deadbeef"}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, sr := postSolve(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	if sr.TraceID != "00000000deadbeef" {
		t.Fatalf("response trace_id = %q, want 00000000deadbeef", sr.TraceID)
	}

	traces := getTraces(t, ts.URL+"/v1/trace")
	var tr *TraceJSON
	for i := range traces.Traces {
		if traces.Traces[i].TraceID == sr.TraceID {
			tr = &traces.Traces[i]
		}
	}
	if tr == nil {
		t.Fatalf("trace %s not in /v1/trace (%d traces)", sr.TraceID, len(traces.Traces))
	}
	if tr.Wire != "json" || tr.Status != 200 || tr.N != l.N || tr.Batch != 1 || tr.Strategy == "" {
		t.Fatalf("trace metadata wrong: %+v", tr)
	}

	// The lap protocol partitions the total: stages_ms must sum to
	// total_ms up to float formatting noise.
	var stageSum float64
	for _, ms := range tr.Stages {
		stageSum += ms
	}
	if diff := stageSum - tr.TotalMs; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("stage sum %.6fms != total %.6fms", stageSum, tr.TotalMs)
	}
	if tr.TotalMs <= 0 || tr.Stages["execute"] <= 0 {
		t.Fatalf("trace has no time where time must exist: %+v", tr.Stages)
	}

	// The trace's total is the handler's own view of the request; the
	// endpoint histogram observes the same request from the wrapper just
	// outside. They must agree up to wrapper overhead (generous slack
	// for CI schedulers).
	epSum := metricValue(t, ts.URL, `loops_http_request_seconds_sum{endpoint="trisolve",wire="json"}`)
	totalSec := tr.TotalMs / 1e3
	if totalSec > epSum {
		t.Fatalf("trace total %.6fs exceeds endpoint-observed %.6fs", totalSec, epSum)
	}
	if epSum-totalSec > 0.5 {
		t.Fatalf("trace total %.6fs and endpoint-observed %.6fs disagree beyond tolerance", totalSec, epSum)
	}

	// Stage histograms come from the same stamps.
	if c := metricValue(t, ts.URL, `doconsider_stage_seconds_count{stage="execute"}`); c != 1 {
		t.Fatalf("stage histogram count = %v, want 1", c)
	}

	// Sampling every request: the trace must carry level timing.
	if len(tr.Levels) == 0 {
		t.Fatalf("sampled trace has no level timing: %+v", tr)
	}
}

// TestTraceBinaryWire pins trace-ID propagation and per-wire endpoint
// accounting on the binary protocol: the DCWF request carries the
// client's trace ID, the response frame echoes it, the trace lands in
// the ring tagged wire=binary, and the request is counted in the
// binary-wire endpoint histogram exactly like a JSON request would be.
func TestTraceBinaryWire(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 2, TraceSampleEvery: 1})
	l := testFactor(10)
	lower := true
	frame, err := EncodeRequestFrame(&SolveRequest{N: l.N, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: l.Val, Lower: &lower, B: [][]float64{randVec(l.N, 1)}, TraceID: "cafe"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/trisolve", FrameContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary solve: status %d: %s", resp.StatusCode, out)
	}
	wr, err := DecodeResponseFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if wr.TraceID != "000000000000cafe" {
		t.Fatalf("response frame trace_id = %q, want 000000000000cafe", wr.TraceID)
	}

	traces := getTraces(t, ts.URL+"/v1/trace")
	found := false
	for _, tr := range traces.Traces {
		if tr.TraceID == wr.TraceID {
			found = true
			if tr.Wire != "binary" || tr.Status != 200 {
				t.Fatalf("binary trace wrong: %+v", tr)
			}
			var sum float64
			for _, ms := range tr.Stages {
				sum += ms
			}
			if diff := sum - tr.TotalMs; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("binary stage sum %.6f != total %.6f", sum, tr.TotalMs)
			}
		}
	}
	if !found {
		t.Fatalf("binary trace not in ring (%d traces)", len(traces.Traces))
	}

	// Satellite fix: binary requests count in the per-wire endpoint
	// histogram just as JSON ones do.
	if c := metricValue(t, ts.URL, `loops_http_request_seconds_count{endpoint="trisolve",wire="binary"}`); c != 1 {
		t.Fatalf("binary endpoint histogram count = %v, want 1", c)
	}
	if c := metricValue(t, ts.URL, `loops_http_requests_total{endpoint="trisolve",wire="binary",code="200"}`); c != 1 {
		t.Fatalf("binary endpoint request counter = %v, want 1", c)
	}
}

// TestTraceSlowest exercises the top-K endpoint: it must return at most
// K traces ordered by descending total duration.
func TestTraceSlowest(t *testing.T) {
	_, ts := newTestServer(t, Config{Procs: 1})
	l := testFactor(10)
	body := solveBody(t, l, true, [][]float64{randVec(l.N, 1)})
	for i := 0; i < 5; i++ {
		if resp, _ := postSolve(t, ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	out := getTraces(t, ts.URL+"/v1/trace/slowest?k=3")
	if len(out.Traces) != 3 {
		t.Fatalf("slowest returned %d traces, want 3", len(out.Traces))
	}
	for i := 1; i < len(out.Traces); i++ {
		if out.Traces[i].TotalMs > out.Traces[i-1].TotalMs {
			t.Fatalf("slowest not sorted: %v then %v", out.Traces[i-1].TotalMs, out.Traces[i].TotalMs)
		}
	}
	// Server-assigned IDs (no client trace_id): all distinct, all known
	// to the full listing too.
	seen := map[string]bool{}
	for _, tr := range getTraces(t, ts.URL+"/v1/trace").Traces {
		if seen[tr.TraceID] {
			t.Fatalf("duplicate server-assigned trace ID %s", tr.TraceID)
		}
		seen[tr.TraceID] = true
	}
	if len(seen) != 5 {
		t.Fatalf("ring has %d traces, want 5", len(seen))
	}

	// Stats carries the same stage summary the histograms serve.
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Stages) == 0 {
		t.Fatal("stats reply has no stage summary")
	}
	for _, sg := range st.Stages {
		if sg.Stage == "execute" && sg.Count != 5 {
			t.Fatalf("execute stage count = %d, want 5", sg.Count)
		}
	}
}
