// Package server turns the runtime into a network service: an HTTP/JSON
// API over the shared plan cache and the batch coalescer, with admission
// control, per-request deadlines, live Prometheus metrics and graceful
// drain. It is the serving story the ROADMAP's north star asks for — the
// inspector/executor amortization of the paper exercised end to end by
// many independent clients whose problems recur structurally.
//
// The service is multi-tenant: requests carry a tenant name and a
// priority class (latency or batch) via the X-Doconsider-Tenant header
// or the binary frame's tenant section. Admission is a weighted
// deficit-round-robin queue across tenants with latency-class priority
// and per-tenant concurrency quotas; the coalescer batches per class so
// latency requests never wait out a wide batch window; and shedding is
// honest — 429/503 responses derive Retry-After from the observed drain
// rate, echo the trace id, and are attributed per tenant in stats,
// metrics and traces.
//
// Endpoints:
//
//	POST /v1/trisolve  submit a CSR triangular factor + RHS batch
//	GET  /v1/stats     JSON snapshot: cache, coalescer, admission, tenants
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      Prometheus text exposition
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"doconsider/internal/arena"
	"doconsider/internal/executor"
	"doconsider/internal/obs"
	"doconsider/internal/plancache"
	"doconsider/internal/sparse"
	"doconsider/internal/trisolve"
)

// KindAuto selects adaptive planning: each structure's executor strategy
// is chosen by the planner (internal/planner) from measured DAG features
// instead of being fixed for the whole server.
const KindAuto = "auto"

// AdmissionConfig bounds how much work the server accepts at once.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrent solves (default 64). Requests beyond
	// it queue per tenant (see Queue) and shed with 429 when queues fill.
	MaxInFlight int
	// Queue bounds each tenant's per-class admission queue (default 16).
	// Negative disables queueing: saturation sheds immediately, the
	// pre-tenant behavior.
	Queue int
}

// CoalesceConfig shapes request batching: requests against the same
// factor arriving within a window are fused into one executor pass.
type CoalesceConfig struct {
	// Window is the batching window; 0 disables coalescing.
	Window time.Duration
	// LatencyWindow is the batching window for latency-class requests
	// (default Window/8; negative disables latency-class coalescing).
	// Both windows are upper bounds: the coalescer shrinks them per
	// class when the observed arrival rate cannot fill a pass.
	LatencyWindow time.Duration
	// Width is the max RHS per fused pass (default 64).
	Width int
}

// TenantConfig shapes per-tenant fairness and accounting.
type TenantConfig struct {
	// Weights sets per-tenant admission weights (deficit-round-robin
	// grants per rotation; default 1). Unlisted tenants weigh 1.
	Weights map[string]int
	// Quotas caps a tenant's concurrent admitted solves; unlisted
	// tenants get Quota. 0 means bounded only by MaxInFlight.
	Quotas map[string]int
	Quota  int
	// Max caps how many distinct tenants get their own accounting and
	// metric series (default 32); the rest share the "other" tenant.
	Max int
}

// Config shapes a Server. The zero value is usable: defaults are applied
// by New. Validate reports the first out-of-range field by name; New
// calls it, so constructing a server from bad values fails loudly rather
// than clamping.
type Config struct {
	Procs          int    // processors per plan (default 4)
	Kind           string // executor kind registry name, or "auto" (default) for adaptive planning
	CacheCap       int    // plan-cache capacity in skeletons (default 16)
	FactorCacheCap int    // factors resubmittable by fingerprint (default 32)
	// HotFactorCap sizes the lock-striped hot-factor ring that serves
	// warm binary-wire fp lookups without touching the allocating
	// factor-cache handle path (default 8).
	HotFactorCap   int
	MaxBatch       int           // max RHS per request (default 64)
	DefaultTimeout time.Duration // per-request deadline when none given (default 30s)
	// TraceRing sizes the completed-trace ring served by /v1/trace
	// (default max(256, 4*MaxInFlight), rounded up to a power of two).
	TraceRing int
	// TraceSampleEvery picks every Nth solve request for per-wavefront-
	// level executor timing (default 64; negative disables level
	// sampling). Stage stamps and the trace ring are always on — sampling
	// gates only the per-level clock inside the executor hot loop.
	TraceSampleEvery int

	Admission AdmissionConfig
	Coalesce  CoalesceConfig
	Tenant    TenantConfig
}

// Validate checks every field against its documented range and returns
// an error naming the first offending field. Zero values are always
// valid (they take defaults); Validate rejects values that are neither a
// default request nor a legal setting.
func (c Config) Validate() error {
	switch {
	case c.Procs < 0:
		return fmt.Errorf("server: Config.Procs must be >= 0, got %d", c.Procs)
	case c.CacheCap < 0:
		return fmt.Errorf("server: Config.CacheCap must be >= 0, got %d", c.CacheCap)
	case c.FactorCacheCap < 0:
		return fmt.Errorf("server: Config.FactorCacheCap must be >= 0, got %d", c.FactorCacheCap)
	case c.HotFactorCap < 0:
		return fmt.Errorf("server: Config.HotFactorCap must be >= 0, got %d", c.HotFactorCap)
	case c.MaxBatch < 0:
		return fmt.Errorf("server: Config.MaxBatch must be >= 0, got %d", c.MaxBatch)
	case c.DefaultTimeout < 0:
		return fmt.Errorf("server: Config.DefaultTimeout must be >= 0, got %s", c.DefaultTimeout)
	case c.TraceRing < 0:
		return fmt.Errorf("server: Config.TraceRing must be >= 0, got %d", c.TraceRing)
	case c.Admission.MaxInFlight < 0:
		return fmt.Errorf("server: Config.Admission.MaxInFlight must be >= 0, got %d", c.Admission.MaxInFlight)
	case c.Coalesce.Window < 0:
		return fmt.Errorf("server: Config.Coalesce.Window must be >= 0, got %s", c.Coalesce.Window)
	case c.Coalesce.Width < 0:
		return fmt.Errorf("server: Config.Coalesce.Width must be >= 0, got %d", c.Coalesce.Width)
	case c.Tenant.Quota < 0:
		return fmt.Errorf("server: Config.Tenant.Quota must be >= 0, got %d", c.Tenant.Quota)
	case c.Tenant.Max < 0:
		return fmt.Errorf("server: Config.Tenant.Max must be >= 0, got %d", c.Tenant.Max)
	}
	for name, w := range c.Tenant.Weights {
		if w < 0 {
			return fmt.Errorf("server: Config.Tenant.Weights[%q] must be >= 0, got %d", name, w)
		}
	}
	if c.Kind != "" && c.Kind != KindAuto {
		if _, err := executor.KindByName(c.Kind); err != nil {
			return fmt.Errorf("server: Config.Kind: %w", err)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Kind == "" {
		c.Kind = KindAuto
	}
	if c.CacheCap == 0 {
		c.CacheCap = 16
	}
	if c.FactorCacheCap == 0 {
		c.FactorCacheCap = 32
	}
	if c.HotFactorCap == 0 {
		c.HotFactorCap = 8
	}
	if c.Coalesce.Width <= 0 {
		c.Coalesce.Width = 64
	}
	if c.Coalesce.LatencyWindow == 0 {
		c.Coalesce.LatencyWindow = c.Coalesce.Window / 8
	}
	if c.Coalesce.LatencyWindow < 0 {
		c.Coalesce.LatencyWindow = 0
	}
	if c.Admission.Queue == 0 {
		c.Admission.Queue = 16
	}
	if c.Tenant.Max <= 0 {
		c.Tenant.Max = 32
	}
	if c.Admission.MaxInFlight <= 0 {
		c.Admission.MaxInFlight = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.TraceSampleEvery == 0 {
		c.TraceSampleEvery = 64
	}
	return c
}

// SolveRequest is the POST /v1/trisolve wire format: a CSR triangular
// factor (structure + values) and a batch of right-hand sides.
//
// Recurring factors need not be re-shipped: every response carries the
// factor's content fingerprint, and a later request may send just that
// fingerprint in fp (omitting n/rowptr/colidx/val). The server keeps the
// FactorCacheCap most recent factors; an unknown or evicted fingerprint
// fails with 404 and the client falls back to a full request. For the
// structurally recurring traffic this server exists for, that turns the
// dominant per-request cost — parsing a few hundred KB of matrix JSON —
// into a cache lookup, leaving the executor pass as the work that counts.
//
// Drifting factors need not be re-shipped either: a request may carry
// base_fp (a previously returned fingerprint) plus edits — per-row
// nonzero insertions and deletions — and the server materializes the
// drifted factor from the cached base, registers it under its own
// fingerprint (returned as usual), and hands the edited rows to the plan
// cache as a repair hint, so the inspector output is repaired from the
// base plan instead of rebuilt. An unknown base_fp fails with 404 and
// the client falls back to a full request.
type SolveRequest struct {
	N         int              `json:"n,omitempty"`
	RowPtr    []int32          `json:"rowptr,omitempty"`
	ColIdx    []int32          `json:"colidx,omitempty"`
	Val       []float64        `json:"val,omitempty"`
	Fp        string           `json:"fp,omitempty"`      // resubmit a cached factor by fingerprint
	BaseFp    string           `json:"base_fp,omitempty"` // drift: edits apply to this cached factor
	Edits     []sparse.RowEdit `json:"edits,omitempty"`   // drift: per-row nonzero insertions/deletions
	Lower     *bool            `json:"lower,omitempty"`   // default true (forward solve)
	B         [][]float64      `json:"b,omitempty"`
	B64       [][]byte         `json:"b_b64,omitempty"` // RHS as base64 little-endian float64 packing
	TimeoutMs int              `json:"timeout_ms,omitempty"`
	TraceID   string           `json:"trace_id,omitempty"` // client-chosen trace ID (hex uint64), echoed in the response
	// Tenant/Class ride the X-Doconsider-Tenant header on the JSON wire
	// and a tenant section on the binary wire; they are client-side
	// fields for EncodeRequestFrame, never part of the JSON body.
	Tenant string `json:"-"`
	Class  string `json:"-"` // "latency" or "batch" (default)
}

// SolveResponse is the POST /v1/trisolve reply. Solutions come back in
// the encoding the request used: x for JSON-array right-hand sides,
// x_b64 for packed ones (a few hundred nanoseconds per value of JSON
// float parsing is the difference between the wire and the executor
// dominating a large solve).
type SolveResponse struct {
	X        [][]float64 `json:"x,omitempty"`
	X64      [][]byte    `json:"x_b64,omitempty"`
	Fp       string      `json:"fp"`       // content fingerprint for resubmission
	Fused    int         `json:"fused"`    // requests that shared the executor pass
	Width    int         `json:"width"`    // total RHS in the pass
	Strategy string      `json:"strategy"` // executor strategy of the pass (planner-chosen for "auto")
	Executed int64       `json:"executed"` // loop bodies run by the pass
	TraceID  string      `json:"trace_id"` // this request's trace ID (hex); look it up in /v1/trace
}

// Solutions returns the response's solution batch in either encoding.
func (r *SolveResponse) Solutions() ([][]float64, error) {
	if r.X != nil {
		return r.X, nil
	}
	xs := make([][]float64, len(r.X64))
	for j, raw := range r.X64 {
		var err error
		if xs[j], err = UnpackFloats(raw); err != nil {
			return nil, err
		}
	}
	return xs, nil
}

// PlannerStats reports what the adaptive planner decided for the
// structures this server has planned: per-strategy build counts and the
// most recent decisions with the features and predictions behind them.
type PlannerStats struct {
	Kind      string                    `json:"kind"` // configured kind ("auto" = adaptive)
	Counts    map[string]uint64         `json:"counts"`
	Decisions []trisolve.DecisionRecord `json:"decisions"`
}

// StatsResponse is the GET /v1/stats reply.
type StatsResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	InFlight      int64           `json:"in_flight"`
	Accepted      uint64          `json:"accepted"`
	Shed          uint64          `json:"shed"`
	Draining      bool            `json:"draining"`
	PlanCache     plancache.Stats `json:"plan_cache"`
	CacheHitRate  float64         `json:"cache_hit_rate"`
	FactorCache   plancache.Stats `json:"factor_cache"`
	Coalesce      CoalesceStats   `json:"coalesce"`
	// Arena reports the binary wire path's pooled request memory: arenas
	// outstanding/idle, slab grows and buddy-region overflows.
	Arena   arena.Stats  `json:"arena"`
	Planner PlannerStats `json:"planner"`
	// Delta reports the near-miss repair outcomes for drifting
	// structures: plan misses served by repairing a resident ancestor
	// instead of a cold re-inspection.
	Delta trisolve.DeltaStats `json:"delta"`
	// Supernode reports the supernodal fusion outcomes of the cache's
	// plan builds: node counts, widths and the fused-row fraction
	// (internal/supernode).
	Supernode trisolve.SupernodeStats `json:"supernode"`
	// Tenants breaks admission and latency down by tenant (weighted-fair
	// admission, see Config.TenantWeights), sorted by name.
	Tenants []TenantStats `json:"tenants"`
	// Queued counts requests parked in admission queues right now.
	Queued int64 `json:"queued"`
	// Stages summarizes per-pipeline-stage latency, derived from the
	// same stamps that feed /v1/trace and doconsider_stage_seconds.
	Stages []StageStat `json:"stages"`
	// TracesDropped counts completed traces lost to ring contention.
	TracesDropped uint64 `json:"traces_dropped"`
}

// cachedFactor is a factor resident in the by-fingerprint cache, tagged
// with the solve direction it was validated for. plancache requires a
// Closer; a factor owns no resources.
type cachedFactor struct {
	l     *sparse.CSR
	lower bool
}

func (cachedFactor) Close() error { return nil }

// errUnknownFactor distinguishes a by-fingerprint miss from real build
// failures inside the factor cache.
var errUnknownFactor = errors.New("server: unknown factor fingerprint")

// errorResponse is the JSON error envelope. Overload rejections carry
// a trace ID so shed requests are correlatable with /v1/trace.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// Server is the serving subsystem: plan cache, coalescer, metrics and
// the HTTP handlers over them. Create with New, start with Start (or
// mount Handler on a listener of your own), stop with Shutdown.
type Server struct {
	cfg      Config
	cache    *trisolve.PlanCache
	factors  *plancache.Cache[uint64, cachedFactor]
	co       *Coalescer
	reg      *Registry
	mux      *http.ServeMux
	httpSrv  *http.Server
	ln       net.Listener
	baseCtx  context.Context
	cancel   context.CancelFunc
	start    time.Time
	draining atomic.Bool

	// Binary wire path state: the request-arena pool, the pooled decode
	// scratch, and the hot-factor ring serving warm fp lookups without
	// touching the allocating factor-cache handle path. The ring holds
	// Config.HotFactorCap entries and overwrites oldest-first.
	arenas  *arena.Pool
	reqPool sync.Pool
	hotMu   sync.Mutex
	hot     []hotFactor
	hotNext int

	tracer *tracer

	// Admission: weighted-fair per-tenant scheduling over MaxInFlight
	// slots (see admission.go), plus the tenant registry behind it.
	adm     *admission
	tenants *tenantRegistry

	accepted    *Counter
	shed        *Counter
	solveJSONEP *endpointMetrics // /v1/trisolve, JSON wire
	solveBinEP  *endpointMetrics // /v1/trisolve, binary (DCWF) wire
	statsEP     *endpointMetrics
	healthEP    *endpointMetrics
	metricEP    *endpointMetrics
	traceEP     *endpointMetrics
	shardEP     *endpointMetrics
}

// New builds a server from cfg (zero fields take defaults). It fails
// only when Config.Validate does: an out-of-range field or an
// unresolvable executor kind name ("auto" delegates the choice to the
// planner per structure).
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancel(context.Background())
	reg := NewRegistry()
	cache := trisolve.NewPlanCache(cfg.CacheCap)
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		factors: plancache.New[uint64, cachedFactor](cfg.FactorCacheCap),
		reg:     reg,
		mux:     http.NewServeMux(),
		baseCtx: baseCtx,
		cancel:  cancel,
		start:   time.Now(),
		arenas:  arena.NewPool(arena.Config{}),
		hot:     make([]hotFactor, cfg.HotFactorCap),
	}
	s.reqPool.New = func() any {
		return &reqState{sects: make([]frameSection, 0, maxFrameSections)}
	}
	s.tenants = newTenantRegistry(reg, cfg)
	s.adm = newAdmission(cfg, reg)
	// The in-flight hook lets the coalescer seal windows early the moment
	// every admitted request is parked in one — see Coalescer. Admission
	// waiters are not in flight: a parked request must not hold a window
	// open.
	s.co = NewCoalescer(baseCtx, cache, reg, cfg.Coalesce.Window, cfg.Coalesce.LatencyWindow,
		cfg.Coalesce.Width, cfg.Procs, cfg.Kind, s.adm.inFlight)
	s.accepted = reg.Counter("loops_admission_accepted_total", "solve requests admitted", nil)
	s.shed = reg.Counter("loops_admission_shed_total", "solve requests shed with 429", nil)
	for _, cs := range []struct {
		name string
		f    func(plancache.Stats) float64
	}{
		{"hits", func(st plancache.Stats) float64 { return float64(st.Hits) }},
		{"coalesced", func(st plancache.Stats) float64 { return float64(st.Coalesced) }},
		{"misses", func(st plancache.Stats) float64 { return float64(st.Misses) }},
		{"evictions", func(st plancache.Stats) float64 { return float64(st.Evictions) }},
		{"resident", func(st plancache.Stats) float64 { return float64(st.Resident) }},
	} {
		f := cs.f
		reg.GaugeFunc("loops_plan_cache", "plan cache counters by event", Labels{{"event", cs.name}},
			func() float64 { return f(cache.Stats()) })
	}
	reg.GaugeFunc("loops_plan_cache_hit_rate", "fraction of plan lookups served without the inspector", nil,
		func() float64 { return cache.Stats().HitRate() })
	// Near-miss repair outcomes for drifting structures.
	for _, ds := range []struct {
		name string
		f    func(trisolve.DeltaStats) float64
	}{
		{"repairs", func(d trisolve.DeltaStats) float64 { return float64(d.Repairs) }},
		{"fallbacks", func(d trisolve.DeltaStats) float64 { return float64(d.Fallbacks) }},
		{"cone_rows", func(d trisolve.DeltaStats) float64 { return float64(d.ConeRows) }},
	} {
		f := ds.f
		reg.GaugeFunc("loops_plan_repair", "near-miss plan repair counters by event", Labels{{"event", ds.name}},
			func() float64 { return f(cache.DeltaStats()) })
	}
	// Supernodal fusion outcomes of plan builds.
	for _, ss := range []struct {
		name string
		f    func(trisolve.SupernodeStats) float64
	}{
		{"fused_plans", func(st trisolve.SupernodeStats) float64 { return float64(st.FusedPlans) }},
		{"nodes", func(st trisolve.SupernodeStats) float64 { return float64(st.Nodes) }},
		{"fused_rows", func(st trisolve.SupernodeStats) float64 { return float64(st.FusedRows) }},
		{"max_width", func(st trisolve.SupernodeStats) float64 { return float64(st.MaxWidth) }},
	} {
		f := ss.f
		reg.GaugeFunc("loops_supernode", "supernodal fusion counters by event", Labels{{"event", ss.name}},
			func() float64 { return f(cache.SupernodeStats()) })
	}
	reg.GaugeFunc("loops_supernode_fused_frac", "fraction of planned rows inside fused supernodes", nil,
		func() float64 { return cache.SupernodeStats().FusedFrac })
	factors := s.factors
	reg.GaugeFunc("loops_factor_cache", "factor cache counters by event", Labels{{"event", "resident"}},
		func() float64 { return float64(factors.Stats().Resident) })
	reg.GaugeFunc("loops_factor_cache_hit_rate", "fraction of factor references served from cache", nil,
		func() float64 { return factors.Stats().HitRate() })
	// Planner decisions by strategy: how many skeleton builds the adaptive
	// planner resolved to each executor (constant-labeled for a stable
	// exposition; pinned servers count everything under the pinned kind).
	for _, k := range []executor.Kind{executor.Sequential, executor.PreScheduled,
		executor.SelfExecuting, executor.DoAcross, executor.Pooled} {
		name := k.String()
		reg.GaugeFunc("loops_planner_decisions", "plan builds by chosen strategy", Labels{{"strategy", name}},
			func() float64 { return float64(cache.DecisionCounts()[name]) })
	}

	// Binary wire path arena-pool counters.
	arenas := s.arenas
	for _, as := range []struct {
		name string
		f    func(arena.Stats) float64
	}{
		{"outstanding", func(st arena.Stats) float64 { return float64(st.Outstanding) }},
		{"idle", func(st arena.Stats) float64 { return float64(st.Idle) }},
		{"gets", func(st arena.Stats) float64 { return float64(st.Gets) }},
		{"releases", func(st arena.Stats) float64 { return float64(st.Releases) }},
		{"grows", func(st arena.Stats) float64 { return float64(st.Grows) }},
		{"overflows", func(st arena.Stats) float64 { return float64(st.Overflows) }},
	} {
		f := as.f
		reg.GaugeFunc("loops_arena", "request arena pool counters by event", Labels{{"event", as.name}},
			func() float64 { return f(arenas.Stats()) })
	}

	s.tracer = newTracer(reg, cfg)
	registerBuildMetrics(reg, s.start)

	// The solve endpoint is instrumented per wire format so the JSON and
	// binary protocols are directly comparable in /metrics: ring-served
	// binary requests land in the same histogram families, under
	// wire="binary", measured at the same wrapper boundary as JSON.
	s.solveJSONEP = newEndpointMetricsWire(reg, "trisolve", "json")
	s.solveBinEP = newEndpointMetricsWire(reg, "trisolve", "binary")
	s.statsEP = newEndpointMetrics(reg, "stats")
	s.healthEP = newEndpointMetrics(reg, "healthz")
	s.metricEP = newEndpointMetrics(reg, "metrics")
	s.traceEP = newEndpointMetrics(reg, "trace")
	s.shardEP = newEndpointMetrics(reg, "shard")

	s.mux.HandleFunc("/v1/trisolve", s.wrapSolve(s.handleTrisolve))
	s.mux.HandleFunc("/v1/stats", s.statsEP.wrap(s.handleStats))
	s.mux.HandleFunc("/healthz", s.healthEP.wrap(s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.metricEP.wrap(s.handleMetrics))
	s.mux.HandleFunc("/v1/trace", s.traceEP.wrap(s.handleTrace))
	s.mux.HandleFunc("/v1/trace/slowest", s.traceEP.wrap(s.handleTraceSlowest))
	s.mux.HandleFunc("/v1/shard/plans", s.shardEP.wrap(s.handleShardPlans))
	s.mux.HandleFunc("/v1/shard/factor", s.shardEP.wrap(s.handleShardFactor))
	s.mux.HandleFunc("/v1/shard/warm", s.shardEP.wrap(s.handleShardWarm))
	s.httpSrv = &http.Server{Handler: s.mux}
	return s, nil
}

// wrapSolve instruments /v1/trisolve by wire format: the Content-Type
// that selects the binary protocol also selects its metrics, so both
// wires are observed identically at the same boundary.
func (s *Server) wrapSolve(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ep := s.solveJSONEP
		if isFrameRequest(r) {
			ep = s.solveBinEP
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(rec, r)
		ep.observe(rec.code, time.Since(t0))
	}
}

// Handler returns the server's HTTP handler (for tests and in-process
// mounting).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *Registry { return s.reg }

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves in a
// background goroutine. It returns once the listener is bound, so Addr
// is valid immediately after.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails this way if the listener breaks underneath
			// us; the error is observable through failed requests.
			_ = err
		}
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully drains the server: new requests are refused with
// 503 (and /healthz fails, so load balancers stop routing here), pending
// coalescer windows are flushed so accepted requests finish immediately,
// and the HTTP server waits for in-flight handlers up to ctx's deadline.
// The plan cache is closed last. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.drain()
	s.co.BeginDrain()
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	// Handlers may also be mounted on an external http.Server through
	// Handler(), which httpSrv.Shutdown knows nothing about — wait for
	// the admitted-solve gauge itself to drain before tearing down the
	// caches those handlers are using.
	if werr := s.waitInFlight(ctx); err == nil {
		err = werr
	}
	if derr := s.co.DrainCtx(ctx); derr != nil {
		// Deadline: abort in-flight passes via the base context, then
		// wait for them to unwind (bounded — cancelled executors release
		// their workers promptly).
		s.cancel()
		s.co.Drain()
		if err == nil {
			err = derr
		}
	}
	s.cancel()
	if cerr := s.cache.Close(); err == nil {
		err = cerr
	}
	if cerr := s.factors.Close(); err == nil {
		err = cerr
	}
	return err
}

// waitInFlight blocks until no solve request is admitted, or ctx ends.
func (s *Server) waitInFlight(ctx context.Context) error {
	for s.adm.inFlight() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Stats assembles the /v1/stats snapshot.
func (s *Server) Stats() StatsResponse {
	cs := s.cache.Stats()
	tens := s.tenants.snapshot()
	tstats := make([]TenantStats, 0, len(tens))
	var queued int64
	for _, t := range tens {
		q := s.adm.queuedOf(t)
		queued += int64(q)
		tstats = append(tstats, TenantStats{
			Name:            t.name,
			Weight:          t.weight,
			Quota:           t.quota,
			InFlight:        t.inFlightG.Value(),
			Queued:          q,
			Accepted:        t.accepted.Value(),
			Shed:            t.shed.Value(),
			LatencyRequests: t.classReq[ClassLatency].Value(),
			BatchRequests:   t.classReq[ClassBatch].Value(),
			P50Ms:           t.latH.Quantile(0.5) * 1e3,
			P99Ms:           t.latH.Quantile(0.99) * 1e3,
		})
	}
	return StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.adm.inFlight(),
		Accepted:      s.accepted.Value(),
		Shed:          s.shed.Value(),
		Tenants:       tstats,
		Queued:        queued,
		Draining:      s.draining.Load(),
		PlanCache:     cs,
		CacheHitRate:  cs.HitRate(),
		FactorCache:   s.factors.Stats(),
		Coalesce:      s.co.Stats(),
		Arena:         s.arenas.Stats(),
		Delta:         s.cache.DeltaStats(),
		Supernode:     s.cache.SupernodeStats(),
		Stages:        s.tracer.stageStats(),
		TracesDropped: s.tracer.ring.Dropped(),
		Planner: PlannerStats{
			Kind:      s.cfg.Kind,
			Counts:    s.cache.DecisionCounts(),
			Decisions: s.cache.Decisions(),
		},
	}
}

func (s *Server) handleTrisolve(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// The binary protocol shares the endpoint: content type selects it.
	binaryWire := isFrameRequest(r)
	// Tenant identity comes from the header on both wires: admission
	// runs before the body is read. A binary frame may also carry a
	// tenant section, which overrides the attribution once decoded.
	tenName, class, err := parseTenantHeader(r.Header.Get(TenantHeader))
	if err != nil {
		s.rejectWire(w, binaryWire, http.StatusBadRequest, err.Error())
		return
	}
	ten := s.tenants.resolve(tenName)
	if s.draining.Load() {
		s.rejectOverload(w, binaryWire, t0, ten, class,
			http.StatusServiceUnavailable, "server is draining", 0, false)
		return
	}
	// Admission control: weighted fair queueing over MaxInFlight slots.
	// Saturation beyond the tenant's queue — or its quota — is shed with
	// 429 and a drain-rate-derived Retry-After instead of queueing
	// without bound.
	res, retry := s.adm.Admit(r.Context(), ten, class)
	switch res {
	case admitOK:
	case admitDraining:
		s.rejectOverload(w, binaryWire, t0, ten, class,
			http.StatusServiceUnavailable, "server is draining", 0, false)
		return
	case admitCancelled:
		s.rejectOverload(w, binaryWire, t0, ten, class,
			http.StatusServiceUnavailable, "request cancelled", 0, false)
		return
	case admitShedQuota:
		s.rejectOverload(w, binaryWire, t0, ten, class,
			http.StatusTooManyRequests, "tenant is at its admission quota", retry, true)
		return
	default: // admitShedCapacity
		s.rejectOverload(w, binaryWire, t0, ten, class,
			http.StatusTooManyRequests, "server is at capacity", retry, true)
		return
	}
	defer func() {
		s.adm.Release(ten)
		s.co.Nudge()
	}()
	s.accepted.Inc()
	ten.accepted.Inc()

	if binaryWire {
		s.handleTrisolveBinary(w, r, t0, ten, class)
		return
	}

	// The trace starts at the handler's first instruction; requests
	// rejected before the solve pipeline (bad body, unknown factor) are
	// not traced — traces describe solves, error rates live in the
	// endpoint counters.
	var tr obs.Trace
	tr.Begin(obs.WireJSON, t0)
	tr.SetTenant(ten.name, byte(class))
	tr.Lap(obs.StageAdmission)

	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tr.ID = s.tracer.nextID()
	if req.TraceID != "" {
		tid, err := strconv.ParseUint(req.TraceID, 16, 64)
		if err != nil || tid == 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed trace_id %q", req.TraceID))
			return
		}
		tr.ID = tid
	}
	tr.Lap(obs.StageDecode)
	lower := req.Lower == nil || *req.Lower
	l, fp, release, hint, err := s.resolveFactor(&req, lower)
	if err != nil {
		if errors.Is(err, errUnknownFactor) {
			writeError(w, http.StatusNotFound, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	defer release()
	tr.Lap(obs.StageFactor)
	bs, binaryRHS, err := decodeRHS(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := validateRHS(bs, l.N, s.cfg.MaxBatch); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tr.Lap(obs.StageDecode)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs < 0 {
		// A negative timeout is a client bug (an already-expired deadline);
		// silently ignoring it would run the solve the caller thinks it
		// cancelled. Reject it the way the cmd/loops flag validation does.
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("timeout_ms must not be negative, got %d", req.TimeoutMs))
		return
	}
	if req.TimeoutMs > 0 {
		// Clamp before converting: a huge timeout_ms would overflow the
		// int64 nanosecond Duration into a negative, already-expired
		// deadline.
		const maxTimeoutMs = 24 * 60 * 60 * 1000
		ms := req.TimeoutMs
		if ms > maxTimeoutMs {
			ms = maxTimeoutMs
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	xs := make([][]float64, len(bs))
	for j := range xs {
		xs[j] = make([]float64, l.N)
	}
	var bstats trisolve.BuildStats
	creq := coReq{l: l, lower: lower, xs: xs, bs: bs, hint: hint, bstats: &bstats}
	if s.tracer.sampler.Sample() {
		creq.lc = new(obs.LevelClock)
	}
	info, err := s.co.SubmitInto(ctx, &creq)
	if err != nil {
		// An abandoned (cancelled/timed-out) member's pass may still be
		// running and writing into creq's observability fields: charge
		// the whole wait to the coalesce stage and leave them unread.
		tr.AttributeSubmit(0, 0, 0)
		code, msg := solveErrorStatus(err)
		s.tracer.publish(&tr, obs.StageEncode, code)
		ten.observe(class, tr.TotalNs)
		writeError(w, code, msg)
		return
	}
	tr.AttributeSubmit(info.PlanNs, bstats.RepairNs, info.ExecNs)
	tr.SetInfo(l.N, len(bs), info.Fused, info.Width, info.Strategy)
	if lc, ok := creq.lc.(*obs.LevelClock); ok {
		lc.FillTrace(&tr)
	}
	resp := SolveResponse{
		Fused: info.Fused, Width: info.Width, Strategy: info.Strategy,
		Executed: info.Metrics.Executed,
		TraceID:  fmt.Sprintf("%016x", tr.ID),
	}
	if fp != 0 {
		resp.Fp = fmt.Sprintf("%016x", fp)
	}
	if binaryRHS {
		resp.X64 = make([][]byte, len(xs))
		for j, x := range xs {
			resp.X64[j] = PackFloats(x)
		}
	} else {
		resp.X = xs
	}
	writeJSON(w, http.StatusOK, resp)
	s.tracer.publish(&tr, obs.StageEncode, http.StatusOK)
	ten.observe(class, tr.TotalNs)
}

// rejectWire writes a pre-admission rejection (e.g. a malformed tenant
// header) in the wire format the request arrived on.
func (s *Server) rejectWire(w http.ResponseWriter, binaryWire bool, status int, msg string) {
	if binaryWire {
		writeFrame(w, status, encodeErrorFrame(status, msg, 0))
		return
	}
	writeError(w, status, msg)
}

// rejectOverload writes an overload/drain rejection on either wire. The
// response echoes a freshly minted trace ID, the trace lands in the
// ring with the whole rejection charged to the admission stage, and —
// when shed is set — the global and per-tenant shed counters advance.
// retry > 0 adds a Retry-After header (both wires: the binary protocol
// still rides HTTP).
func (s *Server) rejectOverload(w http.ResponseWriter, binaryWire bool, t0 time.Time,
	ten *tenantState, class Class, status int, msg string, retry int, shed bool) {
	if shed {
		s.shed.Inc()
		ten.shed.Inc()
	}
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	}
	wire := obs.WireJSON
	if binaryWire {
		wire = obs.WireBinary
	}
	var tr obs.Trace
	tr.Begin(wire, t0)
	tr.ID = s.tracer.nextID()
	tr.SetTenant(ten.name, byte(class))
	s.tracer.publish(&tr, obs.StageAdmission, status)
	if binaryWire {
		writeFrame(w, status, encodeErrorFrame(status, msg, tr.ID))
		return
	}
	writeJSON(w, status, errorResponse{Error: msg, TraceID: fmt.Sprintf("%016x", tr.ID)})
}

// solveErrorStatus maps a coalescer submit error to its HTTP reply.
func solveErrorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "solve deadline exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "request cancelled"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// decodeRHS resolves the request's right-hand sides from whichever
// encoding it used, reporting whether the packed form was chosen.
func decodeRHS(req *SolveRequest) ([][]float64, bool, error) {
	if len(req.B64) == 0 {
		return req.B, false, nil
	}
	if len(req.B) > 0 {
		return nil, false, errors.New("request carries both b and b_b64; send one")
	}
	bs := make([][]float64, len(req.B64))
	for j, raw := range req.B64 {
		var err error
		if bs[j], err = UnpackFloats(raw); err != nil {
			return nil, false, fmt.Errorf("b_b64[%d]: %w", j, err)
		}
	}
	return bs, true, nil
}

// PackFloats packs a float64 slice little-endian (JSON renders the
// bytes as one base64 string — 12 bytes per value on the wire instead of
// ~18 for a parsed decimal, and ~100x cheaper to decode).
func PackFloats(x []float64) []byte {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// UnpackFloats unpacks a little-endian float64 array.
func UnpackFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("packed float array has %d bytes, not a multiple of 8", len(b))
	}
	x := make([]float64, len(b)/8)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return x, nil
}

// resolveFactor materializes the request's factor: from the wire matrix
// (validating it and registering it in the by-fingerprint cache), from
// the cache when the request carries just a fingerprint, or by applying
// a drift edit set to a cached base factor (base_fp + edits). The
// returned release pins the factor against eviction until the solve is
// done; for the drift form the returned hint carries the base structure
// fingerprint and edited rows so the plan cache can repair instead of
// re-inspect.
func (s *Server) resolveFactor(req *SolveRequest, lower bool) (*sparse.CSR, uint64, func(), *driftHint, error) {
	forms := 0
	if req.Fp != "" {
		forms++
	}
	if req.BaseFp != "" {
		forms++
	}
	if req.N != 0 || req.RowPtr != nil || req.ColIdx != nil || req.Val != nil {
		forms++
	}
	if forms > 1 {
		return nil, 0, nil, nil, errors.New("request carries more than one of: a factor, fp, base_fp; send one")
	}
	if len(req.Edits) > 0 && req.BaseFp == "" {
		return nil, 0, nil, nil, errors.New("edits require base_fp")
	}
	switch {
	case req.Fp != "":
		l, fp, release, err := s.lookupFactor(req.Fp, lower)
		return l, fp, release, nil, err
	case req.BaseFp != "":
		return s.resolveDrifted(req, lower)
	}
	l, err := buildFactor(req, lower)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	l, fp, release := s.registerFactor(l, lower)
	return l, fp, release, nil, nil
}

// driftHint names the plan-cache repair ancestor of a drifted factor:
// the base's structure fingerprint and the matrix rows the edits
// touched.
type driftHint struct {
	baseStructFp uint64
	rows         []int32
}

// lookupFactor pins a cached factor by content fingerprint.
func (s *Server) lookupFactor(hexFp string, lower bool) (*sparse.CSR, uint64, func(), error) {
	fp, err := strconv.ParseUint(hexFp, 16, 64)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("malformed fingerprint %q", hexFp)
	}
	h, err := s.factors.Get(fp, func() (cachedFactor, error) {
		return cachedFactor{}, errUnknownFactor
	})
	if err != nil {
		return nil, 0, nil, err
	}
	cf := h.Value()
	if cf.lower != lower {
		h.Release()
		return nil, 0, nil, fmt.Errorf("factor %s was registered for lower=%v", hexFp, cf.lower)
	}
	return cf.l, fp, func() { _ = h.Release() }, nil
}

// resolveDrifted materializes base_fp + edits: the cached base factor
// with the edit set applied, validated on the edited rows only (the rest
// is the already-validated base), registered under its own fingerprint.
func (s *Server) resolveDrifted(req *SolveRequest, lower bool) (*sparse.CSR, uint64, func(), *driftHint, error) {
	if len(req.Edits) == 0 {
		return nil, 0, nil, nil, errors.New("base_fp requires edits (use fp to resubmit unchanged)")
	}
	base, _, releaseBase, err := s.lookupFactor(req.BaseFp, lower)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	defer releaseBase()
	l, err := base.ApplyRowEdits(req.Edits)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	rows := make([]int32, 0, len(req.Edits))
	for _, e := range req.Edits {
		rows = append(rows, e.Row)
	}
	if err := validateFactorRows(l, rows, lower); err != nil {
		return nil, 0, nil, nil, err
	}
	hint := &driftHint{baseStructFp: base.StructureFingerprint(), rows: rows}
	l, fp, release := s.registerFactor(l, lower)
	return l, fp, release, hint, nil
}

// registerFactor installs a validated factor in the by-fingerprint cache
// and returns the resident copy (so concurrent identical requests
// coalesce on one value array).
func (s *Server) registerFactor(l *sparse.CSR, lower bool) (*sparse.CSR, uint64, func()) {
	fp := l.ContentFingerprint()
	h, err := s.factors.Get(fp, func() (cachedFactor, error) {
		return cachedFactor{l: l, lower: lower}, nil
	})
	if err != nil {
		// The cache is closed (drain raced in); solve with the wire copy.
		return l, fp, func() {}
	}
	cf := h.Value()
	if !sparse.Equal(l, cf.l) {
		// 64-bit fingerprint collision: the resident entry is a different
		// matrix. Solve with the local copy — never a neighbor's numbers —
		// and return no fingerprint, since a by-reference resubmission
		// could not be told apart from the resident factor. The O(nnz)
		// equality check costs what the fingerprint already did.
		h.Release()
		return l, 0, func() {}
	}
	return cf.l, fp, func() { _ = h.Release() }
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// buildFactor validates the wire matrix and returns it as a CSR: well
// formed, triangular in the requested direction, full nonzero diagonal
// (the executor bodies divide by it with no error path).
func buildFactor(req *SolveRequest, lower bool) (*sparse.CSR, error) {
	if req.N < 1 {
		return nil, fmt.Errorf("n must be >= 1, got %d", req.N)
	}
	l := &sparse.CSR{N: req.N, M: req.N, RowPtr: req.RowPtr, ColIdx: req.ColIdx, Val: req.Val}
	if err := validateFactor(l, lower); err != nil {
		return nil, err
	}
	return l, nil
}

// validateFactor checks a wire factor in place (both wire encodings
// funnel here): well formed, triangular in the requested direction,
// full nonzero diagonal.
func validateFactor(l *sparse.CSR, lower bool) error {
	if l.N < 1 {
		return fmt.Errorf("n must be >= 1, got %d", l.N)
	}
	if err := l.CheckWellFormed(); err != nil {
		return err
	}
	for i := 0; i < l.N; i++ {
		cols, vals := l.Row(i)
		hasDiag := false
		for k, c := range cols {
			switch {
			case int(c) == i:
				if vals[k] == 0 {
					return fmt.Errorf("zero diagonal at row %d", i)
				}
				hasDiag = true
			case lower && int(c) > i:
				return fmt.Errorf("row %d has upper entry %d in a forward solve", i, c)
			case !lower && int(c) < i:
				return fmt.Errorf("row %d has lower entry %d in a backward solve", i, c)
			}
		}
		if !hasDiag {
			return fmt.Errorf("missing diagonal at row %d", i)
		}
	}
	return nil
}

// validateFactorRows checks the triangularity and diagonal invariants
// of the given rows only — the rows a drift edit touched; every other
// row is the already-validated base factor, block-copied.
func validateFactorRows(l *sparse.CSR, rows []int32, lower bool) error {
	for _, r := range rows {
		if r < 0 || int(r) >= l.N {
			return fmt.Errorf("edit row %d outside [0,%d)", r, l.N)
		}
		i := int(r)
		cols, vals := l.Row(i)
		hasDiag := false
		for k, c := range cols {
			switch {
			case int(c) == i:
				if vals[k] == 0 {
					return fmt.Errorf("edit leaves zero diagonal at row %d", i)
				}
				hasDiag = true
			case lower && int(c) > i:
				return fmt.Errorf("edit gives row %d an upper entry %d in a forward solve", i, c)
			case !lower && int(c) < i:
				return fmt.Errorf("edit gives row %d a lower entry %d in a backward solve", i, c)
			}
		}
		if !hasDiag {
			return fmt.Errorf("edit removes the diagonal at row %d", i)
		}
	}
	return nil
}

// validateRHS bounds and shape-checks the request's right-hand sides.
func validateRHS(bs [][]float64, n, maxBatch int) error {
	if len(bs) == 0 {
		return errors.New("request has no right-hand sides")
	}
	if len(bs) > maxBatch {
		return fmt.Errorf("request has %d right-hand sides, limit %d", len(bs), maxBatch)
	}
	for j, b := range bs {
		if len(b) != n {
			return fmt.Errorf("right-hand side %d has length %d, want %d", j, len(b), n)
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// endpointMetrics instruments one endpoint: a latency histogram plus
// per-status-code request counters.
type endpointMetrics struct {
	reg      *Registry
	endpoint string
	hist     *Histogram
	codes    map[int]*Counter
}

// newEndpointMetrics pre-registers the status codes the handlers emit so
// the exposition is stable from the first scrape.
func newEndpointMetrics(reg *Registry, endpoint string) *endpointMetrics {
	return newEndpointMetricsLabeled(reg, endpoint, Labels{{"endpoint", endpoint}})
}

// newEndpointMetricsWire is newEndpointMetrics with a wire-format label,
// for endpoints that speak more than one protocol.
func newEndpointMetricsWire(reg *Registry, endpoint, wire string) *endpointMetrics {
	return newEndpointMetricsLabeled(reg, endpoint, Labels{{"endpoint", endpoint}, {"wire", wire}})
}

func newEndpointMetricsLabeled(reg *Registry, endpoint string, base Labels) *endpointMetrics {
	m := &endpointMetrics{
		reg:      reg,
		endpoint: endpoint,
		hist: reg.Histogram("loops_http_request_seconds", "request latency by endpoint",
			base, DefaultLatencyBuckets),
		codes: make(map[int]*Counter),
	}
	for _, code := range []int{200, 400, 404, 405, 429, 500, 503, 504} {
		m.codes[code] = reg.Counter("loops_http_requests_total", "requests by endpoint and status code",
			append(append(Labels{}, base...), [2]string{"code", fmt.Sprint(code)}))
	}
	// Catch-all for codes outside the pre-registered set; the map is
	// read-only after construction so observe stays lock-free.
	m.codes[0] = reg.Counter("loops_http_requests_total", "requests by endpoint and status code",
		append(append(Labels{}, base...), [2]string{"code", "other"}))
	return m
}

func (m *endpointMetrics) observe(code int, d time.Duration) {
	m.hist.Observe(d.Seconds())
	c, ok := m.codes[code]
	if !ok {
		c = m.codes[0]
	}
	c.Inc()
}

// wrap instruments a handler with latency and status accounting.
func (m *endpointMetrics) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(rec, r)
		m.observe(rec.code, time.Since(t0))
	}
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}
