package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

// admissionFixture builds an admission controller plus a tenant
// registry on a shared metrics registry, the way Server.New wires them.
func admissionFixture(t *testing.T, cfg Config) (*admission, *tenantRegistry) {
	t.Helper()
	if cfg.Tenant.Max == 0 {
		cfg.Tenant.Max = 32
	}
	reg := NewRegistry()
	tr := newTenantRegistry(reg, cfg)
	return newAdmission(cfg, reg), tr
}

// waitQueued polls until tenant t has n parked waiters.
func waitQueued(t *testing.T, a *admission, ten *tenantState, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.queuedOf(ten) != n {
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s queue depth %d, want %d", ten.name, a.queuedOf(ten), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionImmediateGrant checks the uncontended path: capacity
// admits directly, Release frees the slot, and the gauge counts only
// admitted requests.
func TestAdmissionImmediateGrant(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 2, Queue: 4}})
	ten := reg.resolve("solo")
	for i := 0; i < 2; i++ {
		if res, _ := a.Admit(context.Background(), ten, ClassBatch); res != admitOK {
			t.Fatalf("admit %d: result %d, want admitOK", i, res)
		}
	}
	if got := a.inFlight(); got != 2 {
		t.Fatalf("inFlight = %d, want 2", got)
	}
	a.Release(ten)
	a.Release(ten)
	if got := a.inFlight(); got != 0 {
		t.Fatalf("inFlight after release = %d, want 0", got)
	}
}

// TestAdmissionWeightedFairness parks six waiters each for a weight-3
// and a weight-1 tenant behind a full server and checks the grant order
// follows deficit round-robin: the heavy tenant gets three grants per
// rotation, the light one gets one.
func TestAdmissionWeightedFairness(t *testing.T) {
	a, reg := admissionFixture(t, Config{
		Admission: AdmissionConfig{MaxInFlight: 1, Queue: 16},
		Tenant:    TenantConfig{Weights: map[string]int{"heavy": 3, "light": 1}},
	})
	heavy, light := reg.resolve("heavy"), reg.resolve("light")
	if res, _ := a.Admit(context.Background(), reg.def, ClassBatch); res != admitOK {
		t.Fatal("holder not admitted")
	}

	const perTenant = 6
	order := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	park := func(ten *tenantState) {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, _ := a.Admit(context.Background(), ten, ClassBatch)
				if res != admitOK {
					t.Errorf("tenant %s: result %d, want admitOK", ten.name, res)
					return
				}
				// Send before Release: capacity 1 serializes grants, so the
				// channel receives names in grant order.
				order <- ten.name
				a.Release(ten)
			}()
		}
	}
	park(heavy)
	park(light)
	waitQueued(t, a, heavy, perTenant)
	waitQueued(t, a, light, perTenant)

	a.Release(reg.def)
	wg.Wait()
	close(order)
	var names []string
	for name := range order {
		names = append(names, name)
	}
	if len(names) != 2*perTenant {
		t.Fatalf("granted %d waiters, want %d", len(names), 2*perTenant)
	}
	count := func(upTo int) (heavyN int) {
		for _, n := range names[:upTo] {
			if n == "heavy" {
				heavyN++
			}
		}
		return heavyN
	}
	// One full rotation grants heavy 3 and light 1 regardless of which
	// tenant joined the ring first; heavy's 6 waiters drain within two
	// rotations while light still has 4 parked.
	if got := count(4); got != 3 {
		t.Fatalf("first rotation: heavy got %d of 4 grants, want 3 (order %v)", got, names)
	}
	if got := count(8); got != 6 {
		t.Fatalf("first two rotations: heavy got %d of 8 grants, want 6 (order %v)", got, names)
	}
}

// TestAdmissionLatencyBeforeBatch parks batch waiters of one tenant and
// then a latency waiter of another; the first freed slot must go to the
// latency-class waiter even though it enqueued last.
func TestAdmissionLatencyBeforeBatch(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 1, Queue: 16}})
	bulk, snappy := reg.resolve("bulk"), reg.resolve("snappy")
	if res, _ := a.Admit(context.Background(), reg.def, ClassBatch); res != admitOK {
		t.Fatal("holder not admitted")
	}
	order := make(chan string, 3)
	var wg sync.WaitGroup
	admitOne := func(ten *tenantState, class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := a.Admit(context.Background(), ten, class)
			if res != admitOK {
				t.Errorf("tenant %s: result %d, want admitOK", ten.name, res)
				return
			}
			order <- ten.name
			a.Release(ten)
		}()
	}
	admitOne(bulk, ClassBatch)
	admitOne(bulk, ClassBatch)
	waitQueued(t, a, bulk, 2)
	admitOne(snappy, ClassLatency)
	waitQueued(t, a, snappy, 1)

	a.Release(reg.def)
	wg.Wait()
	close(order)
	var names []string
	for name := range order {
		names = append(names, name)
	}
	if len(names) != 3 || names[0] != "snappy" {
		t.Fatalf("grant order %v, want snappy first", names)
	}
}

// TestAdmissionQuotaShed pins a tenant at its concurrency quota with
// queueing disabled and checks the overflow is classified as a quota
// shed, not a capacity shed, and that Release reopens the quota.
func TestAdmissionQuotaShed(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 8, Queue: -1}, Tenant: TenantConfig{Quota: 1}})
	ten := reg.resolve("capped")
	if res, _ := a.Admit(context.Background(), ten, ClassBatch); res != admitOK {
		t.Fatal("first request not admitted")
	}
	if res, retry := a.Admit(context.Background(), ten, ClassBatch); res != admitShedQuota || retry < 1 {
		t.Fatalf("over-quota request: result %d retry %d, want admitShedQuota with retry >= 1", res, retry)
	}
	// Other tenants are untouched by the quota.
	other := reg.resolve("free")
	if res, _ := a.Admit(context.Background(), other, ClassBatch); res != admitOK {
		t.Fatal("other tenant blocked by a stranger's quota")
	}
	a.Release(ten)
	if res, _ := a.Admit(context.Background(), ten, ClassBatch); res != admitOK {
		t.Fatal("request after release not admitted")
	}
}

// TestAdmissionQueueOverflow fills a tenant's queue behind a saturated
// server and checks the next arrival sheds with a capacity
// classification.
func TestAdmissionQueueOverflow(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 1, Queue: 2}})
	ten := reg.resolve("bursty")
	if res, _ := a.Admit(context.Background(), reg.def, ClassBatch); res != admitOK {
		t.Fatal("holder not admitted")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, _ := a.Admit(context.Background(), ten, ClassBatch); res == admitOK {
				a.Release(ten)
			}
		}()
	}
	waitQueued(t, a, ten, 2)
	if res, retry := a.Admit(context.Background(), ten, ClassBatch); res != admitShedCapacity || retry < 1 {
		t.Fatalf("overflow request: result %d retry %d, want admitShedCapacity with retry >= 1", res, retry)
	}
	a.Release(reg.def)
	wg.Wait()
}

// TestAdmissionCancelWhileQueued cancels a parked waiter's context and
// checks it returns admitCancelled and leaves the queue clean.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 1, Queue: 4}})
	ten := reg.resolve("impatient")
	if res, _ := a.Admit(context.Background(), reg.def, ClassBatch); res != admitOK {
		t.Fatal("holder not admitted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan admitResult, 1)
	go func() {
		res, _ := a.Admit(ctx, ten, ClassBatch)
		got <- res
	}()
	waitQueued(t, a, ten, 1)
	cancel()
	if res := <-got; res != admitCancelled {
		t.Fatalf("cancelled waiter: result %d, want admitCancelled", res)
	}
	if q := a.queuedOf(ten); q != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", q)
	}
	if v := a.queued.Value(); v != 0 {
		t.Fatalf("queued gauge after cancel = %d, want 0", v)
	}
	a.Release(reg.def)
}

// TestAdmissionDrainWakesWaiters checks drain rejects parked waiters
// and future arrivals with the draining outcome.
func TestAdmissionDrainWakesWaiters(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 1, Queue: 4}})
	ten := reg.resolve("late")
	if res, _ := a.Admit(context.Background(), reg.def, ClassBatch); res != admitOK {
		t.Fatal("holder not admitted")
	}
	got := make(chan admitResult, 1)
	go func() {
		res, _ := a.Admit(context.Background(), ten, ClassBatch)
		got <- res
	}()
	waitQueued(t, a, ten, 1)
	a.drain()
	if res := <-got; res != admitDraining {
		t.Fatalf("parked waiter at drain: result %d, want admitDraining", res)
	}
	if res, _ := a.Admit(context.Background(), ten, ClassBatch); res != admitDraining {
		t.Fatal("post-drain arrival not rejected as draining")
	}
	a.Release(reg.def)
}

// TestRetryAfterDerivation pins the Retry-After arithmetic: work ahead
// of the caller times the observed per-request drain interval, rounded
// up and clamped to [1s, 60s], with the old constant 1 as the
// no-signal fallback.
func TestRetryAfterDerivation(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 4, Queue: -1}})
	ten := reg.resolve("shed")

	check := func(drainNs float64, total, waiters, want int) {
		t.Helper()
		a.mu.Lock()
		a.drainNsPerReq = drainNs
		a.total = total
		a.waiters = waiters
		got := a.retryAfterLocked(ten)
		a.total, a.waiters = 0, 0
		a.mu.Unlock()
		if got != want {
			t.Fatalf("retryAfter(drain=%gns, total=%d, waiters=%d) = %d, want %d",
				drainNs, total, waiters, got, want)
		}
	}
	check(0, 3, 3, 1)      // no drain signal yet: old constant
	check(2e9, 1, 2, 8)    // 4 ahead x 2s/req
	check(2e9, 0, 0, 2)    // just the caller itself
	check(0.3e9, 0, 0, 1)  // sub-second rounds up to the 1s floor
	check(30e9, 4, 20, 60) // clamped at a minute
}

// TestRetryAfterTracksDrainRate drives real releases through the
// controller and checks the EWMA picks up a drain-rate signal.
func TestRetryAfterTracksDrainRate(t *testing.T) {
	a, reg := admissionFixture(t, Config{Admission: AdmissionConfig{MaxInFlight: 2, Queue: -1}})
	ten := reg.resolve("drip")
	for i := 0; i < 3; i++ {
		if res, _ := a.Admit(context.Background(), ten, ClassBatch); res != admitOK {
			t.Fatalf("admit %d failed", i)
		}
		time.Sleep(2 * time.Millisecond)
		a.Release(ten)
	}
	a.mu.Lock()
	drain := a.drainNsPerReq
	a.mu.Unlock()
	if drain <= 0 {
		t.Fatal("drain-rate EWMA has no signal after three releases")
	}
}
