package server

import (
	"encoding/binary"
	"strings"
	"testing"

	"doconsider/internal/arena"
	"doconsider/internal/executor"
	"doconsider/internal/sparse"
)

// testArena hands out one arena from a private pool and releases it
// with the test.
func testArena(t testing.TB) *arena.Arena {
	t.Helper()
	p := arena.NewPool(arena.Config{RegionBytes: 1 << 22, SlabBytes: 1 << 18, MinBlock: 1 << 12})
	a := p.Get()
	t.Cleanup(a.Release)
	return a
}

func lowerTrue() *bool { b := true; return &b }

// TestFrameRoundTripInline encodes every request field the inline form
// carries and checks the decode reproduces them exactly.
func TestFrameRoundTripInline(t *testing.T) {
	req := &SolveRequest{
		N:      3,
		RowPtr: []int32{0, 1, 3, 5},
		ColIdx: []int32{0, 0, 1, 1, 2},
		Val:    []float64{2, -1, 3, -0.5, 4},
		Lower:  lowerTrue(),
		B:      [][]float64{{1, 2, 3}, {4, 5, 6}},
	}
	buf, err := EncodeRequestFrame(req)
	if err != nil {
		t.Fatal(err)
	}
	a := testArena(t)
	var q wireRequest
	if err := parseRequestFrame(buf, a, &q, nil); err != nil {
		t.Fatal(err)
	}
	if !q.lower || q.n != 3 || q.k != 2 || q.hasFp || q.hasBaseFp || q.timeoutMs != 0 {
		t.Fatalf("decoded header fields wrong: %+v", q)
	}
	for i, v := range req.RowPtr {
		if q.rowPtr[i] != v {
			t.Fatalf("rowptr[%d] = %d, want %d", i, q.rowPtr[i], v)
		}
	}
	for i, v := range req.ColIdx {
		if q.colIdx[i] != v {
			t.Fatalf("colidx[%d] = %d, want %d", i, q.colIdx[i], v)
		}
	}
	for i, v := range req.Val {
		if q.val[i] != v {
			t.Fatalf("val[%d] = %v, want %v", i, q.val[i], v)
		}
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			if q.rhsFlat[3*j+i] != req.B[j][i] {
				t.Fatalf("rhs[%d][%d] = %v, want %v", j, i, q.rhsFlat[3*j+i], req.B[j][i])
			}
		}
	}
}

// TestFrameRoundTripForms covers the fingerprint, drift and timeout
// forms.
func TestFrameRoundTripForms(t *testing.T) {
	a := testArena(t)
	var q wireRequest

	upper := false
	buf, err := EncodeRequestFrame(&SolveRequest{
		Fp: "00deadbeef001234", Lower: &upper,
		B: [][]float64{{1, 2}}, TimeoutMs: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := parseRequestFrame(buf, a, &q, nil); err != nil {
		t.Fatal(err)
	}
	if q.lower || !q.hasFp || q.fp != 0x00deadbeef001234 || q.timeoutMs != 1500 || q.k != 1 {
		t.Fatalf("fp form decoded wrong: %+v", q)
	}

	buf, err = EncodeRequestFrame(&SolveRequest{
		BaseFp: "0000000000000042",
		Edits: []sparse.RowEdit{
			{Row: 2, Insert: []sparse.EditEntry{{Col: 0, Val: -1.5}, {Col: 1, Val: 2.5}}, Delete: []int32{7}},
			{Row: 5, Delete: []int32{3, 4}},
		},
		B: [][]float64{{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := parseRequestFrame(buf, a, &q, nil); err != nil {
		t.Fatal(err)
	}
	if !q.hasBaseFp || q.baseFp != 0x42 || len(q.edits) != 2 {
		t.Fatalf("drift form decoded wrong: %+v", q)
	}
	e := q.edits[0]
	if e.Row != 2 || len(e.Insert) != 2 || len(e.Delete) != 1 ||
		e.Insert[0] != (sparse.EditEntry{Col: 0, Val: -1.5}) ||
		e.Insert[1] != (sparse.EditEntry{Col: 1, Val: 2.5}) || e.Delete[0] != 7 {
		t.Fatalf("edit record 0 decoded wrong: %+v", e)
	}
	if e := q.edits[1]; e.Row != 5 || len(e.Insert) != 0 || len(e.Delete) != 2 {
		t.Fatalf("edit record 1 decoded wrong: %+v", e)
	}
}

// TestFrameZeroCopy pins the tentpole property: on a little-endian
// host the decoded numeric sections are views into the frame buffer,
// not copies.
func TestFrameZeroCopy(t *testing.T) {
	if !arena.HostLittleEndian() {
		t.Skip("zero-copy views need a little-endian host")
	}
	buf, err := EncodeRequestFrame(&SolveRequest{
		N: 2, RowPtr: []int32{0, 1, 2}, ColIdx: []int32{0, 1}, Val: []float64{1, 1},
		B: [][]float64{{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := testArena(t)
	var q wireRequest
	if err := parseRequestFrame(buf, a, &q, nil); err != nil {
		t.Fatal(err)
	}
	// Writing through the decoded view must edit the frame bytes.
	q.val[0] = 42
	reparsed := wireRequest{}
	if err := parseRequestFrame(buf, a, &reparsed, nil); err != nil {
		t.Fatal(err)
	}
	if reparsed.val[0] != 42 {
		t.Fatal("decoded val slice is a copy, want a view into the frame")
	}
}

// corrupt returns a copy of frame with edit applied.
func corrupt(frame []byte, edit func(b []byte)) []byte {
	b := append([]byte(nil), frame...)
	edit(b)
	return b
}

// TestFrameDecodeErrors drives the decoder through the malformed-frame
// space: every case must produce a clean error, never a panic or
// over-read.
func TestFrameDecodeErrors(t *testing.T) {
	good, err := EncodeRequestFrame(&SolveRequest{
		N: 2, RowPtr: []int32{0, 1, 2}, ColIdx: []int32{0, 1}, Val: []float64{1, 1},
		B: [][]float64{{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"empty":     {},
		"short":     good[:frameHeaderLen-1],
		"magic":     corrupt(good, func(b []byte) { b[0] = 'X' }),
		"version":   corrupt(good, func(b []byte) { b[4] = 99 }),
		"badTotal":  corrupt(good, func(b []byte) { binary.LittleEndian.PutUint64(b[8:16], uint64(len(good))+8) }),
		"truncated": good[:len(good)-8], // declared total no longer matches
		"manySections": corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint16(b[6:8], maxFrameSections+1)
		}),
		"tableOverrun": corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint16(b[6:8], uint16((len(good)-frameHeaderLen)/frameSectionLen+1))
		}),
		"misalignedOffset": corrupt(good, func(b []byte) {
			// Knock the rowptr payload offset off 8-alignment.
			binary.LittleEndian.PutUint32(b[frameHeaderLen+frameSectionLen+8:], 4)
		}),
		"payloadOverrun": corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint32(b[frameHeaderLen+12:], uint32(len(good)))
		}),
		"duplicateSection": corrupt(good, func(b []byte) {
			// Rewrite section 1 (rowptr) to repeat section 0's type (dim).
			binary.LittleEndian.PutUint16(b[frameHeaderLen+frameSectionLen:], secDim)
		}),
		"unknownSection": corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint16(b[frameHeaderLen:], 31)
		}),
		"unknownSectionHigh": corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint16(b[frameHeaderLen:], 4097)
		}),
		"rowptrLength": corrupt(good, func(b []byte) {
			// rowptr is section 1: shrink its declared count below its length.
			binary.LittleEndian.PutUint32(b[frameHeaderLen+frameSectionLen+4:], 1)
		}),
		"zeroDim": corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint32(b[frameHeaderLen+4:], 0)
		}),
	}
	a := testArena(t)
	for name, frame := range bad {
		var q wireRequest
		if err := parseRequestFrame(frame, a, &q, nil); err == nil {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}
}

// TestFrameEditsDecodeErrors exercises truncation inside the edit
// record stream specifically.
func TestFrameEditsDecodeErrors(t *testing.T) {
	frame, err := EncodeRequestFrame(&SolveRequest{
		BaseFp: "01",
		Edits:  []sparse.RowEdit{{Row: 0, Insert: []sparse.EditEntry{{Col: 0, Val: 1}}}},
		B:      [][]float64{{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := testArena(t)
	// Inflate the record's declared insert count past the payload.
	for _, count := range []uint32{2, 1 << 30} {
		bad := append([]byte(nil), frame...)
		// Locate the edits section payload via a fresh parse of the table.
		_, sects, err := parseSections(bad, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sects {
			if s.typ == secEdits {
				binary.LittleEndian.PutUint32(bad[s.off+4:], count)
			}
		}
		var q wireRequest
		if err := parseRequestFrame(bad, a, &q, nil); err == nil {
			t.Errorf("insert count %d: truncated edit record accepted", count)
		}
	}
}

// TestResponseFrameRoundTrip writes a response through the arena path
// and decodes it with the client decoder.
func TestResponseFrameRoundTrip(t *testing.T) {
	a := testArena(t)
	const k, n = 2, 3
	buf, lo, xs := newResponseFrame(a, k, n)
	if len(xs) != k {
		t.Fatalf("got %d solution rows, want %d", len(xs), k)
	}
	for j := range xs {
		for i := range xs[j] {
			xs[j][i] = float64(10*j + i)
		}
	}
	out := finishResponseFrame(buf, lo, xs, 0xfeed, SolveInfo{
		Fused: 2, Width: 5, Strategy: "pooled",
		Metrics: executor.Metrics{Executed: 123},
	}, 0xabc123)
	resp, err := DecodeResponseFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fp != "000000000000feed" || resp.Fused != 2 || resp.Width != 5 ||
		resp.Strategy != "pooled" || resp.Executed != 123 || resp.Status != 0 ||
		resp.TraceID != "0000000000abc123" {
		t.Fatalf("decoded response wrong: %+v", resp)
	}
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			if resp.X[j][i] != float64(10*j+i) {
				t.Fatalf("x[%d][%d] = %v", j, i, resp.X[j][i])
			}
		}
	}

	// A zero fingerprint (collision path) must come back empty, and an
	// oversized strategy name must be truncated, not overrun its reserve.
	buf, lo, xs = newResponseFrame(a, 1, 1)
	xs[0][0] = 1
	out = finishResponseFrame(buf, lo, xs, 0, SolveInfo{Strategy: strings.Repeat("s", 99)}, 0)
	resp, err = DecodeResponseFrame(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fp != "" || len(resp.Strategy) != strategyReserve || resp.TraceID != "" {
		t.Fatalf("collision/truncation response wrong: %+v", resp)
	}
}

// TestErrorFrameRoundTrip checks the error envelope.
func TestErrorFrameRoundTrip(t *testing.T) {
	resp, err := DecodeResponseFrame(encodeErrorFrame(404, "no such factor", 0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 || resp.ErrMsg != "no such factor" {
		t.Fatalf("error frame decoded wrong: %+v", resp)
	}
}

// FuzzFrameDecode throws arbitrary bytes at both decoders. The only
// acceptable outcomes are a clean decode or a clean error — any panic
// or out-of-range read (the race/asan builds catch the latter) fails.
func FuzzFrameDecode(f *testing.F) {
	inline, _ := EncodeRequestFrame(&SolveRequest{
		N: 2, RowPtr: []int32{0, 1, 2}, ColIdx: []int32{0, 1}, Val: []float64{1, 1},
		B: [][]float64{{3, 4}}, TimeoutMs: 50,
	})
	fp, _ := EncodeRequestFrame(&SolveRequest{Fp: "beef", B: [][]float64{{1, 2}}})
	drift, _ := EncodeRequestFrame(&SolveRequest{
		BaseFp: "beef",
		Edits:  []sparse.RowEdit{{Row: 1, Insert: []sparse.EditEntry{{Col: 0, Val: 2}}, Delete: []int32{1}}},
		B:      [][]float64{{1, 2}},
	})
	f.Add(inline)
	f.Add(fp)
	f.Add(drift)
	f.Add(encodeErrorFrame(400, "bad", 7))
	f.Add([]byte(frameMagic))
	f.Add(inline[:frameHeaderLen])

	pool := arena.NewPool(arena.Config{RegionBytes: 1 << 22, SlabBytes: 1 << 18, MinBlock: 1 << 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		a := pool.Get()
		defer a.Release()
		var q wireRequest
		if err := parseRequestFrame(data, a, &q, nil); err == nil {
			// A frame that decodes must be internally consistent enough to
			// index: touch every decoded slice end to end.
			for _, v := range q.rowPtr {
				_ = v
			}
			for _, v := range q.colIdx {
				_ = v
			}
			for _, v := range q.val {
				_ = v
			}
			for _, v := range q.rhsFlat {
				_ = v
			}
		}
		_, _ = DecodeResponseFrame(data)
	})
}
