package server

import (
	"context"
	"testing"
	"time"
)

// TestHotFactorCapSizesRing checks that Config.HotFactorCap controls the
// hot-factor ring length, with 0 meaning the default of 8.
func TestHotFactorCapSizesRing(t *testing.T) {
	for _, tc := range []struct{ cap, want int }{{0, 8}, {2, 2}, {32, 32}} {
		s, err := New(Config{Procs: 1, HotFactorCap: tc.cap})
		if err != nil {
			t.Fatalf("cap %d: %v", tc.cap, err)
		}
		if got := len(s.hot); got != tc.want {
			t.Errorf("HotFactorCap %d: ring length %d, want %d", tc.cap, got, tc.want)
		}
		shutdownNow(t, s)
	}
	if _, err := New(Config{Procs: 1, HotFactorCap: -1}); err == nil {
		t.Error("HotFactorCap -1 accepted, want validation error")
	}
}

// TestHotFactorEvictionOrder pins the ring's replacement policy: the
// oldest inserted fingerprint is overwritten first, a re-insert of a
// cached fingerprint updates in place without consuming a slot, and the
// lower/upper flag keys distinct entries.
func TestHotFactorEvictionOrder(t *testing.T) {
	s, err := New(Config{Procs: 1, HotFactorCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	a, b, c, d := testFactor(3), testFactor(4), testFactor(5), testFactor(6)

	s.hotInsert(1, true, a)
	s.hotInsert(2, true, b)
	if s.hotLookup(1, true) != a || s.hotLookup(2, true) != b {
		t.Fatal("both fingerprints should be hot after two inserts into cap 2")
	}
	if s.hotLookup(1, false) != nil {
		t.Error("lookup with the opposite direction flag must miss")
	}

	// Third insert overwrites the oldest slot (fp 1).
	s.hotInsert(3, true, c)
	if s.hotLookup(1, true) != nil {
		t.Error("fp 1 (oldest) should have been evicted by fp 3")
	}
	if s.hotLookup(2, true) != b || s.hotLookup(3, true) != c {
		t.Error("fps 2 and 3 should survive the eviction")
	}

	// Re-inserting a cached fp updates in place and must not advance the
	// ring cursor — the next eviction still takes the oldest slot.
	b2 := testFactor(4)
	s.hotInsert(2, true, b2)
	if s.hotLookup(2, true) != b2 {
		t.Error("re-insert should update the cached factor in place")
	}
	s.hotInsert(4, true, d)
	if s.hotLookup(2, true) != nil {
		t.Error("fp 2 occupied the oldest slot and should be evicted by fp 4")
	}
	if s.hotLookup(3, true) != c || s.hotLookup(4, true) != d {
		t.Error("fps 3 and 4 should be hot after the final insert")
	}

	// Fingerprint 0 is the collision sentinel and is never cached.
	s.hotInsert(0, true, a)
	if s.hotLookup(0, true) != nil {
		t.Error("fp 0 must never enter the hot ring")
	}
}

func shutdownNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
