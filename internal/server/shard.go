package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"doconsider/internal/sparse"
)

// Shard endpoints: the server's side of the distributed tier's warm
// handoff protocol (internal/router). A stateless front door shards
// fingerprints across replicas; when the ring rebalances (replica join
// or leave), the router enumerates the losing replica's hot factors
// (GET /v1/shard/plans), exports each one (GET /v1/shard/factor) and
// replays it into the gaining replica (POST /v1/shard/warm), which
// registers the factor and pre-builds its plan through the same
// plan-cache path real traffic uses — so cutover lands on a warm cache
// instead of a cold start.

// ShardPlan summarizes one resident factor for handoff enumeration.
type ShardPlan struct {
	Fp    string `json:"fp"`
	Lower bool   `json:"lower"`
	N     int    `json:"n"`
	Nnz   int    `json:"nnz"`
}

// ShardPlansResponse is the GET /v1/shard/plans payload: resident
// factors, hottest (most recently used) first.
type ShardPlansResponse struct {
	Plans []ShardPlan `json:"plans"`
}

// ShardFactor is a factor exported for handoff: the full CSR content
// with values packed little-endian (the B64 convention). It is both the
// GET /v1/shard/factor response and the POST /v1/shard/warm request.
type ShardFactor struct {
	Fp     string  `json:"fp,omitempty"`
	Lower  bool    `json:"lower"`
	N      int     `json:"n"`
	RowPtr []int32 `json:"rowptr"`
	ColIdx []int32 `json:"colidx"`
	Val64  []byte  `json:"val64"`
}

// handleShardPlans enumerates the by-fingerprint factor cache, most
// recently used first. ?limit=N bounds the listing (default all).
func (s *Server) handleShardPlans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed limit %q", q))
			return
		}
		limit = n
	}
	resp := ShardPlansResponse{Plans: []ShardPlan{}}
	for _, fp := range s.factors.Keys(limit) {
		h, ok := s.factors.Peek(fp)
		if !ok {
			continue // evicted or still building since the enumeration
		}
		cf := h.Value()
		resp.Plans = append(resp.Plans, ShardPlan{
			Fp:    fmt.Sprintf("%016x", fp),
			Lower: cf.lower,
			N:     cf.l.N,
			Nnz:   cf.l.NNZ(),
		})
		_ = h.Release()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShardFactor exports one resident factor by fingerprint for the
// router to replay into a gaining replica.
func (s *Server) handleShardFactor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	hexFp := r.URL.Query().Get("fp")
	fp, err := parseHexFp(hexFp)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	h, ok := s.factors.Peek(fp)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownFactor.Error())
		return
	}
	cf := h.Value()
	out := ShardFactor{
		Fp:     fmt.Sprintf("%016x", fp),
		Lower:  cf.lower,
		N:      cf.l.N,
		RowPtr: cf.l.RowPtr,
		ColIdx: cf.l.ColIdx,
		Val64:  PackFloats(cf.l.Val),
	}
	writeJSON(w, http.StatusOK, out)
	_ = h.Release()
}

// handleShardWarm registers a replayed factor and pre-builds its plan
// (Coalescer.Warm), so the first routed request after cutover finds
// both the factor cache and the plan cache hot. The response carries
// the authoritative content fingerprint the replica computed itself —
// the warm path never trusts the sender's fp.
func (s *Server) handleShardWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var in ShardFactor
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxFrameBytes))
	if err := dec.Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	val, err := UnpackFloats(in.Val64)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l := sparse.View(in.N, in.RowPtr, in.ColIdx, val)
	if err := validateFactor(l, in.Lower); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l, fp, release := s.registerFactor(l, in.Lower)
	release()
	if fp == 0 {
		// Content-fingerprint collision with a different resident factor;
		// registering would serve wrong answers, warming is refused.
		writeError(w, http.StatusConflict, "factor fingerprint collision")
		return
	}
	s.hotInsert(fp, in.Lower, l)
	if err := s.co.Warm(l, in.Lower); err != nil {
		writeError(w, http.StatusInternalServerError, "plan warm failed: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Fp string `json:"fp"`
	}{Fp: fmt.Sprintf("%016x", fp)})
}
