package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is a deliberately small metrics registry — counters, gauges
// and latency histograms rendered in the Prometheus text exposition
// format — shared by the HTTP handlers, the coalescer and the plan
// cache. It avoids an external client library (the repository carries no
// dependencies) while keeping the exposition scrape-compatible.

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { atomic.AddUint64(&c.v, n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.v) }

// Gauge is an instantaneous int64 metric (e.g. in-flight requests).
type Gauge struct {
	v int64
}

// Add moves the gauge by n (n may be negative), returning the new value.
func (g *Gauge) Add(n int64) int64 { return atomic.AddInt64(&g.v, n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { atomic.StoreInt64(&g.v, n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// Max raises the gauge to n if n exceeds the current value; concurrent
// maxima cannot overwrite a larger one.
func (g *Gauge) Max(n int64) {
	for {
		cur := atomic.LoadInt64(&g.v)
		if n <= cur || atomic.CompareAndSwapInt64(&g.v, cur, n) {
			return
		}
	}
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free; rendering takes a point-in-time snapshot per bucket (the
// buckets are independently atomic, which is the usual Prometheus
// client guarantee).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    uint64    // math.Float64bits-encoded running sum, CAS-updated
	count  uint64
}

// DefaultLatencyBuckets spans 100µs to 10s, the range of a triangular
// solve request from a cache-hit solo pass to a cold large-problem
// inspector run under load.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WidthBuckets buckets fused-pass widths (total right-hand sides).
var WidthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddUint64(&h.counts[i], 1)
	atomic.AddUint64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sum)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sum, old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.count) }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(atomic.LoadUint64(&h.sum)) }

// Quantile returns an upper-bound estimate of quantile q in [0,1] from
// the bucket counts (the bound of the bucket where the quantile falls).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += atomic.LoadUint64(&h.counts[i])
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// metricKind tags a registered family for the # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered metric instance: a family name plus a fixed
// label set.
type series struct {
	family string
	labels string // pre-rendered `{k="v",...}` or ""
	kind   metricKind
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// Registry holds the server's metric families and renders them in
// Prometheus text format. Registration happens at construction time;
// lookups during request handling touch only the returned metric values,
// never the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]string // family -> help
	order    []string          // families in registration order
	series   []series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]string)}
}

// Labels is an ordered label set. Order is preserved in the exposition,
// so call sites should pass labels in a consistent order.
type Labels [][2]string

func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	s := "{"
	for i, kv := range ls {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", kv[0], kv[1])
	}
	return s + "}"
}

func (r *Registry) register(family, help string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[family]; !ok {
		r.families[family] = help
		r.order = append(r.order, family)
	}
	r.series = append(r.series, s)
}

// Counter registers and returns a counter with the given labels.
func (r *Registry) Counter(family, help string, ls Labels) *Counter {
	c := &Counter{}
	r.register(family, help, series{family: family, labels: renderLabels(ls), kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge with the given labels.
func (r *Registry) Gauge(family, help string, ls Labels) *Gauge {
	g := &Gauge{}
	r.register(family, help, series{family: family, labels: renderLabels(ls), kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// used to surface plan-cache statistics without double bookkeeping.
func (r *Registry) GaugeFunc(family, help string, ls Labels, f func() float64) {
	r.register(family, help, series{family: family, labels: renderLabels(ls), kind: kindGaugeFunc, gf: f})
}

// Histogram registers and returns a histogram with the given labels.
func (r *Registry) Histogram(family, help string, ls Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(family, help, series{family: family, labels: renderLabels(ls), kind: kindHistogram, h: h})
	return h
}

// WritePrometheus renders every registered metric in the text exposition
// format, families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	families := make(map[string]string, len(r.families))
	for k, v := range r.families {
		families[k] = v
	}
	ss := append([]series(nil), r.series...)
	r.mu.Unlock()

	for _, fam := range order {
		typ := "counter"
		for _, s := range ss {
			if s.family != fam {
				continue
			}
			switch s.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			break
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, families[fam], fam, typ); err != nil {
			return err
		}
		for _, s := range ss {
			if s.family != fam {
				continue
			}
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, s series) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.family, s.labels, s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.family, s.labels, s.g.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %g\n", s.family, s.labels, s.gf())
		return err
	case kindHistogram:
		var cum uint64
		for i, bound := range s.h.bounds {
			cum += atomic.LoadUint64(&s.h.counts[i])
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.family, withLE(s.labels, formatBound(bound)), cum); err != nil {
				return err
			}
		}
		cum += atomic.LoadUint64(&s.h.counts[len(s.h.bounds)])
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.family, withLE(s.labels, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.family, s.labels, s.h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.family, s.labels, s.h.Count())
		return err
	}
	return nil
}

// withLE merges an le label into a pre-rendered label block.
func withLE(labels, bound string) string {
	le := fmt.Sprintf("le=%q", bound)
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
